// Method comparison — a miniature Table 2 through the public API: run
// every outlier-handling method over one dataset and score the DBSCAN
// clustering each produces, plus the internal silhouette quality and the
// adjustment accuracy against the injected ground truth.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	disc "repro"
)

func main() {
	name := "WIFI"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	ds, err := disc.Table1(name, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	cons := disc.Constraints{Eps: ds.Eps, Eta: ds.Eta}
	fmt.Printf("%s: n=%d m=%d classes=%d ε=%.3g η=%d (dirty %d, natural %d)\n\n",
		ds.Name, ds.N(), ds.Rel.Schema.M(), ds.Classes, ds.Eps, ds.Eta,
		ds.DirtyCount(), ds.NaturalCount())

	type method struct {
		name  string
		apply func() (*disc.Relation, error)
	}
	methods := []method{
		{"Raw", func() (*disc.Relation, error) { return ds.Rel, nil }},
		{"DISC", func() (*disc.Relation, error) {
			res, err := disc.Save(ds.Rel, cons, disc.Options{Kappa: 2})
			if err != nil {
				return nil, err
			}
			return res.Repaired, nil
		}},
		{"DORC", func() (*disc.Relation, error) { return (&disc.DORC{Eps: ds.Eps, Eta: ds.Eta}).Clean(ds.Rel) }},
		{"ERACER", func() (*disc.Relation, error) { return (&disc.ERACER{}).Clean(ds.Rel) }},
		{"HoloClean", func() (*disc.Relation, error) { return (&disc.HoloClean{}).Clean(ds.Rel) }},
		{"Holistic", func() (*disc.Relation, error) { return (&disc.Holistic{}).Clean(ds.Rel) }},
		{"SCARE", func() (*disc.Relation, error) { return (&disc.SCARE{Eps: ds.Eps}).Clean(ds.Rel) }},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\ttime\tF1\tNMI\tARI\tsilhouette\tavg Jaccard")
	for _, m := range methods {
		start := time.Now()
		rel, err := m.apply()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t(%v)\n", m.name, err)
			continue
		}
		cl := disc.DBSCAN(rel, disc.DBSCANConfig{Eps: cons.Eps, MinPts: cons.Eta})
		// Adjustment accuracy: how well this method's modified attributes
		// match the injected error attributes.
		jSum, jN := 0.0, 0
		for i := range ds.Rel.Tuples {
			if ds.Dirty[i] == 0 {
				continue
			}
			mask := diffMask(ds.Rel, rel, i)
			jSum += disc.Jaccard(ds.Dirty[i], mask)
			jN++
		}
		jac := 0.0
		if jN > 0 {
			jac = jSum / float64(jN)
		}
		fmt.Fprintf(tw, "%s\t%.3gs\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			m.name, elapsed.Seconds(),
			disc.PairF1(cl.Labels, ds.Labels),
			disc.NMI(cl.Labels, ds.Labels),
			disc.ARI(cl.Labels, ds.Labels),
			disc.Silhouette(rel, cl.Labels),
			jac)
	}
	tw.Flush()
	fmt.Println("\n(try: go run ./examples/compare Letter)")
}

func diffMask(before, after *disc.Relation, i int) disc.AttrMask {
	var m disc.AttrMask
	for a := 0; a < before.Schema.M(); a++ {
		kind := before.Schema.Attrs[a].Kind
		if kind == disc.Text {
			if before.Tuples[i][a].Str != after.Tuples[i][a].Str {
				m = m.With(a)
			}
		} else if before.Tuples[i][a].Num != after.Tuples[i][a].Num {
			m = m.With(a)
		}
	}
	return m
}
