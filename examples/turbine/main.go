// Wind-turbine sensors — the introduction's motivating scenario: hundreds
// of sensors per turbine, usually only one or two broken at a time. DISC
// with a κ budget repairs readings whose few broken sensors made them
// outlying, and flags readings that are strange on many sensors (another
// wind farm, extreme weather) as natural outliers for human review.
package main

import (
	"fmt"
	"log"
	"math/rand"

	disc "repro"
)

const (
	sensors  = 24  // columns: temperature, wind speed, pitch, vibration, ...
	readings = 800 // rows: periodic snapshots from one turbine fleet
)

func main() {
	rng := rand.New(rand.NewSource(42))
	names := make([]string, sensors)
	for i := range names {
		names[i] = fmt.Sprintf("sensor%02d", i)
	}
	rel := disc.NewRelation(disc.NewNumericSchema(names...))

	// Three operating regimes (idle / rated / storm curtailment), each a
	// tight profile over the sensors.
	profiles := make([][]float64, 3)
	for p := range profiles {
		profiles[p] = make([]float64, sensors)
		for a := range profiles[p] {
			profiles[p][a] = 20 + 60*rng.Float64()
		}
	}
	for i := 0; i < readings; i++ {
		p := profiles[i%3]
		t := make(disc.Tuple, sensors)
		for a := 0; a < sensors; a++ {
			t[a] = disc.Num(p[a] + rng.NormFloat64()*0.8)
		}
		rel.Append(t)
	}
	// Broken sensors: 40 readings where 1–2 sensors report garbage.
	brokenRows := map[int][]int{}
	for k := 0; k < 40; k++ {
		i := rng.Intn(readings)
		for s := 0; s < 1+rng.Intn(2); s++ {
			a := rng.Intn(sensors)
			rel.Tuples[i][a] = disc.Num(rel.Tuples[i][a].Num + 120 + 80*rng.Float64())
			brokenRows[i] = append(brokenRows[i], a)
		}
	}
	// A reading relayed from another wind farm: off on every sensor.
	foreign := make(disc.Tuple, sensors)
	for a := range foreign {
		foreign[a] = disc.Num(200 + 50*rng.Float64())
	}
	rel.Append(foreign)

	// Let the library pick (ε, η) from the data, then repair with a
	// two-sensor trust budget: "a turbine is switched off if more than κ
	// sensors are broken" (§3.3).
	choice, err := disc.DetermineParams(rel, disc.ParamOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("determined ε=%.3g η=%d (mean neighbors λ=%.1f)\n", choice.Eps, choice.Eta, choice.Lambda)

	res, err := disc.Save(rel, disc.Constraints{Eps: choice.Eps, Eta: choice.Eta}, disc.Options{Kappa: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d readings flagged, %d repaired, %d left for human review\n\n",
		len(res.Detection.Outliers), res.Saved, res.Natural)

	correctSensor, total := 0, 0
	for _, adj := range res.Adjustments {
		if !adj.Saved() {
			continue
		}
		want, ok := brokenRows[adj.Index]
		if !ok {
			continue
		}
		total++
		hit := true
		for _, a := range want {
			if !adj.Adjusted.Has(a) {
				hit = false
			}
		}
		if hit {
			correctSensor++
		}
	}
	fmt.Printf("repairs touching exactly the broken sensors: %d/%d\n", correctSensor, total)
	if res.Natural > 0 {
		fmt.Println("the foreign-farm reading was flagged as a natural outlier, values untouched")
	}
}
