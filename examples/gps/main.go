// GPS trajectory repair — the Example 1 / Figure 2 scenario of the paper:
// readings with (Time, Longitude, Latitude), an occasional longitude or
// timestamp error splits the trajectory into segments; DISC adjusts only
// the erroneous attribute and the trajectory clusters whole again, while
// device-testing points (natural outliers) are flagged, not altered.
package main

import (
	"fmt"
	"log"

	disc "repro"
)

func main() {
	ds, err := disc.Table1("GPS", 0.25, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPS dataset: %d readings, %d trajectories, ε=%.3g η=%d\n",
		ds.N(), ds.Classes, ds.Eps, ds.Eta)
	fmt.Printf("injected: %d dirty readings (one corrupted attribute each), %d device-test points\n\n",
		ds.DirtyCount(), ds.NaturalCount())

	cons := disc.Constraints{Eps: ds.Eps, Eta: ds.Eta}
	raw := disc.DBSCAN(ds.Rel, disc.DBSCANConfig{Eps: cons.Eps, MinPts: cons.Eta})
	fmt.Printf("raw clustering:      %d segments, F1 = %.4f\n", raw.K, disc.PairF1(raw.Labels, ds.Labels))

	// κ = 1: GPS errors hit exactly one attribute; anything needing more
	// adjustment is a genuine anomaly and stays untouched (§1.2).
	res, err := disc.Save(ds.Rel, cons, disc.Options{Kappa: 1})
	if err != nil {
		log.Fatal(err)
	}
	fixed := disc.DBSCAN(res.Repaired, disc.DBSCANConfig{Eps: cons.Eps, MinPts: cons.Eta})
	fmt.Printf("after outlier saving: %d segments, F1 = %.4f\n\n", fixed.K, disc.PairF1(fixed.Labels, ds.Labels))

	// Show a few repairs next to the ground truth, like the t13/t24
	// walkthrough in the paper.
	names := []string{"Time", "Longitude", "Latitude"}
	shown := 0
	for _, adj := range res.Adjustments {
		if !adj.Saved() || shown >= 5 {
			continue
		}
		i := adj.Index
		if ds.Dirty[i] == 0 {
			continue
		}
		errAttr := ds.Dirty[i].Attrs(3)[0]
		fixAttrs := adj.Adjusted.Attrs(3)
		fmt.Printf("reading %4d: %s corrupted (%.1f, truth %.1f); DISC adjusted %v to %.1f (cost %.3g)\n",
			i, names[errAttr],
			ds.Rel.Tuples[i][errAttr].Num, ds.Clean[i][errAttr].Num,
			attrNames(names, fixAttrs), adj.Tuple[fixAttrs[0]].Num, adj.Cost)
		shown++
	}
	fmt.Printf("\n%d natural outliers flagged for verification, values untouched\n", res.Natural)
}

func attrNames(names []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, a := range idx {
		out[i] = names[a]
	}
	return out
}
