// Quickstart: generate noisy clustered data, save the outliers with DISC,
// and compare DBSCAN clustering before and after — the Figure 1 story of
// the paper in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	disc "repro"
)

func main() {
	// Two Gaussian clusters in 2D with value errors on one attribute:
	// petal measurements recorded in inches instead of centimetres.
	rng := rand.New(rand.NewSource(7))
	rel := disc.NewRelation(disc.NewNumericSchema("petal_length", "petal_width"))
	truth := make([]int, 0, 220)
	for i := 0; i < 100; i++ {
		rel.Append(disc.Tuple{disc.Num(1.5 + rng.NormFloat64()*0.2), disc.Num(0.3 + rng.NormFloat64()*0.1)})
		truth = append(truth, 0)
		rel.Append(disc.Tuple{disc.Num(5.0 + rng.NormFloat64()*0.4), disc.Num(1.8 + rng.NormFloat64()*0.2)})
		truth = append(truth, 1)
	}
	// Ten tuples of the second cluster with width mistakenly in inches
	// (2.54× too small would be ÷2.54; make it a gross unit error).
	for i := 0; i < 10; i++ {
		rel.Append(disc.Tuple{disc.Num(5.0 + rng.NormFloat64()*0.4), disc.Num((1.8 + rng.NormFloat64()*0.2) * 2.54)})
		truth = append(truth, 1)
	}

	cons := disc.Constraints{Eps: 0.5, Eta: 4}

	// Cluster the raw data: the dirty tuples are noise and the clusters
	// lose recall.
	raw := disc.DBSCAN(rel, disc.DBSCANConfig{Eps: cons.Eps, MinPts: cons.Eta})
	fmt.Printf("raw:   %d clusters, F1 = %.4f\n", raw.K, disc.PairF1(raw.Labels, truth))

	// Save the outliers: adjust the erroneous width values minimally so
	// the tuples satisfy the distance constraints again.
	res, err := disc.Save(rel, cons, disc.Options{Kappa: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DISC:  %d outliers detected, %d saved, %d natural\n",
		len(res.Detection.Outliers), res.Saved, res.Natural)
	for _, adj := range res.Adjustments {
		if adj.Saved() {
			fmt.Printf("  row %3d: adjusted %v, cost %.3f\n",
				adj.Index, adj.Adjusted.Attrs(rel.Schema.M()), adj.Cost)
		}
	}

	fixed := disc.DBSCAN(res.Repaired, disc.DBSCANConfig{Eps: cons.Eps, MinPts: cons.Eta})
	fmt.Printf("fixed: %d clusters, F1 = %.4f\n", fixed.K, disc.PairF1(fixed.Labels, truth))
}
