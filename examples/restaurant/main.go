// Record matching with textual repair — the §1.1 / Figure 8 scenario:
// typos (confusable characters, dropped letters) make restaurant records
// outlying under edit-distance constraints and break duplicate detection;
// DISC repairs the corrupted attribute by borrowing the value from a
// near-neighbor record, and the rule-based matcher recovers the pairs.
package main

import (
	"fmt"
	"log"

	disc "repro"
)

func main() {
	ds, err := disc.Table1("Restaurant", 0.5, 3)
	if err != nil {
		log.Fatal(err)
	}
	entities := map[int]bool{}
	for _, l := range ds.Labels {
		entities[l] = true
	}
	fmt.Printf("Restaurant dataset: %d records, %d entities (%d duplicate pairs), %d records with typos\n\n",
		ds.N(), len(entities), ds.N()-len(entities), ds.DirtyCount())

	score := func(rel *disc.Relation) (float64, int) {
		pairs := disc.Match(rel, disc.MatchConfig{})
		_, _, f1 := disc.MatchScore(pairs, ds.Labels)
		return f1, len(pairs)
	}
	rawF1, rawPairs := score(ds.Rel)
	fmt.Printf("raw matching:   %3d pairs found, F1 = %.4f\n", rawPairs, rawF1)

	cons := disc.Constraints{Eps: ds.Eps, Eta: ds.Eta}
	res, err := disc.Save(ds.Rel, cons, disc.Options{Kappa: 2})
	if err != nil {
		log.Fatal(err)
	}
	fixedF1, fixedPairs := score(res.Repaired)
	fmt.Printf("after saving:   %3d pairs found, F1 = %.4f (%d outliers saved)\n\n",
		fixedPairs, fixedF1, res.Saved)

	// Show a few textual repairs (the RH10-OAG → RH10-0AG style).
	shown := 0
	for _, adj := range res.Adjustments {
		if !adj.Saved() || shown >= 5 {
			continue
		}
		i := adj.Index
		if ds.Dirty[i] == 0 {
			continue
		}
		a := ds.Dirty[i].Attrs(5)[0]
		fmt.Printf("record %3d %-5s: %q → %q (truth %q)\n",
			i, ds.Rel.Schema.Attrs[a].Name,
			ds.Rel.Tuples[i][a].Str, adj.Tuple[a].Str, ds.Clean[i][a].Str)
		shown++
	}
}
