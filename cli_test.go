package disc_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd binaries into a temp dir once per
// test run.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI build")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIDatagenAndDisccliPipeline(t *testing.T) {
	datagen := buildTool(t, "datagen")
	disccli := buildTool(t, "disccli")

	dir := t.TempDir()
	raw := filepath.Join(dir, "iris.csv")
	fixed := filepath.Join(dir, "iris_fixed.csv")

	// Generate a dataset.
	var stdout, stderr bytes.Buffer
	gen := exec.Command(datagen, "-dataset", "Iris", "-seed", "3")
	gen.Stdout = &stdout
	gen.Stderr = &stderr
	if err := gen.Run(); err != nil {
		t.Fatalf("datagen: %v\n%s", err, stderr.String())
	}
	if err := os.WriteFile(raw, stdout.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "Iris") {
		t.Errorf("datagen banner missing: %s", stderr.String())
	}

	// Repair it with auto-determined parameters.
	stderr.Reset()
	fix := exec.Command(disccli, "-in", raw, "-out", fixed, "-report")
	fix.Stderr = &stderr
	if err := fix.Run(); err != nil {
		t.Fatalf("disccli: %v\n%s", err, stderr.String())
	}
	log := stderr.String()
	for _, want := range []string{"determined ε=", "outliers", "saved"} {
		if !strings.Contains(log, want) {
			t.Errorf("disccli log missing %q:\n%s", want, log)
		}
	}

	// The output parses and has the same shape.
	in, err := os.Open(fixed)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	rawBytes, _ := os.ReadFile(raw)
	fixedBytes, _ := os.ReadFile(fixed)
	if lines := bytes.Count(rawBytes, []byte("\n")); lines != bytes.Count(fixedBytes, []byte("\n")) {
		t.Error("repair changed the row count")
	}
	if bytes.Equal(rawBytes, fixedBytes) {
		t.Error("repair changed nothing (no outliers saved?)")
	}
}

func TestCLIDatagenStatsAndTruth(t *testing.T) {
	datagen := buildTool(t, "datagen")

	var stderr bytes.Buffer
	stats := exec.Command(datagen, "-dataset", "GPS", "-scale", "0.05", "-stats")
	stats.Stderr = &stderr
	if err := stats.Run(); err != nil {
		t.Fatalf("datagen -stats: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pairwise distance quantiles") {
		t.Errorf("stats output missing quantiles:\n%s", stderr.String())
	}

	var stdout bytes.Buffer
	truth := exec.Command(datagen, "-dataset", "Seeds", "-truth")
	truth.Stdout = &stdout
	if err := truth.Run(); err != nil {
		t.Fatalf("datagen -truth: %v", err)
	}
	header := strings.SplitN(stdout.String(), "\n", 2)[0]
	for _, col := range []string{"_class", "_dirty", "_natural"} {
		if !strings.Contains(header, col) {
			t.Errorf("truth header missing %s: %s", col, header)
		}
	}
}

func TestCLIDiscbenchListAndRun(t *testing.T) {
	discbench := buildTool(t, "discbench")

	out, err := exec.Command(discbench, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table2", "fig4", "fig10", "ablation"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s", id)
		}
	}

	run, err := exec.Command(discbench, "-exp", "fig9", "-scale", "0.15", "-format", "csv").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(run), "# Fig 9(a)") || !strings.Contains(string(run), "dirty") {
		t.Errorf("fig9 csv output wrong:\n%s", run)
	}

	// Unknown experiment fails cleanly.
	if err := exec.Command(discbench, "-exp", "nope").Run(); err == nil {
		t.Error("unknown experiment accepted")
	}
}
