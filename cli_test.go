package disc_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd binaries into a temp dir once per
// test run.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI build")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIDatagenAndDisccliPipeline(t *testing.T) {
	datagen := buildTool(t, "datagen")
	disccli := buildTool(t, "disccli")

	dir := t.TempDir()
	raw := filepath.Join(dir, "iris.csv")
	fixed := filepath.Join(dir, "iris_fixed.csv")

	// Generate a dataset.
	var stdout, stderr bytes.Buffer
	gen := exec.Command(datagen, "-dataset", "Iris", "-seed", "3")
	gen.Stdout = &stdout
	gen.Stderr = &stderr
	if err := gen.Run(); err != nil {
		t.Fatalf("datagen: %v\n%s", err, stderr.String())
	}
	if err := os.WriteFile(raw, stdout.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "Iris") {
		t.Errorf("datagen banner missing: %s", stderr.String())
	}

	// Repair it with auto-determined parameters.
	stderr.Reset()
	fix := exec.Command(disccli, "-in", raw, "-out", fixed, "-report")
	fix.Stderr = &stderr
	if err := fix.Run(); err != nil {
		t.Fatalf("disccli: %v\n%s", err, stderr.String())
	}
	log := stderr.String()
	for _, want := range []string{"determined ε=", "outliers", "saved"} {
		if !strings.Contains(log, want) {
			t.Errorf("disccli log missing %q:\n%s", want, log)
		}
	}

	// The output parses and has the same shape.
	in, err := os.Open(fixed)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	rawBytes, _ := os.ReadFile(raw)
	fixedBytes, _ := os.ReadFile(fixed)
	if lines := bytes.Count(rawBytes, []byte("\n")); lines != bytes.Count(fixedBytes, []byte("\n")) {
		t.Error("repair changed the row count")
	}
	if bytes.Equal(rawBytes, fixedBytes) {
		t.Error("repair changed nothing (no outliers saved?)")
	}
}

func TestCLIDatagenStatsAndTruth(t *testing.T) {
	datagen := buildTool(t, "datagen")

	var stderr bytes.Buffer
	stats := exec.Command(datagen, "-dataset", "GPS", "-scale", "0.05", "-stats")
	stats.Stderr = &stderr
	if err := stats.Run(); err != nil {
		t.Fatalf("datagen -stats: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pairwise distance quantiles") {
		t.Errorf("stats output missing quantiles:\n%s", stderr.String())
	}

	var stdout bytes.Buffer
	truth := exec.Command(datagen, "-dataset", "Seeds", "-truth")
	truth.Stdout = &stdout
	if err := truth.Run(); err != nil {
		t.Fatalf("datagen -truth: %v", err)
	}
	header := strings.SplitN(stdout.String(), "\n", 2)[0]
	for _, col := range []string{"_class", "_dirty", "_natural"} {
		if !strings.Contains(header, col) {
			t.Errorf("truth header missing %s: %s", col, header)
		}
	}
}

// TestCLIDisccliObservability drives the PR's acceptance path: a repair run
// with -progress, -deadline and -stats-json must emit progress lines, finish
// inside the deadline, and write a stats record with live search counters.
func TestCLIDisccliObservability(t *testing.T) {
	datagen := buildTool(t, "datagen")
	disccli := buildTool(t, "disccli")

	dir := t.TempDir()
	raw := filepath.Join(dir, "iris.csv")
	statsPath := filepath.Join(dir, "stats.json")

	out, err := exec.Command(datagen, "-dataset", "Iris", "-seed", "5", "-scale", "0.3").Output()
	if err != nil {
		t.Fatalf("datagen: %v", err)
	}
	if err := os.WriteFile(raw, out, 0o644); err != nil {
		t.Fatal(err)
	}

	var stderr bytes.Buffer
	fix := exec.Command(disccli, "-in", raw, "-out", filepath.Join(dir, "fixed.csv"),
		"-progress", "-deadline", "2m", "-stats-json", statsPath, "-report")
	fix.Stderr = &stderr
	if err := fix.Run(); err != nil {
		t.Fatalf("disccli: %v\n%s", err, stderr.String())
	}
	log := stderr.String()
	if !strings.Contains(log, "saving") {
		t.Errorf("-progress emitted no progress lines:\n%s", log)
	}
	if !strings.Contains(log, "not processed") {
		t.Errorf("-report trailer missing the failure split:\n%s", log)
	}

	b, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("-stats-json wrote nothing: %v", err)
	}
	var rec struct {
		Tuples   int `json:"tuples"`
		Outliers int `json:"outliers"`
		Saved    int `json:"saved"`
		Stats    struct {
			Nodes        int64 `json:"nodes"`
			LBPrunes     int64 `json:"lb_prunes"`
			MemoHits     int64 `json:"memo_hits"`
			RangeQueries int64 `json:"range_queries"`
			DistEvals    int64 `json:"dist_evals"`
		} `json:"stats"`
		Timings struct {
			TotalS float64 `json:"total_s"`
			SaveS  float64 `json:"save_s"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatalf("stats JSON does not parse: %v\n%s", err, b)
	}
	if rec.Tuples == 0 || rec.Outliers == 0 {
		t.Fatalf("stats record empty: %s", b)
	}
	if rec.Stats.Nodes == 0 || rec.Stats.LBPrunes == 0 || rec.Stats.MemoHits == 0 {
		t.Errorf("live search counters missing (want nodes, lb_prunes, memo_hits all > 0): %s", b)
	}
	if rec.Stats.RangeQueries < int64(rec.Tuples) {
		t.Errorf("range_queries %d < tuples %d — detection pass not counted", rec.Stats.RangeQueries, rec.Tuples)
	}
	if rec.Stats.DistEvals == 0 {
		t.Errorf("no distance evaluations counted: %s", b)
	}
	if rec.Timings.TotalS <= 0 || rec.Timings.TotalS < rec.Timings.SaveS {
		t.Errorf("phase timings inconsistent: %s", b)
	}
}

func TestCLIDiscbenchListAndRun(t *testing.T) {
	discbench := buildTool(t, "discbench")

	out, err := exec.Command(discbench, "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table2", "fig4", "fig10", "ablation"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s", id)
		}
	}

	var runOut, runErr bytes.Buffer
	bench := exec.Command(discbench, "-exp", "fig9", "-scale", "0.15", "-format", "csv", "-v", "-stats-json", "-")
	bench.Stdout = &runOut
	bench.Stderr = &runErr
	if err := bench.Run(); err != nil {
		t.Fatalf("fig9: %v\n%s", err, runErr.String())
	}
	if !strings.Contains(runOut.String(), "# Fig 9(a)") || !strings.Contains(runOut.String(), "dirty") {
		t.Errorf("fig9 csv output wrong:\n%s", runOut.String())
	}
	if !strings.Contains(runErr.String(), "DISC runs") {
		t.Errorf("-v did not print per-experiment search counters:\n%s", runErr.String())
	}
	// -stats-json - appends a JSON map keyed by experiment id to stderr.
	if i := strings.Index(runErr.String(), "{"); i < 0 {
		t.Errorf("-stats-json - wrote no JSON:\n%s", runErr.String())
	} else {
		var m map[string]struct {
			Runs  int64 `json:"runs"`
			Stats struct {
				Nodes int64 `json:"nodes"`
			} `json:"stats"`
		}
		if err := json.Unmarshal([]byte(runErr.String()[i:]), &m); err != nil {
			t.Errorf("-stats-json output does not parse: %v", err)
		} else if e := m["fig9"]; e.Runs == 0 || e.Stats.Nodes == 0 {
			t.Errorf("fig9 stats entry empty: %+v", m)
		}
	}

	// Unknown experiment fails cleanly.
	if err := exec.Command(discbench, "-exp", "nope").Run(); err == nil {
		t.Error("unknown experiment accepted")
	}
}
