package disc_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	disc "repro"
)

// discserveProc is one running discserve child under test.
type discserveProc struct {
	cmd     *exec.Cmd
	base    string
	waitErr chan error
}

// startDiscserve launches the binary and waits for the address announcement,
// skipping earlier stderr lines (the fault-injection banner, log records).
func startDiscserve(t *testing.T, bin string, args ...string) *discserveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting discserve: %v", err)
	}
	p := &discserveProc{cmd: cmd, waitErr: make(chan error, 1)}
	go func() { p.waitErr <- cmd.Wait() }()
	t.Cleanup(func() { cmd.Process.Kill() })

	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	deadline := time.After(30 * time.Second)
	const prefix = "discserve: listening on "
	for {
		select {
		case line, open := <-lines:
			if !open {
				t.Fatal("discserve stderr closed before the address announcement")
			}
			if strings.HasPrefix(line, prefix) {
				p.base = "http://" + strings.TrimPrefix(line, prefix)
				// Keep draining stderr so the child never blocks on a full pipe.
				go func() {
					for range lines {
					}
				}()
				return p
			}
		case err := <-p.waitErr:
			t.Fatalf("discserve exited before listening: %v", err)
		case <-deadline:
			t.Fatal("discserve never announced its address")
		}
	}
}

// waitReady polls /readyz until it answers 200.
func (p *discserveProc) waitReady(t *testing.T) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(p.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("discserve never became ready")
}

func chaosCSV(t *testing.T) string {
	t.Helper()
	rel := disc.NewRelation(disc.NewNumericSchema("x", "y"))
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			rel.Append(disc.Tuple{disc.Num(float64(i) * 0.4), disc.Num(float64(j) * 0.4)})
		}
	}
	var buf bytes.Buffer
	if err := disc.WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJSONTo(t *testing.T, base, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

// TestServeChaosKillRestartRecovers is the crash-safety acceptance: build a
// session, SIGKILL the server (no drain, no warning), restart over the same
// data dir, and the session is back — warm, same id, no re-detection — and
// serving saves.
func TestServeChaosKillRestartRecovers(t *testing.T) {
	discserve := buildTool(t, "discserve")
	dataDir := t.TempDir()

	p1 := startDiscserve(t, discserve, "-data-dir", dataDir, "-log-level", "error")
	p1.waitReady(t)
	resp, body := postJSONTo(t, p1.base, "/v1/datasets", map[string]any{
		"name": "chaos", "csv": chaosCSV(t), "eps": 1.0, "eta": 3, "kappa": 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d, body %s", resp.StatusCode, body)
	}
	var session struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &session); err != nil {
		t.Fatalf("decode session: %v\n%s", err, body)
	}

	// SIGKILL: no drain, no deferred persistence — only what the durable
	// store already published survives.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p1.waitErr

	p2 := startDiscserve(t, discserve, "-data-dir", dataDir, "-log-level", "error")
	p2.waitReady(t)
	client := &http.Client{Timeout: 30 * time.Second}
	gresp, err := client.Get(p2.base + "/v1/datasets/" + session.ID)
	if err != nil {
		t.Fatal(err)
	}
	gbody, _ := io.ReadAll(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("session %s not recovered after SIGKILL: status %d, body %s",
			session.ID, gresp.StatusCode, gbody)
	}
	var info struct {
		Recovered   bool  `json:"recovered"`
		IndexBuilds int64 `json:"index_builds"`
		Timings     struct {
			DetectS float64 `json:"detect_s"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(gbody, &info); err != nil {
		t.Fatalf("decode info: %v\n%s", err, gbody)
	}
	if !info.Recovered || info.IndexBuilds != 2 || info.Timings.DetectS != 0 {
		t.Fatalf("recovered session = %s, want recovered=true index_builds=2 detect_s=0", gbody)
	}
	resp, body = postJSONTo(t, p2.base, "/v1/datasets/"+session.ID+"/save",
		map[string]any{"tuple": []float64{25, 25}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save on recovered session: status %d, body %s", resp.StatusCode, body)
	}
	var adj struct {
		Saved bool `json:"saved"`
	}
	if err := json.Unmarshal(body, &adj); err != nil {
		t.Fatal(err)
	}
	if !adj.Saved {
		t.Fatalf("outlier not saved after recovery: %s", body)
	}

	// The store counters confirm the path taken: one load, one recovery.
	var varz struct {
		Store struct {
			Stats struct {
				SnapshotLoads     int64 `json:"snapshot_loads"`
				RecoveredSessions int64 `json:"recovered_sessions"`
			} `json:"stats"`
		} `json:"store"`
	}
	vresp, err := client.Get(p2.base + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	vbody, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	if err := json.Unmarshal(vbody, &varz); err != nil {
		t.Fatal(err)
	}
	if varz.Store.Stats.SnapshotLoads != 1 || varz.Store.Stats.RecoveredSessions != 1 {
		t.Errorf("store stats = %+v, want 1 load / 1 recovered", varz.Store.Stats)
	}
}

// TestServeChaosKillDuringSnapshotWrite kills the server inside the
// snapshot write — a fault-injected 2s stall between the temp-file fsync and
// the rename — and asserts the torn write is invisible after restart: the
// temp file is cleaned, no session resurrects from it, and the server comes
// up healthy.
func TestServeChaosKillDuringSnapshotWrite(t *testing.T) {
	discserve := buildTool(t, "discserve")
	dataDir := t.TempDir()

	p1 := startDiscserve(t, discserve,
		"-data-dir", dataDir,
		"-fault", "snapshot.write:sleep:2s",
		"-log-level", "error",
	)
	p1.waitReady(t)

	// The upload blocks inside the stalled snapshot write; run it async —
	// ignoring its result, since the kill below rips the connection out from
	// under it — and watch the data dir for the temp file instead.
	uploadBody, err := json.Marshal(map[string]any{
		"name": "torn", "csv": chaosCSV(t), "eps": 1.0, "eta": 3, "kappa": 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Post(p1.base+"/v1/datasets", "application/json", bytes.NewReader(uploadBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	var sawTemp bool
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(dataDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				sawTemp = true
			}
		}
		if sawTemp {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawTemp {
		t.Fatal("no in-flight temp snapshot appeared; the kill window never opened")
	}
	// Kill inside the write window: the temp file exists, the rename that
	// would publish it has not happened.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p1.waitErr

	p2 := startDiscserve(t, discserve, "-data-dir", dataDir, "-log-level", "error")
	p2.waitReady(t)
	// The torn write is gone and nothing was published from it.
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("torn temp file %s survived the restart", e.Name())
		}
		if filepath.Ext(e.Name()) == ".snap" {
			t.Errorf("unexpected published snapshot %s from a torn write", e.Name())
		}
	}
	var list struct {
		Sessions []json.RawMessage `json:"sessions"`
	}
	client := &http.Client{Timeout: 30 * time.Second}
	lresp, err := client.Get(p2.base + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	lbody, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if err := json.Unmarshal(lbody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 0 {
		t.Errorf("%d sessions resurrected from a torn write: %s", len(list.Sessions), lbody)
	}
	// The restarted server is fully functional.
	resp, body := postJSONTo(t, p2.base, "/v1/datasets", map[string]any{
		"name": "fresh", "csv": chaosCSV(t), "eps": 1.0, "eta": 3, "kappa": 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload after torn-write restart: status %d, body %s", resp.StatusCode, body)
	}

	// SIGTERM drains cleanly even after all that.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p2.waitErr:
		if err != nil {
			t.Fatalf("discserve exited nonzero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("discserve did not exit after SIGTERM")
	}
}
