package disc_test

import (
	"fmt"

	disc "repro"
)

// ExampleSave shows the full DISC pipeline on the Figure 1 scenario: a
// dense cluster, one tuple with a single corrupted attribute, one natural
// outlier.
func ExampleSave() {
	rel := disc.NewRelation(disc.NewNumericSchema("length", "width"))
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			rel.Append(disc.Tuple{disc.Num(float64(i) * 0.5), disc.Num(float64(j) * 0.5)})
		}
	}
	rel.Append(disc.Tuple{disc.Num(10), disc.Num(1.5)}) // length corrupted
	rel.Append(disc.Tuple{disc.Num(40), disc.Num(-40)}) // natural outlier

	res, _ := disc.Save(rel, disc.Constraints{Eps: 1.5, Eta: 3}, disc.Options{Kappa: 1})
	fmt.Printf("outliers=%d saved=%d natural=%d\n",
		len(res.Detection.Outliers), res.Saved, res.Natural)
	for _, adj := range res.Adjustments {
		if adj.Saved() {
			fmt.Printf("adjusted attributes: %v, width kept: %v\n",
				adj.Adjusted.Attrs(2), adj.Tuple[1].Num == 1.5)
		}
	}
	// Output:
	// outliers=2 saved=1 natural=1
	// adjusted attributes: [0], width kept: true
}

// ExampleDetect shows the inlier/outlier split under distance constraints.
func ExampleDetect() {
	rel := disc.NewRelation(disc.NewNumericSchema("x"))
	for i := 0; i < 10; i++ {
		rel.Append(disc.Tuple{disc.Num(float64(i) * 0.1)})
	}
	rel.Append(disc.Tuple{disc.Num(50)})

	det, _ := disc.Detect(rel, disc.Constraints{Eps: 0.5, Eta: 2})
	fmt.Printf("inliers=%d outliers=%d\n", len(det.Inliers), len(det.Outliers))
	// Output:
	// inliers=10 outliers=1
}

// ExampleDBSCAN clusters a repaired relation.
func ExampleDBSCAN() {
	rel := disc.NewRelation(disc.NewNumericSchema("x"))
	for _, v := range []float64{0, 0.1, 0.2, 5, 5.1, 5.2, 99} {
		rel.Append(disc.Tuple{disc.Num(v)})
	}
	res := disc.DBSCAN(rel, disc.DBSCANConfig{Eps: 0.3, MinPts: 1})
	fmt.Printf("clusters=%d noise=%v\n", res.K, res.Labels[6] == -1)
	// Output:
	// clusters=2 noise=true
}

// ExampleJaccard scores adjusted attributes against ground truth (§4.3).
func ExampleJaccard() {
	truth := disc.AttrMask(0).With(1)
	adjusted := disc.AttrMask(0).With(1).With(3)
	fmt.Printf("%.2f\n", disc.Jaccard(truth, adjusted))
	// Output:
	// 0.50
}
