// Package disc is a Go implementation of DISC — saving outliers by minimal
// value adjustment under DIStance constraints for better Clustering — from
// "On Saving Outliers for Better Clustering over Noisy Data" (Song, Gao,
// Huang, Wang; SIGMOD 2021).
//
// A tuple violates the distance constraints (ε, η) when it has fewer than
// η neighbors within distance ε; DISC repairs such dirty outliers by
// adjusting as few attribute values as possible until they satisfy the
// constraints again, while leaving natural outliers (true abnormal
// behaviour) untouched. The adjusted data clusters better and improves
// downstream classification and record matching.
//
// Quick start:
//
//	rel := disc.NewRelation(disc.NewNumericSchema("x", "y"))
//	// ... append tuples ...
//	params, _ := disc.DetermineParams(rel, disc.ParamOptions{})
//	res, _ := disc.Save(rel, disc.Constraints{Eps: params.Eps, Eta: params.Eta}, disc.Options{Kappa: 2})
//	clusters := disc.DBSCAN(res.Repaired, disc.DBSCANConfig{Eps: params.Eps, MinPts: params.Eta})
//
// The library also ships the paper's complete experimental apparatus: the
// DBSCAN / K-Means / K-Means-- / CCKM / SREM / KMC clustering substrates,
// the DORC / ERACER / Holistic / HoloClean cleaning baselines, the Exact
// enumeration algorithm, SSE outlier explanation, a CART decision tree, a
// rule-based record matcher, synthetic Table 1 datasets, and runners for
// every table and figure of the evaluation (see the repro/internal/exp
// package and cmd/discbench).
package disc

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/metric"
	"repro/internal/neighbors"
	"repro/internal/obs"
)

// Core data model (see internal/data).
type (
	// Schema is an ordered list of attributes plus the Lp aggregation
	// norm (L2 by default, as in the paper).
	Schema = data.Schema
	// Attribute describes one column: numeric or textual, with an
	// optional distance scale and textual distance function.
	Attribute = data.Attribute
	// Kind distinguishes numeric from textual attributes.
	Kind = data.Kind
	// Value is one attribute value.
	Value = data.Value
	// Tuple is one row.
	Tuple = data.Tuple
	// Relation is a set of tuples over a schema.
	Relation = data.Relation
	// AttrMask is a bitset of attribute indexes.
	AttrMask = data.AttrMask
	// Dataset bundles a relation with experiment ground truth.
	Dataset = data.Dataset
)

// Attribute kinds.
const (
	Numeric = data.Numeric
	Text    = data.Text
)

// Norms for multi-attribute distance aggregation.
const (
	L2   = metric.L2
	L1   = metric.L1
	LInf = metric.LInf
)

// Constructors re-exported from the data model.
var (
	// Num wraps a numeric value.
	Num = data.Num
	// Str wraps a textual value.
	Str = data.Str
	// NewRelation returns an empty relation over a schema.
	NewRelation = data.NewRelation
	// NewNumericSchema builds an all-numeric schema.
	NewNumericSchema = data.NewNumericSchema
	// FullMask returns the mask of attributes 0..m-1.
	FullMask = data.FullMask
	// ReadCSV and WriteCSV (de)serialize relations.
	ReadCSV  = data.ReadCSV
	WriteCSV = data.WriteCSV
)

// The DISC contribution (see internal/core).
type (
	// Constraints are the distance constraints (ε, η) of Definition 1.
	Constraints = core.Constraints
	// Options tune Algorithm 1 (κ restriction, pruning, parallelism).
	Options = core.Options
	// Detection is the inlier/outlier split of a relation.
	Detection = core.Detection
	// Adjustment is the result of saving one outlier.
	Adjustment = core.Adjustment
	// SaveResult is the outcome of saving every outlier of a relation.
	SaveResult = core.SaveResult
	// Saver saves outliers against a fixed inlier set.
	Saver = core.Saver
	// ExactSaver is the O(d^m·n) enumeration baseline of §2.3.
	ExactSaver = core.ExactSaver
	// ParamOptions tune the Poisson-based parameter determination.
	ParamOptions = core.ParamOptions
	// ParamChoice is a determined (ε, η) setting.
	ParamChoice = core.ParamChoice
	// SaveError records one outlier a SaveResult could not process.
	SaveError = core.SaveError
)

// Observability (see internal/obs). Wire Options.Progress and
// Options.Logger to receive these; SaveResult carries the merged
// SearchStats and PhaseTimings of the whole pipeline.
type (
	// SearchStats are the Algorithm 1 search counters (nodes expanded,
	// Proposition 3 prunes, memo hits, Proposition 5 witnesses) plus the
	// neighbor-index traffic of a run.
	SearchStats = obs.SearchStats
	// PhaseTimings breaks a Save run into pipeline phases.
	PhaseTimings = obs.PhaseTimings
	// Progress is one snapshot of a running batch, delivered to
	// Options.Progress at a bounded rate.
	Progress = obs.Progress
)

// Detect splits a relation into inliers and outliers under the
// constraints.
func Detect(rel *Relation, cons Constraints) (*Detection, error) {
	return core.Detect(rel, cons, nil)
}

// DetectContext is Detect with cancellation: the counting pass stops
// promptly once ctx is cancelled and the cancellation is returned as an
// error.
func DetectContext(ctx context.Context, rel *Relation, cons Constraints) (*Detection, error) {
	return core.DetectContext(ctx, rel, cons, nil)
}

// DetectWithIndex is DetectContext against a caller-supplied index over
// rel, so a session-caching layer (or any caller running detection more
// than once) reuses one built index instead of rebuilding it per call.
// Detection.IndexBuild stays zero on this path.
func DetectWithIndex(ctx context.Context, rel *Relation, cons Constraints, idx NeighborIndex) (*Detection, error) {
	return core.DetectContext(ctx, rel, cons, idx)
}

// ApproxDetectOptions configure the approximate detection path: sampled
// neighbor-count estimates with exact borderline refinement (confidence,
// sample size policy, exact fallback floor).
type ApproxDetectOptions = core.ApproxOptions

// DefaultApproxConfidence is the certificate confidence approximate
// detection uses when callers enable it without picking one.
const DefaultApproxConfidence = core.DefaultApproxConfidence

// DetectApprox splits a relation approximately: each tuple's ε-neighbor
// count is estimated from a probe against a sampled sub-index, clear
// inliers and outliers are accepted from a two-sided confidence bound (or
// the grid cube bound), and only the borderline band pays the exact
// counting machinery. The returned Detection is a drop-in for Detect's —
// identical split whenever refinement is on — at a cost that grows with
// the band, not with n. Small relations fall back to the exact pass.
func DetectApprox(rel *Relation, cons Constraints, ap ApproxDetectOptions) (*Detection, error) {
	return core.DetectApprox(rel, cons, nil, ap)
}

// DetectApproxContext is DetectApprox with cancellation.
func DetectApproxContext(ctx context.Context, rel *Relation, cons Constraints, ap ApproxDetectOptions) (*Detection, error) {
	return core.DetectApproxContext(ctx, rel, cons, nil, ap)
}

// DetectApproxWithIndex is DetectApproxContext against a caller-supplied
// index over rel (the session-caching counterpart of DetectWithIndex); the
// sampled sub-index is still built internally per call.
func DetectApproxWithIndex(ctx context.Context, rel *Relation, cons Constraints, idx NeighborIndex, ap ApproxDetectOptions) (*Detection, error) {
	return core.DetectApproxContext(ctx, rel, cons, idx, ap)
}

// RehydrateDetection reconstructs a Detection from persisted neighbor
// counts and the resolved η, re-deriving the inlier/outlier split without
// re-running the counting pass. It exists for durable session stores that
// checkpoint Detection.Counts: on restart they restore the split from the
// snapshot instead of paying detection again.
func RehydrateDetection(counts []int, eta int) *Detection {
	return core.RehydrateDetection(counts, eta)
}

// Save runs the full DISC pipeline: detect every violation of the distance
// constraints and save each outlier by near-minimal value adjustment
// (Algorithm 1 with the Proposition 3/5 bounds). The input is not
// modified; the repaired copy and the per-outlier adjustments are
// returned.
func Save(rel *Relation, cons Constraints, opts Options) (*SaveResult, error) {
	return core.SaveAll(rel, cons, opts)
}

// SaveContext is Save under budgets: ctx (plus Options.BatchTimeout) bounds
// the whole batch and Options.MaxNodes/Deadline bound each outlier's
// search. Instead of aborting on an expired budget the pipeline degrades:
// completed saves stand, in-flight saves return best-so-far adjustments
// flagged Exhausted, skipped outliers are listed in SaveResult.Errs, and a
// panic inside one outlier's save is recovered into its Errs entry while
// the remaining outliers are still saved.
func SaveContext(ctx context.Context, rel *Relation, cons Constraints, opts Options) (*SaveResult, error) {
	return core.SaveAllContext(ctx, rel, cons, opts)
}

// NewSaver prepares a saver for repeated single-tuple saves against a
// fixed outlier-free relation.
func NewSaver(r *Relation, cons Constraints, opts Options) (*Saver, error) {
	return core.NewSaver(r, cons, opts)
}

// NewSaverContext is NewSaver with cancellation of the η-radius precompute
// pass.
func NewSaverContext(ctx context.Context, r *Relation, cons Constraints, opts Options) (*Saver, error) {
	return core.NewSaverContext(ctx, r, cons, opts)
}

// NewExactSaver prepares the exact value-enumeration baseline; maxDomain
// thins each attribute's candidate domain (0 keeps all observed values).
func NewExactSaver(r *Relation, cons Constraints, maxDomain int) (*ExactSaver, error) {
	return core.NewExactSaver(r, cons, maxDomain)
}

// DetermineParams chooses (ε, η) from the Poisson model of ε-neighbor
// appearance (§2.1.2, Figure 5), optionally from a sample of the data.
func DetermineParams(rel *Relation, opts ParamOptions) (ParamChoice, error) {
	return core.DeterminePoisson(rel, opts)
}

// DetermineParamsContext is DetermineParams under cancellation, degrading
// to the best choice among the ε candidates measured before ctx was
// cancelled (flagged ParamChoice.Exhausted).
func DetermineParamsContext(ctx context.Context, rel *Relation, opts ParamOptions) (ParamChoice, error) {
	return core.DeterminePoissonContext(ctx, rel, opts)
}

// NeighborCounts returns the sampled #ε-neighbor distribution (Figure 5).
func NeighborCounts(rel *Relation, eps, sampleRate float64, seed int64) []int {
	return core.NeighborCounts(rel, eps, sampleRate, seed, nil)
}

// Clustering substrates (see internal/cluster).
type (
	// ClusterResult is a clustering: one label per tuple, -1 = noise.
	ClusterResult = cluster.Result
	// DBSCANConfig parameterizes DBSCAN.
	DBSCANConfig = cluster.DBSCANConfig
	// KMeansConfig parameterizes the K-Means family.
	KMeansConfig = cluster.KMeansConfig
	// SREMConfig parameterizes the EM mixture clustering.
	SREMConfig = cluster.SREMConfig
	// KMCConfig parameterizes coreset K-Means.
	KMCConfig = cluster.KMCConfig
	// OPTICSConfig parameterizes the OPTICS ordering.
	OPTICSConfig = cluster.OPTICSConfig
	// OPTICSResult is the OPTICS ordering plus extracted clustering.
	OPTICSResult = cluster.OPTICSResult
	// AggloConfig parameterizes single-link agglomerative clustering.
	AggloConfig = cluster.AggloConfig
)

// Clustering algorithms of the paper's evaluation (§4.1.1).
var (
	// DBSCAN is density-based clustering over any metric schema.
	DBSCAN = cluster.DBSCAN
	// DBSCANContext, KMeansContext and SREMContext are the cancellable
	// variants: they stop promptly once the context is cancelled and
	// return the partial (DBSCAN) or best-so-far (restarted) clustering
	// alongside the context's error.
	DBSCANContext = cluster.DBSCANContext
	KMeansContext = cluster.KMeansContext
	SREMContext   = cluster.SREMContext
	// KMeans is Lloyd's algorithm with k-means++ seeding and restarts.
	KMeans = cluster.KMeans
	// KMeansMM is K-Means-- (k clusters and l outliers).
	KMeansMM = cluster.KMeansMM
	// CCKM is cardinality-constrained clustering with an outlier cluster.
	CCKM = cluster.CCKM
	// SREM is stability-region EM over Gaussian mixtures.
	SREM = cluster.SREM
	// KMC is coreset K-Means.
	KMC = cluster.KMC
	// OPTICS orders points by density reachability (Ankerst et al.).
	OPTICS = cluster.OPTICS
	// SingleLink is MST-cut agglomerative clustering.
	SingleLink = cluster.SingleLink
)

// NeighborIndex answers ε-range and k-NN queries (see internal/neighbors).
type NeighborIndex = neighbors.Index

// IndexCounters tallies the query traffic of a counting index view: queries
// by kind and the tuple-pair distance evaluations spent answering them. The
// fields are plain int64s — one instance per goroutine, merged only after
// the owner is done.
type IndexCounters = neighbors.Counters

// CountingIndex wraps an index so every query against the view is tallied
// in the supplied counters; the built structure is shared, not copied. It
// is how a serving layer proves its cached index answered a request — query
// counters move while build counters stay put.
var CountingIndex = neighbors.Counting

// BuildIndex picks a neighbor index for the relation (grid for
// low-dimensional numeric data, vantage-point tree otherwise); eps hints
// the grid cell size.
func BuildIndex(rel *Relation, eps float64) NeighborIndex {
	return neighbors.Build(rel, eps)
}

// MutableIndex is a neighbor index supporting single-tuple inserts and
// deletes: the grid absorbs churn natively via its cell map, the other
// index kinds buffer inserts in a delta scanned alongside the frozen
// base and merged on a size threshold; deletes tombstone rows in place.
// See internal/neighbors.Mutable.
type MutableIndex = neighbors.Mutable

// IndexKind selects a concrete index implementation for NewMutableIndex;
// parse wire names with ParseIndexKind.
type IndexKind = neighbors.IndexKind

// Index kinds: automatic selection (Build's policy), brute scan, grid,
// k-d tree, vantage-point tree.
const (
	KindAuto  = neighbors.KindAuto
	KindBrute = neighbors.KindBrute
	KindGrid  = neighbors.KindGrid
	KindKD    = neighbors.KindKD
	KindVP    = neighbors.KindVP
)

// ParseIndexKind maps the wire names ("auto", "brute", "grid", "kd",
// "vp") to an IndexKind.
var ParseIndexKind = neighbors.ParseIndexKind

// NewMutableIndex builds a mutable neighbor index over rel; kind selects
// the concrete base (KindAuto replicates BuildIndex's policy). Grid and
// kd require an all-numeric schema.
func NewMutableIndex(rel *Relation, eps float64, kind IndexKind) (*MutableIndex, error) {
	return neighbors.NewMutable(rel, eps, kind)
}
