package disc_test

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	disc "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TestSaveSingleAllocsWithHistograms is the telemetry layer's alloc guard:
// the BenchmarkSaveSingle workload must stay at 1 allocation per save with
// the serving histograms recording around it — proof that Observe's three
// atomic adds never touch the heap and the hot path survived the
// instrumentation.
func TestSaveSingleAllocsWithHistograms(t *testing.T) {
	ds, err := disc.Table1("Letter", 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons := disc.Constraints{Eps: ds.Eps, Eta: ds.Eta}
	det, err := disc.Detect(ds.Rel, cons)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Outliers) == 0 {
		t.Skip("no outliers in the workload")
	}
	saver, err := disc.NewSaver(ds.Rel.Subset(det.Inliers), cons, disc.Options{Kappa: 2})
	if err != nil {
		t.Fatal(err)
	}
	to := ds.Rel.Tuples[det.Outliers[0]]
	var hists obs.ServeHists
	saver.Save(to) // warm the arena pool

	allocs := testing.AllocsPerRun(20, func() {
		start := time.Now()
		adj := saver.Save(to)
		hists.Save.ObserveSince(start)
		hists.SaveNodes.Observe(adj.Stats.Nodes)
	})
	budget := 1.0
	if raceDetector {
		// The race detector's sync.Pool drops items, re-admitting the
		// arena allocations the pool normally absorbs.
		budget = 24
	}
	if allocs > budget {
		t.Errorf("save+observe allocates %.1f per op, want <= %.0f (histograms broke the hot path?)", allocs, budget)
	}
	if s := hists.Save.Snapshot(); s.Count < 20 {
		t.Errorf("histogram recorded %d observations, want >= 20", s.Count)
	}
}

// TestObservabilityDocsDrift keeps docs/OBSERVABILITY.md and the obs
// counter structs from drifting apart: every json counter tag in obs must
// appear backticked in the doc, and every backticked token in the first
// column of a doc table must be a real counter tag. Wired into `make
// check` so a counter added without docs (or docs describing a removed
// counter) fails CI.
func TestObservabilityDocsDrift(t *testing.T) {
	raw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	var tags []string
	for _, v := range []any{
		obs.SearchStats{}, obs.EndpointSnapshot{},
		obs.StoreSnapshot{}, obs.ClientSnapshot{}, obs.CoordSnapshot{},
	} {
		tags = append(tags, obs.CounterNames(v)...)
	}
	for _, tag := range tags {
		if !strings.Contains(text, "`"+tag+"`") {
			t.Errorf("counter tag %q is not documented in docs/OBSERVABILITY.md", tag)
		}
	}

	known := map[string]bool{}
	for _, tag := range tags {
		known[tag] = true
	}
	// Per-session counters exported through SessionInfo belong to the same
	// documented universe; `index` is its string-typed info field.
	for _, tag := range obs.CounterNames(serve.SessionInfo{}) {
		known[tag] = true
	}
	known["index"] = true
	// Histogram fields and float gauges (SessionInfo's approx_band_frac)
	// are not int64 counters, so CounterNames skips them; their json tags
	// are documented in the tables all the same.
	for _, v := range []any{obs.ServeHistsSnapshot{}, obs.EndpointSnapshot{}, obs.StoreSnapshot{}, serve.SessionInfo{}} {
		rt := reflect.TypeOf(v)
		for i := 0; i < rt.NumField(); i++ {
			if name, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ","); name != "" && name != "-" {
				known[name] = true
			}
		}
	}

	token := regexp.MustCompile("`([a-z0-9_]+)`")
	for i, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "|") ||
			strings.Contains(line, "(`json` key)") || // table header
			strings.HasPrefix(line, "|---") { // separator
			continue
		}
		cells := strings.SplitN(line, "|", 3)
		if len(cells) < 3 {
			continue
		}
		for _, m := range token.FindAllStringSubmatch(cells[1], -1) {
			if !known[m[1]] {
				t.Errorf("docs/OBSERVABILITY.md line %d documents %q, which is not a counter tag in obs/serve", i+1, m[1])
			}
		}
	}
}
