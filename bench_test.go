package disc_test

// One benchmark per table and figure of the paper's evaluation (run the
// corresponding experiment end-to-end at a reduced scale and report
// ns/op), plus ablation benches for the design choices DESIGN.md calls
// out: lower-bound pruning, X-set memoization, the κ restriction, the
// neighbor-index choice, and parallel saving.
//
//	go test -bench 'BenchmarkTable|BenchmarkFig' -benchmem
//	go test -bench BenchmarkAblation -benchmem

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	disc "repro"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/neighbors"
	"repro/internal/serve"
)

// benchScale keeps a full experiment pass benchable; the per-experiment
// defaults already downscale the big datasets further.
const benchScale = 0.25

func benchExperiment(b *testing.B, id string) {
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exp.Config{Seed: 1, SizeScale: benchScale}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }

// ablationWorkload builds a mid-size Letter-style dataset once per bench.
func ablationWorkload(b *testing.B) (*disc.Dataset, disc.Constraints) {
	b.Helper()
	ds, err := disc.Table1("Letter", 0.15, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ds, disc.Constraints{Eps: ds.Eps, Eta: ds.Eta}
}

func benchSaveAll(b *testing.B, ds *disc.Dataset, cons disc.Constraints, opts disc.Options) {
	b.Helper()
	b.ReportAllocs()
	saved := 0
	for i := 0; i < b.N; i++ {
		res, err := disc.Save(ds.Rel, cons, opts)
		if err != nil {
			b.Fatal(err)
		}
		saved = res.Saved
	}
	b.ReportMetric(float64(saved), "saved")
}

// BenchmarkAblationPruning compares Algorithm 1 with and without the
// Proposition 3 lower-bound pruning.
func BenchmarkAblationPruning(b *testing.B) {
	ds, cons := ablationWorkload(b)
	b.Run("pruning=on", func(b *testing.B) {
		benchSaveAll(b, ds, cons, disc.Options{Kappa: 2})
	})
	b.Run("pruning=off", func(b *testing.B) {
		benchSaveAll(b, ds, cons, disc.Options{Kappa: 2, DisablePruning: true})
	})
}

// BenchmarkAblationMemo compares the memoized X-set deduplication against
// re-processing duplicate sets.
func BenchmarkAblationMemo(b *testing.B) {
	ds, cons := ablationWorkload(b)
	b.Run("memo=on", func(b *testing.B) {
		benchSaveAll(b, ds, cons, disc.Options{Kappa: 2})
	})
	b.Run("memo=off", func(b *testing.B) {
		benchSaveAll(b, ds, cons, disc.Options{Kappa: 2, DisableMemo: true})
	})
}

// BenchmarkAblationKappa sweeps the adjusted-attribute budget κ: the
// O(m^{κ+1}·n) cost of §3.3 versus the unrestricted recursion.
func BenchmarkAblationKappa(b *testing.B) {
	ds, cons := ablationWorkload(b)
	for _, kappa := range []int{1, 2, 3, 0} {
		name := "kappa=unrestricted"
		if kappa > 0 {
			name = "kappa=" + string(rune('0'+kappa))
		}
		b.Run(name, func(b *testing.B) {
			benchSaveAll(b, ds, cons, disc.Options{Kappa: kappa})
		})
	}
}

// BenchmarkAblationIndex compares ε-range query throughput across the
// three neighbor indexes on the Flight geometry (m=3 numeric).
func BenchmarkAblationIndex(b *testing.B) {
	ds, err := disc.Table1("Flight", 0.025, 1)
	if err != nil {
		b.Fatal(err)
	}
	builders := map[string]func() neighbors.Index{
		"brute":  func() neighbors.Index { return neighbors.NewBrute(ds.Rel) },
		"grid":   func() neighbors.Index { return neighbors.NewGrid(ds.Rel, ds.Eps) },
		"kdtree": func() neighbors.Index { return neighbors.NewKDTree(ds.Rel) },
		"vptree": func() neighbors.Index { return neighbors.NewVPTree(ds.Rel, 1) },
	}
	for name, build := range builders {
		b.Run(name, func(b *testing.B) {
			idx := build()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := i % ds.N()
				idx.CountWithin(ds.Rel.Tuples[q], ds.Eps, q, 0)
			}
		})
	}
}

// BenchmarkAblationParallel compares sequential and parallel outlier
// saving.
func BenchmarkAblationParallel(b *testing.B) {
	ds, cons := ablationWorkload(b)
	b.Run("workers=1", func(b *testing.B) {
		benchSaveAll(b, ds, cons, disc.Options{Kappa: 2, Workers: 1})
	})
	b.Run("workers=all", func(b *testing.B) {
		benchSaveAll(b, ds, cons, disc.Options{Kappa: 2})
	})
}

// BenchmarkSaveSingle measures one Algorithm 1 invocation against a fixed
// inlier set (the unit the O(2^m·n) analysis of §3.3 talks about).
func BenchmarkSaveSingle(b *testing.B) {
	ds, cons := ablationWorkload(b)
	det, err := disc.Detect(ds.Rel, cons)
	if err != nil {
		b.Fatal(err)
	}
	if len(det.Outliers) == 0 {
		b.Skip("no outliers")
	}
	saver, err := disc.NewSaver(ds.Rel.Subset(det.Inliers), cons, disc.Options{Kappa: 2})
	if err != nil {
		b.Fatal(err)
	}
	to := ds.Rel.Tuples[det.Outliers[0]]
	b.ReportAllocs()
	b.ResetTimer()
	var st disc.SearchStats
	for i := 0; i < b.N; i++ {
		st = saver.Save(to).Stats
	}
	// Search effort per save, tracked in BENCH_*.json alongside ns/op:
	// nodes is the unit the O(m^{κ+1}·n) analysis counts (masks whose
	// candidate list was processed), prunes the visits the Proposition 3
	// bounds cut before expansion — on this outlier the κ=2 start masks are
	// pruned outright, so nodes stays 0 and the prune counters carry the
	// effort signal.
	b.ReportMetric(float64(st.Nodes), "nodes")
	b.ReportMetric(float64(st.LBPrunes+st.CandPrunes), "prunes")
	b.ReportMetric(float64(st.MemoHits), "memo_hits")
}

// BenchmarkExactSingle measures the §2.3 enumeration baseline on the same
// workload (thinned domains).
func BenchmarkExactSingle(b *testing.B) {
	ds, cons := ablationWorkload(b)
	det, err := disc.Detect(ds.Rel, cons)
	if err != nil {
		b.Fatal(err)
	}
	if len(det.Outliers) == 0 {
		b.Skip("no outliers")
	}
	ex, err := disc.NewExactSaver(ds.Rel.Subset(det.Inliers), cons, 6)
	if err != nil {
		b.Fatal(err)
	}
	ex.Kappa = 2
	to := ds.Rel.Tuples[det.Outliers[0]]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Save(to)
	}
}

// BenchmarkClusterDBSCAN measures the downstream density clustering pass
// that consumes repaired relations.
func BenchmarkClusterDBSCAN(b *testing.B) {
	ds, cons := ablationWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disc.DBSCAN(ds.Rel, disc.DBSCANConfig{Eps: cons.Eps, MinPts: cons.Eta})
	}
}

// mixedWorkload builds the mixed numeric+text fixture once per bench: the
// distance-layer worst case (per-value kind branches, O(len²) string
// metrics, repeated identical string pairs) that the compiled kernels
// target. Kept distinct from ablationWorkload (all-numeric Letter) so the
// BENCH_*.json trajectory separates columnar-layout wins from
// text-cache wins.
func mixedWorkload(b *testing.B) (*disc.Dataset, disc.Constraints) {
	b.Helper()
	ds, err := disc.GenMixed(disc.MixedSpec{
		Name: "MixedBench", N: 800, Entities: 650, DirtyFrac: 0.05,
		Eps: 2.0, Eta: 3, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds, disc.Constraints{Eps: ds.Eps, Eta: ds.Eta}
}

// BenchmarkDetectMixed measures violation detection over the mixed
// numeric+text fixture — the headline number for the compiled distance
// kernels (BENCH_5.json before/after).
func BenchmarkDetectMixed(b *testing.B) {
	ds, cons := mixedWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(ds.Rel, cons, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaveSingleMixed measures one Algorithm 1 invocation on the
// mixed fixture, where the candidate table and bound evaluations pay for
// text distances.
func BenchmarkSaveSingleMixed(b *testing.B) {
	ds, cons := mixedWorkload(b)
	det, err := disc.Detect(ds.Rel, cons)
	if err != nil {
		b.Fatal(err)
	}
	if len(det.Outliers) == 0 {
		b.Skip("no outliers")
	}
	saver, err := disc.NewSaver(ds.Rel.Subset(det.Inliers), cons, disc.Options{Kappa: 2})
	if err != nil {
		b.Fatal(err)
	}
	to := ds.Rel.Tuples[det.Outliers[0]]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saver.Save(to)
	}
}

// BenchmarkClusterDBSCANMixed measures density clustering over the mixed
// fixture (text distances inside every ε-range expansion).
func BenchmarkClusterDBSCANMixed(b *testing.B) {
	ds, cons := mixedWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disc.DBSCAN(ds.Rel, disc.DBSCANConfig{Eps: cons.Eps, MinPts: cons.Eta})
	}
}

// BenchmarkClusterKMeans measures the centroid clustering pass at the
// dataset's ground-truth K.
func BenchmarkClusterKMeans(b *testing.B) {
	ds, _ := ablationWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := disc.KMeans(ds.Rel, disc.KMeansConfig{K: ds.Classes, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetect measures the violation-detection pass.
func BenchmarkDetect(b *testing.B) {
	ds, cons := ablationWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(ds.Rel, cons, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// serveBenchCSV marshals the ablation dataset once for the serving benches.
func serveBenchCSV(b *testing.B) (string, disc.Constraints) {
	b.Helper()
	ds, cons := ablationWorkload(b)
	var buf bytes.Buffer
	if err := disc.WriteCSV(&buf, ds.Rel); err != nil {
		b.Fatal(err)
	}
	return buf.String(), cons
}

func serveUpload(b *testing.B, h http.Handler, body []byte) string {
	b.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/datasets", bytes.NewReader(body)))
	if w.Code != http.StatusCreated {
		b.Fatalf("upload: status %d, body %s", w.Code, w.Body.String())
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		b.Fatal(err)
	}
	return info.ID
}

// BenchmarkServeSave measures the end-to-end HTTP handler path of one save
// against a warm session: JSON decode, admission, dispatch through the
// batcher, Algorithm 1 against the cached indexes, JSON encode. Against
// BenchmarkSaveSingle the delta is the serving overhead; against
// BenchmarkServeSaveCold the delta is what session caching amortizes away.
func BenchmarkServeSave(b *testing.B) {
	csv, cons := serveBenchCSV(b)
	s := serve.New(serve.Config{BatchWindow: -1, Workers: 1, Logger: nil})
	h := s.Handler()
	create, err := json.Marshal(map[string]any{
		"name": "bench", "csv": csv, "eps": cons.Eps, "eta": cons.Eta, "kappa": 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	id := serveUpload(b, h, create)
	ds, _ := ablationWorkload(b)
	tuple := make([]any, ds.Rel.Schema.M())
	for i := range tuple {
		tuple[i] = 40.0 // far outside the Letter clusters: a real save
	}
	body, err := json.Marshal(map[string]any{"tuple": tuple})
	if err != nil {
		b.Fatal(err)
	}
	path := "/v1/datasets/" + id + "/save"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", path, bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("save: status %d, body %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServeSaveCold pays the whole session build (index construction,
// detection, η-radius precompute) for every save — the one-shot CLI cost
// profile, measured on the same workload as BenchmarkServeSave.
func BenchmarkServeSaveCold(b *testing.B) {
	csv, cons := serveBenchCSV(b)
	s := serve.New(serve.Config{BatchWindow: -1, Workers: 1, Logger: nil})
	h := s.Handler()
	create, err := json.Marshal(map[string]any{
		"name": "bench", "csv": csv, "eps": cons.Eps, "eta": cons.Eta, "kappa": 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, _ := ablationWorkload(b)
	tuple := make([]any, ds.Rel.Schema.M())
	for i := range tuple {
		tuple[i] = 40.0
	}
	body, err := json.Marshal(map[string]any{"tuple": tuple})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := serveUpload(b, h, create)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/datasets/"+id+"/save", bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("save: status %d, body %s", w.Code, w.Body.String())
		}
		del := httptest.NewRecorder()
		h.ServeHTTP(del, httptest.NewRequest("DELETE", "/v1/datasets/"+id, nil))
	}
}

// BenchmarkDetermineParams measures the Poisson parameter determination at
// the sampling rate Table 4 recommends.
func BenchmarkDetermineParams(b *testing.B) {
	ds, _ := ablationWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := disc.DetermineParams(ds.Rel, disc.ParamOptions{SampleRate: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
