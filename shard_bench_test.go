package disc_test

// Sharded vs unsharded detect/save at n=64k, the BENCH_9.json suite: the
// same clustered relation run through the single-node pipeline and
// through the ε-halo shard engine at S ∈ {1,2,4,8}. The sharded runs
// include the partitioning cost — the honest end-to-end comparison.
//
//	go test -bench BenchmarkShard -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	disc "repro"
)

// shardBenchSide³ rows form the inlier lattice (40³ = 64000, the n=64k
// workload); shardBenchNoise more are distant background noise (the
// outliers the save legs repair). The lattice spacing of 0.5 under ε=1
// gives every inlier ~32 neighbors — enough density to be firmly inside
// η without making full neighbor counting quadratic.
const (
	shardBenchSide  = 40
	shardBenchNoise = 96
)

var shardBenchCons = disc.Constraints{Eps: 1.0, Eta: 8}

var shardBench struct {
	once sync.Once
	rel  *disc.Relation
}

// shardBenchRelation builds the 64k workload once per process: a jittered
// 0.5-spaced lattice plus sparse uniform noise far outside it.
func shardBenchRelation(b *testing.B) *disc.Relation {
	b.Helper()
	shardBench.once.Do(func() {
		rng := rand.New(rand.NewSource(97))
		rel := disc.NewRelation(disc.NewNumericSchema("x", "y", "z"))
		jit := func() float64 { return (rng.Float64() - 0.5) * 0.1 }
		for i := 0; i < shardBenchSide; i++ {
			for j := 0; j < shardBenchSide; j++ {
				for k := 0; k < shardBenchSide; k++ {
					rel.Append(disc.Tuple{
						disc.Num(float64(i)*0.5 + jit()),
						disc.Num(float64(j)*0.5 + jit()),
						disc.Num(float64(k)*0.5 + jit()),
					})
				}
			}
		}
		for i := 0; i < shardBenchNoise; i++ {
			rel.Append(disc.Tuple{
				disc.Num(rng.Float64()*40 + 30),
				disc.Num(rng.Float64()*40 + 30),
				disc.Num(rng.Float64()*40 + 30),
			})
		}
		shardBench.rel = rel
	})
	return shardBench.rel
}

func benchShardDetect(b *testing.B, shards int) {
	rel := shardBenchRelation(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var det *disc.Detection
		var err error
		if shards <= 0 {
			det, err = disc.DetectContext(context.Background(), rel, shardBenchCons)
		} else {
			det, _, err = disc.DetectSharded(context.Background(), rel, shardBenchCons,
				disc.ShardOptions{Shards: shards})
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(det.Outliers) == 0 {
			b.Fatal("benchmark relation produced no outliers")
		}
	}
}

func BenchmarkShardDetectUnsharded(b *testing.B) { benchShardDetect(b, 0) }

func BenchmarkShardDetect(b *testing.B) {
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) { benchShardDetect(b, s) })
	}
}

func benchShardSave(b *testing.B, shards int) {
	rel := shardBenchRelation(b)
	opts := disc.Options{Kappa: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var res *disc.SaveResult
		var err error
		if shards <= 0 {
			res, err = disc.SaveContext(context.Background(), rel, shardBenchCons, opts)
		} else {
			res, _, err = disc.SaveSharded(context.Background(), rel, shardBenchCons,
				disc.ShardOptions{Shards: shards, Save: opts})
		}
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed() != 0 {
			b.Fatalf("%d outliers not processed", res.Failed())
		}
	}
}

func BenchmarkShardSaveUnsharded(b *testing.B) { benchShardSave(b, 0) }

func BenchmarkShardSave(b *testing.B) {
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) { benchShardSave(b, s) })
	}
}
