GO ?= go
FUZZTIME ?= 10s

# Perf-trajectory suite: core save/detect, downstream clustering, and the
# three neighbor indexes. `make bench` snapshots it into $(BENCHOUT) under
# $(BENCHKEY) (conventionally "before" at the start of a perf change and
# "after" at the end) via cmd/benchjson, which merges rather than
# overwrites so both snapshots survive in the committed file.
BENCHOUT ?= BENCH_10.json
BENCHKEY ?= after
BENCHPAT = BenchmarkSaveSingle$$|BenchmarkDetect$$|BenchmarkCluster|BenchmarkServeSave|BenchmarkGridWithin$$|BenchmarkGridCountWithin$$|BenchmarkGridKNN$$|BenchmarkVPTreeWithin$$|BenchmarkBruteWithin$$|BenchmarkDetectMixed$$|BenchmarkSaveSingleMixed$$|BenchmarkMutateInsert|BenchmarkRedetectTouched|BenchmarkMutateRebuild|BenchmarkShardDetect|BenchmarkShardSave|BenchmarkDetectApprox|BenchmarkDetectExactLattice

.PHONY: check build vet test race cover fuzz bench bench-check serve-smoke mutate-smoke shard-smoke approx-smoke chaos drift profile

check: build vet race cover bench-check serve-smoke mutate-smoke shard-smoke approx-smoke chaos drift fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCHPAT)' -benchmem . ./internal/neighbors ./internal/serve > .bench.out.tmp
	$(GO) run ./cmd/benchjson -out $(BENCHOUT) -key $(BENCHKEY) < .bench.out.tmp
	rm -f .bench.out.tmp

# Coverage summary: per-function percentages plus the total line, so a PR
# that drops a package's coverage shows up in the diff of `make cover`.
cover:
	$(GO) test -coverprofile=.cover.out.tmp ./...
	$(GO) tool cover -func=.cover.out.tmp | tail -n 1
	rm -f .cover.out.tmp

# Profile the mixed numeric+text pipeline (the compiled-kernel showcase,
# see docs/PERFORMANCE.md): discbench runs the `mixed` experiment with CPU
# and heap profiles written next to the repo root. Inspect with
# `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/discbench -exp mixed -cpuprofile cpu.prof -memprofile mem.prof
	@echo "wrote cpu.prof and mem.prof; open with: $(GO) tool pprof cpu.prof"

# Smoke pass: run every benchmark in the tree exactly once so a benchmark
# that panics or regresses into an error fails tier-1 without paying for a
# full measurement run.
bench-check:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > /dev/null

# Scripted serving round-trip: build discserve, drive a real listener
# through upload -> detect -> save -> repair -> induced 429 -> SIGTERM
# drain (see serve_smoke_test.go).
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 .

# Scripted mutable-session round-trip: build discserve, drive a real
# listener through upload -> 40 single-tuple inserts (forcing a mid-stream
# delta merge) -> detect -> update -> delete -> save -> SIGTERM drain
# (see mutate_smoke_test.go).
mutate-smoke:
	$(GO) test -run TestMutateSmoke -count=1 .

# Scripted coordinator round-trip: build discserve, start three worker
# listeners plus a coordinator over them, drive upload -> detect -> save,
# SIGKILL one replica owner (failover save + degraded /varz + labeled
# /metrics), SIGKILL the second owner (503), then SIGTERM drain (see
# shard_smoke_test.go).
shard-smoke:
	$(GO) test -run TestShardSmoke -count=1 .

# Scripted approximate-detection round-trip: build datagen and disccli,
# stream a 48k jittered-lattice CSV, run detect-and-repair with -approx
# and assert the emitted counters show the sampled estimator carried the
# pass (see approx_smoke_test.go).
approx-smoke:
	$(GO) test -run TestApproxSmoke -count=1 .

# Docs drift gate: every json counter tag in obs must appear in the
# docs/OBSERVABILITY.md tables, and every tag the tables document must
# exist in the code (see telemetry_test.go).
drift:
	$(GO) test -run TestObservabilityDocsDrift -count=1 .

# Chaos suite: fault-injected restart loops, batcher panic recovery, and the
# subprocess SIGKILL harness (kill mid-snapshot-write, restart, assert
# recovery invariants) under -race, plus the durability-layer unit tests
# (snapshot format, fault sites, robust client).
chaos:
	$(GO) test -race -count=1 -run 'Chaos' . ./internal/serve ./internal/shard ./internal/serve/coord
	$(GO) test -race -count=1 ./internal/snapshot ./internal/fault ./internal/serve/client

# Each fuzz target needs its own invocation: go test allows one -fuzz
# pattern per package run.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSave -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/data
	$(GO) test -run='^$$' -fuzz=FuzzLevenshteinMetric -fuzztime=$(FUZZTIME) ./internal/metric
	$(GO) test -run='^$$' -fuzz=FuzzNGramSimilarityBounds -fuzztime=$(FUZZTIME) ./internal/metric
