GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz

check: build vet race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target needs its own invocation: go test allows one -fuzz
# pattern per package run.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzSave -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/data
	$(GO) test -run='^$$' -fuzz=FuzzLevenshteinMetric -fuzztime=$(FUZZTIME) ./internal/metric
	$(GO) test -run='^$$' -fuzz=FuzzNGramSimilarityBounds -fuzztime=$(FUZZTIME) ./internal/metric
