package disc

import (
	"repro/internal/classify"
	"repro/internal/clean"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/match"
)

// Synthetic datasets reproducing Table 1 of the paper (see internal/data
// and DESIGN.md §3 for the substitution rationale).
var (
	// Table1 instantiates a synthetic Table 1 dataset by name; sizeScale
	// in (0, 1] shrinks the tuple count.
	Table1 = data.Table1
	// Table1Names lists the dataset names in paper order.
	Table1Names = data.Table1Names
	// GenMixture, GenGPS, GenRestaurant and GenMixed are the underlying
	// generators.
	GenMixture    = data.GenMixture
	GenGPS        = data.GenGPS
	GenRestaurant = data.GenRestaurant
	GenMixed      = data.GenMixed
	// WriteDatasetJSON / ReadDatasetJSON persist a dataset together with
	// its ground truth (labels, injected errors, clean originals).
	WriteDatasetJSON = data.WriteDatasetJSON
	ReadDatasetJSON  = data.ReadDatasetJSON
)

// Generator specs.
type (
	// MixtureSpec parameterizes the Gaussian-mixture generator.
	MixtureSpec = data.MixtureSpec
	// GPSSpec parameterizes the trajectory generator.
	GPSSpec = data.GPSSpec
	// RestaurantSpec parameterizes the textual record-linkage generator.
	RestaurantSpec = data.RestaurantSpec
	// MixedSpec parameterizes the mixed numeric+text generator.
	MixedSpec = data.MixedSpec
)

// Cleaner is the interface of the competitor cleaning methods.
type Cleaner = clean.Cleaner

// Competitor cleaners of §4.1.4 and §5 (see internal/clean).
type (
	// DORC is tuple-substitution cleaning (Song et al. 2015).
	DORC = clean.DORC
	// ERACER is regression-based statistical cleaning (Mayfield et al.).
	ERACER = clean.ERACER
	// Holistic is denial-constraint repair (Chu et al.).
	Holistic = clean.Holistic
	// HoloClean is statistical candidate-repair inference (Rekatsinas et
	// al.).
	HoloClean = clean.HoloClean
	// SCARE is likelihood-maximizing repair with bounded changes (Yakout
	// et al.).
	SCARE = clean.SCARE
)

// Evaluation measures of §4.1 (see internal/eval).
var (
	// PairF1 is the pairwise clustering F1-score.
	PairF1 = eval.F1
	// Pairs returns the pairwise TP/FP/FN counts.
	Pairs = eval.Pairs
	// NMI is normalized mutual information.
	NMI = eval.NMI
	// ARI is the adjusted Rand index.
	ARI = eval.ARI
	// Purity, Homogeneity, Completeness and VMeasure are additional
	// external clustering measures.
	Purity       = eval.Purity
	Homogeneity  = eval.Homogeneity
	Completeness = eval.Completeness
	VMeasure     = eval.VMeasure
	// Jaccard compares attribute sets (§4.3).
	Jaccard = eval.Jaccard
	// MacroF1 scores a classification.
	MacroF1 = eval.MacroF1
)

// Normalization helpers: set per-attribute distance scales so
// heterogeneous columns contribute comparably (restorable).
var (
	ScaleByStdDev = data.ScaleByStdDev
	ScaleByRange  = data.ScaleByRange
	RestoreScales = data.RestoreScales
	// ValidateValues rejects NaN/Inf numeric cells.
	ValidateValues = data.ValidateValues
	// Summarize / FprintSummary profile a relation's attributes;
	// PairwiseDistanceQuantiles samples the distance distribution.
	Summarize                 = data.Summarize
	FprintSummary             = data.FprintSummary
	PairwiseDistanceQuantiles = data.PairwiseDistanceQuantiles
	// Silhouette is the internal (label-free) clustering quality score.
	Silhouette = eval.Silhouette
)

// AttrSummary is one attribute's profile from Summarize.
type AttrSummary = data.AttrSummary

// Decision-tree classification (§4.1.2, see internal/classify).
type (
	// TreeConfig holds the CART hyperparameters.
	TreeConfig = classify.TreeConfig
	// Tree is a trained CART decision tree.
	Tree = classify.Tree
)

var (
	// TrainTree fits a CART tree.
	TrainTree = classify.TrainTree
	// CrossValidate runs k-fold cross-validation, returning macro F1.
	CrossValidate = classify.CrossValidate
)

// Record matching (§4.1.3, see internal/match).
type (
	// MatchConfig tunes the rule-based matcher.
	MatchConfig = match.Config
	// MatchPair is a matched tuple-index pair.
	MatchPair = match.Pair
)

var (
	// Match returns all matched pairs of a relation.
	Match = match.Match
	// MatchScore computes precision/recall/F1 against duplicate labels.
	MatchScore = match.Score
)

// Outlier explanation and the DB parameter baseline (§4.3, Table 4; see
// internal/explain).
type (
	// SSEConfig tunes the subspace-separability explanation.
	SSEConfig = explain.SSEConfig
	// DBParamOptions tunes the Normal-distribution parameter baseline.
	DBParamOptions = explain.DBParamOptions
)

var (
	// SSE explains which attributes make a tuple outlying.
	SSE = explain.SSE
	// DBParams determines (ε, η) with the Normal-distribution method.
	DBParams = explain.DBParams
)
