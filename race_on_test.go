//go:build race

package disc_test

// raceDetector reports whether this test binary runs under the race
// detector, whose sync.Pool randomly drops items and so re-admits
// per-save allocations the production build never pays.
const raceDetector = true
