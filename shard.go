package disc

import (
	"context"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Sharded execution: the relation is split into S spatial shards by grid
// cell key, each shard carrying an ε-halo of replicated boundary tuples
// (countable as neighbors, never owned), so per-shard detection composes
// into exactly the single-node answer; saves run against the shared
// inlier set, so repairs are bit-exact too. See internal/shard for the
// exactness argument.
type (
	// ShardOptions tunes a sharded run: the shard count, the per-shard
	// index kind, and the save options (whose Workers bounds the shard
	// fan-out).
	ShardOptions = shard.Options
	// ShardStats is one shard's share of a run: sizes, outliers, merged
	// search counters, per-phase wall time, and its error if it was lost.
	ShardStats = shard.ShardStats
	// ShardEngine runs detection and repair shard-parallel.
	ShardEngine = shard.Engine
	// ShardPartition is the ownership map: every tuple has exactly one
	// owning shard plus the halo replicas near shard boundaries.
	ShardPartition = shard.Partition
)

// MergeShardStats folds per-shard search counters into one run-level
// SearchStats, the same merge the engine applies to Detection.Stats.
func MergeShardStats(stats []ShardStats) obs.SearchStats {
	return shard.MergeShardStats(stats)
}

// NewShardEngine partitions rel into opts.Shards ε-halo shards and
// returns the engine that runs detection and repair over them.
func NewShardEngine(rel *Relation, cons Constraints, opts ShardOptions) (*ShardEngine, error) {
	return shard.New(rel, cons, opts)
}

// DetectSharded runs DISC detection shard-parallel. The Detection is
// bit-exact with DetectContext on the same relation; the ShardStats
// break the work down by shard. Detection fails closed: any lost shard
// fails the run (a partial detection would misclassify tuples).
func DetectSharded(ctx context.Context, rel *Relation, cons Constraints, opts ShardOptions) (*Detection, []ShardStats, error) {
	eng, err := shard.New(rel, cons, opts)
	if err != nil {
		return nil, nil, err
	}
	return eng.Detect(ctx)
}

// SaveSharded runs the detect-and-repair pipeline shard-parallel. The
// SaveResult is bit-exact with SaveContext on the same relation. Unlike
// detection, saves degrade: a lost shard's outliers land in
// SaveResult.Errs while every other shard's repairs stand.
func SaveSharded(ctx context.Context, rel *Relation, cons Constraints, opts ShardOptions) (*SaveResult, []ShardStats, error) {
	eng, err := shard.New(rel, cons, opts)
	if err != nil {
		return nil, nil, err
	}
	return eng.Save(ctx)
}
