package metric

import "math"

// Norm identifies the Lp aggregation of per-attribute distances into a
// multi-attribute distance (paper §2.1.1, Formula 1). The paper's default is
// L2 (Euclidean length of the per-attribute distance vector).
type Norm uint8

const (
	// L2 is the Euclidean norm, the paper's default.
	L2 Norm = iota
	// L1 is the sum of per-attribute distances.
	L1
	// LInf is the maximum per-attribute distance.
	LInf
)

// String returns the conventional name of the norm.
func (n Norm) String() string {
	switch n {
	case L2:
		return "L2"
	case L1:
		return "L1"
	case LInf:
		return "Linf"
	default:
		return "L?"
	}
}

// Aggregate folds the per-attribute distances ds into a single distance.
// All three norms preserve the metric axioms of the inputs and are monotone
// in the attribute set, as required by the bounds in §3 of the paper.
func (n Norm) Aggregate(ds []float64) float64 {
	switch n {
	case L1:
		s := 0.0
		for _, d := range ds {
			s += d
		}
		return s
	case LInf:
		m := 0.0
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		return m
	default:
		s := 0.0
		for _, d := range ds {
			s += d * d
		}
		return math.Sqrt(s)
	}
}

// Accumulate adds one per-attribute distance d into a running accumulator
// acc and returns the new accumulator. Finish converts the accumulator to
// the final distance. Splitting the fold this way lets hot loops aggregate
// without allocating a slice.
func (n Norm) Accumulate(acc, d float64) float64 {
	switch n {
	case L1:
		return acc + d
	case LInf:
		return math.Max(acc, d)
	default:
		return acc + d*d
	}
}

// Finish converts a running accumulator produced by Accumulate into the
// final aggregated distance.
func (n Norm) Finish(acc float64) float64 {
	if n == L2 {
		return math.Sqrt(acc)
	}
	return acc
}
