package metric

import (
	"math"
	"testing"
)

// FuzzLevenshteinMetric checks the metric axioms on arbitrary inputs
// (seed corpus runs under plain `go test`; `go test -fuzz` explores).
func FuzzLevenshteinMetric(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "abc")
	f.Add("日本語", "日本")
	f.Add("aaaa", "aa")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 64 || len(b) > 64 {
			t.Skip()
		}
		dab := Levenshtein(a, b)
		if dab < 0 {
			t.Fatalf("negative distance %v", dab)
		}
		if dab != Levenshtein(b, a) {
			t.Fatalf("asymmetric for %q/%q", a, b)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity broken for %q/%q: %v", a, b, dab)
		}
		// Triangle via a fixed pivot.
		const c = "pivot"
		if dab > Levenshtein(a, c)+Levenshtein(c, b)+1e-9 {
			t.Fatalf("triangle broken for %q/%q", a, b)
		}
	})
}

// FuzzNGramSimilarityBounds checks the [0,1] range and identity.
func FuzzNGramSimilarityBounds(f *testing.F) {
	f.Add("restaurant", "restuarant")
	f.Add("", "")
	f.Add("a", "b")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 128 || len(b) > 128 {
			t.Skip()
		}
		s := NGramSimilarity(a, b, 2)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("similarity %v out of range for %q/%q", s, a, b)
		}
		if a == b && s != 1 {
			t.Fatalf("identical strings score %v", s)
		}
		if s != NGramSimilarity(b, a, 2) {
			t.Fatalf("asymmetric for %q/%q", a, b)
		}
	})
}
