// Package metric provides the per-attribute distance functions and the
// multi-attribute aggregation norms used by the DISC distance constraints
// (paper §2.1.1). Every per-attribute function satisfies the four metric
// axioms: non-negativity, identity of indiscernibles, symmetry, and the
// triangle inequality. Aggregations over attribute sets additionally satisfy
// monotonicity: Δ(t1[X], t2[X]) ≤ Δ(t1[X∪{A}], t2[X∪{A}]).
package metric

import (
	"math"
	"unicode/utf8"
)

// AbsDiff is the absolute-difference distance for numeric values.
func AbsDiff(a, b float64) float64 {
	return math.Abs(a - b)
}

// ScaledAbsDiff returns a numeric distance function that divides the
// absolute difference by scale. A scale ≤ 0 is treated as 1. Scaling keeps
// heterogeneous attributes (e.g. timestamps vs. coordinates) comparable
// inside one Lp aggregate, as in the GPS example of the paper (Figure 2).
func ScaledAbsDiff(scale float64) func(a, b float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	inv := 1 / scale
	return func(a, b float64) float64 {
		return math.Abs(a-b) * inv
	}
}

// StringDistance is a distance function over text attribute values.
type StringDistance func(a, b string) float64

// Levenshtein returns the unit-cost edit distance between a and b
// (insertions, deletions, substitutions each cost 1). It is the default
// distance for textual attributes and the discrete metric referenced by
// Proposition 7 of the paper (unit distance values). Strings are decoded
// losslessly: invalid UTF-8 bytes map to distinct surrogate-range
// sentinels (the PEP 383 trick) instead of collapsing onto U+FFFD, so the
// metric axioms hold over arbitrary byte strings.
func Levenshtein(a, b string) float64 {
	return float64(LevenshteinRunes(decodeLossless(a), decodeLossless(b)))
}

// decodeLossless converts a string to runes, mapping each invalid UTF-8
// byte x to the distinct sentinel rune 0xDC00+x. The mapping is injective
// over all byte strings, so rune-level distances remain metrics.
func decodeLossless(s string) []rune {
	out := make([]rune, 0, len(s))
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			out = append(out, rune(0xDC00+int(s[i])))
			i++
			continue
		}
		out = append(out, r)
		i += size
	}
	return out
}

// LevenshteinRunes computes the unit-cost edit distance over rune slices.
func LevenshteinRunes(a, b []rune) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Single-row dynamic program.
	prev := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			next := min3(prev[j]+1, prev[j-1]+1, cur+cost)
			cur = prev[j]
			prev[j] = next
		}
	}
	return prev[len(b)]
}

// NeedlemanWunsch returns an alignment-based distance in which visually or
// semantically close characters substitute at a reduced cost, following the
// Needleman–Wunsch measure cited by the paper for typo repair (e.g. letter
// 'O' vs digit '0' in RH10-OAG → RH10-0AG). Gap cost is 1; substitutions
// between confusable character pairs cost SubCloseCost, all others cost 1.
func NeedlemanWunsch(a, b string) float64 {
	ra, rb := decodeLossless(a), decodeLossless(b)
	if len(ra) == 0 {
		return float64(len(rb))
	}
	if len(rb) == 0 {
		return float64(len(ra))
	}
	prev := make([]float64, len(rb)+1)
	for j := range prev {
		prev[j] = float64(j)
	}
	for i := 1; i <= len(ra); i++ {
		cur := prev[0]
		prev[0] = float64(i)
		for j := 1; j <= len(rb); j++ {
			next := math.Min(prev[j]+1, prev[j-1]+1)
			next = math.Min(next, cur+subCost(ra[i-1], rb[j-1]))
			cur = prev[j]
			prev[j] = next
		}
	}
	return prev[len(rb)]
}

// SubCloseCost is the substitution cost between confusable characters under
// the Needleman–Wunsch measure. It must stay in (0, 1] to preserve the
// triangle inequality together with unit gap costs.
const SubCloseCost = 0.5

// confusable holds symmetric pairs of characters that substitute cheaply.
var confusable = map[[2]rune]bool{
	{'0', 'O'}: true, {'0', 'o'}: true,
	{'1', 'l'}: true, {'1', 'I'}: true,
	{'5', 'S'}: true, {'5', 's'}: true,
	{'8', 'B'}: true,
	{'2', 'Z'}: true, {'2', 'z'}: true,
	{'6', 'G'}: true,
	{'9', 'g'}: true, {'9', 'q'}: true,
	{'u', 'v'}: true, {'U', 'V'}: true,
	{'m', 'n'}: true,
}

func subCost(x, y rune) float64 {
	if x == y {
		return 0
	}
	if confusable[[2]rune{x, y}] || confusable[[2]rune{y, x}] {
		return SubCloseCost
	}
	return 1
}

// NGramSimilarity returns the normalized n-gram similarity of a and b in
// [0, 1]: the Dice coefficient over padded n-gram multisets. It is the
// similarity used by the rule-based record matcher (paper §4.1.3) with
// threshold 0.7. Identical strings score 1; disjoint strings score 0.
func NGramSimilarity(a, b string, n int) float64 {
	if n < 1 {
		n = 2
	}
	if a == b {
		return 1
	}
	ga, gb := ngrams(a, n), ngrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ga))
	for _, g := range ga {
		counts[g]++
	}
	common := 0
	for _, g := range gb {
		if counts[g] > 0 {
			counts[g]--
			common++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb))
}

// NGramDistance is 1 − NGramSimilarity; it is symmetric and non-negative
// (a pseudo-metric used only by the matcher, never by the DISC bounds).
func NGramDistance(a, b string, n int) float64 {
	return 1 - NGramSimilarity(a, b, n)
}

func ngrams(s string, n int) []string {
	r := decodeLossless(s)
	if len(r) == 0 {
		return nil
	}
	// Pad with n−1 sentinels on each side so short strings still produce
	// position-sensitive grams.
	pad := make([]rune, 0, len(r)+2*(n-1))
	for i := 0; i < n-1; i++ {
		pad = append(pad, '\x01')
	}
	pad = append(pad, r...)
	for i := 0; i < n-1; i++ {
		pad = append(pad, '\x02')
	}
	out := make([]string, 0, len(pad)-n+1)
	for i := 0; i+n <= len(pad); i++ {
		out = append(out, string(pad[i:i+n]))
	}
	return out
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
