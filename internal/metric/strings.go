package metric

// Additional string measures used by record linkage: the
// Damerau–Levenshtein distance (typos are often transpositions) and the
// Jaro–Winkler similarity (the classic merge/purge measure). Both are for
// matching; only Levenshtein and Needleman–Wunsch satisfy the full metric
// axioms the DISC distance constraints require.

// DamerauLevenshtein returns the optimal-string-alignment distance: unit
// insertions, deletions, substitutions, plus unit transposition of two
// adjacent characters. Note: the OSA variant does not satisfy the triangle
// inequality (e.g. d("ca","abc")), so use it for similarity ranking, not
// as a DISC attribute distance.
func DamerauLevenshtein(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return float64(lb)
	}
	if lb == 0 {
		return float64(la)
	}
	// Three-row dynamic program (previous-previous, previous, current).
	pp := make([]int, lb+1)
	p := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		p[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			best := min3(p[j]+1, cur[j-1]+1, p[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := pp[j-2] + 1; t < best {
					best = t
				}
			}
			cur[j] = best
		}
		pp, p, cur = p, cur, pp
	}
	return float64(p[lb])
}

// JaroSimilarity returns the Jaro similarity of a and b in [0, 1].
func JaroSimilarity(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among the matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity: Jaro boosted by up to
// 4 characters of common prefix with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := JaroSimilarity(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}
