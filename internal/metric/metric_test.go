package metric

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAbsDiff(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{1, 4, 3},
		{4, 1, 3},
		{-2, 3, 5},
		{2.5, 2.5, 0},
	}
	for _, c := range cases {
		if got := AbsDiff(c.a, c.b); got != c.want {
			t.Errorf("AbsDiff(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestScaledAbsDiff(t *testing.T) {
	f := ScaledAbsDiff(10)
	if got := f(0, 5); got != 0.5 {
		t.Errorf("scaled by 10: got %v, want 0.5", got)
	}
	// Non-positive scale falls back to 1.
	g := ScaledAbsDiff(0)
	if got := g(0, 5); got != 5 {
		t.Errorf("scale 0 fallback: got %v, want 5", got)
	}
	h := ScaledAbsDiff(-3)
	if got := h(1, 2); got != 1 {
		t.Errorf("negative scale fallback: got %v, want 1", got)
	}
}

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"RH10-OAG", "RH10-0AG", 1},
		{"日本語", "日本", 1}, // rune-based, not byte-based
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('a' + rng.Intn(4)))
		}
		return sb.String()
	}
	for i := 0; i < 500; i++ {
		a, b, c := randStr(), randStr(), randStr()
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: d(%q,%q)=%v d(%q,%q)=%v", a, b, dab, b, a, dba)
		}
		if dab < 0 {
			t.Fatalf("negative distance d(%q,%q)=%v", a, b, dab)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity of indiscernibles violated for %q,%q: %v", a, b, dab)
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		if dab > dac+dcb+1e-12 {
			t.Fatalf("triangle inequality violated: d(%q,%q)=%v > d(%q,%q)+d(%q,%q)=%v",
				a, b, dab, a, c, c, b, dac+dcb)
		}
	}
}

func TestNeedlemanWunschConfusables(t *testing.T) {
	// Letter O vs digit 0 should be cheaper than an arbitrary substitution.
	close := NeedlemanWunsch("RH10-OAG", "RH10-0AG")
	far := NeedlemanWunsch("RH10-XAG", "RH10-0AG")
	if close >= far {
		t.Errorf("confusable substitution %v should cost less than arbitrary %v", close, far)
	}
	if close != SubCloseCost {
		t.Errorf("single confusable substitution = %v, want %v", close, SubCloseCost)
	}
	if got := NeedlemanWunsch("abc", "abc"); got != 0 {
		t.Errorf("identical strings: got %v, want 0", got)
	}
	if got := NeedlemanWunsch("", "ab"); got != 2 {
		t.Errorf("gap cost: got %v, want 2", got)
	}
}

func TestNeedlemanWunschMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []rune{'0', 'O', '1', 'l', 'a', 'b'}
	randStr := func() string {
		n := rng.Intn(6)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for i := 0; i < 500; i++ {
		a, b, c := randStr(), randStr(), randStr()
		dab := NeedlemanWunsch(a, b)
		if dab != NeedlemanWunsch(b, a) {
			t.Fatalf("NW symmetry violated for %q,%q", a, b)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("NW identity violated for %q,%q: %v", a, b, dab)
		}
		if dab > NeedlemanWunsch(a, c)+NeedlemanWunsch(c, b)+1e-9 {
			t.Fatalf("NW triangle violated for %q,%q via %q", a, b, c)
		}
	}
}

func TestNGramSimilarity(t *testing.T) {
	if got := NGramSimilarity("abc", "abc", 2); got != 1 {
		t.Errorf("identical: got %v, want 1", got)
	}
	if got := NGramSimilarity("", "", 2); got != 1 {
		t.Errorf("both empty: got %v, want 1", got)
	}
	if got := NGramSimilarity("abc", "", 2); got != 0 {
		t.Errorf("one empty: got %v, want 0", got)
	}
	s1 := NGramSimilarity("restaurant", "restaurant", 2)
	s2 := NGramSimilarity("restaurant", "restauran", 2)
	s3 := NGramSimilarity("restaurant", "xyzw", 2)
	if !(s1 > s2 && s2 > s3) {
		t.Errorf("ordering violated: %v %v %v", s1, s2, s3)
	}
	if s3 != 0 {
		t.Errorf("disjoint strings should score 0, got %v", s3)
	}
	// Invalid n falls back to bigrams.
	if got := NGramSimilarity("ab", "ab", 0); got != 1 {
		t.Errorf("n=0 fallback: got %v", got)
	}
}

func TestNGramDistanceComplement(t *testing.T) {
	f := func(a, b string) bool {
		s := NGramSimilarity(a, b, 2)
		d := NGramDistance(a, b, 2)
		return math.Abs(s+d-1) < 1e-12 && d >= -1e-12 && d <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormAggregate(t *testing.T) {
	ds := []float64{3, 4}
	if got := L2.Aggregate(ds); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2: got %v, want 5", got)
	}
	if got := L1.Aggregate(ds); got != 7 {
		t.Errorf("L1: got %v, want 7", got)
	}
	if got := LInf.Aggregate(ds); got != 4 {
		t.Errorf("Linf: got %v, want 4", got)
	}
	if got := L2.Aggregate(nil); got != 0 {
		t.Errorf("empty L2: got %v, want 0", got)
	}
}

func TestNormAccumulateMatchesAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, norm := range []Norm{L1, L2, LInf} {
		for trial := 0; trial < 100; trial++ {
			n := rng.Intn(6)
			ds := make([]float64, n)
			for i := range ds {
				ds[i] = rng.Float64() * 10
			}
			acc := 0.0
			for _, d := range ds {
				acc = norm.Accumulate(acc, d)
			}
			got := norm.Finish(acc)
			want := norm.Aggregate(ds)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v: incremental %v != aggregate %v for %v", norm, got, want, ds)
			}
		}
	}
}

func TestNormMonotonicity(t *testing.T) {
	// Adding an attribute can only grow the aggregate (paper §2.1.1).
	rng := rand.New(rand.NewSource(5))
	for _, norm := range []Norm{L1, L2, LInf} {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(5)
			ds := make([]float64, n)
			for i := range ds {
				ds[i] = rng.Float64() * 3
			}
			sub := norm.Aggregate(ds[:n-1])
			full := norm.Aggregate(ds)
			if sub > full+1e-12 {
				t.Fatalf("%v monotonicity violated: %v > %v", norm, sub, full)
			}
		}
	}
}

func TestNormString(t *testing.T) {
	if L2.String() != "L2" || L1.String() != "L1" || LInf.String() != "Linf" {
		t.Error("unexpected norm names")
	}
	if Norm(99).String() != "L?" {
		t.Error("unknown norm should print L?")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	a, s := "international conference", "intermational conferense"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(a, s)
	}
}

func BenchmarkNGramSimilarity(b *testing.B) {
	a, s := "arnie morton's of chicago", "arnie morton's"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NGramSimilarity(a, s, 2)
	}
}
