package metric

import (
	"math"
	"testing"
)

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "ab", 2},
		{"abc", "abc", 0},
		{"abc", "acb", 1}, // one transposition, 2 under plain Levenshtein
		{"ca", "ac", 1},
		{"kitten", "sitting", 3},
		{"restuarant", "restaurant", 1}, // the classic typo
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DL(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := DamerauLevenshtein(c.b, c.a); got != c.want {
			t.Errorf("DL symmetry broken for %q,%q", c.a, c.b)
		}
	}
	// Transpositions make it ≤ Levenshtein everywhere.
	pairs := [][2]string{{"abcd", "badc"}, {"hello", "ehllo"}, {"golang", "oglang"}}
	for _, p := range pairs {
		if DamerauLevenshtein(p[0], p[1]) > Levenshtein(p[0], p[1]) {
			t.Errorf("DL(%q,%q) above Levenshtein", p[0], p[1])
		}
	}
}

func TestJaroSimilarity(t *testing.T) {
	if got := JaroSimilarity("martha", "martha"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	// Classic textbook value: jaro(MARTHA, MARHTA) = 0.944…
	if got := JaroSimilarity("martha", "marhta"); math.Abs(got-0.9444444) > 1e-6 {
		t.Errorf("martha/marhta = %v, want 0.9444", got)
	}
	if got := JaroSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	if got := JaroSimilarity("", ""); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := JaroSimilarity("a", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	// Classic textbook value: jw(MARTHA, MARHTA) = 0.961…
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.9611111) > 1e-6 {
		t.Errorf("martha/marhta = %v, want 0.9611", got)
	}
	// Prefix boost: common-prefix pair scores above its plain Jaro.
	a, b := "prefixed", "prefixes"
	if JaroWinkler(a, b) <= JaroSimilarity(a, b) {
		t.Error("prefix boost missing")
	}
	// Bounded by 1.
	if got := JaroWinkler("aaaa", "aaaa"); got != 1 {
		t.Errorf("identical jw = %v", got)
	}
	// Symmetry.
	if JaroWinkler("dwayne", "duane") != JaroWinkler("duane", "dwayne") {
		t.Error("jw not symmetric")
	}
}
