package exp

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/data"
)

func init() {
	register(Experiment{
		ID:    "table5",
		Title: "Table 5: decision-tree classification over raw data vs outlier saving vs data cleaning",
		Run:   runTable5,
	})
}

// table5Datasets are the seven classification datasets of Table 5 (GPS is
// clustering-only in the paper as well).
var table5Datasets = []string{"Iris", "Seeds", "WIFI", "Yeast", "Letter", "Flight", "Spam"}

func runTable5(cfg Config) (*Result, error) {
	t := Table{
		Title:  "F1-score (Decision Tree, 5-fold CV)",
		Header: append([]string{"Data"}, methodNames...),
	}
	for _, name := range table5Datasets {
		ds, err := data.Table1(name, cfg.scale(table2Scales[name]), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("table5: %s: %w", name, err)
		}
		cfg.progressf("table5: %s (n=%d)\n", name, ds.N())
		row := []string{name}
		for _, method := range methodNames {
			rel, _ := applyMethod(cfg, method, ds)
			if rel == nil {
				row = append(row, "-")
				continue
			}
			// Classification uses the ground-truth classes; natural
			// outliers have no class and sit out (they would otherwise be
			// a single -1 class of arbitrary points).
			sub := data.NewRelation(rel.Schema)
			var labels []int
			for i, l := range ds.Labels {
				if l < 0 {
					continue
				}
				sub.Append(rel.Tuples[i])
				labels = append(labels, l)
			}
			f1, err := classify.CrossValidate(sub, labels, 5, classify.TreeConfig{}, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("table5: %s/%s: %w", name, method, err)
			}
			row = append(row, fmtF(f1))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Result{Tables: []Table{t}}, nil
}
