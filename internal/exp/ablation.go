package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/neighbors"
)

func init() {
	register(Experiment{
		ID:    "ablation",
		Title: "Ablations: lower-bound pruning, X-set memoization, κ budget, index choice, parallelism (DESIGN.md §5)",
		Run:   runAblation,
	})
}

func runAblation(cfg Config) (*Result, error) {
	ds, err := data.Table1("Letter", cfg.scale(0.15), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	cons := core.Constraints{Eps: ds.Eps, Eta: ds.Eta}
	cfg.progressf("ablation: Letter (n=%d)\n", ds.N())

	// (1) Algorithm 1 options: nodes expanded and wall time.
	algo := Table{
		Title:  "Ablation: Algorithm 1 options (Letter)",
		Header: []string{"Variant", "Saved", "Natural", "Nodes", "Time(s)", "F1"},
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"kappa=2 (default)", core.Options{Kappa: 2}},
		{"kappa=2, no pruning", core.Options{Kappa: 2, DisablePruning: true}},
		{"kappa=2, no memo", core.Options{Kappa: 2, DisableMemo: true}},
		{"kappa=1", core.Options{Kappa: 1}},
		{"kappa=3", core.Options{Kappa: 3}},
		{"unrestricted", core.Options{}},
		{"sequential (workers=1)", core.Options{Kappa: 2, Workers: 1}},
	}
	for _, v := range variants {
		start := time.Now()
		res, err := core.SaveAllContext(cfg.context(), ds.Rel, cons,
			cfg.discOptions("ablation: "+v.name, v.opts))
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		cfg.recordStats(res)
		elapsed := time.Since(start)
		nodes := 0
		for _, adj := range res.Adjustments {
			nodes += adj.Nodes
		}
		cl := cluster.DBSCAN(res.Repaired, cluster.DBSCANConfig{Eps: ds.Eps, MinPts: ds.Eta})
		algo.Rows = append(algo.Rows, []string{
			v.name,
			fmt.Sprint(res.Saved),
			fmt.Sprint(res.Natural),
			fmt.Sprint(nodes),
			fmtS(elapsed.Seconds()),
			fmtF(eval.F1(cl.Labels, ds.Labels)),
		})
	}

	// (2) Index choice: range-count throughput over the Flight geometry.
	fds, err := data.Table1("Flight", cfg.scale(0.02), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	idxTable := Table{
		Title:  fmt.Sprintf("Ablation: ε-range query time over Flight (n=%d, full count pass)", fds.N()),
		Header: []string{"Index", "Build(s)", "Scan(s)"},
	}
	builders := []struct {
		name  string
		build func() neighbors.Index
	}{
		{"brute", func() neighbors.Index { return neighbors.NewBrute(fds.Rel) }},
		{"grid", func() neighbors.Index { return neighbors.NewGrid(fds.Rel, fds.Eps) }},
		{"kdtree", func() neighbors.Index { return neighbors.NewKDTree(fds.Rel) }},
		{"vptree", func() neighbors.Index { return neighbors.NewVPTree(fds.Rel, 1) }},
	}
	for _, b := range builders {
		start := time.Now()
		idx := b.build()
		buildT := time.Since(start)
		start = time.Now()
		for i, t := range fds.Rel.Tuples {
			idx.CountWithin(t, fds.Eps, i, 0)
		}
		scanT := time.Since(start)
		idxTable.Rows = append(idxTable.Rows, []string{b.name, fmtS(buildT.Seconds()), fmtS(scanT.Seconds())})
	}

	return &Result{Tables: []Table{algo, idxTable}}, nil
}
