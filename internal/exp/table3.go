package exp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: F1 of six clustering algorithms over raw data vs DISC outlier saving",
		Run:   runTable3,
	})
}

// clusterAlgos is the fixed algorithm order of Table 3.
var clusterAlgos = []string{"DBSCAN", "K-Means", "K-Means--", "CCKM", "SREM", "KMC"}

// runClusterAlgo runs one named clustering algorithm over a relation.
func runClusterAlgo(algo string, rel *data.Relation, ds *data.Dataset, seed int64) (cluster.Result, error) {
	switch algo {
	case "DBSCAN":
		return cluster.DBSCAN(rel, cluster.DBSCANConfig{Eps: ds.Eps, MinPts: ds.Eta}), nil
	case "K-Means":
		return cluster.KMeans(rel, cluster.KMeansConfig{K: ds.Classes, Seed: seed})
	case "K-Means--":
		return cluster.KMeansMM(rel, cluster.KMeansConfig{K: ds.Classes, L: outlierBudget(ds), Seed: seed})
	case "CCKM":
		return cluster.CCKM(rel, cluster.KMeansConfig{K: ds.Classes, L: outlierBudget(ds), Seed: seed})
	case "SREM":
		return cluster.SREM(rel, cluster.SREMConfig{K: ds.Classes, Seed: seed})
	case "KMC":
		return cluster.KMC(rel, cluster.KMCConfig{K: ds.Classes, Seed: seed})
	}
	return cluster.Result{}, fmt.Errorf("exp: unknown clustering algorithm %q", algo)
}

// outlierBudget estimates l for the k-and-l-outliers algorithms from the
// dataset's injected outlier fractions.
func outlierBudget(ds *data.Dataset) int {
	l := ds.DirtyCount() + ds.NaturalCount()
	if l < 1 {
		l = ds.N() / 20
	}
	return l
}

func runTable3(cfg Config) (*Result, error) {
	header := []string{"Data"}
	for _, a := range clusterAlgos {
		header = append(header, a+"/Raw", a+"/DISC")
	}
	t := Table{Title: "F1-score by clustering algorithm (Raw vs DISC)", Header: header}

	for _, name := range data.NumericTable1Names() {
		ds, err := data.Table1(name, cfg.scale(table2Scales[name]), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", name, err)
		}
		cfg.progressf("table3: %s (n=%d)\n", name, ds.N())
		res, err := core.SaveAllContext(cfg.context(), ds.Rel,
			core.Constraints{Eps: ds.Eps, Eta: ds.Eta},
			cfg.discOptions("table3: disc "+name, core.Options{Kappa: discKappa(ds.Name)}))
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", name, err)
		}
		cfg.recordStats(res)
		row := []string{name}
		for _, algo := range clusterAlgos {
			rawRes, err := runClusterAlgo(algo, ds.Rel, ds, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("table3: %s/%s: %w", name, algo, err)
			}
			discRes, err := runClusterAlgo(algo, res.Repaired, ds, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("table3: %s/%s: %w", name, algo, err)
			}
			row = append(row,
				fmtF(eval.F1(rawRes.Labels, ds.Labels)),
				fmtF(eval.F1(discRes.Labels, ds.Labels)))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Result{Tables: []Table{t}}, nil
}
