package exp

import (
	"fmt"

	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/match"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: record matching over Restaurant vs ε (a) and η (b) — ERACER does not apply (text)",
		Run:   runFig8,
	})
}

func runFig8(cfg Config) (*Result, error) {
	ds, err := data.Table1("Restaurant", cfg.scale(1), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	cfg.progressf("fig8: Restaurant (n=%d)\n", ds.N())

	matchF1 := func(rel *data.Relation) float64 {
		if rel == nil {
			return 0
		}
		_, _, f1 := match.Score(match.Match(rel, match.Config{}), ds.Labels)
		return f1
	}
	rawF1 := matchF1(ds.Rel)

	// Flat baselines: HoloClean and Holistic do not take (ε, η).
	holoRel, _ := (&clean.HoloClean{}).Clean(ds.Rel)
	holiRel, _ := (&clean.Holistic{}).Clean(ds.Rel)
	holoF1 := matchF1(holoRel)
	holiF1 := matchF1(holiRel)

	header := []string{"Sweep", "Raw", "DISC", "DORC", "HoloClean", "Holistic"}
	row := func(label string, eps float64, eta int) ([]string, error) {
		discRes, err := core.SaveAllContext(cfg.context(), ds.Rel,
			core.Constraints{Eps: eps, Eta: eta},
			cfg.discOptions("fig8: disc "+label, core.Options{Kappa: discKappa(ds.Name)}))
		if err != nil {
			return nil, err
		}
		cfg.recordStats(discRes)
		dorcRel, err := (&clean.DORC{Eps: eps, Eta: eta}).Clean(ds.Rel)
		if err != nil {
			return nil, err
		}
		return []string{label, fmtF(rawF1), fmtF(matchF1(discRes.Repaired)),
			fmtF(matchF1(dorcRel)), fmtF(holoF1), fmtF(holiF1)}, nil
	}

	a := Table{Title: "Fig 8(a): record-matching F1 vs ε (η=3)", Header: header}
	for _, eps := range []float64{2.6, 3.6, 4.6, 5.6, 6.6} {
		cfg.progressf("fig8a: ε=%v\n", eps)
		r, err := row(fmt.Sprintf("ε=%.2g", eps), eps, ds.Eta)
		if err != nil {
			return nil, fmt.Errorf("fig8a ε=%v: %w", eps, err)
		}
		a.Rows = append(a.Rows, r)
	}
	b := Table{Title: "Fig 8(b): record-matching F1 vs η (ε=4.6)", Header: header}
	for _, eta := range []int{2, 3, 4, 5} {
		cfg.progressf("fig8b: η=%d\n", eta)
		r, err := row(fmt.Sprintf("η=%d", eta), ds.Eps, eta)
		if err != nil {
			return nil, fmt.Errorf("fig8b η=%d: %w", eta, err)
		}
		b.Rows = append(b.Rows, r)
	}
	return &Result{Tables: []Table{a, b}}, nil
}
