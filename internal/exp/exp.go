// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (§4), producing the same rows/series the paper
// reports. Each experiment returns structured tables so tests can assert
// on the shape of the results (who wins, by roughly what factor) and the
// discbench CLI can print them.
package exp

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config tunes an experiment run.
type Config struct {
	// SizeScale multiplies each experiment's default dataset scale
	// (≤ 0 means 1). Large datasets (Letter, Flight, Spam) already run at
	// reduced default scales chosen per experiment; SizeScale shrinks or
	// grows them further, e.g. 0.2 for a quick smoke run.
	SizeScale float64
	// Seed drives dataset generation and every randomized algorithm.
	Seed int64
	// Verbose writers receive progress lines during long runs (nil
	// silences them).
	Progress io.Writer
	// Ctx, when non-nil, bounds the run: the DISC saves and neighbor
	// counting passes inside each experiment stop once it is cancelled
	// (the runner then reports the cancellation as its error).
	Ctx context.Context
	// Workers bounds the per-method parallelism (≤ 0: GOMAXPROCS).
	Workers int
	// Stats, when non-nil, accumulates the merged search counters of
	// every DISC save the experiment runs (discbench -stats-json).
	Stats *obs.Collector
	// Approx, when enabled (Confidence > 0), runs every DISC detection
	// pass through the sampled estimator with exact borderline refinement
	// instead of the exact counting pass.
	Approx core.ApproxOptions
}

// context returns the run's context, never nil.
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c Config) scale(def float64) float64 {
	s := c.SizeScale
	if s <= 0 {
		s = 1
	}
	v := def * s
	if v > 1 {
		v = 1
	}
	return v
}

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// Table is one printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Cell returns the cell at (row, named column), or "" when absent.
func (t *Table) Cell(row int, col string) string {
	for i, h := range t.Header {
		if h == col {
			if row < len(t.Rows) && i < len(t.Rows[row]) {
				return t.Rows[row][i]
			}
		}
	}
	return ""
}

// FindRow returns the index of the first row whose first column equals
// key, or -1.
func (t *Table) FindRow(key string) int {
	for i, r := range t.Rows {
		if len(r) > 0 && r[0] == key {
			return i
		}
	}
	return -1
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Result is the outcome of one experiment.
type Result struct {
	Tables []Table
}

// Fprint renders every table.
func (r *Result) Fprint(w io.Writer) {
	for i := range r.Tables {
		r.Tables[i].Fprint(w)
	}
}

// Table returns the result table with the given title, or nil.
func (r *Result) Table(title string) *Table {
	for i := range r.Tables {
		if r.Tables[i].Title == title {
			return &r.Tables[i]
		}
	}
	return nil
}

// Experiment binds a paper artifact to its runner.
type Experiment struct {
	// ID is the artifact id: table2…table5, fig4…fig10.
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// fmtF formats a score to 4 decimals, matching the paper's tables.
func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }

// fmtS formats seconds to 4 significant figures.
func fmtS(sec float64) string { return fmt.Sprintf("%.4g", sec) }

// FprintCSV writes the table as CSV rows (title line prefixed with '#').
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FprintMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) FprintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	fmt.Fprintln(w)
}
