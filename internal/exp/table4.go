package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/explain"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Title: "Table 4: parameter determination — Poisson (DISC) vs Normal (DB) vs Optimal, with sampling",
		Run:   runTable4,
	})
}

func runTable4(cfg Config) (*Result, error) {
	t := Table{
		Title: "Parameter determination (sampling rate vs time, chosen (ε,η), clustering F1)",
		Header: []string{"Data", "Rate", "Tuples", "TimeDISC(s)", "TimeDB(s)",
			"ε,η DISC", "ε,η DB", "ε,η Opt", "F1 DISC", "F1 DB", "F1 Opt"},
	}
	type spec struct {
		name  string
		scale float64
		rates []float64
	}
	specs := []spec{
		{name: "Letter", scale: table2Scales["Letter"], rates: []float64{0.01, 0.1, 1}},
		{name: "Flight", scale: table2Scales["Flight"], rates: []float64{0.001, 0.01, 1}},
	}
	for _, sp := range specs {
		ds, err := data.Table1(sp.name, cfg.scale(sp.scale), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", sp.name, err)
		}
		cfg.progressf("table4: %s (n=%d)\n", sp.name, ds.N())

		// The optimal setting: grid-search (ε, η) around the dataset's
		// own constraints, maximizing post-saving clustering F1 — the
		// paper's "found by testing various combinations" (Figure 4).
		optEps, optEta, optF1 := table4Optimal(cfg, ds)

		for _, rate := range sp.rates {
			// DISC: Poisson-based determination over the sampled counts.
			start := time.Now()
			choice, err := core.DeterminePoisson(ds.Rel, core.ParamOptions{
				SampleRate: rate, Seed: cfg.Seed,
			})
			discTime := time.Since(start)
			var discEps float64
			var discEta int
			if err == nil {
				discEps, discEta = choice.Eps, choice.Eta
			}

			// DB: Normal-distribution determination (sampled pairs scale
			// with the rate so the time comparison is honest).
			start = time.Now()
			pairs := int(rate * float64(ds.N()))
			if pairs < 100 {
				pairs = 100
			}
			dbEps, dbEta := explain.DBParams(ds.Rel, explain.DBParamOptions{
				SamplePairs: pairs, Seed: cfg.Seed,
			})
			dbTime := time.Since(start)

			discF1 := saveAndClusterF1(cfg, ds, discEps, discEta)
			dbF1 := saveAndClusterF1(cfg, ds, dbEps, dbEta)
			// "Optimal" means the best setting found by any search
			// (Figure 4's exhaustive testing); the grid around the
			// reference plus both determined settings.
			if discF1 > optF1 {
				optEps, optEta, optF1 = discEps, discEta, discF1
			}
			if dbF1 > optF1 {
				optEps, optEta, optF1 = dbEps, dbEta, dbF1
			}

			sampleN := int(rate * float64(ds.N()))
			if sampleN < 1 {
				sampleN = 1
			}
			t.Rows = append(t.Rows, []string{
				sp.name,
				fmt.Sprintf("%g%%", rate*100),
				fmt.Sprintf("%d", sampleN),
				fmtS(discTime.Seconds()),
				fmtS(dbTime.Seconds()),
				fmt.Sprintf("%.3g, %d", discEps, discEta),
				fmt.Sprintf("%.3g, %d", dbEps, dbEta),
				fmt.Sprintf("%.3g, %d", optEps, optEta),
				fmtF(discF1),
				fmtF(dbF1),
				fmtF(optF1),
			})
		}
	}
	return &Result{Tables: []Table{t}}, nil
}

// table4Optimal grid-searches (ε, η) for the best post-saving DBSCAN F1.
func table4Optimal(cfg Config, ds *data.Dataset) (float64, int, float64) {
	bestEps, bestEta, bestF1 := ds.Eps, ds.Eta, -1.0
	for _, fe := range []float64{0.75, 1, 1.25} {
		for _, fh := range []float64{0.5, 1, 1.5} {
			eps := ds.Eps * fe
			eta := int(float64(ds.Eta)*fh + 0.5)
			if eta < 2 {
				eta = 2
			}
			f1 := saveAndClusterF1(cfg, ds, eps, eta)
			if f1 > bestF1 {
				bestEps, bestEta, bestF1 = eps, eta, f1
			}
		}
	}
	return bestEps, bestEta, bestF1
}

// saveAndClusterF1 saves outliers under (eps, eta) and scores DBSCAN with
// the same constraints; invalid parameters score 0.
func saveAndClusterF1(cfg Config, ds *data.Dataset, eps float64, eta int) float64 {
	if eps <= 0 || eta < 1 {
		return 0
	}
	res, err := core.SaveAllContext(cfg.context(), ds.Rel,
		core.Constraints{Eps: eps, Eta: eta},
		cfg.discOptions("table4: disc "+ds.Name, core.Options{Kappa: discKappa(ds.Name)}))
	if err != nil {
		return 0
	}
	cfg.recordStats(res)
	cl := cluster.DBSCAN(res.Repaired, cluster.DBSCANConfig{Eps: eps, MinPts: eta})
	return eval.F1(cl.Labels, ds.Labels)
}
