package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// discOptions decorates a DISC Options value with the run's observability
// hooks: within-experiment progress lines on cfg.Progress (rate-limited by
// core's reporter, so a 100k-outlier save does not flood -v output) and a
// fan-out bound from cfg.Workers when the caller left it unset.
func (c Config) discOptions(label string, opts core.Options) core.Options {
	if opts.Workers == 0 {
		opts.Workers = c.Workers
	}
	if c.Approx.Enabled() && !opts.ApproxDetect.Enabled() {
		opts.ApproxDetect = c.Approx
	}
	if w := c.Progress; w != nil {
		opts.Progress = func(p obs.Progress) {
			fmt.Fprintf(w, "%s: saved %d/%d outliers\n", label, p.Done, p.Total)
		}
	}
	return opts
}

// recordStats accumulates a completed save's merged counters into
// cfg.Stats (a no-op when the collector is nil).
func (c Config) recordStats(res *core.SaveResult) {
	if res != nil {
		c.Stats.Add(&res.Stats)
	}
}
