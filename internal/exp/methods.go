package exp

import (
	"time"

	"repro/internal/clean"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

// methodNames is the fixed column order of the paper's tables.
var methodNames = []string{"Raw", "DISC", "DORC", "ERACER", "HoloClean", "Holistic"}

// discKappa returns the adjusted-attribute budget for a dataset: errors
// corrupt at most two attributes in the mixture workloads (§1.2's "only
// one or several sensors broken at a time"), so κ = 2 repairs the dirty
// outliers and leaves the natural ones flagged. GPS errors hit exactly one
// attribute (Figure 9: "only needs to adjust about 1 attribute") and with
// m = 3 a κ of 2 would let natural outliers rejoin clusters, so κ = 1.
func discKappa(dataset string) int {
	if dataset == "GPS" {
		return 1
	}
	return 2
}

// applyMethod runs the named outlier-handling method over the dataset and
// returns the treated relation plus the elapsed wall time. Methods that do
// not apply to a schema (e.g. ERACER over text) return (nil, 0), as does a
// method cut short by the run's context.
func applyMethod(cfg Config, name string, ds *data.Dataset) (*data.Relation, time.Duration) {
	start := time.Now()
	switch name {
	case "Raw":
		return ds.Rel, 0
	case "DISC":
		res, err := core.SaveAllContext(cfg.context(), ds.Rel,
			core.Constraints{Eps: ds.Eps, Eta: ds.Eta},
			cfg.discOptions("disc: "+ds.Name, core.Options{Kappa: discKappa(ds.Name)}))
		if err != nil {
			return nil, 0
		}
		cfg.recordStats(res)
		return res.Repaired, time.Since(start)
	case "DORC":
		d := &clean.DORC{Eps: ds.Eps, Eta: ds.Eta}
		out, err := d.Clean(ds.Rel)
		if err != nil {
			return nil, 0
		}
		return out, time.Since(start)
	case "ERACER":
		out, err := (&clean.ERACER{}).Clean(ds.Rel)
		if err != nil {
			return nil, 0
		}
		return out, time.Since(start)
	case "HoloClean":
		out, err := (&clean.HoloClean{}).Clean(ds.Rel)
		if err != nil {
			return nil, 0
		}
		return out, time.Since(start)
	case "Holistic":
		out, err := (&clean.Holistic{}).Clean(ds.Rel)
		if err != nil {
			return nil, 0
		}
		return out, time.Since(start)
	}
	return nil, 0
}

// clusterScores runs DBSCAN with the dataset's (ε, η) over a treated
// relation and scores it against the ground-truth classes.
type scores struct {
	F1, NMI, ARI float64
}

func clusterScores(rel *data.Relation, ds *data.Dataset) scores {
	res := cluster.DBSCAN(rel, cluster.DBSCANConfig{Eps: ds.Eps, MinPts: ds.Eta})
	return scores{
		F1:  eval.F1(res.Labels, ds.Labels),
		NMI: eval.NMI(res.Labels, ds.Labels),
		ARI: eval.ARI(res.Labels, ds.Labels),
	}
}
