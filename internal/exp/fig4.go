package exp

import (
	"fmt"

	"repro/internal/clean"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: clustering F1/precision/recall vs distance threshold ε (a) and neighbor threshold η (b)",
		Run:   runFig4,
	})
}

// letterLike generates the synthetic Letter-style workload of Figures 4
// and 10 (the paper uses m=16, n=1000 for Figure 4 and m=10, n=1000 for
// Figure 10). The scaled-density mapping of EXPERIMENTS.md turns the
// paper's η=18-at-20000-tuples into η≈4 at n=1000.
func letterLike(n, m, k int, seed int64) (*data.Dataset, error) {
	return data.GenMixture(data.MixtureSpec{
		Name: "LetterLike", N: n, M: m, K: k,
		Domain: 16, Std: 0.19, FactorScale: 1.5,
		DirtyFrac: 0.077, NaturalFrac: 0.019,
		Eps: 3, Eta: 4, Seed: seed,
	})
}

// fig4Point scores one (ε, η) setting for DISC and DORC, with DBSCAN
// always run at the dataset's reference constraints so the sweep isolates
// the saving parameters (the cleaning baselines are parameter-free and
// constant across the sweep).
type fig4Scores struct {
	p, r, f1 float64
}

func fig4Cluster(rel *data.Relation, ds *data.Dataset) fig4Scores {
	res := cluster.DBSCAN(rel, cluster.DBSCANConfig{Eps: ds.Eps, MinPts: ds.Eta})
	pc := eval.Pairs(res.Labels, ds.Labels)
	return fig4Scores{p: pc.Precision(), r: pc.Recall(), f1: pc.F1()}
}

func runFig4(cfg Config) (*Result, error) {
	n := int(1000 * cfg.scale(1))
	if n < 200 {
		n = 200
	}
	ds, err := letterLike(n, 16, 26, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}

	// Flat baselines (independent of ε and η).
	baselines := map[string]fig4Scores{}
	for _, method := range []string{"ERACER", "HoloClean", "Holistic"} {
		rel, _ := applyMethod(cfg, method, ds)
		if rel != nil {
			baselines[method] = fig4Cluster(rel, ds)
		}
	}
	rawScores := fig4Cluster(ds.Rel, ds)

	header := []string{"Sweep", "Raw F1",
		"DISC P", "DISC R", "DISC F1",
		"DORC P", "DORC R", "DORC F1",
		"ERACER F1", "HoloClean F1", "Holistic F1"}

	sweepRow := func(label string, eps float64, eta int) ([]string, error) {
		discRes, err := core.SaveAllContext(cfg.context(), ds.Rel,
			core.Constraints{Eps: eps, Eta: eta},
			cfg.discOptions("fig4: disc "+label, core.Options{Kappa: discKappa(ds.Name)}))
		if err != nil {
			return nil, err
		}
		cfg.recordStats(discRes)
		disc := fig4Cluster(discRes.Repaired, ds)
		dorcRel, err := (&clean.DORC{Eps: eps, Eta: eta}).Clean(ds.Rel)
		if err != nil {
			return nil, err
		}
		dorc := fig4Cluster(dorcRel, ds)
		return []string{label, fmtF(rawScores.f1),
			fmtF(disc.p), fmtF(disc.r), fmtF(disc.f1),
			fmtF(dorc.p), fmtF(dorc.r), fmtF(dorc.f1),
			fmtF(baselines["ERACER"].f1), fmtF(baselines["HoloClean"].f1), fmtF(baselines["Holistic"].f1),
		}, nil
	}

	a := Table{Title: "Fig 4(a): sweep of distance threshold ε (η=4)", Header: header}
	for _, eps := range []float64{1, 1.5, 2, 3, 4.5, 6, 8} {
		cfg.progressf("fig4a: ε=%v\n", eps)
		row, err := sweepRow(fmt.Sprintf("ε=%.2g", eps), eps, ds.Eta)
		if err != nil {
			return nil, fmt.Errorf("fig4a ε=%v: %w", eps, err)
		}
		a.Rows = append(a.Rows, row)
	}
	b := Table{Title: "Fig 4(b): sweep of neighbor threshold η (ε=3)", Header: header}
	for _, eta := range []int{2, 4, 8, 16, 24, 32} {
		cfg.progressf("fig4b: η=%d\n", eta)
		row, err := sweepRow(fmt.Sprintf("η=%d", eta), ds.Eps, eta)
		if err != nil {
			return nil, fmt.Errorf("fig4b η=%d: %w", eta, err)
		}
		b.Rows = append(b.Rows, row)
	}
	return &Result{Tables: []Table{a, b}}, nil
}
