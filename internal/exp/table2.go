package exp

import (
	"fmt"

	"repro/internal/data"
)

// table2Scales keeps the quadratic competitor (DORC) and the full pipeline
// benchable: the large datasets run at a reduced default scale, as
// recorded in EXPERIMENTS.md. SizeScale multiplies these.
var table2Scales = map[string]float64{
	"Iris":   1,
	"Seeds":  1,
	"WIFI":   1,
	"Yeast":  1,
	"Letter": 0.2,
	"Flight": 0.05,
	"Spam":   0.3,
	"GPS":    0.5,
}

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: DBSCAN clustering over raw data vs outlier saving vs data cleaning (NMI/ARI/F1/time)",
		Run:   runTable2,
	})
}

func runTable2(cfg Config) (*Result, error) {
	nmi := Table{Title: "NMI (DBSCAN)", Header: append([]string{"Data"}, methodNames...)}
	ari := Table{Title: "ARI (DBSCAN)", Header: append([]string{"Data"}, methodNames...)}
	f1 := Table{Title: "F1-score (DBSCAN)", Header: append([]string{"Data"}, methodNames...)}
	tc := Table{Title: "Time cost (s) (DBSCAN)", Header: append([]string{"Data"}, methodNames...)}

	for _, name := range data.NumericTable1Names() {
		ds, err := data.Table1(name, cfg.scale(table2Scales[name]), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("table2: %s: %w", name, err)
		}
		cfg.progressf("table2: %s (n=%d)\n", name, ds.N())
		nmiRow := []string{name}
		ariRow := []string{name}
		f1Row := []string{name}
		tcRow := []string{name}
		for _, method := range methodNames {
			rel, elapsed := applyMethod(cfg, method, ds)
			if rel == nil {
				nmiRow = append(nmiRow, "-")
				ariRow = append(ariRow, "-")
				f1Row = append(f1Row, "-")
				tcRow = append(tcRow, "-")
				continue
			}
			sc := clusterScores(rel, ds)
			nmiRow = append(nmiRow, fmtF(sc.NMI))
			ariRow = append(ariRow, fmtF(sc.ARI))
			f1Row = append(f1Row, fmtF(sc.F1))
			tcRow = append(tcRow, fmtS(elapsed.Seconds()))
		}
		nmi.Rows = append(nmi.Rows, nmiRow)
		ari.Rows = append(ari.Rows, ariRow)
		f1.Rows = append(f1.Rows, f1Row)
		tc.Rows = append(tc.Rows, tcRow)
	}
	return &Result{Tables: []Table{nmi, ari, f1, tc}}, nil
}
