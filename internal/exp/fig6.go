package exp

import (
	"fmt"
	"time"

	"repro/internal/clean"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: scalability in the number of tuples n (Flight)",
		Run:   runFig6,
	})
}

// fig6DORCCap bounds the quadratic DORC run, mirroring the paper's
// "cannot obtain a result in more than one hour with data sizes larger
// than 50k" (Figure 6b) at laptop scale.
const fig6DORCCap = 12000

// fig6ExactCap bounds the Exact enumeration similarly.
const fig6ExactCap = 6000

func runFig6(cfg Config) (*Result, error) {
	f1 := Table{Title: "Fig 6(a): clustering F1 vs n (Flight)",
		Header: []string{"n", "Raw", "DISC", "Exact", "DORC", "ERACER", "HoloClean", "Holistic"}}
	tc := Table{Title: "Fig 6(b): time cost (s) vs n (Flight)",
		Header: []string{"n", "DISC", "DISC nodes", "Exact", "DORC", "ERACER", "HoloClean", "Holistic"}}

	baseSizes := []int{2000, 5000, 10000, 20000}
	for _, base := range baseSizes {
		n := int(float64(base) * cfg.scale(1))
		if n < 500 {
			n = 500
		}
		ds, err := data.Table1("Flight", float64(n)/200000.0, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig6: n=%d: %w", n, err)
		}
		cfg.progressf("fig6: n=%d\n", ds.N())
		cons := core.Constraints{Eps: ds.Eps, Eta: ds.Eta}

		score := func(rel *data.Relation) string {
			if rel == nil {
				return "-"
			}
			cl := cluster.DBSCAN(rel, cluster.DBSCANConfig{Eps: ds.Eps, MinPts: ds.Eta})
			return fmtF(eval.F1(cl.Labels, ds.Labels))
		}

		f1Row := []string{fmt.Sprint(ds.N()), score(ds.Rel)}
		tcRow := []string{fmt.Sprint(ds.N())}

		// DISC.
		start := time.Now()
		discRes, err := core.SaveAllContext(cfg.context(), ds.Rel, cons,
			cfg.discOptions(fmt.Sprintf("fig6: disc n=%d", ds.N()),
				core.Options{Kappa: discKappa(ds.Name)}))
		if err != nil {
			return nil, fmt.Errorf("fig6: disc: %w", err)
		}
		cfg.recordStats(discRes)
		f1Row = append(f1Row, score(discRes.Repaired))
		tcRow = append(tcRow, fmtS(time.Since(start).Seconds()),
			fmt.Sprint(discRes.Stats.Nodes))

		// Exact (capped).
		if ds.N() <= fig6ExactCap {
			start = time.Now()
			rel, err := exactRepair(ds, cons, discRes.Detection, 32)
			if err != nil {
				return nil, fmt.Errorf("fig6: exact: %w", err)
			}
			f1Row = append(f1Row, score(rel))
			tcRow = append(tcRow, fmtS(time.Since(start).Seconds()))
		} else {
			f1Row = append(f1Row, "-")
			tcRow = append(tcRow, "-")
		}

		// DORC (capped).
		if ds.N() <= fig6DORCCap {
			start = time.Now()
			rel, err := (&clean.DORC{Eps: ds.Eps, Eta: ds.Eta}).Clean(ds.Rel)
			if err != nil {
				return nil, fmt.Errorf("fig6: dorc: %w", err)
			}
			f1Row = append(f1Row, score(rel))
			tcRow = append(tcRow, fmtS(time.Since(start).Seconds()))
		} else {
			f1Row = append(f1Row, "-")
			tcRow = append(tcRow, "-")
		}

		for _, method := range []string{"ERACER", "HoloClean", "Holistic"} {
			rel, elapsed := applyMethod(cfg, method, ds)
			f1Row = append(f1Row, score(rel))
			if rel == nil {
				tcRow = append(tcRow, "-")
			} else {
				tcRow = append(tcRow, fmtS(elapsed.Seconds()))
			}
		}
		f1.Rows = append(f1.Rows, f1Row)
		tc.Rows = append(tc.Rows, tcRow)
	}
	return &Result{Tables: []Table{f1, tc}}, nil
}

// exactRepair runs the Exact value-enumeration algorithm over every
// detected outlier (the §2.3 baseline), with per-attribute domains thinned
// to maxDomain values. det is the detection of ds.Rel under cons — callers
// already have one from their DISC run, so Exact does not pay a second
// detection pass (and index build) over the same relation.
func exactRepair(ds *data.Dataset, cons core.Constraints, det *core.Detection, maxDomain int) (*data.Relation, error) {
	out := ds.Rel.Clone()
	if len(det.Outliers) == 0 || len(det.Inliers) == 0 {
		return out, nil
	}
	r := ds.Rel.Subset(det.Inliers)
	ex, err := core.NewExactSaver(r, cons, maxDomain)
	if err != nil {
		return nil, err
	}
	ex.Kappa = discKappa(ds.Name)
	for _, oi := range det.Outliers {
		adj := ex.Save(ds.Rel.Tuples[oi])
		if adj.Saved() {
			out.Tuples[oi] = adj.Tuple
		}
	}
	return out, nil
}
