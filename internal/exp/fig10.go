package exp

import (
	"fmt"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: adjustment/explanation accuracy, modified attributes and cost vs η (a,c,e) and ε (b,d,f)",
		Run:   runFig10,
	})
}

var fig10Methods = []string{"DISC", "SSE", "DORC", "ERACER", "HoloClean", "Holistic"}

func runFig10(cfg Config) (*Result, error) {
	n := int(1000 * cfg.scale(1))
	if n < 200 {
		n = 200
	}
	// The paper's Figure 10 workload: n=1000, m=10, randomly injected
	// attribute errors.
	ds, err := letterLike(n, 10, 10, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	cfg.progressf("fig10: letter-like (n=%d, m=10)\n", ds.N())

	header := append([]string{"Sweep"}, fig10Methods...)
	jacEta := Table{Title: "Fig 10(a): Jaccard vs η (ε=3)", Header: header}
	jacEps := Table{Title: "Fig 10(b): Jaccard vs ε (η=4)", Header: header}
	attEta := Table{Title: "Fig 10(c): #modified attributes vs η (ε=3)", Header: header}
	attEps := Table{Title: "Fig 10(d): #modified attributes vs ε (η=4)", Header: header}
	cstEta := Table{Title: "Fig 10(e): adjustment cost vs η (ε=3)", Header: header}
	cstEps := Table{Title: "Fig 10(f): adjustment cost vs ε (η=4)", Header: header}

	addRows := func(label string, eps float64, eta int, jac, att, cst *Table) error {
		acc, err := adjustmentAccuracy(cfg, ds, eps, eta, discKappa(ds.Name), nil)
		if err != nil {
			return err
		}
		jr := []string{label}
		ar := []string{label}
		cr := []string{label}
		for _, m := range fig10Methods {
			st := acc[m]
			jr = append(jr, fmtF(st.jaccard()))
			ar = append(ar, fmt.Sprintf("%.2f", st.attrs()))
			if m == "SSE" {
				cr = append(cr, "-") // SSE explains; it does not adjust
			} else {
				cr = append(cr, fmt.Sprintf("%.3g", st.cost()))
			}
		}
		jac.Rows = append(jac.Rows, jr)
		att.Rows = append(att.Rows, ar)
		cst.Rows = append(cst.Rows, cr)
		return nil
	}

	for _, eta := range []int{2, 3, 4, 6} {
		cfg.progressf("fig10: η=%d\n", eta)
		if err := addRows(fmt.Sprintf("η=%d", eta), ds.Eps, eta, &jacEta, &attEta, &cstEta); err != nil {
			return nil, fmt.Errorf("fig10 η=%d: %w", eta, err)
		}
	}
	for _, eps := range []float64{2, 2.5, 3, 3.5} {
		cfg.progressf("fig10: ε=%v\n", eps)
		if err := addRows(fmt.Sprintf("ε=%.2g", eps), eps, ds.Eta, &jacEps, &attEps, &cstEps); err != nil {
			return nil, fmt.Errorf("fig10 ε=%v: %w", eps, err)
		}
	}
	return &Result{Tables: []Table{jacEta, jacEps, attEta, attEps, cstEta, cstEps}}, nil
}
