package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7: scalability in the number of attributes m (Spam)",
		Run:   runFig7,
	})
}

// fig7ExactMaxM caps the exponential Exact enumeration; beyond this the
// row prints "-" (the resource boundary §4.2.3 describes).
const fig7ExactMaxM = 20

func runFig7(cfg Config) (*Result, error) {
	ds, err := data.Table1("Spam", cfg.scale(table2Scales["Spam"]), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	f1 := Table{Title: "Fig 7(a): clustering F1 vs m (Spam)",
		Header: []string{"m", "Raw", "DISC", "Exact"}}
	tc := Table{Title: "Fig 7(b): time cost (s) vs m (Spam)",
		Header: []string{"m", "DISC", "DISC nodes", "Exact"}}

	for _, m := range []int{5, 10, 20, 40, 57} {
		proj, err := projectDataset(ds, m)
		if err != nil {
			return nil, fmt.Errorf("fig7: m=%d: %w", m, err)
		}
		// Re-determine ε for the projected geometry (subspace distances
		// shrink with m); η stays.
		choice, err := core.DeterminePoisson(proj.Rel, core.ParamOptions{
			SampleRate: 0.25, Seed: cfg.Seed,
		})
		if err == nil && choice.Eps > 0 {
			proj.Eps = choice.Eps
			proj.Eta = choice.Eta
		}
		cfg.progressf("fig7: m=%d (ε=%.3g, η=%d)\n", m, proj.Eps, proj.Eta)
		cons := core.Constraints{Eps: proj.Eps, Eta: proj.Eta}

		score := func(rel *data.Relation) string {
			if rel == nil {
				return "-"
			}
			cl := cluster.DBSCAN(rel, cluster.DBSCANConfig{Eps: proj.Eps, MinPts: proj.Eta})
			return fmtF(eval.F1(cl.Labels, proj.Labels))
		}
		f1Row := []string{fmt.Sprint(m), score(proj.Rel)}
		tcRow := []string{fmt.Sprint(m)}

		start := time.Now()
		discRes, err := core.SaveAllContext(cfg.context(), proj.Rel, cons,
			cfg.discOptions(fmt.Sprintf("fig7: disc m=%d", m),
				core.Options{Kappa: discKappa(ds.Name)}))
		if err != nil {
			return nil, fmt.Errorf("fig7: disc m=%d: %w", m, err)
		}
		cfg.recordStats(discRes)
		f1Row = append(f1Row, score(discRes.Repaired))
		tcRow = append(tcRow, fmtS(time.Since(start).Seconds()),
			fmt.Sprint(discRes.Stats.Nodes))

		if m <= fig7ExactMaxM {
			start = time.Now()
			rel, err := exactRepair(proj, cons, discRes.Detection, 6)
			if err != nil {
				return nil, fmt.Errorf("fig7: exact m=%d: %w", m, err)
			}
			f1Row = append(f1Row, score(rel))
			tcRow = append(tcRow, fmtS(time.Since(start).Seconds()))
		} else {
			f1Row = append(f1Row, "-")
			tcRow = append(tcRow, "-")
		}
		f1.Rows = append(f1.Rows, f1Row)
		tc.Rows = append(tc.Rows, tcRow)
	}
	return &Result{Tables: []Table{f1, tc}}, nil
}

// projectDataset restricts a dataset to its first m attributes, truncating
// the dirty masks accordingly. Tuples whose injected errors all fall
// outside the projection are no longer dirty.
func projectDataset(ds *data.Dataset, m int) (*data.Dataset, error) {
	if m < 1 || m > ds.Rel.Schema.M() {
		return nil, fmt.Errorf("exp: projection to %d of %d attributes", m, ds.Rel.Schema.M())
	}
	schema := &data.Schema{Attrs: append([]data.Attribute(nil), ds.Rel.Schema.Attrs[:m]...), Norm: ds.Rel.Schema.Norm}
	rel := data.NewRelation(schema)
	for _, t := range ds.Rel.Tuples {
		rel.Append(t[:m])
	}
	keep := data.FullMask(m)
	out := &data.Dataset{
		Name:    ds.Name,
		Rel:     rel,
		Labels:  ds.Labels,
		Dirty:   make([]data.AttrMask, ds.N()),
		Natural: ds.Natural,
		Clean:   make([]data.Tuple, ds.N()),
		Eps:     ds.Eps,
		Eta:     ds.Eta,
		Classes: ds.Classes,
	}
	for i := range ds.Dirty {
		out.Dirty[i] = ds.Dirty[i] & keep
		if out.Dirty[i] != 0 {
			out.Clean[i] = ds.Clean[i][:m]
		}
	}
	return out, nil
}
