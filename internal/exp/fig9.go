package exp

import (
	"fmt"
	"math"

	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/neighbors"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: accuracy of attribute adjustment/explanation for GPS outliers (Jaccard vs SSE vs cleaners)",
		Run:   runFig9,
	})
}

// accStats aggregates per-outlier adjustment accuracy for one method.
type accStats struct {
	jaccardSum float64
	attrsSum   float64
	costSum    float64
	n          int
}

func (a *accStats) add(truth, pred data.AttrMask, cost float64) {
	a.jaccardSum += eval.Jaccard(truth, pred)
	a.attrsSum += float64(pred.Count())
	if !math.IsInf(cost, 1) {
		a.costSum += cost
	}
	a.n++
}

func (a *accStats) jaccard() float64 {
	if a.n == 0 {
		return 0
	}
	return a.jaccardSum / float64(a.n)
}

func (a *accStats) attrs() float64 {
	if a.n == 0 {
		return 0
	}
	return a.attrsSum / float64(a.n)
}

func (a *accStats) cost() float64 {
	if a.n == 0 {
		return 0
	}
	return a.costSum / float64(a.n)
}

// adjustmentAccuracy runs DISC, SSE and the cleaners over the dataset and
// scores, for every *injected dirty* tuple, the set of attributes each
// method adjusted (or, for SSE, explained) against the ground-truth error
// attributes — the §4.3 protocol. A non-nil idx (over ds.Rel, built for
// eps) is reused for the detection pass instead of building a fresh one.
func adjustmentAccuracy(cfg Config, ds *data.Dataset, eps float64, eta, kappa int, idx neighbors.Index) (map[string]*accStats, error) {
	cons := core.Constraints{Eps: eps, Eta: eta}
	out := map[string]*accStats{}
	for _, m := range []string{"DISC", "SSE", "DORC", "ERACER", "HoloClean", "Holistic"} {
		out[m] = &accStats{}
	}

	// DISC adjustments (and the detection split reused by SSE).
	discRes, err := core.SaveAllContext(cfg.context(), ds.Rel, cons,
		cfg.discOptions("fig9: disc "+ds.Name, core.Options{Kappa: kappa, Index: idx}))
	if err != nil {
		return nil, err
	}
	cfg.recordStats(discRes)
	adjByIdx := map[int]core.Adjustment{}
	for _, adj := range discRes.Adjustments {
		adjByIdx[adj.Index] = adj
	}
	inliers := ds.Rel.Subset(discRes.Detection.Inliers)

	// Cleaner outputs.
	cleaned := map[string]*data.Relation{}
	for name, c := range map[string]clean.Cleaner{
		"DORC":      &clean.DORC{Eps: eps, Eta: eta},
		"ERACER":    &clean.ERACER{},
		"HoloClean": &clean.HoloClean{},
		"Holistic":  &clean.Holistic{},
	} {
		rel, err := c.Clean(ds.Rel)
		if err != nil {
			rel = nil // not applicable (e.g. ERACER over text)
		}
		cleaned[name] = rel
	}

	sch := ds.Rel.Schema
	for i := range ds.Rel.Tuples {
		truth := ds.Dirty[i]
		if truth == 0 {
			continue
		}
		// DISC: attributes of the returned adjustment; unsaved outliers
		// count as an empty adjustment.
		var discMask data.AttrMask
		var discCost float64
		if adj, ok := adjByIdx[i]; ok && adj.Saved() {
			discMask = adj.Adjusted
			discCost = adj.Cost
		}
		out["DISC"].add(truth, discMask, discCost)

		// SSE explains the outlier against the inlier population.
		sseMask := explain.SSE(inliers, ds.Rel.Tuples[i], explain.SSEConfig{})
		out["SSE"].add(truth, sseMask, 0)

		for name, rel := range cleaned {
			if rel == nil {
				continue
			}
			mask := data.DiffMask(sch, ds.Rel.Tuples[i], rel.Tuples[i])
			out[name].add(truth, mask, sch.Dist(ds.Rel.Tuples[i], rel.Tuples[i]))
		}
	}
	return out, nil
}

func runFig9(cfg Config) (*Result, error) {
	ds, err := data.Table1("GPS", cfg.scale(table2Scales["GPS"]), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	cfg.progressf("fig9: GPS (n=%d)\n", ds.N())

	// (a) dirty / natural outlier rates, as detected vs ground truth. The
	// index is built once here and reused by the part-(b) DISC run below.
	idx := neighbors.Build(ds.Rel, ds.Eps)
	det, err := core.Detect(ds.Rel, core.Constraints{Eps: ds.Eps, Eta: ds.Eta}, idx)
	if err != nil {
		return nil, err
	}
	flagged := map[int]bool{}
	for _, oi := range det.Outliers {
		flagged[oi] = true
	}
	dirtyDet, natDet := 0, 0
	for i := range ds.Dirty {
		if !flagged[i] {
			continue
		}
		if ds.Dirty[i] != 0 {
			dirtyDet++
		} else if ds.Natural[i] {
			natDet++
		}
	}
	n := float64(ds.N())
	a := Table{
		Title:  "Fig 9(a): dirty / natural outlier rates (GPS)",
		Header: []string{"Kind", "Truth rate", "Detected rate"},
		Rows: [][]string{
			{"dirty", fmtF(float64(ds.DirtyCount()) / n), fmtF(float64(dirtyDet) / n)},
			{"natural", fmtF(float64(ds.NaturalCount()) / n), fmtF(float64(natDet) / n)},
		},
	}

	// (b) Jaccard accuracy of adjusted/explained attributes.
	acc, err := adjustmentAccuracy(cfg, ds, ds.Eps, ds.Eta, discKappa("GPS"), idx)
	if err != nil {
		return nil, err
	}
	b := Table{
		Title:  "Fig 9(b): Jaccard of adjusted/explained attributes vs ground-truth error attributes (GPS)",
		Header: []string{"Method", "Jaccard", "AvgAdjustedAttrs", "AvgCost"},
	}
	for _, m := range []string{"DISC", "SSE", "DORC", "ERACER", "HoloClean", "Holistic"} {
		st := acc[m]
		b.Rows = append(b.Rows, []string{m, fmtF(st.jaccard()), fmt.Sprintf("%.2f", st.attrs()), fmt.Sprintf("%.3g", st.cost())})
	}
	return &Result{Tables: []Table{a, b}}, nil
}
