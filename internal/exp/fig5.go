package exp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5: distribution of the number of ε-neighbors with Poisson fit and sampling",
		Run:   runFig5,
	})
}

func runFig5(cfg Config) (*Result, error) {
	type spec struct {
		name    string
		scale   float64
		epsList []float64
		rates   []float64
	}
	// The ε grids bracket each dataset's reference threshold (the paper's
	// 2.5/3/3.5 for Letter and 5/10/15 for Flight, re-centred on the
	// synthetic geometry).
	specs := []spec{
		{name: "Letter", scale: table2Scales["Letter"], epsList: []float64{0.75, 1.5, 3, 4.5}, rates: []float64{1, 0.1}},
		{name: "Flight", scale: table2Scales["Flight"], epsList: []float64{2.5, 5, 10, 15}, rates: []float64{1, 0.01}},
	}
	var tables []Table
	for _, sp := range specs {
		ds, err := data.Table1(sp.name, cfg.scale(sp.scale), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig5: %s: %w", sp.name, err)
		}
		cfg.progressf("fig5: %s (n=%d)\n", sp.name, ds.N())
		t := Table{
			Title: fmt.Sprintf("Fig 5: #ε-neighbor distribution over %s (n=%d)", sp.name, ds.N()),
			Header: []string{"ε", "rate", "λ (mean)", "p(N≥η) η=" + fmt.Sprint(ds.Eta),
				"q10", "q50", "q90", "frac<η", "KS"},
		}
		for _, eps := range sp.epsList {
			for _, rate := range sp.rates {
				counts, err := core.NeighborCountsContext(cfg.context(), ds.Rel, eps, rate, cfg.Seed, nil)
				if err != nil {
					return nil, fmt.Errorf("fig5: %w", err)
				}
				pois, err := stats.FitPoisson(counts)
				if err != nil {
					return nil, fmt.Errorf("fig5: fit: %w", err)
				}
				sorted := make([]float64, len(counts))
				for i, c := range counts {
					sorted[i] = float64(c)
				}
				sort.Float64s(sorted)
				below := 0
				for _, c := range counts {
					if c < ds.Eta {
						below++
					}
				}
				ks, _ := stats.KSPoisson(counts, pois)
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%.3g", eps),
					fmt.Sprintf("%g%%", rate*100),
					fmt.Sprintf("%.2f", pois.Lambda),
					fmt.Sprintf("%.4f", pois.TailGE(ds.Eta)),
					fmt.Sprintf("%.0f", stats.Quantile(sorted, 0.1)),
					fmt.Sprintf("%.0f", stats.Quantile(sorted, 0.5)),
					fmt.Sprintf("%.0f", stats.Quantile(sorted, 0.9)),
					fmtF(float64(below) / float64(len(counts))),
					fmt.Sprintf("%.3f", ks),
				})
			}
		}
		tables = append(tables, t)
	}
	return &Result{Tables: tables}, nil
}
