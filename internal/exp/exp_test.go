package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// cfgFast is the shared quick configuration: smaller datasets, fixed seed.
func cfgFast() Config { return Config{Seed: 1, SizeScale: 0.4} }

func cell(t *testing.T, tb *Table, rowKey, col string) float64 {
	t.Helper()
	ri := tb.FindRow(rowKey)
	if ri < 0 {
		t.Fatalf("row %q not found in %q", rowKey, tb.Title)
	}
	s := tb.Cell(ri, col)
	if s == "-" || s == "" {
		t.Fatalf("cell (%s, %s) empty in %q", rowKey, col, tb.Title)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%s, %s) = %q not a number", rowKey, col, s)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "fig10", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"mixed", "table2", "table3", "table4", "table5"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	if _, ok := Find("table2"); !ok {
		t.Error("Find(table2) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

func TestTableHelpers(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"Data", "X"}, Rows: [][]string{{"a", "1"}, {"b", "2"}}}
	if tb.FindRow("b") != 1 || tb.FindRow("z") != -1 {
		t.Error("FindRow broken")
	}
	if tb.Cell(0, "X") != "1" || tb.Cell(0, "nope") != "" {
		t.Error("Cell broken")
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if !strings.Contains(buf.String(), "Data") {
		t.Error("Fprint missing header")
	}
	res := Result{Tables: []Table{tb}}
	if res.Table("T") == nil || res.Table("U") != nil {
		t.Error("Result.Table broken")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table2")
	}
	e, _ := Find("table2")
	res, err := e.Run(cfgFast())
	if err != nil {
		t.Fatal(err)
	}
	f1 := res.Table("F1-score (DBSCAN)")
	if f1 == nil {
		t.Fatal("missing F1 table")
	}
	if len(f1.Rows) != 8 {
		t.Fatalf("F1 table has %d rows", len(f1.Rows))
	}
	// Core claims: DISC improves on Raw for every dataset, and on average
	// beats every competitor.
	sums := map[string]float64{}
	for _, row := range f1.Rows {
		name := row[0]
		disc := cell(t, f1, name, "DISC")
		raw := cell(t, f1, name, "Raw")
		if disc < raw {
			t.Errorf("%s: DISC F1 %v < Raw %v", name, disc, raw)
		}
		for _, m := range methodNames {
			v := f1.Cell(f1.FindRow(name), m)
			if v == "-" || v == "" {
				continue
			}
			fv, _ := strconv.ParseFloat(v, 64)
			sums[m] += fv
		}
	}
	for _, m := range methodNames {
		if m == "DISC" {
			continue
		}
		if sums[m] > sums["DISC"] {
			t.Errorf("method %s mean F1 %v beats DISC %v", m, sums[m]/8, sums["DISC"]/8)
		}
	}
	// NMI and ARI tables exist and agree on the headline claim.
	for _, title := range []string{"NMI (DBSCAN)", "ARI (DBSCAN)"} {
		tb := res.Table(title)
		if tb == nil {
			t.Fatalf("missing %s", title)
		}
		for _, row := range tb.Rows {
			disc := cell(t, tb, row[0], "DISC")
			raw := cell(t, tb, row[0], "Raw")
			if disc < raw-1e-9 {
				t.Errorf("%s %s: DISC %v < Raw %v", title, row[0], disc, raw)
			}
		}
	}
	// Time table has positive DISC entries.
	tc := res.Table("Time cost (s) (DBSCAN)")
	if tc == nil {
		t.Fatal("missing time table")
	}
	if v := cell(t, tc, "Letter", "DISC"); v <= 0 {
		t.Errorf("Letter DISC time %v", v)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table3")
	}
	e, _ := Find("table3")
	res, err := e.Run(cfgFast())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Table("F1-score by clustering algorithm (Raw vs DISC)")
	if tb == nil {
		t.Fatal("missing table")
	}
	// DBSCAN strictly improves everywhere; on average across all six
	// algorithms saving outliers helps.
	var rawSum, discSum float64
	for _, row := range tb.Rows {
		name := row[0]
		if cell(t, tb, name, "DBSCAN/DISC") < cell(t, tb, name, "DBSCAN/Raw")-1e-9 {
			t.Errorf("%s: DBSCAN with DISC regressed", name)
		}
		for _, algo := range clusterAlgos {
			rawSum += cell(t, tb, name, algo+"/Raw")
			discSum += cell(t, tb, name, algo+"/DISC")
		}
	}
	if discSum <= rawSum {
		t.Errorf("mean F1 with DISC %v not above raw %v", discSum, rawSum)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table4")
	}
	e, _ := Find("table4")
	res, err := e.Run(cfgFast())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("table4 rows = %d", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		get := func(col string) float64 {
			s := tb.Cell(i, col)
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				t.Fatalf("row %d col %s = %q", i, col, s)
			}
			return v
		}
		disc, db, opt := get("F1 DISC"), get("F1 DB"), get("F1 Opt")
		// The Table 4 claims: Poisson determination is at least on par
		// with the Normal-based DB at every sampling rate (clearly ahead
		// at full rate, see below) and optimal dominates everything.
		if disc < db-0.05 {
			t.Errorf("row %v: DISC F1 %v below DB %v", row[0:2], disc, db)
		}
		if opt < disc-1e-9 || opt < db-1e-9 {
			t.Errorf("row %v: optimal F1 %v below DISC %v / DB %v", row[0:2], opt, disc, db)
		}
		if disc < opt-0.25 {
			t.Errorf("row %v: DISC F1 %v far from optimal %v", row[0:2], disc, opt)
		}
		if strings.HasSuffix(tb.Cell(i, "Rate"), "100%") && disc < db {
			t.Errorf("row %v: full-rate DISC %v below DB %v", row[0:2], disc, db)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full table5")
	}
	e, _ := Find("table5")
	res, err := e.Run(cfgFast())
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Tables[0]
	if len(tb.Rows) != 7 {
		t.Fatalf("table5 rows = %d", len(tb.Rows))
	}
	var rawSum, discSum float64
	for _, row := range tb.Rows {
		rawSum += cell(t, &tb, row[0], "Raw")
		discSum += cell(t, &tb, row[0], "DISC")
	}
	if discSum < rawSum {
		t.Errorf("classification: DISC mean %v below raw %v", discSum/7, rawSum/7)
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig4")
	}
	e, _ := Find("fig4")
	res, err := e.Run(cfgFast())
	if err != nil {
		t.Fatal(err)
	}
	a := res.Table("Fig 4(a): sweep of distance threshold ε (η=4)")
	if a == nil {
		t.Fatal("missing fig4a")
	}
	// Inverted-U: the reference ε=3 beats both extremes for DISC.
	peak := cell(t, a, "ε=3", "DISC F1")
	lo := cell(t, a, "ε=1", "DISC F1")
	hi := cell(t, a, "ε=8", "DISC F1")
	if !(peak >= lo && peak >= hi) {
		t.Errorf("fig4a not peaked: lo=%v peak=%v hi=%v", lo, peak, hi)
	}
	if peak <= cell(t, a, "ε=3", "Raw F1") {
		t.Error("fig4a: DISC at the peak does not beat raw")
	}
	if peak < cell(t, a, "ε=3", "DORC F1")-1e-9 {
		t.Error("fig4a: DORC beats DISC at the reference setting")
	}
	b := res.Table("Fig 4(b): sweep of neighbor threshold η (ε=3)")
	if b == nil {
		t.Fatal("missing fig4b")
	}
	if cell(t, b, "η=4", "DISC F1") < cell(t, b, "η=32", "DISC F1")-1e-9 {
		t.Error("fig4b: over-large η should not beat the reference")
	}
}

func TestFig5Shape(t *testing.T) {
	e, _ := Find("fig5")
	res, err := e.Run(Config{Seed: 1, SizeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("fig5 tables = %d", len(res.Tables))
	}
	for _, tb := range res.Tables {
		// λ grows with ε within each sampling rate.
		var prev float64 = -1
		for i, row := range tb.Rows {
			if row[1] != "100%" {
				continue
			}
			lam, _ := strconv.ParseFloat(tb.Cell(i, "λ (mean)"), 64)
			if lam < prev-1e-9 {
				t.Errorf("%s: λ not nondecreasing in ε (%v after %v)", tb.Title, lam, prev)
			}
			prev = lam
		}
		// Sampled λ stays within 40% of the full λ for the larger radii.
		for i := 0; i+1 < len(tb.Rows); i += 2 {
			full, _ := strconv.ParseFloat(tb.Cell(i, "λ (mean)"), 64)
			sampled, _ := strconv.ParseFloat(tb.Cell(i+1, "λ (mean)"), 64)
			if full < 5 {
				continue // tiny-λ rows are noise-dominated
			}
			if sampled < full*0.6 || sampled > full*1.4 {
				t.Errorf("%s: sampled λ %v far from full %v", tb.Title, sampled, full)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig6")
	}
	e, _ := Find("fig6")
	res, err := e.Run(Config{Seed: 1, SizeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	f1 := res.Tables[0]
	tc := res.Tables[1]
	for i := range f1.Rows {
		key := f1.Rows[i][0]
		if cell(t, &f1, key, "DISC") < cell(t, &f1, key, "Raw")-1e-9 {
			t.Errorf("fig6 n=%s: DISC below raw", key)
		}
	}
	// DISC time grows with n but stays finite on the largest point, where
	// DORC/Exact may be capped out.
	last := len(tc.Rows) - 1
	if v := cell(t, &tc, tc.Rows[last][0], "DISC"); v <= 0 {
		t.Error("fig6: missing DISC time at max n")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig7")
	}
	e, _ := Find("fig7")
	res, err := e.Run(Config{Seed: 1, SizeScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	f1 := res.Tables[0]
	tc := res.Tables[1]
	// DISC runs at every m including 57; Exact is capped beyond small m.
	if v := cell(t, &f1, "57", "DISC"); v <= 0 {
		t.Error("fig7: DISC missing at m=57")
	}
	if got := tc.Cell(tc.FindRow("57"), "Exact"); got != "-" {
		t.Errorf("fig7: Exact should be capped at m=57, got %q", got)
	}
	// Where Exact runs it is at least as accurate as DISC (small slack for
	// domain thinning).
	if ex, di := cell(t, &f1, "5", "Exact"), cell(t, &f1, "5", "DISC"); ex < di-0.05 {
		t.Errorf("fig7 m=5: exact %v well below DISC %v", ex, di)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig8")
	}
	e, _ := Find("fig8")
	res, err := e.Run(Config{Seed: 1, SizeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Table("Fig 8(a): record-matching F1 vs ε (η=3)")
	if a == nil {
		t.Fatal("missing fig8a")
	}
	// At the reference ε the saving improves matching over raw, and DORC
	// stays below DISC.
	disc := cell(t, a, "ε=4.6", "DISC")
	raw := cell(t, a, "ε=4.6", "Raw")
	dorc := cell(t, a, "ε=4.6", "DORC")
	if disc <= raw {
		t.Errorf("fig8: DISC %v does not beat raw %v", disc, raw)
	}
	if dorc >= disc {
		t.Errorf("fig8: DORC %v above DISC %v", dorc, disc)
	}
}

func TestFig9Shape(t *testing.T) {
	e, _ := Find("fig9")
	res, err := e.Run(cfgFast())
	if err != nil {
		t.Fatal(err)
	}
	a := res.Table("Fig 9(a): dirty / natural outlier rates (GPS)")
	if a == nil {
		t.Fatal("missing fig9a")
	}
	dr := cell(t, a, "dirty", "Detected rate")
	nr := cell(t, a, "natural", "Detected rate")
	if dr < 0.05 || nr < 0.05 {
		t.Errorf("fig9a: detected rates too low: dirty=%v natural=%v", dr, nr)
	}
	b := res.Tables[1]
	disc := cell(t, &b, "DISC", "Jaccard")
	sse := cell(t, &b, "SSE", "Jaccard")
	dorc := cell(t, &b, "DORC", "Jaccard")
	if disc < sse {
		t.Errorf("fig9b: DISC Jaccard %v below SSE %v", disc, sse)
	}
	if disc < dorc {
		t.Errorf("fig9b: DISC Jaccard %v below DORC %v", disc, dorc)
	}
	// GPS errors touch one attribute; DISC adjusts about that many.
	if attrs := cell(t, &b, "DISC", "AvgAdjustedAttrs"); attrs > 1.6 {
		t.Errorf("fig9b: DISC adjusts %v attrs on average, want ≈ 1", attrs)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig10")
	}
	e, _ := Find("fig10")
	res, err := e.Run(cfgFast())
	if err != nil {
		t.Fatal(err)
	}
	jac := res.Table("Fig 10(a): Jaccard vs η (ε=3)")
	att := res.Table("Fig 10(c): #modified attributes vs η (ε=3)")
	if jac == nil || att == nil {
		t.Fatal("missing fig10 tables")
	}
	row := jac.FindRow("η=4")
	get := func(tb *Table, col string) float64 {
		v, _ := strconv.ParseFloat(tb.Cell(row, col), 64)
		return v
	}
	if get(jac, "DISC") < get(jac, "DORC") || get(jac, "DISC") < get(jac, "HoloClean") {
		t.Error("fig10a: DISC Jaccard not above the cleaners")
	}
	if get(jac, "DISC") < get(jac, "SSE")-0.1 {
		t.Error("fig10a: DISC Jaccard well below SSE")
	}
	// Letter-style data: DISC adjusts ≈ 2 of 10 attributes; DORC all 10.
	if v := get(att, "DISC"); v > 3 {
		t.Errorf("fig10c: DISC adjusts %v attrs, want ≈ 2", v)
	}
	if v := get(att, "DORC"); v < 9 {
		t.Errorf("fig10c: DORC adjusts %v attrs, want ≈ 10", v)
	}
}

func TestTableExportFormats(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"Data", "X"}, Rows: [][]string{{"a", "1"}}}
	var buf bytes.Buffer
	if err := tb.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csvOut := buf.String()
	if !strings.Contains(csvOut, "# T") || !strings.Contains(csvOut, "Data,X") || !strings.Contains(csvOut, "a,1") {
		t.Errorf("csv output wrong:\n%s", csvOut)
	}
	buf.Reset()
	tb.FprintMarkdown(&buf)
	md := buf.String()
	if !strings.Contains(md, "### T") || !strings.Contains(md, "| Data | X |") || !strings.Contains(md, "| a | 1 |") {
		t.Errorf("markdown output wrong:\n%s", md)
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation")
	}
	e, _ := Find("ablation")
	res, err := e.Run(Config{Seed: 1, SizeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	algo := res.Tables[0]
	get := func(row, col string) float64 {
		return cell(t, &algo, row, col)
	}
	// Memoization never expands more nodes than its ablation.
	if get("kappa=2 (default)", "Nodes") > get("kappa=2, no memo", "Nodes") {
		t.Error("memoization expanded more nodes than no-memo")
	}
	// The κ budget drives the node count: κ=1 < κ=2 < κ=3 < unrestricted.
	n1, n2, n3 := get("kappa=1", "Nodes"), get("kappa=2 (default)", "Nodes"), get("kappa=3", "Nodes")
	nu := get("unrestricted", "Nodes")
	if !(n1 < n2 && n2 < n3 && n3 < nu) {
		t.Errorf("node counts not ordered by κ: %v %v %v %v", n1, n2, n3, nu)
	}
	// Parallel and sequential saving agree on the outcome.
	if get("kappa=2 (default)", "Saved") != get("sequential (workers=1)", "Saved") {
		t.Error("parallel changed the saved count")
	}
	// Index scan times are timing-noise-prone under CI load, so only
	// assert the robust property: every time is positive and at least one
	// real index clearly beats brute force.
	idx := res.Tables[1]
	brute := cell(t, &idx, "brute", "Scan(s)")
	beats := 0
	for _, name := range []string{"grid", "kdtree", "vptree"} {
		v := cell(t, &idx, name, "Scan(s)")
		if v <= 0 {
			t.Errorf("%s scan time %v", name, v)
		}
		if v < brute {
			beats++
		}
	}
	if beats == 0 {
		t.Error("no index beat the brute-force scan")
	}
}

func TestMixedShape(t *testing.T) {
	e, ok := Find("mixed")
	if !ok {
		t.Fatal("mixed experiment not registered")
	}
	res, err := e.Run(Config{Seed: 1, SizeScale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("mixed produced %d tables, want 3", len(res.Tables))
	}
	pipe := res.Tables[0]
	if cell(t, &pipe, "outliers detected", "Value") <= 0 {
		t.Error("dirty fixture detected no outliers")
	}
	if cell(t, &pipe, "saved", "Value") <= 0 {
		t.Error("no outlier was saved")
	}
	// The kernel counters must show the caches engaging: a text-heavy
	// pipeline with far fewer distinct values than pairs should answer
	// most text distances from cache.
	kern := res.Tables[1]
	hits := cell(t, &kern, "text_cache_hits", "Value")
	misses := cell(t, &kern, "text_cache_misses", "Value")
	if hits <= 0 {
		t.Error("text cache recorded no hits")
	}
	if hits < misses {
		t.Errorf("text cache hits %v < misses %v: cache not engaging", hits, misses)
	}
	if cell(t, &kern, "dist_evals", "Value") <= 0 {
		t.Error("no distance evaluations counted")
	}
}
