package exp

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
)

func init() {
	register(Experiment{
		ID: "mixed",
		Title: "Mixed numeric+text pipeline over the compiled distance kernels " +
			"(docs/PERFORMANCE.md)",
		Run: runMixed,
	})
}

// runMixed exercises the full DISC pipeline on the mixed numeric+text
// business-directory dataset — the workload the compiled kernel layer is
// built for: interned text columns, the per-pair Levenshtein cache and the
// ε early exit all engage at once. Alongside the usual save outcome it
// reports the kernel counters, so the cache hit rate and early-exit share
// are visible per phase. This is also the fixture `make profile` runs.
func runMixed(cfg Config) (*Result, error) {
	frac := cfg.scale(1)
	n := int(800 * frac)
	if n < 40 {
		n = 40
	}
	sp := data.MixedSpec{
		Name:      "MixedExp",
		N:         n,
		Entities:  n * 4 / 5,
		DirtyFrac: 0.05,
		Eps:       2.0,
		Eta:       3,
		Seed:      cfg.Seed,
	}
	ds, err := data.GenMixed(sp)
	if err != nil {
		return nil, fmt.Errorf("mixed: %w", err)
	}
	cons := core.Constraints{Eps: ds.Eps, Eta: ds.Eta}
	cfg.progressf("mixed: business directory (n=%d, 3 text + 4 numeric attrs)\n", ds.N())

	start := time.Now()
	res, err := core.SaveAllContext(cfg.context(), ds.Rel, cons,
		cfg.discOptions("mixed", core.Options{Kappa: 2}))
	if err != nil {
		return nil, fmt.Errorf("mixed: %w", err)
	}
	cfg.recordStats(res)
	elapsed := time.Since(start)

	pipeline := Table{
		Title:  fmt.Sprintf("Mixed pipeline: DISC over the business directory (n=%d)", ds.N()),
		Header: []string{"Stage", "Value"},
		Rows: [][]string{
			{"outliers detected", fmt.Sprint(len(res.Detection.Outliers))},
			{"saved", fmt.Sprint(res.Saved)},
			{"natural", fmt.Sprint(res.Natural)},
			{"detect time (s)", fmtS(res.Timings.Detect.Seconds())},
			{"save time (s)", fmtS(res.Timings.Save.Seconds())},
			{"total time (s)", fmtS(elapsed.Seconds())},
		},
	}

	// Kernel counters: how much of the distance work the compiled layer
	// answered without paying for it (see docs/PERFORMANCE.md).
	st := res.Stats
	textEvals := st.TextCacheHits + st.TextCacheMisses
	hitRate := 0.0
	if textEvals > 0 {
		hitRate = float64(st.TextCacheHits) / float64(textEvals)
	}
	kern := Table{
		Title:  "Mixed pipeline: compiled-kernel counters",
		Header: []string{"Counter", "Value"},
		Rows: [][]string{
			{"dist_evals", fmt.Sprint(st.DistEvals)},
			{"dist_early_exits", fmt.Sprint(st.DistEarlyExits)},
			{"text_cache_hits", fmt.Sprint(st.TextCacheHits)},
			{"text_cache_misses", fmt.Sprint(st.TextCacheMisses)},
			{"text cache hit rate", fmtF(hitRate)},
		},
	}

	// Clustering before and after the repair: saving outliers should not
	// shatter the directory's entity clusters.
	raw := cluster.DBSCAN(ds.Rel, cluster.DBSCANConfig{Eps: ds.Eps, MinPts: ds.Eta})
	rep := cluster.DBSCAN(res.Repaired, cluster.DBSCANConfig{Eps: ds.Eps, MinPts: ds.Eta})
	clTable := Table{
		Title:  "Mixed pipeline: DBSCAN before/after repair",
		Header: []string{"Data", "Clusters", "Noise"},
		Rows: [][]string{
			{"raw", fmt.Sprint(raw.K), fmt.Sprint(countNoise(raw.Labels))},
			{"repaired", fmt.Sprint(rep.K), fmt.Sprint(countNoise(rep.Labels))},
		},
	}

	return &Result{Tables: []Table{pipeline, kern, clTable}}, nil
}

// countNoise counts the -1 labels of a clustering.
func countNoise(labels []int) int {
	n := 0
	for _, l := range labels {
		if l < 0 {
			n++
		}
	}
	return n
}
