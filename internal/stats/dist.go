// Package stats provides the probability distributions, histograms and
// sampling utilities behind the DISC distance-constraint model: the Poisson
// process of ε-neighbor appearance (paper §2.1.2, Formulas 2–3), the Normal
// model of the DB baseline (Table 4), and the sampled parameter
// determination of §4.2.2 (Figure 5).
package stats

import (
	"fmt"
	"math"
)

// Poisson is a Poisson distribution with rate Lambda (= λε in the paper).
type Poisson struct {
	Lambda float64
}

// PMF returns p(N = k) = λ^k e^{-λ} / k! (Formula 2). Computed in log space
// for numerical stability at large λ.
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.Lambda <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	logp := float64(k)*math.Log(p.Lambda) - p.Lambda - lgamma(float64(k)+1)
	return math.Exp(logp)
}

// CDF returns p(N ≤ k).
func (p Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	s := 0.0
	for i := 0; i <= k; i++ {
		s += p.PMF(i)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// TailGE returns p(N ≥ k) = 1 − CDF(k−1), the probability of Formula 3 that
// a tuple sees at least k ε-neighbors.
func (p Poisson) TailGE(k int) float64 {
	if k <= 0 {
		return 1
	}
	return 1 - p.CDF(k-1)
}

// MaxEtaWithConfidence returns the largest η ≥ 1 such that
// p(N ≥ η) ≥ conf, i.e. the neighbor threshold that still leaves cluster
// membership highly probable (the paper selects conf = 0.99). Returns 1 if
// even η = 1 fails the confidence bar.
func (p Poisson) MaxEtaWithConfidence(conf float64) int {
	if conf <= 0 {
		conf = 0.99
	}
	eta := 1
	// p(N ≥ η) is non-increasing in η, so walk upward until it drops.
	for k := 1; float64(k) <= p.Lambda+12*math.Sqrt(p.Lambda+1)+4; k++ {
		if p.TailGE(k) >= conf {
			eta = k
		} else {
			break
		}
	}
	return eta
}

// Mean returns λ.
func (p Poisson) Mean() float64 { return p.Lambda }

// Variance returns λ.
func (p Poisson) Variance() float64 { return p.Lambda }

// Normal is a Gaussian distribution with mean Mu and standard deviation
// Sigma, used by the DB parameter-determination baseline (Table 4).
type Normal struct {
	Mu, Sigma float64
}

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X ≤ x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the x with CDF(x) = q, via bisection on the CDF.
func (n Normal) Quantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	if n.Sigma <= 0 {
		return n.Mu
	}
	lo, hi := n.Mu-12*n.Sigma, n.Mu+12*n.Sigma
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if n.CDF(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// lgamma returns log Γ(x) for x > 0.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// FitPoisson estimates λ as the sample mean of the observed counts
// (the MLE). It returns an error when no observations are given.
func FitPoisson(counts []int) (Poisson, error) {
	if len(counts) == 0 {
		return Poisson{}, fmt.Errorf("stats: FitPoisson needs at least one observation")
	}
	s := 0.0
	for _, c := range counts {
		s += float64(c)
	}
	return Poisson{Lambda: s / float64(len(counts))}, nil
}

// FitNormal estimates μ and σ from the sample (population σ; σ = 0 for
// fewer than two observations).
func FitNormal(xs []float64) (Normal, error) {
	if len(xs) == 0 {
		return Normal{}, fmt.Errorf("stats: FitNormal needs at least one observation")
	}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return Normal{Mu: m.Mean(), Sigma: m.StdDev()}, nil
}
