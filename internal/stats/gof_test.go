package stats

import (
	"math"
	"math/rand"
	"testing"
)

// poissonSample draws n Poisson(λ) variates (inversion by sequential
// search; λ here is small enough).
func poissonSample(n int, lam float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		l := math.Exp(-lam)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				break
			}
			k++
		}
		out[i] = k
	}
	return out
}

func TestKSPoissonFitsTrueSamples(t *testing.T) {
	counts := poissonSample(4000, 12, 1)
	fit, err := FitPoisson(counts)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KSPoisson(counts, fit)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.05 {
		t.Errorf("KS = %v for genuine Poisson samples", ks)
	}
}

func TestKSPoissonRejectsWrongModel(t *testing.T) {
	counts := poissonSample(4000, 12, 2)
	ks, err := KSPoisson(counts, Poisson{Lambda: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ks < 0.5 {
		t.Errorf("KS = %v for a badly wrong model, want large", ks)
	}
	// A bimodal mixture (inliers + isolated outliers, the Figure 5
	// reality) fits worse than the pure model.
	mixed := append(poissonSample(3600, 12, 3), make([]int, 400)...) // 10% zeros
	fit, _ := FitPoisson(mixed)
	ksMixed, _ := KSPoisson(mixed, fit)
	pure := poissonSample(4000, 12, 4)
	fitP, _ := FitPoisson(pure)
	ksPure, _ := KSPoisson(pure, fitP)
	if ksMixed <= ksPure {
		t.Errorf("mixture KS %v not above pure KS %v", ksMixed, ksPure)
	}
}

func TestKSPoissonErrors(t *testing.T) {
	if _, err := KSPoisson(nil, Poisson{Lambda: 1}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestChiSquarePoisson(t *testing.T) {
	counts := poissonSample(4000, 8, 5)
	fit, _ := FitPoisson(counts)
	chi2, dof, err := ChiSquarePoisson(counts, fit)
	if err != nil {
		t.Fatal(err)
	}
	if dof < 3 {
		t.Fatalf("dof = %d", dof)
	}
	// For a correct model, χ² ≈ dof; allow generous slack.
	if chi2 > float64(dof)*3 {
		t.Errorf("χ² = %v with %d dof for genuine samples", chi2, dof)
	}
	// A wrong model inflates the statistic.
	chiBad, dofBad, err := ChiSquarePoisson(counts, Poisson{Lambda: 20})
	if err != nil {
		t.Fatal(err)
	}
	if chiBad < float64(dofBad)*10 {
		t.Errorf("χ² = %v (dof %d) for a wrong model, want large", chiBad, dofBad)
	}
}

func TestChiSquarePoissonErrors(t *testing.T) {
	if _, _, err := ChiSquarePoisson(nil, Poisson{Lambda: 1}); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ChiSquarePoisson([]int{3, 3}, Poisson{Lambda: 3}); err == nil {
		t.Error("too-few-bins input accepted")
	}
}
