package stats

import "math"

// ZForConfidence returns the two-sided normal critical value z for the given
// confidence level: P(|Z| ≤ z) = conf for a standard normal Z. Confidences
// outside (0, 1) clamp to a conservative 0.999.
func ZForConfidence(conf float64) float64 {
	if conf <= 0 || conf >= 1 {
		conf = 0.999
	}
	return Normal{Mu: 0, Sigma: 1}.Quantile(1 - (1-conf)/2)
}

// WilsonInterval returns the Wilson score interval for a binomial proportion
// after observing x successes in n trials at critical value z. Unlike the
// Wald interval it stays inside [0, 1] and behaves at x = 0 and x = n, and
// it is conservative for without-replacement (hypergeometric) sampling,
// which is how the approximate detector uses it. n ≤ 0 returns the vacuous
// interval [0, 1].
func WilsonInterval(x, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(x) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / denom
	hi = (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
