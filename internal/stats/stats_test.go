package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lam := range []float64{0.5, 1, 5, 51.36} {
		p := Poisson{Lambda: lam}
		s := 0.0
		for k := 0; k < int(lam)+200; k++ {
			s += p.PMF(k)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("λ=%v: pmf sums to %v", lam, s)
		}
	}
}

func TestPoissonPMFKnownValues(t *testing.T) {
	p := Poisson{Lambda: 2}
	// p(0) = e^-2, p(1) = 2e^-2, p(2) = 2e^-2.
	if got, want := p.PMF(0), math.Exp(-2); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(0) = %v, want %v", got, want)
	}
	if got, want := p.PMF(1), 2*math.Exp(-2); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(1) = %v, want %v", got, want)
	}
	if p.PMF(-1) != 0 {
		t.Error("PMF of negative k must be 0")
	}
	zero := Poisson{Lambda: 0}
	if zero.PMF(0) != 1 || zero.PMF(1) != 0 {
		t.Error("λ=0 should be a point mass at 0")
	}
}

func TestPoissonTailGE(t *testing.T) {
	p := Poisson{Lambda: 51.36}
	// Paper §2.1.2: with λε = 51.36 (Letter, ε=3), p(N ≥ 18) ≈ 0.99.
	got := p.TailGE(18)
	if got < 0.99 || got > 1 {
		t.Errorf("p(N≥18 | λ=51.36) = %v, want ≥ 0.99", got)
	}
	if p.TailGE(0) != 1 {
		t.Error("p(N≥0) must be 1")
	}
	// Monotone non-increasing in k.
	prev := 1.0
	for k := 1; k < 100; k++ {
		cur := p.TailGE(k)
		if cur > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestMaxEtaWithConfidence(t *testing.T) {
	p := Poisson{Lambda: 51.36}
	eta := p.MaxEtaWithConfidence(0.99)
	// The paper picks η = 18 for λε = 51.36 "with p(N≥η) = 0.99"; the
	// maximal such η is actually larger (the tail at 18 is ≈ 1). We assert
	// the defining invariants: the selected η meets the confidence bar and
	// is maximal, and the paper's η = 18 indeed satisfies the bar.
	if eta <= 18 {
		t.Errorf("η = %d, want > 18 (tail at 18 is ≈ 1 for λ=51.36)", eta)
	}
	if p.TailGE(eta) < 0.99 {
		t.Errorf("selected η=%d has confidence %v < 0.99", eta, p.TailGE(eta))
	}
	if p.TailGE(eta+1) >= 0.99 {
		t.Errorf("η=%d is not maximal", eta)
	}
	// Degenerate inputs.
	if got := (Poisson{Lambda: 0.001}).MaxEtaWithConfidence(0.99); got != 1 {
		t.Errorf("tiny λ should give η=1, got %d", got)
	}
	if got := p.MaxEtaWithConfidence(0); got != p.MaxEtaWithConfidence(0.99) {
		t.Errorf("conf ≤ 0 should default to 0.99, got %d", got)
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := n.Quantile(q)
		if math.Abs(n.CDF(x)-q) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, n.CDF(x))
		}
	}
	if n.Quantile(0.5) != 3 && math.Abs(n.Quantile(0.5)-3) > 1e-9 {
		t.Errorf("median should be μ, got %v", n.Quantile(0.5))
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("extreme quantiles should be ±Inf")
	}
}

func TestNormalDegenerate(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 0}
	if n.CDF(4.9) != 0 || n.CDF(5) != 1 {
		t.Error("σ=0 CDF should be a step at μ")
	}
	if n.Quantile(0.3) != 5 {
		t.Error("σ=0 quantile should be μ")
	}
	if n.PDF(4) != 0 {
		t.Error("σ=0 PDF off the mean should be 0")
	}
}

func TestFitPoisson(t *testing.T) {
	p, err := FitPoisson([]int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda != 4 {
		t.Errorf("λ = %v, want 4", p.Lambda)
	}
	if _, err := FitPoisson(nil); err == nil {
		t.Error("empty input should error")
	}
}

func TestFitNormal(t *testing.T) {
	n, err := FitNormal([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if n.Mu != 3 {
		t.Errorf("μ = %v, want 3", n.Mu)
	}
	if math.Abs(n.Sigma-math.Sqrt(2)) > 1e-12 {
		t.Errorf("σ = %v, want √2", n.Sigma)
	}
	if _, err := FitNormal(nil); err == nil {
		t.Error("empty input should error")
	}
}

func TestMomentsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var m Moments
	sum := 0.0
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		m.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	if math.Abs(m.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs %v", m.Mean(), mean)
	}
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	if math.Abs(m.Variance()-varSum/float64(len(xs))) > 1e-6 {
		t.Errorf("variance %v vs %v", m.Variance(), varSum/float64(len(xs)))
	}
	if m.Count() != 1000 {
		t.Errorf("count %d", m.Count())
	}
	var empty Moments
	if empty.Variance() != 0 || empty.Mean() != 0 {
		t.Error("empty moments should be zero")
	}
}

func TestSampleIndices(t *testing.T) {
	idx := SampleIndices(100, 0.1, 42)
	if len(idx) != 10 {
		t.Fatalf("want 10 samples, got %d", len(idx))
	}
	if !sort.IntsAreSorted(idx) {
		t.Error("samples should be sorted")
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// Determinism.
	idx2 := SampleIndices(100, 0.1, 42)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatal("sampling not deterministic for equal seeds")
		}
	}
	// Full rate returns identity.
	all := SampleIndices(5, 1, 0)
	if len(all) != 5 || all[0] != 0 || all[4] != 4 {
		t.Errorf("rate 1 should return identity, got %v", all)
	}
	// Degenerate cases.
	if got := SampleIndices(0, 0.5, 0); got != nil {
		t.Errorf("n=0 should return nil, got %v", got)
	}
	if got := SampleIndices(10, 0, 0); len(got) != 1 {
		t.Errorf("rate 0 should return one index, got %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 3, 4, 5, 9, 10, 22, -1} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	// Bins: [0,5)x4 (0,3,4,-1), [5,10)x2, [10,15)x1, [20,25)x1.
	if h.Counts[0] != 4 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("bin counts = %v", h.Counts)
	}
	if got := h.Frequency(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("freq(0) = %v", got)
	}
	if h.Frequency(99) != 0 || h.Frequency(-1) != 0 {
		t.Error("out-of-range frequency should be 0")
	}
	// Bin width clamping.
	if NewHistogram(0).BinWidth != 1 {
		t.Error("bin width should clamp to 1")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("q1 = %v, want 10", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestPoissonTailProperty(t *testing.T) {
	// For any λ and k, TailGE(k) + CDF(k-1) = 1.
	f := func(lamSeed uint8, kSeed uint8) bool {
		lam := float64(lamSeed%40) + 0.5
		k := int(kSeed % 60)
		p := Poisson{Lambda: lam}
		return math.Abs(p.TailGE(k)+p.CDF(k-1)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
