package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Moments accumulates mean and variance online (Welford's algorithm), so a
// single pass over neighbor counts or distances yields both.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Count returns the number of observations.
func (m *Moments) Count() int { return m.n }

// Mean returns the sample mean (0 with no observations).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the population variance (0 with < 2 observations).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// SampleIndices returns ⌈rate·n⌉ distinct indices in [0, n) drawn without
// replacement with the given seed. A rate ≥ 1 returns all indices in order;
// a rate ≤ 0 returns a single index (parameter determination always needs at
// least one observation). The result is sorted for cache-friendly scans.
func SampleIndices(n int, rate float64, seed int64) []int {
	if n <= 0 {
		return nil
	}
	if rate >= 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	k := int(math.Ceil(rate * float64(n)))
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// Histogram is a fixed-width histogram over integer counts, used to report
// the #ε-neighbors distributions of Figure 5.
type Histogram struct {
	// BinWidth is the width of every bin (≥ 1).
	BinWidth int
	// Counts[i] tallies observations in [i·BinWidth, (i+1)·BinWidth).
	Counts []int
	total  int
}

// NewHistogram returns a histogram with the given bin width (clamped ≥ 1).
func NewHistogram(binWidth int) *Histogram {
	if binWidth < 1 {
		binWidth = 1
	}
	return &Histogram{BinWidth: binWidth}
}

// Add tallies one observation (negative values clamp to bin 0).
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	b := v / h.BinWidth
	for len(h.Counts) <= b {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of observations tallied.
func (h *Histogram) Total() int { return h.total }

// Frequency returns the fraction of observations in bin b.
func (h *Histogram) Frequency(b int) float64 {
	if h.total == 0 || b < 0 || b >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.total)
}

// Quantile returns the smallest value v such that at least fraction q of the
// sorted observations xs are ≤ v. xs must be sorted ascending.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}
