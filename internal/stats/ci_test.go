package stats

import (
	"math"
	"testing"
)

func TestZForConfidence(t *testing.T) {
	cases := []struct {
		conf float64
		want float64
	}{
		{0.95, 1.9600},
		{0.99, 2.5758},
		{0.999, 3.2905},
	}
	for _, c := range cases {
		if got := ZForConfidence(c.conf); math.Abs(got-c.want) > 5e-3 {
			t.Errorf("ZForConfidence(%g) = %.4f, want ≈ %.4f", c.conf, got, c.want)
		}
	}
	// Out-of-range confidences clamp to the 0.999 default rather than
	// producing an unusable quantile.
	def := ZForConfidence(0.999)
	for _, bad := range []float64{0, 1, -0.5, 2} {
		if got := ZForConfidence(bad); got != def {
			t.Errorf("ZForConfidence(%g) = %v, want the 0.999 default %v", bad, got, def)
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	// Known value: x=5, n=10 at 95% is the textbook (0.2366, 0.7634).
	lo, hi := WilsonInterval(5, 10, 1.96)
	if math.Abs(lo-0.2366) > 1e-3 || math.Abs(hi-0.7634) > 1e-3 {
		t.Errorf("WilsonInterval(5, 10, 1.96) = (%.4f, %.4f), want ≈ (0.2366, 0.7634)", lo, hi)
	}

	z := ZForConfidence(0.999)
	for _, n := range []int{1, 7, 100, 5000} {
		prevLo, prevHi := -1.0, -1.0
		for x := 0; x <= n; x += 1 + n/20 {
			lo, hi := WilsonInterval(x, n, z)
			p := float64(x) / float64(n)
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("WilsonInterval(%d, %d) = (%v, %v): not a [0,1] interval", x, n, lo, hi)
			}
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Fatalf("WilsonInterval(%d, %d) = (%v, %v) excludes the point estimate %v", x, n, lo, hi, p)
			}
			// Both endpoints are monotone in x: a larger hit count never
			// weakens either certificate direction.
			if lo < prevLo || hi < prevHi {
				t.Fatalf("WilsonInterval(%d, %d) endpoints not monotone in x", x, n)
			}
			prevLo, prevHi = lo, hi
		}
	}

	// Degenerate sample sizes return the vacuous interval.
	if lo, hi := WilsonInterval(0, 0, z); lo != 0 || hi != 1 {
		t.Errorf("WilsonInterval(0, 0) = (%v, %v), want (0, 1)", lo, hi)
	}
	if lo, _ := WilsonInterval(0, 50, z); lo > 1e-12 {
		t.Errorf("WilsonInterval(0, 50) lower bound %v, want ≈ 0", lo)
	}
	if _, hi := WilsonInterval(50, 50, z); hi < 1-1e-12 {
		t.Errorf("WilsonInterval(50, 50) upper bound %v, want ≈ 1", hi)
	}
}
