package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSPoisson returns the Kolmogorov–Smirnov statistic between the empirical
// distribution of the observed counts and the fitted Poisson — the
// goodness-of-fit behind the paper's claim that ε-neighbor counts follow a
// Poisson distribution (Figure 5, [39]). Smaller is better; clustered
// noisy data typically lands around 0.05–0.3 because the outlier tail
// deviates from the model.
func KSPoisson(counts []int, p Poisson) (float64, error) {
	if len(counts) == 0 {
		return 0, fmt.Errorf("stats: KSPoisson needs at least one observation")
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	n := float64(len(sorted))
	ks := 0.0
	for i := 0; i < len(sorted); i++ {
		// Step the empirical CDF only at distinct values.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		emp := float64(i+1) / n
		model := p.CDF(sorted[i])
		if d := math.Abs(emp - model); d > ks {
			ks = d
		}
	}
	return ks, nil
}

// ChiSquarePoisson returns the χ² statistic of the observed counts against
// the fitted Poisson, pooling the tail so every expected bin holds ≥ 5
// observations (the classic validity rule), plus the degrees of freedom
// (bins − 2: one for the total, one for the fitted λ).
func ChiSquarePoisson(counts []int, p Poisson) (chi2 float64, dof int, err error) {
	if len(counts) == 0 {
		return 0, 0, fmt.Errorf("stats: ChiSquarePoisson needs at least one observation")
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	obs := make([]float64, maxC+1)
	for _, c := range counts {
		if c >= 0 {
			obs[c]++
		}
	}
	n := float64(len(counts))
	type bin struct{ o, e float64 }
	var bins []bin
	var curO, curE float64
	for k := 0; k <= maxC; k++ {
		curO += obs[k]
		curE += n * p.PMF(k)
		if curE >= 5 {
			bins = append(bins, bin{o: curO, e: curE})
			curO, curE = 0, 0
		}
	}
	// Tail mass beyond maxC joins the last open bin.
	curE += n * p.TailGE(maxC+1)
	if curO > 0 || curE > 0 {
		if len(bins) > 0 && curE < 5 {
			bins[len(bins)-1].o += curO
			bins[len(bins)-1].e += curE
		} else {
			bins = append(bins, bin{o: curO, e: curE})
		}
	}
	if len(bins) < 3 {
		return 0, 0, fmt.Errorf("stats: too few populated bins (%d) for a χ² test", len(bins))
	}
	for _, b := range bins {
		if b.e > 0 {
			d := b.o - b.e
			chi2 += d * d / b.e
		}
	}
	return chi2, len(bins) - 2, nil
}
