package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/eval"
)

// blobs builds k well-separated Gaussian clusters of sz points each.
func blobs(t *testing.T, k, sz int, seed int64) (*data.Relation, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rel := data.NewRelation(data.NewNumericSchema("x", "y"))
	truth := make([]int, 0, k*sz)
	for c := 0; c < k; c++ {
		cx, cy := float64(c)*20, float64(c%2)*20
		for i := 0; i < sz; i++ {
			rel.Append(data.Tuple{
				data.Num(cx + rng.NormFloat64()),
				data.Num(cy + rng.NormFloat64()),
			})
			truth = append(truth, c)
		}
	}
	return rel, truth
}

func TestDBSCANRecoversBlobs(t *testing.T) {
	rel, truth := blobs(t, 3, 80, 1)
	res := DBSCAN(rel, DBSCANConfig{Eps: 2, MinPts: 4})
	if res.K != 3 {
		t.Fatalf("DBSCAN found %d clusters, want 3", res.K)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.95 {
		t.Errorf("DBSCAN F1 = %v on separable blobs", f1)
	}
}

func TestDBSCANMarksIsolatedNoise(t *testing.T) {
	rel, _ := blobs(t, 2, 50, 2)
	rel.Append(data.Tuple{data.Num(500), data.Num(500)})
	res := DBSCAN(rel, DBSCANConfig{Eps: 2, MinPts: 4})
	if res.Labels[rel.N()-1] != -1 {
		t.Error("isolated point not marked noise")
	}
}

func TestDBSCANSingleDenseCluster(t *testing.T) {
	rel, _ := blobs(t, 1, 60, 3)
	res := DBSCAN(rel, DBSCANConfig{Eps: 3, MinPts: 3})
	if res.K != 1 {
		t.Errorf("one blob produced %d clusters", res.K)
	}
}

func TestDBSCANBorderPointsJoinClusters(t *testing.T) {
	// A chain: dense core with a border point attached.
	rel := data.NewRelation(data.NewNumericSchema("x"))
	for i := 0; i < 10; i++ {
		rel.Append(data.Tuple{data.Num(float64(i) * 0.1)})
	}
	rel.Append(data.Tuple{data.Num(1.5)}) // within eps of the last core point
	res := DBSCAN(rel, DBSCANConfig{Eps: 0.7, MinPts: 3})
	if res.Labels[rel.N()-1] == -1 {
		t.Error("border point left as noise")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rel, truth := blobs(t, 3, 80, 4)
	res, err := KMeans(rel, KMeansConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.95 {
		t.Errorf("KMeans F1 = %v", f1)
	}
	if res.K != 3 {
		t.Errorf("KMeans produced %d clusters", res.K)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rel, _ := blobs(t, 3, 50, 5)
	a, _ := KMeans(rel, KMeansConfig{K: 3, Seed: 9})
	b, _ := KMeans(rel, KMeansConfig{K: 3, Seed: 9})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("KMeans not deterministic for equal seeds")
		}
	}
}

func TestKMeansMMDiscardsOutliers(t *testing.T) {
	rel, truth := blobs(t, 2, 60, 6)
	// Add 6 far outliers.
	for i := 0; i < 6; i++ {
		rel.Append(data.Tuple{data.Num(1000 + float64(i)*50), data.Num(-900)})
		truth = append(truth, -1)
	}
	res, err := KMeansMM(rel, KMeansConfig{K: 2, L: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The injected outliers should be among the discarded (-1) points.
	discarded := 0
	for i := rel.N() - 6; i < rel.N(); i++ {
		if res.Labels[i] == -1 {
			discarded++
		}
	}
	if discarded < 5 {
		t.Errorf("only %d/6 injected outliers discarded", discarded)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.9 {
		t.Errorf("KMeans-- F1 = %v", f1)
	}
}

func TestCCKMAssignsOutlierCluster(t *testing.T) {
	rel, truth := blobs(t, 2, 60, 7)
	for i := 0; i < 5; i++ {
		rel.Append(data.Tuple{data.Num(800), data.Num(800 + float64(i)*100)})
		truth = append(truth, -1)
	}
	res, err := CCKM(rel, KMeansConfig{K: 2, L: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.85 {
		t.Errorf("CCKM F1 = %v", f1)
	}
	out := 0
	for _, l := range res.Labels {
		if l == -1 {
			out++
		}
	}
	if out != 5 {
		t.Errorf("CCKM outlier cluster size %d, want 5", out)
	}
}

func TestSREMRecoversBlobs(t *testing.T) {
	rel, truth := blobs(t, 3, 80, 8)
	res, err := SREM(rel, SREMConfig{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.9 {
		t.Errorf("SREM F1 = %v", f1)
	}
}

func TestKMCRecoversBlobs(t *testing.T) {
	rel, truth := blobs(t, 3, 100, 9)
	res, err := KMC(rel, KMCConfig{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.9 {
		t.Errorf("KMC F1 = %v", f1)
	}
}

func TestKMeansFamilyRejectsTextSchemas(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{{Name: "w", Kind: data.Text}}}
	rel := data.NewRelation(s)
	rel.Append(data.Tuple{data.Str("x")})
	if _, err := KMeans(rel, KMeansConfig{K: 1}); err == nil {
		t.Error("KMeans accepted text schema")
	}
	if _, err := KMeansMM(rel, KMeansConfig{K: 1}); err == nil {
		t.Error("KMeansMM accepted text schema")
	}
	if _, err := CCKM(rel, KMeansConfig{K: 1}); err == nil {
		t.Error("CCKM accepted text schema")
	}
	if _, err := SREM(rel, SREMConfig{K: 1}); err == nil {
		t.Error("SREM accepted text schema")
	}
	if _, err := KMC(rel, KMCConfig{K: 1}); err == nil {
		t.Error("KMC accepted text schema")
	}
}

func TestKGreaterThanNClamps(t *testing.T) {
	rel, _ := blobs(t, 1, 5, 10)
	res, err := KMeans(rel, KMeansConfig{K: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 5 {
		t.Errorf("labels length %d", len(res.Labels))
	}
}

func TestMatrixAppliesScale(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{{Name: "t", Kind: data.Numeric, Scale: 10}}}
	rel := data.NewRelation(s)
	rel.Append(data.Tuple{data.Num(100)})
	m, err := Matrix(rel)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 10 {
		t.Errorf("scaled value = %v, want 10", m[0][0])
	}
}

func TestDBSCANOverTextMetric(t *testing.T) {
	// DBSCAN must work on edit-distance schemas (Restaurant dataset).
	s := &data.Schema{Attrs: []data.Attribute{{Name: "w", Kind: data.Text}}}
	rel := data.NewRelation(s)
	group1 := []string{"apple", "apples", "appl", "aple"}
	group2 := []string{"orange", "oranges", "orang", "orenge"}
	for _, w := range append(group1, group2...) {
		rel.Append(data.Tuple{data.Str(w)})
	}
	res := DBSCAN(rel, DBSCANConfig{Eps: 2, MinPts: 2})
	if res.K != 2 {
		t.Fatalf("text DBSCAN found %d clusters, want 2", res.K)
	}
	if res.Labels[0] == res.Labels[4] {
		t.Error("apple and orange groups merged")
	}
}

// tupleXY builds a 2D tuple (test helper shared with the OPTICS tests).
func tupleXY(x, y float64) data.Tuple {
	return data.Tuple{data.Num(x), data.Num(y)}
}

// blobs2 returns sz tuples of one Gaussian blob at (cx, cy).
func blobs2(sz int, seed int64, cx, cy float64) []data.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]data.Tuple, 0, sz)
	for i := 0; i < sz; i++ {
		out = append(out, tupleXY(cx+rng.NormFloat64(), cy+rng.NormFloat64()))
	}
	return out
}
