package cluster

import (
	"math"
	"math/rand"

	"repro/internal/data"
)

// KMCConfig parameterizes coreset K-Means (Chen [14], simplified): build a
// small weighted coreset by D²-importance sampling against a rough
// k-means++ solution, run weighted Lloyd on the coreset, then assign every
// point to its nearest coreset center.
type KMCConfig struct {
	K int
	// CoresetSize is the number of sampled points (default 10·K·log n,
	// capped at n).
	CoresetSize int
	MaxIter     int
	Seed        int64
}

// KMC clusters the relation through a coreset.
func KMC(rel *data.Relation, cfg KMCConfig) (Result, error) {
	points, err := Matrix(rel)
	if err != nil {
		return Result{}, err
	}
	n := len(points)
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.K > n {
		cfg.K = n
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.CoresetSize <= 0 {
		cfg.CoresetSize = 10 * cfg.K * intLog2(n)
	}
	if cfg.CoresetSize > n {
		cfg.CoresetSize = n
	}
	if cfg.CoresetSize < cfg.K {
		cfg.CoresetSize = cfg.K
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Rough solution for the sensitivity scores.
	rough := kmeansPP(points, nil, cfg.K, rng)
	d2 := make([]float64, n)
	total := 0.0
	for i := range points {
		_, d := nearestCenter(points[i], rough)
		d2[i] = d + 1e-12
		total += d2[i]
	}

	// Importance sampling with weights ∝ 1/probability so the coreset is
	// an unbiased estimator of the clustering cost.
	sampleIdx := make([]int, cfg.CoresetSize)
	weights := make([]float64, cfg.CoresetSize)
	for s := 0; s < cfg.CoresetSize; s++ {
		target := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i := range d2 {
			acc += d2[i]
			if acc >= target {
				pick = i
				break
			}
		}
		sampleIdx[s] = pick
		prob := d2[pick] / total
		weights[s] = 1 / (prob * float64(cfg.CoresetSize))
	}
	coreset := make([][]float64, cfg.CoresetSize)
	for s, i := range sampleIdx {
		coreset[s] = points[i]
	}

	var centers [][]float64
	bestSSE := math.Inf(1)
	for restart := 0; restart < 5; restart++ {
		cand := kmeansPP(coreset, weights, cfg.K, rng)
		lloyd(coreset, weights, cand, cfg.MaxIter, nil)
		sse := 0.0
		for s, p := range coreset {
			_, d := nearestCenter(p, cand)
			sse += d * weights[s]
		}
		if sse < bestSSE {
			bestSSE = sse
			centers = cand
		}
	}

	labels := make([]int, n)
	for i := range points {
		labels[i], _ = nearestCenter(points[i], centers)
	}
	return Result{Labels: labels, K: countClusters(labels)}, nil
}

func intLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
