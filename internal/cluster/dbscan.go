package cluster

import (
	"context"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// DBSCANConfig parameterizes DBSCAN (Ester et al. [21]).
type DBSCANConfig struct {
	// Eps is the neighborhood radius.
	Eps float64
	// MinPts is the minimum number of ε-neighbors (self excluded, matching
	// the η convention of the distance constraints) for a core point.
	MinPts int
	// Index optionally supplies a prebuilt neighbor index over the
	// relation.
	Index neighbors.Index
}

// DBSCAN clusters the relation: density-reachable points join their core
// point's cluster; everything else is noise (-1). It works over any metric
// schema, including textual attributes.
func DBSCAN(rel *data.Relation, cfg DBSCANConfig) Result {
	res, _ := DBSCANContext(context.Background(), rel, cfg)
	return res
}

// DBSCANContext is DBSCAN with cancellation: the seed-point scan checks ctx
// on every tuple and stops once it is cancelled, returning the clusters
// grown so far (every not-yet-visited tuple labeled noise) together with
// the context's error. A nil error means the clustering is complete.
func DBSCANContext(ctx context.Context, rel *data.Relation, cfg DBSCANConfig) (Result, error) {
	n := rel.N()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	idx := cfg.Index
	if idx == nil {
		idx = neighbors.Build(rel, cfg.Eps)
	}
	done := ctx.Done()
	cluster := 0
	queue := make([]int, 0, 64)
	// One scratch buffer serves every range query: each result set is
	// drained into queue before the next query runs, so the expansion
	// allocates only when the buffer grows past its high-water mark.
	var scratch []neighbors.Neighbor
	for i := 0; i < n; i++ {
		if done != nil {
			select {
			case <-done:
				for j := range labels {
					if labels[j] == -2 {
						labels[j] = -1 // unexplored ⇒ noise in the partial result
					}
				}
				return Result{Labels: labels, K: cluster}, ctx.Err()
			default:
			}
		}
		if labels[i] != -2 {
			continue
		}
		scratch = neighbors.WithinBuf(idx, scratch, rel.Tuples[i], cfg.Eps, i)
		if len(scratch) < cfg.MinPts {
			labels[i] = -1 // noise (may be upgraded to border later)
			continue
		}
		labels[i] = cluster
		queue = queue[:0]
		for _, nb := range scratch {
			queue = append(queue, nb.Idx)
		}
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[j] == -1 {
				labels[j] = cluster // border point
			}
			if labels[j] != -2 {
				continue
			}
			labels[j] = cluster
			scratch = neighbors.WithinBuf(idx, scratch, rel.Tuples[j], cfg.Eps, j)
			if len(scratch) >= cfg.MinPts {
				for _, nb := range scratch {
					if labels[nb.Idx] == -2 || labels[nb.Idx] == -1 {
						queue = append(queue, nb.Idx)
					}
				}
			}
		}
		cluster++
	}
	return Result{Labels: labels, K: cluster}, nil
}
