// Package cluster implements the clustering algorithms of the paper's
// evaluation (§4.1.1): DBSCAN, K-Means (k-means++ seeding), K-Means--
// (k clusters and l outliers, Chawla & Gionis), CCKM (auxiliary outlier
// cluster, Rujeerapaiboon et al.), SREM (stability-region EM over Gaussian
// mixtures, Reddy et al.) and KMC (coreset K-Means, Chen). Outlier saving
// is complementary to all of them: the experiments run each algorithm over
// raw and DISC-adjusted data.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// Result is a clustering: one label per tuple; -1 marks noise/outliers for
// the algorithms that produce them.
type Result struct {
	Labels []int
	// K is the number of (non-noise) clusters in Labels.
	K int
}

// countClusters fills Result.K from the labels.
func countClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}

// Matrix extracts the numeric attribute matrix of a relation, applying the
// per-attribute scales so clustering sees the same geometry the distance
// constraints use. It fails on textual attributes (the K-Means family is
// numeric-only; DBSCAN works over any metric schema directly).
func Matrix(rel *data.Relation) ([][]float64, error) {
	m := rel.Schema.M()
	for _, a := range rel.Schema.Attrs {
		if a.Kind != data.Numeric {
			return nil, fmt.Errorf("cluster: attribute %q is not numeric", a.Name)
		}
	}
	// One flat backing array for all rows: n+1 allocations become 2, and
	// the row-major layout keeps Lloyd's scans cache-friendly.
	flat := make([]float64, rel.N()*m)
	out := make([][]float64, rel.N())
	for i, t := range rel.Tuples {
		row := flat[i*m : (i+1)*m : (i+1)*m]
		for a := 0; a < m; a++ {
			v := t[a].Num
			if s := rel.Schema.Attrs[a].Scale; s > 0 {
				v /= s
			}
			row[a] = v
		}
		out[i] = row
	}
	return out, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kmeansPP seeds k centers with the k-means++ D² weighting over the
// (optionally weighted) points.
func kmeansPP(points [][]float64, weights []float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(points[i], centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for i := range d2 {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			total += d2[i] * w
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i := range d2 {
				w := 1.0
				if weights != nil {
					w = weights[i]
				}
				acc += d2[i] * w
				if acc >= target {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), points[pick]...)
		centers = append(centers, c)
		for i := range d2 {
			if d := sqDist(points[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// nearestCenter returns the index of and squared distance to the closest
// center.
func nearestCenter(p []float64, centers [][]float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c := range centers {
		if d := sqDist(p, centers[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// lloyd runs weighted Lloyd iterations until assignment stability or
// maxIter, reseeding empty clusters at the farthest point. It returns the
// final assignment.
func lloyd(points [][]float64, weights []float64, centers [][]float64, maxIter int, skip []bool) []int {
	n := len(points)
	dim := len(points[0])
	k := len(centers)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range points {
			if skip != nil && skip[i] {
				continue
			}
			c, _ := nearestCenter(points[i], centers)
			if c != assign[i] {
				assign[i] = c
				changed = true
			}
		}
		// Recompute centers.
		sums := make([][]float64, k)
		cw := make([]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i := range points {
			if skip != nil && skip[i] {
				continue
			}
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			c := assign[i]
			for a := 0; a < dim; a++ {
				sums[c][a] += points[i][a] * w
			}
			cw[c] += w
		}
		for c := range centers {
			if cw[c] == 0 {
				// Reseed the empty cluster at the point farthest from its
				// center.
				far, farD := -1, -1.0
				for i := range points {
					if skip != nil && skip[i] {
						continue
					}
					if _, d := nearestCenter(points[i], centers); d > farD {
						far, farD = i, d
					}
				}
				if far >= 0 {
					copy(centers[c], points[far])
				}
				continue
			}
			for a := 0; a < dim; a++ {
				centers[c][a] = sums[c][a] / cw[c]
			}
		}
		if !changed {
			break
		}
	}
	return assign
}
