package cluster

import (
	"context"
	"testing"
)

func TestDBSCANContextBackgroundMatchesDBSCAN(t *testing.T) {
	rel, _ := blobs(t, 3, 60, 41)
	cfg := DBSCANConfig{Eps: 2, MinPts: 4}
	plain := DBSCAN(rel, cfg)
	got, err := DBSCANContext(context.Background(), rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != plain.K {
		t.Fatalf("K = %d, want %d", got.K, plain.K)
	}
	for i := range plain.Labels {
		if got.Labels[i] != plain.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got.Labels[i], plain.Labels[i])
		}
	}
}

func TestDBSCANContextCancelledReturnsPartial(t *testing.T) {
	rel, _ := blobs(t, 3, 60, 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DBSCANContext(ctx, rel, DBSCANConfig{Eps: 2, MinPts: 4})
	if err == nil {
		t.Fatal("cancelled DBSCANContext returned no error")
	}
	if len(res.Labels) != rel.N() {
		t.Fatalf("partial result has %d labels, want %d", len(res.Labels), rel.N())
	}
	for i, l := range res.Labels {
		if l < -1 {
			t.Fatalf("label[%d] = %d: internal sentinel leaked", i, l)
		}
	}
}

func TestKMeansContextBackgroundMatchesKMeans(t *testing.T) {
	rel, _ := blobs(t, 3, 60, 43)
	cfg := KMeansConfig{K: 3, Seed: 7, Restarts: 4}
	plain, err := KMeans(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := KMeansContext(context.Background(), rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Labels {
		if got.Labels[i] != plain.Labels[i] {
			t.Fatalf("parallel restarts broke determinism at label[%d]", i)
		}
	}
}

func TestKMeansContextCancelled(t *testing.T) {
	rel, _ := blobs(t, 3, 60, 44)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := KMeansContext(ctx, rel, KMeansConfig{K: 3, Seed: 7}); err == nil {
		t.Fatal("cancelled KMeansContext returned no error")
	}
}

func TestSREMContextBackgroundMatchesSREM(t *testing.T) {
	rel, _ := blobs(t, 2, 50, 45)
	cfg := SREMConfig{K: 2, Seed: 7, Restarts: 3, MaxIter: 30}
	plain, err := SREM(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SREMContext(context.Background(), rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Labels {
		if got.Labels[i] != plain.Labels[i] {
			t.Fatalf("parallel restarts broke determinism at label[%d]", i)
		}
	}
}

func TestSREMContextCancelled(t *testing.T) {
	rel, _ := blobs(t, 2, 50, 46)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SREMContext(ctx, rel, SREMConfig{K: 2, Seed: 7}); err == nil {
		t.Fatal("cancelled SREMContext returned no error")
	}
}
