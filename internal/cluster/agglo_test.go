package cluster

import (
	"testing"

	"repro/internal/data"
	"repro/internal/eval"
)

func TestSingleLinkRecoversBlobs(t *testing.T) {
	rel, truth := blobs(t, 3, 60, 41)
	res := SingleLink(rel, AggloConfig{CutDist: 3})
	if res.K != 3 {
		t.Fatalf("single-link found %d clusters, want 3", res.K)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.95 {
		t.Errorf("single-link F1 = %v", f1)
	}
}

func TestSingleLinkChainingSensitivity(t *testing.T) {
	// The classic single-link failure: one bridge point merges two blobs
	// — exactly the distortion a dirty outlier causes, and what saving
	// it undoes.
	rel, _ := blobs(t, 1, 40, 42)
	for _, tp := range blobs2(40, 43, 12, 0) {
		rel.Append(tp)
	}
	separated := SingleLink(rel, AggloConfig{CutDist: 4})
	if separated.K != 2 {
		t.Fatalf("blobs not separated: K=%d", separated.K)
	}
	for _, x := range []float64{3, 5, 7, 9} { // a chain of bridge points
		rel.Append(tupleXY(x, 0))
	}
	bridged := SingleLink(rel, AggloConfig{CutDist: 4})
	if bridged.K != 1 {
		t.Errorf("bridge chain should merge the blobs: K=%d", bridged.K)
	}
}

func TestSingleLinkMinClusterSize(t *testing.T) {
	rel, _ := blobs(t, 2, 30, 44)
	rel.Append(tupleXY(500, 500))
	res := SingleLink(rel, AggloConfig{CutDist: 4, MinClusterSize: 3})
	if res.Labels[rel.N()-1] != -1 {
		t.Error("isolated point not noise under MinClusterSize")
	}
	if res.K != 2 {
		t.Errorf("K = %d, want 2", res.K)
	}
}

func TestSingleLinkEmpty(t *testing.T) {
	rel := data.NewRelation(data.NewNumericSchema("x"))
	res := SingleLink(rel, AggloConfig{CutDist: 1})
	if len(res.Labels) != 0 || res.K != 0 {
		t.Error("empty relation mishandled")
	}
}
