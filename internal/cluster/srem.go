package cluster

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/par"
)

// SREMConfig parameterizes the stability-region EM clustering (Reddy et
// al. [40], simplified): EM over a diagonal-covariance Gaussian mixture,
// restarted from several seeds, keeping the solution with the best
// log-likelihood — the restart mechanism stands in for the stability-region
// analysis that reduces sensitivity to the initial points.
type SREMConfig struct {
	K        int
	MaxIter  int
	Restarts int
	Seed     int64
}

// SREM clusters the relation by maximum-responsibility assignment of the
// best mixture found.
func SREM(rel *data.Relation, cfg SREMConfig) (Result, error) {
	return SREMContext(context.Background(), rel, cfg)
}

// SREMContext is SREM with cancellation and restart parallelism: the EM
// restarts fan out over the worker pool (per-restart seeding keeps the
// winner identical to the sequential run) and no new restart begins after
// ctx is cancelled. Completed restarts still yield a best-so-far result
// alongside the context's error; an error with a zero Result means none
// finished.
func SREMContext(ctx context.Context, rel *data.Relation, cfg SREMConfig) (Result, error) {
	points, err := Matrix(rel)
	if err != nil {
		return Result{}, err
	}
	n := len(points)
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.K > n {
		cfg.K = n
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}
	type run struct {
		labels []int
		ll     float64
	}
	runs := make([]*run, cfg.Restarts)
	errs := par.ForEach(ctx, cfg.Restarts, 0, func(restart int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(restart)*7919))
		labels, ll := emRun(points, cfg.K, cfg.MaxIter, rng)
		runs[restart] = &run{labels: labels, ll: ll}
		return nil
	})
	bestLL := math.Inf(-1)
	var bestLabels []int
	for _, r := range runs { // ascending restart order keeps ties deterministic
		if r != nil && r.ll > bestLL {
			bestLL = r.ll
			bestLabels = r.labels
		}
	}
	if bestLabels == nil {
		return Result{}, par.FirstErr(errs)
	}
	return Result{Labels: bestLabels, K: countClusters(bestLabels)}, ctx.Err()
}

// emRun fits one diagonal GMM by EM and returns MAP labels and the final
// log-likelihood.
func emRun(points [][]float64, k, maxIter int, rng *rand.Rand) ([]int, float64) {
	n := len(points)
	dim := len(points[0])

	mu := kmeansPP(points, nil, k, rng)
	sigma2 := make([][]float64, k)
	pi := make([]float64, k)
	// Initialize variances from the global spread.
	globalVar := make([]float64, dim)
	mean := make([]float64, dim)
	for _, p := range points {
		for a := 0; a < dim; a++ {
			mean[a] += p[a]
		}
	}
	for a := 0; a < dim; a++ {
		mean[a] /= float64(n)
	}
	for _, p := range points {
		for a := 0; a < dim; a++ {
			d := p[a] - mean[a]
			globalVar[a] += d * d
		}
	}
	for a := 0; a < dim; a++ {
		globalVar[a] = globalVar[a]/float64(n) + 1e-6
	}
	for c := 0; c < k; c++ {
		sigma2[c] = append([]float64(nil), globalVar...)
		pi[c] = 1 / float64(k)
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	ll := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		// E step in log space.
		newLL := 0.0
		for i, p := range points {
			maxLog := math.Inf(-1)
			logs := resp[i]
			for c := 0; c < k; c++ {
				lp := math.Log(pi[c] + 1e-300)
				for a := 0; a < dim; a++ {
					d := p[a] - mu[c][a]
					lp += -0.5*math.Log(2*math.Pi*sigma2[c][a]) - d*d/(2*sigma2[c][a])
				}
				logs[c] = lp
				if lp > maxLog {
					maxLog = lp
				}
			}
			sum := 0.0
			for c := 0; c < k; c++ {
				logs[c] = math.Exp(logs[c] - maxLog)
				sum += logs[c]
			}
			for c := 0; c < k; c++ {
				logs[c] /= sum
			}
			newLL += maxLog + math.Log(sum)
		}
		// M step.
		for c := 0; c < k; c++ {
			nc := 0.0
			for i := range points {
				nc += resp[i][c]
			}
			if nc < 1e-9 {
				// Reseed the dead component at a random point.
				copy(mu[c], points[rng.Intn(n)])
				copy(sigma2[c], globalVar)
				pi[c] = 1e-6
				continue
			}
			pi[c] = nc / float64(n)
			for a := 0; a < dim; a++ {
				s := 0.0
				for i := range points {
					s += resp[i][c] * points[i][a]
				}
				mu[c][a] = s / nc
			}
			for a := 0; a < dim; a++ {
				s := 0.0
				for i := range points {
					d := points[i][a] - mu[c][a]
					s += resp[i][c] * d * d
				}
				sigma2[c][a] = s/nc + 1e-6
			}
		}
		if newLL-ll < 1e-6 && iter > 0 {
			ll = newLL
			break
		}
		ll = newLL
	}
	labels := make([]int, n)
	for i := range points {
		best, bestR := 0, -1.0
		for c := 0; c < k; c++ {
			if resp[i][c] > bestR {
				best, bestR = c, resp[i][c]
			}
		}
		labels[i] = best
	}
	return labels, ll
}
