package cluster

import (
	"sort"

	"repro/internal/data"
)

// AggloConfig parameterizes single-link agglomerative clustering: merge
// the closest pair of clusters until the merge distance exceeds CutDist
// (equivalently, cut the minimum spanning tree at CutDist). With
// CutDist = ε this is DBSCAN with minPts = 1 — another member of the
// density family §5 surveys — and its sensitivity to single noisy points
// is exactly the failure mode outlier saving removes.
type AggloConfig struct {
	// CutDist is the dendrogram cut: links longer than this never merge.
	CutDist float64
	// MinClusterSize relabels smaller final clusters as noise (-1);
	// 1 keeps everything (default).
	MinClusterSize int
}

// SingleLink clusters the relation by MST cutting (Kruskal over all
// pairs, O(n² log n) distance computations).
func SingleLink(rel *data.Relation, cfg AggloConfig) Result {
	n := rel.N()
	labels := make([]int, n)
	if n == 0 {
		return Result{Labels: labels}
	}
	if cfg.MinClusterSize < 1 {
		cfg.MinClusterSize = 1
	}
	type edge struct {
		i, j int
		d    float64
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rel.Schema.Dist(rel.Tuples[i], rel.Tuples[j])
			if d <= cfg.CutDist {
				edges = append(edges, edge{i: i, j: j, d: d})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].d < edges[b].d })

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ri, rj := find(e.i), find(e.j)
		if ri != rj {
			parent[ri] = rj
		}
	}

	// Canonical labels in first-appearance order.
	next := 0
	canon := map[int]int{}
	sizes := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := canon[r]; !ok {
			canon[r] = next
			next++
		}
		labels[i] = canon[r]
		sizes[labels[i]]++
	}
	if cfg.MinClusterSize > 1 {
		for i, l := range labels {
			if sizes[l] < cfg.MinClusterSize {
				labels[i] = -1
			}
		}
	}
	return Result{Labels: labels, K: countClusters(labels)}
}
