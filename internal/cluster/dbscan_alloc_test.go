package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// TestDBSCANScratchReuse pins the allocation contract of the expansion
// loop: every range query drains into one reused scratch buffer via
// WithinBuf, so a whole clustering pass costs a small constant number of
// allocations (labels, queue, scratch growth) instead of one result slice
// per visited point. Before the scratch buffer, a pass over n=600 cost
// well over 600 allocations; the budget below fails if per-point
// allocation ever sneaks back in.
func TestDBSCANScratchReuse(t *testing.T) {
	rel := data.NewRelation(data.NewNumericSchema("x", "y", "z"))
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 600; i++ {
		c := float64(i % 5)
		rel.Append(data.Tuple{
			data.Num(c*10 + rng.NormFloat64()),
			data.Num(c*10 + rng.NormFloat64()),
			data.Num(rng.NormFloat64()),
		})
	}
	for name, idx := range map[string]neighbors.Index{
		"grid":   neighbors.NewGrid(rel, 2),
		"vptree": neighbors.NewVPTree(rel, 1),
	} {
		cfg := DBSCANConfig{Eps: 2, MinPts: 4, Index: idx}
		res := DBSCAN(rel, cfg) // warm buffers and caches
		if res.K == 0 {
			t.Fatalf("%s: expected clusters in the fixture", name)
		}
		allocs := testing.AllocsPerRun(10, func() {
			DBSCAN(rel, cfg)
		})
		// Per run: labels + queue + scratch/queue growth. 32 leaves
		// headroom without ever re-admitting per-point result slices. The
		// race detector's sync.Pool drops ~25% of released kernel queries,
		// so each run re-allocates a fraction of its n queries; the wider
		// budget still catches the old one-result-slice-per-point regime
		// (several allocations per visited point).
		budget := 32.0
		if raceDetector {
			budget += 2 * float64(rel.N())
		}
		if allocs > budget {
			t.Errorf("%s: DBSCAN allocates %.0f times per run, want ≤ %.0f", name, allocs, budget)
		}
	}
}
