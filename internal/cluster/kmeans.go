package cluster

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/data"
	"repro/internal/par"
)

// KMeansConfig parameterizes the K-Means family.
type KMeansConfig struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations (default 100).
	MaxIter int
	// Seed drives k-means++ seeding.
	Seed int64
	// L is the number of outliers for KMeansMM and CCKM (ignored by
	// KMeans); 0 derives 5% of n.
	L int
	// Restarts is the number of k-means++ re-seedings for KMeans
	// (best SSE wins); 0 means 5.
	Restarts int
}

func (c *KMeansConfig) defaults(n int) {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.K > n {
		c.K = n
	}
	if c.L <= 0 {
		c.L = n / 20
	}
	if c.L >= n {
		c.L = n - 1
	}
}

// KMeans is Lloyd's algorithm with k-means++ seeding (Jin & Han [26]),
// restarted Restarts times with the lowest within-cluster SSE kept
// (scikit-learn's n_init behaviour).
func KMeans(rel *data.Relation, cfg KMeansConfig) (Result, error) {
	return KMeansContext(context.Background(), rel, cfg)
}

// KMeansContext is KMeans with cancellation and restart parallelism: the
// independent k-means++ restarts fan out over the worker pool (each seeds
// its own generator from the restart index, so the chosen clustering is
// identical to the sequential one) and no new restart begins after ctx is
// cancelled. Completed restarts still yield a best-so-far result alongside
// the context's error; an error with a zero Result means none finished.
func KMeansContext(ctx context.Context, rel *data.Relation, cfg KMeansConfig) (Result, error) {
	points, err := Matrix(rel)
	if err != nil {
		return Result{}, err
	}
	cfg.defaults(len(points))
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 5
	}
	type run struct {
		labels []int
		sse    float64
	}
	runs := make([]*run, restarts)
	errs := par.ForEach(ctx, restarts, 0, func(r int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*104729))
		centers := kmeansPP(points, nil, cfg.K, rng)
		labels := lloyd(points, nil, centers, cfg.MaxIter, nil)
		sse := 0.0
		for i := range points {
			sse += sqDist(points[i], centers[labels[i]])
		}
		runs[r] = &run{labels: labels, sse: sse}
		return nil
	})
	var bestLabels []int
	bestSSE := math.Inf(1)
	for _, r := range runs { // ascending restart order keeps ties deterministic
		if r != nil && r.sse < bestSSE {
			bestSSE = r.sse
			bestLabels = r.labels
		}
	}
	if bestLabels == nil {
		return Result{}, par.FirstErr(errs)
	}
	return Result{Labels: bestLabels, K: countClusters(bestLabels)}, ctx.Err()
}

// KMeansMM is K-Means-- (Chawla & Gionis [13]): each Lloyd iteration drops
// the L points farthest from their nearest center before updating the
// centers; the dropped points end up labeled -1.
func KMeansMM(rel *data.Relation, cfg KMeansConfig) (Result, error) {
	points, err := Matrix(rel)
	if err != nil {
		return Result{}, err
	}
	cfg.defaults(len(points))
	n := len(points)
	rng := rand.New(rand.NewSource(cfg.Seed))
	type dcand struct {
		i int
		d float64
	}
	// Pre-trim before seeding: k-means++'s D² weighting loves isolated
	// points, and a center seeded on an outlier has distance 0 to itself
	// and never gets trimmed. Seed only from the points closest to the
	// global centroid (dropping the 2L farthest).
	dim := len(points[0])
	centroid := make([]float64, dim)
	for _, p := range points {
		for a := 0; a < dim; a++ {
			centroid[a] += p[a]
		}
	}
	for a := 0; a < dim; a++ {
		centroid[a] /= float64(n)
	}
	pre := make([]dcand, n)
	for i := range points {
		pre[i] = dcand{i: i, d: sqDist(points[i], centroid)}
	}
	sort.Slice(pre, func(a, b int) bool { return pre[a].d > pre[b].d })
	drop := 2 * cfg.L
	if drop > n-cfg.K {
		drop = n - cfg.K
	}
	kept := make([][]float64, 0, n-drop)
	for _, c := range pre[drop:] {
		kept = append(kept, points[c.i])
	}
	centers := kmeansPP(kept, nil, cfg.K, rng)
	skip := make([]bool, n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Rank all points by distance to their nearest center; the top L
		// sit out this round.
		ds := make([]dcand, n)
		for i := range points {
			_, d := nearestCenter(points[i], centers)
			ds[i] = dcand{i: i, d: d}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
		for i := range skip {
			skip[i] = false
		}
		for _, c := range ds[:cfg.L] {
			skip[c.i] = true
		}
		prev := make([][]float64, len(centers))
		for c := range centers {
			prev[c] = append([]float64(nil), centers[c]...)
		}
		lloydOnce(points, centers, skip)
		if centersEqual(prev, centers) {
			break
		}
	}
	labels := make([]int, n)
	ds := make([]dcand, n)
	for i := range points {
		c, d := nearestCenter(points[i], centers)
		labels[i] = c
		ds[i] = dcand{i: i, d: d}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	for _, c := range ds[:cfg.L] {
		labels[c.i] = -1
	}
	return Result{Labels: labels, K: countClusters(labels)}, nil
}

// lloydOnce runs a single assignment + update step over the non-skipped
// points.
func lloydOnce(points [][]float64, centers [][]float64, skip []bool) {
	dim := len(points[0])
	sums := make([][]float64, len(centers))
	cw := make([]float64, len(centers))
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for i := range points {
		if skip != nil && skip[i] {
			continue
		}
		c, _ := nearestCenter(points[i], centers)
		for a := 0; a < dim; a++ {
			sums[c][a] += points[i][a]
		}
		cw[c]++
	}
	for c := range centers {
		if cw[c] == 0 {
			// A center whose points were all trimmed as outliers would
			// never move again; reseed it at the surviving point farthest
			// from its nearest center.
			far, farD := -1, -1.0
			for i := range points {
				if skip != nil && skip[i] {
					continue
				}
				if _, d := nearestCenter(points[i], centers); d > farD {
					far, farD = i, d
				}
			}
			if far >= 0 {
				copy(centers[c], points[far])
			}
			continue
		}
		for a := 0; a < dim; a++ {
			centers[c][a] = sums[c][a] / cw[c]
		}
	}
}

func centersEqual(a, b [][]float64) bool {
	for c := range a {
		for x := range a[c] {
			if a[c][x] != b[c][x] {
				return false
			}
		}
	}
	return true
}

// CCKM is the cardinality-constrained clustering with an auxiliary outlier
// cluster (Rujeerapaiboon et al. [43], simplified): Lloyd iterations in
// which at most L points whose distance to every center exceeds an
// adaptive threshold move to the outlier cluster, and cluster sizes are
// softly balanced by assigning points in distance order with a per-cluster
// capacity of ⌈(n−L)/K·slack⌉.
func CCKM(rel *data.Relation, cfg KMeansConfig) (Result, error) {
	points, err := Matrix(rel)
	if err != nil {
		return Result{}, err
	}
	cfg.defaults(len(points))
	n := len(points)
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := kmeansPP(points, nil, cfg.K, rng)
	labels := make([]int, n)
	const slack = 1.5
	capacity := int(float64(n-cfg.L)/float64(cfg.K)*slack) + 1

	type acand struct {
		i, c int
		d    float64
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Assign in ascending distance order under capacities; the L worst
		// leftovers become outliers.
		cands := make([]acand, n)
		for i := range points {
			c, d := nearestCenter(points[i], centers)
			cands[i] = acand{i: i, c: c, d: d}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		sizes := make([]int, cfg.K)
		for i := range labels {
			labels[i] = -1
		}
		assigned := 0
		for _, ca := range cands {
			if assigned >= n-cfg.L {
				break
			}
			c := ca.c
			if sizes[c] >= capacity {
				// Spill to the nearest center with room.
				bestC, bestD := -1, 0.0
				for cc := range centers {
					if sizes[cc] >= capacity {
						continue
					}
					d := sqDist(points[ca.i], centers[cc])
					if bestC < 0 || d < bestD {
						bestC, bestD = cc, d
					}
				}
				if bestC < 0 {
					continue
				}
				c = bestC
			}
			labels[ca.i] = c
			sizes[c]++
			assigned++
		}
		prev := make([][]float64, len(centers))
		for c := range centers {
			prev[c] = append([]float64(nil), centers[c]...)
		}
		// Update centers from assigned points.
		dim := len(points[0])
		sums := make([][]float64, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		cw := make([]float64, cfg.K)
		for i, l := range labels {
			if l < 0 {
				continue
			}
			for a := 0; a < dim; a++ {
				sums[l][a] += points[i][a]
			}
			cw[l]++
		}
		for c := range centers {
			if cw[c] == 0 {
				continue
			}
			for a := 0; a < dim; a++ {
				centers[c][a] = sums[c][a] / cw[c]
			}
		}
		if centersEqual(prev, centers) {
			break
		}
	}
	return Result{Labels: labels, K: countClusters(labels)}, nil
}
