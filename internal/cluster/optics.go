package cluster

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// OPTICSConfig parameterizes OPTICS (Ankerst et al. [10], the
// density-based variation §5 cites alongside DBSCAN): points are ordered
// by reachability distance, and clusters are extracted by thresholding the
// reachability plot.
type OPTICSConfig struct {
	// Eps bounds the neighborhoods considered (the OPTICS "generating
	// distance").
	Eps float64
	// MinPts is the core-point neighbor minimum (self excluded, matching
	// the η convention).
	MinPts int
	// ExtractEps is the reachability threshold for cluster extraction;
	// 0 uses Eps (recovering a DBSCAN-equivalent clustering).
	ExtractEps float64
	// Index optionally supplies a prebuilt neighbor index.
	Index neighbors.Index
}

// OPTICSResult is the cluster ordering plus the extracted clustering.
type OPTICSResult struct {
	// Order is the OPTICS processing order of tuple indexes.
	Order []int
	// Reachability[i] is the reachability distance of tuple i (+Inf for
	// the first point of each density-connected component).
	Reachability []float64
	// Result is the clustering extracted at ExtractEps.
	Result
}

// opticsItem is a heap entry: a point with its current reachability.
type opticsItem struct {
	idx   int
	reach float64
}

type opticsHeap []opticsItem

func (h opticsHeap) Len() int           { return len(h) }
func (h opticsHeap) Less(i, j int) bool { return h[i].reach < h[j].reach }
func (h opticsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *opticsHeap) Push(x any)        { *h = append(*h, x.(opticsItem)) }
func (h *opticsHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// OPTICS orders the relation by density reachability and extracts a flat
// clustering at ExtractEps.
func OPTICS(rel *data.Relation, cfg OPTICSConfig) OPTICSResult {
	n := rel.N()
	idx := cfg.Index
	if idx == nil {
		idx = neighbors.Build(rel, cfg.Eps)
	}
	extract := cfg.ExtractEps
	if extract <= 0 {
		extract = cfg.Eps
	}

	reach := make([]float64, n)
	processed := make([]bool, n)
	order := make([]int, 0, n)
	for i := range reach {
		reach[i] = math.Inf(1)
	}

	// coreDist returns the MinPts-th neighbor distance of i, or +Inf when
	// i is not a core point within Eps.
	coreDist := func(i int, nbs []neighbors.Neighbor) float64 {
		if len(nbs) < cfg.MinPts {
			return math.Inf(1)
		}
		ds := make([]float64, len(nbs))
		for k, nb := range nbs {
			ds[k] = nb.Dist
		}
		sort.Float64s(ds)
		return ds[cfg.MinPts-1]
	}

	update := func(i int, nbs []neighbors.Neighbor, h *opticsHeap) {
		cd := coreDist(i, nbs)
		if math.IsInf(cd, 1) {
			return
		}
		for _, nb := range nbs {
			if processed[nb.Idx] {
				continue
			}
			newReach := math.Max(cd, nb.Dist)
			if newReach < reach[nb.Idx] {
				reach[nb.Idx] = newReach
				heap.Push(h, opticsItem{idx: nb.Idx, reach: newReach})
			}
		}
	}

	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		processed[start] = true
		order = append(order, start)
		nbs := idx.Within(rel.Tuples[start], cfg.Eps, start)
		h := &opticsHeap{}
		update(start, nbs, h)
		for h.Len() > 0 {
			it := heap.Pop(h).(opticsItem)
			if processed[it.idx] {
				continue // stale entry (lazy decrease-key)
			}
			processed[it.idx] = true
			order = append(order, it.idx)
			nb2 := idx.Within(rel.Tuples[it.idx], cfg.Eps, it.idx)
			update(it.idx, nb2, h)
		}
	}

	// Flat extraction: walking the order, a reachability jump above the
	// threshold starts a new cluster if the point is core at the
	// threshold; otherwise the point is noise.
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	cluster := -1
	for _, i := range order {
		if reach[i] > extract {
			// Core at the extraction radius? Then it seeds a cluster.
			if neighbors.CountWithinAtLeast(idx, rel.Tuples[i], extract, i, cfg.MinPts) {
				cluster++
				labels[i] = cluster
			} else {
				labels[i] = -1
			}
			continue
		}
		if cluster < 0 {
			cluster = 0
		}
		labels[i] = cluster
	}
	return OPTICSResult{
		Order:        order,
		Reachability: reach,
		Result:       Result{Labels: labels, K: countClusters(labels)},
	}
}
