package cluster

import (
	"math"
	"testing"

	"repro/internal/eval"
)

func TestOPTICSRecoversBlobs(t *testing.T) {
	rel, truth := blobs(t, 3, 80, 21)
	res := OPTICS(rel, OPTICSConfig{Eps: 2.5, MinPts: 4})
	if res.K != 3 {
		t.Fatalf("OPTICS found %d clusters, want 3", res.K)
	}
	if f1 := eval.F1(res.Labels, truth); f1 < 0.95 {
		t.Errorf("OPTICS F1 = %v", f1)
	}
}

func TestOPTICSMatchesDBSCANAtSameRadius(t *testing.T) {
	// Extracting at the generating distance yields a DBSCAN-equivalent
	// clustering (same pairwise structure up to border-point ties).
	rel, truth := blobs(t, 2, 70, 22)
	rel.Append(tupleXY(500, 500))
	truth = append(truth, -1)
	op := OPTICS(rel, OPTICSConfig{Eps: 2, MinPts: 4})
	db := DBSCAN(rel, DBSCANConfig{Eps: 2, MinPts: 4})
	of1 := eval.F1(op.Labels, truth)
	df1 := eval.F1(db.Labels, truth)
	if math.Abs(of1-df1) > 0.05 {
		t.Errorf("OPTICS F1 %v vs DBSCAN %v", of1, df1)
	}
	if op.Labels[rel.N()-1] != -1 {
		t.Error("isolated point not noise in OPTICS")
	}
}

func TestOPTICSOrderAndReachability(t *testing.T) {
	rel, _ := blobs(t, 2, 50, 23)
	res := OPTICS(rel, OPTICSConfig{Eps: 2.5, MinPts: 3})
	if len(res.Order) != rel.N() {
		t.Fatalf("order covers %d of %d points", len(res.Order), rel.N())
	}
	seen := make([]bool, rel.N())
	for _, i := range res.Order {
		if seen[i] {
			t.Fatalf("point %d ordered twice", i)
		}
		seen[i] = true
	}
	// Exactly the component-starting points have infinite reachability,
	// and there are at least as many as clusters.
	infs := 0
	for _, r := range res.Reachability {
		if math.IsInf(r, 1) {
			infs++
		}
	}
	if infs < res.K {
		t.Errorf("%d infinite-reachability points for %d clusters", infs, res.K)
	}
	// Within-cluster reachability stays below the generating distance.
	for _, i := range res.Order {
		if res.Labels[i] >= 0 && !math.IsInf(res.Reachability[i], 1) && res.Reachability[i] > 2.5 {
			t.Fatalf("clustered point %d has reachability %v > ε", i, res.Reachability[i])
		}
	}
}

func TestOPTICSTighterExtraction(t *testing.T) {
	// Two sub-blobs bridged by a sparse chain: extraction at a smaller
	// radius separates them while the full radius merges them.
	rel, _ := blobs(t, 1, 60, 24)
	for _, t2 := range blobs2(60, 25, 8, 0) {
		rel.Append(t2)
	}
	// Sparse bridge.
	for i := 0; i < 5; i++ {
		rel.Append(tupleXY(1.5+float64(i)*1.3, 0))
	}
	merged := OPTICS(rel, OPTICSConfig{Eps: 2.0, MinPts: 3})
	split := OPTICS(rel, OPTICSConfig{Eps: 2.0, MinPts: 3, ExtractEps: 0.9})
	if split.K < merged.K {
		t.Errorf("tighter extraction produced fewer clusters (%d vs %d)", split.K, merged.K)
	}
}
