//go:build !race

package cluster

const raceDetector = false
