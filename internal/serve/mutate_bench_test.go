package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	disc "repro"
)

// benchMutParams holds the constant-density benchmark geometry: tuples
// uniform over a square sized so the expected ε-ball population stays the
// same at every n, making per-mutation cost comparable across sizes.
const (
	benchMutEps = 1.0
	benchMutEta = 4
)

func benchMutRelation(n int) *disc.Relation {
	rng := rand.New(rand.NewSource(1))
	scale := math.Sqrt(float64(n)) / 2 // density 4 per unit²: ~12 expected ε-neighbors
	rel := disc.NewRelation(disc.NewNumericSchema("x", "y"))
	for i := 0; i < n; i++ {
		rel.Append(disc.Tuple{disc.Num(rng.Float64() * scale), disc.Num(rng.Float64() * scale)})
	}
	return rel
}

func benchMutSession(b *testing.B, n int) *Session {
	b.Helper()
	r := NewRegistry(Config{BatchWindow: -1}.withDefaults())
	b.Cleanup(r.Close)
	s, err := r.Upload(context.Background(), "bench", benchMutRelation(n),
		BuildParams{Eps: benchMutEps, Eta: benchMutEta, Kappa: 2, Index: "grid"})
	if err != nil {
		b.Fatalf("upload: %v", err)
	}
	return s
}

// BenchmarkMutateInsert measures one incremental insert against a live
// session: the ε-ball redetect, the index append, and the saver's
// η-radius refresh. Only the insert is timed — each iteration's follow-up
// delete (keeping the dataset at size n) runs with the timer stopped.
// Compare against BenchmarkMutateRebuild at the same n: the gap is what
// incremental maintenance saves over rebuild-per-mutation, and its growth
// with n is the sublinearity the mutation path claims.
func BenchmarkMutateInsert(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchMutSession(b, n)
			rng := rand.New(rand.NewSource(2))
			scale := math.Sqrt(float64(n)) / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp := disc.Tuple{disc.Num(rng.Float64() * scale), disc.Num(rng.Float64() * scale)}
				mres, err := s.applyMutation(&mutation{op: "insert", tuple: tp})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if _, err := s.applyMutation(&mutation{op: "delete", index: mres.Index}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkRedetectTouched measures one incremental update (tombstone +
// re-insert + ε-ball redetect around both values) and reports the average
// number of tuples whose neighbor counts were re-examined — the
// incremental alternative to the n-sized re-detection a rebuild pays.
func BenchmarkRedetectTouched(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchMutSession(b, n)
			rng := rand.New(rand.NewSource(3))
			scale := math.Sqrt(float64(n)) / 2
			var touched int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp := disc.Tuple{disc.Num(rng.Float64() * scale), disc.Num(rng.Float64() * scale)}
				mres, err := s.applyMutation(&mutation{op: "update", index: rng.Intn(n), tuple: tp})
				if err != nil {
					b.Fatal(err)
				}
				touched += int64(mres.Touched)
			}
			b.ReportMetric(float64(touched)/float64(b.N), "touched/op")
		})
	}
}

// BenchmarkMutateRebuild is the from-scratch baseline the incremental path
// replaces: rebuild the neighbor index and re-run detection over all n
// rows, the cost an immutable session would pay per mutation. (It still
// omits the saver rebuild, so the baseline is conservative.)
func BenchmarkMutateRebuild(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rel := benchMutRelation(n)
			cons := disc.Constraints{Eps: benchMutEps, Eta: benchMutEta}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, err := disc.NewMutableIndex(rel, cons.Eps, disc.KindGrid)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := disc.DetectWithIndex(context.Background(), rel, cons, idx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
