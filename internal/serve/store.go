package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	disc "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// Store is the registry's durable side: one snapshot file per session under
// the data directory, written after a session builds and read back on
// startup so a restart serves warm without re-running relation parse or
// detection. Snapshots that fail validation are moved — never deleted — to a
// quarantine subdirectory for postmortems, and the session is rebuilt from
// its source path when the snapshot's hint still identifies one.
type Store struct {
	dir        string
	quarantine string
	log        *slog.Logger
	stats      obs.StoreStats
}

// quarantineDir is where corrupt snapshots are preserved.
const quarantineDir = "quarantine"

// newStore prepares the data directory (and its quarantine subdirectory).
func newStore(dir string, log *slog.Logger) (*Store, error) {
	q := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(q, 0o755); err != nil {
		return nil, fmt.Errorf("serve: preparing data dir %s: %w", dir, err)
	}
	return &Store{dir: dir, quarantine: q, log: obs.Logger(log)}, nil
}

// path returns the snapshot file for a session id.
func (st *Store) path(id string) string {
	return filepath.Join(st.dir, id+snapshot.Ext)
}

// persist writes the session's snapshot. ErrUnsupported (a custom text
// metric that cannot be named in the file) is returned so the caller can
// stop retrying; any other failure leaves the previous snapshot, if any,
// intact and is worth retrying at drain time.
func (st *Store) persist(s *Session) error {
	// snapshotView densifies tombstoned rows: the file holds only live
	// tuples in logical order, so logical handles do not survive a restart
	// after deletes.
	rel, counts := s.snapshotView()
	snap := &snapshot.Snapshot{
		ID: s.ID, Name: s.Name, Key: s.Key,
		SourcePath: s.Source,
		Params: snapshot.Params{
			Eps: s.Params.Eps, Eta: s.Params.Eta, Kappa: s.Params.Kappa,
			MaxNodes: s.Params.MaxNodes, Seed: s.Params.Seed,
			Index:  s.Params.Index,
			Approx: s.Params.Approx, ApproxConfidence: s.Params.ApproxConfidence,
		},
		Eps: s.Cons.Eps, Eta: s.Cons.Eta,
		Rel: rel, Counts: counts,
		CreatedAt: s.Created,
	}
	t0 := time.Now()
	err := snapshot.Write(st.path(s.ID), snap)
	// Write latency is recorded for failures too: a disk going slow before
	// it goes bad is exactly what this histogram is for.
	st.stats.SnapshotWriteNS.ObserveSince(t0)
	if err != nil {
		st.stats.SnapshotWriteErrors.Add(1)
		return err
	}
	st.stats.SnapshotWrites.Add(1)
	return nil
}

// remove deletes the session's snapshot (explicit delete, eviction, or TTL
// expiry — the disk mirrors the registry, so a restart does not resurrect
// sessions the server decided to drop).
func (st *Store) remove(id string) {
	if err := os.Remove(st.path(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		st.log.Warn("serve: removing snapshot", "id", id, "err", err)
	}
}

// quarantineFile moves a rejected snapshot aside, preserving its bytes.
func (st *Store) quarantineFile(path string, reason error) {
	st.stats.SnapshotCorrupt.Add(1)
	dst := filepath.Join(st.quarantine, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		st.log.Warn("serve: quarantining snapshot", "path", path, "err", err)
		return
	}
	st.log.Warn("serve: snapshot quarantined", "path", path, "to", dst, "reason", reason)
}

// Stats snapshots the store counters for /varz.
func (st *Store) Stats() obs.StoreSnapshot { return st.stats.Snapshot() }

// Dir returns the data directory.
func (st *Store) Dir() string { return st.dir }

// persist writes the session's snapshot when a store is configured. A
// failed write leaves the session dirty so the SIGTERM drain retries it; an
// unserializable schema (custom text metric) marks the session permanently
// memory-only instead. The write is recorded as a span on ctx's trace when
// the persisting request carries one.
func (r *Registry) persist(ctx context.Context, s *Session) {
	if r.store == nil {
		return
	}
	s.mu.Lock()
	skip := s.persisted || s.unsnapshottable
	s.mu.Unlock()
	if skip {
		return
	}
	t0 := time.Now()
	err := r.store.persist(s)
	obs.TraceFrom(ctx).Span("snapshot_write", t0)
	s.mu.Lock()
	switch {
	case err == nil:
		s.persisted = true
	case errors.Is(err, snapshot.ErrUnsupported):
		s.unsnapshottable = true
	}
	s.mu.Unlock()
	switch {
	case err == nil:
	case errors.Is(err, snapshot.ErrUnsupported):
		r.log.Info("serve: session not snapshottable", "id", s.ID, "err", err)
	default:
		r.log.Warn("serve: persisting session", "id", s.ID, "err", err)
	}
}

// Recover replays the data directory into the registry: leftover temp files
// from torn writes are removed, then each snapshot is read, verified and
// rehydrated — relation parse and detection skipped, only the in-memory
// indexes rebuilt. A corrupt or version-mismatched snapshot is quarantined
// and, when its hint still names a readable source path, the session is
// rebuilt from source under its original id and parameters; otherwise it is
// logged and skipped. Recovery never fails the startup for one bad
// snapshot — the error return is reserved for the data directory itself
// being unreadable.
func (r *Registry) Recover(ctx context.Context) error {
	if r.store == nil {
		return nil
	}
	st := r.store
	if n, err := snapshot.CleanTemp(st.dir); err != nil {
		return fmt.Errorf("serve: cleaning data dir: %w", err)
	} else if n > 0 {
		r.log.Info("serve: removed torn snapshot writes", "count", n)
	}
	paths, err := snapshot.List(st.dir)
	if err != nil {
		return fmt.Errorf("serve: listing snapshots: %w", err)
	}
	for _, path := range paths {
		if err := ctx.Err(); err != nil {
			return err
		}
		snap, hint, err := snapshot.Read(path)
		if err == nil {
			st.stats.SnapshotLoads.Add(1)
			s, rerr := r.rehydrate(ctx, snap)
			if rerr == nil {
				s.persisted = true // its snapshot is the file just read
				if _, rerr = r.register(ctx, s); rerr == nil {
					st.stats.RecoveredSessions.Add(1)
					continue
				}
			}
			// Rehydration can fail even on a valid snapshot (injected index
			// fault, cancelled context); fall back to a full rebuild below.
			r.log.Warn("serve: rehydration failed, rebuilding", "path", path, "err", rerr)
			hint = snap.Hint()
		} else if errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, snapshot.ErrVersion) {
			st.quarantineFile(path, err)
		} else {
			// IO-level failure: the file may be fine, leave it for the next
			// restart.
			r.log.Warn("serve: reading snapshot", "path", path, "err", err)
			continue
		}
		r.rebuildFromHint(ctx, hint)
	}
	return nil
}

// rebuildFromHint runs the full build pipeline for a session whose snapshot
// was unusable but whose hint survived and names a source path. Uploads
// (no source path) cannot be rebuilt — their data existed only in the
// payload — so they are logged as lost.
func (r *Registry) rebuildFromHint(ctx context.Context, hint *snapshot.Hint) {
	if hint == nil || hint.SourcePath == "" {
		if hint != nil {
			r.log.Warn("serve: upload session lost with its snapshot", "id", hint.ID, "name", hint.Name)
		}
		return
	}
	p := BuildParams{
		Eps: hint.Params.Eps, Eta: hint.Params.Eta, Kappa: hint.Params.Kappa,
		MaxNodes: hint.Params.MaxNodes, Seed: hint.Params.Seed,
		Index:  hint.Params.Index,
		Approx: hint.Params.Approx, ApproxConfidence: hint.Params.ApproxConfidence,
	}
	s, err := r.buildFromPath(ctx, hint.ID, hint.SourcePath, hint.Key, p)
	if err != nil {
		r.log.Warn("serve: rebuilding session from source", "id", hint.ID,
			"path", hint.SourcePath, "err", err)
		return
	}
	if _, err := r.register(ctx, s); err != nil {
		return
	}
	r.store.stats.RebuiltSessions.Add(1)
	r.log.Info("serve: session rebuilt from source", "id", s.ID, "path", hint.SourcePath)
}

// rehydrate reconstructs a warm session from a verified snapshot: the
// detection split is re-derived from the persisted neighbor counts (no
// counting pass), and only the in-memory structures — the full-relation
// index and the saver's inlier index, η-radius table and arena pool — are
// rebuilt. Timings.Detect stays zero: that, with Recovered, is how a warm
// restart proves it skipped detection.
func (r *Registry) rehydrate(ctx context.Context, snap *snapshot.Snapshot) (*Session, error) {
	if err := fault.Inject(fault.IndexBuild); err != nil {
		return nil, fmt.Errorf("serve: rebuilding indexes for %q: %w", snap.ID, err)
	}
	start := time.Now()
	cons := disc.Constraints{Eps: snap.Eps, Eta: snap.Eta}
	det := disc.RehydrateDetection(snap.Counts, snap.Eta)
	if len(det.Inliers) == 0 {
		return nil, fmt.Errorf("serve: snapshot %q has no inliers", snap.ID)
	}
	kind, err := disc.ParseIndexKind(snap.Params.Index)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot %q: %w", snap.ID, err)
	}
	t0 := time.Now()
	relMut, err := disc.NewMutableIndex(snap.Rel, cons.Eps, kind)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding index for %q: %w", snap.ID, err)
	}
	detIdxBuild := time.Since(t0)
	saverMut, err := disc.NewMutableIndex(snap.Rel.Subset(det.Inliers), cons.Eps, kind)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding saver index for %q: %w", snap.ID, err)
	}
	saver, err := disc.NewSaverContext(ctx, saverMut.Rel(), cons, disc.Options{
		Kappa:    snap.Params.Kappa,
		MaxNodes: snap.Params.MaxNodes,
		Index:    saverMut,
		Logger:   r.cfg.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: preparing saver for %q: %w", snap.ID, err)
	}
	setupStats, saverIdxBuild, etaRadius := saver.SetupStats()
	s := &Session{
		ID: snap.ID, Name: snap.Name, Key: snap.Key,
		Source: snap.SourcePath,
		Params: BuildParams{
			Eps: snap.Params.Eps, Eta: snap.Params.Eta, Kappa: snap.Params.Kappa,
			MaxNodes: snap.Params.MaxNodes, Seed: snap.Params.Seed,
			Index:  snap.Params.Index,
			Approx: snap.Params.Approx, ApproxConfidence: snap.Params.ApproxConfidence,
		},
		Rel: snap.Rel, Cons: cons, Kappa: snap.Params.Kappa,
		Det: det, RelIdx: relMut, relMut: relMut, Saver: saver,
		Created: snap.CreatedAt, Bytes: estimateBytes(snap.Rel),
		Recovered: true,
		Timings: obs.PhaseTimings{
			DetectIndexBuild: detIdxBuild,
			IndexBuild:       saverIdxBuild, EtaRadius: etaRadius,
			Total: time.Since(start),
		},
		lastUsed:    time.Now(),
		indexBuilds: 2,
	}
	s.initMutableState()
	s.stats.Add(&setupStats)
	s.batcher = newBatcher(s, r.cfg)
	r.log.Info("serve: session recovered", "id", s.ID, "name", s.Name,
		"tuples", s.Rel.N(), "inliers", len(det.Inliers), "outliers", len(det.Outliers),
		"rebuild", s.Timings.Total)
	return s, nil
}
