package serve

import (
	"bytes"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsEndpoint drives real traffic through the stack, scrapes
// GET /metrics, and validates the output with the shared Prometheus
// parser: the golden-format guarantee the exporter makes to scrapers.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 1})
	// A session name containing every escapable label character: the
	// exporter must round-trip it, not corrupt the exposition format.
	gnarly := `blob "A"\B` + "\nrest"
	w := do(t, s, "POST", "/v1/datasets", createRequest{
		Name: gnarly, CSV: testCSV(t), Eps: 1, Eta: 3, Kappa: 2,
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: status %d, body %s", w.Code, w.Body.String())
	}
	info := decode[SessionInfo](t, w)
	if w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}}); w.Code != http.StatusOK {
		t.Fatalf("save: status %d, body %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect", detectRequest{Tuples: [][]any{{0.4, 0.4}}}); w.Code != http.StatusOK {
		t.Fatalf("detect: status %d, body %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/tuples", mutateRequest{Tuple: []any{0.2, 0.2}}); w.Code != http.StatusCreated {
		t.Fatalf("insert: status %d, body %s", w.Code, w.Body.String())
	}

	mw := do(t, s, "GET", "/metrics", nil)
	if mw.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", mw.Code)
	}
	if ct := mw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition format", ct)
	}
	fams, err := obs.ParseProm(bytes.NewReader(mw.Body.Bytes()))
	if err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, mw.Body.String())
	}

	// The save latency histogram must have recorded the save.
	for _, name := range []string{"disc_save_seconds", "disc_save_nodes", "disc_batch_size",
		"disc_queue_wait_seconds", "disc_redetect_touched", "disc_request_seconds",
		"disc_session_save_seconds"} {
		f := fams[name]
		if f == nil || f.Type != "histogram" {
			t.Fatalf("family %s missing or not a histogram", name)
		}
	}
	count := func(name string) float64 {
		var total float64
		for _, smp := range fams[name].Samples {
			if smp.Name == name+"_count" {
				total += smp.Value
			}
		}
		return total
	}
	if c := count("disc_save_seconds"); c < 1 {
		t.Errorf("disc_save_seconds count = %v, want >= 1", c)
	}
	if c := count("disc_redetect_touched"); c < 1 {
		t.Errorf("disc_redetect_touched count = %v, want >= 1 after the insert", c)
	}

	// Endpoint counters: the save endpoint saw at least one request, and
	// every EndpointSnapshot tag became a family.
	for _, tag := range obs.CounterNames(obs.EndpointSnapshot{}) {
		f := fams["disc_endpoint_"+tag+"_total"]
		if f == nil || f.Type != "counter" {
			t.Fatalf("endpoint counter family for tag %q missing", tag)
		}
	}
	var saveReqs float64
	for _, smp := range fams["disc_endpoint_requests_total"].Samples {
		if smp.Labels["endpoint"] == "save" {
			saveReqs = smp.Value
		}
	}
	if saveReqs < 1 {
		t.Errorf("disc_endpoint_requests_total{endpoint=save} = %v, want >= 1", saveReqs)
	}

	// Per-session counters carry the (session, name) labels, with the
	// gnarly name intact after unescaping.
	f := fams["disc_session_saves_total"]
	if f == nil {
		t.Fatal("disc_session_saves_total missing")
	}
	found := false
	for _, smp := range f.Samples {
		if smp.Labels["session"] == info.ID {
			found = true
			if smp.Labels["name"] != gnarly {
				t.Errorf("session name label = %q, want %q", smp.Labels["name"], gnarly)
			}
			if smp.Value < 1 {
				t.Errorf("session saves = %v, want >= 1", smp.Value)
			}
		}
	}
	if !found {
		t.Errorf("no disc_session_saves_total sample for session %s", info.ID)
	}

	// Search counters: one family per SearchStats tag.
	for _, tag := range obs.CounterNames(obs.SearchStats{}) {
		if fams["disc_session_search_"+tag+"_total"] == nil {
			t.Errorf("search counter family for tag %q missing", tag)
		}
	}
	if fams["disc_traces_total"] == nil || fams["disc_traces_total"].Samples[0].Value < 1 {
		t.Errorf("disc_traces_total missing or zero: traced requests were served")
	}
}

// TestSlowRequestEmitsSpans: with a threshold of 1ns every API request is
// slow, and the middleware must log the span breakdown.
func TestSlowRequestEmitsSpans(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 1, SlowRequest: time.Nanosecond, Logger: log})
	info := uploadSession(t, s)
	if w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}}); w.Code != http.StatusOK {
		t.Fatalf("save: status %d, body %s", w.Code, w.Body.String())
	}
	out := buf.String()
	if !strings.Contains(out, "slow request") {
		t.Fatalf("no slow-request log line:\n%s", out)
	}
	// The breakdown must include the full request lifecycle: the handler's
	// admit span, the queue wait, and the save execution.
	for _, span := range []string{"admit=", "queue=", "save=", "dispatch=", "respond="} {
		if !strings.Contains(out, span) {
			t.Errorf("slow-request breakdown missing %q:\n%s", span, out)
		}
	}
	if !strings.Contains(out, "request_id=") {
		t.Errorf("slow-request line has no request id:\n%s", out)
	}
}

// TestSlowRequestDisabledByDefault: without SlowRequest no per-request
// warning fires even for real work.
func TestSlowRequestDisabledByDefault(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 1, Logger: log})
	info := uploadSession(t, s)
	do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
	if strings.Contains(buf.String(), "slow request") {
		t.Errorf("slow-request warning fired with the threshold disabled:\n%s", buf.String())
	}
}

// TestProbesNotTraced: health and metrics polls must not enter the trace
// ring — a 1s-interval scraper would evict every real request trace.
func TestProbesNotTraced(t *testing.T) {
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 1})
	do(t, s, "GET", "/healthz", nil)
	do(t, s, "GET", "/metrics", nil)
	do(t, s, "GET", "/varz", nil)
	if got := s.traces.Total(); got != 0 {
		t.Errorf("probe endpoints recorded %d traces, want 0", got)
	}
	uploadSession(t, s)
	if got := s.traces.Total(); got < 1 {
		t.Errorf("API request recorded no trace")
	}
}
