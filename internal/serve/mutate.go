package serve

import (
	"context"
	"errors"
	"fmt"

	disc "repro"
)

// errNoSuchRow marks a mutation addressing a logical row that does not
// exist or was already deleted; the handlers map it to 404.
var errNoSuchRow = errors.New("serve: no such row")

// compactMinDead is the tombstone floor below which a session never
// compacts; above it, compaction triggers once dead rows outnumber live
// ones (so the full rebuild is amortized against at least as many O(ball)
// mutations). A var so tests can force compaction on small datasets.
var compactMinDead = 256

// mutation is one admitted tuple mutation, riding the same batcher queue
// as saves so it serializes against in-flight detect/save work.
type mutation struct {
	op    string // "insert" | "update" | "delete"
	index int    // logical row for update/delete
	tuple disc.Tuple
}

// mutationResponse reports the incremental maintenance a mutation did.
type mutationResponse struct {
	Op string `json:"op"`
	// Index is the affected logical row: the new row's handle for
	// insert, the addressed row for update/delete. Handles are stable
	// across every mutation (deletes leave holes, updates keep the
	// handle), but not across a server restart after deletes — the
	// snapshot stores the live rows reindexed densely.
	Index int `json:"index"`
	// Tuples/Inliers/Outliers are the live totals after the mutation.
	Tuples   int `json:"tuples"`
	Inliers  int `json:"inliers"`
	Outliers int `json:"outliers"`
	// Flipped counts existing tuples whose inlier/outlier status crossed
	// η; Touched counts the tuples whose neighbor counts were
	// re-examined (the ε-balls of the old and new values).
	Flipped int `json:"flipped"`
	Touched int `json:"touched"`
	// Neighbors and Outlier describe the inserted/updated tuple itself
	// (absent for delete).
	Neighbors int  `json:"neighbors"`
	Outlier   bool `json:"outlier"`
}

// initMutableState derives the logical row mapping, the full→saver row
// mapping and the live split counts from a freshly built (or compacted)
// session. Counts and mappings are physical-row-indexed.
func (s *Session) initMutableState() {
	n := s.Rel.N()
	s.schema = s.Rel.Schema
	s.logical = make([]int, n)
	s.fullToSaver = make([]int, n)
	for i := range s.logical {
		s.logical[i] = i
		s.fullToSaver[i] = -1
	}
	for si, fi := range s.Det.Inliers {
		s.fullToSaver[fi] = si
	}
	s.inliers = len(s.Det.Inliers)
	s.outliers = len(s.Det.Outliers)
}

// applyMutation runs one mutation under the session's exclusive state
// lock: update the relation/kernel/indexes incrementally, re-examine
// only the tuples whose ε-neighborhoods the mutation touched, sync the
// saver's inlier set and η-radii, settle the byte ledger, and mark the
// snapshot dirty. It is called from the batcher's dispatch, so it
// serializes against queued detect/save work.
func (s *Session) applyMutation(m *mutation) (mutationResponse, error) {
	s.stateMu.Lock()
	resp := mutationResponse{Op: m.op, Index: m.index}
	var bytesDelta int64
	var refresh []disc.Tuple // δ_η refresh centers, applied after all membership changes
	var flips []int
	touched := 0

	switch m.op {
	case "insert":
		phys, nbr, f := s.insertRowLocked(m.tuple)
		s.logical = append(s.logical, phys)
		resp.Index = len(s.logical) - 1
		resp.Neighbors, resp.Outlier = nbr, s.Det.Counts[phys] < s.Cons.Eta
		flips = f
		touched = nbr + 1
		bytesDelta = tupleBytes(m.tuple)
		refresh = append(refresh, m.tuple)

	case "delete":
		phys, err := s.resolveRowLocked(m.index)
		if err != nil {
			s.stateMu.Unlock()
			return resp, err
		}
		old, ball, f := s.deleteRowLocked(phys)
		s.logical[m.index] = -1
		flips = f
		touched = ball + 1
		bytesDelta = -tupleBytes(old)
		refresh = append(refresh, old)

	case "update":
		phys, err := s.resolveRowLocked(m.index)
		if err != nil {
			s.stateMu.Unlock()
			return resp, err
		}
		old, ball, f1 := s.deleteRowLocked(phys)
		newPhys, nbr, f2 := s.insertRowLocked(m.tuple)
		s.logical[m.index] = newPhys
		resp.Neighbors, resp.Outlier = nbr, s.Det.Counts[newPhys] < s.Cons.Eta
		flips = append(f1, f2...)
		touched = ball + nbr + 2
		bytesDelta = tupleBytes(m.tuple) - tupleBytes(old)
		refresh = append(refresh, old, m.tuple)

	default:
		s.stateMu.Unlock()
		return resp, fmt.Errorf("serve: unknown mutation op %q", m.op)
	}

	// Saver η-radius maintenance: every location where inlier membership
	// changed (the mutated values and each flipped tuple) gets its
	// ε-ball's radii recomputed exactly. Radii farther than ε from every
	// change can drift, but never across the only threshold the saver
	// tests (δ_η ≤ ε − d, d ≥ 0), so save results stay rebuild-exact.
	for _, i := range flips {
		refresh = append(refresh, s.Rel.Tuples[i])
	}
	for _, c := range refresh {
		touched += s.Saver.RefreshRadii(c)
	}
	resp.Flipped, resp.Touched = len(flips), touched
	resp.Tuples, resp.Inliers, resp.Outliers = s.relMut.Live(), s.inliers, s.outliers

	if dead := s.relMut.DeadCount(); dead > compactMinDead && dead > s.relMut.Live() {
		s.compactLocked()
	}
	s.stateMu.Unlock()

	// Ledger and dirty marks, after the state lock drops (lock order:
	// stateMu → registry.mu → session.mu; noteBytes is safe either way
	// but the mutation is already visible, so don't hold readers off).
	if s.reg != nil && bytesDelta != 0 {
		s.reg.noteBytes(s, bytesDelta)
	}
	s.mu.Lock()
	switch m.op {
	case "insert":
		s.mstats.inserted++
	case "update":
		s.mstats.updated++
	case "delete":
		s.mstats.deleted++
	}
	s.mstats.redetectTouched += int64(touched)
	s.persisted = false // the on-disk snapshot no longer matches
	s.mu.Unlock()
	return resp, nil
}

// resolveRowLocked maps a logical row handle to its live physical row.
func (s *Session) resolveRowLocked(li int) (int, error) {
	if li < 0 || li >= len(s.logical) {
		return -1, fmt.Errorf("%w: index %d out of range [0,%d)", errNoSuchRow, li, len(s.logical))
	}
	phys := s.logical[li]
	if phys < 0 {
		return -1, fmt.Errorf("%w: row %d was deleted", errNoSuchRow, li)
	}
	return phys, nil
}

// insertRowLocked appends t through the kernel and index, seeds its
// neighbor count from its ε-ball, bumps the counts of the ball members,
// and syncs inlier membership (the new row's own and any flips).
// Returns the new physical row, its neighbor count, and the flipped
// physical rows.
func (s *Session) insertRowLocked(t disc.Tuple) (phys, nbr int, flips []int) {
	eta := s.Cons.Eta
	// The ball is queried before the insert, so the new row's count
	// excludes itself — exactly the |r_ε(t)| detection uses.
	ball := s.relMut.Within(t, s.Cons.Eps, -1)
	phys = s.relMut.Insert(t)
	s.Det.Counts = append(s.Det.Counts, len(ball))
	s.fullToSaver = append(s.fullToSaver, -1)
	for _, nb := range ball {
		j := nb.Idx
		s.Det.Counts[j]++
		if s.Det.Counts[j] == eta { // crossed up
			flips = append(flips, j)
		}
	}
	if len(ball) >= eta {
		s.fullToSaver[phys] = s.Saver.InsertInlier(t)
		s.inliers++
	} else {
		s.outliers++
	}
	s.applyFlipsLocked(flips)
	return phys, len(ball), flips
}

// deleteRowLocked tombstones physical row phys, decrements its ball's
// neighbor counts, and syncs inlier membership. Returns the removed
// tuple, its ball size, and the flipped physical rows.
func (s *Session) deleteRowLocked(phys int) (old disc.Tuple, ball int, flips []int) {
	eta := s.Cons.Eta
	old = s.Rel.Tuples[phys]
	nbs := s.relMut.Within(old, s.Cons.Eps, phys)
	s.relMut.Delete(phys)
	for _, nb := range nbs {
		j := nb.Idx
		s.Det.Counts[j]--
		if s.Det.Counts[j] == eta-1 { // crossed down
			flips = append(flips, j)
		}
	}
	if si := s.fullToSaver[phys]; si >= 0 {
		s.Saver.RemoveInlier(si)
		s.fullToSaver[phys] = -1
		s.inliers--
	} else {
		s.outliers--
	}
	s.applyFlipsLocked(flips)
	return old, len(nbs), flips
}

// applyFlipsLocked moves each flipped tuple across the inlier/outlier
// split, inserting into or tombstoning from the saver's inlier set.
func (s *Session) applyFlipsLocked(flips []int) {
	eta := s.Cons.Eta
	for _, j := range flips {
		if s.Det.Counts[j] >= eta {
			s.fullToSaver[j] = s.Saver.InsertInlier(s.Rel.Tuples[j])
			s.inliers++
			s.outliers--
		} else {
			s.Saver.RemoveInlier(s.fullToSaver[j])
			s.fullToSaver[j] = -1
			s.inliers--
			s.outliers++
		}
	}
}

// compactLocked rebuilds the session over only its live rows, in logical
// order: tombstoned storage in the relation, kernel and saver is
// reclaimed, the detection counts are remapped (not recomputed), and
// both indexes plus the saver's η-radius table are rebuilt from scratch.
// Logical row handles survive (holes stay holes). On any build error the
// old state is kept — queries keep working, compaction retries on a
// later mutation.
func (s *Session) compactLocked() {
	rel := disc.NewRelation(s.Rel.Schema)
	logical := make([]int, len(s.logical))
	counts := make([]int, 0, s.relMut.Live())
	for li, phys := range s.logical {
		if phys < 0 {
			logical[li] = -1
			continue
		}
		logical[li] = rel.N()
		counts = append(counts, s.Det.Counts[phys])
		rel.Append(s.Rel.Tuples[phys])
	}
	det := disc.RehydrateDetection(counts, s.Cons.Eta)
	if len(det.Inliers) == 0 {
		return // nothing to save against; keep serving from the old state
	}
	kind := s.relMut.Kind()
	relMut, err := disc.NewMutableIndex(rel, s.Cons.Eps, kind)
	if err != nil {
		return
	}
	saverMut, err := disc.NewMutableIndex(rel.Subset(det.Inliers), s.Cons.Eps, kind)
	if err != nil {
		return
	}
	saver, err := disc.NewSaverContext(context.Background(), saverMut.Rel(), s.Cons, disc.Options{
		Kappa:    s.Kappa,
		MaxNodes: s.Params.MaxNodes,
		Index:    saverMut,
		Logger:   s.reg.cfg.Logger,
	})
	if err != nil {
		return
	}
	s.Rel, s.Det, s.RelIdx, s.relMut, s.Saver = rel, det, relMut, relMut, saver
	s.initMutableState()
	s.logical = logical
	s.mu.Lock()
	s.mstats.compactions++
	s.indexBuilds += 2 // honest accounting: compaction rebuilds both indexes
	s.mu.Unlock()
}

// snapshotView returns the relation and neighbor counts to persist: the
// live rows in logical order. Sessions that never deleted a row persist
// their storage as-is (appends keep physical order == logical order);
// after deletes the view reindexes densely, which is also why logical
// row handles do not survive a restart.
func (s *Session) snapshotView() (*disc.Relation, []int) {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.relMut.DeadCount() == 0 {
		return s.Rel, s.Det.Counts
	}
	rel := disc.NewRelation(s.Rel.Schema)
	counts := make([]int, 0, s.relMut.Live())
	for _, phys := range s.logical {
		if phys < 0 {
			continue
		}
		counts = append(counts, s.Det.Counts[phys])
		rel.Append(s.Rel.Tuples[phys])
	}
	return rel, counts
}
