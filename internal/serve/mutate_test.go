package serve

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	disc "repro"
)

func randTuple2D(rng *rand.Rand, scale float64) disc.Tuple {
	return disc.Tuple{disc.Num(rng.Float64() * scale), disc.Num(rng.Float64() * scale)}
}

func tupleAny(t disc.Tuple) []any {
	out := make([]any, len(t))
	for i := range t {
		out[i] = t[i].Num
	}
	return out
}

// randLiveHandle picks a uniformly random non-deleted logical handle.
func randLiveHandle(rng *rand.Rand, mirror []disc.Tuple) int {
	for {
		h := rng.Intn(len(mirror))
		if mirror[h] != nil {
			return h
		}
	}
}

// TestMutateDifferential is the acceptance property of the mutation path:
// after a random interleaving of inserts, updates and deletes, the mutated
// session answers /detect and /save exactly like a session built from
// scratch over the same live rows — across all four index kinds. Run under
// -race this also exercises the mutation/query locking.
func TestMutateDifferential(t *testing.T) {
	for _, kind := range []string{"brute", "grid", "kd", "vp"} {
		t.Run(kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			s := newTestServer(t, Config{BatchWindow: -1, Workers: 2})

			rel := disc.NewRelation(disc.NewNumericSchema("x", "y"))
			for i := 0; i < 60; i++ {
				rel.Append(randTuple2D(rng, 1))
			}
			var buf bytes.Buffer
			if err := disc.WriteCSV(&buf, rel); err != nil {
				t.Fatal(err)
			}
			w := do(t, s, "POST", "/v1/datasets", createRequest{
				Name: "mut", CSV: buf.String(), Eps: 0.25, Eta: 3, Kappa: 2, Index: kind,
			})
			if w.Code != http.StatusCreated {
				t.Fatalf("upload: status %d, body %s", w.Code, w.Body.String())
			}
			info := decode[SessionInfo](t, w)
			if info.Index != kind {
				t.Fatalf("session index = %q, want %q", info.Index, kind)
			}

			// mirror tracks the logical row handles client-side: nil = hole.
			mirror := make([]disc.Tuple, rel.N())
			copy(mirror, rel.Tuples)
			live := rel.N()

			for op := 0; op < 45; op++ {
				switch {
				case live < 30 || rng.Intn(3) == 0: // insert
					scale := 1.0
					if rng.Intn(4) == 0 {
						// Far outside the initial bounding box: on grid this
						// refuses the native cell insert and lands in the
						// delta buffer.
						scale = 50
					}
					tp := randTuple2D(rng, scale)
					w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/tuples",
						mutateRequest{Tuple: tupleAny(tp)})
					if w.Code != http.StatusCreated {
						t.Fatalf("insert: status %d, body %s", w.Code, w.Body.String())
					}
					mres := decode[mutationResponse](t, w)
					if mres.Index != len(mirror) {
						t.Fatalf("insert handle = %d, want %d", mres.Index, len(mirror))
					}
					mirror = append(mirror, tp)
					live++
					if mres.Tuples != live {
						t.Fatalf("insert reported %d live tuples, want %d", mres.Tuples, live)
					}
				case rng.Intn(2) == 0: // update
					h := randLiveHandle(rng, mirror)
					tp := randTuple2D(rng, 1)
					w := do(t, s, "PUT", fmt.Sprintf("/v1/datasets/%s/tuples/%d", info.ID, h),
						mutateRequest{Tuple: tupleAny(tp)})
					if w.Code != http.StatusOK {
						t.Fatalf("update %d: status %d, body %s", h, w.Code, w.Body.String())
					}
					mirror[h] = tp
				default: // delete
					h := randLiveHandle(rng, mirror)
					w := do(t, s, "DELETE", fmt.Sprintf("/v1/datasets/%s/tuples/%d", info.ID, h), nil)
					if w.Code != http.StatusOK {
						t.Fatalf("delete %d: status %d, body %s", h, w.Code, w.Body.String())
					}
					mirror[h] = nil
					live--
					// A deleted handle is a hole: every op on it answers 404.
					if w := do(t, s, "DELETE", fmt.Sprintf("/v1/datasets/%s/tuples/%d", info.ID, h), nil); w.Code != http.StatusNotFound {
						t.Fatalf("double delete %d: status %d, want 404", h, w.Code)
					}
				}
			}

			// From-scratch rebuild over the surviving rows in logical order.
			fresh := disc.NewRelation(rel.Schema)
			for _, tp := range mirror {
				if tp != nil {
					fresh.Append(tp)
				}
			}
			fs, err := s.Registry().Upload(context.Background(), "fresh", fresh,
				BuildParams{Eps: 0.25, Eta: 3, Kappa: 2, Index: kind})
			if err != nil {
				t.Fatalf("fresh rebuild: %v", err)
			}

			mutInfo := decode[SessionInfo](t, do(t, s, "GET", "/v1/datasets/"+info.ID, nil))
			freshInfo := fs.Info()
			if mutInfo.Tuples != freshInfo.Tuples || mutInfo.Inliers != freshInfo.Inliers || mutInfo.Outliers != freshInfo.Outliers {
				t.Fatalf("mutated split (n=%d in=%d out=%d) != rebuild (n=%d in=%d out=%d)",
					mutInfo.Tuples, mutInfo.Inliers, mutInfo.Outliers,
					freshInfo.Tuples, freshInfo.Inliers, freshInfo.Outliers)
			}
			if mutInfo.Inserted+mutInfo.Updated+mutInfo.Deleted != 45 {
				t.Fatalf("mutation counters %d+%d+%d, want 45 total",
					mutInfo.Inserted, mutInfo.Updated, mutInfo.Deleted)
			}
			if mutInfo.Redetect == 0 {
				t.Fatal("redetect_touched stayed zero across 45 mutations")
			}

			// Detect parity: every live row (member mode) plus fresh probes.
			var probes [][]any
			for _, tp := range mirror {
				if tp != nil {
					probes = append(probes, tupleAny(tp))
				}
			}
			dm := decode[detectResponse](t, do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect",
				detectRequest{Tuples: probes, Member: true}))
			df := decode[detectResponse](t, do(t, s, "POST", "/v1/datasets/"+fs.ID+"/detect",
				detectRequest{Tuples: probes, Member: true}))
			if !reflect.DeepEqual(dm.Results, df.Results) {
				t.Fatalf("member detect diverged from rebuild:\nmutated: %+v\nrebuild: %+v", dm.Results, df.Results)
			}
			probes = probes[:0]
			for i := 0; i < 8; i++ {
				probes = append(probes, tupleAny(randTuple2D(rng, 1.4)))
			}
			dm = decode[detectResponse](t, do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect",
				detectRequest{Tuples: probes}))
			df = decode[detectResponse](t, do(t, s, "POST", "/v1/datasets/"+fs.ID+"/detect",
				detectRequest{Tuples: probes}))
			if !reflect.DeepEqual(dm.Results, df.Results) {
				t.Fatalf("probe detect diverged from rebuild:\nmutated: %+v\nrebuild: %+v", dm.Results, df.Results)
			}

			// Save parity: repair the same outlier-ish probes on both
			// sessions and require identical adjustments (random float data
			// makes the min-cost adjustment unique, so iteration order — the
			// only thing the mutated and rebuilt sessions differ in — must
			// not show through).
			for i := 0; i < 3; i++ {
				probe := tupleAny(disc.Tuple{disc.Num(1.2 + 0.3*float64(i) + rng.Float64()/8), disc.Num(1.3 + rng.Float64()/8)})
				am := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: probe})
				af := do(t, s, "POST", "/v1/datasets/"+fs.ID+"/save", saveRequest{Tuple: probe})
				if am.Code != http.StatusOK || af.Code != http.StatusOK {
					t.Fatalf("save probe %d: mutated %d, rebuild %d", i, am.Code, af.Code)
				}
				jm := decode[adjustmentJSON](t, am)
				jf := decode[adjustmentJSON](t, af)
				if !reflect.DeepEqual(jm, jf) {
					t.Fatalf("save probe %d diverged from rebuild:\nmutated: %+v\nrebuild: %+v", i, jm, jf)
				}
			}
		})
	}
}

// FuzzMutate drives applyMutation with arbitrary op streams and checks the
// incremental neighbor counts against a from-scratch detection after every
// stream. Each op is 3 bytes: opcode, then two coordinate/index bytes.
func FuzzMutate(f *testing.F) {
	f.Add([]byte{0, 10, 10, 0, 200, 200, 2, 3, 0, 1, 5, 9})
	f.Add([]byte{2, 0, 0, 2, 1, 0, 2, 2, 0, 0, 40, 40})
	f.Add([]byte{1, 0, 99, 1, 200, 1, 0, 0, 0, 2, 0, 0})
	f.Add(bytes.Repeat([]byte{2, 7, 0}, 30)) // delete churn
	f.Fuzz(func(t *testing.T, ops []byte) {
		r := NewRegistry(Config{BatchWindow: -1}.withDefaults())
		defer r.Close()
		s, err := r.Upload(context.Background(), "fuzz", testRelation(), testParams)
		if err != nil {
			t.Fatalf("upload: %v", err)
		}
		for i := 0; i+2 < len(ops) && i < 3*40; i += 3 {
			a, b := ops[i+1], ops[i+2]
			tp := disc.Tuple{disc.Num(float64(a) / 64), disc.Num(float64(b) / 64)}
			switch ops[i] % 3 {
			case 0:
				s.applyMutation(&mutation{op: "insert", tuple: tp})
			case 1:
				s.applyMutation(&mutation{op: "update", index: int(a), tuple: tp})
			case 2:
				s.applyMutation(&mutation{op: "delete", index: int(b)})
			}
		}

		s.stateMu.RLock()
		liveRel := disc.NewRelation(s.Rel.Schema)
		var gotCounts []int
		for _, phys := range s.logical {
			if phys < 0 {
				continue
			}
			liveRel.Append(s.Rel.Tuples[phys])
			gotCounts = append(gotCounts, s.Det.Counts[phys])
		}
		gotIn, gotOut := s.inliers, s.outliers
		s.stateMu.RUnlock()

		if liveRel.N() == 0 {
			if gotIn != 0 || gotOut != 0 {
				t.Fatalf("empty session reports %d inliers, %d outliers", gotIn, gotOut)
			}
			return
		}
		idx, err := disc.NewMutableIndex(liveRel, s.Cons.Eps, disc.KindBrute)
		if err != nil {
			t.Fatalf("reference index: %v", err)
		}
		det, err := disc.DetectWithIndex(context.Background(), liveRel, s.Cons, idx)
		if err != nil {
			t.Fatalf("reference detect: %v", err)
		}
		if gotIn != len(det.Inliers) || gotOut != len(det.Outliers) {
			t.Fatalf("incremental split (%d, %d) != reference (%d, %d)",
				gotIn, gotOut, len(det.Inliers), len(det.Outliers))
		}
		for i, want := range det.Counts {
			if gotCounts[i] != want {
				t.Fatalf("live row %d: incremental count %d, reference %d", i, gotCounts[i], want)
			}
		}
	})
}

// TestSweepSkipsBusySessions is the regression test for TTL eviction
// racing a saturated queue: a session with admitted-but-unanswered work
// must never be swept, no matter how stale its lastUsed is.
func TestSweepSkipsBusySessions(t *testing.T) {
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 1, TTL: time.Minute, MaxQueue: 8})
	info := uploadSession(t, s)
	sess, ok := s.Registry().Get(info.ID)
	if !ok {
		t.Fatal("session vanished")
	}

	// Hold the state lock so dispatched saves block inside the batch,
	// keeping the queue saturated while the sweeps run.
	sess.stateMu.Lock()
	var reqs sync.WaitGroup
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		reqs.Add(1)
		go func() {
			defer reqs.Done()
			w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save",
				saveRequest{Tuple: tupleAny(outlierTuple())})
			codes <- w.Code
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sess.batcher.busy() {
		if time.Now().After(deadline) {
			sess.stateMu.Unlock()
			t.Fatal("queue never became busy")
		}
		time.Sleep(time.Millisecond)
	}

	future := time.Now().Add(time.Hour) // every session looks idle-expired
	var sweeps sync.WaitGroup
	for i := 0; i < 4; i++ {
		sweeps.Add(1)
		go func() {
			defer sweeps.Done()
			s.Registry().Sweep(future)
		}()
	}
	sweeps.Wait()
	if _, ok := s.Registry().Get(info.ID); !ok {
		sess.stateMu.Unlock()
		t.Fatal("session with a saturated queue was swept")
	}

	sess.stateMu.Unlock()
	reqs.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("queued save answered %d after the sweep", code)
		}
	}

	// Drained and idle, the same sweep may now evict it.
	deadline = time.Now().Add(10 * time.Second)
	for sess.batcher.busy() {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	s.Registry().Sweep(time.Now().Add(time.Hour))
	if _, ok := s.Registry().Get(info.ID); ok {
		t.Fatal("idle expired session survived the sweep")
	}
}

// TestSessionIDCollisionRegenerated forces newID to repeat itself and
// asserts register detects the duplicate and re-rolls instead of silently
// shadowing the existing session.
func TestSessionIDCollisionRegenerated(t *testing.T) {
	orig := newID
	defer func() { newID = orig }()
	calls := 0
	newID = func() string {
		calls++
		if calls <= 2 {
			return "feedfacefeedface" // both uploads draw the same id
		}
		return orig()
	}

	s := newTestServer(t, Config{BatchWindow: -1})
	a := uploadSession(t, s)
	b := uploadSession(t, s)
	if a.ID != "feedfacefeedface" {
		t.Fatalf("first session id = %q, want the forced id", a.ID)
	}
	if b.ID == a.ID {
		t.Fatalf("collision not regenerated: both sessions hold %q", a.ID)
	}
	for _, id := range []string{a.ID, b.ID} {
		if _, ok := s.Registry().Get(id); !ok {
			t.Fatalf("session %q lost after collision handling", id)
		}
	}
}

// TestByteBoundEvictionAfterGrowth asserts Session.Bytes moves with
// mutations: inserts grow the ledger until the registry's byte bound
// evicts the idle session, without any new session registering.
func TestByteBoundEvictionAfterGrowth(t *testing.T) {
	base := estimateBytes(testRelation())
	s := newTestServer(t, Config{BatchWindow: -1, MaxBytes: 2*base + base/2, MaxSessions: 10})
	a := uploadSession(t, s)
	b := uploadSession(t, s)

	bs, _ := s.Registry().Get(b.ID)
	rng := rand.New(rand.NewSource(7))
	grewPast := false
	for i := 0; i < 40 && !grewPast; i++ {
		w := do(t, s, "POST", "/v1/datasets/"+b.ID+"/tuples",
			mutateRequest{Tuple: tupleAny(randTuple2D(rng, 2))})
		if w.Code != http.StatusCreated {
			t.Fatalf("insert %d: status %d, body %s", i, w.Code, w.Body.String())
		}
		bs.mu.Lock()
		grewPast = bs.Bytes > base+base/2 // b alone now exceeds the headroom
		bs.mu.Unlock()
	}
	if !grewPast {
		t.Fatal("40 inserts never grew the session past the eviction point")
	}
	if _, ok := s.Registry().Get(a.ID); ok {
		t.Fatal("byte bound exceeded by mutation growth, but the idle session was not evicted")
	}
	if _, ok := s.Registry().Get(b.ID); !ok {
		t.Fatal("the growing session itself was evicted")
	}
}

// TestCompactionAfterDeleteChurn drives tombstones past the compaction
// threshold and asserts the rebuilt session keeps its logical handles,
// detection results, and honest index-build accounting.
func TestCompactionAfterDeleteChurn(t *testing.T) {
	origMin := compactMinDead
	compactMinDead = 4
	defer func() { compactMinDead = origMin }()

	s := newTestServer(t, Config{BatchWindow: -1})
	info := uploadSession(t, s) // 36 tuples, all inliers
	for h := 0; h < 20; h++ {
		w := do(t, s, "DELETE", fmt.Sprintf("/v1/datasets/%s/tuples/%d", info.ID, h), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("delete %d: status %d, body %s", h, w.Code, w.Body.String())
		}
	}
	mi := decode[SessionInfo](t, do(t, s, "GET", "/v1/datasets/"+info.ID, nil))
	if mi.Compactions == 0 {
		t.Fatalf("20/36 deletes with threshold 4 never compacted: %+v", mi)
	}
	if mi.Tuples != 16 {
		t.Fatalf("live tuples = %d after 20 deletes, want 16", mi.Tuples)
	}
	if want := 2 + 2*mi.Compactions; mi.IndexBuilds != want {
		t.Fatalf("index builds = %d, want %d (2 + 2 per compaction)", mi.IndexBuilds, want)
	}

	// Handles survive compaction: deleted ones stay holes, live ones resolve.
	if w := do(t, s, "DELETE", fmt.Sprintf("/v1/datasets/%s/tuples/%d", info.ID, 3), nil); w.Code != http.StatusNotFound {
		t.Fatalf("deleted handle resolved after compaction: status %d", w.Code)
	}
	w := do(t, s, "PUT", fmt.Sprintf("/v1/datasets/%s/tuples/%d", info.ID, 30),
		mutateRequest{Tuple: []any{0.55, 0.55}})
	if w.Code != http.StatusOK {
		t.Fatalf("update of surviving handle: status %d, body %s", w.Code, w.Body.String())
	}

	// The compacted session still answers like a from-scratch build.
	rel := testRelation()
	fresh := disc.NewRelation(rel.Schema)
	for i := 20; i < 36; i++ {
		if i == 30 {
			fresh.Append(disc.Tuple{disc.Num(0.55), disc.Num(0.55)})
			continue
		}
		fresh.Append(rel.Tuples[i])
	}
	fs, err := s.Registry().Upload(context.Background(), "fresh", fresh, testParams)
	if err != nil {
		t.Fatalf("fresh rebuild: %v", err)
	}
	probes := [][]any{{0.4, 0.4}, {1.9, 1.9}, {25.0, 25.0}, {0.55, 0.55}}
	dm := decode[detectResponse](t, do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect",
		detectRequest{Tuples: probes}))
	df := decode[detectResponse](t, do(t, s, "POST", "/v1/datasets/"+fs.ID+"/detect",
		detectRequest{Tuples: probes}))
	if !reflect.DeepEqual(dm.Results, df.Results) {
		t.Fatalf("post-compaction detect diverged:\ncompacted: %+v\nrebuild:   %+v", dm.Results, df.Results)
	}
}
