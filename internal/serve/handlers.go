package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	disc "repro"
	"repro/internal/obs"
)

// Config tunes the server's capacity knobs. The zero value is usable;
// withDefaults fills the rest.
type Config struct {
	// MaxSessions bounds the registry's session count (LRU eviction;
	// default 8). MaxBytes additionally bounds the approximate resident
	// bytes across sessions (0 = unbounded).
	MaxSessions int
	MaxBytes    int64
	// TTL evicts sessions idle longer than this (0 = never).
	TTL time.Duration
	// MaxQueue bounds each session's admission queue (default 256);
	// overflow is answered 429 + Retry-After.
	MaxQueue int
	// BatchWindow is how long the dispatcher holds an open batch for
	// co-arriving requests (default 2ms; 0 coalesces only what is already
	// queued). MaxBatch caps one dispatch (default 64).
	BatchWindow time.Duration
	MaxBatch    int
	// Workers bounds each dispatch's parallelism (0 = GOMAXPROCS).
	Workers int
	// RequestBudget is the per-request save deadline applied when the
	// client sends none (default 30s). Client-requested budgets are capped
	// at this value, so one request cannot hold a queue slot forever.
	RequestBudget time.Duration
	// MaxBodyBytes caps request bodies, uploads included (default 64 MiB).
	MaxBodyBytes int64
	// SlowRequest, when positive, makes the middleware log the full span
	// breakdown (admit, queue, dispatch, save, respond, ...) of any API
	// request whose end-to-end latency reaches the threshold. 0 disables
	// the slow log; the trace ring still retains recent traces either way.
	SlowRequest time.Duration
	// DataDir, when set, makes sessions durable: each build is snapshotted
	// under this directory and a restart replays the snapshots (call
	// Server.Recover) instead of rebuilding from scratch. Empty keeps the
	// registry memory-only.
	DataDir string
	// ApproxDefault makes every session build use approximate detection
	// (sampled estimator + exact borderline refinement) even when the
	// request did not ask for it; per-request params still tune the
	// confidence.
	ApproxDefault bool
	// Logger receives structured request and lifecycle logs (nil = silent).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	} else if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestBudget <= 0 {
		c.RequestBudget = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Server is the HTTP serving layer: the session registry plus the JSON API.
type Server struct {
	cfg     Config
	log     *slog.Logger
	reg     *Registry
	handler http.Handler
	start   time.Time

	draining atomic.Bool
	// ready gates /readyz: false while a data-dir server has not finished
	// its startup snapshot replay (Recover), and false again once a drain
	// begins, so rolling deploys shift traffic before the listener dies.
	ready  atomic.Bool
	panics atomic.Int64

	// endpoints maps the API surface to its admission counters.
	endpoints map[string]*obs.EndpointStats
	// traces retains the most recent API request traces for postmortems.
	traces *obs.TraceRing
}

// traceRingSize bounds the retained request traces: enough to cover a
// burst, small enough that the ring never matters for memory.
const traceRingSize = 256

// New builds a server. Callers serve s.Handler() and must call Shutdown for
// a graceful drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		log:   obs.Logger(cfg.Logger),
		reg:   NewRegistry(cfg),
		start: time.Now(),
		endpoints: map[string]*obs.EndpointStats{
			"datasets": {}, "detect": {}, "save": {}, "repair": {}, "tuples": {},
		},
		traces: obs.NewTraceRing(traceRingSize),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleCreate)
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/datasets/{id}/detect", s.handleDetect)
	mux.HandleFunc("POST /v1/datasets/{id}/save", s.handleSave)
	mux.HandleFunc("POST /v1/datasets/{id}/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/datasets/{id}/tuples", s.handleTupleInsert)
	mux.HandleFunc("PUT /v1/datasets/{id}/tuples/{idx}", s.handleTupleUpdate)
	mux.HandleFunc("DELETE /v1/datasets/{id}/tuples/{idx}", s.handleTupleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /varz", s.handleVarz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.wrap(mux)
	// Without a data dir there is no snapshot replay to wait for; with one,
	// readiness arrives when Recover completes.
	s.ready.Store(cfg.DataDir == "")
	return s
}

// Recover replays the data directory into the registry (sessions rehydrate
// from snapshots; corrupt ones are quarantined and rebuilt from source) and
// then marks the server ready. It must run before traffic is expected —
// /readyz answers 503 until it completes. Without a DataDir it is a no-op.
// The error covers the data directory itself (unreadable, uncreatable, as
// reported at New time); individual bad snapshots never fail recovery.
func (s *Server) Recover(ctx context.Context) error {
	defer s.ready.Store(true)
	if s.reg.storeErr != nil {
		return s.reg.storeErr
	}
	return s.reg.Recover(ctx)
}

// Handler returns the middleware-wrapped API.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the session registry (embedders and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Shutdown drains gracefully: stop admitting (new mutating requests get
// 503), finish everything already queued or in flight, and return once the
// queues are empty. If ctx expires first, Shutdown returns its error with
// queues possibly non-empty — callers then simply exit.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.ready.Store(false)
	s.log.Info("serve: draining", "sessions", len(s.reg.List()))
	done := make(chan struct{})
	go func() {
		s.reg.Close()
		close(done)
	}()
	select {
	case <-done:
		s.logFinalStats()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain cut short: %w", ctx.Err())
	}
}

// logFinalStats flushes the endpoint counters once the drain completes, so
// a terminated process leaves its last numbers in the log.
func (s *Server) logFinalStats() {
	for name, es := range s.endpoints {
		snap := es.Snapshot()
		if snap.Requests == 0 {
			continue
		}
		s.log.Info("serve: final endpoint stats", "endpoint", name,
			"requests", snap.Requests, "admitted", snap.Admitted,
			"rejected", snap.Rejected, "coalesced", snap.Coalesced,
			"expired", snap.Expired, "drained", snap.Drained)
	}
}

// --- request/response schemas ---

// createRequest selects the dataset source (exactly one of csv / path /
// table1) and the constraint parameters.
type createRequest struct {
	// Name labels the session (defaults to the source).
	Name string `json:"name"`
	// CSV is an inline dataset in the disccli CSV dialect.
	CSV string `json:"csv"`
	// Path loads a dataset file on the server host (CSV, or dataset JSON
	// with its own (ε, η) defaults). Path loads are cached: same path and
	// params → same session.
	Path string `json:"path"`
	// Table1 instantiates a synthetic Table 1 dataset by name, at Scale
	// (default 1) with Seed.
	Table1 string  `json:"table1"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`

	Eps      float64 `json:"eps"`
	Eta      int     `json:"eta"`
	Kappa    int     `json:"kappa"`
	MaxNodes int     `json:"max_nodes"`
	// Index selects the neighbor index kind: "auto" (default), "brute",
	// "grid", "kd" or "vp".
	Index string `json:"index"`
	// Approx switches the build-time detection pass to the sampled
	// estimator with exact borderline refinement; ApproxConfidence tunes
	// its certificate confidence (0 = default 0.999).
	Approx           bool    `json:"approx"`
	ApproxConfidence float64 `json:"approx_confidence"`
}

// mutateRequest carries one tuple for POST .../tuples (insert) and
// PUT .../tuples/{idx} (update); DELETE takes no body.
type mutateRequest struct {
	Tuple     []any `json:"tuple"`
	TimeoutMS int   `json:"timeout_ms"`
}

type detectRequest struct {
	Tuples [][]any `json:"tuples"`
	// Member declares the query tuples to be rows of the session's dataset
	// (a remote client re-screening its own data): each tuple's stored copy
	// is excluded from its neighbor count, matching detection semantics.
	// Without it a member tuple counts itself and can pass the η threshold
	// spuriously.
	Member bool `json:"member"`
}

type detectResponse struct {
	Eps     float64        `json:"eps"`
	Eta     int            `json:"eta"`
	Results []detectResult `json:"results"`
}

type detectResult struct {
	Neighbors int  `json:"neighbors"`
	Outlier   bool `json:"outlier"`
}

type saveRequest struct {
	Tuple     []any `json:"tuple"`
	TimeoutMS int   `json:"timeout_ms"`
}

type repairRequest struct {
	Tuples    [][]any `json:"tuples"`
	TimeoutMS int     `json:"timeout_ms"`
}

type adjustmentJSON struct {
	Saved     bool     `json:"saved"`
	Natural   bool     `json:"natural"`
	Exhausted bool     `json:"exhausted"`
	Cost      float64  `json:"cost"`
	Tuple     []any    `json:"tuple,omitempty"`
	Adjusted  []string `json:"adjusted,omitempty"`
	Nodes     int      `json:"nodes"`
}

type repairResponse struct {
	Adjustments []adjustmentJSON `json:"adjustments"`
	Saved       int              `json:"saved"`
	Natural     int              `json:"natural"`
	Exhausted   int              `json:"exhausted"`
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// --- handlers ---

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	s.endpoints["datasets"].Requests.Add(1)
	if s.refuseDraining(w, r) {
		return
	}
	var (
		sess *Session
		err  error
	)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "text/csv") {
		// Raw CSV body; params ride in the query string.
		q := r.URL.Query()
		p := BuildParams{Kappa: 2}
		p.Eps, _ = strconv.ParseFloat(q.Get("eps"), 64)
		p.Eta, _ = strconv.Atoi(q.Get("eta"))
		if k := q.Get("kappa"); k != "" {
			p.Kappa, _ = strconv.Atoi(k)
		}
		p.Index = q.Get("index")
		p.Approx = q.Get("approx") == "1" || q.Get("approx") == "true"
		p.ApproxConfidence, _ = strconv.ParseFloat(q.Get("approx_confidence"), 64)
		rel, rerr := disc.ReadCSV(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if rerr != nil {
			var mbe *http.MaxBytesError
			if errors.As(rerr, &mbe) {
				s.writeErr(w, r, http.StatusRequestEntityTooLarge,
					fmt.Errorf("serve: request body exceeds %d bytes", s.cfg.MaxBodyBytes))
				return
			}
			s.writeErr(w, r, http.StatusBadRequest, rerr)
			return
		}
		name := q.Get("name")
		if name == "" {
			name = "upload.csv"
		}
		sess, err = s.reg.Upload(r.Context(), name, rel, p)
	} else {
		var req createRequest
		if !s.decodeJSON(w, r, &req) {
			return
		}
		sources := 0
		for _, set := range []bool{req.CSV != "", req.Path != "", req.Table1 != ""} {
			if set {
				sources++
			}
		}
		if sources != 1 {
			s.writeErr(w, r, http.StatusBadRequest,
				errors.New("serve: exactly one of csv, path or table1 must be set"))
			return
		}
		p := BuildParams{Eps: req.Eps, Eta: req.Eta, Kappa: req.Kappa, MaxNodes: req.MaxNodes, Seed: req.Seed, Index: req.Index,
			Approx: req.Approx, ApproxConfidence: req.ApproxConfidence}
		switch {
		case req.Path != "":
			sess, err = s.reg.OpenPath(r.Context(), req.Path, p)
		case req.Table1 != "":
			scale := req.Scale
			if scale <= 0 {
				scale = 1
			}
			ds, derr := disc.Table1(req.Table1, scale, req.Seed)
			if derr != nil {
				s.writeErr(w, r, http.StatusBadRequest, derr)
				return
			}
			if p.Eps <= 0 {
				p.Eps = ds.Eps
			}
			if p.Eta < 1 {
				p.Eta = ds.Eta
			}
			name := req.Name
			if name == "" {
				name = fmt.Sprintf("table1:%s@%g", req.Table1, scale)
			}
			sess, err = s.reg.Upload(r.Context(), name, ds.Rel, p)
		default:
			rel, rerr := disc.ReadCSV(strings.NewReader(req.CSV))
			if rerr != nil {
				s.writeErr(w, r, http.StatusBadRequest, rerr)
				return
			}
			name := req.Name
			if name == "" {
				name = "upload.csv"
			}
			sess, err = s.reg.Upload(r.Context(), name, rel, p)
		}
	}
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, errClosed) {
			status = http.StatusServiceUnavailable
		} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		s.writeErr(w, r, status, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, sess.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.List()
	infos := make([]SessionInfo, len(sessions))
	for i, sess := range sessions {
		infos[i] = sess.Info()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Delete(r.PathValue("id")) {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDetect is the cheap always-on screen: count ε-neighbors of each
// query tuple against the cached full-relation index — no search, no
// queueing, just range queries.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	s.endpoints["detect"].Requests.Add(1)
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	var req detectRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Tuples) == 0 {
		s.writeErr(w, r, http.StatusBadRequest, errors.New("serve: tuples must be non-empty"))
		return
	}
	tuples := make([]disc.Tuple, len(req.Tuples))
	for i, raw := range req.Tuples {
		t, err := parseTuple(sess.schema, raw)
		if err != nil {
			s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("serve: tuple %d: %w", i, err))
			return
		}
		tuples[i] = t
	}
	// One counting view per request: the counters are goroutine-owned
	// while the queries run, then merged into the session — the cached
	// index answers, and the traffic proves it. The state read-lock keeps
	// the queries consistent against concurrent mutations.
	var qc disc.IndexCounters
	resp := detectResponse{Eps: sess.Cons.Eps, Eta: sess.Cons.Eta,
		Results: make([]detectResult, len(tuples))}
	sess.stateMu.RLock()
	view := disc.CountingIndex(sess.RelIdx, &qc)
	for i, t := range tuples {
		// cap at η: the split only needs "≥ η or not", so the count stops
		// early exactly like the detection pass would. Member tuples match
		// their own stored copy, so the cap grows by one and the self-match
		// is subtracted back out.
		capN := sess.Cons.Eta
		if req.Member {
			capN++
		}
		n := view.CountWithin(t, sess.Cons.Eps, -1, capN)
		if req.Member && n > 0 {
			n--
		}
		resp.Results[i] = detectResult{Neighbors: n, Outlier: n < sess.Cons.Eta}
	}
	sess.stateMu.RUnlock()
	var st obs.SearchStats
	st.KNNQueries = qc.KNNQueries
	st.RangeQueries = qc.RangeQueries
	st.DistEvals = qc.DistEvals
	st.GridFallbacks = qc.GridFallbacks
	sess.addStats(&st, 0, int64(len(req.Tuples)))
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSave repairs one tuple through the session's batcher.
func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	hStart := time.Now()
	tr := obs.TraceFrom(r.Context())
	es := s.endpoints["save"]
	es.Requests.Add(1)
	if s.refuseDraining(w, r) {
		return
	}
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	var req saveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	t, err := parseTuple(sess.schema, req.Tuple)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	sreq := &saveReq{ctx: ctx, tuple: t, res: make(chan saveRes, 1), es: es, ep: "save"}
	if err := sess.batcher.admit(sreq); err != nil {
		s.writeAdmitErr(w, r, err)
		return
	}
	// The admit span covers decode, tuple parsing and queue admission —
	// everything between route match and the request entering the queue.
	tr.Span("admit", hStart)
	select {
	case res := <-sreq.res:
		if res.err != nil {
			s.writeErr(w, r, http.StatusGatewayTimeout, res.err)
			return
		}
		rs := time.Now()
		s.writeJSON(w, http.StatusOK, adjustmentToJSON(sess.schema, res.adj))
		tr.Span("respond", rs)
	case <-ctx.Done():
		// The dispatcher will still answer the buffered channel; this
		// request just stops waiting.
		s.writeErr(w, r, http.StatusGatewayTimeout,
			fmt.Errorf("serve: request deadline exceeded: %w", ctx.Err()))
	}
}

// handleRepair batches many tuples through the same admission path;
// admission is all-or-nothing so a 429 never splits a batch.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	hStart := time.Now()
	tr := obs.TraceFrom(r.Context())
	es := s.endpoints["repair"]
	es.Requests.Add(1)
	if s.refuseDraining(w, r) {
		return
	}
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	var req repairRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Tuples) == 0 {
		s.writeErr(w, r, http.StatusBadRequest, errors.New("serve: tuples must be non-empty"))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	reqs := make([]*saveReq, len(req.Tuples))
	for i, raw := range req.Tuples {
		t, err := parseTuple(sess.schema, raw)
		if err != nil {
			s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("serve: tuple %d: %w", i, err))
			return
		}
		reqs[i] = &saveReq{ctx: ctx, tuple: t, res: make(chan saveRes, 1), es: es, ep: "repair"}
	}
	if err := sess.batcher.admit(reqs...); err != nil {
		s.writeAdmitErr(w, r, err)
		return
	}
	tr.Span("admit", hStart)
	rs := time.Now()
	resp := repairResponse{Adjustments: make([]adjustmentJSON, len(reqs))}
	for i, sr := range reqs {
		select {
		case res := <-sr.res:
			if res.err != nil {
				s.writeErr(w, r, http.StatusGatewayTimeout,
					fmt.Errorf("serve: tuple %d: %w", i, res.err))
				return
			}
			aj := adjustmentToJSON(sess.schema, res.adj)
			resp.Adjustments[i] = aj
			switch {
			case aj.Saved:
				resp.Saved++
			case aj.Natural:
				resp.Natural++
			}
			if aj.Exhausted {
				resp.Exhausted++
			}
		case <-ctx.Done():
			s.writeErr(w, r, http.StatusGatewayTimeout,
				fmt.Errorf("serve: request deadline exceeded after %d/%d tuples: %w", i, len(reqs), ctx.Err()))
			return
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
	// One respond span for the whole gather: repair answers arrive
	// per-tuple, so the span covers waiting for and encoding all of them.
	tr.Span("respond", rs)
}

// handleTupleInsert appends one tuple to the session's live dataset,
// maintaining the indexes and detection state incrementally. The mutation
// rides the session's batcher queue, so it serializes against admitted
// detect/save work. Answers 201 with the new row's logical handle.
func (s *Server) handleTupleInsert(w http.ResponseWriter, r *http.Request) {
	es := s.endpoints["tuples"]
	es.Requests.Add(1)
	if s.refuseDraining(w, r) {
		return
	}
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	var req mutateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	t, err := parseTuple(sess.schema, req.Tuple)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	s.runMutation(w, r, sess, &mutation{op: "insert", tuple: t}, req.TimeoutMS, http.StatusCreated)
}

// handleTupleUpdate replaces the tuple at a logical row handle (tombstone
// the old value, append the new one; the handle follows the new value).
func (s *Server) handleTupleUpdate(w http.ResponseWriter, r *http.Request) {
	es := s.endpoints["tuples"]
	es.Requests.Add(1)
	if s.refuseDraining(w, r) {
		return
	}
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("serve: bad row index %q", r.PathValue("idx")))
		return
	}
	var req mutateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	t, perr := parseTuple(sess.schema, req.Tuple)
	if perr != nil {
		s.writeErr(w, r, http.StatusBadRequest, perr)
		return
	}
	s.runMutation(w, r, sess, &mutation{op: "update", index: idx, tuple: t}, req.TimeoutMS, http.StatusOK)
}

// handleTupleDelete tombstones the tuple at a logical row handle. The
// handle becomes a hole; other handles are unaffected.
func (s *Server) handleTupleDelete(w http.ResponseWriter, r *http.Request) {
	es := s.endpoints["tuples"]
	es.Requests.Add(1)
	if s.refuseDraining(w, r) {
		return
	}
	sess, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, r, http.StatusNotFound, fmt.Errorf("serve: no session %q", r.PathValue("id")))
		return
	}
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("serve: bad row index %q", r.PathValue("idx")))
		return
	}
	s.runMutation(w, r, sess, &mutation{op: "delete", index: idx}, 0, http.StatusOK)
}

// runMutation admits one mutation through the session's batcher and waits
// for its answer, sharing handleSave's deadline and error mapping.
func (s *Server) runMutation(w http.ResponseWriter, r *http.Request, sess *Session, m *mutation, timeoutMS, okStatus int) {
	hStart := time.Now()
	tr := obs.TraceFrom(r.Context())
	ctx, cancel := s.requestCtx(r, timeoutMS)
	defer cancel()
	sreq := &saveReq{ctx: ctx, mut: m, res: make(chan saveRes, 1), es: s.endpoints["tuples"], ep: "tuples"}
	if err := sess.batcher.admit(sreq); err != nil {
		s.writeAdmitErr(w, r, err)
		return
	}
	tr.Span("admit", hStart)
	select {
	case res := <-sreq.res:
		if res.err != nil {
			status := http.StatusGatewayTimeout
			if errors.Is(res.err, errNoSuchRow) {
				status = http.StatusNotFound
			}
			s.writeErr(w, r, status, res.err)
			return
		}
		rs := time.Now()
		s.writeJSON(w, okStatus, res.mres)
		tr.Span("respond", rs)
	case <-ctx.Done():
		s.writeErr(w, r, http.StatusGatewayTimeout,
			fmt.Errorf("serve: request deadline exceeded: %w", ctx.Err()))
	}
}

// handleHealthz is the legacy combined probe, kept for existing monitors;
// /livez and /readyz are the split it predates.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Load balancers stop routing to a draining replica.
		status, code = "draining", http.StatusServiceUnavailable
	}
	count, _, _, _ := s.reg.Stats()
	s.writeJSON(w, code, map[string]any{
		"status":   status,
		"sessions": count,
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleLivez answers 200 whenever the process can serve HTTP at all — a
// restart fixes nothing a liveness probe can see here, so it never goes
// unhealthy short of the process dying.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleReadyz answers whether the replica should receive traffic: 503
// while the startup snapshot replay is still running and again once a drain
// has begun, 200 in between.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case !s.ready.Load():
		status, code = "recovering", http.StatusServiceUnavailable
	}
	count, _, _, _ := s.reg.Stats()
	s.writeJSON(w, code, map[string]any{
		"status":   status,
		"sessions": count,
	})
}

// handleVarz exports every counter the server keeps: endpoint admission
// stats, registry capacity state, and the per-session SearchStats and
// PhaseTimings of the DISC pipeline (docs/OBSERVABILITY.md).
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	count, bytes, evicted, expired := s.reg.Stats()
	endpoints := make(map[string]obs.EndpointSnapshot, len(s.endpoints))
	for name, es := range s.endpoints {
		endpoints[name] = es.Snapshot()
	}
	sessions := s.reg.List()
	infos := make([]SessionInfo, len(sessions))
	for i, sess := range sessions {
		infos[i] = sess.Info()
	}
	vars := map[string]any{
		"uptime_s":         time.Since(s.start).Seconds(),
		"ready":            s.ready.Load(),
		"draining":         s.draining.Load(),
		"panics_recovered": s.panics.Load(),
		"registry": map[string]any{
			"sessions":     count,
			"bytes":        bytes,
			"max_sessions": s.cfg.MaxSessions,
			"max_bytes":    s.cfg.MaxBytes,
			"evicted":      evicted,
			"expired":      expired,
		},
		"endpoints": endpoints,
		"sessions":  infos,
		// hists is the global half of the per-session/global histogram
		// pair: queue wait, batch size, save latency and nodes, and
		// re-detection footprint across every session this process served.
		"hists":  s.reg.hists.Snapshot(),
		"traces": s.traces.Total(),
	}
	if st := s.reg.store; st != nil {
		vars["store"] = map[string]any{
			"data_dir": st.Dir(),
			"stats":    st.Stats(),
		}
	}
	s.writeJSON(w, http.StatusOK, vars)
}

// --- plumbing ---

// decodeJSON reads one JSON request body into v with the full hardening
// set: the body is capped at MaxBodyBytes (413, not a mid-stream decode
// error), unknown fields are rejected (a typoed "kapa" should fail loudly,
// not silently use the default), and trailing garbage after the value is a
// 400. It writes the error response itself and reports whether the handler
// should continue.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil && dec.More() {
		err = errors.New("trailing data after JSON value")
	}
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.writeErr(w, r, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return false
	}
	s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("serve: decoding request: %w", err))
	return false
}

// requestCtx derives the per-request save deadline: the client's timeout_ms
// capped by the server's RequestBudget, on top of the connection context.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	budget := s.cfg.RequestBudget
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	return context.WithTimeout(r.Context(), budget)
}

// refuseDraining answers 503 + Retry-After on mutating endpoints once the
// drain has begun; reads stay available until the listener closes.
func (s *Server) refuseDraining(w http.ResponseWriter, r *http.Request) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	s.writeErr(w, r, http.StatusServiceUnavailable, errClosed)
	return true
}

// writeAdmitErr maps admission failures: queue overflow → 429 with a
// Retry-After hinting one batch window, drain → 503.
func (s *Server) writeAdmitErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		retry := int(math.Ceil(math.Max(s.cfg.BatchWindow.Seconds(), 1)))
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.writeErr(w, r, http.StatusTooManyRequests, err)
	case errors.Is(err, errClosed):
		w.Header().Set("Retry-After", "1")
		s.writeErr(w, r, http.StatusServiceUnavailable, err)
	default:
		s.writeErr(w, r, http.StatusInternalServerError, err)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Warn("serve: encoding response", "err", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.writeJSON(w, status, errorJSON{Error: err.Error(), RequestID: requestIDFrom(r.Context())})
}

// parseTuple decodes one JSON tuple ([1.5, "abc", ...]) against the
// session's schema: numbers for numeric attributes, strings for text.
func parseTuple(sch *disc.Schema, raw []any) (disc.Tuple, error) {
	if len(raw) != sch.M() {
		return nil, fmt.Errorf("serve: tuple has %d values, schema has %d attributes", len(raw), sch.M())
	}
	t := make(disc.Tuple, len(raw))
	for i, v := range raw {
		if sch.Attrs[i].Kind == disc.Text {
			sv, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("serve: attribute %q is text, got %T", sch.Attrs[i].Name, v)
			}
			t[i] = disc.Str(sv)
			continue
		}
		fv, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("serve: attribute %q is numeric, got %T", sch.Attrs[i].Name, v)
		}
		if math.IsNaN(fv) || math.IsInf(fv, 0) {
			return nil, fmt.Errorf("serve: attribute %q is not finite", sch.Attrs[i].Name)
		}
		t[i] = disc.Num(fv)
	}
	return t, nil
}

// tupleToJSON is parseTuple's inverse.
func tupleToJSON(sch *disc.Schema, t disc.Tuple) []any {
	out := make([]any, len(t))
	for i := range t {
		if sch.Attrs[i].Kind == disc.Text {
			out[i] = t[i].Str
		} else {
			out[i] = t[i].Num
		}
	}
	return out
}

// adjustmentToJSON shapes one Adjustment for the wire. Cost is emitted only
// for saved tuples — an unsaved adjustment's +Inf cost is not a JSON value.
func adjustmentToJSON(sch *disc.Schema, adj disc.Adjustment) adjustmentJSON {
	aj := adjustmentJSON{
		Saved:     adj.Saved(),
		Natural:   adj.Natural,
		Exhausted: adj.Exhausted,
		Nodes:     adj.Nodes,
	}
	if adj.Saved() {
		aj.Cost = adj.Cost
		aj.Tuple = tupleToJSON(sch, adj.Tuple)
		for _, a := range adj.Adjusted.Attrs(sch.M()) {
			aj.Adjusted = append(aj.Adjusted, sch.Attrs[a].Name)
		}
	}
	return aj
}
