package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/obs"
)

// ctxKey keys the values this package stores in request contexts.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestIDFrom returns the request ID installed by the middleware, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// statusWriter captures the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// endpointOf classifies a request path onto the endpoint-stats key the
// handlers use, "" for paths outside the API surface (health, varz,
// metrics).
func endpointOf(path string) string {
	if !strings.HasPrefix(path, "/v1/datasets") {
		return ""
	}
	switch {
	case strings.HasSuffix(path, "/detect"):
		return "detect"
	case strings.HasSuffix(path, "/save"):
		return "save"
	case strings.HasSuffix(path, "/repair"):
		return "repair"
	case strings.Contains(path, "/tuples"):
		return "tuples"
	default:
		return "datasets"
	}
}

// wrap layers the middleware: request ID assignment, request-scoped trace,
// panic recovery, latency recording and request logging, outermost first.
func (s *Server) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Request ID: honor the client's (proxies and the retrying client
		// propagate one, correlating attempts of the same logical call),
		// mint otherwise, echo it back either way.
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)

		// API requests get a trace; probe and scrape paths do not, so the
		// ring holds real work, not /metrics polls.
		ep := endpointOf(r.URL.Path)
		var tr *obs.Trace
		if ep != "" {
			tr = obs.NewTrace(id)
			ctx = obs.ContextWithTrace(ctx, tr)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.log.Error("serve: panic in handler", "request_id", id,
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if sw.status == 0 {
					// Headers not sent yet: answer a proper 500. Otherwise
					// the response is already on the wire; just cut it off.
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					json.NewEncoder(sw).Encode(errorJSON{
						Error:     "internal server error",
						RequestID: id,
					})
				}
			}
			dur := time.Since(start)
			if ep != "" {
				s.endpoints[ep].Latency.Observe(int64(dur))
			}
			if tr != nil {
				s.traces.Add(tr)
				if thr := s.cfg.SlowRequest; thr > 0 && dur >= thr {
					s.log.Warn("serve: slow request", "request_id", id,
						"method", r.Method, "path", r.URL.Path,
						"status", sw.status, "dur", dur.Round(time.Microsecond),
						"spans", tr.Breakdown())
				}
			}
			s.log.Info("serve: request", "request_id", id,
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "dur", dur.Round(time.Microsecond))
		}()
		next.ServeHTTP(sw, r)
	})
}
