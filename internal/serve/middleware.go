package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// ctxKey keys the values this package stores in request contexts.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestIDFrom returns the request ID installed by the middleware, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// statusWriter captures the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// wrap layers the middleware: request ID assignment, panic recovery, and
// request logging, outermost first.
func (s *Server) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Request ID: honor the client's (proxies propagate one), mint
		// otherwise, echo it back either way.
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			var buf [8]byte
			rand.Read(buf[:])
			id = hex.EncodeToString(buf[:])
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.log.Error("serve: panic in handler", "request_id", id,
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if sw.status == 0 {
					// Headers not sent yet: answer a proper 500. Otherwise
					// the response is already on the wire; just cut it off.
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					json.NewEncoder(sw).Encode(errorJSON{
						Error:     "internal server error",
						RequestID: id,
					})
				}
			}
			s.log.Info("serve: request", "request_id", id,
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "dur", time.Since(start).Round(time.Microsecond))
		}()
		next.ServeHTTP(sw, r)
	})
}
