package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	disc "repro"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// testDataset builds a deterministic 2-attr relation: one dense 6x6 grid
// cluster (every point has well over eta neighbors at eps=1) plus six
// isolated outliers, returned as CSV plus the rows as request tuples.
func testDataset(t *testing.T) (csv string, tuples [][]any, outliers [][]any) {
	t.Helper()
	rel := data.NewRelation(data.NewNumericSchema("x", "y"))
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			rel.Append(data.Tuple{data.Num(float64(i) * 0.4), data.Num(float64(j) * 0.4)})
		}
	}
	iso := [][2]float64{{20, 20}, {30, -10}, {-25, 5}, {40, 40}, {-30, -30}, {15, -35}}
	for _, p := range iso {
		rel.Append(data.Tuple{data.Num(p[0]), data.Num(p[1])})
	}
	var buf bytes.Buffer
	if err := disc.WriteCSV(&buf, rel); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	tuples = make([][]any, rel.N())
	for i, tp := range rel.Tuples {
		tuples[i] = []any{tp[0].Num, tp[1].Num}
	}
	for _, p := range iso {
		outliers = append(outliers, []any{p[0], p[1]})
	}
	return buf.String(), tuples, outliers
}

// fleet is the single-process substrate: n real serve.Server registries
// behind httptest listeners.
type fleet struct {
	urls    []string
	servers []*httptest.Server
	workers []*serve.Server
}

func startFleet(t *testing.T, n int) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{MaxSessions: 16})
		ts := httptest.NewServer(srv.Handler())
		f.urls = append(f.urls, ts.URL)
		f.servers = append(f.servers, ts)
		f.workers = append(f.workers, srv)
	}
	t.Cleanup(func() {
		for i := range f.servers {
			f.servers[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			f.workers[i].Shutdown(ctx)
			cancel()
		}
	})
	return f
}

// kill closes the worker at url so calls to it fail at the TCP layer.
func (f *fleet) kill(t *testing.T, url string) {
	t.Helper()
	for i, u := range f.urls {
		if u == url {
			f.servers[i].Close()
			return
		}
	}
	t.Fatalf("kill: unknown worker %q", url)
}

func startCoord(t *testing.T, f *fleet, replicas int) (*Coordinator, *httptest.Server, *client.Client) {
	t.Helper()
	co, err := New(Config{Workers: f.urls, Replicas: replicas, RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("New coordinator: %v", err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	cl := client.New(client.Config{BaseURL: ts.URL, MaxRetries: -1, RequestTimeout: 10 * time.Second})
	return co, ts, cl
}

// rawPost posts a JSON body without the retrying client, for asserting
// exact status codes.
func rawPost(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func rawGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

var testParams = client.Params{Eps: 1, Eta: 3, Kappa: 2}

// TestCoordinatorEndToEnd drives the whole proxied surface against a
// 3-worker fleet and checks every answer against a plain single worker
// serving the same dataset: scatter/gather over full replicas must be
// invisible to the caller.
func TestCoordinatorEndToEnd(t *testing.T) {
	ctx := context.Background()
	csv, tuples, outliers := testDataset(t)
	f := startFleet(t, 3)
	co, _, cl := startCoord(t, f, 2)

	// Baseline: the same dataset on a lone worker, called directly.
	base := client.New(client.Config{BaseURL: f.urls[0], MaxRetries: -1})
	baseInfo, err := base.CreateDatasetCSV(ctx, "baseline", csv, testParams)
	if err != nil {
		t.Fatalf("baseline create: %v", err)
	}

	info, err := cl.CreateDatasetCSV(ctx, "e2e", csv, testParams)
	if err != nil {
		t.Fatalf("coordinated create: %v", err)
	}
	if !strings.HasPrefix(info.ID, "g-") {
		t.Errorf("placement id = %q, want g- prefix", info.ID)
	}
	if info.Tuples != len(tuples) {
		t.Errorf("created session has %d tuples, want %d", info.Tuples, len(tuples))
	}
	p, ok := co.placementOf(info.ID)
	if !ok || len(p.Owners) != 2 {
		t.Fatalf("placement %q has owners %+v, want 2", info.ID, p)
	}
	if snap := co.Stats(); snap.PlacementsCreated != 1 || snap.PlacementsDegraded != 0 {
		t.Errorf("placement counters = %+v, want created=1 degraded=0", snap)
	}

	// Detect, member mode, over every row: chunked across two owners yet
	// bit-identical to the single-node answer.
	want, err := base.Detect(ctx, baseInfo.ID, tuples, true)
	if err != nil {
		t.Fatalf("baseline detect: %v", err)
	}
	got, err := cl.Detect(ctx, info.ID, tuples, true)
	if err != nil {
		t.Fatalf("coordinated detect: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("coordinated detect diverged:\n got %+v\nwant %+v", got, want)
	}
	nOut := 0
	for _, res := range got.Results {
		if res.Outlier {
			nOut++
		}
	}
	if nOut != len(outliers) {
		t.Fatalf("detected %d outliers, want %d", nOut, len(outliers))
	}

	// Repair the outliers: merged adjustments equal the single-node run.
	wantRep, err := base.Repair(ctx, baseInfo.ID, outliers, 0)
	if err != nil {
		t.Fatalf("baseline repair: %v", err)
	}
	gotRep, err := cl.Repair(ctx, info.ID, outliers, 0)
	if err != nil {
		t.Fatalf("coordinated repair: %v", err)
	}
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Fatalf("coordinated repair diverged:\n got %+v\nwant %+v", gotRep, wantRep)
	}
	if snap := co.Stats(); snap.Scatters != 2 || snap.ScatterChunks != 4 {
		t.Errorf("scatter counters = %+v, want 2 scatters / 4 chunks", snap)
	}

	// Single-tuple save proxies with the same answer.
	wantAdj, err := base.SaveTuple(ctx, baseInfo.ID, outliers[0], 0)
	if err != nil {
		t.Fatalf("baseline save: %v", err)
	}
	gotAdj, err := cl.SaveTuple(ctx, info.ID, outliers[0], 0)
	if err != nil {
		t.Fatalf("coordinated save: %v", err)
	}
	if !reflect.DeepEqual(gotAdj, wantAdj) {
		t.Fatalf("coordinated save diverged: %+v vs %+v", gotAdj, wantAdj)
	}

	// The merged session view sums owner work: two owners each served a
	// detect chunk, so merged detects cover every tuple exactly once.
	merged, err := cl.Session(ctx, info.ID)
	if err != nil {
		t.Fatalf("coordinated session get: %v", err)
	}
	if merged.ID != info.ID {
		t.Errorf("merged info id = %q, want %q", merged.ID, info.ID)
	}
	if merged.Detects != int64(len(tuples)) {
		t.Errorf("merged detects = %d, want %d", merged.Detects, len(tuples))
	}
	if merged.Stats.Nodes == 0 {
		t.Error("merged SearchStats.Nodes = 0 after repairs")
	}

	// Delete removes the placement and every replica.
	if err := cl.Delete(ctx, info.ID); err != nil {
		t.Fatalf("coordinated delete: %v", err)
	}
	if _, err := cl.Session(ctx, info.ID); err == nil {
		t.Fatal("session still answers after delete")
	}
	// Only the directly-created baseline session (worker 0) survives.
	total := 0
	for _, w := range f.workers {
		total += len(w.Registry().List())
	}
	if total != 1 {
		t.Errorf("workers hold %d sessions after delete, want only the baseline", total)
	}
}

// TestCoordinatorFailoverAfterWorkerLoss kills one owner of a placement
// and asserts the coordinator keeps answering in full via the surviving
// replica, counts the failover, reports the degradation in /varz, and
// answers 503 only once the second (last) owner dies too.
func TestCoordinatorFailoverAfterWorkerLoss(t *testing.T) {
	ctx := context.Background()
	csv, tuples, outliers := testDataset(t)
	f := startFleet(t, 3)
	co, cts, cl := startCoord(t, f, 2)

	info, err := cl.CreateDatasetCSV(ctx, "failover", csv, testParams)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	clean, err := cl.Repair(ctx, info.ID, outliers, 0)
	if err != nil {
		t.Fatalf("repair before loss: %v", err)
	}

	p, _ := co.placementOf(info.ID)
	f.kill(t, p.Owners[0].URL)

	// Detect and repair still answer, in full, via the survivor.
	det, err := cl.Detect(ctx, info.ID, tuples, true)
	if err != nil {
		t.Fatalf("detect after killing owner: %v", err)
	}
	if len(det.Results) != len(tuples) {
		t.Fatalf("detect after loss returned %d results, want %d", len(det.Results), len(tuples))
	}
	rep, err := cl.Repair(ctx, info.ID, outliers, 0)
	if err != nil {
		t.Fatalf("repair after killing owner: %v", err)
	}
	if !reflect.DeepEqual(rep, clean) {
		t.Fatalf("repair after loss diverged:\n got %+v\nwant %+v", rep, clean)
	}
	snap := co.Stats()
	if snap.Failovers == 0 || snap.WorkerErrors == 0 {
		t.Errorf("loss left no trace: %+v, want failovers>0 worker_errors>0", snap)
	}
	if snap.ChunkFailures != 0 {
		t.Errorf("chunk failures = %d with a live replica, want 0", snap.ChunkFailures)
	}

	// /varz reports the placement degraded, with merged per-owner stats.
	var varz struct {
		Coord      obs.CoordSnapshot             `json:"coord"`
		Workers    map[string]obs.ClientSnapshot `json:"workers"`
		Placements []struct {
			ID     string `json:"id"`
			Owners []struct {
				Worker string           `json:"worker"`
				Live   bool             `json:"live"`
				Stats  *obs.SearchStats `json:"stats"`
			} `json:"owners"`
			Stats    obs.SearchStats `json:"stats"`
			Degraded bool            `json:"degraded"`
		} `json:"placements"`
	}
	status, body := rawGet(t, cts.URL+"/varz")
	if status != http.StatusOK {
		t.Fatalf("/varz status %d", status)
	}
	if err := json.Unmarshal(body, &varz); err != nil {
		t.Fatalf("/varz decode: %v", err)
	}
	if len(varz.Placements) != 1 || !varz.Placements[0].Degraded {
		t.Fatalf("/varz placements = %+v, want one degraded placement", varz.Placements)
	}
	if varz.Placements[0].Stats.Nodes == 0 {
		t.Error("/varz merged placement stats are empty after repairs")
	}
	live := 0
	for _, o := range varz.Placements[0].Owners {
		if o.Live {
			live++
			if o.Stats == nil {
				t.Error("/varz live owner carries no stats")
			}
		}
	}
	if live != 1 {
		t.Errorf("/varz live owners = %d, want 1", live)
	}
	if varz.Coord.Failovers == 0 {
		t.Error("/varz coord.failovers = 0 after a failover")
	}

	// /metrics is valid exposition text and carries the labeled families.
	status, body = rawGet(t, cts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if _, err := obs.ParseProm(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid exposition text: %v", err)
	}
	for _, want := range []string{
		"disc_coord_failovers_total",
		"disc_coord_worker_client_requests_total{worker=",
		"disc_coord_shard_search_nodes_total{session=",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// Kill the last owner: now every answer is an honest 503.
	f.kill(t, p.Owners[1].URL)
	status, _ = rawPost(t, cts.URL+"/v1/datasets/"+info.ID+"/repair",
		map[string]any{"tuples": outliers})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("repair with all owners dead: status %d, want 503", status)
	}
	status, _ = rawPost(t, cts.URL+"/v1/datasets/"+info.ID+"/save",
		map[string]any{"tuple": outliers[0]})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("save with all owners dead: status %d, want 503", status)
	}
	status, _ = rawGet(t, cts.URL+"/v1/datasets/"+info.ID)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("get with all owners dead: status %d, want 503", status)
	}
	if snap := co.Stats(); snap.ChunkFailures == 0 || snap.PartialResponses != 0 {
		t.Errorf("all-owners-lost counters = %+v, want chunk_failures>0 partial_responses=0", snap)
	}
}

// TestCoordinatorChaosKilledChunk kills exactly one chunk dispatch
// mid-scatter via the shard.dispatch fault site and asserts the partial
// contract: a 200 with the surviving chunk's results intact, the lost
// range marked with sentinel entries and a chunk error, and no hang.
func TestCoordinatorChaosKilledChunk(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	csv, tuples, _ := testDataset(t)
	f := startFleet(t, 3)
	co, cts, cl := startCoord(t, f, 2)
	info, err := cl.CreateDatasetCSV(ctx, "chaos", csv, testParams)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	want, err := cl.Detect(ctx, info.ID, tuples, true)
	if err != nil {
		t.Fatalf("clean detect: %v", err)
	}

	boom := errors.New("injected chunk loss")
	var n atomic.Int64
	fault.SetHook(fault.ShardDispatch, func() error {
		if n.Add(1) == 2 {
			return boom
		}
		return nil
	})
	done := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(done)
		status, body = rawPost(t, cts.URL+"/v1/datasets/"+info.ID+"/detect",
			map[string]any{"tuples": tuples, "member": true})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("scatter hung after a killed chunk")
	}
	fault.Reset()
	if status != http.StatusOK {
		t.Fatalf("partial detect status %d, want 200: %s", status, body)
	}
	var resp struct {
		Results []client.DetectResult `json:"results"`
		Partial bool                  `json:"partial"`
		Errors  []struct {
			Chunk int    `json:"chunk"`
			From  int    `json:"from"`
			To    int    `json:"to"`
			Error string `json:"error"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding partial response: %v", err)
	}
	if !resp.Partial || len(resp.Errors) != 1 {
		t.Fatalf("partial=%v errors=%+v, want one lost chunk", resp.Partial, resp.Errors)
	}
	ce := resp.Errors[0]
	if !strings.Contains(ce.Error, boom.Error()) {
		t.Errorf("chunk error %q does not carry the injected fault", ce.Error)
	}
	for i, res := range resp.Results {
		if i >= ce.From && i < ce.To {
			if res.Neighbors != -1 {
				t.Fatalf("lost tuple %d has neighbors=%d, want sentinel -1", i, res.Neighbors)
			}
		} else if !reflect.DeepEqual(res, want.Results[i]) {
			t.Fatalf("surviving tuple %d diverged: %+v vs %+v", i, res, want.Results[i])
		}
	}
	snap := co.Stats()
	if snap.ChunkFailures != 1 || snap.PartialResponses != 1 {
		t.Errorf("chaos counters = %+v, want chunk_failures=1 partial_responses=1", snap)
	}
}

// TestCoordinatorChaosDelayedChunk delays one chunk dispatch and asserts
// the scatter still returns complete, partial-free results — slowness
// must cost latency, never answers.
func TestCoordinatorChaosDelayedChunk(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	csv, tuples, _ := testDataset(t)
	f := startFleet(t, 3)
	_, cts, cl := startCoord(t, f, 2)
	info, err := cl.CreateDatasetCSV(ctx, "chaos-delay", csv, testParams)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var delayed atomic.Bool
	fault.SetHook(fault.ShardDispatch, func() error {
		if delayed.CompareAndSwap(false, true) {
			time.Sleep(150 * time.Millisecond)
		}
		return nil
	})
	done := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(done)
		status, body = rawPost(t, cts.URL+"/v1/datasets/"+info.ID+"/detect",
			map[string]any{"tuples": tuples, "member": true})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("scatter hung behind a delayed chunk")
	}
	fault.Reset()
	if status != http.StatusOK {
		t.Fatalf("detect status %d: %s", status, body)
	}
	var resp struct {
		Partial bool `json:"partial"`
		Results []client.DetectResult
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Partial {
		t.Fatal("a delayed chunk must not degrade the response")
	}
}

// TestCoordinatorChaosMergeFault kills the gather (shard.merge site) and
// asserts the request fails closed with a 500 instead of emitting a
// half-merged answer.
func TestCoordinatorChaosMergeFault(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	csv, tuples, _ := testDataset(t)
	f := startFleet(t, 3)
	_, cts, cl := startCoord(t, f, 2)
	info, err := cl.CreateDatasetCSV(ctx, "chaos-merge", csv, testParams)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	fault.SetHook(fault.ShardMerge, func() error { return errors.New("injected merge loss") })
	status, body := rawPost(t, cts.URL+"/v1/datasets/"+info.ID+"/detect",
		map[string]any{"tuples": tuples, "member": true})
	fault.Reset()
	if status != http.StatusInternalServerError {
		t.Fatalf("merge-fault detect status %d, want 500: %s", status, body)
	}
	if !strings.Contains(string(body), "injected merge loss") {
		t.Errorf("merge-fault body %q does not carry the injected fault", body)
	}
}

// TestCoordinatorRejections pins the edge answers: unknown sessions are
// 404, malformed bodies 400, a uniform worker-side refusal (bad CSV)
// passes through as its own status, and a draining coordinator refuses
// mutating requests with 503.
func TestCoordinatorRejections(t *testing.T) {
	ctx := context.Background()
	f := startFleet(t, 3)
	co, cts, cl := startCoord(t, f, 2)

	status, _ := rawPost(t, cts.URL+"/v1/datasets/nope/detect", map[string]any{"tuples": [][]any{{1.0, 2.0}}})
	if status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
	resp, err := http.Post(cts.URL+"/v1/datasets", "application/json", strings.NewReader(`{"csv": `))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A truncated body is refused by every owner with the same 400, which
	// passes through instead of masquerading as coordinator trouble.
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed create: status %d, want 400", resp.StatusCode)
	}
	if _, err := cl.CreateDatasetCSV(ctx, "bad", "x\n\"unterminated", testParams); err == nil {
		t.Error("bad CSV create succeeded")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
			t.Errorf("bad CSV create error = %v, want pass-through 400", err)
		}
	}

	if err := co.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	status, _ = rawPost(t, cts.URL+"/v1/datasets", map[string]any{"csv": "x\n1\n"})
	if status != http.StatusServiceUnavailable {
		t.Errorf("create while draining: status %d, want 503", status)
	}
	status, _ = rawGet(t, cts.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", status)
	}
}

// TestCoordinatorRequiresWorkers pins the constructor contract.
func TestCoordinatorRequiresWorkers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers succeeded")
	}
	if _, err := New(Config{Workers: []string{"http://a", "http://a"}}); err == nil {
		t.Fatal("New with duplicate workers succeeded")
	}
}
