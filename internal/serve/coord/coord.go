// Package coord is discserve's coordinator mode: a thin scatter/gather
// front over a fleet of worker discserve instances. Sessions are placed
// onto workers by consistent hashing (shard.Ring) with a configurable
// replication factor; uploads fan the raw request body out to every owner,
// detect and repair requests are split into contiguous tuple chunks
// scattered across the owners, and the answers are merged back into the
// single-node response shapes — so the retrying client (and disccli
// -remote) talks to a coordinator exactly as it talks to one worker.
//
// Degradation policy: a chunk fails over through the placement's owner
// list; a chunk is lost only when every owner refuses it. A response with
// at least one surviving chunk is a partial 200 (lost ranges carry
// sentinel entries plus a per-chunk errors list); only when every owner of
// a placement is gone does the coordinator answer 503. Worker failures,
// failovers, lost chunks and degraded placements are all counted in
// obs.CoordStats and exported via /varz and /metrics.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/shard"
)

// Config tunes the coordinator. Workers is required; the zero value of
// everything else is usable.
type Config struct {
	// Workers are the base URLs of the worker discserve instances, e.g.
	// "http://127.0.0.1:8081". At least one is required.
	Workers []string
	// Replicas is how many workers own each session (default
	// min(2, len(Workers))). Uploads fan out to all owners; chunked
	// requests scatter across them and fail over between them.
	Replicas int
	// VNodes is the consistent-hash ring's virtual-node count per worker
	// (default 64).
	VNodes int
	// RequestTimeout bounds each worker call attempt (default 10s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps proxied request bodies (default 64 MiB).
	MaxBodyBytes int64
	// HTTPClient overrides the transport the per-worker clients use (tests
	// point this at httptest servers; nil = default transport).
	HTTPClient *http.Client
	// Logger receives structured request and scatter logs (nil = silent).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Workers) {
		c.Replicas = len(c.Workers)
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// worker is one fleet member: its URL plus a dedicated retrying client
// whose breaker state and counters are per-worker (a dead worker must not
// open the breaker for its peers).
type worker struct {
	url   string
	cli   *client.Client
	stats *obs.ClientStats
}

// ownerRef records where one replica of a placement lives: the worker and
// the session id that worker assigned (workers mint their own ids; the
// coordinator's public id is the placement key).
type ownerRef struct {
	URL     string `json:"worker"`
	LocalID string `json:"session"`
}

// placement is one coordinator-level session: the public id and the
// owners holding full replicas of it.
type placement struct {
	GID    string     `json:"id"`
	Name   string     `json:"name"`
	Owners []ownerRef `json:"owners"`
}

// Coordinator is the scatter/gather server. Build with New, serve
// Handler(), call Shutdown to drain.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	ring    *shard.Ring
	workers map[string]*worker
	handler http.Handler
	start   time.Time

	stats    obs.CoordStats
	draining atomic.Bool
	panics   atomic.Int64

	mu         sync.RWMutex
	placements map[string]*placement
}

// New builds a coordinator over cfg.Workers.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("coord: at least one worker URL is required")
	}
	c := &Coordinator{
		cfg:        cfg,
		log:        obs.Logger(cfg.Logger),
		ring:       shard.NewRing(cfg.Workers, cfg.VNodes),
		workers:    make(map[string]*worker, len(cfg.Workers)),
		start:      time.Now(),
		placements: make(map[string]*placement),
	}
	for _, u := range cfg.Workers {
		if _, dup := c.workers[u]; dup {
			return nil, fmt.Errorf("coord: duplicate worker URL %q", u)
		}
		stats := &obs.ClientStats{}
		c.workers[u] = &worker{
			url:   u,
			stats: stats,
			cli: client.New(client.Config{
				BaseURL:        u,
				HTTPClient:     cfg.HTTPClient,
				RequestTimeout: cfg.RequestTimeout,
				// Failover wants fail-fast, not patience: one retry with a
				// short backoff, then move to the next owner. The breaker
				// makes calls to a known-dead worker fail immediately.
				MaxRetries:       1,
				BaseBackoff:      50 * time.Millisecond,
				MaxBackoff:       500 * time.Millisecond,
				BreakerThreshold: 3,
				BreakerCooldown:  5 * time.Second,
				Stats:            stats,
				Logger:           cfg.Logger,
			}),
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", c.handleCreate)
	mux.HandleFunc("GET /v1/datasets", c.handleList)
	mux.HandleFunc("GET /v1/datasets/{id}", c.handleGet)
	mux.HandleFunc("DELETE /v1/datasets/{id}", c.handleDelete)
	mux.HandleFunc("POST /v1/datasets/{id}/detect", c.handleDetect)
	mux.HandleFunc("POST /v1/datasets/{id}/save", c.handleSave)
	mux.HandleFunc("POST /v1/datasets/{id}/repair", c.handleRepair)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /livez", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /varz", c.handleVarz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.handler = c.wrap(mux)
	return c, nil
}

// Handler returns the middleware-wrapped API.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() obs.CoordSnapshot { return c.stats.Snapshot() }

// Shutdown stops admitting mutating requests. The workers own the real
// work queues and drain themselves; the coordinator just stops routing.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	return nil
}

// wrap is the coordinator's middleware: request-ID mint/echo, panic
// recovery, request logging.
func (c *Coordinator) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				c.panics.Add(1)
				c.log.Error("coord: panic in handler", "request_id", id,
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if sw.status == 0 {
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					json.NewEncoder(sw).Encode(errorJSON{Error: "internal server error", RequestID: id})
				}
			}
			c.log.Info("coord: request", "request_id", id,
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "dur", time.Since(start).Round(time.Microsecond))
		}()
		next.ServeHTTP(sw, r)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

type errorJSON struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// --- placement ---

func (c *Coordinator) placementOf(gid string) (*placement, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.placements[gid]
	return p, ok
}

// sessionInfoJSON is the coordinator's session answer: the merged
// single-node shape (so the plain client decodes it unchanged) plus the
// owner list and a degraded flag.
type sessionInfoJSON struct {
	serve.SessionInfo
	Owners   []ownerRef `json:"owners"`
	Degraded bool       `json:"degraded,omitempty"`
}

// --- handlers ---

// handleCreate fans the raw upload body out to every ring owner of a
// freshly minted placement id. Workers each build a full replica; the
// placement survives as long as one owner does.
func (c *Coordinator) handleCreate(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		c.writeErr(w, r, http.StatusRequestEntityTooLarge, fmt.Errorf("coord: reading upload: %w", err))
		return
	}
	gid := "g-" + obs.NewRequestID()
	owners := c.ring.Owners(gid, c.cfg.Replicas)
	contentType := r.Header.Get("Content-Type")
	if contentType == "" {
		contentType = "application/json"
	}

	type createOut struct {
		ref  ownerRef
		info *serve.SessionInfo
		err  error
	}
	outs := make([]createOut, len(owners))
	var wg sync.WaitGroup
	for i, u := range owners {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			info, err := c.workers[u].cli.CreateDatasetRaw(r.Context(), contentType, r.URL.RawQuery, body)
			if err != nil {
				c.stats.WorkerErrors.Add(1)
				outs[i] = createOut{err: fmt.Errorf("worker %s: %w", u, err)}
				return
			}
			outs[i] = createOut{ref: ownerRef{URL: u, LocalID: info.ID}, info: info}
		}(i, u)
	}
	wg.Wait()

	p := &placement{GID: gid, Owners: make([]ownerRef, 0, len(owners))}
	var first *serve.SessionInfo
	var errs []string
	var failures []error
	for _, o := range outs {
		if o.err != nil {
			errs = append(errs, o.err.Error())
			failures = append(failures, o.err)
			continue
		}
		p.Owners = append(p.Owners, o.ref)
		if first == nil {
			first = o.info
		}
	}
	if first == nil {
		// Every owner refused. A uniform definitive refusal (bad CSV → 400)
		// passes through; anything else is unavailability.
		if status, msg, ok := uniformAPIError(failures); ok {
			c.writeErr(w, r, status, errors.New(msg))
			return
		}
		c.writeErr(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("coord: no owner accepted the upload: %s", strings.Join(errs, "; ")))
		return
	}
	p.Name = first.Name
	c.mu.Lock()
	c.placements[gid] = p
	c.mu.Unlock()
	c.stats.PlacementsCreated.Add(1)
	degraded := len(p.Owners) < len(owners)
	if degraded {
		c.stats.PlacementsDegraded.Add(1)
		c.log.Warn("coord: degraded placement", "id", gid,
			"owners", len(p.Owners), "want", len(owners), "errs", errs)
	}
	info := *first
	info.ID = gid
	c.writeJSON(w, http.StatusCreated, sessionInfoJSON{SessionInfo: info, Owners: p.Owners, Degraded: degraded})
}

// uniformAPIError reports whether every failed create got the same
// definitive (4xx) refusal, which then speaks for the whole fan-out.
func uniformAPIError(failures []error) (int, string, bool) {
	if len(failures) == 0 {
		return 0, "", false
	}
	var want *client.APIError
	if !errors.As(failures[0], &want) {
		return 0, "", false
	}
	for _, err := range failures[1:] {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != want.Status {
			return 0, "", false
		}
	}
	return want.Status, want.Message, true
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	list := make([]*placement, 0, len(c.placements))
	for _, p := range c.placements {
		list = append(list, p)
	}
	c.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].GID < list[j].GID })
	c.writeJSON(w, http.StatusOK, list)
}

// handleGet gathers every owner's session snapshot and merges the
// SearchStats shard-wise: each owner executed a share of the scattered
// work, so the merged counters are the placement's whole story.
func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	p, ok := c.placementOf(r.PathValue("id"))
	if !ok {
		c.writeErr(w, r, http.StatusNotFound, fmt.Errorf("coord: no session %q", r.PathValue("id")))
		return
	}
	infos, live := c.gatherInfos(r.Context(), p)
	if live == 0 {
		c.writeErr(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("coord: all %d owners of %s are unreachable", len(p.Owners), p.GID))
		return
	}
	c.writeJSON(w, http.StatusOK, mergeInfos(p, infos, live))
}

// gatherInfos fetches each owner's SessionInfo concurrently; nil entries
// mark unreachable owners.
func (c *Coordinator) gatherInfos(ctx context.Context, p *placement) ([]*serve.SessionInfo, int) {
	infos := make([]*serve.SessionInfo, len(p.Owners))
	var wg sync.WaitGroup
	for i, o := range p.Owners {
		wg.Add(1)
		go func(i int, o ownerRef) {
			defer wg.Done()
			info, err := c.workers[o.URL].cli.Session(ctx, o.LocalID)
			if err != nil {
				c.stats.WorkerErrors.Add(1)
				return
			}
			infos[i] = info
		}(i, o)
	}
	wg.Wait()
	live := 0
	for _, info := range infos {
		if info != nil {
			live++
		}
	}
	return infos, live
}

// mergeInfos folds owner snapshots into one coordinator-level view: shape
// fields from the first live owner, work counters summed across owners.
func mergeInfos(p *placement, infos []*serve.SessionInfo, live int) sessionInfoJSON {
	var out serve.SessionInfo
	for _, info := range infos {
		if info == nil {
			continue
		}
		if out.ID == "" {
			out = *info
			continue
		}
		out.Stats.Add(&info.Stats)
		out.Saves += info.Saves
		out.Detects += info.Detects
		out.Batches += info.Batches
		out.IndexBuilds += info.IndexBuilds
		out.Bytes += info.Bytes
		out.QueueDepth += info.QueueDepth
	}
	out.ID = p.GID
	return sessionInfoJSON{SessionInfo: out, Owners: p.Owners, Degraded: live < len(p.Owners)}
}

func (c *Coordinator) handleDelete(w http.ResponseWriter, r *http.Request) {
	gid := r.PathValue("id")
	p, ok := c.placementOf(gid)
	if !ok {
		c.writeErr(w, r, http.StatusNotFound, fmt.Errorf("coord: no session %q", gid))
		return
	}
	var wg sync.WaitGroup
	for _, o := range p.Owners {
		wg.Add(1)
		go func(o ownerRef) {
			defer wg.Done()
			if err := c.workers[o.URL].cli.Delete(r.Context(), o.LocalID); err != nil {
				c.stats.WorkerErrors.Add(1)
				c.log.Warn("coord: delete replica", "worker", o.URL, "session", o.LocalID, "err", err)
			}
		}(o)
	}
	wg.Wait()
	c.mu.Lock()
	delete(c.placements, gid)
	c.mu.Unlock()
	c.writeJSON(w, http.StatusOK, map[string]any{"deleted": gid})
}

// --- scatter/gather ---

// chunkError reports one lost chunk in a partial response.
type chunkError struct {
	Chunk int    `json:"chunk"`
	From  int    `json:"from"`
	To    int    `json:"to"` // exclusive
	Error string `json:"error"`
}

// chunkRanges splits n tuples into one contiguous chunk per owner
// (at most n chunks). Bounds follow the same balanced formula as the
// shard partitioner: chunk k is [k*n/c, (k+1)*n/c).
func chunkRanges(n, owners int) [][2]int {
	chunks := owners
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([][2]int, chunks)
	for k := 0; k < chunks; k++ {
		out[k] = [2]int{k * n / chunks, (k + 1) * n / chunks}
	}
	return out
}

// scatter runs call for each chunk of n tuples across p's owners, with
// per-chunk failover: chunk k tries owner (k+j) mod len(owners) for
// j = 0.., so replicas split the primary load. call returns whether the
// owner answered definitively. A chunk is lost when every owner fails;
// the returned errors describe the lost chunks.
func (c *Coordinator) scatter(ctx context.Context, p *placement, n int,
	call func(chunk int, lo, hi int, o ownerRef) error) []chunkError {
	ranges := chunkRanges(n, len(p.Owners))
	c.stats.Scatters.Add(1)
	c.stats.ScatterChunks.Add(int64(len(ranges)))
	errsCh := make([]chunkError, len(ranges))
	lost := make([]bool, len(ranges))
	var wg sync.WaitGroup
	for k, rg := range ranges {
		wg.Add(1)
		go func(k int, lo, hi int) {
			defer wg.Done()
			// Chaos hook: a killed dispatch loses the whole chunk (as if
			// every owner refused it); a sleeping one delays it.
			if ferr := fault.Inject(fault.ShardDispatch); ferr != nil {
				c.stats.ChunkFailures.Add(1)
				lost[k] = true
				errsCh[k] = chunkError{Chunk: k, From: lo, To: hi, Error: ferr.Error()}
				return
			}
			var lastErr error
			for j := 0; j < len(p.Owners); j++ {
				o := p.Owners[(k+j)%len(p.Owners)]
				err := call(k, lo, hi, o)
				if err == nil {
					if j > 0 {
						c.stats.Failovers.Add(1)
					}
					return
				}
				c.stats.WorkerErrors.Add(1)
				lastErr = fmt.Errorf("worker %s: %w", o.URL, err)
				c.log.Warn("coord: chunk attempt failed", "chunk", k,
					"worker", o.URL, "attempt", j+1, "err", err)
			}
			c.stats.ChunkFailures.Add(1)
			lost[k] = true
			errsCh[k] = chunkError{Chunk: k, From: lo, To: hi, Error: lastErr.Error()}
		}(k, rg[0], rg[1])
	}
	wg.Wait()
	var out []chunkError
	for k := range ranges {
		if lost[k] {
			out = append(out, errsCh[k])
		}
	}
	return out
}

type detectRequest struct {
	Tuples [][]any `json:"tuples"`
	Member bool    `json:"member"`
}

// coordDetectResponse is the single-node detect answer plus the partial
// markers. Lost tuples carry neighbors = -1.
type coordDetectResponse struct {
	Eps     float64               `json:"eps"`
	Eta     int                   `json:"eta"`
	Results []client.DetectResult `json:"results"`
	Partial bool                  `json:"partial,omitempty"`
	Errors  []chunkError          `json:"errors,omitempty"`
}

func (c *Coordinator) handleDetect(w http.ResponseWriter, r *http.Request) {
	p, ok := c.placementOf(r.PathValue("id"))
	if !ok {
		c.writeErr(w, r, http.StatusNotFound, fmt.Errorf("coord: no session %q", r.PathValue("id")))
		return
	}
	var req detectRequest
	if !c.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Tuples) == 0 {
		c.writeErr(w, r, http.StatusBadRequest, errors.New("coord: tuples is required"))
		return
	}
	resp := coordDetectResponse{Results: make([]client.DetectResult, len(req.Tuples))}
	for i := range resp.Results {
		resp.Results[i].Neighbors = -1
	}
	var mu sync.Mutex
	lost := c.scatter(r.Context(), p, len(req.Tuples), func(_ int, lo, hi int, o ownerRef) error {
		dr, err := c.workers[o.URL].cli.Detect(r.Context(), o.LocalID, req.Tuples[lo:hi], req.Member)
		if err != nil {
			return err
		}
		if len(dr.Results) != hi-lo {
			return fmt.Errorf("chunk answer has %d results, want %d", len(dr.Results), hi-lo)
		}
		mu.Lock()
		defer mu.Unlock()
		resp.Eps, resp.Eta = dr.Eps, dr.Eta
		copy(resp.Results[lo:hi], dr.Results)
		return nil
	})
	c.finishScatter(w, r, p, len(lost), len(chunkRanges(len(req.Tuples), len(p.Owners))), func() {
		resp.Partial = len(lost) > 0
		resp.Errors = lost
		c.writeJSON(w, http.StatusOK, resp)
	})
}

type repairRequest struct {
	Tuples    [][]any `json:"tuples"`
	TimeoutMS int     `json:"timeout_ms"`
}

// coordRepairResponse is the single-node repair answer plus the partial
// markers. Lost tuples carry zero-valued adjustments (not saved, not
// natural, not exhausted) and are described in Errors.
type coordRepairResponse struct {
	Adjustments []client.Adjustment `json:"adjustments"`
	Saved       int                 `json:"saved"`
	Natural     int                 `json:"natural"`
	Exhausted   int                 `json:"exhausted"`
	Partial     bool                `json:"partial,omitempty"`
	Errors      []chunkError        `json:"errors,omitempty"`
}

func (c *Coordinator) handleRepair(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w, r) {
		return
	}
	p, ok := c.placementOf(r.PathValue("id"))
	if !ok {
		c.writeErr(w, r, http.StatusNotFound, fmt.Errorf("coord: no session %q", r.PathValue("id")))
		return
	}
	var req repairRequest
	if !c.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Tuples) == 0 {
		c.writeErr(w, r, http.StatusBadRequest, errors.New("coord: tuples is required"))
		return
	}
	resp := coordRepairResponse{Adjustments: make([]client.Adjustment, len(req.Tuples))}
	var mu sync.Mutex
	lost := c.scatter(r.Context(), p, len(req.Tuples), func(_ int, lo, hi int, o ownerRef) error {
		rr, err := c.workers[o.URL].cli.Repair(r.Context(), o.LocalID, req.Tuples[lo:hi], req.TimeoutMS)
		if err != nil {
			return err
		}
		if len(rr.Adjustments) != hi-lo {
			return fmt.Errorf("chunk answer has %d adjustments, want %d", len(rr.Adjustments), hi-lo)
		}
		mu.Lock()
		defer mu.Unlock()
		copy(resp.Adjustments[lo:hi], rr.Adjustments)
		resp.Saved += rr.Saved
		resp.Natural += rr.Natural
		resp.Exhausted += rr.Exhausted
		return nil
	})
	c.finishScatter(w, r, p, len(lost), len(chunkRanges(len(req.Tuples), len(p.Owners))), func() {
		resp.Partial = len(lost) > 0
		resp.Errors = lost
		c.writeJSON(w, http.StatusOK, resp)
	})
}

// finishScatter applies the gather policy: merge-site chaos first, then
// 503 when every chunk was lost, partial 200 when some survived, clean
// 200 otherwise.
func (c *Coordinator) finishScatter(w http.ResponseWriter, r *http.Request, p *placement,
	lostChunks, totalChunks int, ok func()) {
	if ferr := fault.Inject(fault.ShardMerge); ferr != nil {
		c.writeErr(w, r, http.StatusInternalServerError, fmt.Errorf("coord: merging chunk answers: %w", ferr))
		return
	}
	if lostChunks >= totalChunks {
		c.writeErr(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("coord: all %d chunks lost, every owner of %s is unreachable", totalChunks, p.GID))
		return
	}
	if lostChunks > 0 {
		c.stats.PartialResponses.Add(1)
	}
	ok()
}

type saveRequest struct {
	Tuple     []any `json:"tuple"`
	TimeoutMS int   `json:"timeout_ms"`
}

// handleSave proxies the single-tuple save, failing over through the
// owner list; only when every owner is lost does it answer 503.
func (c *Coordinator) handleSave(w http.ResponseWriter, r *http.Request) {
	if c.refuseDraining(w, r) {
		return
	}
	p, ok := c.placementOf(r.PathValue("id"))
	if !ok {
		c.writeErr(w, r, http.StatusNotFound, fmt.Errorf("coord: no session %q", r.PathValue("id")))
		return
	}
	var req saveRequest
	if !c.decodeJSON(w, r, &req) {
		return
	}
	if ferr := fault.Inject(fault.ShardDispatch); ferr != nil {
		c.writeErr(w, r, http.StatusServiceUnavailable, fmt.Errorf("coord: dispatching save: %w", ferr))
		return
	}
	var lastErr error
	for j, o := range p.Owners {
		adj, err := c.workers[o.URL].cli.SaveTuple(r.Context(), o.LocalID, req.Tuple, req.TimeoutMS)
		if err == nil {
			if j > 0 {
				c.stats.Failovers.Add(1)
			}
			c.writeJSON(w, http.StatusOK, adj)
			return
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			// Definitive refusal (bad tuple → 400): the worker is alive,
			// pass its answer through instead of failing over.
			c.writeErr(w, r, apiErr.Status, errors.New(apiErr.Message))
			return
		}
		c.stats.WorkerErrors.Add(1)
		lastErr = fmt.Errorf("worker %s: %w", o.URL, err)
	}
	c.writeErr(w, r, http.StatusServiceUnavailable,
		fmt.Errorf("coord: all %d owners of %s are unreachable: %v", len(p.Owners), p.GID, lastErr))
}

// --- health, varz, metrics ---

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if c.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	c.writeJSON(w, code, map[string]any{
		"status":   status,
		"mode":     "coordinator",
		"workers":  len(c.workers),
		"uptime_s": time.Since(c.start).Seconds(),
	})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	c.handleHealthz(w, r)
}

// handleVarz reports the coordinator's own counters, the per-worker
// client counters, and every placement with its per-owner (per-shard)
// SearchStats plus their merged sum.
func (c *Coordinator) handleVarz(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	list := make([]*placement, 0, len(c.placements))
	for _, p := range c.placements {
		list = append(list, p)
	}
	c.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].GID < list[j].GID })

	type ownerVarz struct {
		ownerRef
		Live  bool             `json:"live"`
		Stats *obs.SearchStats `json:"stats,omitempty"`
	}
	type placementVarz struct {
		ID       string          `json:"id"`
		Name     string          `json:"name"`
		Owners   []ownerVarz     `json:"owners"`
		Stats    obs.SearchStats `json:"stats"` // merged across owners
		Degraded bool            `json:"degraded"`
	}
	placements := make([]placementVarz, len(list))
	for i, p := range list {
		infos, live := c.gatherInfos(r.Context(), p)
		pv := placementVarz{ID: p.GID, Name: p.Name, Degraded: live < len(p.Owners)}
		for k, o := range p.Owners {
			ov := ownerVarz{ownerRef: o}
			if infos[k] != nil {
				ov.Live = true
				st := infos[k].Stats
				ov.Stats = &st
				pv.Stats.Add(&st)
			}
			pv.Owners = append(pv.Owners, ov)
		}
		placements[i] = pv
	}

	workers := make(map[string]obs.ClientSnapshot, len(c.workers))
	for u, wk := range c.workers {
		workers[u] = wk.stats.Snapshot()
	}
	c.writeJSON(w, http.StatusOK, map[string]any{
		"mode":             "coordinator",
		"uptime_s":         time.Since(c.start).Seconds(),
		"draining":         c.draining.Load(),
		"panics_recovered": c.panics.Load(),
		"replicas":         c.cfg.Replicas,
		"coord":            c.stats.Snapshot(),
		"workers":          workers,
		"placements":       placements,
	})
}

// handleMetrics exports the coordinator plane in Prometheus text format:
// disc_coord_* counters, per-worker client counters labeled by worker,
// and per-placement per-owner SearchStats labeled (session, worker).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	c.writeMetrics(r.Context(), p)
	if err := p.Flush(); err != nil {
		c.log.Warn("coord: writing /metrics", "err", err)
	}
}

func (c *Coordinator) writeMetrics(ctx context.Context, p *obs.PromWriter) {
	c.mu.RLock()
	list := make([]*placement, 0, len(c.placements))
	for _, pl := range c.placements {
		list = append(list, pl)
	}
	c.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].GID < list[j].GID })

	p.Gauge("disc_coord_uptime_seconds", "Seconds since the coordinator started.",
		time.Since(c.start).Seconds())
	p.Gauge("disc_coord_workers", "Workers the coordinator routes to.", float64(len(c.workers)))
	p.Gauge("disc_coord_placements", "Sessions currently placed on the fleet.", float64(len(list)))
	p.Counter("disc_coord_panics_recovered_total", "Handler panics recovered by the middleware.",
		float64(c.panics.Load()))

	// Coordinator scatter/gather counters: one family per CoordSnapshot
	// json tag, reflection-driven like the worker's exporter so the docs
	// drift check covers them.
	for _, cv := range obs.Counters(c.stats.Snapshot()) {
		p.Counter("disc_coord_"+cv.Name+"_total",
			"Coordinator scatter/gather counter (docs/OBSERVABILITY.md).", float64(cv.Value))
	}

	// Per-worker retrying-client counters, labeled by worker URL.
	urls := make([]string, 0, len(c.workers))
	for u := range c.workers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	snaps := make([]obs.ClientSnapshot, len(urls))
	for i, u := range urls {
		snaps[i] = c.workers[u].stats.Snapshot()
	}
	for ti, tag := range obs.CounterNames(obs.ClientSnapshot{}) {
		for i, u := range urls {
			p.Counter("disc_coord_worker_client_"+tag+"_total",
				"Per-worker retrying-client counter (docs/OBSERVABILITY.md).",
				float64(obs.Counters(snaps[i])[ti].Value), "worker", u)
		}
	}

	// Per-placement per-owner SearchStats: the per-shard view, labeled
	// (session, worker). Gathered live from the owners.
	type ownerStats struct {
		gid, url string
		stats    obs.SearchStats
	}
	var owners []ownerStats
	for _, pl := range list {
		infos, _ := c.gatherInfos(ctx, pl)
		for k, o := range pl.Owners {
			if infos[k] == nil {
				continue
			}
			owners = append(owners, ownerStats{gid: pl.GID, url: o.URL, stats: infos[k].Stats})
		}
	}
	for ti, tag := range obs.CounterNames(obs.SearchStats{}) {
		for _, os := range owners {
			p.Counter("disc_coord_shard_search_"+tag+"_total",
				"Per-placement per-owner DISC search counter (docs/OBSERVABILITY.md).",
				float64(obs.Counters(os.stats)[ti].Value), "session", os.gid, "worker", os.url)
		}
	}
}

// --- plumbing ---

func (c *Coordinator) refuseDraining(w http.ResponseWriter, r *http.Request) bool {
	if !c.draining.Load() {
		return false
	}
	c.writeErr(w, r, http.StatusServiceUnavailable, errors.New("coord: draining"))
	return true
}

func (c *Coordinator) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		c.writeErr(w, r, status, fmt.Errorf("coord: decoding request: %w", err))
		return false
	}
	return true
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		c.log.Warn("coord: writing response", "err", err)
	}
}

func (c *Coordinator) writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	id := w.Header().Get("X-Request-ID")
	c.writeJSON(w, status, errorJSON{Error: err.Error(), RequestID: id})
}
