package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// fastCfg keeps retry delays test-sized.
func fastCfg(url string, stats *obs.ClientStats) Config {
	return Config{
		BaseURL:        url,
		RequestTimeout: 5 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		Stats:          stats,
	}
}

func TestRetryThenSuccess(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ready"}`))
	}))
	defer ts.Close()

	stats := &obs.ClientStats{}
	cl := New(fastCfg(ts.URL, stats))
	if err := cl.Ready(context.Background()); err != nil {
		t.Fatalf("Ready after transient failures: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hits = %d, want 3 (two failures + success)", got)
	}
	if snap := stats.Snapshot(); snap.Retries != 2 || snap.Requests != 1 {
		t.Errorf("stats = %+v, want 2 retries on 1 request", snap)
	}
}

func TestRetriesExhaustedIsUnavailable(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL, nil)
	cfg.MaxRetries = 2
	cl := New(cfg)
	err := cl.Ready(context.Background())
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("exhausted retries returned %v, want ErrUnavailable", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hits = %d, want 3 (1 + 2 retries)", got)
	}
}

// TestRetryAfterHonored: a 429's Retry-After (in whole seconds) overrides
// the computed backoff, capped at MaxBackoff. With a 1ms base backoff, a
// visibly longer wait proves the header drove the delay.
func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL, nil)
	cfg.MaxBackoff = 50 * time.Millisecond // caps the 1s Retry-After
	cl := New(cfg)
	start := time.Now()
	if err := cl.Ready(context.Background()); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("retried after %v; Retry-After (capped to 50ms) was not honored", elapsed)
	}
}

// TestAPIErrorNotRetried: a 4xx is a definitive answer — one attempt, typed
// error, and it counts as breaker success (the server is alive).
func TestAPIErrorNotRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no session \"x\""}`))
	}))
	defer ts.Close()

	stats := &obs.ClientStats{}
	cl := New(fastCfg(ts.URL, stats))
	_, err := cl.Detect(context.Background(), "x", [][]any{{1.0}}, false)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("got %v, want *APIError with status 404", err)
	}
	if !strings.Contains(apiErr.Message, "no session") {
		t.Errorf("error body not decoded: %q", apiErr.Message)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hits = %d, want 1 (4xx must not be retried)", got)
	}
	if snap := stats.Snapshot(); snap.Retries != 0 {
		t.Errorf("retries = %d, want 0", snap.Retries)
	}
}

// TestBreakerOpensAndRecovers: consecutive failed requests trip the breaker
// (immediate ErrUnavailable, no network traffic), and after the cooldown a
// half-open probe against a healed server closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var hits atomic.Int64
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	stats := &obs.ClientStats{}
	cfg := fastCfg(ts.URL, stats)
	cfg.MaxRetries = -1 // one attempt per request
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 100 * time.Millisecond
	cl := New(cfg)

	for i := 0; i < 2; i++ {
		if err := cl.Ready(context.Background()); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("request %d: %v, want ErrUnavailable", i, err)
		}
	}
	if snap := stats.Snapshot(); snap.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1 after %d consecutive failures", snap.BreakerTrips, 2)
	}
	before := hits.Load()
	if err := cl.Ready(context.Background()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-breaker request: %v, want ErrUnavailable", err)
	}
	if got := hits.Load(); got != before {
		t.Errorf("open breaker let a request through (%d -> %d hits)", before, got)
	}
	if snap := stats.Snapshot(); snap.BreakerOpen != 1 {
		t.Errorf("breaker-open refusals = %d, want 1", snap.BreakerOpen)
	}

	healthy.Store(true)
	time.Sleep(150 * time.Millisecond) // past the cooldown
	if err := cl.Ready(context.Background()); err != nil {
		t.Fatalf("half-open probe against healed server: %v", err)
	}
	if err := cl.Ready(context.Background()); err != nil {
		t.Fatalf("breaker did not close after successful probe: %v", err)
	}
}

// TestRequestIDAcrossRetries: the client mints one X-Request-ID per
// logical call before the first attempt and reuses it verbatim on every
// retry, reporting it through OnRequest — so client output, server logs
// and retry attempts all join on one id.
func TestRequestIDAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Request-ID"))
		mu.Unlock()
		if hits.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ready"}`))
	}))
	defer ts.Close()

	var minted []string
	cfg := fastCfg(ts.URL, nil)
	cfg.OnRequest = func(id, method, path string) {
		minted = append(minted, id)
		if method != "GET" || path != "/readyz" {
			t.Errorf("OnRequest(%q, %q, %q): wrong method/path", id, method, path)
		}
	}
	cl := New(cfg)
	if err := cl.Ready(context.Background()); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(seen))
	}
	if seen[0] == "" || len(seen[0]) != 16 {
		t.Fatalf("first attempt carried no minted request id: %q", seen[0])
	}
	if seen[1] != seen[0] || seen[2] != seen[0] {
		t.Errorf("retries changed the request id: %v (want one id across all attempts)", seen)
	}
	if len(minted) != 1 || minted[0] != seen[0] {
		t.Errorf("OnRequest reported %v, want exactly the id the server saw (%q)", minted, seen[0])
	}
}

// TestRequestIDUniquePerCall: two logical calls mint two distinct ids.
func TestRequestIDUniquePerCall(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Request-ID"))
		mu.Unlock()
		w.Write([]byte(`{"status":"ready"}`))
	}))
	defer ts.Close()

	cl := New(fastCfg(ts.URL, nil))
	for i := 0; i < 2; i++ {
		if err := cl.Ready(context.Background()); err != nil {
			t.Fatalf("Ready %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] == seen[1] {
		t.Errorf("two calls carried ids %v, want two distinct ids", seen)
	}
}

func TestUnreachableServer(t *testing.T) {
	cfg := fastCfg("http://127.0.0.1:1", nil)
	cfg.MaxRetries = -1
	cl := New(cfg)
	if err := cl.Ready(context.Background()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("unreachable server returned %v, want ErrUnavailable", err)
	}
}

// TestEndToEnd runs the typed client against the real serving stack:
// create, member-mode detect, repair, delete.
func TestEndToEnd(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := New(fastCfg(ts.URL, nil))
	ctx := context.Background()

	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	// A tight cluster plus one far outlier.
	var sb strings.Builder
	sb.WriteString("x:numeric,y:numeric\n")
	num := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			sb.WriteString(num(float64(i)*0.4) + "," + num(float64(j)*0.4) + "\n")
		}
	}
	sb.WriteString("25,25\n")

	info, err := cl.CreateDatasetCSV(ctx, "e2e", sb.String(), Params{Eps: 1, Eta: 3, Kappa: 2})
	if err != nil {
		t.Fatalf("CreateDatasetCSV: %v", err)
	}
	if info.Outliers != 1 {
		t.Fatalf("session outliers = %d, want 1: %+v", info.Outliers, info)
	}
	det, err := cl.Detect(ctx, info.ID, [][]any{{25.0, 25.0}, {0.4, 0.4}}, true)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if !det.Results[0].Outlier || det.Results[1].Outlier {
		t.Fatalf("member detect = %+v, want [outlier, inlier]", det.Results)
	}
	rep, err := cl.Repair(ctx, info.ID, [][]any{{25.0, 25.0}}, 0)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep.Saved != 1 || !rep.Adjustments[0].Saved {
		t.Fatalf("repair = %+v, want the outlier saved", rep)
	}
	if err := cl.Delete(ctx, info.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	_, err = cl.Detect(ctx, info.ID, [][]any{{0.4, 0.4}}, false)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("detect after delete: %v, want 404 APIError", err)
	}
}
