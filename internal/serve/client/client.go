// Package client is a robust HTTP client for the discserve API, built for
// callers that outlive individual failures: every request gets a
// per-attempt timeout, retryable failures (network errors, 429, 5xx) are
// re-attempted under capped exponential backoff with jitter — honoring
// Retry-After when the server sends one — and a consecutive-failure circuit
// breaker stops hammering a dead server, failing fast with ErrUnavailable
// so the caller can degrade to local execution (disccli -remote does
// exactly that).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrUnavailable means the server could not be reached: the circuit breaker
// is open, or every retry attempt failed with a retryable error. It is the
// signal to degrade — run locally, queue for later — rather than a comment
// on the request itself.
var ErrUnavailable = errors.New("client: server unavailable")

// APIError is a definitive (non-retryable) answer from the server: a 4xx
// with the decoded error body. The request reached the server and was
// refused, so it counts as breaker success — the server is alive.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Status, e.Message)
}

// Config tunes the client. The zero value plus a BaseURL is usable.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient with
	// RequestTimeout applied per attempt).
	HTTPClient *http.Client
	// RequestTimeout bounds each attempt (default 30s).
	RequestTimeout time.Duration
	// MaxRetries is how many re-attempts follow a retryable failure
	// (default 3; a request makes at most 1+MaxRetries attempts).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts (defaults 100ms and 5s); the actual sleep is equal-jittered
	// in [d/2, d). A Retry-After header overrides the computed delay.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold consecutive failed requests open the breaker for
	// BreakerCooldown (defaults 5 and 10s); while open, calls fail
	// immediately with ErrUnavailable. After the cooldown one probe goes
	// through; success closes the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Stats receives the retry/breaker counters (nil = private instance).
	Stats *obs.ClientStats
	// Logger receives retry and breaker transitions (nil = silent).
	Logger *slog.Logger
	// OnRequest, when set, is called once per logical call with the
	// X-Request-ID the client minted for it, before the first attempt.
	// Every retry of the call reuses the same id, so the callback's output
	// greps directly against server request logs across attempts
	// (disccli -remote prints these).
	OnRequest func(id, method, path string)
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Stats == nil {
		c.Stats = &obs.ClientStats{}
	}
	return c
}

// Client talks to one discserve instance. Safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client
	log  *slog.Logger

	mu          sync.Mutex
	consecFails int
	openUntil   time.Time
}

// New builds a client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{cfg: cfg, http: hc, log: obs.Logger(cfg.Logger)}
}

// Stats snapshots the retry/breaker counters.
func (c *Client) Stats() obs.ClientSnapshot { return c.cfg.Stats.Snapshot() }

// --- circuit breaker ---

// breakerAllow reports whether a request may proceed. While the breaker is
// open it refuses immediately; once the cooldown elapses the next request
// becomes the half-open probe.
func (c *Client) breakerAllow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openUntil.IsZero() || time.Now().After(c.openUntil) {
		return true
	}
	return false
}

// breakerResult folds one finished request into the breaker state.
func (c *Client) breakerResult(ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.consecFails = 0
		c.openUntil = time.Time{}
		return
	}
	c.consecFails++
	if c.consecFails >= c.cfg.BreakerThreshold {
		c.openUntil = time.Now().Add(c.cfg.BreakerCooldown)
		c.consecFails = 0
		c.cfg.Stats.BreakerTrips.Add(1)
		c.log.Warn("client: circuit breaker opened",
			"cooldown", c.cfg.BreakerCooldown, "threshold", c.cfg.BreakerThreshold)
	}
}

// --- request plumbing ---

// retryAfter parses a Retry-After seconds header (the only form discserve
// sends), capped at MaxBackoff; 0 means absent or unusable.
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	sec, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || sec < 0 {
		return 0
	}
	d := time.Duration(sec) * time.Second
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	return d
}

// backoff computes the equal-jittered exponential delay for attempt (0-based
// retry count): half the capped exponential step guaranteed, the other half
// random, so synchronized clients spread out.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << attempt
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleep waits for d or the context, whichever first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do runs one logical JSON request: marshal in, then hand the bytes to
// doBytes.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	return c.doBytes(ctx, method, path, "application/json", body, out)
}

// doBytes runs one logical request from an already-encoded body: attempt
// with per-attempt timeout, retry retryable failures with backoff, decode
// the response into out (unless nil). It is the raw-body surface a
// coordinator forwards uploads through without re-encoding them.
func (c *Client) doBytes(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	c.cfg.Stats.Requests.Add(1)
	if !c.breakerAllow() {
		c.cfg.Stats.BreakerOpen.Add(1)
		return fmt.Errorf("%w: circuit breaker open", ErrUnavailable)
	}
	// One request id per logical call, reused across every retry attempt:
	// the server logs each attempt under the same id, so its request log
	// joins against ClientStats.Retries instead of showing unrelated
	// requests.
	reqID := obs.NewRequestID()
	if c.cfg.OnRequest != nil {
		c.cfg.OnRequest(reqID, method, path)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err, retryable, wait := c.attempt(ctx, method, path, reqID, contentType, body, out)
		if err == nil {
			c.breakerResult(true)
			return nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			// A definitive refusal: the server is alive and has answered.
			c.breakerResult(true)
			return err
		}
		lastErr = err
		if !retryable || attempt >= c.cfg.MaxRetries || ctx.Err() != nil {
			break
		}
		if wait <= 0 {
			wait = c.backoff(attempt)
		}
		c.cfg.Stats.Retries.Add(1)
		c.log.Debug("client: retrying", "request_id", reqID,
			"method", method, "path", path,
			"attempt", attempt+1, "wait", wait, "err", err)
		if serr := sleep(ctx, wait); serr != nil {
			break
		}
	}
	c.breakerResult(false)
	return fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}

// attempt runs one HTTP exchange. It returns the failure's retryability and
// the server-requested wait (from Retry-After), when any.
func (c *Client) attempt(ctx context.Context, method, path, reqID, contentType string, body []byte, out any) (err error, retryable bool, wait time.Duration) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err), false, 0
	}
	req.Header.Set("X-Request-ID", reqID)
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Network-level failure (refused, reset, timeout): retryable unless
		// the caller's own context is gone.
		return fmt.Errorf("client: %s %s: %w", method, path, err), ctx.Err() == nil, 0
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if out == nil {
			return nil, false, 0
		}
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			return fmt.Errorf("client: decoding response: %w", derr), false, 0
		}
		return nil, false, 0
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		// Backpressure or server trouble: retry, honoring Retry-After.
		return fmt.Errorf("client: %s %s: server answered %d", method, path, resp.StatusCode),
			true, c.retryAfter(resp)
	default:
		var ej struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&ej)
		if ej.Error == "" {
			ej.Error = http.StatusText(resp.StatusCode)
		}
		return &APIError{Status: resp.StatusCode, Message: ej.Error}, false, 0
	}
}
