package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"

	"repro/internal/serve"
)

// Params mirror the server's build parameters for dataset creation.
type Params struct {
	Eps      float64
	Eta      int
	Kappa    int
	MaxNodes int
	Seed     int64
	// Index selects the neighbor index kind ("auto", "brute", "grid",
	// "kd", "vp"); empty means auto.
	Index string
	// Approx requests approximate build-time detection (sampled estimator
	// with exact borderline refinement); ApproxConfidence tunes its
	// certificate confidence (0 = server default).
	Approx           bool
	ApproxConfidence float64
}

// createRequest mirrors the server's dataset-creation body (CSV source).
type createRequest struct {
	Name             string  `json:"name,omitempty"`
	CSV              string  `json:"csv"`
	Eps              float64 `json:"eps,omitempty"`
	Eta              int     `json:"eta,omitempty"`
	Kappa            int     `json:"kappa,omitempty"`
	MaxNodes         int     `json:"max_nodes,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
	Index            string  `json:"index,omitempty"`
	Approx           bool    `json:"approx,omitempty"`
	ApproxConfidence float64 `json:"approx_confidence,omitempty"`
}

// DetectResult is one tuple's screening answer.
type DetectResult struct {
	Neighbors int  `json:"neighbors"`
	Outlier   bool `json:"outlier"`
}

// DetectResponse is the /detect answer: the session's resolved constraints
// and one result per query tuple.
type DetectResponse struct {
	Eps     float64        `json:"eps"`
	Eta     int            `json:"eta"`
	Results []DetectResult `json:"results"`
}

// Adjustment is one repaired tuple as the server reports it.
type Adjustment struct {
	Saved     bool     `json:"saved"`
	Natural   bool     `json:"natural"`
	Exhausted bool     `json:"exhausted"`
	Cost      float64  `json:"cost"`
	Tuple     []any    `json:"tuple,omitempty"`
	Adjusted  []string `json:"adjusted,omitempty"`
	Nodes     int      `json:"nodes"`
}

// RepairResponse is the /repair answer.
type RepairResponse struct {
	Adjustments []Adjustment `json:"adjustments"`
	Saved       int          `json:"saved"`
	Natural     int          `json:"natural"`
	Exhausted   int          `json:"exhausted"`
}

type detectRequest struct {
	Tuples [][]any `json:"tuples"`
	Member bool    `json:"member,omitempty"`
}

type repairRequest struct {
	Tuples    [][]any `json:"tuples"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// CreateDatasetCSV uploads an inline CSV and returns the built session.
func (c *Client) CreateDatasetCSV(ctx context.Context, name, csv string, p Params) (*serve.SessionInfo, error) {
	var info serve.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/datasets", createRequest{
		Name: name, CSV: csv,
		Eps: p.Eps, Eta: p.Eta, Kappa: p.Kappa, MaxNodes: p.MaxNodes, Seed: p.Seed,
		Index:  p.Index,
		Approx: p.Approx, ApproxConfidence: p.ApproxConfidence,
	}, &info)
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// CreateDatasetRaw uploads an already-encoded dataset-creation body without
// re-encoding it: contentType and body are forwarded verbatim, and rawQuery
// (when non-empty) is appended as the query string — the pass-through a
// coordinator needs to fan one upload out to its worker owners while
// preserving the exact bytes and build parameters the caller sent.
func (c *Client) CreateDatasetRaw(ctx context.Context, contentType, rawQuery string, body []byte) (*serve.SessionInfo, error) {
	path := "/v1/datasets"
	if rawQuery != "" {
		path += "?" + rawQuery
	}
	var info serve.SessionInfo
	if err := c.doBytes(ctx, http.MethodPost, path, contentType, body, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Session fetches one session's info snapshot.
func (c *Client) Session(ctx context.Context, id string) (*serve.SessionInfo, error) {
	var info serve.SessionInfo
	if err := c.do(ctx, http.MethodGet, "/v1/datasets/"+url.PathEscape(id), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// SaveTuple saves one outlier tuple against the session (the single-tuple
// /save endpoint).
func (c *Client) SaveTuple(ctx context.Context, id string, tuple []any, timeoutMS int) (*Adjustment, error) {
	var adj Adjustment
	err := c.do(ctx, http.MethodPost, "/v1/datasets/"+url.PathEscape(id)+"/save",
		mutateRequest{Tuple: tuple, TimeoutMS: timeoutMS}, &adj)
	if err != nil {
		return nil, err
	}
	return &adj, nil
}

// Detect screens tuples against the session's cached index. member declares
// the tuples to be rows of the session's own dataset, excluding each one's
// stored copy from its neighbor count.
func (c *Client) Detect(ctx context.Context, id string, tuples [][]any, member bool) (*DetectResponse, error) {
	var resp DetectResponse
	err := c.do(ctx, http.MethodPost, "/v1/datasets/"+url.PathEscape(id)+"/detect",
		detectRequest{Tuples: tuples, Member: member}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Repair saves a batch of outlier tuples against the session.
func (c *Client) Repair(ctx context.Context, id string, tuples [][]any, timeoutMS int) (*RepairResponse, error) {
	var resp RepairResponse
	err := c.do(ctx, http.MethodPost, "/v1/datasets/"+url.PathEscape(id)+"/repair",
		repairRequest{Tuples: tuples, TimeoutMS: timeoutMS}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// MutateResponse mirrors the server's tuple-mutation answer: the affected
// logical row handle, the live totals after the mutation, and the
// incremental-maintenance footprint (flipped memberships, touched rows).
type MutateResponse struct {
	Op        string `json:"op"`
	Index     int    `json:"index"`
	Tuples    int    `json:"tuples"`
	Inliers   int    `json:"inliers"`
	Outliers  int    `json:"outliers"`
	Flipped   int    `json:"flipped"`
	Touched   int    `json:"touched"`
	Neighbors int    `json:"neighbors"`
	Outlier   bool   `json:"outlier"`
}

type mutateRequest struct {
	Tuple     []any `json:"tuple"`
	TimeoutMS int   `json:"timeout_ms,omitempty"`
}

// InsertTuple appends one tuple to the session's live dataset. The response
// carries the new row's logical handle, stable across later mutations (but
// not across a server restart after deletes). Note the retry layer can
// re-send after an ambiguous failure (timeout, 5xx mid-flight), so an
// insert may be applied twice; callers needing exactly-once should verify
// via the returned totals.
func (c *Client) InsertTuple(ctx context.Context, id string, tuple []any, timeoutMS int) (*MutateResponse, error) {
	var resp MutateResponse
	err := c.do(ctx, http.MethodPost, "/v1/datasets/"+url.PathEscape(id)+"/tuples",
		mutateRequest{Tuple: tuple, TimeoutMS: timeoutMS}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// UpdateTuple replaces the tuple at a logical row handle.
func (c *Client) UpdateTuple(ctx context.Context, id string, index int, tuple []any, timeoutMS int) (*MutateResponse, error) {
	var resp MutateResponse
	err := c.do(ctx, http.MethodPut,
		fmt.Sprintf("/v1/datasets/%s/tuples/%d", url.PathEscape(id), index),
		mutateRequest{Tuple: tuple, TimeoutMS: timeoutMS}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// DeleteTuple removes the tuple at a logical row handle; the handle
// becomes a hole, other handles are unaffected.
func (c *Client) DeleteTuple(ctx context.Context, id string, index int) (*MutateResponse, error) {
	var resp MutateResponse
	err := c.do(ctx, http.MethodDelete,
		fmt.Sprintf("/v1/datasets/%s/tuples/%d", url.PathEscape(id), index), nil, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Delete removes the session.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/datasets/"+url.PathEscape(id), nil, nil)
}

// Ready asks /readyz whether the server should receive traffic. A 503
// (recovering or draining) surfaces as an *APIError.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}
