package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/snapshot"
)

// recoverServer builds a server over the data dir and runs its startup
// replay, failing the test if the replay itself errors.
func recoverServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := newTestServer(t, cfg)
	if err := s.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s
}

// writeTestCSVFile puts the test relation on disk for path-loaded sessions.
func writeTestCSVFile(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, []byte(testCSV(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func openPathSession(t *testing.T, s *Server, path string) SessionInfo {
	t.Helper()
	w := do(t, s, "POST", "/v1/datasets", createRequest{Path: path, Eps: 1, Eta: 3, Kappa: 2})
	if w.Code != http.StatusCreated {
		t.Fatalf("open path: status %d, body %s", w.Code, w.Body.String())
	}
	return decode[SessionInfo](t, w)
}

// TestRestartRecoversWarmSessions is the tentpole acceptance test: build →
// shutdown → restart over the same data dir → the sessions are back under
// their ids, marked recovered, with detection demonstrably skipped (zero
// detect time, the index-build counter still pinned at 2) — and they serve
// saves immediately.
func TestRestartRecoversWarmSessions(t *testing.T) {
	dataDir := t.TempDir()
	srcDir := t.TempDir()
	cfg := Config{DataDir: dataDir, BatchWindow: -1, Workers: 2}
	csvPath := writeTestCSVFile(t, srcDir)

	s1 := New(cfg)
	if err := s1.Recover(context.Background()); err != nil {
		t.Fatalf("first Recover: %v", err)
	}
	up := uploadSession(t, s1)
	byPath := openPathSession(t, s1, csvPath)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2 := recoverServer(t, cfg)
	for _, id := range []string{up.ID, byPath.ID} {
		w := do(t, s2, "GET", "/v1/datasets/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("session %s not recovered: status %d, body %s", id, w.Code, w.Body.String())
		}
		info := decode[SessionInfo](t, w)
		if !info.Recovered {
			t.Errorf("session %s: recovered = false, want true", id)
		}
		// The no-re-detection proof: a recovered session spent zero time in
		// the detection phase and built exactly the two in-memory indexes —
		// full build would show Detect > 0.
		if info.Timings.Detect != 0 {
			t.Errorf("session %s: Timings.Detect = %v, want 0 (detection must be skipped)", id, info.Timings.Detect)
		}
		if info.IndexBuilds != 2 {
			t.Errorf("session %s: index builds = %d, want 2", id, info.IndexBuilds)
		}
		if info.Tuples != up.Tuples || info.Inliers != up.Inliers || info.Outliers != up.Outliers {
			t.Errorf("session %s: shape %d/%d/%d, want %d/%d/%d", id,
				info.Tuples, info.Inliers, info.Outliers, up.Tuples, up.Inliers, up.Outliers)
		}
	}
	// The recovered session is warm: a save works without any rebuild.
	w := do(t, s2, "POST", "/v1/datasets/"+up.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
	if w.Code != http.StatusOK {
		t.Fatalf("save on recovered session: status %d, body %s", w.Code, w.Body.String())
	}
	if adj := decode[adjustmentJSON](t, w); !adj.Saved {
		t.Fatalf("outlier not saved on recovered session: %+v", adj)
	}
	if got := s2.reg.store.Stats(); got.RecoveredSessions != 2 || got.SnapshotLoads != 2 {
		t.Errorf("store stats = %+v, want 2 loads and 2 recovered", got)
	}
}

// TestCorruptSnapshotQuarantinedAndRebuilt: a bit-flipped snapshot must not
// crash recovery or produce a wrong session — it is quarantined (bytes
// preserved) and the session rebuilt from its source path under the same
// id; an upload session, whose data existed only in the payload, is lost
// but the server stays healthy.
func TestCorruptSnapshotQuarantinedAndRebuilt(t *testing.T) {
	dataDir := t.TempDir()
	srcDir := t.TempDir()
	cfg := Config{DataDir: dataDir, BatchWindow: -1, Workers: 2}
	csvPath := writeTestCSVFile(t, srcDir)

	s1 := New(cfg)
	if err := s1.Recover(context.Background()); err != nil {
		t.Fatalf("first Recover: %v", err)
	}
	up := uploadSession(t, s1)
	byPath := openPathSession(t, s1, csvPath)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Flip one payload bit in both snapshots.
	for _, id := range []string{up.ID, byPath.ID} {
		path := filepath.Join(dataDir, id+snapshot.Ext)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading snapshot: %v", err)
		}
		b[len(b)-8] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := recoverServer(t, cfg)
	// The path-loaded session is back (full rebuild from source) under its
	// original id; the checksum caught the corruption, so the flipped data
	// never reached a session.
	w := do(t, s2, "GET", "/v1/datasets/"+byPath.ID, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("rebuilt session missing: status %d, body %s", w.Code, w.Body.String())
	}
	info := decode[SessionInfo](t, w)
	if info.Recovered {
		t.Error("rebuilt-from-source session marked recovered; it went through the full build")
	}
	if info.Tuples != byPath.Tuples || info.Outliers != byPath.Outliers {
		t.Errorf("rebuilt session shape %d/%d, want %d/%d",
			info.Tuples, info.Outliers, byPath.Tuples, byPath.Outliers)
	}
	// The upload session is gone — nothing to rebuild from.
	if w := do(t, s2, "GET", "/v1/datasets/"+up.ID, nil); w.Code != http.StatusNotFound {
		t.Errorf("corrupt upload session: status %d, want 404", w.Code)
	}
	// Both corrupt files are preserved in quarantine, counted in the stats.
	q, err := os.ReadDir(filepath.Join(dataDir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 {
		t.Errorf("%d files in quarantine, want 2", len(q))
	}
	got := s2.reg.store.Stats()
	if got.SnapshotCorrupt != 2 || got.RebuiltSessions != 1 || got.RecoveredSessions != 0 {
		t.Errorf("store stats = %+v, want corrupt=2 rebuilt=1 recovered=0", got)
	}
}

// TestDrainPersistsDirtySessions: a session whose snapshot write failed at
// build time (transient fault) is retried during the graceful drain, so a
// clean shutdown still leaves a recoverable snapshot.
func TestDrainPersistsDirtySessions(t *testing.T) {
	t.Cleanup(fault.Reset)
	dataDir := t.TempDir()
	cfg := Config{DataDir: dataDir, BatchWindow: -1, Workers: 2}

	fault.SetHook(fault.SnapshotWrite, func() error { return fault.ErrInjected })
	s1 := New(cfg)
	if err := s1.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	up := uploadSession(t, s1)
	if got := s1.reg.store.Stats(); got.SnapshotWrites != 0 || got.SnapshotWriteErrors == 0 {
		t.Fatalf("store stats with write fault = %+v, want zero writes and some errors", got)
	}
	// The fault clears (transient disk pressure, say) before the SIGTERM.
	fault.Reset()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s1.reg.store.Stats(); got.SnapshotWrites != 1 {
		t.Fatalf("store stats after drain = %+v, want the dirty session persisted", got)
	}

	s2 := recoverServer(t, cfg)
	w := do(t, s2, "GET", "/v1/datasets/"+up.ID, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("drain-persisted session not recovered: status %d", w.Code)
	}
	if info := decode[SessionInfo](t, w); !info.Recovered {
		t.Error("drain-persisted session not marked recovered")
	}
}

// TestDeleteRemovesSnapshot: an explicit delete must not resurrect at the
// next restart.
func TestDeleteRemovesSnapshot(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{DataDir: dataDir, BatchWindow: -1, Workers: 2}
	s1 := New(cfg)
	if err := s1.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	up := uploadSession(t, s1)
	if w := do(t, s1, "DELETE", "/v1/datasets/"+up.ID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s2 := recoverServer(t, cfg)
	if w := do(t, s2, "GET", "/v1/datasets/"+up.ID, nil); w.Code != http.StatusNotFound {
		t.Errorf("deleted session resurrected: status %d", w.Code)
	}
}

// TestReadyzLifecycle: /livez is always 200; /readyz is 503 before the
// startup replay completes, 200 once recovered, and 503 again during the
// drain.
func TestReadyzLifecycle(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), BatchWindow: -1}
	s := New(cfg)
	if w := do(t, s, "GET", "/livez", nil); w.Code != http.StatusOK {
		t.Fatalf("/livez before recovery: %d, want 200", w.Code)
	}
	if w := do(t, s, "GET", "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before recovery: %d, want 503", w.Code)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w := do(t, s, "GET", "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d, want 200", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if w := do(t, s, "GET", "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", w.Code)
	}
	if w := do(t, s, "GET", "/livez", nil); w.Code != http.StatusOK {
		t.Fatalf("/livez while draining: %d, want 200", w.Code)
	}
	// A server without a data dir has no replay to wait for.
	s2 := newTestServer(t, Config{BatchWindow: -1})
	if w := do(t, s2, "GET", "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("/readyz without data dir: %d, want 200 immediately", w.Code)
	}
}

// TestJSONHardening: malformed bodies, unknown fields, trailing garbage and
// oversize payloads are client errors (400/413), never 500s.
func TestJSONHardening(t *testing.T) {
	s := newTestServer(t, Config{BatchWindow: -1, MaxBodyBytes: 512})
	raw := func(method, path, body, ct string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", ct)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Code
	}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{"csv": `, http.StatusBadRequest},
		{"unknown field", `{"csv": "x\n1", "kapa": 3}`, http.StatusBadRequest},
		{"trailing garbage", `{"csv": "x\n1"} extra`, http.StatusBadRequest},
		{"wrong type", `{"csv": 42}`, http.StatusBadRequest},
		{"oversize", `{"csv": "` + strings.Repeat("a", 2048) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if got := raw("POST", "/v1/datasets", tc.body, "application/json"); got != tc.want {
			t.Errorf("create %s: status %d, want %d", tc.name, got, tc.want)
		}
	}
	// Oversize raw CSV upload takes the 413 path too.
	if got := raw("POST", "/v1/datasets", "x\n"+strings.Repeat("1\n", 2048), "text/csv"); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize CSV: status %d, want 413", got)
	}
	// The hardened decode also guards the per-session endpoints.
	info := uploadSessionSmall(t, s)
	if got := raw("POST", "/v1/datasets/"+info.ID+"/detect", `{"tuples": [[0.0, 0.0]], "bogus": 1}`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("detect unknown field: status %d, want 400", got)
	}
	if got := raw("POST", "/v1/datasets/"+info.ID+"/save", `{"tuple": }`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("save malformed: status %d, want 400", got)
	}
}

// uploadSessionSmall uploads a dataset that fits under a tight MaxBodyBytes.
func uploadSessionSmall(t *testing.T, s *Server) SessionInfo {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("x,y\n")
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			fmt.Fprintf(&sb, "%g,%g\n", float64(i)*0.4, float64(j)*0.4)
		}
	}
	w := do(t, s, "POST", "/v1/datasets", createRequest{Name: "small", CSV: sb.String(), Eps: 1, Eta: 3, Kappa: 2})
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: status %d, body %s", w.Code, w.Body.String())
	}
	return decode[SessionInfo](t, w)
}

// TestDetectMemberMode: a tuple that is a row of the dataset matches its
// own stored copy; without member semantics the self-match can push a true
// outlier over the η threshold.
func TestDetectMemberMode(t *testing.T) {
	// E has exactly 2 true neighbors (B, D) under (ε=1, η=3): an outlier.
	// A naive count of E's row includes E itself → 3 → spuriously inlier.
	csv := "x,y\n0,0\n0.5,0\n0,0.5\n0.25,0.25\n1.2,0\n"
	s := newTestServer(t, Config{BatchWindow: -1})
	w := do(t, s, "POST", "/v1/datasets", createRequest{Name: "m", CSV: csv, Eps: 1, Eta: 3, Kappa: 2})
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	info := decode[SessionInfo](t, w)
	if info.Outliers != 1 {
		t.Fatalf("detection split found %d outliers, want 1", info.Outliers)
	}
	e := []any{1.2, 0.0}
	// Non-member screening of the member row: the self-match hides the
	// violation.
	w = do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect", detectRequest{Tuples: [][]any{e}})
	if got := decode[detectResponse](t, w); got.Results[0].Outlier {
		t.Fatalf("non-member screening flagged the row (neighbors=%d); self-match should hide it", got.Results[0].Neighbors)
	}
	// Member screening matches the session's own detection split.
	w = do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect", detectRequest{Tuples: [][]any{e}, Member: true})
	got := decode[detectResponse](t, w)
	if !got.Results[0].Outlier || got.Results[0].Neighbors != 2 {
		t.Fatalf("member screening = %+v, want outlier with 2 neighbors", got.Results[0])
	}
}

// TestChaosRegistryRestarts is the in-process chaos loop: sessions are
// built and the registry restarted repeatedly while snapshot writes, reads
// and index rebuilds fail probabilistically. The invariant under every
// fault pattern: recovery never errors, every listed session answers
// requests, and a session is either recovered warm, rebuilt from source, or
// absent — never present-but-broken.
func TestChaosRegistryRestarts(t *testing.T) {
	t.Cleanup(fault.Reset)
	dataDir := t.TempDir()
	srcDir := t.TempDir()
	csvPath := writeTestCSVFile(t, srcDir)
	cfg := Config{DataDir: dataDir, BatchWindow: -1, Workers: 2}

	for round := 0; round < 5; round++ {
		// Faults active while building and persisting...
		if err := fault.Configure("snapshot.write:error:0.5,snapshot.read:error:0.3,index.build:error:0.3,batch.dispatch:error:0.2", int64(round)); err != nil {
			t.Fatal(err)
		}
		s := New(cfg)
		if err := s.Recover(context.Background()); err != nil {
			t.Fatalf("round %d: Recover under faults: %v", round, err)
		}
		openPathSession(t, s, csvPath)
		uploadSession(t, s)
		// Every listed session must answer detect and save requests even
		// with dispatch faults active (errors are clean 5xx, not hangs).
		for _, info := range s.reg.List() {
			w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
			if w.Code != http.StatusOK && w.Code != http.StatusGatewayTimeout {
				t.Fatalf("round %d: save on %s: unexpected status %d: %s", round, info.ID, w.Code, w.Body.String())
			}
			if w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect", detectRequest{Tuples: [][]any{{25.0, 25.0}}}); w.Code != http.StatusOK {
				t.Fatalf("round %d: detect on %s: status %d", round, info.ID, w.Code)
			}
		}
		// ...and during the drain.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			cancel()
			t.Fatalf("round %d: Shutdown under faults: %v", round, err)
		}
		cancel()
		fault.Reset()
	}

	// A final clean restart: whatever snapshots survived the chaos must
	// recover or quarantine cleanly, and recovered sessions must serve.
	s := recoverServer(t, cfg)
	for _, info := range s.reg.List() {
		w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
		if w.Code != http.StatusOK {
			t.Fatalf("final: save on %s: status %d: %s", info.ID, w.Code, w.Body.String())
		}
	}
	got := s.reg.store.Stats()
	if got.SnapshotLoads == 0 && got.SnapshotCorrupt == 0 && len(s.reg.List()) > 0 {
		t.Errorf("final recovery did no snapshot work yet has sessions: %+v", got)
	}
}

// TestChaosBatchDispatchPanic: an injected panic inside a save worker is
// recovered by the pool and answered as an error — the caller never hangs
// and the server keeps serving.
func TestChaosBatchDispatchPanic(t *testing.T) {
	t.Cleanup(fault.Reset)
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 2})
	info := uploadSession(t, s)
	if err := fault.Configure("batch.dispatch:panic", 1); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("save under panic injection: status %d, want 504", w.Code)
	}
	fault.Reset()
	w = do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
	if w.Code != http.StatusOK {
		t.Fatalf("save after panic: status %d, want 200 (server must survive)", w.Code)
	}
}
