// Package serve is the long-running serving layer over the DISC pipeline: a
// dataset session registry that builds the neighbor index and
// distance-constraint state once and serves many requests against it, a
// micro-batching executor that coalesces concurrent save requests into
// batches over the shared worker pool, and the JSON-over-HTTP surface of
// cmd/discserve.
//
// The point of the subsystem is amortization: the paper's complexity
// analysis (§4) charges O(m^{κ+1}·n) per outlier on top of index
// construction, and the one-shot CLIs pay the construction on every
// invocation. A session pays it once — upload or load a dataset, build its
// index and η-radius table, then detection is a cheap always-on screen and
// repair a budgeted per-request search, both against cached state.
//
// serve deliberately consumes the public disc API (plus internal/par for
// the worker pool and internal/obs for counters) rather than internal/core:
// it is the first out-of-repo-shaped consumer of the library surface.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	disc "repro"
	"repro/internal/obs"
)

// BuildParams select the dataset and constraints of one session.
type BuildParams struct {
	// Eps and Eta are the distance constraints; non-positive values are
	// determined automatically from the Poisson model (§2.1.2).
	Eps float64
	Eta int
	// Kappa bounds adjusted attributes per save (≤ 0: unrestricted).
	Kappa int
	// MaxNodes bounds the search nodes per save (≤ 0: unlimited).
	MaxNodes int
	// Seed feeds the parameter-determination sampling.
	Seed int64
	// Index names the neighbor index kind ("" or "auto" picks one; see
	// disc.ParseIndexKind for the wire names).
	Index string
	// Approx switches the session's build-time detection to the sampled
	// estimator with exact borderline refinement (disc.DetectApprox);
	// ApproxConfidence tunes its certificate confidence (0 picks the
	// default). Warm /detect requests answer from cached counts either way.
	Approx           bool
	ApproxConfidence float64
}

// key canonicalizes the params for load-by-path deduplication.
func (p BuildParams) key(path string) string {
	return fmt.Sprintf("%s|%g|%d|%d|%d|%d|%s|%t|%g", path, p.Eps, p.Eta, p.Kappa, p.MaxNodes, p.Seed, p.Index, p.Approx, p.ApproxConfidence)
}

// Session is one cached dataset: the relation, its detection split, the
// full-relation index answering /detect, and a warm Saver (inlier index +
// η-radius table + arena pool) answering /save — all built once.
type Session struct {
	ID string
	// Name labels the session for humans (upload name, path, or table1
	// spec); Key is the dedup key for path-loaded sessions ("" for
	// uploads, which are never deduplicated).
	Name, Key string
	// Source is the server-side dataset path for path-loaded sessions (""
	// for uploads); Params are the requested build parameters. Both go into
	// the durable snapshot so a corrupt payload can still be rebuilt from
	// source under identical settings.
	Source string
	Params BuildParams
	Rel    *disc.Relation
	Cons   disc.Constraints
	Kappa  int
	Det    *disc.Detection
	// RelIdx indexes the full relation (detection semantics: |r_ε(t)| is
	// counted over the whole dataset); the saver holds its own index over
	// the inlier subset. relMut is the same index as its mutable wrapper,
	// the handle the mutation path inserts/deletes through.
	RelIdx  disc.NeighborIndex
	relMut  *disc.MutableIndex
	Saver   *disc.Saver
	Created time.Time

	// stateMu guards the mutable dataset state: the relation, both
	// indexes, the detection counts, the saver's inlier set and the
	// logical row mapping. Detect and save requests hold it for reading,
	// mutations exclusively. Lock order: stateMu before mu, always.
	stateMu sync.RWMutex
	// schema is the immutable schema pointer, safe to read without
	// stateMu (compaction swaps Rel but never the schema).
	schema *disc.Schema
	// logical maps API row indices (upload order, then insertion order)
	// to physical rows of Rel; -1 marks a deleted row. Updates tombstone
	// the old physical row and repoint the slot, so row handles survive
	// any mutation sequence.
	logical []int
	// fullToSaver maps full-relation physical rows to the saver's
	// physical rows (-1 for outliers and dead rows), maintained as
	// mutations flip tuples across the η threshold.
	fullToSaver []int
	// inliers/outliers are live counts; Det.Inliers/Det.Outliers go stale
	// under mutation and are only rebuilt at compaction.
	inliers, outliers int
	// mstats counts mutation traffic (see SessionInfo).
	mstats mutStats
	// reg points back at the owning registry so mutations can settle the
	// byte ledger; set once at register time.
	reg *Registry
	// Bytes approximates the session's resident footprint (tuples plus
	// index structures) for the registry's byte bound.
	Bytes int64
	// Timings records the one-off build phases, in the same shape SaveAll
	// reports. On a recovered session Detect and Validate are zero — the
	// snapshot skipped both — and Recovered is set.
	Timings   obs.PhaseTimings
	Recovered bool

	batcher *batcher

	mu       sync.Mutex
	lastUsed time.Time
	// persisted marks the session's snapshot as durably on disk; a session
	// that failed to persist (transient IO error) stays dirty and is retried
	// at drain time. unsnapshottable marks sessions that can never persist
	// (custom text metric) so the drain does not retry them forever.
	persisted       bool
	unsnapshottable bool
	// stats accumulates the index and search traffic of every request
	// served against the cached state; indexBuilds counts build events and
	// never moves after construction — the pair is the warm-path proof
	// that queries flow while nothing is rebuilt.
	stats       obs.SearchStats
	indexBuilds int64
	saves       int64
	detects     int64
	// hists is the per-session half of the serving histograms; every
	// observation lands here and in the registry's global bundle.
	hists obs.ServeHists
}

// observeSave records one save's wall time and node count into the
// session's histograms and the registry's global ones. The double record
// costs six atomic adds per save — nothing next to the save itself — and
// keeps both scopes exact without a merge at scrape time.
func (s *Session) observeSave(d time.Duration, nodes int64) {
	s.hists.Save.Observe(int64(d))
	s.hists.SaveNodes.Observe(nodes)
	if s.reg != nil {
		s.reg.hists.Save.Observe(int64(d))
		s.reg.hists.SaveNodes.Observe(nodes)
	}
}

// observeQueueWait records how long one admitted request waited in the
// queue before a dispatch worker picked it up.
func (s *Session) observeQueueWait(d time.Duration) {
	s.hists.QueueWait.Observe(int64(d))
	if s.reg != nil {
		s.reg.hists.QueueWait.Observe(int64(d))
	}
}

// observeBatchSize records one dispatch's batch size.
func (s *Session) observeBatchSize(n int) {
	s.hists.BatchSize.Observe(int64(n))
	if s.reg != nil {
		s.reg.hists.BatchSize.Observe(int64(n))
	}
}

// observeRedetect records one mutation's re-detection footprint (the
// `touched` count also totalled in mstats.redetectTouched).
func (s *Session) observeRedetect(touched int) {
	s.hists.Redetect.Observe(int64(touched))
	if s.reg != nil {
		s.reg.hists.Redetect.Observe(int64(touched))
	}
}

// mutStats counts a session's mutation traffic. Guarded by Session.mu.
type mutStats struct {
	inserted, updated, deleted int64
	// redetectTouched totals the tuples whose ε-neighbor counts were
	// re-examined by mutations (the incremental alternative to n-sized
	// re-detections).
	redetectTouched int64
	// compactions counts full session rebuilds triggered by tombstone
	// pressure.
	compactions int64
}

// touch marks the session used now (LRU recency).
func (s *Session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// addStats folds one request's search/index traffic into the session.
func (s *Session) addStats(st *obs.SearchStats, saves, detects int64) {
	s.mu.Lock()
	s.stats.Add(st)
	s.saves += saves
	s.detects += detects
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// SessionInfo is the JSON view of a session.
type SessionInfo struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Tuples      int     `json:"tuples"`
	Attrs       int     `json:"attrs"`
	Eps         float64 `json:"eps"`
	Eta         int     `json:"eta"`
	Kappa       int     `json:"kappa"`
	Inliers     int     `json:"inliers"`
	Outliers    int     `json:"outliers"`
	Bytes       int64   `json:"bytes"`
	IndexBuilds int64   `json:"index_builds"`
	Saves       int64   `json:"saves"`
	Detects     int64   `json:"detects"`
	Batches     int64   `json:"batches"`
	QueueDepth  int     `json:"queue_depth"`
	Recovered   bool    `json:"recovered"`
	Index       string  `json:"index"`
	Inserted    int64   `json:"tuples_inserted"`
	Updated     int64   `json:"tuples_updated"`
	Deleted     int64   `json:"tuples_deleted"`
	Redetect    int64   `json:"redetect_touched"`
	DeltaMerges int64   `json:"delta_merges"`
	Compactions int64   `json:"compactions"`
	// ApproxBandFrac is the borderline-band fraction of the approximate
	// detection passes served so far: exact refinements over all
	// approx-classified tuples (0 when the session never ran approximate
	// detection). The speed win is roughly 1 − band fraction.
	ApproxBandFrac float64                `json:"approx_band_frac"`
	CreatedAt      time.Time              `json:"created_at"`
	LastUsedAt     time.Time              `json:"last_used_at"`
	Stats          obs.SearchStats        `json:"stats"`
	Timings        obs.PhaseTimings       `json:"timings"`
	Hists          obs.ServeHistsSnapshot `json:"hists"`
}

// Info snapshots the session.
func (s *Session) Info() SessionInfo {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	bandFrac := 0.0
	if tot := s.stats.ApproxSampled + s.stats.ApproxRefined; tot > 0 {
		bandFrac = float64(s.stats.ApproxRefined) / float64(tot)
	}
	return SessionInfo{
		ID: s.ID, Name: s.Name,
		Tuples: s.relMut.Live(), Attrs: s.Rel.Schema.M(),
		Eps: s.Cons.Eps, Eta: s.Cons.Eta, Kappa: s.Kappa,
		Inliers: s.inliers, Outliers: s.outliers,
		Bytes:       s.Bytes,
		IndexBuilds: s.indexBuilds,
		Saves:       s.saves, Detects: s.detects,
		Batches:    s.batcher.batches.Load(),
		QueueDepth: len(s.batcher.queue),
		Recovered:  s.Recovered,
		Index:      s.relMut.Kind().String(),
		Inserted:   s.mstats.inserted, Updated: s.mstats.updated, Deleted: s.mstats.deleted,
		Redetect:       s.mstats.redetectTouched,
		DeltaMerges:    s.relMut.Merges() + s.Saver.Mutable().Merges(),
		Compactions:    s.mstats.compactions,
		ApproxBandFrac: bandFrac,
		CreatedAt:      s.Created, LastUsedAt: s.lastUsed,
		Stats: s.stats, Timings: s.Timings,
		Hists: s.hists.Snapshot(),
	}
}

// newID returns a 16-hex-char random session id. It is a var so the
// collision regression test can force duplicates; register re-checks
// uniqueness regardless of the generator.
var newID = func() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// estimateBytes approximates the resident footprint of a session built over
// rel: tuple storage plus a factor for the two neighbor indexes, the inlier
// copy and the η-radius table. The registry's byte bound is a capacity
// knob, not an accounting ledger, so a consistent estimate beats an exact
// but expensive measurement.
func estimateBytes(rel *disc.Relation) int64 {
	var b int64
	for _, t := range rel.Tuples {
		b += tupleBytes(t)
	}
	return b
}

// tupleBytes is the per-tuple share of estimateBytes, the increment the
// mutation path applies to the session and registry ledgers on insert
// (and subtracts on delete — tombstoned storage lingers until
// compaction, but the ledger tracks the post-compaction footprint the
// estimate always approximated).
func tupleBytes(t disc.Tuple) int64 {
	const tupleOverhead = 48 // slice header + relation bookkeeping
	const valueBytes = 32    // Value struct (float64 + string header)
	b := tupleOverhead + int64(len(t))*valueBytes
	for i := range t {
		b += int64(len(t[i].Str))
	}
	return 3 * b
}

// buildSession runs the one-off pipeline: validate, determine parameters if
// unset, build the full-relation index, detect, and prepare the saver over
// the inliers. Everything a warm request touches is constructed here.
func buildSession(ctx context.Context, id, name, key, source string, rel *disc.Relation, p BuildParams, cfg Config, log *slog.Logger) (*Session, error) {
	start := time.Now()
	if rel.N() == 0 {
		return nil, fmt.Errorf("serve: dataset %q is empty", name)
	}
	if err := disc.ValidateValues(rel); err != nil {
		return nil, err
	}
	validate := time.Since(start)

	cons := disc.Constraints{Eps: p.Eps, Eta: p.Eta}
	if cons.Eps <= 0 || cons.Eta < 1 {
		choice, err := disc.DetermineParamsContext(ctx, rel, disc.ParamOptions{Seed: p.Seed})
		if err != nil {
			return nil, fmt.Errorf("serve: determining (ε, η) for %q: %w", name, err)
		}
		if cons.Eps <= 0 {
			cons.Eps = choice.Eps
		}
		if cons.Eta < 1 {
			cons.Eta = choice.Eta
		}
	}

	kind, err := disc.ParseIndexKind(p.Index)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	t0 := time.Now()
	relMut, err := disc.NewMutableIndex(rel, cons.Eps, kind)
	if err != nil {
		return nil, fmt.Errorf("serve: indexing %q: %w", name, err)
	}
	detIdxBuild := time.Since(t0)
	var det *disc.Detection
	if p.Approx || cfg.ApproxDefault {
		det, err = disc.DetectApproxWithIndex(ctx, rel, cons, relMut,
			disc.ApproxDetectOptions{Confidence: p.ApproxConfidence, Seed: p.Seed})
	} else {
		det, err = disc.DetectWithIndex(ctx, rel, cons, relMut)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: detecting over %q: %w", name, err)
	}
	if len(det.Inliers) == 0 {
		return nil, fmt.Errorf("serve: every tuple of %q violates (ε=%g, η=%d); nothing to save against", name, cons.Eps, cons.Eta)
	}
	t0 = time.Now()
	saverMut, err := disc.NewMutableIndex(rel.Subset(det.Inliers), cons.Eps, kind)
	if err != nil {
		return nil, fmt.Errorf("serve: indexing inliers of %q: %w", name, err)
	}
	saverIdxBuild := time.Since(t0)
	saver, err := disc.NewSaverContext(ctx, saverMut.Rel(), cons, disc.Options{
		Kappa:    p.Kappa,
		MaxNodes: p.MaxNodes,
		Index:    saverMut,
		Logger:   cfg.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: preparing saver for %q: %w", name, err)
	}
	setupStats, _, etaRadius := saver.SetupStats()

	s := &Session{
		ID: id, Name: name, Key: key,
		Source: source, Params: p,
		Rel: rel, Cons: cons, Kappa: p.Kappa,
		Det: det, RelIdx: relMut, relMut: relMut, Saver: saver,
		Created: time.Now(), Bytes: estimateBytes(rel),
		Timings: obs.PhaseTimings{
			Validate: validate,
			Detect:   det.Elapsed, DetectIndexBuild: detIdxBuild,
			IndexBuild: saverIdxBuild, EtaRadius: etaRadius,
			Total: time.Since(start),
		},
		lastUsed: time.Now(),
		// Exactly two index builds per session lifetime (compactions
		// aside): the full-relation detection index and the saver's
		// inlier index. Warm requests must never move this counter.
		indexBuilds: 2,
	}
	s.initMutableState()
	s.stats.Add(&det.Stats)
	s.stats.Add(&setupStats)
	s.batcher = newBatcher(s, cfg)
	obs.Logger(log).Info("serve: session built", "id", id, "name", name,
		"tuples", rel.N(), "inliers", len(det.Inliers), "outliers", len(det.Outliers),
		"eps", cons.Eps, "eta", cons.Eta, "bytes", s.Bytes,
		"build", s.Timings.Total)
	return s, nil
}

// Registry is the LRU/TTL-bounded session cache. Uploads always create a
// fresh session; load-by-path requests are deduplicated two ways — an
// existing session with the same (path, params) key is returned directly,
// and concurrent builds of the same key collapse onto one in-flight build
// (singleflight) so a thundering herd pays for one index, not N.
type Registry struct {
	cfg Config
	log *slog.Logger
	// store is the durable side (nil without a data dir); storeErr records
	// a failed store init, surfaced by Server.Recover so New keeps its
	// error-free signature.
	store    *Store
	storeErr error
	// hists aggregates the serving histograms across every session this
	// registry ever held — the global half of the per-session/global pair,
	// monotone across session eviction.
	hists obs.ServeHists

	mu       sync.Mutex
	sessions map[string]*Session
	byKey    map[string]*Session
	inflight map[string]*inflightBuild
	bytes    int64
	closed   bool
	evicted  int64
	expired  int64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// inflightBuild is one in-progress load-by-path build; waiters block on
// done and read s/err after it closes.
type inflightBuild struct {
	done chan struct{}
	s    *Session
	err  error
}

// testBuildHook, when non-nil, runs inside every registry build, before the
// session is constructed. Tests use it to hold builds open so concurrent
// loads demonstrably collapse onto one flight.
var testBuildHook func()

// NewRegistry returns an empty registry and starts the TTL janitor when
// cfg.TTL is set.
func NewRegistry(cfg Config) *Registry {
	r := &Registry{
		cfg:      cfg,
		log:      obs.Logger(cfg.Logger),
		sessions: map[string]*Session{},
		byKey:    map[string]*Session{},
		inflight: map[string]*inflightBuild{},
	}
	if cfg.DataDir != "" {
		r.store, r.storeErr = newStore(cfg.DataDir, cfg.Logger)
	}
	if cfg.TTL > 0 {
		r.janitorStop = make(chan struct{})
		r.janitorDone = make(chan struct{})
		go r.janitor()
	}
	return r
}

// janitor sweeps idle sessions every TTL/2.
func (r *Registry) janitor() {
	defer close(r.janitorDone)
	tick := time.NewTicker(r.cfg.TTL / 2)
	defer tick.Stop()
	for {
		select {
		case <-r.janitorStop:
			return
		case now := <-tick.C:
			r.Sweep(now)
		}
	}
}

// Sweep evicts sessions idle longer than the TTL; it is the janitor's body,
// exported so tests (and embedders without the janitor) can drive time
// explicitly.
func (r *Registry) Sweep(now time.Time) {
	if r.cfg.TTL <= 0 {
		return
	}
	var drop []*Session
	r.mu.Lock()
	for _, s := range r.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		s.mu.Unlock()
		// A session with queued or in-flight batcher work is not idle no
		// matter what lastUsed says — closing its batcher would cut off
		// admitted requests mid-queue. It will be swept once drained.
		if idle > r.cfg.TTL && !s.batcher.busy() {
			drop = append(drop, s)
		}
	}
	for _, s := range drop {
		r.removeLocked(s)
		r.expired++
	}
	r.mu.Unlock()
	for _, s := range drop {
		r.log.Info("serve: session expired", "id", s.ID, "name", s.Name, "ttl", r.cfg.TTL)
		if r.store != nil {
			r.store.remove(s.ID)
		}
		go s.batcher.close()
	}
}

// Upload builds a session from an already-parsed relation and registers it
// under a fresh id. Uploads are never deduplicated: two identical uploads
// are two sessions.
func (r *Registry) Upload(ctx context.Context, name string, rel *disc.Relation, p BuildParams) (*Session, error) {
	if testBuildHook != nil {
		testBuildHook()
	}
	s, err := buildSession(ctx, newID(), name, "", "", rel, p, r.cfg, r.log)
	if err != nil {
		return nil, err
	}
	return r.register(ctx, s)
}

// OpenPath returns the session for (path, params), loading and building it
// on first use. Concurrent calls for the same key share one build.
func (r *Registry) OpenPath(ctx context.Context, path string, p BuildParams) (*Session, error) {
	key := p.key(path)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errClosed
	}
	if s, ok := r.byKey[key]; ok {
		r.mu.Unlock()
		s.touch()
		return s, nil
	}
	if fl, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		select {
		case <-fl.done:
			return fl.s, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &inflightBuild{done: make(chan struct{})}
	r.inflight[key] = fl
	r.mu.Unlock()

	s, err := r.buildFromPath(ctx, newID(), path, key, p)
	if err == nil {
		s, err = r.register(ctx, s)
	}
	fl.s, fl.err = s, err
	r.mu.Lock()
	delete(r.inflight, key)
	r.mu.Unlock()
	close(fl.done)
	return s, err
}

// buildFromPath reads the dataset file (CSV, or a dataset JSON written by
// WriteDatasetJSON, which carries its own (ε, η) defaults) and builds the
// session under the given id. Recovery reuses it to rebuild a session whose
// snapshot was corrupt, keeping the original id so clients' handles stay
// valid.
func (r *Registry) buildFromPath(ctx context.Context, id, path, key string, p BuildParams) (*Session, error) {
	if testBuildHook != nil {
		testBuildHook()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening dataset: %w", err)
	}
	defer f.Close()
	var rel *disc.Relation
	if strings.EqualFold(filepath.Ext(path), ".json") {
		ds, err := disc.ReadDatasetJSON(f)
		if err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w", path, err)
		}
		rel = ds.Rel
		if p.Eps <= 0 {
			p.Eps = ds.Eps
		}
		if p.Eta < 1 {
			p.Eta = ds.Eta
		}
	} else {
		rel, err = disc.ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w", path, err)
		}
	}
	return buildSession(ctx, id, path, key, path, rel, p, r.cfg, r.log)
}

// register installs a built session and enforces the count/byte bounds,
// evicting least-recently-used sessions (never the one just added). ctx
// carries the building request's trace, so the registration-time snapshot
// write shows up as a span on dataset-create requests.
func (r *Registry) register(ctx context.Context, s *Session) (*Session, error) {
	var drop []*Session
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		go s.batcher.close()
		return nil, errClosed
	}
	// An id collision would silently shadow the existing session — and
	// store.remove would then delete the survivor's snapshot. Regenerate
	// until unique; 64 random bits make one retry already newsworthy.
	for {
		if _, dup := r.sessions[s.ID]; !dup {
			break
		}
		old := s.ID
		s.ID = newID()
		r.log.Warn("serve: session id collision, regenerated", "old", old, "new", s.ID)
	}
	s.reg = r
	r.sessions[s.ID] = s
	if s.Key != "" {
		r.byKey[s.Key] = s
	}
	r.bytes += s.Bytes
	for r.overLocked() {
		lru := r.lruLocked(s)
		if lru == nil {
			break
		}
		r.removeLocked(lru)
		r.evicted++
		drop = append(drop, lru)
	}
	r.mu.Unlock()
	for _, old := range drop {
		r.log.Info("serve: session evicted", "id", old.ID, "name", old.Name,
			"bytes", old.Bytes, "for", s.ID)
		if r.store != nil {
			r.store.remove(old.ID)
		}
		go old.batcher.close()
	}
	r.persist(ctx, s)
	return s, nil
}

// overLocked reports whether the count or byte bound is exceeded. The
// newest session is always kept even when it alone exceeds MaxBytes —
// evicting what was just built would livelock the cache — hence the
// len > 1 guards.
func (r *Registry) overLocked() bool {
	if r.cfg.MaxSessions > 0 && len(r.sessions) > r.cfg.MaxSessions && len(r.sessions) > 1 {
		return true
	}
	if r.cfg.MaxBytes > 0 && r.bytes > r.cfg.MaxBytes && len(r.sessions) > 1 {
		return true
	}
	return false
}

// lruLocked returns the least-recently-used session other than keep,
// skipping sessions with queued or in-flight batcher work — evicting one
// would cut off admitted requests. When every other session is busy it
// returns nil and the bound stays temporarily exceeded; the next
// register or mutation retries.
func (r *Registry) lruLocked(keep *Session) *Session {
	var lru *Session
	var lruAt time.Time
	for _, s := range r.sessions {
		if s == keep || s.batcher.busy() {
			continue
		}
		s.mu.Lock()
		at := s.lastUsed
		s.mu.Unlock()
		if lru == nil || at.Before(lruAt) {
			lru, lruAt = s, at
		}
	}
	return lru
}

// noteBytes settles a mutation's footprint delta into the session and
// registry ledgers and enforces the byte bound, evicting idle sessions
// (never the mutating one). Called with the session's stateMu held;
// lock order stateMu → r.mu → s.mu.
func (r *Registry) noteBytes(s *Session, delta int64) {
	var drop []*Session
	r.mu.Lock()
	s.mu.Lock()
	s.Bytes += delta
	s.mu.Unlock()
	if _, live := r.sessions[s.ID]; live {
		r.bytes += delta
		for r.overLocked() {
			lru := r.lruLocked(s)
			if lru == nil {
				break
			}
			r.removeLocked(lru)
			r.evicted++
			drop = append(drop, lru)
		}
	}
	r.mu.Unlock()
	for _, old := range drop {
		r.log.Info("serve: session evicted", "id", old.ID, "name", old.Name,
			"bytes", old.Bytes, "for", s.ID)
		if r.store != nil {
			r.store.remove(old.ID)
		}
		go old.batcher.close()
	}
}

// removeLocked unlinks a session from the maps and the byte ledger; the
// caller closes its batcher outside the lock.
func (r *Registry) removeLocked(s *Session) {
	delete(r.sessions, s.ID)
	if s.Key != "" && r.byKey[s.Key] == s {
		delete(r.byKey, s.Key)
	}
	r.bytes -= s.Bytes
}

// Get returns the session and marks it used.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// Delete evicts the session; in-flight requests against it still complete
// (the batcher drains), new ones see 404.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok {
		r.removeLocked(s)
	}
	r.mu.Unlock()
	if ok {
		if r.store != nil {
			r.store.remove(id)
		}
		go s.batcher.close()
	}
	return ok
}

// List snapshots the sessions sorted by id.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Stats returns the registry-level counters for /varz.
func (r *Registry) Stats() (count int, bytes, evicted, expired int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions), r.bytes, r.evicted, r.expired
}

// Close stops admission on every session, drains their queues (in-flight
// and already-queued requests complete), and blocks until every dispatcher
// has exited. The registry rejects new sessions afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	all := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		all = append(all, s)
	}
	r.sessions = map[string]*Session{}
	r.byKey = map[string]*Session{}
	r.bytes = 0
	r.mu.Unlock()
	if r.janitorStop != nil {
		close(r.janitorStop)
		<-r.janitorDone
	}
	// The drain is the last chance to persist sessions whose snapshot write
	// failed earlier (transient IO, injected fault): retry them now so a
	// clean shutdown loses nothing a restart could have recovered.
	for _, s := range all {
		r.persist(context.Background(), s)
	}
	for _, s := range all {
		s.batcher.close()
	}
}
