package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	disc "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
)

// Admission errors, mapped to HTTP statuses by the handlers.
var (
	// errQueueFull means the bounded admission queue had no room — the
	// client should back off (429 + Retry-After).
	errQueueFull = errors.New("serve: admission queue full")
	// errClosed means the session (or server) is draining — requests
	// already admitted will finish, new ones are refused (503).
	errClosed = errors.New("serve: draining, not accepting new work")
)

// saveReq is one admitted save: the tuple, the caller's deadline-carrying
// context, and a buffered reply channel the dispatcher always answers, so a
// caller that gave up never blocks the batch.
type saveReq struct {
	ctx   context.Context
	tuple disc.Tuple
	// mut, when non-nil, makes this request a tuple mutation instead of
	// a save: it rides the same queue so it serializes against admitted
	// detect/save work, and is answered through the same reply channel.
	mut *mutation
	res chan saveRes
	es  *obs.EndpointStats // the HTTP endpoint's counters (save vs repair vs tuples)
	// ep names the endpoint for the pprof labels the dispatch workers run
	// under, so CPU profiles attribute samples to (session, endpoint).
	ep  string
	enq time.Time
}

type saveRes struct {
	adj  disc.Adjustment
	mres mutationResponse
	err  error
}

// batcher is the per-session micro-batching executor. Incoming requests
// enter a bounded queue; a single dispatcher goroutine collects them into
// batches — the first request opens a batch window, everything arriving
// within it (up to maxBatch) rides along — and fans each batch out over the
// par worker pool. Batching exists because one save is short relative to
// scheduling overhead under concurrent load: coalescing turns k concurrent
// HTTP requests into one pool dispatch with k items, the same shape
// SaveAll's fan-out already optimizes for.
type batcher struct {
	session *Session
	queue   chan *saveReq
	window  time.Duration
	max     int
	workers int
	log     interface {
		Debug(msg string, args ...any)
	}

	// admitMu serializes admission against close: senders check capacity
	// and closed under the lock, so the buffered sends in admit never
	// block and never race a close(queue).
	admitMu  sync.Mutex
	closed   bool
	draining atomic.Bool
	done     chan struct{}
	batches  atomic.Int64
	// pending counts admitted requests not yet answered (queued or in
	// the current dispatch). The registry's sweep and LRU eviction skip
	// sessions with pending work — closing their batcher would cut off
	// requests the server already accepted.
	pending atomic.Int64
}

// busy reports whether the batcher holds admitted-but-unanswered work.
func (b *batcher) busy() bool { return b.pending.Load() > 0 }

func newBatcher(s *Session, cfg Config) *batcher {
	b := &batcher{
		session: s,
		queue:   make(chan *saveReq, cfg.MaxQueue),
		window:  cfg.BatchWindow,
		max:     cfg.MaxBatch,
		workers: cfg.Workers,
		log:     obs.Logger(cfg.Logger),
		done:    make(chan struct{}),
	}
	go b.run()
	return b
}

// admit enqueues all of reqs or none of them: partial admission of a batch
// repair would leave the client with half an answer and the queue with
// orphaned work. Admission is all-or-nothing under the lock, where the
// capacity check makes the channel sends non-blocking.
func (b *batcher) admit(reqs ...*saveReq) error {
	b.admitMu.Lock()
	if b.closed {
		b.admitMu.Unlock()
		for _, r := range reqs {
			r.es.Rejected.Add(1)
		}
		return errClosed
	}
	if len(b.queue)+len(reqs) > cap(b.queue) {
		b.admitMu.Unlock()
		for _, r := range reqs {
			r.es.Rejected.Add(1)
		}
		return fmt.Errorf("%w (%d queued, capacity %d, %d arriving)",
			errQueueFull, len(b.queue), cap(b.queue), len(reqs))
	}
	b.pending.Add(int64(len(reqs)))
	for _, r := range reqs {
		r.enq = time.Now()
		b.queue <- r
		r.es.Admitted.Add(1)
	}
	b.admitMu.Unlock()
	return nil
}

// close stops admission and drains: everything already queued is still
// dispatched (counted as Drained), then the dispatcher exits. Idempotent;
// blocks until the drain completes.
func (b *batcher) close() {
	b.admitMu.Lock()
	already := b.closed
	if !already {
		b.closed = true
		b.draining.Store(true)
		close(b.queue)
	}
	b.admitMu.Unlock()
	<-b.done
}

// run is the dispatcher: collect one batch, dispatch it, repeat. A closed
// queue still yields its buffered requests before reporting closed, so the
// drain path reuses the normal loop.
func (b *batcher) run() {
	defer close(b.done)
	for {
		req, ok := <-b.queue
		if !ok {
			return
		}
		batch := b.collect(req)
		b.dispatch(batch)
	}
}

// collect gathers the batch opened by first: requests already queued and
// those arriving within the batch window join, up to the batch cap. A zero
// window still coalesces whatever is already buffered (non-blocking drain)
// — it disables waiting, not batching.
func (b *batcher) collect(first *saveReq) []*saveReq {
	batch := []*saveReq{first}
	if b.window <= 0 || b.draining.Load() {
		for len(batch) < b.max {
			select {
			case r, ok := <-b.queue:
				if !ok {
					return batch
				}
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for len(batch) < b.max {
		select {
		case r, ok := <-b.queue:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// dispatch fans the batch out over the worker pool. Each request runs under
// its own context — a deadline that expired while the request sat in the
// queue is answered immediately, spending no search work — while the pool
// itself runs under no batch-wide cancellation: a drain finishes what was
// admitted.
func (b *batcher) dispatch(batch []*saveReq) {
	b.batches.Add(1)
	b.session.observeBatchSize(len(batch))
	draining := b.draining.Load()
	if len(batch) > 1 {
		for _, r := range batch {
			r.es.Coalesced.Add(1)
		}
	}
	workers := b.workers
	if workers > len(batch) {
		workers = len(batch)
	}
	errs := par.ForEach(context.Background(), len(batch), workers, func(i int) error {
		r := batch[i]
		// The queue span closes the moment a worker picks the request up;
		// its length is the batching + scheduling cost the request paid.
		tr := obs.TraceFrom(r.ctx)
		wstart := time.Now()
		tr.Span("queue", r.enq)
		b.session.observeQueueWait(wstart.Sub(r.enq))
		defer tr.Span("dispatch", wstart)
		if draining {
			r.es.Drained.Add(1)
		}
		if err := r.ctx.Err(); err != nil {
			r.es.Expired.Add(1)
			r.res <- saveRes{err: fmt.Errorf("serve: request expired after %s in queue: %w",
				time.Since(r.enq).Round(time.Millisecond), err)}
			return nil
		}
		// pprof labels scope the worker's samples to (session, endpoint),
		// so a CPU profile of a busy server attributes search work to the
		// sessions that caused it.
		pprof.Do(r.ctx, pprof.Labels("session", b.session.ID, "endpoint", r.ep), func(ctx context.Context) {
			// Inside the worker func so an injected panic exercises the pool's
			// recover path, answering the caller like any other save panic.
			if err := fault.Inject(fault.BatchDispatch); err != nil {
				r.res <- saveRes{err: fmt.Errorf("serve: save failed: %w", err)}
				return
			}
			if r.mut != nil {
				mstart := time.Now()
				mres, err := b.session.applyMutation(r.mut)
				tr.Span("redetect", mstart)
				if err == nil {
					b.session.observeRedetect(mres.Touched)
				}
				r.res <- saveRes{mres: mres, err: err}
				return
			}
			// Saves hold the session state read-lock: a mutation in the same
			// batch (or a later one) takes it exclusively, so each save sees
			// a consistent snapshot of the mutable state.
			sstart := time.Now()
			b.session.stateMu.RLock()
			adj := b.session.Saver.SaveOne(ctx, r.tuple)
			b.session.stateMu.RUnlock()
			tr.Span("save", sstart)
			b.session.observeSave(time.Since(sstart), adj.Stats.Nodes)
			b.session.addStats(&adj.Stats, 1, 0)
			r.res <- saveRes{adj: adj}
		})
		return nil
	})
	// A panic inside one save is recovered by the pool; answer the caller
	// instead of leaving it waiting on the reply channel.
	for _, ie := range errs {
		batch[ie.Index].res <- saveRes{err: fmt.Errorf("serve: save failed: %w", ie.Err)}
	}
	b.pending.Add(-int64(len(batch)))
	if len(batch) > 1 {
		b.log.Debug("serve: batch dispatched", "session", b.session.ID,
			"size", len(batch), "draining", draining)
	}
}
