package serve

import (
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
)

// handleMetrics serves Prometheus text exposition format — the same
// counters as /varz, shaped for a standard scraper, plus the full bucket
// vectors of every histogram (which /varz summarizes to percentiles).
// Dependency-free: the writer lives in internal/obs.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	s.writeMetrics(p)
	if err := p.Flush(); err != nil {
		s.log.Warn("serve: writing /metrics", "err", err)
	}
}

// nsScale converts nanosecond histogram observations to the seconds
// Prometheus latency conventions expect.
const nsScale = 1e-9

// boolGauge renders a bool as 0/1.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// writeMetrics emits every family. The exposition format requires all
// series of one family to form a single group, so iteration is
// metric-major: each family loops over endpoints or sessions, not the
// other way around.
func (s *Server) writeMetrics(p *obs.PromWriter) {
	count, bytes, evicted, expired := s.reg.Stats()
	p.Gauge("disc_uptime_seconds", "Seconds since the server started.",
		time.Since(s.start).Seconds())
	p.Gauge("disc_ready", "1 when the server is serving traffic (snapshot replay done, not draining).",
		boolGauge(s.ready.Load()))
	p.Gauge("disc_draining", "1 once a graceful drain has begun.",
		boolGauge(s.draining.Load()))
	p.Counter("disc_panics_recovered_total", "Handler panics recovered by the middleware.",
		float64(s.panics.Load()))
	p.Counter("disc_traces_total", "API request traces recorded (bounded ring retains the most recent).",
		float64(s.traces.Total()))

	p.Gauge("disc_registry_sessions", "Sessions resident in the registry.", float64(count))
	p.Gauge("disc_registry_bytes", "Approximate resident bytes across sessions.", float64(bytes))
	p.Gauge("disc_registry_max_sessions", "Configured session-count bound.", float64(s.cfg.MaxSessions))
	p.Gauge("disc_registry_max_bytes", "Configured byte bound (0 = unbounded).", float64(s.cfg.MaxBytes))
	p.Counter("disc_registry_evicted_total", "Sessions evicted by the LRU count/byte bounds.", float64(evicted))
	p.Counter("disc_registry_expired_total", "Sessions expired by the idle TTL.", float64(expired))

	// Endpoint admission counters: one family per EndpointSnapshot json
	// tag, one series per endpoint. Reflection keeps this loop and the
	// docs drift check on the same tag universe — a counter added to
	// EndpointStats appears here with no exporter change.
	endpointNames := make([]string, 0, len(s.endpoints))
	for name := range s.endpoints {
		endpointNames = append(endpointNames, name)
	}
	// map order is random; the exposition format does not care about series
	// order within a family, but tests are simpler against sorted output.
	sort.Strings(endpointNames)
	snaps := make([]obs.EndpointSnapshot, len(endpointNames))
	for i, name := range endpointNames {
		snaps[i] = s.endpoints[name].Snapshot()
	}
	for ti, tag := range obs.CounterNames(obs.EndpointSnapshot{}) {
		for i, name := range endpointNames {
			p.Counter("disc_endpoint_"+tag+"_total",
				"Endpoint admission lifecycle counter (docs/OBSERVABILITY.md).",
				float64(obs.Counters(snaps[i])[ti].Value), "endpoint", name)
		}
	}
	for i, name := range endpointNames {
		p.Histogram("disc_request_seconds",
			"End-to-end request latency by endpoint, middleware-measured.",
			snaps[i].Latency, nsScale, "endpoint", name)
	}

	// Global serving histograms: monotone across session eviction, the
	// series an alerting rule should watch.
	gh := s.reg.hists.Snapshot()
	p.Histogram("disc_save_seconds", "Per-save wall time inside the dispatch workers.", gh.Save, nsScale)
	p.Histogram("disc_save_nodes", "Search nodes expanded per save.", gh.SaveNodes, 1)
	p.Histogram("disc_queue_wait_seconds", "Admission-queue wait per request.", gh.QueueWait, nsScale)
	p.Histogram("disc_batch_size", "Requests per batch dispatch.", gh.BatchSize, 1)
	p.Histogram("disc_redetect_touched", "Tuples re-examined per mutation.", gh.Redetect, 1)

	// Per-session series, labeled (session id, human name). Session names
	// are user-supplied — the label escaping is load-bearing here.
	infos := make([]SessionInfo, 0, count)
	for _, sess := range s.reg.List() {
		infos = append(infos, sess.Info())
	}
	labels := func(i int) []string {
		return []string{"session", infos[i].ID, "name", infos[i].Name}
	}
	for ti, tag := range obs.CounterNames(obs.SearchStats{}) {
		for i := range infos {
			p.Counter("disc_session_search_"+tag+"_total",
				"Per-session DISC search/index counter (docs/OBSERVABILITY.md).",
				float64(obs.Counters(infos[i].Stats)[ti].Value), labels(i)...)
		}
	}
	for i := range infos {
		p.Counter("disc_session_saves_total", "Save requests served by the session.",
			float64(infos[i].Saves), labels(i)...)
	}
	for i := range infos {
		p.Counter("disc_session_detects_total", "Tuples screened by /detect against the session.",
			float64(infos[i].Detects), labels(i)...)
	}
	for i := range infos {
		p.Counter("disc_session_batches_total", "Batches dispatched by the session's executor.",
			float64(infos[i].Batches), labels(i)...)
	}
	for i := range infos {
		p.Counter("disc_session_mutations_total", "Tuple mutations applied (insert+update+delete).",
			float64(infos[i].Inserted+infos[i].Updated+infos[i].Deleted), labels(i)...)
	}
	for i := range infos {
		p.Gauge("disc_session_queue_depth", "Requests currently queued for the session.",
			float64(infos[i].QueueDepth), labels(i)...)
	}
	for i := range infos {
		p.Gauge("disc_session_bytes", "Approximate resident bytes of the session.",
			float64(infos[i].Bytes), labels(i)...)
	}
	for i := range infos {
		p.Gauge("disc_session_approx_band_frac", "Borderline-band fraction of the session's approximate detection (exact refinements / approx-classified tuples).",
			infos[i].ApproxBandFrac, labels(i)...)
	}
	for i := range infos {
		p.Histogram("disc_session_save_seconds", "Per-save wall time, per session.",
			infos[i].Hists.Save, nsScale, labels(i)...)
	}
	for i := range infos {
		p.Histogram("disc_session_save_nodes", "Search nodes per save, per session.",
			infos[i].Hists.SaveNodes, 1, labels(i)...)
	}
	for i := range infos {
		p.Histogram("disc_session_queue_wait_seconds", "Queue wait per request, per session.",
			infos[i].Hists.QueueWait, nsScale, labels(i)...)
	}
	for i := range infos {
		p.Histogram("disc_session_batch_size", "Batch size per dispatch, per session.",
			infos[i].Hists.BatchSize, 1, labels(i)...)
	}
	for i := range infos {
		p.Histogram("disc_session_redetect_touched", "Tuples re-examined per mutation, per session.",
			infos[i].Hists.Redetect, 1, labels(i)...)
	}

	// Store counters and snapshot-write latency, present only with a data
	// dir.
	if st := s.reg.store; st != nil {
		snap := st.Stats()
		for _, c := range obs.Counters(snap) {
			p.Counter("disc_store_"+c.Name+"_total",
				"Durable session store counter (docs/OBSERVABILITY.md).", float64(c.Value))
		}
		p.Histogram("disc_snapshot_write_seconds", "Durable snapshot write wall time.",
			snap.SnapshotWrite, nsScale)
	}
}
