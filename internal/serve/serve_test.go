package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	disc "repro"
	"repro/internal/obs"
)

// testRelation is a tight 2D cluster: every tuple has plenty of ε-neighbors
// under (ε=1, η=3), so the whole relation is inliers and the saver has a
// full-strength inlier set to repair against.
func testRelation() *disc.Relation {
	r := disc.NewRelation(disc.NewNumericSchema("x", "y"))
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			r.Append(disc.Tuple{disc.Num(float64(i) * 0.4), disc.Num(float64(j) * 0.4)})
		}
	}
	return r
}

func testCSV(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := disc.WriteCSV(&buf, testRelation()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.String()
}

var testParams = BuildParams{Eps: 1, Eta: 3, Kappa: 2}

// outlierTuple is far from the cluster: detection flags it, a save adjusts
// it back.
func outlierTuple() disc.Tuple {
	return disc.Tuple{disc.Num(25), disc.Num(25)}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

// do routes one request through the full middleware + mux stack.
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
	return v
}

func uploadSession(t *testing.T, s *Server) SessionInfo {
	t.Helper()
	w := do(t, s, "POST", "/v1/datasets", createRequest{
		Name: "test", CSV: testCSV(t), Eps: 1, Eta: 3, Kappa: 2,
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("upload: status %d, body %s", w.Code, w.Body.String())
	}
	return decode[SessionInfo](t, w)
}

// TestWarmSaveNoRebuild is the acceptance criterion of the serving layer:
// repeated saves against a warm session run queries against the cached
// indexes and never rebuild them.
func TestWarmSaveNoRebuild(t *testing.T) {
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 2})
	info := uploadSession(t, s)
	if info.IndexBuilds != 2 {
		t.Fatalf("fresh session index builds = %d, want 2 (detect + saver)", info.IndexBuilds)
	}
	if info.Inliers == 0 {
		t.Fatalf("no inliers in test session: %+v", info)
	}

	prevEvals := info.Stats.DistEvals
	for i := 0; i < 5; i++ {
		w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{
			Tuple: []any{25.0, 25.0},
		})
		if w.Code != http.StatusOK {
			t.Fatalf("save %d: status %d, body %s", i, w.Code, w.Body.String())
		}
		adj := decode[adjustmentJSON](t, w)
		if !adj.Saved {
			t.Fatalf("save %d: outlier not saved: %+v", i, adj)
		}

		cur := decode[SessionInfo](t, do(t, s, "GET", "/v1/datasets/"+info.ID, nil))
		if cur.IndexBuilds != 2 {
			t.Fatalf("save %d rebuilt an index: index_builds = %d, want 2", i, cur.IndexBuilds)
		}
		if cur.Stats.DistEvals <= prevEvals {
			t.Fatalf("save %d: dist evals did not grow (%d -> %d); the cached index did not serve the request",
				i, prevEvals, cur.Stats.DistEvals)
		}
		prevEvals = cur.Stats.DistEvals
		if cur.Saves != int64(i+1) {
			t.Fatalf("save %d: session saves = %d, want %d", i, cur.Saves, i+1)
		}
	}
}

func TestDetectEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	info := uploadSession(t, s)

	w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/detect", detectRequest{
		Tuples: [][]any{{0.4, 0.4}, {25.0, 25.0}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("detect: status %d, body %s", w.Code, w.Body.String())
	}
	resp := decode[detectResponse](t, w)
	if len(resp.Results) != 2 {
		t.Fatalf("detect results = %d, want 2", len(resp.Results))
	}
	if resp.Results[0].Outlier {
		t.Errorf("cluster-center tuple flagged outlier (neighbors=%d)", resp.Results[0].Neighbors)
	}
	if !resp.Results[1].Outlier {
		t.Errorf("far tuple not flagged outlier (neighbors=%d)", resp.Results[1].Neighbors)
	}

	cur := decode[SessionInfo](t, do(t, s, "GET", "/v1/datasets/"+info.ID, nil))
	if cur.IndexBuilds != 2 {
		t.Errorf("detect rebuilt an index: index_builds = %d, want 2", cur.IndexBuilds)
	}
	if cur.Detects != 2 {
		t.Errorf("session detects = %d, want 2", cur.Detects)
	}
	if cur.Stats.RangeQueries <= info.Stats.RangeQueries {
		t.Errorf("detect ran no range queries against the cached index (%d -> %d)",
			info.Stats.RangeQueries, cur.Stats.RangeQueries)
	}
}

// TestQueueOverflow429 fills a session's admission queue (no dispatcher
// draining it) and asserts the next request is refused with 429 and a
// Retry-After hint, without splitting batches.
func TestQueueOverflow429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	info := uploadSession(t, s)
	sess, ok := s.reg.Get(info.ID)
	if !ok {
		t.Fatal("session vanished")
	}

	// Swap in a batcher with a tiny queue and no dispatcher: whatever is
	// admitted stays queued, so overflow is deterministic.
	sess.batcher.close()
	nb := &batcher{
		session: sess,
		queue:   make(chan *saveReq, 2),
		max:     64, workers: 1,
		log:  obs.Logger(nil),
		done: make(chan struct{}),
	}
	sess.batcher = nb

	es := &obs.EndpointStats{}
	fill := make([]*saveReq, 2)
	for i := range fill {
		fill[i] = &saveReq{ctx: context.Background(), tuple: outlierTuple(),
			res: make(chan saveRes, 1), es: es}
	}
	if err := nb.admit(fill...); err != nil {
		t.Fatalf("filling queue: %v", err)
	}

	w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429; body %s", w.Code, w.Body.String())
	}
	retry, err := strconv.Atoi(w.Result().Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", w.Result().Header.Get("Retry-After"))
	}
	if got := s.endpoints["save"].Rejected.Load(); got != 1 {
		t.Errorf("save endpoint rejected = %d, want 1", got)
	}

	// A batch repair that does not fit is refused whole: nothing admitted.
	if err := nb.admit(&saveReq{es: es}, &saveReq{es: es}); err == nil {
		t.Error("partial batch admission: want errQueueFull, got nil")
	}
	if got := len(nb.queue); got != 2 {
		t.Errorf("queue length after refused batch = %d, want 2 (all-or-nothing)", got)
	}

	// Start the dispatcher and drain; the queued fill requests get answers.
	go nb.run()
	nb.close()
	for i, r := range fill {
		select {
		case res := <-r.res:
			if res.err != nil {
				t.Errorf("fill %d: drain answered error: %v", i, res.err)
			}
		default:
			t.Errorf("fill %d: never answered", i)
		}
	}
}

// TestDeadlineExpiredInQueue: a request whose deadline passed while queued
// is answered with the deadline error before any search work runs.
func TestDeadlineExpiredInQueue(t *testing.T) {
	s := newTestServer(t, Config{BatchWindow: -1, Workers: 1})
	info := uploadSession(t, s)
	sess, _ := s.reg.Get(info.ID)

	es := &obs.EndpointStats{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before admission
	req := &saveReq{ctx: ctx, tuple: outlierTuple(), res: make(chan saveRes, 1), es: es}
	if err := sess.batcher.admit(req); err != nil {
		t.Fatalf("admit: %v", err)
	}
	res := <-req.res
	if res.err == nil || !strings.Contains(res.err.Error(), "expired") {
		t.Fatalf("expired request answered %v, want queue-expiry error", res.err)
	}
	if got := es.Expired.Load(); got != 1 {
		t.Errorf("expired counter = %d, want 1", got)
	}
	cur := decode[SessionInfo](t, do(t, s, "GET", "/v1/datasets/"+info.ID, nil))
	if cur.Saves != 0 {
		t.Errorf("expired request ran a save: session saves = %d, want 0", cur.Saves)
	}
}

// TestDrainCompletesInFlight: shutdown finishes everything already admitted,
// then refuses new work with 503.
func TestDrainCompletesInFlight(t *testing.T) {
	s := New(Config{BatchWindow: -1, Workers: 2})
	info := uploadSession(t, s)
	sess, _ := s.reg.Get(info.ID)

	es := &obs.EndpointStats{}
	reqs := make([]*saveReq, 4)
	for i := range reqs {
		reqs[i] = &saveReq{ctx: context.Background(), tuple: outlierTuple(),
			res: make(chan saveRes, 1), es: es}
	}
	if err := sess.batcher.admit(reqs...); err != nil {
		t.Fatalf("admit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i, r := range reqs {
		select {
		case res := <-r.res:
			if res.err != nil {
				t.Errorf("request %d: drained with error: %v", i, res.err)
			} else if !res.adj.Saved() {
				t.Errorf("request %d: drained but not saved", i)
			}
		default:
			t.Errorf("request %d admitted before drain was never answered", i)
		}
	}

	if w := do(t, s, "GET", "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", w.Code)
	}
	w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("save while draining = %d, want 503; body %s", w.Code, w.Body.String())
	}
	if w.Result().Header.Get("Retry-After") == "" {
		t.Error("draining 503 carries no Retry-After")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestRegistryLRU(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 2, Workers: 1})
	first := uploadSession(t, s)
	second := uploadSession(t, s)
	third := uploadSession(t, s)

	if _, ok := s.reg.Get(first.ID); ok {
		t.Errorf("LRU session %s still resident after bound exceeded", first.ID)
	}
	for _, id := range []string{second.ID, third.ID} {
		if _, ok := s.reg.Get(id); !ok {
			t.Errorf("recent session %s evicted", id)
		}
	}
	count, _, evicted, _ := s.reg.Stats()
	if count != 2 || evicted != 1 {
		t.Errorf("registry count=%d evicted=%d, want 2/1", count, evicted)
	}
}

func TestRegistryBytesBound(t *testing.T) {
	// MaxBytes below one session's footprint: each new session evicts the
	// previous, but the newest is always kept (no livelock).
	s := newTestServer(t, Config{MaxBytes: 1, Workers: 1})
	first := uploadSession(t, s)
	second := uploadSession(t, s)
	if _, ok := s.reg.Get(first.ID); ok {
		t.Errorf("session %s resident beyond byte bound", first.ID)
	}
	if _, ok := s.reg.Get(second.ID); !ok {
		t.Errorf("newest session %s evicted despite newest-kept rule", second.ID)
	}
}

func TestRegistryTTL(t *testing.T) {
	s := newTestServer(t, Config{TTL: time.Hour, Workers: 1})
	info := uploadSession(t, s)
	s.reg.Sweep(time.Now()) // nothing idle long enough
	if _, ok := s.reg.Get(info.ID); !ok {
		t.Fatal("session expired before TTL")
	}
	s.reg.Sweep(time.Now().Add(2 * time.Hour))
	if _, ok := s.reg.Get(info.ID); ok {
		t.Error("session resident past TTL sweep")
	}
	if _, _, _, expired := s.reg.Stats(); expired != 1 {
		t.Errorf("expired counter = %d, want 1", expired)
	}
}

// TestOpenPathSingleflight: concurrent loads of the same path share one
// build, and a later load hits the cached session.
func TestOpenPathSingleflight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(testCSV(t)), 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int32
	release := make(chan struct{})
	testBuildHook = func() { calls.Add(1); <-release }
	defer func() { testBuildHook = nil }()

	s := New(Config{Workers: 1})
	defer func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	type result struct {
		sess *Session
		err  error
	}
	results := make(chan result, 2)
	open := func() {
		sess, err := s.reg.OpenPath(context.Background(), path, testParams)
		results <- result{sess, err}
	}
	go open()
	// Wait until the first build is inside the hook, so the second call
	// demonstrably finds the in-flight build rather than racing it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	go open()
	time.Sleep(10 * time.Millisecond)
	close(release)

	var ids []string
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("OpenPath: %v", r.err)
		}
		ids = append(ids, r.sess.ID)
	}
	if ids[0] != ids[1] {
		t.Errorf("concurrent loads built separate sessions: %s vs %s", ids[0], ids[1])
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("build ran %d times, want 1 (singleflight)", got)
	}

	// Third load: cache hit, still one build.
	sess, err := s.reg.OpenPath(context.Background(), path, testParams)
	if err != nil {
		t.Fatalf("cached OpenPath: %v", err)
	}
	if sess.ID != ids[0] {
		t.Errorf("cached load returned session %s, want %s", sess.ID, ids[0])
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("cached load rebuilt: %d builds", got)
	}

	// Different params on the same path: a distinct session.
	other := testParams
	other.Kappa = 1
	sess2, err := s.reg.OpenPath(context.Background(), path, other)
	if err != nil {
		t.Fatalf("OpenPath new params: %v", err)
	}
	if sess2.ID == ids[0] {
		t.Error("different params deduplicated onto the same session")
	}
}

func TestRequestErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	info := uploadSession(t, s)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown session", "GET", "/v1/datasets/deadbeef", nil, http.StatusNotFound},
		{"delete unknown", "DELETE", "/v1/datasets/deadbeef", nil, http.StatusNotFound},
		{"save unknown session", "POST", "/v1/datasets/deadbeef/save",
			saveRequest{Tuple: []any{1.0, 2.0}}, http.StatusNotFound},
		{"wrong arity", "POST", "/v1/datasets/" + info.ID + "/save",
			saveRequest{Tuple: []any{1.0}}, http.StatusBadRequest},
		{"wrong type", "POST", "/v1/datasets/" + info.ID + "/save",
			saveRequest{Tuple: []any{"abc", 2.0}}, http.StatusBadRequest},
		{"empty detect", "POST", "/v1/datasets/" + info.ID + "/detect",
			detectRequest{}, http.StatusBadRequest},
		{"no source", "POST", "/v1/datasets", createRequest{Eps: 1, Eta: 3}, http.StatusBadRequest},
		{"two sources", "POST", "/v1/datasets",
			createRequest{CSV: "x:numeric\n1", Table1: "Letter"}, http.StatusBadRequest},
		{"bad csv", "POST", "/v1/datasets", createRequest{CSV: "x:numeric\n\"unterminated"},
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := do(t, s, tc.method, tc.path, tc.body)
		if w.Code != tc.want {
			t.Errorf("%s: status = %d, want %d; body %s", tc.name, w.Code, tc.want, w.Body.String())
		}
		if tc.want >= 400 {
			e := decode[errorJSON](t, w)
			if e.Error == "" {
				t.Errorf("%s: error body missing message: %s", tc.name, w.Body.String())
			}
		}
	}
}

func TestRepairBatch(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	info := uploadSession(t, s)

	w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/repair", repairRequest{
		Tuples: [][]any{{25.0, 25.0}, {0.4, 0.4}, {-30.0, 12.0}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("repair: status %d, body %s", w.Code, w.Body.String())
	}
	resp := decode[repairResponse](t, w)
	if len(resp.Adjustments) != 3 {
		t.Fatalf("adjustments = %d, want 3", len(resp.Adjustments))
	}
	// Tuple 1 already satisfies the constraints: saved at zero cost, no
	// attribute touched.
	if a := resp.Adjustments[1]; !a.Saved || a.Cost != 0 || len(a.Adjusted) != 0 {
		t.Errorf("inlier tuple not a zero-cost save: %+v", a)
	}
	if a := resp.Adjustments[0]; !a.Saved || a.Cost <= 0 || len(a.Adjusted) == 0 {
		t.Errorf("outlier tuple not saved by adjustment: %+v", a)
	}
	if !resp.Adjustments[2].Saved {
		t.Errorf("outlier tuple not saved: %+v", resp.Adjustments[2])
	}
	if resp.Saved != 3 || resp.Natural != 0 {
		t.Errorf("summary saved=%d natural=%d, want 3/0", resp.Saved, resp.Natural)
	}
	for i, adj := range resp.Adjustments {
		if adj.Saved && len(adj.Tuple) != 2 {
			t.Errorf("adjustment %d: saved without repaired tuple: %+v", i, adj)
		}
	}
}

func TestVarz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	info := uploadSession(t, s)
	do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{Tuple: []any{25.0, 25.0}})

	w := do(t, s, "GET", "/varz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("varz: status %d", w.Code)
	}
	var varz struct {
		Draining  bool `json:"draining"`
		Endpoints map[string]obs.EndpointSnapshot
		Registry  struct {
			Sessions int `json:"sessions"`
		} `json:"registry"`
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &varz); err != nil {
		t.Fatalf("decode varz: %v\n%s", err, w.Body.String())
	}
	if varz.Registry.Sessions != 1 || len(varz.Sessions) != 1 {
		t.Errorf("varz sessions registry=%d list=%d, want 1/1", varz.Registry.Sessions, len(varz.Sessions))
	}
	if got := varz.Endpoints["save"]; got.Requests != 1 || got.Admitted != 1 {
		t.Errorf("varz save endpoint = %+v, want 1 request 1 admitted", got)
	}
	if got := varz.Endpoints["datasets"]; got.Requests != 1 {
		t.Errorf("varz datasets endpoint = %+v, want 1 request", got)
	}
	if varz.Sessions[0].IndexBuilds != 2 {
		t.Errorf("varz session index_builds = %d, want 2", varz.Sessions[0].IndexBuilds)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// Force a panic through the middleware stack with a handler the mux
	// reaches: a nil-session map access is not reachable from outside, so
	// register a panicking route on a fresh mux wrapped the same way.
	h := s.wrap(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/panic", nil))
	if w.Code != http.StatusInternalServerError {
		t.Errorf("panic status = %d, want 500", w.Code)
	}
	e := decode[errorJSON](t, w)
	if e.Error == "" || e.RequestID == "" {
		t.Errorf("panic body = %s, want error + request_id", w.Body.String())
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "client-supplied-7")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if got := w.Result().Header.Get("X-Request-ID"); got != "client-supplied-7" {
		t.Errorf("request id echoed = %q, want client-supplied-7", got)
	}
	// Minted when absent.
	w2 := do(t, s, "GET", "/healthz", nil)
	if w2.Result().Header.Get("X-Request-ID") == "" {
		t.Error("no request id minted")
	}
}

// TestConcurrentSaves hammers one warm session from many goroutines; under
// -race this doubles as the data-race check on the whole serving path.
func TestConcurrentSaves(t *testing.T) {
	s := newTestServer(t, Config{BatchWindow: 2 * time.Millisecond, Workers: 4})
	info := uploadSession(t, s)

	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(t, s, "POST", "/v1/datasets/"+info.ID+"/save", saveRequest{
				Tuple: []any{25.0 + float64(i), 25.0},
			})
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("concurrent save %d: status %d", i, c)
		}
	}
	cur := decode[SessionInfo](t, do(t, s, "GET", "/v1/datasets/"+info.ID, nil))
	if cur.IndexBuilds != 2 {
		t.Errorf("concurrent saves rebuilt an index: %d", cur.IndexBuilds)
	}
	if cur.Saves != n {
		t.Errorf("session saves = %d, want %d", cur.Saves, n)
	}
	// With a batch window and 24 concurrent arrivals, at least some shared
	// a dispatch.
	if got := s.endpoints["save"].Coalesced.Load(); got == 0 {
		t.Logf("note: no saves coalesced under concurrency (timing-dependent)")
	}
}

func TestTable1Source(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	w := do(t, s, "POST", "/v1/datasets", createRequest{Table1: "Letter", Scale: 0.05, Seed: 1, Kappa: 2})
	if w.Code != http.StatusCreated {
		t.Fatalf("table1 upload: status %d, body %s", w.Code, w.Body.String())
	}
	info := decode[SessionInfo](t, w)
	if info.Tuples == 0 || info.Eps <= 0 || info.Eta < 1 {
		t.Errorf("table1 session = %+v, want tuples and constraints filled", info)
	}
	// The dataset's own (ε, η) defaults were adopted.
	w2 := do(t, s, "POST", fmt.Sprintf("/v1/datasets/%s/detect", info.ID), detectRequest{
		Tuples: [][]any{make([]any, 0)},
	})
	if w2.Code != http.StatusBadRequest {
		t.Errorf("empty tuple detect = %d, want 400", w2.Code)
	}
}

func TestDeleteSession(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	info := uploadSession(t, s)
	if w := do(t, s, "DELETE", "/v1/datasets/"+info.ID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	if w := do(t, s, "GET", "/v1/datasets/"+info.ID, nil); w.Code != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", w.Code)
	}
	count, bytes, _, _ := s.reg.Stats()
	if count != 0 || bytes != 0 {
		t.Errorf("registry after delete: count=%d bytes=%d, want 0/0", count, bytes)
	}
}
