// Approximate detection: sensitivity-sampled neighbor counts with exact
// borderline refinement. The exact pass pays one index query per tuple —
// Ω(n · query) — even though the vast majority of tuples are unambiguous.
// This file classifies each tuple from an ε-probe against a small sampled
// sub-index instead: a two-sided confidence bound either certifies the
// tuple as a clear inlier or clear outlier from the sample alone, or drops
// it into the borderline band, which alone pays today's exact machinery.
// Total cost grows with the band, not with n.
//
// Soundness of the certificates, which the differential test pins:
//
//   - Clear inlier: a without-replacement sample can only undercount, and
//     the Wilson lower bound is conservative for the hypergeometric, so a
//     sample hit count whose lower bound scales to ≥ η implies the true
//     count is ≥ η with the configured confidence. The threshold xClear is
//     precomputed once, and the sampled probe uses it as its CountWithin
//     cap — the probe early-exits the moment certification is reached.
//   - Clear outlier: the grid cube-population bound (neighbors.CubeBound)
//     is a deterministic upper bound costing zero distance evaluations;
//     ub < η proves the tuple violates the constraints. The Wilson upper
//     bound supplies the same certificate statistically when the cube
//     bound is unavailable (non-grid index, wide radius).
//   - Everything else is the borderline band and gets the exact count,
//     capped at η (detection only needs the side of η, so the refinement
//     rides the CountWithin early exit).
//
// At η well below xClear — every realistic configuration, since xClear ≈
// z² + η·s/n — the inlier certificate cannot misfire even in the worst
// case, so with refinement enabled the detection split is bit-identical to
// DetectContext's for any seed.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/data"
	"repro/internal/neighbors"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stats"
)

// DefaultApproxConfidence is the two-sided confidence of the sampled
// certificates when ApproxOptions.Confidence is zero.
const DefaultApproxConfidence = 0.999

// DefaultApproxMinN is the relation size below which approximate detection
// silently falls back to the exact pass: under a few thousand tuples the
// sample is the relation and the estimator overhead buys nothing.
const DefaultApproxMinN = 2048

// ApproxOptions configure the approximate detection path.
type ApproxOptions struct {
	// Confidence is the two-sided confidence level of the sampled
	// inlier/outlier certificates (0 < Confidence < 1). For
	// Options.ApproxDetect a zero Confidence leaves approximation off;
	// the explicit DetectApprox entry points default it to
	// DefaultApproxConfidence.
	Confidence float64
	// MinN is the relation size below which detection stays exact
	// (≤ 0 selects DefaultApproxMinN).
	MinN int
	// SampleRate overrides the sample size as a fraction of n (0 < rate
	// < 1). Zero selects the default policy: n/8 clamped to
	// [1024, 131072] — large enough that dense inliers certify from the
	// sample, small enough that the probe stays an order of magnitude
	// cheaper than the exact count.
	SampleRate float64
	// Seed drives the sample draw (0 means 1); fixed seed, fixed split.
	Seed int64
	// NoRefine accepts the point estimate for borderline tuples instead
	// of refining them exactly — detection becomes fully sublinear but
	// only statistically correct (the accuracy tests use this).
	NoRefine bool
	// Off disables approximation even when Confidence is set; it exists
	// so a zero-value-is-off toggle can be threaded through config
	// layers that always populate Confidence.
	Off bool
}

// Enabled reports whether these options request the approximate path
// (the Options.ApproxDetect contract: Confidence set and not Off).
func (ap ApproxOptions) Enabled() bool { return ap.Confidence > 0 && !ap.Off }

// withDefaults resolves the zero values of the explicit entry points.
func (ap ApproxOptions) withDefaults() ApproxOptions {
	if ap.Confidence <= 0 || ap.Confidence >= 1 {
		ap.Confidence = DefaultApproxConfidence
	}
	if ap.MinN <= 0 {
		ap.MinN = DefaultApproxMinN
	}
	if ap.Seed == 0 {
		ap.Seed = 1
	}
	return ap
}

// sampleSize resolves the sample size for a relation of n tuples.
func (ap ApproxOptions) sampleSize(n int) int {
	if ap.SampleRate > 0 && ap.SampleRate < 1 {
		return int(math.Ceil(ap.SampleRate * float64(n)))
	}
	s := n / 8
	if s < 1024 {
		s = 1024
	}
	if s > 131072 {
		s = 131072
	}
	return s
}

// DetectApprox is DetectContext's approximate counterpart with a background
// context; see DetectApproxContext.
func DetectApprox(rel *data.Relation, cons Constraints, idx neighbors.Index, ap ApproxOptions) (*Detection, error) {
	return DetectApproxContext(context.Background(), rel, cons, idx, ap)
}

// DetectApproxContext splits rel under the constraints using sampled
// neighbor-count estimates, refining only the borderline band exactly. The
// result is a drop-in *Detection: the split obeys Counts[i] ≥ η ⇔ inlier
// (so RehydrateDetection round-trips it), but Counts of sampled-certified
// tuples are estimates, not exact counts. Relations smaller than MinN (or
// smaller than the sample would be) fall back to the exact pass.
func DetectApproxContext(ctx context.Context, rel *data.Relation, cons Constraints, idx neighbors.Index, ap ApproxOptions) (*Detection, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	ap = ap.withDefaults()
	n := rel.N()
	if ap.Off || n < ap.MinN || ap.sampleSize(n) >= n {
		return DetectContext(ctx, rel, cons, idx)
	}
	start := time.Now()
	var indexBuild time.Duration
	if idx == nil {
		idx = neighbors.Build(rel, cons.Eps)
		indexBuild = time.Since(start)
	}
	det := &Detection{Counts: make([]int, n), eta: cons.Eta, IndexBuild: indexBuild}
	p, err := newApproxPlan(rel, cons, idx, ap)
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	ws := make([]approxWorker, max(workers, 1))
	for w := range ws {
		ws[w].bind(ctx, p)
	}
	errs := par.ForEachWorker(ctx, n, workers, func(w, i int) error {
		det.Counts[i] = p.classify(&ws[w], i)
		return nil
	})
	p.merge(&det.Stats, ws)
	det.Elapsed = time.Since(start)
	if err := par.FirstErr(errs); err != nil {
		return nil, fmt.Errorf("core: detecting outliers (approx): %w", err)
	}
	for i := 0; i < n; i++ {
		if det.Counts[i] >= cons.Eta {
			det.Inliers = append(det.Inliers, i)
		} else {
			det.Outliers = append(det.Outliers, i)
		}
	}
	return det, nil
}

// ApproxNeighborCounts classifies only the given tuple positions,
// returning one η-side-consistent count per position plus the merged
// index-traffic stats. It is the sharded engine's entry point: a shard owns
// a subset of positions but probes its whole owned+halo index, so the
// counts equal what a global approximate pass would produce for those
// tuples. workers ≤ 1 runs inline.
func ApproxNeighborCounts(ctx context.Context, rel *data.Relation, cons Constraints, idx neighbors.Index, ap ApproxOptions, positions []int, workers int) ([]int, obs.SearchStats, error) {
	var st obs.SearchStats
	if err := cons.Validate(); err != nil {
		return nil, st, err
	}
	ap = ap.withDefaults()
	if idx == nil {
		idx = neighbors.Build(rel, cons.Eps)
	}
	counts := make([]int, len(positions))
	n := rel.N()
	if ap.Off || n < ap.MinN || ap.sampleSize(n) >= n {
		// Too small to sample: exact counts, same contract.
		var c neighbors.Counters
		view := neighbors.WithContext(ctx, neighbors.Counting(idx, &c))
		for k, i := range positions {
			counts[k] = view.CountWithin(rel.Tuples[i], cons.Eps, i, 0)
		}
		addCounters(&st, c)
		if err := ctx.Err(); err != nil {
			return nil, st, fmt.Errorf("core: approx neighbor counts: %w", err)
		}
		return counts, st, nil
	}
	p, err := newApproxPlan(rel, cons, idx, ap)
	if err != nil {
		return nil, st, err
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(positions) {
		workers = len(positions)
	}
	ws := make([]approxWorker, max(workers, 1))
	for w := range ws {
		ws[w].bind(ctx, p)
	}
	errs := par.ForEachWorker(ctx, len(positions), workers, func(w, k int) error {
		counts[k] = p.classify(&ws[w], positions[k])
		return nil
	})
	p.merge(&st, ws)
	if err := par.FirstErr(errs); err != nil {
		return nil, st, fmt.Errorf("core: approx neighbor counts: %w", err)
	}
	return counts, st, nil
}

// approxPlan is the shared read-only state of one approximate pass: the
// sample, its sub-index, and the precomputed certification thresholds.
type approxPlan struct {
	rel  *data.Relation
	cons Constraints
	full neighbors.Index // the full index (shared; workers wrap it)
	samp neighbors.Index // index over the sampled sub-relation
	rows []int           // sorted sampled physical rows
	n    int
	z    float64
	// xClear[d] is the minimum sampled hit count certifying a clear
	// inlier when the probe excludes d ∈ {0, 1} sampled rows (the query
	// tuple itself may be in the sample); it doubles as the probe's
	// CountWithin cap. sEff+1 when no count certifies.
	xClear [2]int
	noRef  bool
}

// newApproxPlan draws the sample, builds the sub-index and precomputes the
// certification thresholds. ap must already have defaults resolved.
func newApproxPlan(rel *data.Relation, cons Constraints, idx neighbors.Index, ap ApproxOptions) (*approxPlan, error) {
	n := rel.N()
	s := ap.sampleSize(n)
	if s >= n || n < 2 {
		return nil, fmt.Errorf("core: approx sample of %d rows needs a larger relation than %d", s, n)
	}
	rows := stats.SampleIndices(n, float64(s)/float64(n), ap.Seed)
	p := &approxPlan{
		rel: rel, cons: cons, full: idx,
		samp: neighbors.Build(rel.Subset(rows), cons.Eps),
		rows: rows, n: n,
		z:     stats.ZForConfidence(ap.Confidence),
		noRef: ap.NoRefine,
	}
	for d := 0; d < 2; d++ {
		p.xClear[d] = clearInlierThreshold(len(rows)-d, n, cons.Eta, p.z)
	}
	return p, nil
}

// clearInlierThreshold returns the minimum x ∈ [1, sEff] whose Wilson lower
// bound, scaled to the n−1 candidate neighbors, reaches η — or sEff+1 when
// no sampled count certifies. The bound is monotone in x, so binary search.
func clearInlierThreshold(sEff, n, eta int, z float64) int {
	if sEff < 1 {
		return 1 // vacuous: callers with no effective sample refine exactly
	}
	x := sort.Search(sEff, func(k int) bool {
		lo, _ := stats.WilsonInterval(k+1, sEff, z)
		return lo*float64(n-1) >= float64(eta)
	}) + 1
	return x
}

// samplePos returns row i's position inside the sampled sub-relation, or
// -1 when i was not sampled.
func (p *approxPlan) samplePos(i int) int {
	j := sort.SearchInts(p.rows, i)
	if j < len(p.rows) && p.rows[j] == i {
		return j
	}
	return -1
}

// estimate scales a sampled hit count to the n−1 candidate neighbors.
func (p *approxPlan) estimate(x, sEff int) int {
	return int(math.Round(float64(x) / float64(sEff) * float64(p.n-1)))
}

// approxWorker is one goroutine's counting views and tallies.
type approxWorker struct {
	fc, sc  neighbors.Counters
	full    neighbors.Index
	samp    neighbors.Index
	sampled int64
	refined int64
}

func (w *approxWorker) bind(ctx context.Context, p *approxPlan) {
	w.full = neighbors.WithContext(ctx, neighbors.Counting(p.full, &w.fc))
	w.samp = neighbors.WithContext(ctx, neighbors.Counting(p.samp, &w.sc))
}

// classify returns an η-side-consistent neighbor count for tuple i: the
// certificate cascade described in the file comment, falling through to
// the exact (η-capped) count for the borderline band.
func (p *approxPlan) classify(w *approxWorker, i int) int {
	t := p.rel.Tuples[i]
	eps, eta := p.cons.Eps, p.cons.Eta
	skipPos := p.samplePos(i)
	sEff, xClear := len(p.rows), p.xClear[0]
	if skipPos >= 0 {
		sEff, xClear = sEff-1, p.xClear[1]
	}
	if sEff > 0 {
		probeCap := xClear
		if probeCap > sEff {
			probeCap = sEff // inlier cert unreachable; keep the outlier certs
		}
		x := w.samp.CountWithin(t, eps, skipPos, probeCap)
		if x >= xClear {
			// Clear inlier: even the capped (under-)count certifies.
			w.sampled++
			est := p.estimate(x, sEff)
			if est < eta {
				est = eta
			}
			return est
		}
		if _, hi := stats.WilsonInterval(x, sEff, p.z); hi*float64(p.n-1) < float64(eta) {
			// Clear outlier, statistically.
			w.sampled++
			est := p.estimate(x, sEff)
			if est >= eta {
				est = eta - 1
			}
			return est
		}
		if ub, ok := neighbors.CubeBound(p.full, t, eps, i); ok && ub < eta {
			// Clear outlier, deterministically: the grid cube population
			// bounds the true count from above at zero distance cost.
			w.sampled++
			return ub
		}
		if p.noRef {
			w.sampled++
			return p.estimate(x, sEff)
		}
	}
	// Borderline band: exact machinery, needing only the side of η — the
	// CountWithinAtLeast early exit (cap = η) stops the scan at the η-th
	// hit, so even refinement is cheaper than the full exact pass.
	w.refined++
	return w.full.CountWithin(t, eps, i, eta)
}

// merge folds the per-worker tallies and counter shards into st. The
// sampled probes' distance evaluations land both in the grand DistEvals
// total and in their own ApproxSampleEvals slice.
func (p *approxPlan) merge(st *obs.SearchStats, ws []approxWorker) {
	var fc, sc neighbors.Counters
	for w := range ws {
		fc.Add(ws[w].fc)
		sc.Add(ws[w].sc)
		st.ApproxSampled += ws[w].sampled
		st.ApproxRefined += ws[w].refined
	}
	addCounters(st, fc)
	addCounters(st, sc)
	st.ApproxSampleEvals += sc.DistEvals
}
