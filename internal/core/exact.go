package core

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// ExactSaver implements the straightforward O(d^m·n) algorithm of §2.3:
// enumerate every combination of observed attribute values as a candidate
// adjustment and return the cheapest feasible one. It is exponential in the
// number of attributes (Figure 7b) but optimal within the enumerated
// domains, serving as the accuracy yardstick of Figures 6–7.
type ExactSaver struct {
	rel     *data.Relation
	cons    Constraints
	idx     neighbors.Index
	domains [][]data.Value
	// Kappa bounds the number of adjusted attributes, mirroring the DISC
	// κ policy of §1.2 (≤ 0: unrestricted). Outliers with no feasible
	// ≤ κ-attribute repair are left unchanged (natural).
	Kappa int
	// MaxNodes bounds the enumeration nodes expanded per save (≤ 0:
	// unlimited) and Deadline the wall clock per save (0: none),
	// mirroring Options for the approximate saver. The d^m enumeration is
	// the pipeline's worst runaway; a tripped budget returns the
	// best-so-far adjustment flagged Exhausted — still feasible, no
	// longer guaranteed optimal.
	MaxNodes int
	Deadline time.Duration
}

// NewExactSaver prepares the enumeration over r. domains may be nil, in
// which case the observed per-attribute domains of r are used (the paper's
// "all the values in each attribute"). maxDomain > 0 subsamples each domain
// to at most that many values (evenly for numeric attributes) to keep d^m
// tractable in benches; 0 keeps full domains.
func NewExactSaver(r *data.Relation, cons Constraints, maxDomain int) (*ExactSaver, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	doms := data.Domain(r)
	if maxDomain > 0 {
		for a := range doms {
			doms[a] = thinDomain(doms[a], maxDomain)
		}
	}
	return &ExactSaver{
		rel:     r,
		cons:    cons,
		idx:     neighbors.Build(r, cons.Eps),
		domains: doms,
	}, nil
}

// thinDomain keeps at most k values, evenly spaced across the sorted
// domain so the coverage of the value range is preserved.
func thinDomain(vals []data.Value, k int) []data.Value {
	if len(vals) <= k {
		return vals
	}
	out := make([]data.Value, 0, k)
	step := float64(len(vals)-1) / float64(k-1)
	last := -1
	for i := 0; i < k; i++ {
		j := int(math.Round(float64(i) * step))
		if j == last {
			continue
		}
		out = append(out, vals[j])
		last = j
	}
	return out
}

// Save enumerates candidate adjustments of to in best-first per-attribute
// cost order with partial-cost pruning, returning the minimum-cost feasible
// adjustment. The search is exact over the (possibly thinned) domains.
func (e *ExactSaver) Save(to data.Tuple) Adjustment {
	return e.SaveContext(context.Background(), to)
}

// SaveContext is Save under a budget: the enumeration stops as soon as ctx
// is cancelled, Deadline elapses, or MaxNodes nodes have been expanded,
// returning the best feasible adjustment found so far flagged Exhausted
// (optimality no longer holds; feasibility of any returned tuple does).
func (e *ExactSaver) SaveContext(ctx context.Context, to data.Tuple) Adjustment {
	m := e.rel.Schema.M()
	sch := e.rel.Schema
	bud := newBudget(ctx, Options{MaxNodes: e.MaxNodes, Deadline: e.Deadline})

	// Candidate values per attribute, sorted by adjustment cost on that
	// attribute; the original value (cost 0) comes first.
	type cval struct {
		v data.Value
		d float64 // per-attribute distance to to[a] (squared under L2-style accumulate)
	}
	cands := make([][]cval, m)
	for a := 0; a < m; a++ {
		seen := false
		cs := make([]cval, 0, len(e.domains[a])+1)
		for _, v := range e.domains[a] {
			d := sch.AttrDist(a, to[a], v)
			if d == 0 {
				seen = true
			}
			cs = append(cs, cval{v: v, d: d})
		}
		if !seen {
			cs = append(cs, cval{v: to[a], d: 0})
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].d < cs[j].d })
		cands[a] = cs
	}

	best := Adjustment{Index: -1, Cost: math.Inf(1), Natural: true}
	// Lemma 4 initialization: the nearest inlier position satisfying the
	// constraints is itself a feasible whole-tuple adjustment; starting
	// from its cost lets the partial-cost pruning cut the bulk of the
	// d^m enumeration. Under the κ restriction a whole-tuple substitution
	// is not an admissible answer, so the search starts unbounded.
	kappa := e.Kappa
	if kappa <= 0 || kappa > m {
		kappa = m
	}
	if kappa == m {
		for k := 8; ; k *= 4 {
			nn := e.idx.KNN(to, k, -1)
			found := false
			for _, nb := range nn {
				t := e.rel.Tuples[nb.Idx]
				if neighbors.CountWithinAtLeast(e.idx, t, e.cons.Eps, nb.Idx, e.cons.Eta) {
					best = Adjustment{
						Index:    -1,
						Tuple:    t.Clone(),
						Cost:     nb.Dist,
						Adjusted: data.DiffMask(sch, to, t),
					}
					found = true
					break
				}
			}
			if found || len(nn) < k {
				break
			}
		}
	}
	cur := make(data.Tuple, m)

	var dfs func(a, changed int, acc float64)
	dfs = func(a, changed int, acc float64) {
		if bud.spend() {
			return
		}
		if sch.Norm.Finish(acc) >= best.Cost {
			return // partial cost already dominates; children only grow it
		}
		if a == m {
			cost := sch.Norm.Finish(acc)
			if neighbors.CountWithinAtLeast(e.idx, cur, e.cons.Eps, -1, e.cons.Eta) {
				best = Adjustment{
					Index:    -1,
					Tuple:    cur.Clone(),
					Cost:     cost,
					Adjusted: data.DiffMask(sch, to, cur),
				}
			}
			return
		}
		for _, cv := range cands[a] {
			nacc := sch.Norm.Accumulate(acc, cv.d)
			if sch.Norm.Finish(nacc) >= best.Cost {
				break // candidates are cost-sorted; the rest only cost more
			}
			nchanged := changed
			if !cv.v.Equal(to[a], sch.Attrs[a].Kind) {
				nchanged++
				if nchanged > kappa {
					continue
				}
			}
			cur[a] = cv.v
			dfs(a+1, nchanged, nacc)
		}
	}
	dfs(0, 0, 0)
	best.Nodes = bud.nodes
	if bud.exhausted {
		best.Exhausted = true
		if !best.Saved() {
			best.Natural = false // incomplete search proves nothing (§1.2)
		}
	}
	return best
}
