// Package core implements the paper's contribution: saving outliers by
// minimal value adjustment under DIStance constraints for Clustering (DISC).
//
// A tuple violates the distance constraints (ε, η) when it has fewer than η
// ε-neighbors (Definition 1). Saving it means finding an adjustment t'_o
// with |r_ε(t'_o)| ≥ η minimizing Δ(t_o, t'_o) (Definition 2) — an NP-hard
// problem (Theorem 1). The Saver type implements Algorithm 1: a recursive
// enumeration of unadjusted-attribute sets X with the lower bound of
// Proposition 3 for pruning and the upper bound of Proposition 5 as the
// approximate solution, plus the κ-restricted variant of §3.3 and the
// natural-vs-dirty outlier policy of §1.2. ExactSaver implements the
// O(d^m·n) value-enumeration baseline of §2.3 used in Figures 6–7.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/data"
	"repro/internal/neighbors"
	"repro/internal/obs"
	"repro/internal/par"
)

// Constraints are the distance constraints (ε, η) of Definition 1: a tuple
// belongs to a cluster with high probability when it has at least Eta
// neighbors within distance Eps.
type Constraints struct {
	Eps float64
	Eta int
}

// Validate rejects non-positive thresholds.
func (c Constraints) Validate() error {
	if c.Eps <= 0 {
		return fmt.Errorf("core: distance threshold ε must be positive, got %v", c.Eps)
	}
	if c.Eta < 1 {
		return fmt.Errorf("core: neighbor threshold η must be ≥ 1, got %d", c.Eta)
	}
	return nil
}

// Detection is the split of a dataset into non-outlying tuples r and
// outliers s (§2.2), with the ε-neighbor count of every tuple.
type Detection struct {
	// Inliers and Outliers are tuple indexes into the detected relation.
	Inliers, Outliers []int
	// Counts[i] is |D_ε(t_i)| excluding t_i itself.
	Counts []int
	// Stats holds the index traffic of the counting pass (range queries,
	// distance evaluations, grid fallbacks); the search counters stay
	// zero — detection expands no Algorithm 1 nodes.
	Stats obs.SearchStats
	// Elapsed is the wall time of the counting pass, including the index
	// build when none was supplied.
	Elapsed time.Duration
	// IndexBuild is the portion of Elapsed spent building the index; zero
	// when the caller supplied one, so reuse across phases is visible.
	IndexBuild time.Duration

	eta int // retained so IsOutlier can answer without re-deriving the split
}

// IsOutlier reports whether tuple i violated the constraints.
func (d *Detection) IsOutlier(i int) bool {
	return d.Counts[i] < d.eta
}

// RehydrateDetection reconstructs a Detection from persisted neighbor
// counts and the resolved η, re-deriving the inlier/outlier split without
// touching the data. It is the restart path of a durable serving layer:
// counts are the expensive part of DetectContext, so a snapshot that kept
// them skips the counting pass entirely. Stats, Elapsed and IndexBuild stay
// zero — no index traffic happened — which is exactly how callers tell a
// rehydrated detection from a computed one.
func RehydrateDetection(counts []int, eta int) *Detection {
	det := &Detection{Counts: counts, eta: eta}
	for i, c := range counts {
		if c >= eta {
			det.Inliers = append(det.Inliers, i)
		} else {
			det.Outliers = append(det.Outliers, i)
		}
	}
	return det
}

// Detect splits rel under the constraints: tuples with ≥ η ε-neighbors
// (self excluded) are inliers, the rest outliers. idx must index rel; pass
// nil to build one automatically.
func Detect(rel *data.Relation, cons Constraints, idx neighbors.Index) (*Detection, error) {
	return DetectContext(context.Background(), rel, cons, idx)
}

// DetectContext is Detect with cancellation: the neighbor-counting pass
// stops promptly once ctx is cancelled and the cancellation is returned as
// an error (a partial split would misclassify the uncounted tuples, so no
// partial Detection is produced).
func DetectContext(ctx context.Context, rel *data.Relation, cons Constraints, idx neighbors.Index) (*Detection, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	var indexBuild time.Duration
	if idx == nil {
		idx = neighbors.Build(rel, cons.Eps)
		indexBuild = time.Since(start)
	}
	n := rel.N()
	det := &Detection{Counts: make([]int, n), eta: cons.Eta, IndexBuild: indexBuild}
	// No early exit on the counts: the exact values feed parameter
	// determination and the Figure 5 histograms. Counting is read-only
	// per tuple, so it fans out across cores — each worker counts index
	// traffic in its own shard, merged once the pool joins.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	shards := make([]neighbors.Counters, max(workers, 1))
	views := make([]neighbors.Index, max(workers, 1))
	for w := range views {
		views[w] = neighbors.WithContext(ctx, neighbors.Counting(idx, &shards[w]))
	}
	errs := par.ForEachWorker(ctx, n, workers, func(w, i int) error {
		det.Counts[i] = views[w].CountWithin(rel.Tuples[i], cons.Eps, i, 0)
		return nil
	})
	var merged neighbors.Counters
	for w := range shards {
		merged.Add(shards[w])
	}
	addCounters(&det.Stats, merged)
	det.Elapsed = time.Since(start)
	if err := par.FirstErr(errs); err != nil {
		return nil, fmt.Errorf("core: detecting outliers: %w", err)
	}
	for i := 0; i < n; i++ {
		if det.Counts[i] >= cons.Eta {
			det.Inliers = append(det.Inliers, i)
		} else {
			det.Outliers = append(det.Outliers, i)
		}
	}
	return det, nil
}

// Adjustment is the result of saving one outlier.
type Adjustment struct {
	// Index is the outlier's position in the original relation (set by
	// SaveAll; -1 for single-tuple calls).
	Index int
	// Tuple is the adjusted tuple t'_o; nil when the outlier was left
	// unchanged (natural, or no feasible adjustment).
	Tuple data.Tuple
	// Cost is Δ(t_o, t'_o); +Inf when Tuple is nil.
	Cost float64
	// Adjusted is the set of attributes whose values actually changed.
	Adjusted data.AttrMask
	// Natural marks outliers classified as true abnormal behaviour: the
	// search ran to completion and no feasible adjustment exists within
	// the κ-attribute budget, so the tuple is flagged rather than
	// repaired (§1.2). Natural is never set on an exhausted save — a
	// tripped budget proves nothing about feasibility.
	Natural bool
	// Nodes counts the recursion nodes Algorithm 1 expanded (ablation and
	// scalability reporting).
	Nodes int
	// Exhausted marks a save whose search was cut short by a budget
	// (Options.MaxNodes, Options.Deadline, or context cancellation). The
	// adjustment, when present, is still feasible — every intermediate
	// answer is a Proposition 5 witness — but it is only best-so-far: the
	// Proposition 6/7 approximation guarantees require a completed search
	// and do not apply.
	Exhausted bool
	// Stats breaks the search down: nodes expanded (== Nodes), what the
	// Lemma 2 / Proposition 3 lower bound pruned, memo hits, Proposition 5
	// witnesses, κ-restriction work and the index traffic of this save.
	Stats obs.SearchStats
}

// Saved reports whether the outlier received an adjustment.
func (a *Adjustment) Saved() bool { return a.Tuple != nil }
