//go:build !race

package core

const raceDetector = false
