package core

import (
	"context"
	"time"
)

// budget meters one save's search work against the caller's limits: a
// search-node cap (Options.MaxNodes), a per-save wall-clock allowance
// (Options.Deadline) and the context's cancellation. Saving one outlier is
// NP-hard and Algorithm 1's recursion is worst-case exponential in m, so
// every descent spends from the budget and stops — keeping the best
// adjustment found so far — the moment any limit trips.
type budget struct {
	done      <-chan struct{} // ctx.Done(); nil for background contexts
	deadline  time.Time       // zero when no per-save allowance is set
	maxNodes  int             // ≤ 0: unlimited
	nodes     int
	exhausted bool
}

// deadlineCheckMask spaces out time.Now() calls: the clock is read on the
// first node and every 32nd after, so even a tiny search notices an expired
// deadline while large ones do not pay a syscall per node.
const deadlineCheckMask = 31

// makeBudget derives the per-save budget from the context and options.
func makeBudget(ctx context.Context, opts Options) budget {
	b := budget{maxNodes: opts.MaxNodes}
	if ctx != nil {
		b.done = ctx.Done()
	}
	if opts.Deadline > 0 {
		b.deadline = time.Now().Add(opts.Deadline)
	}
	return b
}

// newBudget is makeBudget on the heap, for callers that share the budget
// across helpers.
func newBudget(ctx context.Context, opts Options) *budget {
	b := makeBudget(ctx, opts)
	return &b
}

// spend consumes one search node and reports whether the search must stop.
// Once it returns true it keeps returning true: the recursion unwinds
// without expanding further nodes.
func (b *budget) spend() bool {
	if b.exhausted {
		return true
	}
	b.nodes++
	if b.maxNodes > 0 && b.nodes >= b.maxNodes {
		b.exhausted = true
		return true
	}
	if b.done != nil {
		select {
		case <-b.done:
			b.exhausted = true
			return true
		default:
		}
	}
	if !b.deadline.IsZero() && b.nodes&deadlineCheckMask == 1 && time.Now().After(b.deadline) {
		b.exhausted = true
		return true
	}
	return false
}

// stopped reports whether the budget has tripped, without spending a node.
func (b *budget) stopped() bool {
	if b.exhausted {
		return true
	}
	if b.done != nil {
		select {
		case <-b.done:
			b.exhausted = true
		default:
		}
	}
	return b.exhausted
}
