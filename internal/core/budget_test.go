package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// denseRelation6D builds a random 6-attribute cluster inside the unit cube:
// enough attributes that Algorithm 1 has a real (2^6-mask) search tree to
// budget, enough density that every position is feasible.
func denseRelation6D(n int, seed int64) *data.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := data.NewRelation(data.NewNumericSchema("a", "b", "c", "d", "e", "f"))
	for i := 0; i < n; i++ {
		t := make(data.Tuple, 6)
		for a := range t {
			t[a] = data.Num(rng.Float64())
		}
		r.Append(t)
	}
	return r
}

func far6D() data.Tuple {
	t := make(data.Tuple, 6)
	for a := range t {
		t[a] = data.Num(3)
	}
	return t
}

// TestSaveMaxNodesReturnsFeasibleExhausted is the budget acceptance test:
// a tripped MaxNodes budget must still return a feasible adjustment, cost
// no worse than the Lemma 4 initial bound, flagged Exhausted, within the
// node cap.
func TestSaveMaxNodesReturnsFeasibleExhausted(t *testing.T) {
	r := denseRelation6D(150, 7)
	cons := Constraints{Eps: 1.4, Eta: 4}
	// Corrupt half the attributes: the masks keeping clean attributes form a
	// real search tree (2^3 subsets and their children) for the budget to cut.
	outlier := centered6D()
	outlier[0], outlier[1], outlier[2] = data.Num(3), data.Num(4), data.Num(5)

	free, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unbounded := free.Save(outlier)
	if !unbounded.Saved() || unbounded.Exhausted {
		t.Fatalf("unbounded save: saved=%v exhausted=%v", unbounded.Saved(), unbounded.Exhausted)
	}
	const nodeCap = 5
	if unbounded.Nodes <= nodeCap {
		t.Fatalf("search too small to exercise the budget: %d nodes", unbounded.Nodes)
	}

	capped, err := NewSaver(r, cons, Options{MaxNodes: nodeCap})
	if err != nil {
		t.Fatal(err)
	}
	adj := capped.Save(outlier)
	if !adj.Exhausted {
		t.Fatal("MaxNodes trip not flagged Exhausted")
	}
	if adj.Nodes > nodeCap {
		t.Errorf("expanded %d nodes, budget was %d", adj.Nodes, nodeCap)
	}
	if !adj.Saved() {
		t.Fatal("budgeted save lost the Lemma 4 initial answer")
	}
	// Feasibility: the degraded adjustment still satisfies the constraints.
	idx := neighbors.NewBrute(r)
	if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
		t.Errorf("degraded adjustment has %d ε-neighbors, want ≥ %d", got, cons.Eta)
	}
	// No worse than the Lemma 4 initial bound, no better than the full
	// search's optimum.
	if _, initCost := capped.initialBound(capped.idx, outlier); adj.Cost > initCost+1e-9 {
		t.Errorf("degraded cost %v exceeds the Lemma 4 bound %v", adj.Cost, initCost)
	}
	if adj.Cost < unbounded.Cost-1e-9 {
		t.Errorf("degraded cost %v beats the completed search %v", adj.Cost, unbounded.Cost)
	}
}

func TestSaveContextCancelledDegrades(t *testing.T) {
	r := denseRelation6D(150, 11)
	cons := Constraints{Eps: 1.4, Eta: 4}
	s, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	adj := s.SaveContext(ctx, far6D())
	if !adj.Exhausted {
		t.Fatal("cancelled context not flagged Exhausted")
	}
	if adj.Nodes > 1 {
		t.Errorf("expanded %d nodes under a cancelled context", adj.Nodes)
	}
	if adj.Saved() {
		idx := neighbors.NewBrute(r)
		if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
			t.Errorf("degraded adjustment has %d ε-neighbors, want ≥ %d", got, cons.Eta)
		}
	}
	// An untripped save of the same tuple is not marked Exhausted.
	if again := s.Save(far6D()); again.Exhausted {
		t.Error("background save marked Exhausted")
	}
}

func TestSaveDeadlineTrips(t *testing.T) {
	r := denseRelation6D(150, 19)
	s, err := NewSaver(r, Constraints{Eps: 1.4, Eta: 4}, Options{Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	adj := s.Save(far6D())
	if !adj.Exhausted {
		t.Fatal("1ns deadline did not trip")
	}
}

func TestSaveKappaRestrictedBudget(t *testing.T) {
	// The κ-restricted start-mask enumeration must also honor the budget.
	r := denseRelation6D(150, 23)
	cons := Constraints{Eps: 1.4, Eta: 4}
	free, err := NewSaver(r, cons, Options{Kappa: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := far6D()
	o[0] = data.Num(0.5) // partially corrupted so a κ-repair can exist
	o[1] = data.Num(0.5)
	o[2] = data.Num(0.5)
	unbounded := free.Save(o)
	if unbounded.Nodes <= 2 {
		t.Skipf("κ search too small to budget: %d nodes", unbounded.Nodes)
	}
	capped, err := NewSaver(r, cons, Options{Kappa: 3, MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	adj := capped.Save(o)
	if !adj.Exhausted {
		t.Fatal("κ-restricted MaxNodes trip not flagged Exhausted")
	}
	if adj.Nodes > 2 {
		t.Errorf("expanded %d nodes, budget was 2", adj.Nodes)
	}
}

func TestExactSaverBudget(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	cons := Constraints{Eps: 1.5, Eta: 3}
	e, err := NewExactSaver(r, cons, 8)
	if err != nil {
		t.Fatal(err)
	}
	outlier := data.Tuple{data.Num(10), data.Num(0.25)}
	full := e.Save(outlier)
	if !full.Saved() || full.Exhausted {
		t.Fatalf("unbounded exact save: saved=%v exhausted=%v", full.Saved(), full.Exhausted)
	}

	e.MaxNodes = 2
	adj := e.Save(outlier)
	if !adj.Exhausted {
		t.Fatal("exact MaxNodes trip not flagged Exhausted")
	}
	if adj.Saved() {
		idx := neighbors.NewBrute(r)
		if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
			t.Errorf("degraded exact adjustment has %d ε-neighbors, want ≥ %d", got, cons.Eta)
		}
	}

	e.MaxNodes = 0
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if adj := e.SaveContext(ctx, outlier); !adj.Exhausted {
		t.Fatal("cancelled exact save not flagged Exhausted")
	}
}

func TestDetectContextCancelled(t *testing.T) {
	r := denseRelation6D(64, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DetectContext(ctx, r, Constraints{Eps: 1.4, Eta: 4}, nil); err == nil {
		t.Fatal("cancelled DetectContext returned no error")
	}
}

func TestDeterminePoissonContextCancelled(t *testing.T) {
	r := denseRelation6D(200, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DeterminePoissonContext(ctx, r, ParamOptions{Seed: 1}); err == nil {
		t.Fatal("cancelled DeterminePoissonContext returned no error")
	}
	// A live context still determines parameters (and is not Exhausted).
	choice, err := DeterminePoisson(r, ParamOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Exhausted {
		t.Error("uncancelled determination flagged Exhausted")
	}
}
