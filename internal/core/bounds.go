package core

import (
	"math"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// Bounds exposes the Proposition 3 / Proposition 5 bound computations for
// a single outlier and unadjusted-attribute set X — the quantities
// Algorithm 1 uses internally, published for verification, teaching and
// diagnostics (Figure 3 of the paper).
type Bounds struct {
	// Lower is the Proposition 3 lower bound on the cost of any feasible
	// adjustment with t''[X] = t_o[X]: Δ(t_o, t_1) − ε with t_1 the η-th
	// nearest neighbor of t_o within r_ε(t_o[X]). +Inf when fewer than η
	// tuples lie within ε on X (no such adjustment exists).
	Lower float64
	// Upper is the Proposition 5 upper bound: the cost of the composite
	// t_o[X] ⊕ t_2[R\X] for the best donor t_2; +Inf when no donor
	// satisfies δ_η(t_2) ≤ ε − Δ(t_o[X], t_2[X]).
	Upper float64
	// Witness is the composite upper-bound adjustment (nil when Upper is
	// +Inf). It is always feasible.
	Witness data.Tuple
}

// ComputeBounds evaluates the bounds of the optimal adjustment of outlier
// to with unadjusted attributes x against the outlier-free relation r.
// It is a reference implementation (brute-force scans); Algorithm 1
// reuses distances across the recursion instead.
func ComputeBounds(r *data.Relation, cons Constraints, to data.Tuple, x data.AttrMask) (Bounds, error) {
	if err := cons.Validate(); err != nil {
		return Bounds{}, err
	}
	b := Bounds{Lower: math.Inf(1), Upper: math.Inf(1)}
	sch := r.Schema
	idx := neighbors.NewBrute(r)
	// Distances to the outlier go through the brute index's compiled
	// kernel: the query binds once and text distances hit the shared
	// per-pair cache the index queries also warm.
	kq := idx.Kernel().Bind(to)
	defer kq.Release()

	// Candidates: r_ε(t_o[X]).
	type cand struct {
		i         int
		dx, dfull float64
	}
	var cands []cand
	for i := 0; i < r.N(); i++ {
		dx := kq.DistToX(i, x)
		if dx > cons.Eps {
			continue
		}
		cands = append(cands, cand{i: i, dx: dx, dfull: kq.DistTo(i)})
	}
	if len(cands) < cons.Eta {
		return b, nil // Lower stays +Inf: infeasible with this X
	}

	// Proposition 3: η-th smallest full-space distance.
	full := make([]float64, len(cands))
	for k, c := range cands {
		full[k] = c.dfull
	}
	kth := quickselect(full, cons.Eta-1)
	b.Lower = kth - cons.Eps
	if b.Lower < 0 {
		b.Lower = 0
	}

	// Proposition 5: best donor with δ_η(t_2) ≤ ε − Δ_X.
	compl := x.Complement(sch.M())
	for _, c := range cands {
		t2 := r.Tuples[c.i]
		etaRadius := math.Inf(1)
		nn := idx.KNN(t2, cons.Eta, c.i)
		if len(nn) >= cons.Eta {
			etaRadius = nn[cons.Eta-1].Dist
		}
		if etaRadius > cons.Eps-c.dx {
			continue
		}
		cost := kq.DistToX(c.i, compl)
		if cost < b.Upper {
			b.Upper = cost
			b.Witness = data.Compose(to, t2, x)
		}
	}
	return b, nil
}
