package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

// arenaWorkload builds a mid-size numeric instance whose unrestricted
// search expands enough nodes that per-node allocations would dominate the
// measurement: with memoization the unrestricted recursion can visit up to
// 2^m masks, so m = 10 admits ~1k nodes.
func arenaWorkload(tb testing.TB) (*Saver, data.Tuple) {
	tb.Helper()
	names := make([]string, 10)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	r := data.NewRelation(data.NewNumericSchema(names...))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		t := make(data.Tuple, len(names))
		for a := range t {
			t[a] = data.Num(rng.NormFloat64())
		}
		r.Append(t)
	}
	cons := Constraints{Eps: 4.0, Eta: 4}
	// Pruning off keeps the search wide, which is exactly what the
	// per-node allocation guard needs to be sensitive.
	s, err := NewSaver(r, cons, Options{DisablePruning: true})
	if err != nil {
		tb.Fatal(err)
	}
	to := make(data.Tuple, len(names))
	for a := range to {
		to[a] = data.Num(rng.NormFloat64())
	}
	to[2] = data.Num(30) // one corrupted attribute pushes it outside every ball
	return s, to
}

// TestSaveSteadyStateAllocs pins the arena contract: once a worker's arena
// is warm, a whole save — thousands of recursion nodes — performs only the
// per-save allocations that escape by design (the Within ball of the
// truncation pass, the k-NN lists of the Lemma 4 bound, the composed
// adjustment tuple). Per recursion node the steady state allocates zero.
func TestSaveSteadyStateAllocs(t *testing.T) {
	s, to := arenaWorkload(t)
	ar := new(saveArena)
	ctx := context.Background()
	adj := s.save(ctx, to, ar) // warm the slabs
	if adj.Nodes < 100 {
		t.Fatalf("workload expanded only %d nodes; too small to expose per-node allocations", adj.Nodes)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.save(ctx, to, ar)
	})
	// The per-save fixed costs are a handful of allocations; per node the
	// budget is zero, so the total must not scale with Nodes. The race
	// detector's sync.Pool drops ~25% of released kernel queries, so each
	// save re-allocates a few of its handful of query binds; the wider
	// budget still fails on anything that scales with Nodes.
	budget := 16.0
	if raceDetector {
		budget = 64
	}
	if allocs > budget {
		t.Errorf("steady-state save allocates %.1f times (budget %.0f) over %d nodes; want a small node-independent constant",
			allocs, budget, adj.Nodes)
	}
}

// TestArenaReuseDoesNotLeakState saves two different outliers alternately
// through one arena and checks each answer is identical to a fresh-arena
// save: no candidate table, memo entry or slab length may survive one save
// and distort the next.
func TestArenaReuseDoesNotLeakState(t *testing.T) {
	s, to := arenaWorkload(t)
	other := to.Clone()
	other[0] = data.Num(other[0].Num + 0.5)
	other[3] = data.Num(other[3].Num - 4)

	ctx := context.Background()
	shared := new(saveArena)
	for round := 0; round < 3; round++ {
		for _, q := range []data.Tuple{to, other} {
			got := s.save(ctx, q, shared)
			want := s.save(ctx, q, new(saveArena))
			if got.Cost != want.Cost || got.bestEqual(want) == false {
				t.Fatalf("round %d: shared-arena save differs: got %+v, want %+v", round, got, want)
			}
		}
	}
}

// bestEqual compares the observable answer of two adjustments.
func (a Adjustment) bestEqual(b Adjustment) bool {
	if a.Natural != b.Natural || a.Adjusted != b.Adjusted || a.Nodes != b.Nodes {
		return false
	}
	if (a.Tuple == nil) != (b.Tuple == nil) {
		return false
	}
	for i := range a.Tuple {
		if a.Tuple[i] != b.Tuple[i] {
			return false
		}
	}
	return true
}

// TestSaveAllWorkerArenaEquivalence runs the same batch sequentially and
// with parallel per-worker arenas and requires identical adjustments —
// any cross-worker arena sharing or stale slab reuse would desynchronize
// the two runs.
func TestSaveAllWorkerArenaEquivalence(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x", "y", "z"))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		t3 := data.Tuple{
			data.Num(rng.NormFloat64()),
			data.Num(rng.NormFloat64()),
			data.Num(rng.NormFloat64()),
		}
		if i%17 == 0 { // scatter outliers
			t3[i%3] = data.Num(t3[i%3].Num + 25)
		}
		r.Append(t3)
	}
	cons := Constraints{Eps: 1.0, Eta: 4}
	seq, err := SaveAll(r, cons, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Detection.Outliers) < 4 {
		t.Fatalf("want several outliers, got %d", len(seq.Detection.Outliers))
	}
	par4, err := SaveAll(r, cons, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Adjustments) != len(par4.Adjustments) {
		t.Fatalf("adjustment counts differ: %d vs %d", len(seq.Adjustments), len(par4.Adjustments))
	}
	for k := range seq.Adjustments {
		a, b := seq.Adjustments[k], par4.Adjustments[k]
		if a.Index != b.Index || a.Cost != b.Cost || !a.bestEqual(b) {
			t.Fatalf("outlier %d: sequential %+v vs parallel %+v", k, a, b)
		}
	}
}

// TestSavePoolPathMatchesArenaPath checks the public Save (sync.Pool
// arena) and the internal explicit-arena path give the same answer.
func TestSavePoolPathMatchesArenaPath(t *testing.T) {
	s, to := arenaWorkload(t)
	pooled := s.Save(to)
	direct := s.save(context.Background(), to, new(saveArena))
	if pooled.Cost != direct.Cost || !pooled.bestEqual(direct) {
		t.Fatalf("pool path %+v differs from arena path %+v", pooled, direct)
	}
	if math.IsInf(pooled.Cost, 1) && pooled.Tuple != nil {
		t.Fatal("infinite cost with a non-nil tuple")
	}
}
