package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/metric"
	"repro/internal/neighbors"
)

// bruteOptimal finds the true optimal adjustment of to with unadjusted x
// by enumerating all value combinations from the observed domains on the
// adjustable attributes (exponential; test sizes only).
func bruteOptimal(r *data.Relation, cons Constraints, to data.Tuple, x data.AttrMask) (data.Tuple, float64) {
	sch := r.Schema
	m := sch.M()
	doms := data.Domain(r)
	idx := neighbors.NewBrute(r)
	adj := x.Complement(m).Attrs(m)
	best := math.Inf(1)
	var bestT data.Tuple
	cur := to.Clone()
	var rec func(k int)
	rec = func(k int) {
		if k == len(adj) {
			if idx.CountWithin(cur, cons.Eps, -1, cons.Eta) >= cons.Eta {
				if c := sch.Dist(to, cur); c < best {
					best = c
					bestT = cur.Clone()
				}
			}
			return
		}
		a := adj[k]
		for _, v := range append([]data.Value{to[a]}, doms[a]...) {
			cur[a] = v
			rec(k + 1)
		}
		cur[a] = to[a]
	}
	rec(0)
	return bestT, best
}

func TestComputeBoundsSandwichTheOptimum(t *testing.T) {
	// Propositions 3 and 5 verified against brute-force enumeration on
	// random small instances: Lower ≤ optimal ≤ Upper whenever the
	// optimum exists.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		r := data.NewRelation(data.NewNumericSchema("a", "b"))
		for i := 0; i < 50; i++ {
			r.Append(data.Tuple{
				data.Num(math.Floor(rng.Float64() * 5)),
				data.Num(math.Floor(rng.Float64() * 5)),
			})
		}
		cons := Constraints{Eps: 1.5, Eta: 4}
		to := data.Tuple{data.Num(12 + rng.Float64()*5), data.Num(math.Floor(rng.Float64() * 5))}
		for _, x := range []data.AttrMask{0, data.AttrMask(0).With(1)} {
			b, err := ComputeBounds(r, cons, to, x)
			if err != nil {
				t.Fatal(err)
			}
			_, opt := bruteOptimal(r, cons, to, x)
			if math.IsInf(opt, 1) {
				// No feasible adjustment from observed values; the upper
				// bound must also be absent or the witness feasible.
				continue
			}
			if b.Lower > opt+1e-9 {
				t.Fatalf("trial %d mask %b: lower bound %v above optimum %v", trial, x, b.Lower, opt)
			}
			if !math.IsInf(b.Upper, 1) && b.Upper < opt-1e-9 {
				t.Fatalf("trial %d mask %b: upper bound %v below optimum %v (not feasible?)", trial, x, b.Upper, opt)
			}
		}
	}
}

func TestComputeBoundsWitnessIsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	r := clusterRelation(0, 0, 3)
	cons := Constraints{Eps: 1.5, Eta: 3}
	idx := neighbors.NewBrute(r)
	for trial := 0; trial < 20; trial++ {
		to := data.Tuple{data.Num(rng.Float64()*20 - 5), data.Num(rng.Float64()*20 - 5)}
		for _, x := range []data.AttrMask{0, 1, 2} {
			b, err := ComputeBounds(r, cons, to, x)
			if err != nil {
				t.Fatal(err)
			}
			if b.Witness == nil {
				continue
			}
			if got := idx.CountWithin(b.Witness, cons.Eps, -1, 0); got < cons.Eta {
				t.Fatalf("witness with %d ε-neighbors", got)
			}
			// Witness preserves the unadjusted attributes.
			for a := 0; a < 2; a++ {
				if x.Has(a) && b.Witness[a].Num != to[a].Num {
					t.Fatalf("witness changed unadjusted attribute %d", a)
				}
			}
			// Witness cost matches the reported upper bound.
			if d := r.Schema.Dist(to, b.Witness); math.Abs(d-b.Upper) > 1e-9 {
				t.Fatalf("witness cost %v != upper %v", d, b.Upper)
			}
		}
	}
}

func TestComputeBoundsInfeasibleX(t *testing.T) {
	r := clusterRelation(0, 0, 2)
	cons := Constraints{Eps: 1.5, Eta: 3}
	// Keeping x = 100 fixed admits no candidates at all.
	to := data.Tuple{data.Num(100), data.Num(0)}
	b, err := ComputeBounds(r, cons, to, data.AttrMask(0).With(0))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(b.Lower, 1) || !math.IsInf(b.Upper, 1) || b.Witness != nil {
		t.Errorf("infeasible X produced bounds %+v", b)
	}
	if _, err := ComputeBounds(r, Constraints{}, to, 0); err == nil {
		t.Error("invalid constraints accepted")
	}
}

func TestSaverAgreesWithBoundsAcrossMasks(t *testing.T) {
	// The Algorithm 1 result can never beat the best Proposition-5 upper
	// bound over all X it explores, and never undercut the X=∅ lower
	// bound.
	r := clusterRelation(0, 0, 3)
	cons := Constraints{Eps: 1.5, Eta: 3}
	s, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	to := data.Tuple{data.Num(9), data.Num(0.4)}
	adj := s.Save(to)
	if !adj.Saved() {
		t.Fatal("not saved")
	}
	b0, err := ComputeBounds(r, cons, to, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adj.Cost < b0.Lower-1e-9 {
		t.Errorf("cost %v under the X=∅ lower bound %v", adj.Cost, b0.Lower)
	}
	// The best single-attribute-unadjusted upper bound is attainable.
	bestUpper := b0.Upper
	for a := 0; a < 2; a++ {
		b, err := ComputeBounds(r, cons, to, data.AttrMask(0).With(a))
		if err != nil {
			t.Fatal(err)
		}
		if b.Upper < bestUpper {
			bestUpper = b.Upper
		}
	}
	if adj.Cost > bestUpper+1e-9 {
		t.Errorf("cost %v above the best reachable upper bound %v", adj.Cost, bestUpper)
	}
}

func TestSaverL1Norm(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	r.Schema.Norm = metric.L1
	cons := Constraints{Eps: 2, Eta: 3}
	s, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	to := data.Tuple{data.Num(10), data.Num(0.25)}
	adj := s.Save(to)
	if !adj.Saved() {
		t.Fatal("L1 saver failed")
	}
	idx := neighbors.NewBrute(r)
	if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
		t.Errorf("L1 adjustment infeasible (%d neighbors)", got)
	}
	if d := r.Schema.Dist(to, adj.Tuple); math.Abs(d-adj.Cost) > 1e-9 {
		t.Errorf("L1 cost mismatch: %v vs %v", adj.Cost, d)
	}
}

func TestSaverLInfNorm(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	r.Schema.Norm = metric.LInf
	cons := Constraints{Eps: 1.2, Eta: 3}
	s, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	to := data.Tuple{data.Num(10), data.Num(0.25)}
	adj := s.Save(to)
	if !adj.Saved() {
		t.Fatal("L∞ saver failed")
	}
	idx := neighbors.NewBrute(r)
	if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
		t.Errorf("L∞ adjustment infeasible (%d neighbors)", got)
	}
	if d := r.Schema.Dist(to, adj.Tuple); math.Abs(d-adj.Cost) > 1e-9 {
		t.Errorf("L∞ cost mismatch: %v vs %v", adj.Cost, d)
	}
}

func TestSaverWorkersOption(t *testing.T) {
	ds := mixture(t, 400, 31)
	cons := Constraints{Eps: ds.Eps, Eta: ds.Eta}
	seq, err := SaveAll(ds.Rel, cons, Options{Kappa: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SaveAll(ds.Rel, cons, Options{Kappa: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Saved != par.Saved || seq.Natural != par.Natural {
		t.Fatalf("parallel save differs: %d/%d vs %d/%d", seq.Saved, seq.Natural, par.Saved, par.Natural)
	}
	for k := range seq.Adjustments {
		a, b := seq.Adjustments[k], par.Adjustments[k]
		if a.Index != b.Index || math.Abs(a.Cost-b.Cost) > 1e-9 && !(math.IsInf(a.Cost, 1) && math.IsInf(b.Cost, 1)) {
			t.Fatalf("adjustment %d differs between worker counts", k)
		}
	}
}

func TestKappaMonotonicity(t *testing.T) {
	// Loosening κ can only lower (or keep) the adjustment cost.
	ds := mixture(t, 300, 32)
	cons := Constraints{Eps: ds.Eps, Eta: ds.Eta}
	det, err := Detect(ds.Rel, cons, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Outliers) == 0 {
		t.Skip("no outliers")
	}
	r := ds.Rel.Subset(det.Inliers)
	costs := map[int][]float64{}
	for ki, kappa := range []int{1, 2, 0} { // 0 = unrestricted
		s, err := NewSaver(r, cons, Options{Kappa: kappa})
		if err != nil {
			t.Fatal(err)
		}
		for _, oi := range det.Outliers {
			adj := s.Save(ds.Rel.Tuples[oi])
			c := math.Inf(1)
			if adj.Saved() {
				c = adj.Cost
			}
			costs[oi] = append(costs[oi], c)
			_ = ki
		}
	}
	for oi, cs := range costs {
		for k := 1; k < len(cs); k++ {
			if cs[k] > cs[k-1]+1e-9 {
				t.Fatalf("outlier %d: cost increased when loosening κ: %v", oi, cs)
			}
		}
	}
}
