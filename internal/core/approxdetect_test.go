package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/metric"
	"repro/internal/neighbors"
)

// approxTestRel builds the jittered-lattice workload the approximate
// detection tests run on: uniform unit-density cells whose neighbor-count
// geometry is known (interior ≈ ball volume × per-cell), plus isolated
// noise outliers. η = 8 sits below the clear-inlier threshold xClear
// (≈ z² at 0.999), which is what makes the sampled inlier certificate
// deterministically sound — see the soundness argument in approx.go.
func approxTestRel(t *testing.T, norm metric.Norm) *data.Relation {
	t.Helper()
	rel, err := data.GenLattice(data.LatticeSpec{Side: 5, PerCell: 16, Dims: 3, Noise: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rel.Schema.Norm = norm
	return rel
}

func approxTestIndexes(rel *data.Relation) map[string]neighbors.Index {
	return map[string]neighbors.Index{
		"brute":  neighbors.NewBrute(rel),
		"grid":   neighbors.NewGrid(rel, 1),
		"kdtree": neighbors.NewKDTree(rel),
		"vptree": neighbors.NewVPTree(rel, 3),
	}
}

var approxTestCons = Constraints{Eps: 1, Eta: 8}

// TestDetectApproxDifferential pins the headline guarantee: with
// refinement on, the approximate split is bit-identical to the exact pass
// for every index kind, norm and sample seed. This is not a statistical
// test — at η below xClear the inlier certificate is deterministically
// sound (a without-replacement sample only undercounts), the cube bound is
// deterministic, and the Wilson outlier certificate cannot fire at this
// sample-to-η ratio — so any divergence is a bug, not noise.
func TestDetectApproxDifferential(t *testing.T) {
	ctx := context.Background()
	for _, norm := range []metric.Norm{metric.L2, metric.L1, metric.LInf} {
		rel := approxTestRel(t, norm)
		for name, idx := range approxTestIndexes(rel) {
			exact, err := DetectContext(ctx, rel, approxTestCons, idx)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{1, 2, 3} {
				ap := ApproxOptions{Confidence: 0.999, MinN: 256, Seed: seed}
				approx, err := DetectApproxContext(ctx, rel, approxTestCons, idx, ap)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(exact.Inliers, approx.Inliers) ||
					!reflect.DeepEqual(exact.Outliers, approx.Outliers) {
					t.Fatalf("norm %v %s seed %d: approximate split diverges from exact (%d/%d vs %d/%d in/out)",
						norm, name, seed, len(approx.Inliers), len(approx.Outliers),
						len(exact.Inliers), len(exact.Outliers))
				}
				st := approx.Stats
				if st.ApproxSampled == 0 {
					t.Fatalf("norm %v %s seed %d: no tuple classified from the sample", norm, name, seed)
				}
				if st.ApproxSampled+st.ApproxRefined != int64(rel.N()) {
					t.Fatalf("norm %v %s seed %d: sampled %d + refined %d ≠ n %d",
						norm, name, seed, st.ApproxSampled, st.ApproxRefined, rel.N())
				}
				// Under L2 the interior count (≈ 67) is far above η, so
				// most tuples must certify from the sample; tighter-ball
				// norms legitimately push more tuples into the band.
				if norm == metric.L2 && st.ApproxRefined >= st.ApproxSampled {
					t.Fatalf("%s seed %d: borderline band (%d) not smaller than certified set (%d)",
						name, seed, st.ApproxRefined, st.ApproxSampled)
				}
			}
		}
	}
}

// TestDetectApproxNoRefine checks the fully-sublinear mode is still
// statistically sound: no exact refinement runs, the isolated noise
// outliers are all found (their sampled hit count is zero), and the
// boundary-band misclassification stays a small fraction of n.
func TestDetectApproxNoRefine(t *testing.T) {
	ctx := context.Background()
	rel := approxTestRel(t, metric.L2)
	idx := neighbors.NewGrid(rel, 1)
	exact, err := DetectContext(ctx, rel, approxTestCons, idx)
	if err != nil {
		t.Fatal(err)
	}
	ap := ApproxOptions{Confidence: 0.999, MinN: 256, Seed: 1, NoRefine: true}
	approx, err := DetectApproxContext(ctx, rel, approxTestCons, idx, ap)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Stats.ApproxRefined != 0 {
		t.Fatalf("NoRefine still refined %d tuples exactly", approx.Stats.ApproxRefined)
	}
	n := rel.N()
	mismatches := 0
	for i := 0; i < n; i++ {
		if exact.IsOutlier(i) != approx.IsOutlier(i) {
			mismatches++
		}
	}
	if limit := n / 20; mismatches > limit {
		t.Fatalf("NoRefine misclassified %d of %d tuples (limit %d)", mismatches, n, limit)
	}
	// The appended noise tuples are isolated: no estimate can make them
	// inliers, so even the unrefined pass must report every one.
	for i := n - 8; i < n; i++ {
		if !approx.IsOutlier(i) {
			t.Fatalf("noise tuple %d not reported as outlier without refinement", i)
		}
	}
}

// TestDetectApproxFallbacks checks the exact-pass escape hatches: a
// relation under MinN, an Off toggle, and a sample that would swallow the
// relation all produce the exact detection with zero approx counters.
func TestDetectApproxFallbacks(t *testing.T) {
	ctx := context.Background()
	rel := approxTestRel(t, metric.L2)
	idx := neighbors.NewGrid(rel, 1)
	exact, err := DetectContext(ctx, rel, approxTestCons, idx)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]ApproxOptions{
		"min-n":         {Confidence: 0.999},                                // default MinN 2048 > n
		"off":           {Confidence: 0.999, MinN: 256, Off: true},          //
		"sample-ge-rel": {Confidence: 0.999, MinN: 256, SampleRate: 0.9999}, // ceil(rate·n) ≥ n
	}
	for name, ap := range cases {
		got, err := DetectApproxContext(ctx, rel, approxTestCons, idx, ap)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(exact.Inliers, got.Inliers) || !reflect.DeepEqual(exact.Counts, got.Counts) {
			t.Fatalf("%s: fallback differs from the exact pass", name)
		}
		if got.Stats.ApproxSampled != 0 || got.Stats.ApproxRefined != 0 {
			t.Fatalf("%s: exact fallback reported approx counters (%d sampled, %d refined)",
				name, got.Stats.ApproxSampled, got.Stats.ApproxRefined)
		}
	}
}

// TestApproxNeighborCounts checks the positional entry point (the sharded
// engine's contract): classifying a subset of positions against the full
// index returns exactly the counts the whole-relation pass assigns those
// tuples, and small relations take the exact-fallback branch.
func TestApproxNeighborCounts(t *testing.T) {
	ctx := context.Background()
	rel := approxTestRel(t, metric.L2)
	idx := neighbors.NewGrid(rel, 1)
	ap := ApproxOptions{Confidence: 0.999, MinN: 256, Seed: 1}
	det, err := DetectApproxContext(ctx, rel, approxTestCons, idx, ap)
	if err != nil {
		t.Fatal(err)
	}
	positions := []int{0, 17, 999, 1500, rel.N() - 1}
	counts, st, err := ApproxNeighborCounts(ctx, rel, approxTestCons, idx, ap, positions, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range positions {
		if counts[k] != det.Counts[i] {
			t.Fatalf("position %d: count %d differs from the whole-relation pass %d", i, counts[k], det.Counts[i])
		}
	}
	if st.ApproxSampled+st.ApproxRefined != int64(len(positions)) {
		t.Fatalf("positional pass classified %d+%d tuples, want %d",
			st.ApproxSampled, st.ApproxRefined, len(positions))
	}

	// Under MinN the positional pass answers exactly.
	small := rel.Subset([]int{0, 1, 2, 3, 4, 5, 6, 7})
	sidx := neighbors.NewBrute(small)
	counts, st, err = ApproxNeighborCounts(ctx, small, approxTestCons, sidx, ap, []int{0, 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ApproxSampled != 0 || st.ApproxRefined != 0 {
		t.Fatal("small-relation positional pass should fall back to exact counting")
	}
	for k, i := range []int{0, 7} {
		want := sidx.CountWithin(small.Tuples[i], approxTestCons.Eps, i, 0)
		if counts[k] != want {
			t.Fatalf("small-relation position %d: count %d, want exact %d", i, counts[k], want)
		}
	}
}

// TestApproxSampledProbeAllocs guards the hot path: classifying a clear
// interior inlier from the sampled probe must not allocate — the probe
// rides the grid's stack buffers and the certificate math is pure.
func TestApproxSampledProbeAllocs(t *testing.T) {
	if raceDetector {
		t.Skip("allocation counts are not stable under the race detector")
	}
	rel := approxTestRel(t, metric.L2)
	idx := neighbors.NewGrid(rel, 1)
	ap := ApproxOptions{Confidence: 0.999, MinN: 256, Seed: 1}.withDefaults()
	p, err := newApproxPlan(rel, approxTestCons, idx, ap)
	if err != nil {
		t.Fatal(err)
	}
	var w approxWorker
	w.bind(context.Background(), p)
	// Cell (2,2,2) is interior: its tuples certify as clear inliers from
	// the sampled probe alone.
	i := (2 + 2*5 + 2*25) * 16
	w.sampled = 0
	p.classify(&w, i)
	if w.sampled != 1 {
		t.Fatalf("interior tuple %d did not take the sampled path", i)
	}
	if allocs := testing.AllocsPerRun(100, func() { p.classify(&w, i) }); allocs != 0 {
		t.Fatalf("sampled probe allocated %.1f times per classify", allocs)
	}
}
