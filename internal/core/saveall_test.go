package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/data"
)

// scatteredOutliers builds a dense 49-point cluster plus k mutually
// distant isolated points, so Detect finds exactly k outliers.
func scatteredOutliers(k int) *data.Relation {
	r := clusterRelation(0, 0, 3)
	for i := 0; i < k; i++ {
		// Spiral the outliers apart so none has an ε-neighbor.
		x := 10 + 7*float64(i)
		y := -10 + 11*float64(i%2) - 5*float64(i)
		r.Append(data.Tuple{data.Num(x), data.Num(y)})
	}
	return r
}

// TestSaveAllParallelManyOutliers exercises the worker pool across many
// simultaneous saves; run with -race it is the data-race acceptance test.
func TestSaveAllParallelManyOutliers(t *testing.T) {
	rel := scatteredOutliers(20)
	cons := Constraints{Eps: 1.5, Eta: 3}
	res, err := SaveAll(rel, cons, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Detection.Outliers); got != 20 {
		t.Fatalf("detected %d outliers, want 20", got)
	}
	if res.Failed() != 0 {
		t.Fatalf("unexpected save errors: %v", res.Errs)
	}
	if res.Saved+res.Natural != 20 {
		t.Fatalf("saved %d + natural %d != 20", res.Saved, res.Natural)
	}
	if res.Exhausted != 0 {
		t.Errorf("%d saves flagged Exhausted without any budget", res.Exhausted)
	}
}

// TestSaveAllRecoversInjectedPanic injects a panic into one outlier's save
// and requires the batch to survive: the poisoned outlier lands in Errs,
// every other outlier is still saved.
func TestSaveAllRecoversInjectedPanic(t *testing.T) {
	saveAllHook = func(k int) {
		if k == 1 {
			panic("injected save panic")
		}
	}
	defer func() { saveAllHook = nil }()

	rel := scatteredOutliers(6)
	cons := Constraints{Eps: 1.5, Eta: 3}
	res, err := SaveAll(rel, cons, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) != 1 {
		t.Fatalf("Errs = %v, want exactly the poisoned outlier", res.Errs)
	}
	poisoned := res.Detection.Outliers[1]
	if res.Errs[0].Index != poisoned {
		t.Errorf("Errs[0].Index = %d, want outlier %d", res.Errs[0].Index, poisoned)
	}
	if !strings.Contains(res.Errs[0].Err.Error(), "injected save panic") {
		t.Errorf("recovered error %v does not carry the panic value", res.Errs[0].Err)
	}
	if res.Saved+res.Natural != 5 {
		t.Fatalf("saved %d + natural %d != 5 surviving outliers", res.Saved, res.Natural)
	}
	// The poisoned outlier's adjustment slot is inert: not saved, not
	// natural, original value kept in the repaired relation.
	for _, adj := range res.Adjustments {
		if adj.Index != poisoned {
			continue
		}
		if adj.Saved() || adj.Natural {
			t.Errorf("poisoned outlier has adjustment %+v", adj)
		}
		if data.DiffMask(rel.Schema, res.Repaired.Tuples[poisoned], rel.Tuples[poisoned]) != 0 {
			t.Error("poisoned outlier's tuple was modified")
		}
	}
}

// TestSaveAllCancelMidBatchKeepsPartialResults cancels the batch from
// inside the third save: the first two outliers keep their adjustments,
// the in-flight one degrades to a best-so-far Exhausted answer, and the
// rest are recorded in Errs with the cancellation.
func TestSaveAllCancelMidBatchKeepsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	saveAllHook = func(k int) {
		if k == 2 {
			cancel()
		}
	}
	defer func() { saveAllHook = nil }()

	rel := scatteredOutliers(6)
	cons := Constraints{Eps: 1.5, Eta: 3}
	res, err := SaveAllContext(ctx, rel, cons, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) != 3 { // outliers 3, 4, 5 never started
		t.Fatalf("Errs = %v, want the 3 undispatched outliers", res.Errs)
	}
	for _, se := range res.Errs {
		if !errors.Is(se, context.Canceled) {
			t.Errorf("outlier %d recorded %v, want context.Canceled", se.Index, se.Err)
		}
	}
	for k := 0; k < 2; k++ {
		if adj := res.Adjustments[k]; !adj.Saved() && !adj.Natural {
			t.Errorf("outlier %d processed before the cancel was lost: %+v", k, adj)
		}
	}
	if adj := res.Adjustments[2]; !adj.Exhausted {
		t.Errorf("in-flight save not flagged Exhausted: %+v", adj)
	}
	if res.Exhausted == 0 {
		t.Error("SaveResult.Exhausted not accounted")
	}
}

// TestSaveAllBatchTimeout lets the batch budget expire during the first
// save (which the hook stalls past the deadline) and requires a partial,
// accounted result rather than an abort.
func TestSaveAllBatchTimeout(t *testing.T) {
	saveAllHook = func(k int) {
		if k == 0 {
			time.Sleep(500 * time.Millisecond)
		}
	}
	defer func() { saveAllHook = nil }()

	rel := scatteredOutliers(5)
	cons := Constraints{Eps: 1.5, Eta: 3}
	res, err := SaveAllContext(context.Background(), rel, cons,
		Options{Workers: 1, BatchTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) != 4 {
		t.Fatalf("Errs = %v, want the 4 outliers after the stalled one", res.Errs)
	}
	for _, se := range res.Errs {
		if !errors.Is(se, context.DeadlineExceeded) {
			t.Errorf("outlier %d recorded %v, want context.DeadlineExceeded", se.Index, se.Err)
		}
	}
	if adj := res.Adjustments[0]; !adj.Exhausted {
		t.Errorf("stalled save not flagged Exhausted: %+v", adj)
	}
}

func TestSaveAllRejectsNaN(t *testing.T) {
	rel := clusterRelation(0, 0, 3)
	rel.Append(data.Tuple{data.Num(20), data.Num(20)}) // outlier → save path runs
	rel.Append(data.Tuple{data.Num(1), data.Num(math.NaN())})
	if _, err := SaveAll(rel, Constraints{Eps: 1.5, Eta: 3}, Options{}); err == nil {
		t.Fatal("SaveAll accepted a NaN value")
	}
}
