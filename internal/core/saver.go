package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/metric"
	"repro/internal/neighbors"
	"repro/internal/obs"
	"repro/internal/par"
)

// Options tune Algorithm 1.
type Options struct {
	// Kappa bounds the number of adjusted attributes: the recursion only
	// considers unadjusted sets X with |X| ≥ m−κ, the O(m^{κ+1}·n)
	// variant of §3.3. κ ≤ 0 means unrestricted (start from X = ∅, which
	// admits the Lemma 4 nearest-inlier fallback).
	Kappa int
	// DisablePruning turns off the Proposition 3 lower-bound pruning
	// (ablation only).
	DisablePruning bool
	// DisableMemo turns off the visited-X deduplication (ablation only).
	DisableMemo bool
	// Workers bounds SaveAll's parallelism; ≤ 0 means GOMAXPROCS.
	Workers int
	// Index overrides the automatically built neighbor index. For NewSaver
	// it must index r (the inlier relation); for SaveAll it must index the
	// full input relation and is reused by the detection pass (the saver's
	// inlier index is still built over the inlier subset).
	Index neighbors.Index
	// MaxNodes bounds the search nodes Algorithm 1 expands per outlier
	// (≤ 0: unlimited). When the cap trips mid-search, the best-so-far
	// adjustment is returned with Adjustment.Exhausted set — feasible
	// whenever one was found, since every candidate answer is a Lemma 4 /
	// Proposition 5 witness.
	MaxNodes int
	// Deadline is the wall-clock allowance for saving one outlier
	// (0: none). Like MaxNodes, tripping it degrades to the best-so-far
	// answer instead of aborting.
	Deadline time.Duration
	// BatchTimeout is the wall-clock allowance for a whole SaveAll run,
	// covering detection and every per-outlier save (0: none). When it
	// expires, outliers not yet saved are reported in SaveResult.Errs and
	// the partial result is returned.
	BatchTimeout time.Duration
	// Progress, when non-nil, receives batch snapshots from SaveAll: the
	// first completed save, at most one per ProgressInterval after that,
	// and always a final snapshot. The callback is serialized (never runs
	// concurrently with itself) but may fire from any worker goroutine.
	Progress func(obs.Progress)
	// ProgressInterval bounds the Progress rate; ≤ 0 selects
	// obs.DefaultProgressInterval (200ms).
	ProgressInterval time.Duration
	// Logger, when non-nil, receives structured per-phase and degradation
	// events from SaveAll and NewSaver: detection and precompute done
	// (Info), per-outlier budget trips (Debug), recovered panics and
	// skipped outliers (Warn), grid→brute fallbacks (Debug). The hot
	// search path itself never logs.
	Logger *slog.Logger
	// ApproxDetect switches SaveAll's detection pass to the sampled
	// estimator with exact borderline refinement (see DetectApproxContext)
	// when ApproxDetect.Enabled() — i.e. Confidence is set and Off is
	// false. The zero value keeps detection exact.
	ApproxDetect ApproxOptions
}

// Saver saves outliers against a fixed set r of non-outlying tuples.
type Saver struct {
	rel  *data.Relation // r
	cons Constraints
	opts Options
	idx  neighbors.Index
	// kern is the compiled distance kernel over r, shared with idx when
	// the index is kernel-backed so the per-pair text-distance cache is
	// warmed by both; the per-outlier candidate tables read from it.
	kern *data.Kernel
	// etaRadius[i] = δ_η(t_i): distance from t_i to its η-th nearest
	// neighbor within r. A tuple position with δ_η ≤ ε − d satisfies the
	// constraints for any adjustment within d of it (Proposition 5).
	etaRadius []float64
	m         int
	sqNorm    bool // L2: accumulate squared per-attribute distances
	// arenas recycles saveArena scratch across Save/SaveContext calls;
	// SaveAll bypasses it with explicit per-worker arenas.
	arenas sync.Pool
	// setupStats and setup time the one-off construction work (index
	// build, η-radius precompute) so SaveAll can report pipeline phases;
	// setupStats holds the index traffic of the precompute pass.
	setupStats obs.SearchStats
	setup      struct{ indexBuild, etaRadius time.Duration }
	// builtIndex marks that the saver built idx itself (as opposed to
	// Options.Index), so the IndexBuild timing is meaningful.
	builtIndex bool
	// mut is idx's mutable wrapper when the saver was built over one
	// (Options.Index of type *neighbors.Mutable). It unlocks the
	// incremental inlier-set maintenance surface: InsertInlier,
	// RemoveInlier and RefreshRadii. nil for static savers.
	mut *neighbors.Mutable
}

// NewSaver precomputes the η-th-neighbor radii of r. r must be outlier-free
// under cons (use Detect to split first); an empty r cannot save anything
// and is rejected, as is a relation with NaN/±Inf values (distances over
// them are undefined and would silently poison every aggregate).
func NewSaver(r *data.Relation, cons Constraints, opts Options) (*Saver, error) {
	return NewSaverContext(context.Background(), r, cons, opts)
}

// NewSaverContext is NewSaver with cancellation: the η-radius precompute
// pass over r stops promptly once ctx is cancelled and the cancellation is
// returned as an error.
func NewSaverContext(ctx context.Context, r *data.Relation, cons Constraints, opts Options) (*Saver, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	if err := r.Schema.Validate(); err != nil {
		return nil, err
	}
	if r.N() == 0 {
		return nil, fmt.Errorf("core: cannot save outliers against an empty inlier set")
	}
	if err := data.ValidateValues(r); err != nil {
		return nil, err
	}
	log := obs.Logger(opts.Logger)
	idx := opts.Index
	built := false
	var indexBuild time.Duration
	if idx == nil {
		start := time.Now()
		idx = neighbors.Build(r, cons.Eps)
		indexBuild = time.Since(start)
		built = true
		log.Debug("disc: inlier index built", "index", fmt.Sprintf("%T", idx),
			"tuples", r.N(), "duration", indexBuild)
	}
	s := &Saver{
		rel:        r,
		cons:       cons,
		opts:       opts,
		idx:        idx,
		etaRadius:  make([]float64, r.N()),
		m:          r.Schema.M(),
		sqNorm:     r.Schema.Norm == metric.L2,
		builtIndex: built,
	}
	s.setup.indexBuild = indexBuild
	if m, ok := idx.(*neighbors.Mutable); ok {
		s.mut = m
	}
	s.kern = neighbors.KernelOf(idx)
	if s.kern == nil {
		// Custom Options.Index without a kernel: compile one for the
		// candidate tables (its text cache is simply not shared).
		s.kern = data.CompileKernel(r)
	}
	s.arenas.New = func() any { return new(saveArena) }
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One counting view (and counter shard) per worker: the precompute
	// fans out over r, and the shards merge into setupStats once the pool
	// joins — plain int64 increments, no atomics.
	if workers > r.N() {
		workers = r.N()
	}
	shards := make([]neighbors.Counters, workers)
	views := make([]neighbors.Index, workers)
	for w := range views {
		views[w] = neighbors.WithContext(ctx, neighbors.Counting(idx, &shards[w]))
	}
	start := time.Now()
	errs := par.ForEachWorker(ctx, r.N(), workers, func(w, i int) error {
		nn := views[w].KNN(r.Tuples[i], cons.Eta, i)
		if len(nn) < cons.Eta {
			s.etaRadius[i] = math.Inf(1)
			return nil
		}
		s.etaRadius[i] = nn[cons.Eta-1].Dist
		return nil
	})
	s.setup.etaRadius = time.Since(start)
	var merged neighbors.Counters
	for w := range shards {
		merged.Add(shards[w])
	}
	addCounters(&s.setupStats, merged)
	if err := par.FirstErr(errs); err != nil {
		return nil, fmt.Errorf("core: building saver: %w", err)
	}
	log.Debug("disc: η-radius precompute done", "tuples", r.N(),
		"duration", s.setup.etaRadius, "knn_queries", merged.KNNQueries,
		"dist_evals", merged.DistEvals)
	return s, nil
}

// addCounters folds an index-counter shard into a stats shard; obs stays
// import-free of neighbors, so the bridge lives here.
func addCounters(s *obs.SearchStats, c neighbors.Counters) {
	s.KNNQueries += c.KNNQueries
	s.RangeQueries += c.RangeQueries
	s.DistEvals += c.DistEvals
	s.GridFallbacks += c.GridFallbacks
	s.DistEarlyExits += c.DistEarlyExits
	s.TextCacheHits += c.TextCacheHits
	s.TextCacheMisses += c.TextCacheMisses
}

// Rel returns the inlier relation r.
func (s *Saver) Rel() *data.Relation { return s.rel }

// Index returns the neighbor index over r the saver queries. It is the
// structure a session-caching layer amortizes: built once (by NewSaver or
// supplied via Options.Index), it serves every subsequent SaveOne call
// without rebuilding. The index is safe for concurrent readers; wrap it
// with neighbors.Counting to meter per-caller query traffic.
func (s *Saver) Index() neighbors.Index { return s.idx }

// SetupStats returns the index traffic of the saver's construction (the
// η-radius precompute) and the one-off phase durations: index build (zero
// when Options.Index was supplied) and precompute.
func (s *Saver) SetupStats() (stats obs.SearchStats, indexBuild, etaRadius time.Duration) {
	return s.setupStats, s.setup.indexBuild, s.setup.etaRadius
}

// Constraints returns the saver's (ε, η).
func (s *Saver) Constraints() Constraints { return s.cons }

// saveState is the per-outlier working set of Algorithm 1. Candidates are
// compacted: position c stands for inlier ids[c], so the distance tables
// only cover tuples that can ever matter. All slice fields are backed by a
// saveArena and valid only for the duration of one save.
type saveState struct {
	// ar owns the scratch slabs the recursion draws from.
	ar *saveArena
	// ids maps compact candidate positions to tuple indexes in r.
	ids []int
	// attrD[c*m+a] is the per-attribute distance Δ(t_o[a], t_{ids[c]}[a])
	// — squared under L2 so subset aggregates are additive.
	attrD []float64
	// fullD[c] is the full-space aggregate (squared under L2).
	fullD []float64
	// visited memoizes processed X masks.
	visited map[data.AttrMask]struct{}
	// best solution so far.
	bestCost float64 // actual (non-squared) cost
	bestT2   int     // inlier (tuple index in r) donating the R\X values (-1: none)
	bestX    data.AttrMask
	// bud meters the search against MaxNodes/Deadline/ctx.
	bud budget
	// stats points at the arena's counter shard; plain increments, owned
	// exclusively by this save.
	stats *obs.SearchStats
}

// Save finds the near-optimal adjustment of the outlier tuple to
// (Algorithm 1). The caller is responsible for to actually violating the
// constraints; saving an inlier simply returns a zero-cost adjustment.
func (s *Saver) Save(to data.Tuple) Adjustment {
	return s.SaveContext(context.Background(), to)
}

// SaveContext is Save under a budget: the search stops as soon as ctx is
// cancelled, Options.Deadline elapses, or Options.MaxNodes search nodes have
// been expanded, returning the best-so-far adjustment with Exhausted set.
// Whenever any answer was found before the trip it is feasible — every
// intermediate solution is a Lemma 4 / Proposition 5 witness, so degrading
// never fabricates an infeasible repair.
func (s *Saver) SaveContext(ctx context.Context, to data.Tuple) Adjustment {
	ar := s.arenas.Get().(*saveArena)
	adj := s.save(ctx, to, ar)
	s.arenas.Put(ar)
	return adj
}

// SaveOne is the session-reuse surface of the serving path: one save of to
// against the prepared inlier set, under the same per-save budgets as
// SaveContext. The saver's index, η-radius table and arena pool are all
// reused across calls — repeated SaveOne calls on a warm saver rebuild
// nothing and stay ~1 alloc/op — and concurrent calls are safe: each draws
// its own arena from the pool and the shared structures are read-only.
func (s *Saver) SaveOne(ctx context.Context, to data.Tuple) Adjustment {
	return s.SaveContext(ctx, to)
}

// save runs one Algorithm 1 search with its scratch memory drawn from ar.
// The arena must not be shared with a concurrent save.
func (s *Saver) save(ctx context.Context, to data.Tuple, ar *saveArena) Adjustment {
	ar.reset(s.m)
	// The counting view of the index is cached on the arena (one per
	// worker), so instrumentation adds no steady-state allocations; its
	// counters are the arena's shard, zeroed by reset above.
	if ar.cidx == nil || ar.cidxBase != s.idx {
		ar.cidxBase = s.idx
		ar.cidx = neighbors.Counting(s.idx, &ar.nc)
	}
	cidx := ar.cidx
	st := &ar.st
	*st = saveState{
		ar:       ar,
		visited:  ar.visited,
		bestCost: math.Inf(1),
		bestT2:   -1,
		bud:      makeBudget(ctx, s.opts),
		stats:    &ar.stats,
	}
	sch := s.rel.Schema

	kappaRestricted := s.opts.Kappa > 0 && s.opts.Kappa < s.m

	// Initialization (§3.3.2, Lemma 4): the nearest inlier satisfying the
	// constraints is itself a feasible adjustment, adjusting all
	// attributes (X = ∅ upper bound). It also bounds which inliers can
	// ever improve the solution: a candidate of any node must be within ε
	// on X, so a donor with Δ(t_o, t) > ε + bestCost can never yield a
	// cheaper composite. Under the κ restriction the nearest inlier is
	// not an admissible answer (it adjusts every attribute), so both the
	// initialization and the truncation are skipped.
	if !kappaRestricted {
		if nn, cost := s.initialBound(cidx, to); nn >= 0 {
			st.bestT2 = nn
			st.bestX = 0
			st.bestCost = cost
		}
	}

	// Materialize the compact candidate tables in the arena.
	if math.IsInf(st.bestCost, 1) {
		st.ids = grow(ar.ids, s.rel.N())[:0]
		for i, n := 0, s.rel.N(); i < n; i++ {
			// Tombstoned rows of a mutable inlier set are invisible to the
			// index but still occupy physical slots; the all-rows fallback
			// must skip them too.
			if s.mut != nil && !s.mut.Alive(i) {
				continue
			}
			st.ids = append(st.ids, i)
		}
	} else {
		ball := cidx.Within(to, s.cons.Eps+st.bestCost, -1)
		st.ids = grow(ar.ids, len(ball))
		for c, nb := range ball {
			st.ids[c] = nb.Idx
		}
	}
	st.stats.Candidates = int64(len(st.ids))
	ar.ids = st.ids
	c := len(st.ids)
	st.attrD = grow(ar.attrD, c*s.m)
	ar.attrD = st.attrD
	st.fullD = grow(ar.fullD, c)
	ar.fullD = st.fullD
	// Fill the tables through the compiled kernel: the outlier binds once,
	// per-attribute distances read flat columns, and repeated text values
	// hit the pair cache / query memo instead of re-running Levenshtein.
	kq := s.kern.Bind(to)
	for ci, i := range st.ids {
		acc := 0.0
		for a := 0; a < s.m; a++ {
			d := kq.AttrDist(a, i)
			if s.sqNorm {
				d = d * d
			}
			st.attrD[ci*s.m+a] = d
			acc = s.accumulate(acc, d)
		}
		st.fullD[ci] = acc
	}
	st.stats.TextCacheHits += kq.TextCacheHits
	st.stats.TextCacheMisses += kq.TextCacheMisses
	kq.Release()

	// Root candidate set: X = ∅ admits every (truncated) inlier. The root
	// lists live in the depth-0 slabs; recurse builds each child's list in
	// the slab one depth down.
	cand := ar.intsAt(0, c)[:c]
	subD := ar.floatsAt(0, c)[:c] // d_X aggregate per candidate (squared under L2)
	for ci := range cand {
		cand[ci] = ci
		subD[ci] = 0
	}

	if kappaRestricted {
		s.forEachStartMask(st, cand, subD)
	} else {
		s.recurse(st, 0, cand, subD)
	}

	// Seal this save's counter shard: node and trip counts from the
	// budget, index traffic from the counting view.
	st.stats.Nodes = int64(st.bud.nodes)
	if st.bud.exhausted {
		st.stats.BudgetTrips = 1
	}
	addCounters(st.stats, ar.nc)

	if st.bestT2 < 0 {
		// Natural is only a sound classification when the search ran to
		// completion: an exhausted budget means "no adjustment found in
		// time", not "no feasible adjustment exists" (§1.2).
		return Adjustment{
			Index:     -1,
			Cost:      math.Inf(1),
			Natural:   !st.bud.exhausted,
			Nodes:     st.bud.nodes,
			Exhausted: st.bud.exhausted,
			Stats:     *st.stats,
		}
	}
	adj := data.Compose(to, s.rel.Tuples[st.bestT2], st.bestX)
	return Adjustment{
		Index:     -1,
		Tuple:     adj,
		Cost:      st.bestCost,
		Adjusted:  data.DiffMask(sch, to, adj),
		Nodes:     st.bud.nodes,
		Exhausted: st.bud.exhausted,
		Stats:     *st.stats,
	}
}

// Mutable returns the mutable wrapper behind the saver's index, or nil
// when the saver was built over a static index.
func (s *Saver) Mutable() *neighbors.Mutable { return s.mut }

// InsertInlier appends t to the inlier relation through the mutable
// index, extending the η-radius table with a +Inf placeholder, and
// returns the new physical row index. The caller must follow up with
// RefreshRadii(t) — the placeholder makes the new row temporarily
// useless as a Proposition 5 donor, never unsound. Panics on a static
// saver. Like all the mutation surface, the call must be serialized
// against concurrent saves by the caller (the serving layer holds a
// session-wide write lock).
func (s *Saver) InsertInlier(t data.Tuple) int {
	i := s.mut.Insert(t)
	for len(s.etaRadius) <= i {
		s.etaRadius = append(s.etaRadius, math.Inf(1))
	}
	return i
}

// RemoveInlier tombstones inlier row i. Its η-radius entry goes stale in
// place; the index never reports tombstoned rows and the all-rows
// fallback skips them, so the stale value is unreachable.
func (s *Saver) RemoveInlier(i int) { s.mut.Delete(i) }

// RefreshRadii recomputes the exact η-th-neighbor radius of every live
// inlier within ε of center (the locality bound: a membership change at
// distance > ε from a tuple cannot move its δ_η across the only
// threshold the saver tests, δ_η ≤ ε − d with d ≥ 0, so radii outside
// the ball may drift above ε without ever changing a feasibility
// answer). Call it once per mutated value — old value, new value, and
// each tuple whose inlier/outlier status flipped — after all membership
// changes of the mutation have been applied. Returns the number of rows
// refreshed.
func (s *Saver) RefreshRadii(center data.Tuple) int {
	if s.mut == nil {
		return 0
	}
	ball := s.idx.Within(center, s.cons.Eps, -1)
	for _, nb := range ball {
		i := nb.Idx
		nn := s.idx.KNN(s.rel.Tuples[i], s.cons.Eta, i)
		if len(nn) < s.cons.Eta {
			s.etaRadius[i] = math.Inf(1)
		} else {
			s.etaRadius[i] = nn[s.cons.Eta-1].Dist
		}
	}
	return len(ball)
}

// initialBound finds the nearest inlier whose η-th-neighbor radius fits
// inside ε (a feasible whole-tuple substitution, Lemma 4) and returns its
// tuple index in r and its distance to to; (-1, +Inf) when r has no
// feasible position at all. idx is the calling save's (counting) index
// view.
func (s *Saver) initialBound(idx neighbors.Index, to data.Tuple) (int, float64) {
	// Grow k geometrically: the nearest feasible inlier is almost always
	// among the first few nearest neighbors. Each round resumes where the
	// previous one stopped — KNN(k) is a prefix of KNN(4k) because every
	// index breaks distance ties deterministically by tuple index — so the
	// η-radius check never re-scans positions already rejected.
	checked := 0
	for k := 4; ; k *= 4 {
		nn := idx.KNN(to, k, -1)
		for _, nb := range nn[min(checked, len(nn)):] {
			if s.etaRadius[nb.Idx] <= s.cons.Eps {
				return nb.Idx, nb.Dist
			}
		}
		if len(nn) < k { // exhausted r
			return -1, math.Inf(1)
		}
		checked = len(nn)
	}
}

// accumulate folds one per-attribute distance (already squared under L2)
// into the norm accumulator.
func (s *Saver) accumulate(acc, d float64) float64 {
	if s.sqNorm {
		return acc + d
	}
	return s.rel.Schema.Norm.Accumulate(acc, d)
}

// finish converts an accumulator into an actual distance.
func (s *Saver) finish(acc float64) float64 {
	if s.sqNorm {
		return math.Sqrt(acc)
	}
	return s.rel.Schema.Norm.Finish(acc)
}

// threshold converts ε into accumulator units for comparisons.
func (s *Saver) threshold(eps float64) float64 {
	if eps < 0 {
		return -1 // no candidate can have a negative aggregate
	}
	if s.sqNorm {
		return eps * eps
	}
	return eps
}

// recurse processes the unadjusted set x with its candidate list
// cand = r_ε(t_o[X]) and per-candidate subspace aggregates subD (aligned
// with cand).
func (s *Saver) recurse(st *saveState, x data.AttrMask, cand []int, subD []float64) {
	if !s.opts.DisableMemo {
		if _, seen := st.visited[x]; seen {
			st.stats.MemoHits++
			return
		}
		st.visited[x] = struct{}{}
	}
	if st.bud.stopped() {
		return
	}

	// Proposition 3: fewer than η candidates on X means no feasible
	// adjustment keeps t_o[X]; prune the whole branch (children's
	// candidate sets only shrink).
	if len(cand) < s.cons.Eta {
		st.stats.CandPrunes++
		return
	}

	// Lower bound: Δ(t_o, t_1) − ε with t_1 the η-th nearest candidate by
	// full-space distance.
	if !s.opts.DisablePruning {
		kth := quickselectKth(st, cand, s.cons.Eta)
		if s.finish(kth)-s.cons.Eps >= st.bestCost {
			st.stats.LBPrunes++
			return
		}
	}

	// The mask survived the prune gates, so it is now expanded — the
	// candidate scan and child construction below are the O(m·|cand|) work
	// the O(m^{κ+1}·n) analysis counts — and only expansions spend from the
	// node budget. Pruned visits cost one quickselect and are bounded by
	// m × the expansion count, so MaxNodes still caps total work.
	if st.bud.spend() {
		return
	}

	// Upper bound (Proposition 5): t_2 ∈ r_ε(t_o[X]) with
	// δ_η(t_2) ≤ ε − Δ(t_o[X], t_2[X]); the composite t_o[X] ⊕ t_2[R\X]
	// is feasible and costs Δ(t_o[R\X], t_2[R\X]).
	for li, c := range cand {
		dx := s.finish(subD[li])
		if s.etaRadius[st.ids[c]] > s.cons.Eps-dx {
			continue
		}
		st.stats.UBWitnesses++
		cost := s.finish(s.residual(st, subD[li], c, x))
		if cost < st.bestCost {
			st.stats.BestUpdates++
			st.bestCost = cost
			st.bestT2 = st.ids[c]
			st.bestX = x
		}
	}

	// Recurse on X ∪ {A} for each adjustable attribute A. Each child list
	// is built in the slab for depth |X|+1: the previous child at that
	// depth has fully unwound by the time the next one is filtered, so the
	// slab is free for reuse and the whole descent allocates nothing.
	epsAcc := s.threshold(s.cons.Eps)
	depth := x.Count()
	for a := 0; a < s.m; a++ {
		if st.bud.exhausted {
			return // unwind without building more child candidate sets
		}
		if x.Has(a) {
			continue
		}
		child := x.With(a)
		if !s.opts.DisableMemo {
			if _, seen := st.visited[child]; seen {
				st.stats.MemoHits++
				continue
			}
		}
		childCand := st.ar.intsAt(depth+1, len(cand))
		childSub := st.ar.floatsAt(depth+1, len(cand))
		for li, c := range cand {
			nd := s.accumulate(subD[li], st.attrD[c*s.m+a])
			if nd <= epsAcc {
				childCand = append(childCand, c)
				childSub = append(childSub, nd)
			}
		}
		s.recurse(st, child, childCand, childSub)
	}
}

// residual returns the aggregate of per-attribute distances over R\X for
// candidate i, in accumulator units. L2 (squared) and L1 aggregates
// subtract; L∞ does not decompose, so it is recomputed over R\X.
func (s *Saver) residual(st *saveState, sub float64, i int, x data.AttrMask) float64 {
	if s.sqNorm || s.rel.Schema.Norm == metric.L1 {
		r := st.fullD[i] - sub
		if r < 0 {
			return 0
		}
		return r
	}
	acc := 0.0
	for a := 0; a < s.m; a++ {
		if x.Has(a) {
			continue
		}
		acc = s.rel.Schema.Norm.Accumulate(acc, st.attrD[i*s.m+a])
	}
	return acc
}

// forEachStartMask enumerates every X with |X| = m−κ and runs the
// recursion from each, sharing the memo table so overlapping supersets are
// processed once (the O(m^{κ+1}·n) bound of §3.3). Enumeration iterates
// over the κ-sized complements C = R\X: under the decomposable norms the
// subspace aggregate is fullD minus the ≤ κ complement terms, an O(κ)
// step per candidate instead of O(m−κ).
func (s *Saver) forEachStartMask(st *saveState, rootCand []int, rootSub []float64) {
	m := s.m
	kappa := s.opts.Kappa
	compl := make([]int, kappa)
	for i := range compl {
		compl[i] = i
	}
	epsAcc := s.threshold(s.cons.Eps)
	decomposable := s.sqNorm || s.rel.Schema.Norm == metric.L1
	if decomposable {
		// A candidate can appear in some r_ε(t_o[X]) with |X| = m−κ only
		// if dropping its κ most expensive attributes brings the
		// aggregate under ε; filter the root set once instead of per
		// mask (most distant tuples fail for every complement). The
		// filter compacts rootCand in place — it only ever writes behind
		// its read cursor.
		before := len(rootCand)
		filtered := rootCand[:0]
		for _, c := range rootCand {
			if s.bestCaseSub(st, c, kappa) <= epsAcc {
				filtered = append(filtered, c)
			}
		}
		st.stats.KappaPrefiltered += int64(before - len(filtered))
		rootCand = filtered
	}
	// Per-mask lists live in the slab for depth m−κ (the start masks'
	// |X|), reused across the C(m, κ) masks; recurse only reads them and
	// filters what it keeps into deeper slabs.
	var cand []int
	var sub []float64
	for {
		if st.bud.stopped() {
			return
		}
		x := data.FullMask(m)
		for _, a := range compl {
			x = x.Without(a)
		}
		// Filter the root candidates down to r_ε(t_o[X]).
		cand = st.ar.intsAt(m-kappa, len(rootCand))
		sub = st.ar.floatsAt(m-kappa, len(rootCand))
		for _, c := range rootCand {
			var acc float64
			if decomposable {
				acc = st.fullD[c]
				for _, a := range compl {
					acc -= st.attrD[c*m+a]
				}
				if acc < 0 {
					acc = 0 // guard float cancellation
				}
			} else {
				for a := 0; a < m; a++ {
					if x.Has(a) {
						acc = s.accumulate(acc, st.attrD[c*m+a])
					}
				}
			}
			if acc <= epsAcc {
				cand = append(cand, c)
				sub = append(sub, acc)
			}
		}
		st.stats.KappaMasks++
		s.recurse(st, x, cand, sub)

		// Next complement combination (lexicographic).
		j := kappa - 1
		for j >= 0 && compl[j] == m-kappa+j {
			j--
		}
		if j < 0 {
			return
		}
		compl[j]++
		for l := j + 1; l < kappa; l++ {
			compl[l] = compl[l-1] + 1
		}
	}
}

// bestCaseSub returns the smallest achievable subspace aggregate for
// candidate c over any X with |X| = m−κ: the full aggregate minus the κ
// largest per-attribute terms (valid for the decomposable norms).
func (s *Saver) bestCaseSub(st *saveState, c, kappa int) float64 {
	// Track the κ largest attribute terms (κ is small: 1–3 typically).
	top := grow(st.ar.top, kappa)
	st.ar.top = top
	for i := range top {
		top[i] = 0
	}
	for a := 0; a < s.m; a++ {
		d := st.attrD[c*s.m+a]
		// Insert into the running top-κ (insertion into a tiny array).
		for k := 0; k < kappa; k++ {
			if d > top[k] {
				d, top[k] = top[k], d
			}
		}
	}
	acc := st.fullD[c]
	for _, d := range top {
		acc -= d
	}
	if acc < 0 {
		acc = 0
	}
	return acc
}

// quickselectKth returns the k-th smallest (1-based) full-space aggregate
// among the candidates, without fully sorting. The value scratch is arena
// scratch: quickselect finishes before the recursion continues, so one
// buffer serves every node.
func quickselectKth(st *saveState, cand []int, k int) float64 {
	vals := grow(st.ar.qsel, len(cand))
	st.ar.qsel = vals
	for ci, i := range cand {
		vals[ci] = st.fullD[i]
	}
	return quickselect(vals, k-1)
}

// quickselect returns the element with rank k (0-based) in ascending order,
// partially reordering vals in place.
func quickselect(vals []float64, k int) float64 {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		p := partition(vals, lo, hi)
		switch {
		case k == p:
			return vals[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return vals[k]
}

func partition(vals []float64, lo, hi int) int {
	// Median-of-three pivot defends against sorted inputs.
	mid := (lo + hi) / 2
	if vals[mid] < vals[lo] {
		vals[mid], vals[lo] = vals[lo], vals[mid]
	}
	if vals[hi] < vals[lo] {
		vals[hi], vals[lo] = vals[lo], vals[hi]
	}
	if vals[hi] < vals[mid] {
		vals[hi], vals[mid] = vals[mid], vals[hi]
	}
	pivot := vals[mid]
	vals[mid], vals[hi] = vals[hi], vals[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if vals[j] < pivot {
			vals[i], vals[j] = vals[j], vals[i]
			i++
		}
	}
	vals[i], vals[hi] = vals[hi], vals[i]
	return i
}
