package core

import (
	"repro/internal/data"
	"repro/internal/neighbors"
	"repro/internal/obs"
)

// saveArena is the reusable scratch memory of one Algorithm 1 search. Every
// slice the hot path needs — the compact candidate tables, one candidate
// slab per recursion depth, the quickselect scratch, the κ-prefilter top-k
// buffer and the visited-X memo — lives here and is recycled across nodes
// and across outliers, so the steady-state recursion allocates nothing.
//
// Ownership is strictly single-threaded: SaveAll hands each worker its own
// arena (no sync needed), and the public Save/SaveContext path draws one
// from a per-Saver sync.Pool. The depth-indexed slabs exploit the shape of
// the recursion: at any moment at most one node per depth |X| is on the
// stack, so the child candidate list for depth d+1 can always be built in
// slab d+1 without clobbering a live list.
type saveArena struct {
	st saveState // the per-outlier working set itself, reused

	ids   []int     // compact candidate ids
	attrD []float64 // per-attribute distance table
	fullD []float64 // full-space aggregates

	// cand[d]/sub[d] back the candidate list and subspace aggregates of
	// the node with |X| = d currently on the recursion stack.
	cand [][]int
	sub  [][]float64

	qsel []float64 // quickselectKth scratch
	top  []float64 // bestCaseSub top-κ scratch

	visited map[data.AttrMask]struct{}

	// stats is this worker's counter shard: plain increments owned by the
	// save in flight, zeroed per save and copied into Adjustment.Stats at
	// the end — no atomics anywhere near the recursion.
	stats obs.SearchStats
	// nc receives the index-query counts of cidx, the counting view of
	// the saver's index. The view is built once per (arena, saver) pair —
	// cidxBase remembers which base index it covers — so the steady state
	// allocates nothing.
	nc       neighbors.Counters
	cidx     neighbors.Index
	cidxBase neighbors.Index
}

// reset prepares the arena for one save over a schema of m attributes.
func (ar *saveArena) reset(m int) {
	ar.stats = obs.SearchStats{}
	ar.nc.Reset()
	if len(ar.cand) < m+1 {
		ar.cand = append(ar.cand, make([][]int, m+1-len(ar.cand))...)
		ar.sub = append(ar.sub, make([][]float64, m+1-len(ar.sub))...)
	}
	if ar.visited == nil {
		ar.visited = make(map[data.AttrMask]struct{})
	} else {
		clear(ar.visited)
	}
}

// intsAt returns the empty depth-d int slab with capacity ≥ n.
func (ar *saveArena) intsAt(d, n int) []int {
	if cap(ar.cand[d]) < n {
		ar.cand[d] = make([]int, 0, n)
	}
	return ar.cand[d][:0]
}

// floatsAt returns the empty depth-d float slab with capacity ≥ n.
func (ar *saveArena) floatsAt(d, n int) []float64 {
	if cap(ar.sub[d]) < n {
		ar.sub[d] = make([]float64, 0, n)
	}
	return ar.sub[d][:0]
}

// grow returns buf resized to length n, reallocating only when the capacity
// is insufficient.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
