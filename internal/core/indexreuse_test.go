package core

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// probeIndex counts the range queries answered by a wrapped index. Unlike
// neighbors.Counting — which a later Counting call unwraps by design — a
// foreign Index implementation stays in the query path, so its counters
// prove a caller-supplied index actually served the traffic. Atomics,
// because detection fans queries out across workers.
type probeIndex struct {
	neighbors.Index
	rangeQueries atomic.Int64
}

func (p *probeIndex) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	p.rangeQueries.Add(1)
	return p.Index.CountWithin(q, eps, skip, cap)
}

// TestSaveAllReusesSuppliedIndex: a caller-supplied Options.Index serves the
// detection pass — every per-tuple count query hits it, and the pipeline
// reports no detection index build of its own.
func TestSaveAllReusesSuppliedIndex(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	r.Append(data.Tuple{data.Num(20), data.Num(20)})
	cons := Constraints{Eps: 1.5, Eta: 3}

	probe := &probeIndex{Index: neighbors.Build(r, cons.Eps)}
	res, err := SaveAllContext(context.Background(), r, cons, Options{Kappa: 2, Index: probe, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := probe.rangeQueries.Load(); got < int64(r.N()) {
		t.Errorf("supplied index answered %d range queries, want >= %d (one per tuple): detection did not use it",
			got, r.N())
	}
	if res.Timings.DetectIndexBuild != 0 {
		t.Errorf("detection built its own index (%v) despite Options.Index", res.Timings.DetectIndexBuild)
	}
	if len(res.Adjustments) != 1 || !res.Adjustments[0].Saved() {
		t.Fatalf("outlier not saved with supplied index: %+v", res.Adjustments)
	}
}

// TestDetectReportsIndexBuild: without a supplied index, DetectContext
// builds one and reports the build time; with one, the build time is zero.
func TestDetectReportsIndexBuild(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	cons := Constraints{Eps: 1.5, Eta: 3}

	det, err := Detect(r, cons, nil)
	if err != nil {
		t.Fatal(err)
	}
	if det.IndexBuild <= 0 {
		t.Errorf("self-built detection reports IndexBuild = %v, want > 0", det.IndexBuild)
	}

	idx := neighbors.Build(r, cons.Eps)
	det2, err := Detect(r, cons, idx)
	if err != nil {
		t.Fatal(err)
	}
	if det2.IndexBuild != 0 {
		t.Errorf("detection with supplied index reports IndexBuild = %v, want 0", det2.IndexBuild)
	}
}
