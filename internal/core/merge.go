package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
)

// SavePart is one shard's contribution to a sharded save: the adjustments
// it produced (Adjustment.Index already set to the outlier's position in
// the ORIGINAL relation) and the outliers it failed to process. Parts
// partition Detection.Outliers — each outlier belongs to exactly one part,
// as an adjustment or as an error.
type SavePart struct {
	Adjustments []Adjustment
	Errs        []SaveError
}

// ComposeSaveResult assembles the shard-wise halves of a save into one
// SaveResult with exactly the accounting SaveAllContext performs on its own
// fan-out: adjustments land in Detection.Outliers order, failed or missing
// outliers get the zero adjustment with +Inf cost plus an Errs entry
// (sorted by outlier index), saved outliers replace their tuples in the
// Repaired clone, and Stats merges the detection pass with every
// adjustment's search counters. Timings are left zero — wall-clock phases
// belong to the orchestrator, which observed them.
func ComposeSaveResult(rel *data.Relation, det *Detection, parts []SavePart) *SaveResult {
	res := &SaveResult{
		Repaired:    rel.Clone(),
		Detection:   det,
		Adjustments: make([]Adjustment, len(det.Outliers)),
	}
	res.Stats.Add(&det.Stats)

	pos := make(map[int]int, len(det.Outliers))
	for k, oi := range det.Outliers {
		pos[oi] = k
	}
	covered := make([]bool, len(det.Outliers))
	failed := make([]bool, len(det.Outliers))
	place := func(k int, adj Adjustment) {
		res.Adjustments[k] = adj
		covered[k] = true
	}
	for _, part := range parts {
		for _, adj := range part.Adjustments {
			k, ok := pos[adj.Index]
			if !ok || covered[k] {
				// A part claiming a non-outlier or an already-covered
				// outlier is an orchestration bug; surface it as a failure
				// rather than silently double-counting.
				res.Errs = append(res.Errs, SaveError{Index: adj.Index,
					Err: fmt.Errorf("core: shard adjustment for unexpected outlier %d", adj.Index)})
				continue
			}
			place(k, adj)
		}
		for _, se := range part.Errs {
			k, ok := pos[se.Index]
			if !ok || covered[k] {
				res.Errs = append(res.Errs, SaveError{Index: se.Index,
					Err: fmt.Errorf("core: shard error for unexpected outlier %d: %w", se.Index, se.Err)})
				continue
			}
			place(k, Adjustment{Index: se.Index, Cost: math.Inf(1)})
			failed[k] = true
			res.Errs = append(res.Errs, se)
		}
	}
	for k, oi := range det.Outliers {
		if !covered[k] {
			place(k, Adjustment{Index: oi, Cost: math.Inf(1)})
			failed[k] = true
			res.Errs = append(res.Errs, SaveError{Index: oi,
				Err: fmt.Errorf("core: outlier %d not processed by any shard", oi)})
		}
	}
	sort.Slice(res.Errs, func(i, j int) bool { return res.Errs[i].Index < res.Errs[j].Index })

	for k := range res.Adjustments {
		adj := &res.Adjustments[k]
		res.Stats.Add(&adj.Stats)
		if adj.Exhausted {
			res.Exhausted++
		}
		switch {
		case failed[k]:
			// Not processed: neither saved nor natural.
		case adj.Saved():
			res.Repaired.Tuples[adj.Index] = adj.Tuple.Clone()
			res.Saved++
		case adj.Natural:
			res.Natural++
		}
	}
	return res
}
