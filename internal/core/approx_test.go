package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

// TestProposition6ApproximationFactor checks the c/(c−1) guarantee: when
// the nearest inlier sits at distance ≥ c·ε from the outlier, the
// Algorithm 1 answer is within c/(c−1) of the optimum.
func TestProposition6ApproximationFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	checked := 0
	for trial := 0; trial < 40 && checked < 15; trial++ {
		// Integer grid cluster keeps brute-force optimality computable.
		r := data.NewRelation(data.NewNumericSchema("a", "b"))
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				r.Append(data.Tuple{data.Num(float64(i)), data.Num(float64(j))})
			}
		}
		cons := Constraints{Eps: 1.5, Eta: 4}
		// Outlier far out along one axis.
		to := data.Tuple{
			data.Num(15 + rng.Float64()*10),
			data.Num(math.Floor(rng.Float64() * 6)),
		}
		// c from the premise: nearest inlier distance / ε.
		nearest := math.Inf(1)
		for _, tp := range r.Tuples {
			if d := r.Schema.Dist(to, tp); d < nearest {
				nearest = d
			}
		}
		c := nearest / cons.Eps
		if c <= 1.05 {
			continue // premise not satisfied; guarantee does not apply
		}
		s, err := NewSaver(r, cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		adj := s.Save(to)
		if !adj.Saved() {
			continue
		}
		_, opt := bruteOptimal(r, cons, to, 0)
		if math.IsInf(opt, 1) || opt == 0 {
			continue
		}
		checked++
		factor := adj.Cost / opt
		bound := c / (c - 1)
		if factor > bound+1e-9 {
			t.Errorf("trial %d: approximation factor %.4f exceeds c/(c−1) = %.4f (c=%.2f)",
				trial, factor, bound, c)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances satisfied the premise; test vacuous", checked)
	}
}

// TestProposition7IntegralMetricFactor checks the ε+1 guarantee for
// unit-valued (edit-distance style) metrics, here integer absolute
// differences with integer ε.
func TestProposition7IntegralMetricFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	checked := 0
	for trial := 0; trial < 60 && checked < 20; trial++ {
		r := data.NewRelation(data.NewNumericSchema("a"))
		for i := 0; i < 8; i++ {
			for rep := 0; rep < 4; rep++ {
				r.Append(data.Tuple{data.Num(float64(i))})
			}
		}
		cons := Constraints{Eps: 1, Eta: 5} // integer ε, unit distances
		to := data.Tuple{data.Num(float64(20 + rng.Intn(30)))}
		s, err := NewSaver(r, cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		adj := s.Save(to)
		if !adj.Saved() {
			continue
		}
		_, opt := bruteOptimal(r, cons, to, 0)
		if math.IsInf(opt, 1) || opt == 0 {
			continue
		}
		checked++
		if factor := adj.Cost / opt; factor > cons.Eps+1+1e-9 {
			t.Errorf("trial %d: factor %.4f exceeds ε+1 = %v", trial, factor, cons.Eps+1)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances checked; test vacuous", checked)
	}
}

// TestApproximationTightensWithDistance verifies the Proposition 6
// discussion: the farther the outlier from r (larger c), the closer the
// approximation gets to optimal.
func TestApproximationTightensWithDistance(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("a", "b"))
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			r.Append(data.Tuple{data.Num(float64(i)), data.Num(float64(j))})
		}
	}
	cons := Constraints{Eps: 1.5, Eta: 4}
	s, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	worst := func(dist float64) float64 {
		to := data.Tuple{data.Num(dist), data.Num(2)}
		adj := s.Save(to)
		if !adj.Saved() {
			t.Fatalf("unsaved at distance %v", dist)
		}
		_, opt := bruteOptimal(r, cons, to, 0)
		return adj.Cost / opt
	}
	near := worst(9)
	far := worst(60)
	if far > near+1e-9 {
		t.Errorf("approximation factor grew with distance: near %v, far %v", near, far)
	}
	if far > 1.05 {
		t.Errorf("far outlier factor %v should be ≈ 1", far)
	}
}
