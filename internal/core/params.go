package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/data"
	"repro/internal/neighbors"
	"repro/internal/par"
	"repro/internal/stats"
)

// ParamOptions tune the Poisson-based determination of (ε, η) (§2.1.2 and
// §4.2.2).
type ParamOptions struct {
	// SampleRate in (0, 1] counts ε-neighbors for only that fraction of
	// tuples (Figure 5c–d, Table 4); 0 means 1 (all tuples).
	SampleRate float64
	// Confidence is the cluster-membership probability p(N(ε) ≥ η) the
	// chosen η must retain; 0 means the paper's 0.99.
	Confidence float64
	// TargetOutlierRate is the fraction of tuples that should violate the
	// constraints under the chosen (ε, η): the paper prefers a
	// "moderately large ε" where a limited number of points fall below
	// the threshold. 0 means 0.10, matching Table 1's outlier rates.
	TargetOutlierRate float64
	// EpsCandidates overrides the automatically derived candidate grid.
	EpsCandidates []float64
	Seed          int64
}

// ParamChoice is a determined parameter setting.
type ParamChoice struct {
	Eps float64
	Eta int
	// Lambda is the fitted Poisson rate λε at Eps.
	Lambda float64
	// OutlierRate is the sampled fraction of tuples violating (Eps, Eta).
	OutlierRate float64
	// Exhausted marks a determination whose candidate grid was not fully
	// evaluated because the context was cancelled: the choice is the best
	// among the candidates measured so far, not over the whole grid.
	Exhausted bool
}

// NeighborCounts returns the number of ε-neighbors (self excluded) for the
// sampled tuples — the raw distribution plotted in Figure 5. idx may be
// nil to build one.
func NeighborCounts(rel *data.Relation, eps float64, sampleRate float64, seed int64, idx neighbors.Index) []int {
	counts, _ := NeighborCountsContext(context.Background(), rel, eps, sampleRate, seed, idx)
	return counts
}

// NeighborCountsContext is NeighborCounts with cancellation: the counting
// pass stops promptly once ctx is cancelled and returns (nil, ctx error) —
// a partially counted sample would bias the Poisson fit.
func NeighborCountsContext(ctx context.Context, rel *data.Relation, eps float64, sampleRate float64, seed int64, idx neighbors.Index) ([]int, error) {
	if idx == nil {
		idx = neighbors.Build(rel, eps)
	}
	if sampleRate <= 0 || sampleRate > 1 {
		sampleRate = 1
	}
	sample := stats.SampleIndices(rel.N(), sampleRate, seed)
	counts := make([]int, len(sample))
	cidx := neighbors.WithContext(ctx, idx)
	errs := par.ForEach(ctx, len(sample), runtime.GOMAXPROCS(0), func(k int) error {
		i := sample[k]
		counts[k] = cidx.CountWithin(rel.Tuples[i], eps, i, 0)
		return nil
	})
	if err := par.FirstErr(errs); err != nil {
		return nil, err
	}
	return counts, nil
}

// DeterminePoisson chooses (ε, η) from the Poisson model of ε-neighbor
// appearance: for each candidate ε it fits λε to the sampled neighbor
// counts, takes the largest η with p(N(ε) ≥ η) ≥ Confidence (Formula 3),
// and keeps the candidate whose violation rate is closest to
// TargetOutlierRate — the "moderately large ε" rule of §2.1.2 under which
// a limited number of points are identified as outliers.
func DeterminePoisson(rel *data.Relation, opts ParamOptions) (ParamChoice, error) {
	return DeterminePoissonContext(context.Background(), rel, opts)
}

// DeterminePoissonContext is DeterminePoisson under cancellation, degrading
// gracefully: when ctx is cancelled mid-grid, the best choice among the ε
// candidates measured so far is returned with Exhausted set (the selection
// rule runs over the partial grid); only a cancellation before the first
// candidate was measured is returned as an error.
func DeterminePoissonContext(ctx context.Context, rel *data.Relation, opts ParamOptions) (ParamChoice, error) {
	if rel.N() < 2 {
		return ParamChoice{}, fmt.Errorf("core: cannot determine parameters over %d tuples", rel.N())
	}
	if opts.Confidence <= 0 || opts.Confidence >= 1 {
		opts.Confidence = 0.99
	}
	if opts.TargetOutlierRate <= 0 || opts.TargetOutlierRate >= 1 {
		opts.TargetOutlierRate = 0.10
	}
	if opts.SampleRate <= 0 || opts.SampleRate > 1 {
		opts.SampleRate = 1
	}
	cands := opts.EpsCandidates
	if len(cands) == 0 {
		cands = epsCandidateGrid(ctx, rel, opts.Seed)
	}
	if len(cands) == 0 {
		return ParamChoice{}, fmt.Errorf("core: no ε candidates could be derived")
	}
	sort.Float64s(cands)
	idx := neighbors.Build(rel, cands[len(cands)/2])

	choices := make([]ParamChoice, 0, len(cands))
	gaps := make([]float64, 0, len(cands))
	gapMin := math.Inf(1)
	exhausted := false
	for _, eps := range cands {
		counts, cerr := NeighborCountsContext(ctx, rel, eps, opts.SampleRate, opts.Seed, idx)
		if cerr != nil {
			if len(choices) == 0 {
				return ParamChoice{}, fmt.Errorf("core: parameter determination cancelled: %w", cerr)
			}
			exhausted = true
			break // select over the candidates measured so far
		}
		pois, err := stats.FitPoisson(counts)
		if err != nil {
			continue
		}
		if pois.Lambda <= 1 {
			continue // almost every sampled tuple isolated; ε below the noise floor
		}
		// The neighbor threshold tracks the rate: η ≈ 0.35·λε, the ratio
		// behind the paper's (λε=51.36, η=18) on Letter, which keeps the
		// Poisson tail p(N(ε) ≥ η) ≥ 0.99 for any λ ≳ 20.
		eta := int(math.Ceil(0.35 * pois.Lambda))
		if eta < 2 {
			eta = 2
		}
		viol := 0
		for _, c := range counts {
			if c < eta {
				viol++
			}
		}
		rate := float64(viol) / float64(len(counts))
		gap := math.Abs(rate - opts.TargetOutlierRate)
		choices = append(choices, ParamChoice{Eps: eps, Eta: eta, Lambda: pois.Lambda, OutlierRate: rate})
		gaps = append(gaps, gap)
		if gap < gapMin {
			gapMin = gap
		}
	}
	if len(choices) == 0 {
		return ParamChoice{}, fmt.Errorf("core: parameter determination failed for all %d candidates", len(cands))
	}
	// On well-clustered data several ε values reach the target violation
	// rate. The paper's rule wants a "moderately large ε": within the
	// near-optimal band the smallest candidate is taken — it sits just
	// above the noise floor (tiny-ε candidates are excluded by their
	// violation-rate gap), and its choice is stable across sampling rates
	// because the band's lower edge is anchored by the data's density,
	// not by how far the grid extends upward.
	// The tolerance tracks the sampling noise of the violation-rate
	// estimate: with s sampled tuples the rate is only resolved to
	// ≈ 1/√s, so small samples widen the band rather than trusting noise.
	sampleN := float64(rel.N()) * opts.SampleRate
	if sampleN < 1 {
		sampleN = 1
	}
	tol := gapMin + math.Max(0.005, 0.35/math.Sqrt(sampleN))
	// Repair headroom dominates the rate criterion: the Proposition 5
	// upper bound needs donors t₂ with δ_η(t₂) ≤ ε − Δ(t_o[X], t₂[X]),
	// which exist when typical tuples already see η neighbors within ε/2.
	// A rate-perfect ε without headroom detects outliers fine but leaves
	// nothing to save them with. Among headroom-passing candidates the
	// smallest rate gap wins (ascending ε breaks ties); if none passes,
	// fall back to the smallest in-band ε.
	bestPass := -1
	for i, c := range choices {
		if gaps[i] > math.Max(tol, 0.08) {
			continue // hopeless rate match; don't even measure headroom
		}
		half, cerr := NeighborCountsContext(ctx, rel, c.Eps/2, opts.SampleRate, opts.Seed, idx)
		if cerr != nil {
			// Degrade to the rate-only selection over what was measured.
			exhausted = true
			break
		}
		atLeast := 0
		for _, cnt := range half {
			if cnt >= c.Eta {
				atLeast++
			}
		}
		if float64(atLeast) < 0.5*float64(len(half)) {
			continue
		}
		if bestPass < 0 || gaps[i] < gaps[bestPass]-1e-12 {
			bestPass = i
		}
	}
	pick := func(c ParamChoice) (ParamChoice, error) {
		c.Exhausted = exhausted
		return c, nil
	}
	if bestPass >= 0 {
		return pick(choices[bestPass])
	}
	for i, c := range choices {
		if gaps[i] <= tol {
			return pick(c)
		}
	}
	return pick(choices[0])
}

// epsCandidateGrid derives candidate distance thresholds from the k-NN
// distance distribution of a small sample: a geometric grid between the
// median 1-NN distance (everything tighter than this is noise floor) and
// four times the 90th percentile 8-NN distance (room for the repair
// headroom the selection in DeterminePoisson checks for).
func epsCandidateGrid(ctx context.Context, rel *data.Relation, seed int64) []float64 {
	const k = 8
	sampleRate := 256.0 / float64(rel.N())
	sample := stats.SampleIndices(rel.N(), sampleRate, seed)
	idx := neighbors.WithContext(ctx, neighbors.NewVPTree(rel, seed+1))
	var d1, dk []float64
	for _, i := range sample {
		nn := idx.KNN(rel.Tuples[i], k, i)
		if len(nn) == 0 {
			continue
		}
		d1 = append(d1, nn[0].Dist)
		dk = append(dk, nn[len(nn)-1].Dist)
	}
	if len(d1) == 0 {
		return nil
	}
	sort.Float64s(d1)
	sort.Float64s(dk)
	lo := stats.Quantile(d1, 0.5)
	// The upper edge must reach past twice the typical pair distance:
	// repairing an outlier needs donors with η neighbors within ε minus
	// the subspace distance (Proposition 5), i.e. ε ≈ 2× the in-cluster
	// spread, well above the detection-only optimum.
	hi := stats.Quantile(dk, 0.9) * 4
	if lo <= 0 {
		lo = hi / 64
	}
	if hi <= lo {
		hi = lo * 4
	}
	const steps = 12
	ratio := math.Pow(hi/lo, 1/float64(steps-1))
	grid := make([]float64, 0, steps)
	v := lo
	for i := 0; i < steps; i++ {
		grid = append(grid, v)
		v *= ratio
	}
	return grid
}
