package core

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/neighbors"
	"repro/internal/stats"
)

func mixture(t *testing.T, n int, seed int64) *data.Dataset {
	t.Helper()
	ds, err := data.GenMixture(data.MixtureSpec{
		Name: "t", N: n, M: 4, K: 3, Domain: 20, Std: 0.5,
		DirtyFrac: 0.08, NaturalFrac: 0.02, Eps: 1.5, Eta: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNeighborCounts(t *testing.T) {
	ds := mixture(t, 400, 1)
	counts := NeighborCounts(ds.Rel, 1.5, 1, 0, nil)
	if len(counts) != 400 {
		t.Fatalf("got %d counts", len(counts))
	}
	// Cross-check a few against brute force.
	idx := neighbors.NewBrute(ds.Rel)
	for _, i := range []int{0, 57, 399} {
		want := idx.CountWithin(ds.Rel.Tuples[i], 1.5, i, 0)
		if counts[i] != want {
			t.Errorf("count[%d] = %d, want %d", i, counts[i], want)
		}
	}
	// Sampled counts are a subset-sized slice.
	sampled := NeighborCounts(ds.Rel, 1.5, 0.1, 0, nil)
	if len(sampled) != 40 {
		t.Errorf("sampled counts = %d, want 40", len(sampled))
	}
}

func TestDeterminePoissonFindsReasonableParams(t *testing.T) {
	ds := mixture(t, 600, 2)
	choice, err := DeterminePoisson(ds.Rel, ParamOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if choice.Eps <= 0 || choice.Eta < 1 {
		t.Fatalf("degenerate choice %+v", choice)
	}
	// The chosen constraints should flag roughly the injected outlier
	// fraction (10%); allow a wide band since the grid is coarse.
	det, err := Detect(ds.Rel, Constraints{Eps: choice.Eps, Eta: choice.Eta}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(len(det.Outliers)) / float64(ds.N())
	if rate < 0.02 || rate > 0.35 {
		t.Errorf("outlier rate %v under chosen params %+v, want ≈ 0.1", rate, choice)
	}
	// Most injected dirty outliers must actually be flagged.
	flagged := map[int]bool{}
	for _, oi := range det.Outliers {
		flagged[oi] = true
	}
	missed := 0
	total := 0
	for i := range ds.Dirty {
		if ds.Dirty[i] != 0 {
			total++
			if !flagged[i] {
				missed++
			}
		}
	}
	if total > 0 && float64(missed)/float64(total) > 0.4 {
		t.Errorf("chosen params miss %d/%d injected errors", missed, total)
	}
}

func TestDeterminePoissonSamplingStable(t *testing.T) {
	// Figure 5 / Table 4: sampling preserves the neighbor-count
	// distribution. Compare the Poisson fit at a fixed ε between the full
	// scan and a 10% sample.
	ds := mixture(t, 800, 4)
	full, err := stats.FitPoisson(NeighborCounts(ds.Rel, ds.Eps, 1, 5, nil))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := stats.FitPoisson(NeighborCounts(ds.Rel, ds.Eps, 0.1, 5, nil))
	if err != nil {
		t.Fatal(err)
	}
	if full.Lambda <= 0 {
		t.Fatalf("degenerate full λ %v", full.Lambda)
	}
	lr := sampled.Lambda / full.Lambda
	if lr < 0.6 || lr > 1.4 {
		t.Errorf("sampled λ %v far from full %v", sampled.Lambda, full.Lambda)
	}
	// The determined parameters from a sample remain usable: the chosen
	// constraints flag a sane outlier fraction on the full data.
	choice, err := DeterminePoisson(ds.Rel, ParamOptions{Seed: 5, SampleRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	det, err := Detect(ds.Rel, Constraints{Eps: choice.Eps, Eta: choice.Eta}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(len(det.Outliers)) / float64(ds.N())
	if rate < 0.01 || rate > 0.4 {
		t.Errorf("sampled determination flags %v of tuples", rate)
	}
}

func TestDeterminePoissonErrors(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x"))
	if _, err := DeterminePoisson(r, ParamOptions{}); err == nil {
		t.Error("empty relation accepted")
	}
	r.Append(data.Tuple{data.Num(0)})
	if _, err := DeterminePoisson(r, ParamOptions{}); err == nil {
		t.Error("single tuple accepted")
	}
}

func TestDeterminePoissonExplicitCandidates(t *testing.T) {
	ds := mixture(t, 300, 7)
	choice, err := DeterminePoisson(ds.Rel, ParamOptions{
		EpsCandidates: []float64{1.0, 1.5, 2.0},
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range []float64{1.0, 1.5, 2.0} {
		if choice.Eps == c {
			found = true
		}
	}
	if !found {
		t.Errorf("chosen ε %v not among candidates", choice.Eps)
	}
}

func TestExactSaverOptimalOnTinyDomain(t *testing.T) {
	// Brute-force verify optimality: 1D integer grid.
	r := data.NewRelation(data.NewNumericSchema("x"))
	for i := 0; i < 10; i++ {
		for rep := 0; rep < 3; rep++ {
			r.Append(data.Tuple{data.Num(float64(i))})
		}
	}
	cons := Constraints{Eps: 1, Eta: 4}
	ex, err := NewExactSaver(r, cons, 0)
	if err != nil {
		t.Fatal(err)
	}
	outlier := data.Tuple{data.Num(30)}
	adj := ex.Save(outlier)
	if !adj.Saved() {
		t.Fatal("exact did not save")
	}
	// Any x in [1,8] has ≥ 6 neighbors within 1 (integers x−1, x, x+1 at
	// 3 copies each, minus... the candidate is a new point so all copies
	// count). Nearest feasible integer to 30 is 9 (neighbors 8,9,10? 10
	// doesn't exist, so 9 has 8's three copies + 9's three = 6 ≥ 4).
	if adj.Tuple[0].Num != 9 {
		t.Errorf("exact adjusted to %v, want 9", adj.Tuple[0].Num)
	}
	if math.Abs(adj.Cost-21) > 1e-9 {
		t.Errorf("cost = %v, want 21", adj.Cost)
	}
}

func TestExactSaverRespectsDomainThinning(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x", "y"))
	for i := 0; i < 200; i++ {
		r.Append(data.Tuple{data.Num(float64(i % 20)), data.Num(float64(i / 20))})
	}
	ex, err := NewExactSaver(r, Constraints{Eps: 1.5, Eta: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		if len(ex.domains[a]) > 5 {
			t.Errorf("domain %d has %d values after thinning to 5", a, len(ex.domains[a]))
		}
	}
	adj := ex.Save(data.Tuple{data.Num(50), data.Num(5)})
	if !adj.Saved() {
		t.Error("thinned exact failed to save")
	}
}

func TestExactSaverInvalidConstraints(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x"))
	r.Append(data.Tuple{data.Num(0)})
	if _, err := NewExactSaver(r, Constraints{Eps: 0, Eta: 1}, 0); err == nil {
		t.Error("invalid constraints accepted")
	}
}

func TestExactNeverWorseThanDISCCost(t *testing.T) {
	ds := mixture(t, 200, 11)
	cons := Constraints{Eps: ds.Eps, Eta: ds.Eta}
	det, err := Detect(ds.Rel, cons, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Outliers) == 0 {
		t.Skip("no outliers in draw")
	}
	r := ds.Rel.Subset(det.Inliers)
	saver, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExactSaver(r, cons, 12)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, oi := range det.Outliers {
		if checked >= 5 {
			break
		}
		to := ds.Rel.Tuples[oi]
		dAdj := saver.Save(to)
		eAdj := ex.Save(to)
		if !dAdj.Saved() || !eAdj.Saved() {
			continue
		}
		checked++
		// The thinned exact domain may миss the best value, so only a
		// loose sanity relation holds: both costs are finite and exact
		// stays within 2× of DISC.
		if eAdj.Cost > dAdj.Cost*2+1e-9 {
			t.Errorf("outlier %d: exact %v ≫ DISC %v", oi, eAdj.Cost, dAdj.Cost)
		}
	}
}
