package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// clusterRelation builds a dense 2D cluster around (cx, cy): a (2k+1)²
// grid with spacing 0.5, so interior points have plenty of 1.5-neighbors.
func clusterRelation(cx, cy float64, k int) *data.Relation {
	r := data.NewRelation(data.NewNumericSchema("x", "y"))
	for i := -k; i <= k; i++ {
		for j := -k; j <= k; j++ {
			r.Append(data.Tuple{data.Num(cx + float64(i)*0.5), data.Num(cy + float64(j)*0.5)})
		}
	}
	return r
}

func TestConstraintsValidate(t *testing.T) {
	if err := (Constraints{Eps: 1, Eta: 1}).Validate(); err != nil {
		t.Errorf("valid constraints rejected: %v", err)
	}
	if err := (Constraints{Eps: 0, Eta: 1}).Validate(); err == nil {
		t.Error("ε=0 accepted")
	}
	if err := (Constraints{Eps: 1, Eta: 0}).Validate(); err == nil {
		t.Error("η=0 accepted")
	}
}

func TestDetectSplitsInliersAndOutliers(t *testing.T) {
	r := clusterRelation(0, 0, 3) // 49 points
	out := data.Tuple{data.Num(20), data.Num(20)}
	r.Append(out)
	cons := Constraints{Eps: 1.5, Eta: 3}
	det, err := Detect(r, cons, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Outliers) != 1 || det.Outliers[0] != r.N()-1 {
		t.Fatalf("outliers = %v", det.Outliers)
	}
	if len(det.Inliers) != 49 {
		t.Fatalf("inliers = %d", len(det.Inliers))
	}
	if !det.IsOutlier(r.N() - 1) {
		t.Error("IsOutlier disagrees with split")
	}
	if det.IsOutlier(0) {
		t.Error("cluster point flagged as outlier")
	}
	// Counts exclude the tuple itself.
	if det.Counts[r.N()-1] != 0 {
		t.Errorf("isolated point has count %d", det.Counts[r.N()-1])
	}
}

func TestDetectInvalidConstraints(t *testing.T) {
	r := clusterRelation(0, 0, 1)
	if _, err := Detect(r, Constraints{Eps: -1, Eta: 1}, nil); err == nil {
		t.Error("invalid constraints accepted")
	}
}

func TestSaveAdjustsOnlyTheErroneousAttribute(t *testing.T) {
	// The Figure 1 scenario: a value error on one attribute makes the
	// tuple outlying; DISC should repair that attribute and keep the rest.
	r := clusterRelation(0, 0, 3)
	cons := Constraints{Eps: 1.5, Eta: 3}
	s, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outlier := data.Tuple{data.Num(10), data.Num(0.25)} // x corrupted, y fine
	adj := s.Save(outlier)
	if !adj.Saved() {
		t.Fatal("outlier not saved")
	}
	if adj.Tuple[1].Num != 0.25 {
		t.Errorf("y was adjusted to %v; only x is erroneous", adj.Tuple[1].Num)
	}
	if adj.Adjusted.Count() != 1 || !adj.Adjusted.Has(0) {
		t.Errorf("adjusted mask = %b, want x only", adj.Adjusted)
	}
	// Feasibility: the adjustment has ≥ η ε-neighbors in r.
	idx := neighbors.NewBrute(r)
	if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
		t.Errorf("adjustment has only %d ε-neighbors, want ≥ %d", got, cons.Eta)
	}
	// Cost respects the Lemma 2 lower bound: Δ(t_o, t_1) − ε where t_1 is
	// the η-th NN.
	nn := idx.KNN(outlier, cons.Eta, -1)
	lower := nn[cons.Eta-1].Dist - cons.Eps
	if adj.Cost < lower-1e-9 {
		t.Errorf("cost %v beats the lower bound %v", adj.Cost, lower)
	}
	// Cost respects the Lemma 4 upper bound: distance to the nearest
	// inlier.
	upper := idx.KNN(outlier, 1, -1)[0].Dist
	if adj.Cost > upper+1e-9 {
		t.Errorf("cost %v exceeds the nearest-inlier upper bound %v", adj.Cost, upper)
	}
	// The adjustment must beat whole-tuple substitution (DORC's move):
	// repairing x alone is strictly cheaper than copying both attributes.
	if adj.Cost >= upper {
		t.Errorf("cost %v does not improve on tuple substitution %v", adj.Cost, upper)
	}
}

func TestSaveFeasibilityAndBoundsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		r := clusterRelation(0, 0, 3)
		// Sprinkle a second cluster for variety.
		for _, t2 := range clusterRelation(8, 8, 2).Tuples {
			r.Append(t2)
		}
		cons := Constraints{Eps: 1.5, Eta: 2 + rng.Intn(4)}
		s, err := NewSaver(r, cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		outlier := data.Tuple{
			data.Num(rng.Float64()*30 - 5),
			data.Num(rng.Float64()*30 - 5),
		}
		idx := neighbors.NewBrute(r)
		adj := s.Save(outlier)
		if !adj.Saved() {
			t.Fatalf("trial %d: not saved", trial)
		}
		if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
			t.Fatalf("trial %d: infeasible adjustment (%d neighbors)", trial, got)
		}
		nn := idx.KNN(outlier, cons.Eta, -1)
		lower := nn[cons.Eta-1].Dist - cons.Eps
		if adj.Cost < lower-1e-9 {
			t.Fatalf("trial %d: cost %v below lower bound %v", trial, adj.Cost, lower)
		}
		upper := idx.KNN(outlier, 1, -1)[0].Dist
		if adj.Cost > upper+1e-9 {
			t.Fatalf("trial %d: cost %v above upper bound %v", trial, adj.Cost, upper)
		}
		// Cost is consistent with the returned tuple.
		if d := r.Schema.Dist(outlier, adj.Tuple); math.Abs(d-adj.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported cost %v but Δ = %v", trial, adj.Cost, d)
		}
	}
}

func TestSaveMatchesExactOnSmallInstances(t *testing.T) {
	// DISC composes adjustments from existing tuples' values, exactly the
	// candidate space the Exact enumeration searches, so on these
	// instances exact ≤ DISC and both are feasible.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		r := data.NewRelation(data.NewNumericSchema("x", "y"))
		for i := 0; i < 60; i++ {
			r.Append(data.Tuple{
				data.Num(math.Floor(rng.Float64() * 6)),
				data.Num(math.Floor(rng.Float64() * 6)),
			})
		}
		cons := Constraints{Eps: 1.5, Eta: 4}
		s, err := NewSaver(r, cons, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := NewExactSaver(r, cons, 0)
		if err != nil {
			t.Fatal(err)
		}
		outlier := data.Tuple{data.Num(25), data.Num(3)}
		dAdj := s.Save(outlier)
		eAdj := ex.Save(outlier)
		if !eAdj.Saved() {
			continue // no feasible position in this draw
		}
		if !dAdj.Saved() {
			t.Fatalf("trial %d: exact found %v but DISC found nothing", trial, eAdj.Cost)
		}
		if eAdj.Cost > dAdj.Cost+1e-9 {
			t.Fatalf("trial %d: exact cost %v worse than DISC %v", trial, eAdj.Cost, dAdj.Cost)
		}
		idx := neighbors.NewBrute(r)
		if got := idx.CountWithin(eAdj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
			t.Fatalf("trial %d: exact adjustment infeasible", trial)
		}
	}
}

func TestSaveKappaRestriction(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	cons := Constraints{Eps: 1.5, Eta: 3}
	s, err := NewSaver(r, cons, Options{Kappa: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One corrupted attribute: savable within κ=1.
	dirty := data.Tuple{data.Num(10), data.Num(0.25)}
	adj := s.Save(dirty)
	if !adj.Saved() {
		t.Fatal("dirty outlier not saved under κ=1")
	}
	if adj.Adjusted.Count() > 1 {
		t.Errorf("κ=1 but %d attributes adjusted", adj.Adjusted.Count())
	}
	// Natural outlier: both attributes far off; not savable within κ=1.
	natural := data.Tuple{data.Num(40), data.Num(-40)}
	nAdj := s.Save(natural)
	if nAdj.Saved() {
		t.Errorf("natural outlier saved under κ=1 by adjusting %b (cost %v)", nAdj.Adjusted, nAdj.Cost)
	}
	if !nAdj.Natural {
		t.Error("unsavable outlier not flagged natural")
	}
}

func TestSaveAblationsAgree(t *testing.T) {
	// Disabling pruning or memoization must not change the result cost.
	r := clusterRelation(0, 0, 2)
	for _, t4 := range clusterRelation(6, 2, 2).Tuples {
		r.Append(t4)
	}
	cons := Constraints{Eps: 1.5, Eta: 3}
	outlier := data.Tuple{data.Num(12), data.Num(2.2)}

	base, _ := NewSaver(r, cons, Options{})
	noPrune, _ := NewSaver(r, cons, Options{DisablePruning: true})
	noMemo, _ := NewSaver(r, cons, Options{DisableMemo: true})

	want := base.Save(outlier)
	for name, s := range map[string]*Saver{"noPrune": noPrune, "noMemo": noMemo} {
		got := s.Save(outlier)
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Errorf("%s: cost %v, want %v", name, got.Cost, want.Cost)
		}
	}
	// Pruning must not increase the node count.
	noPruneAdj := noPrune.Save(outlier)
	if want.Nodes > noPruneAdj.Nodes {
		t.Errorf("pruning expanded more nodes (%d) than no pruning (%d)", want.Nodes, noPruneAdj.Nodes)
	}
}

func TestSaverRejectsBadInput(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x"))
	if _, err := NewSaver(r, Constraints{Eps: 1, Eta: 1}, Options{}); err == nil {
		t.Error("empty inlier set accepted")
	}
	r.Append(data.Tuple{data.Num(0)})
	if _, err := NewSaver(r, Constraints{Eps: 0, Eta: 1}, Options{}); err == nil {
		t.Error("invalid constraints accepted")
	}
}

func TestSaveGPSStyleSingleAttributeError(t *testing.T) {
	// Example 1/2 of the paper: a trajectory point with a corrupted
	// longitude; the repair should move longitude back near the
	// trajectory and keep time/latitude unchanged.
	// Readings every 10 time units: repairing the longitude in place is
	// far cheaper than re-timing the point, as with t₁₃ in Figure 2.
	r := data.NewRelation(data.NewNumericSchema("time", "lon", "lat"))
	for i := 0; i < 40; i++ {
		r.Append(data.Tuple{
			data.Num(float64(i) * 10),
			data.Num(800 + float64(i)*0.8),
			data.Num(160 + float64(i)*0.3),
		})
	}
	cons := Constraints{Eps: 21, Eta: 2}
	s, err := NewSaver(r, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The reading at time 130 with longitude 1010 instead of ≈ 810.
	outlier := data.Tuple{data.Num(130), data.Num(1010), data.Num(163.9)}
	adj := s.Save(outlier)
	if !adj.Saved() {
		t.Fatal("trajectory outlier not saved")
	}
	if adj.Tuple[0].Num != 130 {
		t.Errorf("time adjusted to %v; it was correct", adj.Tuple[0].Num)
	}
	if adj.Tuple[2].Num != 163.9 {
		t.Errorf("latitude adjusted to %v; it was correct", adj.Tuple[2].Num)
	}
	if adj.Tuple[1].Num < 800 || adj.Tuple[1].Num > 832 {
		t.Errorf("longitude repaired to %v, want within the trajectory range", adj.Tuple[1].Num)
	}
	if adj.Adjusted.Count() != 1 || !adj.Adjusted.Has(1) {
		t.Errorf("adjusted mask = %b, want longitude only", adj.Adjusted)
	}
}

func TestSaveAllPipeline(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	n0 := r.N()
	// Two dirty outliers and one natural outlier.
	r.Append(data.Tuple{data.Num(9), data.Num(0.3)})
	r.Append(data.Tuple{data.Num(-0.2), data.Num(-11)})
	r.Append(data.Tuple{data.Num(50), data.Num(-50)})
	cons := Constraints{Eps: 1.5, Eta: 3}

	res, err := SaveAll(r, cons, Options{Kappa: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detection.Outliers) != 3 {
		t.Fatalf("detected %d outliers, want 3", len(res.Detection.Outliers))
	}
	if res.Saved != 2 || res.Natural != 1 {
		t.Fatalf("saved=%d natural=%d, want 2/1", res.Saved, res.Natural)
	}
	// The input relation is untouched.
	if r.Tuples[n0][0].Num != 9 {
		t.Error("SaveAll modified its input")
	}
	// Repaired relation has no remaining dirty outliers (the natural one
	// stays).
	det2, err := Detect(res.Repaired, cons, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(det2.Outliers) != 1 {
		t.Errorf("repaired relation still has %d outliers, want 1 (the natural)", len(det2.Outliers))
	}
	// Adjustment indexes point at the original positions.
	for _, adj := range res.Adjustments {
		if adj.Index < n0 {
			t.Errorf("adjustment index %d points at an inlier", adj.Index)
		}
	}
}

func TestSaveAllNoOutliers(t *testing.T) {
	r := clusterRelation(0, 0, 3)
	res, err := SaveAll(r, Constraints{Eps: 1.5, Eta: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Adjustments) != 0 || res.Saved != 0 || res.Natural != 0 {
		t.Error("clean relation produced adjustments")
	}
}

func TestSaveAllAllOutliers(t *testing.T) {
	// Every tuple isolated: nothing can be saved, all flagged natural.
	r := data.NewRelation(data.NewNumericSchema("x"))
	for i := 0; i < 5; i++ {
		r.Append(data.Tuple{data.Num(float64(i) * 100)})
	}
	res, err := SaveAll(r, Constraints{Eps: 1, Eta: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Natural != 5 || res.Saved != 0 {
		t.Fatalf("saved=%d natural=%d, want 0/5", res.Saved, res.Natural)
	}
}

func TestQuickselect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Floor(rng.Float64() * 20)
		}
		k := rng.Intn(n)
		sorted := append([]float64(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		if got := quickselect(append([]float64(nil), vals...), k); got != sorted[k] {
			t.Fatalf("quickselect(%v, %d) = %v, want %v", vals, k, got, sorted[k])
		}
	}
}
