package core

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
)

// statsRelation builds a tight cluster over m attributes; with a huge ε the
// search sees no pruning at all, so its counters are exactly predictable.
func statsRelation(n, m int, seed int64) *data.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	r := data.NewRelation(data.NewNumericSchema(names...))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		t := make(data.Tuple, m)
		for a := range t {
			t[a] = data.Num(rng.Float64())
		}
		r.Append(t)
	}
	return r
}

// centered6D is a cluster-center tuple for denseRelation6D. Corrupting one
// or two of its attributes plants an outlier that Algorithm 1 can actually
// search over: the masks keeping the clean attributes have candidates, so
// nodes are expanded. (A tuple corrupted in *every* attribute, like far6D,
// degenerates: all proper subspaces are empty, only the root expands.)
func centered6D() data.Tuple {
	t := make(data.Tuple, 6)
	for a := range t {
		t[a] = data.Num(0.5)
	}
	return t
}

// TestSearchCountersExact pins the counter semantics on a workload where
// the whole mask lattice is expanded: ε so large that the Proposition 3
// lower bound (η-th distance − ε < 0) can never reach bestCost ≥ 0 and no
// candidate ever falls outside ε. Then the unrestricted search must expand
// every mask exactly once — Nodes = 2^m — and every further lattice edge
// into an already-visited mask is a memo hit: the lattice has m·2^(m−1)
// edges, 2^m − 1 of which are first entries, so
// MemoHits = m·2^(m−1) − 2^m + 1.
func TestSearchCountersExact(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		m := m
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			r := statsRelation(40, m, 7)
			cons := Constraints{Eps: 1000, Eta: 3}
			s, err := NewSaver(r, cons, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			to := make(data.Tuple, m)
			for a := range to {
				to[a] = data.Num(50) // far outside the cluster
			}
			adj := s.Save(to)

			wantNodes := int64(1) << m
			wantHits := int64(m)*(1<<(m-1)) - (1 << m) + 1
			st := adj.Stats
			if st.Nodes != wantNodes {
				t.Errorf("Nodes = %d, want 2^%d = %d", st.Nodes, m, wantNodes)
			}
			if int64(adj.Nodes) != st.Nodes {
				t.Errorf("Adjustment.Nodes %d disagrees with Stats.Nodes %d", adj.Nodes, st.Nodes)
			}
			if st.MemoHits != wantHits {
				t.Errorf("MemoHits = %d, want m·2^(m−1) − 2^m + 1 = %d", st.MemoHits, wantHits)
			}
			if st.LBPrunes != 0 || st.CandPrunes != 0 {
				t.Errorf("huge-ε search must not prune, got lb=%d cand=%d", st.LBPrunes, st.CandPrunes)
			}
			if st.BudgetTrips != 0 {
				t.Errorf("unbudgeted search tripped %d budgets", st.BudgetTrips)
			}
			if st.Candidates != int64(r.N()) {
				t.Errorf("Candidates = %d, want all %d inliers under a huge ε", st.Candidates, r.N())
			}
			if st.KappaMasks != 0 || st.KappaPrefiltered != 0 {
				t.Errorf("unrestricted search counted κ work: masks=%d prefiltered=%d",
					st.KappaMasks, st.KappaPrefiltered)
			}
			if st.UBWitnesses == 0 || st.BestUpdates == 0 {
				t.Errorf("feasible search saw no witnesses/updates: %+v", st)
			}
			if st.KNNQueries == 0 {
				t.Error("Lemma 4 initial bound performed no k-NN query")
			}
			if st.RangeQueries == 0 || st.DistEvals == 0 {
				t.Errorf("no index traffic recorded: %+v", st)
			}
			if !adj.Saved() {
				t.Error("huge-ε save found no adjustment")
			}
		})
	}
}

// TestCounterAblations checks the ablation directions the counters must
// make visible: disabling the lower bound expands strictly more nodes and
// records zero LBPrunes; disabling the memo records zero MemoHits and
// re-expands shared masks.
//
// The workload is built so the Proposition 3 bound provably fires. The
// outlier is a cluster member with attribute 5 shifted by +3 (repair cost ≈
// 3 − max cluster value ≈ 2.0, found while exploring the masks without
// attribute 5, which come first). A decoy clique of 6 points matches the
// corrupted value exactly but sits at full distance 3.5: at X = {5} the
// cluster is filtered (> ε on attribute 5) and only decoys remain, so the
// η-th candidate distance gives the lower bound 3.5 − ε = 2.3 > bestCost —
// the whole 2^4-mask subtree over {1,2,3,4} is pruned. Without the bound
// those masks all expand (the decoys stay within ε on them).
func TestCounterAblations(t *testing.T) {
	r := denseRelation6D(200, 3)
	cons := Constraints{Eps: 1.2, Eta: 4}
	outlier := r.Tuples[0].Clone()
	outlier[5] = data.Num(outlier[5].Num + 3)
	for i := 0; i < 6; i++ {
		decoy := outlier.Clone()
		decoy[0] = data.Num(decoy[0].Num + 3.5 + float64(i)*0.001)
		r.Append(decoy)
	}
	save := func(opts Options) obs.SearchStats {
		s, err := NewSaver(r, cons, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s.Save(outlier).Stats
	}
	base := save(Options{Workers: 1})
	noPrune := save(Options{Workers: 1, DisablePruning: true})
	noMemo := save(Options{Workers: 1, DisableMemo: true})

	if base.LBPrunes == 0 {
		t.Fatalf("baseline never pruned — workload too easy to test the ablation: %+v", base)
	}
	if noPrune.LBPrunes != 0 {
		t.Errorf("DisablePruning still counted %d LB prunes", noPrune.LBPrunes)
	}
	if noPrune.Nodes <= base.Nodes {
		t.Errorf("DisablePruning expanded %d nodes, baseline %d — pruning saved nothing?",
			noPrune.Nodes, base.Nodes)
	}
	if noMemo.MemoHits != 0 {
		t.Errorf("DisableMemo still counted %d memo hits", noMemo.MemoHits)
	}
	if noMemo.Nodes < base.Nodes {
		t.Errorf("DisableMemo expanded %d nodes, baseline %d — memo cannot reduce below the lattice",
			noMemo.Nodes, base.Nodes)
	}
}

// TestKappaCounters checks the §3.3 restriction's counters: a κ-restricted
// search enumerates C(m, κ) start masks (minus budget cut-offs; none here).
func TestKappaCounters(t *testing.T) {
	r := denseRelation6D(200, 5)
	s, err := NewSaver(r, Constraints{Eps: 1.2, Eta: 4}, Options{Kappa: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Save(far6D()).Stats
	if want := int64(15); st.KappaMasks != want { // C(6,2)
		t.Errorf("KappaMasks = %d, want C(6,2) = %d", st.KappaMasks, want)
	}
}

// TestSaveAllMergesStats runs the full pipeline and checks SaveResult.Stats
// is the sum of its parts, the phase timings are populated, and the
// progress/logging hooks fire.
func TestSaveAllMergesStats(t *testing.T) {
	r := denseRelation6D(220, 17)
	// A few planted outliers, corrupted in one attribute and spaced > ε
	// apart on it so they cannot form their own cluster.
	for i := 0; i < 5; i++ {
		t := centered6D()
		t[0] = data.Num(3 + float64(i)*2)
		r.Append(t)
	}
	var mu sync.Mutex
	var snaps []obs.Progress
	var logBuf bytes.Buffer
	res, err := SaveAll(r, Constraints{Eps: 1.2, Eta: 4}, Options{
		Kappa:            2,
		Progress:         func(p obs.Progress) { mu.Lock(); snaps = append(snaps, p); mu.Unlock() },
		ProgressInterval: time.Nanosecond, // deliver every report
		Logger:           slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detection.Outliers) == 0 {
		t.Fatal("workload produced no outliers")
	}

	// Stats: batch total = detection + saver setup + Σ per-outlier.
	var fromAdjustments int64
	for _, adj := range res.Adjustments {
		fromAdjustments += adj.Stats.Nodes
		if int64(adj.Nodes) != adj.Stats.Nodes {
			t.Errorf("outlier %d: Nodes field %d != Stats.Nodes %d", adj.Index, adj.Nodes, adj.Stats.Nodes)
		}
	}
	if res.Stats.Nodes != fromAdjustments {
		t.Errorf("batch Nodes %d != Σ per-outlier %d (detection/setup expand no nodes)",
			res.Stats.Nodes, fromAdjustments)
	}
	if res.Stats.Nodes == 0 {
		t.Error("batch expanded zero nodes")
	}
	// Detection issues one range query per tuple; the batch total must
	// include them on top of the per-save traffic.
	if res.Stats.RangeQueries < int64(r.N()) {
		t.Errorf("RangeQueries = %d < n = %d: detection pass not merged", res.Stats.RangeQueries, r.N())
	}
	if res.Detection.Stats.Nodes != 0 {
		t.Errorf("detection claims %d search nodes", res.Detection.Stats.Nodes)
	}

	// Timings.
	if res.Timings.Total <= 0 || res.Timings.Detect <= 0 || res.Timings.Save <= 0 {
		t.Errorf("phase timings not populated: %+v", res.Timings)
	}
	if res.Timings.Total < res.Timings.Save {
		t.Errorf("Total %v < Save %v", res.Timings.Total, res.Timings.Save)
	}

	// Progress: every outlier reported (interval ~0), final snapshot sealed.
	if len(snaps) == 0 {
		t.Fatal("no progress delivered")
	}
	final := snaps[len(snaps)-1]
	nOut := len(res.Detection.Outliers)
	if final.Done != nOut || final.Total != nOut {
		t.Errorf("final progress %d/%d, want %d/%d", final.Done, final.Total, nOut, nOut)
	}
	if final.Saved != res.Saved || final.Natural != res.Natural {
		t.Errorf("final progress split (%d saved, %d natural) disagrees with result (%d, %d)",
			final.Saved, final.Natural, res.Saved, res.Natural)
	}

	// Logs: the phase events came through.
	logs := logBuf.String()
	for _, want := range []string{"detection done", "saver ready", "batch done"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log output missing %q:\n%s", want, logs)
		}
	}
}

// TestSaveAllStatsUnderPanics exercises the sharded counters with parallel
// workers, a progress callback, a logger, and a panicking save — the -race
// configuration of the suite turns any cross-shard write into a failure.
func TestSaveAllStatsUnderPanics(t *testing.T) {
	r := denseRelation6D(220, 23)
	for i := 0; i < 8; i++ {
		tp := centered6D()
		tp[1] = data.Num(3 + float64(i)*2)
		r.Append(tp)
	}
	saveAllHook = func(k int) {
		if k == 2 {
			panic("injected")
		}
	}
	defer func() { saveAllHook = nil }()

	var logBuf syncBuffer
	res, err := SaveAll(r, Constraints{Eps: 1.2, Eta: 4}, Options{
		Kappa:            2,
		Workers:          4,
		Progress:         func(obs.Progress) {},
		ProgressInterval: time.Nanosecond,
		Logger:           slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 1 {
		t.Fatalf("want exactly the injected panic failed, got %d (%v)", res.Failed(), res.Errs)
	}
	var fromAdjustments int64
	for _, adj := range res.Adjustments {
		fromAdjustments += adj.Stats.Nodes
	}
	if res.Stats.Nodes != fromAdjustments || res.Stats.Nodes == 0 {
		t.Errorf("stats merge wrong under panic: batch %d, Σ %d", res.Stats.Nodes, fromAdjustments)
	}
	if !strings.Contains(logBuf.String(), "not processed") {
		t.Error("panicked outlier not logged")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: slog handlers are called from
// every save worker concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestInstrumentationAllocFree proves the tentpole's performance contract:
// with the counters wired in, a warm-arena save still performs no per-node
// allocations (same bound as TestSaveSteadyStateAllocs) — the counting
// index view is cached on the arena and the counters are plain fields.
func TestInstrumentationAllocFree(t *testing.T) {
	s, to := arenaWorkload(t)
	ar := new(saveArena)
	ctx := context.Background()
	adj := s.save(ctx, to, ar) // warm slabs + counting view
	if adj.Stats.Nodes < 100 {
		t.Fatalf("workload too small (%d nodes)", adj.Stats.Nodes)
	}
	if adj.Stats.DistEvals == 0 {
		t.Fatal("instrumentation inactive: no distance evaluations counted")
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.save(ctx, to, ar)
	})
	// Same race-mode widening as TestSaveSteadyStateAllocs: the race
	// detector's sync.Pool drops re-admit a few query-bind allocations.
	budget := 16.0
	if raceDetector {
		budget = 64
	}
	if allocs > budget {
		t.Errorf("instrumented steady-state save allocates %.1f per call (budget %.0f) over %d nodes",
			allocs, budget, adj.Stats.Nodes)
	}
}
