package core

import (
	"runtime"

	"repro/internal/data"
)

// SaveResult is the outcome of saving every outlier of a relation.
type SaveResult struct {
	// Repaired is a copy of the input relation with every saved outlier
	// replaced by its adjustment; natural/unsaved outliers keep their
	// original values (§1.2).
	Repaired *data.Relation
	// Detection is the inlier/outlier split the save ran against.
	Detection *Detection
	// Adjustments has one entry per outlier (Index filled with the tuple's
	// position in the input relation), in Detection.Outliers order.
	Adjustments []Adjustment
	// Saved and Natural count the repaired and flagged outliers.
	Saved, Natural int
}

// SaveAll runs the full DISC pipeline on a relation: detect the violations
// of the distance constraints, split the dataset into inliers r and
// outliers s, and save each outlier against r one by one (§2.2), in
// parallel across outliers. The input relation is not modified.
func SaveAll(rel *data.Relation, cons Constraints, opts Options) (*SaveResult, error) {
	det, err := Detect(rel, cons, nil)
	if err != nil {
		return nil, err
	}
	res := &SaveResult{
		Repaired:    rel.Clone(),
		Detection:   det,
		Adjustments: make([]Adjustment, len(det.Outliers)),
	}
	if len(det.Outliers) == 0 {
		return res, nil
	}
	if len(det.Inliers) == 0 {
		// Nothing to save against: every outlier stays unchanged.
		for k, oi := range det.Outliers {
			res.Adjustments[k] = Adjustment{Index: oi, Natural: true}
			res.Natural++
		}
		return res, nil
	}

	r := rel.Subset(det.Inliers)
	saverOpts := opts
	saverOpts.Index = nil // opts.Index would index rel, not the inlier subset
	saver, err := NewSaver(r, cons, saverOpts)
	if err != nil {
		return nil, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallelFor(len(det.Outliers), workers, func(k int) {
		oi := det.Outliers[k]
		adj := saver.Save(rel.Tuples[oi])
		adj.Index = oi
		res.Adjustments[k] = adj
	})
	for k := range res.Adjustments {
		adj := &res.Adjustments[k]
		if adj.Saved() {
			res.Repaired.Tuples[adj.Index] = adj.Tuple.Clone()
			res.Saved++
		} else {
			res.Natural++
		}
	}
	return res, nil
}
