package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/par"
)

// SaveError records one outlier that was not processed: a recovered panic
// inside its save, or the batch budget/context expiring before its turn.
type SaveError struct {
	// Index is the outlier's tuple position in the input relation.
	Index int
	// Err is what happened (wrapped panic, or the context's error).
	Err error
}

// Error implements error.
func (e SaveError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e SaveError) Unwrap() error { return e.Err }

// SaveResult is the outcome of saving every outlier of a relation.
type SaveResult struct {
	// Repaired is a copy of the input relation with every saved outlier
	// replaced by its adjustment; natural/unsaved outliers keep their
	// original values (§1.2).
	Repaired *data.Relation
	// Detection is the inlier/outlier split the save ran against.
	Detection *Detection
	// Adjustments has one entry per outlier (Index filled with the tuple's
	// position in the input relation), in Detection.Outliers order. An
	// outlier listed in Errs has a zero adjustment (not Saved, not
	// Natural).
	Adjustments []Adjustment
	// Saved and Natural count the repaired and flagged outliers.
	Saved, Natural int
	// Exhausted counts the adjustments whose per-outlier search was cut
	// short by a budget (see Adjustment.Exhausted); they are included in
	// Saved/Natural when they produced an answer.
	Exhausted int
	// Errs lists the outliers that were not processed at all: one entry
	// per recovered panic and per outlier skipped after the batch budget
	// or context expired, sorted by outlier index. Nil when every outlier
	// was processed.
	Errs []SaveError
	// Stats merges the per-outlier search counters with the detection
	// pass and the η-radius precompute: the whole pipeline's nodes,
	// prunes, memo hits and index traffic in one place.
	Stats obs.SearchStats
	// Timings breaks the run into pipeline phases (validate, detect,
	// index build, η-radius precompute, save fan-out).
	Timings obs.PhaseTimings
}

// Failed reports the number of outliers that were not processed (len(Errs)).
func (r *SaveResult) Failed() int { return len(r.Errs) }

// saveAllHook, when non-nil, runs just before each outlier's save, with the
// outlier's position k in Detection.Outliers. It exists so tests can inject
// panics and mid-batch cancellations at deterministic points.
var saveAllHook func(k int)

// SaveAll runs the full DISC pipeline on a relation: detect the violations
// of the distance constraints, split the dataset into inliers r and
// outliers s, and save each outlier against r one by one (§2.2), in
// parallel across outliers. The input relation is not modified.
func SaveAll(rel *data.Relation, cons Constraints, opts Options) (*SaveResult, error) {
	return SaveAllContext(context.Background(), rel, cons, opts)
}

// SaveAllContext is SaveAll under budgets: ctx (plus Options.BatchTimeout,
// when set) bounds the whole batch, Options.MaxNodes/Deadline bound each
// outlier's search. The pipeline degrades instead of aborting — when the
// batch budget expires mid-run, outliers already saved keep their
// adjustments, the in-flight ones return best-so-far answers flagged
// Exhausted, and the never-started ones are recorded in SaveResult.Errs. A
// panic inside one outlier's save is recovered into its Errs entry and the
// remaining outliers are still saved. An error is returned only when
// nothing was produced at all: invalid inputs, or cancellation before the
// detection pass completed.
func SaveAllContext(ctx context.Context, rel *data.Relation, cons Constraints, opts Options) (*SaveResult, error) {
	totalStart := time.Now()
	log := obs.Logger(opts.Logger)
	if opts.BatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.BatchTimeout)
		defer cancel()
	}
	// Reject NaN/±Inf up front: a non-finite outlier would otherwise sail
	// through detection (every NaN comparison is false) and poison the
	// distance aggregates of its own save.
	if err := data.ValidateValues(rel); err != nil {
		return nil, err
	}
	validate := time.Since(totalStart)
	// A supplied Options.Index indexes the input relation, so the detection
	// pass reuses it instead of building its own — the amortization a
	// session-caching caller (or a CLI running detection twice) relies on.
	var det *Detection
	var err error
	if opts.ApproxDetect.Enabled() {
		det, err = DetectApproxContext(ctx, rel, cons, opts.Index, opts.ApproxDetect)
	} else {
		det, err = DetectContext(ctx, rel, cons, opts.Index)
	}
	if err != nil {
		return nil, err
	}
	log.Info("disc: detection done", "tuples", rel.N(), "inliers", len(det.Inliers),
		"outliers", len(det.Outliers), "duration", det.Elapsed)
	res := &SaveResult{
		Repaired:    rel.Clone(),
		Detection:   det,
		Adjustments: make([]Adjustment, len(det.Outliers)),
	}
	res.Stats.Add(&det.Stats)
	res.Timings.Validate = validate
	res.Timings.Detect = det.Elapsed
	res.Timings.DetectIndexBuild = det.IndexBuild
	reporter := obs.NewReporter(opts.Progress, opts.ProgressInterval)
	// finish seals the result on every return path: total timing, the
	// batch-level log line, and the final (never rate-limited) progress
	// snapshot.
	finish := func() *SaveResult {
		res.Timings.Total = time.Since(totalStart)
		if res.Stats.GridFallbacks > 0 {
			log.Debug("disc: grid queries degraded to brute scans",
				"fallbacks", res.Stats.GridFallbacks)
		}
		log.Info("disc: batch done", "outliers", len(det.Outliers),
			"saved", res.Saved, "natural", res.Natural, "exhausted", res.Exhausted,
			"failed", res.Failed(), "nodes", res.Stats.Nodes,
			"duration", res.Timings.Total)
		reporter.Final(obs.Progress{
			Done:  len(det.Outliers) - res.Failed(),
			Total: len(det.Outliers),
			Saved: res.Saved, Natural: res.Natural,
			Exhausted: res.Exhausted, Failed: res.Failed(),
		})
		return res
	}
	if len(det.Outliers) == 0 {
		return finish(), nil
	}
	if len(det.Inliers) == 0 {
		// Nothing to save against: every outlier stays unchanged.
		for k, oi := range det.Outliers {
			res.Adjustments[k] = Adjustment{Index: oi, Natural: true}
			res.Natural++
		}
		return finish(), nil
	}

	r := rel.Subset(det.Inliers)
	saverOpts := opts
	saverOpts.Index = nil // opts.Index would index rel, not the inlier subset
	saver, err := NewSaverContext(ctx, r, cons, saverOpts)
	if err != nil {
		return nil, err
	}
	setupStats, indexBuild, etaRadius := saver.SetupStats()
	res.Stats.Add(&setupStats)
	res.Timings.IndexBuild = indexBuild
	res.Timings.EtaRadius = etaRadius
	log.Info("disc: saver ready", "index", fmt.Sprintf("%T", saver.idx),
		"index_build", indexBuild, "eta_radius", etaRadius)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(det.Outliers) {
		workers = len(det.Outliers)
	}
	// One search arena per worker: the slabs are reused across every
	// outlier a worker saves, and worker ids are stable for the whole
	// fan-out, so the hot path shares no mutable state and needs no pool.
	// Each arena also carries that worker's counter shard.
	arenas := make([]*saveArena, workers)
	for w := range arenas {
		arenas[w] = new(saveArena)
	}
	// Progress counters are per-outlier (not per-node) events, so atomics
	// here cost nothing measurable against an NP-hard save.
	var done, savedN, naturalN, exhaustedN atomic.Int64
	total := len(det.Outliers)
	saveStart := time.Now()
	errs := par.ForEachWorker(ctx, total, workers, func(w, k int) error {
		if saveAllHook != nil {
			saveAllHook(k)
		}
		oi := det.Outliers[k]
		adj := saver.save(ctx, rel.Tuples[oi], arenas[w])
		adj.Index = oi
		res.Adjustments[k] = adj
		if adj.Exhausted {
			exhaustedN.Add(1)
			log.Debug("disc: per-outlier budget tripped", "outlier", oi,
				"nodes", adj.Nodes, "answer_kept", adj.Saved())
		}
		switch {
		case adj.Saved():
			savedN.Add(1)
		case adj.Natural:
			naturalN.Add(1)
		}
		reporter.Report(obs.Progress{
			Done: int(done.Add(1)), Total: total,
			Saved: int(savedN.Load()), Natural: int(naturalN.Load()),
			Exhausted: int(exhaustedN.Load()),
		})
		return nil
	})
	res.Timings.Save = time.Since(saveStart)
	for _, ie := range errs {
		oi := det.Outliers[ie.Index]
		res.Adjustments[ie.Index] = Adjustment{Index: oi, Cost: math.Inf(1)}
		res.Errs = append(res.Errs, SaveError{Index: oi, Err: ie.Err})
		log.Warn("disc: outlier not processed", "outlier", oi, "err", ie.Err)
	}
	failed := make(map[int]bool, len(errs))
	for _, ie := range errs {
		failed[ie.Index] = true
	}
	for k := range res.Adjustments {
		adj := &res.Adjustments[k]
		res.Stats.Add(&adj.Stats)
		if adj.Exhausted {
			res.Exhausted++
		}
		switch {
		case failed[k]:
			// Not processed: neither saved nor natural.
		case adj.Saved():
			res.Repaired.Tuples[adj.Index] = adj.Tuple.Clone()
			res.Saved++
		case adj.Natural:
			res.Natural++
		}
	}
	return finish(), nil
}
