package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/neighbors"
)

// FuzzSave drives Algorithm 1 over randomized small relations, constraint
// settings, and budgets. Whatever the input, Save must not panic, and every
// answer must be classifiable: a feasible adjustment (Proposition 5 — each
// intermediate answer is a real repair), a Natural flag from a search that
// ran to completion, or a best-so-far answer flagged Exhausted.
func FuzzSave(f *testing.F) {
	f.Add(int64(1), uint8(20), 1.0, uint8(3), uint8(0), uint8(0))
	f.Add(int64(2), uint8(8), 0.4, uint8(2), uint8(1), uint8(3))
	f.Add(int64(99), uint8(30), 2.5, uint8(5), uint8(2), uint8(1))
	f.Add(int64(-7), uint8(3), 0.05, uint8(9), uint8(4), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, eps float64, eta, kappa, maxNodes uint8) {
		size := 2 + int(n)%39 // 2..40 tuples
		if math.IsNaN(eps) || math.IsInf(eps, 0) {
			eps = 0.5
		}
		eps = math.Abs(math.Mod(eps, 4))
		if eps == 0 {
			eps = 0.5
		}
		m := 2 + size%3 // 2..4 attributes
		names := []string{"a", "b", "c", "d"}
		rng := rand.New(rand.NewSource(seed))
		rel := data.NewRelation(data.NewNumericSchema(names[:m]...))
		for i := 0; i < size; i++ {
			tp := make(data.Tuple, m)
			for a := range tp {
				tp[a] = data.Num(rng.Float64() * 2)
			}
			rel.Append(tp)
		}
		cons := Constraints{Eps: eps, Eta: 1 + int(eta)%size}
		opts := Options{Kappa: int(kappa) % (m + 1), MaxNodes: int(maxNodes)}
		s, err := NewSaver(rel, cons, opts)
		if err != nil {
			t.Skip()
		}
		outlier := make(data.Tuple, m)
		for a := range outlier {
			outlier[a] = data.Num(rng.Float64()*6 - 1)
		}
		adj := s.Save(outlier)
		switch {
		case adj.Saved():
			if len(adj.Tuple) != m {
				t.Fatalf("adjustment has %d attributes, schema has %d", len(adj.Tuple), m)
			}
			if math.IsNaN(adj.Cost) || adj.Cost < 0 {
				t.Fatalf("adjustment cost %v", adj.Cost)
			}
			idx := neighbors.NewBrute(rel)
			if got := idx.CountWithin(adj.Tuple, cons.Eps, -1, 0); got < cons.Eta {
				t.Fatalf("adjustment has %d ε-neighbors, want ≥ %d (eps=%v eta=%d kappa=%d maxNodes=%d)",
					got, cons.Eta, eps, cons.Eta, opts.Kappa, opts.MaxNodes)
			}
		case adj.Natural:
			if adj.Exhausted {
				t.Fatal("Natural set on an exhausted (incomplete) search")
			}
		case adj.Exhausted:
			// Budget tripped before any feasible position was found: allowed.
		default:
			t.Fatalf("unclassifiable answer: %+v", adj)
		}
	})
}
