package classify

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

func separable(n int, seed int64) (*data.Relation, []int) {
	rng := rand.New(rand.NewSource(seed))
	rel := data.NewRelation(data.NewNumericSchema("x", "y"))
	labels := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c := i % 2
		rel.Append(data.Tuple{
			data.Num(float64(c)*10 + rng.NormFloat64()),
			data.Num(float64(c)*10 + rng.NormFloat64()),
		})
		labels = append(labels, c)
	}
	return rel, labels
}

func TestTreeFitsSeparableData(t *testing.T) {
	rel, labels := separable(200, 1)
	tree, err := TrainTree(rel, labels, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pred := tree.PredictAll(rel)
	wrong := 0
	for i := range pred {
		if pred[i] != labels[i] {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("%d training errors on separable data", wrong)
	}
	if tree.Depth() < 1 {
		t.Error("tree did not split at all")
	}
}

func TestTreeXORNeedsDepthTwo(t *testing.T) {
	// XOR is not linearly separable; a depth-2 tree fits it exactly.
	rel := data.NewRelation(data.NewNumericSchema("x", "y"))
	labels := []int{}
	for i := 0; i < 40; i++ {
		x := float64(i % 2)
		y := float64((i / 2) % 2)
		rel.Append(data.Tuple{data.Num(x), data.Num(y)})
		labels = append(labels, int(x)^int(y))
	}
	tree, err := TrainTree(rel, labels, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pred := tree.PredictAll(rel)
	for i := range pred {
		if pred[i] != labels[i] {
			t.Fatalf("XOR sample %d misclassified", i)
		}
	}
	if tree.Depth() < 2 {
		t.Errorf("XOR tree depth %d, want ≥ 2", tree.Depth())
	}
}

func TestTreeMaxDepthRespected(t *testing.T) {
	rel, labels := separable(200, 2)
	tree, err := TrainTree(rel, labels, TreeConfig{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Errorf("depth %d exceeds MaxDepth 1", tree.Depth())
	}
}

func TestTreePureNodeIsLeaf(t *testing.T) {
	rel := data.NewRelation(data.NewNumericSchema("x"))
	labels := []int{7, 7, 7}
	for i := 0; i < 3; i++ {
		rel.Append(data.Tuple{data.Num(float64(i))})
	}
	tree, err := TrainTree(rel, labels, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Errorf("pure data grew depth %d", tree.Depth())
	}
	if got := tree.Predict(data.Tuple{data.Num(99)}); got != 7 {
		t.Errorf("predict = %d", got)
	}
}

func TestTreeErrors(t *testing.T) {
	rel := data.NewRelation(data.NewNumericSchema("x"))
	if _, err := TrainTree(rel, nil, TreeConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	rel.Append(data.Tuple{data.Num(1)})
	if _, err := TrainTree(rel, []int{1, 2}, TreeConfig{}); err == nil {
		t.Error("label length mismatch accepted")
	}
	ts := &data.Schema{Attrs: []data.Attribute{{Name: "w", Kind: data.Text}}}
	trel := data.NewRelation(ts)
	trel.Append(data.Tuple{data.Str("a")})
	if _, err := TrainTree(trel, []int{0}, TreeConfig{}); err == nil {
		t.Error("text attribute accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	rel, labels := separable(250, 3)
	f1, err := CrossValidate(rel, labels, 5, TreeConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 0.95 {
		t.Errorf("CV macro F1 = %v on separable data", f1)
	}
	// Deterministic for a fixed seed.
	f2, _ := CrossValidate(rel, labels, 5, TreeConfig{}, 1)
	if f1 != f2 {
		t.Error("cross-validation not deterministic")
	}
	// Shuffled labels give near-chance accuracy.
	shuffled := append([]int(nil), labels...)
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	f3, err := CrossValidate(rel, shuffled, 5, TreeConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f3 > 0.7 {
		t.Errorf("CV on shuffled labels = %v, want near chance", f3)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	rel, labels := separable(4, 4)
	if _, err := CrossValidate(rel, labels[:2], 5, TreeConfig{}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CrossValidate(rel, labels, 5, TreeConfig{}, 1); err == nil {
		t.Error("n < folds accepted")
	}
}
