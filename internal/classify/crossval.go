package classify

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/eval"
)

// CrossValidate runs k-fold cross-validation of the decision tree over the
// relation and labels, returning the mean macro F1 across folds — the
// 5-fold protocol of §4.1.2. Folds are shuffled deterministically by seed.
func CrossValidate(rel *data.Relation, labels []int, folds int, cfg TreeConfig, seed int64) (float64, error) {
	n := rel.N()
	if n != len(labels) {
		return 0, fmt.Errorf("classify: %d tuples but %d labels", n, len(labels))
	}
	if folds < 2 {
		folds = 5
	}
	if n < folds {
		return 0, fmt.Errorf("classify: %d tuples cannot fill %d folds", n, folds)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	sum := 0.0
	for f := 0; f < folds; f++ {
		lo := f * n / folds
		hi := (f + 1) * n / folds
		trainRel := data.NewRelation(rel.Schema)
		var trainY []int
		testRel := data.NewRelation(rel.Schema)
		var testY []int
		for p, i := range perm {
			if p >= lo && p < hi {
				testRel.Append(rel.Tuples[i])
				testY = append(testY, labels[i])
			} else {
				trainRel.Append(rel.Tuples[i])
				trainY = append(trainY, labels[i])
			}
		}
		tree, err := TrainTree(trainRel, trainY, cfg)
		if err != nil {
			return 0, err
		}
		pred := tree.PredictAll(testRel)
		sum += eval.MacroF1(pred, testY)
	}
	return sum / float64(folds), nil
}
