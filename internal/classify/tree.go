// Package classify implements the decision-tree classifier and k-fold
// cross-validation harness of the classification experiment (§4.1.2,
// Table 5) — a CART tree with Gini impurity and default parameters,
// standing in for the scikit-learn implementation the paper uses.
package classify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
)

// TreeConfig holds the (scikit-learn-default-like) hyperparameters.
type TreeConfig struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting
	// (default 2).
	MinSamplesSplit int
}

// Tree is a trained CART decision tree over numeric attributes.
type Tree struct {
	nodes []treeNode
	m     int
}

type treeNode struct {
	// attr < 0 marks a leaf predicting label.
	attr      int
	threshold float64
	left      int
	right     int
	label     int
}

// TrainTree fits a CART tree on the numeric attributes of rel with the
// given labels.
func TrainTree(rel *data.Relation, labels []int, cfg TreeConfig) (*Tree, error) {
	if rel.N() != len(labels) {
		return nil, fmt.Errorf("classify: %d tuples but %d labels", rel.N(), len(labels))
	}
	if rel.N() == 0 {
		return nil, fmt.Errorf("classify: empty training set")
	}
	for _, a := range rel.Schema.Attrs {
		if a.Kind != data.Numeric {
			return nil, fmt.Errorf("classify: attribute %q is not numeric", a.Name)
		}
	}
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	m := rel.Schema.M()
	X := make([][]float64, rel.N())
	for i, t := range rel.Tuples {
		row := make([]float64, m)
		for a := 0; a < m; a++ {
			row[a] = t[a].Num
		}
		X[i] = row
	}
	tr := &Tree{m: m}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	tr.build(X, labels, idx, cfg, 0)
	return tr, nil
}

// build grows the subtree over the samples idx and returns its node id.
func (tr *Tree) build(X [][]float64, y, idx []int, cfg TreeConfig, depth int) int {
	id := len(tr.nodes)
	tr.nodes = append(tr.nodes, treeNode{attr: -1, label: majority(y, idx)})

	if len(idx) < cfg.MinSamplesSplit || pure(y, idx) ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return id
	}
	attr, thr, ok := bestSplit(X, y, idx, tr.m)
	if !ok {
		return id
	}
	var left, right []int
	for _, i := range idx {
		if X[i][attr] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return id
	}
	l := tr.build(X, y, left, cfg, depth+1)
	r := tr.build(X, y, right, cfg, depth+1)
	tr.nodes[id] = treeNode{attr: attr, threshold: thr, left: l, right: r}
	return id
}

func majority(y, idx []int) int {
	counts := map[int]int{}
	best, bestC := 0, -1
	for _, i := range idx {
		counts[y[i]]++
		if counts[y[i]] > bestC {
			best, bestC = y[i], counts[y[i]]
		}
	}
	return best
}

func pure(y, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// bestSplit finds the (attribute, threshold) with the lowest weighted Gini
// impurity, scanning sorted values with incremental class counts.
func bestSplit(X [][]float64, y, idx []int, m int) (int, float64, bool) {
	bestAttr, bestThr, bestGini := -1, 0.0, math.Inf(1)
	order := make([]int, len(idx))
	for a := 0; a < m; a++ {
		copy(order, idx)
		sort.Slice(order, func(p, q int) bool { return X[order[p]][a] < X[order[q]][a] })
		leftCounts := map[int]int{}
		rightCounts := map[int]int{}
		for _, i := range order {
			rightCounts[y[i]]++
		}
		nl, nr := 0, len(order)
		for p := 0; p < len(order)-1; p++ {
			i := order[p]
			leftCounts[y[i]]++
			rightCounts[y[i]]--
			nl++
			nr--
			if X[order[p]][a] == X[order[p+1]][a] {
				continue // can only split between distinct values
			}
			g := weightedGini(leftCounts, nl, rightCounts, nr)
			if g < bestGini {
				bestGini = g
				bestAttr = a
				bestThr = (X[order[p]][a] + X[order[p+1]][a]) / 2
			}
		}
	}
	return bestAttr, bestThr, bestAttr >= 0
}

func weightedGini(lc map[int]int, nl int, rc map[int]int, nr int) float64 {
	return float64(nl)*gini(lc, nl) + float64(nr)*gini(rc, nr)
}

func gini(counts map[int]int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s -= p * p
	}
	return s
}

// Predict classifies one tuple.
func (tr *Tree) Predict(t data.Tuple) int {
	id := 0
	for {
		n := &tr.nodes[id]
		if n.attr < 0 {
			return n.label
		}
		if t[n.attr].Num <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
}

// PredictAll classifies every tuple of a relation.
func (tr *Tree) PredictAll(rel *data.Relation) []int {
	out := make([]int, rel.N())
	for i, t := range rel.Tuples {
		out[i] = tr.Predict(t)
	}
	return out
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (tr *Tree) Depth() int {
	var walk func(id int) int
	walk = func(id int) int {
		n := &tr.nodes[id]
		if n.attr < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	if len(tr.nodes) == 0 {
		return 0
	}
	return walk(0)
}
