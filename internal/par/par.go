// Package par is the shared worker pool of the pipeline: a context-aware,
// panic-recovering parallel for-loop. Saving one outlier is NP-hard, so any
// fan-out over outliers (or tuples, or restarts) must survive a panic in one
// item and stop dispatching promptly once the caller's context is cancelled —
// otherwise a single poisoned tuple or a missed deadline takes the whole
// batch down with it.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ItemError records one item of a ForEach that did not complete: its index
// and what happened (a recovered panic, fn's error, or the context's error
// for items skipped after cancellation).
type ItemError struct {
	Index int
	Err   error
}

// Error implements error.
func (e ItemError) Error() string { return fmt.Sprintf("item %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e ItemError) Unwrap() error { return e.Err }

// FirstErr returns the error of the lowest-indexed failed item, or nil.
func FirstErr(errs []ItemError) error {
	if len(errs) == 0 {
		return nil
	}
	return errs[0]
}

// ForEach runs fn(i) for every i in [0, n) across up to workers goroutines
// (≤ 0 means GOMAXPROCS). It differs from a plain WaitGroup fan-out in two
// ways that matter for long-running saves:
//
//   - A panic inside fn is recovered and recorded as that item's error;
//     every other item still runs. The pool never crashes the process.
//   - Once ctx is cancelled no new item is started: items already running
//     finish (fn is expected to honor ctx itself for intra-item promptness)
//     and every undispatched index is recorded with the context's error.
//
// The returned slice is sorted by index and nil when every item completed
// without error — so the zero-cost happy path stays allocation-free.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) []ItemError {
	return ForEachWorker(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn receives the id of the
// goroutine running it, in [0, min(workers, n)). Ids are stable for the
// whole call, so callers can hand each worker private scratch memory — a
// save arena, a reusable buffer — indexed by id with no synchronization
// (core.SaveAll does exactly this).
func ForEachWorker(ctx context.Context, n, workers int, fn func(worker, i int) error) []ItemError {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		next atomic.Int64
		mu   sync.Mutex
		errs []ItemError
	)
	record := func(i int, err error) {
		mu.Lock()
		errs = append(errs, ItemError{Index: i, Err: err})
		mu.Unlock()
	}
	runOne := func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				record(i, fmt.Errorf("panic: %v", r))
			}
		}()
		if err := fn(w, i); err != nil {
			record(i, err)
		}
	}
	done := ctx.Done()
	worker := func(w int) {
		for {
			if done != nil {
				select {
				case <-done:
					// Drain: claim the remaining indexes so they are
					// accounted for, but do not run them.
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						record(i, ctx.Err())
					}
				default:
				}
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runOne(w, i)
		}
	}

	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		wg.Wait()
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return errs
}
