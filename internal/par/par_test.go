package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 100
		var ran [n]atomic.Int32
		errs := ForEach(context.Background(), n, workers, func(i int) error {
			ran[i].Add(1)
			return nil
		})
		if errs != nil {
			t.Fatalf("workers=%d: unexpected errors %v", workers, errs)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if errs := ForEach(context.Background(), 0, 4, func(int) error { panic("ran") }); errs != nil {
		t.Fatalf("n=0 returned %v", errs)
	}
}

func TestForEachRecordsFnErrors(t *testing.T) {
	boom := errors.New("boom")
	errs := ForEach(context.Background(), 10, 4, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("item: %w", boom)
		}
		return nil
	})
	if len(errs) != 4 { // 0, 3, 6, 9
		t.Fatalf("got %d errors, want 4: %v", len(errs), errs)
	}
	for k, e := range errs {
		if e.Index != 3*k {
			t.Errorf("errs[%d].Index = %d, want %d (sorted by index)", k, e.Index, 3*k)
		}
		if !errors.Is(e, boom) {
			t.Errorf("errs[%d] does not unwrap to the fn error: %v", k, e)
		}
	}
	if !errors.Is(FirstErr(errs), boom) {
		t.Errorf("FirstErr = %v", FirstErr(errs))
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	var ok atomic.Int32
	errs := ForEach(context.Background(), 8, 4, func(i int) error {
		if i == 5 {
			panic("injected")
		}
		ok.Add(1)
		return nil
	})
	if ok.Load() != 7 {
		t.Errorf("%d healthy items ran, want 7", ok.Load())
	}
	if len(errs) != 1 || errs[0].Index != 5 {
		t.Fatalf("errs = %v, want exactly item 5", errs)
	}
	if errs[0].Err == nil {
		t.Fatal("panic not converted to an error")
	}
}

func TestForEachCancelDrainsRemainingItems(t *testing.T) {
	// Single worker: item 0 cancels the context, so items 1..n-1 must be
	// recorded with the context's error rather than run.
	ctx, cancel := context.WithCancel(context.Background())
	const n = 20
	var ran atomic.Int32
	errs := ForEach(ctx, n, 1, func(i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if ran.Load() != 1 {
		t.Errorf("%d items ran after cancellation, want 1", ran.Load())
	}
	if len(errs) != n-1 {
		t.Fatalf("%d items recorded as skipped, want %d", len(errs), n-1)
	}
	for _, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("skipped item %d recorded %v, want context.Canceled", e.Index, e.Err)
		}
	}
}

func TestForEachCancelAccountsForEveryItem(t *testing.T) {
	// Concurrent workers: regardless of interleaving, ran + skipped = n.
	ctx, cancel := context.WithCancel(context.Background())
	const n = 200
	var ran atomic.Int32
	errs := ForEach(ctx, n, 8, func(i int) error {
		ran.Add(1)
		if i == 17 {
			cancel()
		}
		return nil
	})
	if int(ran.Load())+len(errs) != n {
		t.Fatalf("ran %d + skipped %d != %d", ran.Load(), len(errs), n)
	}
}

func TestFirstErrNil(t *testing.T) {
	if err := FirstErr(nil); err != nil {
		t.Fatalf("FirstErr(nil) = %v", err)
	}
}
