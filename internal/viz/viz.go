// Package viz renders experiment tables as ASCII charts so discbench can
// show the *shape* of each figure (the inverted-U of Figure 4, the
// blow-ups of Figures 6–7) directly in the terminal.
package viz

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// barBlocks are the eighth-block characters used for horizontal bars.
var barBlocks = []rune{' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'}

// Bar renders v within [lo, hi] as a bar of the given width in runes.
func Bar(v, lo, hi float64, width int) string {
	if width < 1 {
		width = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	eighths := int(math.Round(frac * float64(width) * 8))
	full := eighths / 8
	rem := eighths % 8
	var sb strings.Builder
	for i := 0; i < full; i++ {
		sb.WriteRune('█')
	}
	if rem > 0 && full < width {
		sb.WriteRune(barBlocks[rem])
	}
	for sb.Len() < width { // Len counts bytes; pad conservatively below instead
		break
	}
	s := sb.String()
	pad := width - len([]rune(s))
	if pad > 0 {
		s += strings.Repeat(" ", pad)
	}
	return s
}

// Sparkline renders the series as a compact one-line chart.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat("·", len(vals))
	}
	if hi <= lo {
		hi = lo + 1
	}
	var sb strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) {
			sb.WriteRune('·')
			continue
		}
		k := int((v - lo) / (hi - lo) * float64(len(levels)-1))
		if k < 0 {
			k = 0
		}
		if k >= len(levels) {
			k = len(levels) - 1
		}
		sb.WriteRune(levels[k])
	}
	return sb.String()
}

// Series is one named numeric column extracted from a table.
type Series struct {
	Name string
	Vals []float64 // NaN marks missing cells ("-")
}

// ExtractSeries pulls the numeric columns out of (header, rows): the first
// column becomes the x labels, every column whose cells parse as floats
// becomes a Series. Cells of "-" become NaN.
func ExtractSeries(header []string, rows [][]string) (labels []string, series []Series) {
	if len(header) == 0 || len(rows) == 0 {
		return nil, nil
	}
	for _, r := range rows {
		if len(r) > 0 {
			labels = append(labels, r[0])
		}
	}
	for c := 1; c < len(header); c++ {
		vals := make([]float64, 0, len(rows))
		numeric := false
		for _, r := range rows {
			if c >= len(r) {
				vals = append(vals, math.NaN())
				continue
			}
			cell := r[c]
			if cell == "-" || cell == "" {
				vals = append(vals, math.NaN())
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				vals = nil
				break
			}
			vals = append(vals, v)
			numeric = true
		}
		if vals != nil && numeric {
			series = append(series, Series{Name: header[c], Vals: vals})
		}
	}
	return labels, series
}

// FprintChart renders every numeric column of the table as labeled bars,
// one block per series, sharing the y scale within a series.
func FprintChart(w io.Writer, title string, header []string, rows [][]string, barWidth int) {
	labels, series := ExtractSeries(header, rows)
	if len(series) == 0 {
		return
	}
	if barWidth <= 0 {
		barWidth = 30
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for _, s := range series {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range s.Vals {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if math.IsInf(lo, 1) {
			continue
		}
		// Anchor at zero for non-negative series so bar length tracks
		// magnitude, not just spread.
		if lo > 0 {
			lo = 0
		}
		fmt.Fprintf(w, "  %s  %s\n", s.Name, Sparkline(s.Vals))
		for i, v := range s.Vals {
			if math.IsNaN(v) {
				fmt.Fprintf(w, "    %-*s  %s  -\n", labelW, labels[i], strings.Repeat(" ", barWidth))
				continue
			}
			fmt.Fprintf(w, "    %-*s  %s  %.4g\n", labelW, labels[i], Bar(v, lo, hi, barWidth), v)
		}
	}
	fmt.Fprintln(w)
}
