package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBar(t *testing.T) {
	if got := Bar(10, 0, 10, 4); got != "████" {
		t.Errorf("full bar = %q", got)
	}
	if got := Bar(0, 0, 10, 4); strings.TrimSpace(got) != "" {
		t.Errorf("empty bar = %q", got)
	}
	if got := Bar(5, 0, 10, 4); len([]rune(got)) != 4 {
		t.Errorf("bar not padded to width: %q", got)
	}
	// Out-of-range values clamp.
	if got := Bar(100, 0, 10, 4); got != "████" {
		t.Errorf("clamped bar = %q", got)
	}
	if got := Bar(-5, 0, 10, 4); strings.TrimSpace(got) != "" {
		t.Errorf("negative clamp = %q", got)
	}
	// Degenerate range.
	if got := Bar(1, 1, 1, 3); len([]rune(got)) != 3 {
		t.Errorf("degenerate range bar = %q", got)
	}
	if got := Bar(1, 0, 10, 0); len([]rune(got)) != 1 {
		t.Errorf("zero width bar = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	rs := []rune(s)
	if rs[0] >= rs[3] {
		t.Errorf("monotone series not rising: %q", s)
	}
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); len([]rune(got)) != 3 {
		t.Errorf("constant sparkline = %q", got)
	}
	withNaN := Sparkline([]float64{1, math.NaN(), 3})
	if []rune(withNaN)[1] != '·' {
		t.Errorf("NaN marker missing: %q", withNaN)
	}
	allNaN := Sparkline([]float64{math.NaN(), math.NaN()})
	if allNaN != "··" {
		t.Errorf("all-NaN sparkline = %q", allNaN)
	}
}

func TestExtractSeries(t *testing.T) {
	header := []string{"Sweep", "Raw", "DISC", "Note"}
	rows := [][]string{
		{"ε=1", "0.9", "0.95", "x"},
		{"ε=2", "0.9", "-", "y"},
	}
	labels, series := ExtractSeries(header, rows)
	if len(labels) != 2 || labels[0] != "ε=1" {
		t.Fatalf("labels = %v", labels)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2 (Note is non-numeric)", len(series))
	}
	if series[0].Name != "Raw" || series[1].Name != "DISC" {
		t.Errorf("series names %v %v", series[0].Name, series[1].Name)
	}
	if !math.IsNaN(series[1].Vals[1]) {
		t.Error("missing cell not NaN")
	}
	if l, s := ExtractSeries(nil, nil); l != nil || s != nil {
		t.Error("empty input should return nils")
	}
}

func TestFprintChart(t *testing.T) {
	var buf bytes.Buffer
	header := []string{"n", "DISC", "DORC"}
	rows := [][]string{
		{"1000", "0.1", "0.2"},
		{"2000", "0.3", "-"},
	}
	FprintChart(&buf, "times", header, rows, 10)
	out := buf.String()
	if !strings.Contains(out, "times") || !strings.Contains(out, "DISC") {
		t.Errorf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "1000") || !strings.Contains(out, "2000") {
		t.Error("chart missing labels")
	}
	// Missing cell renders a dash.
	if !strings.Contains(out, "-") {
		t.Error("missing cell marker absent")
	}
	// Non-numeric tables render nothing.
	buf.Reset()
	FprintChart(&buf, "t", []string{"a", "b"}, [][]string{{"x", "y"}}, 10)
	if buf.Len() != 0 {
		t.Errorf("non-numeric table rendered: %q", buf.String())
	}
}
