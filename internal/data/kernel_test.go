package data

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metric"
)

// halfNW is a custom text metric for the differential tests: a scaled
// Needleman–Wunsch, which preserves the metric axioms (identity in
// particular — the kernel's identical-ID fast path relies on it).
func halfNW(a, b string) float64 { return metric.NeedlemanWunsch(a, b) / 2 }

// kernelTestRelation builds a random mixed relation exercising every
// compilation case: numeric and text kinds, zero/fractional/large
// scales, nil (→ Levenshtein), library, and custom text metrics, plus
// repeated strings so interning and the pair cache see shared IDs.
func kernelTestRelation(rng *rand.Rand, norm metric.Norm, n int) *Relation {
	words := []string{"", "a", "ab", "abc", "kitten", "sitting", "golden dragon", "golden drag0n", "chicago", "chicagoo"}
	sch := &Schema{Norm: norm, Attrs: []Attribute{
		{Name: "n0", Kind: Numeric},
		{Name: "n1", Kind: Numeric, Scale: 0.5},
		{Name: "n2", Kind: Numeric, Scale: 4},
		{Name: "t0", Kind: Text},                               // nil → Levenshtein
		{Name: "t1", Kind: Text, Text: metric.NeedlemanWunsch}, // library metric
		{Name: "t2", Kind: Text, Text: halfNW, Scale: 2},       // custom + scale
	}}
	r := NewRelation(sch)
	for i := 0; i < n; i++ {
		r.Append(Tuple{
			Num(rng.NormFloat64() * 10),
			Num(rng.NormFloat64()),
			Num(float64(rng.Intn(20))),
			Str(words[rng.Intn(len(words))]),
			Str(words[rng.Intn(len(words))]),
			Str(words[rng.Intn(len(words))]),
		})
	}
	return r
}

// TestKernelDifferential proves the kernel's row-to-row entry points are
// bit-identical to the scalar Schema path across norms, kinds, scales,
// and text metrics, and that DistLE's accept/abort decision is exactly
// the scalar `Dist ≤ eps` comparison — including eps values sitting
// exactly on a pairwise distance.
func TestKernelDifferential(t *testing.T) {
	for _, norm := range []metric.Norm{metric.L2, metric.L1, metric.LInf} {
		t.Run(norm.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(norm) + 1))
			r := kernelTestRelation(rng, norm, 60)
			sch := r.Schema
			k := CompileKernel(r)
			m := sch.M()
			for trial := 0; trial < 2000; trial++ {
				i, j := rng.Intn(r.N()), rng.Intn(r.N())
				want := sch.Dist(r.Tuples[i], r.Tuples[j])
				if got := k.Dist(i, j); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("Dist(%d,%d) = %v, scalar %v", i, j, got, want)
				}
				x := AttrMask(rng.Intn(1 << m))
				wantX := sch.DistOn(r.Tuples[i], r.Tuples[j], x)
				if gotX := k.DistX(i, j, x); math.Float64bits(gotX) != math.Float64bits(wantX) {
					t.Fatalf("DistX(%d,%d,%b) = %v, scalar DistOn %v", i, j, x, gotX, wantX)
				}
				a := rng.Intn(m)
				wantA := sch.AttrDist(a, r.Tuples[i][a], r.Tuples[j][a])
				if gotA := k.AttrDist(a, i, j); math.Float64bits(gotA) != math.Float64bits(wantA) {
					t.Fatalf("AttrDist(%d,%d,%d) = %v, scalar %v", a, i, j, gotA, wantA)
				}
				// eps on, just below, just above, and away from the true
				// distance: the decision must match the scalar comparison.
				for _, eps := range []float64{
					want,
					math.Nextafter(want, math.Inf(-1)),
					math.Nextafter(want, math.Inf(1)),
					want / 2, want * 2, 0, math.Inf(1),
				} {
					d, within := k.DistLE(i, j, eps)
					if within != (want <= eps) {
						t.Fatalf("DistLE(%d,%d,%v) within=%v, scalar %v ≤ eps is %v", i, j, eps, within, want, want <= eps)
					}
					if within && math.Float64bits(d) != math.Float64bits(want) {
						t.Fatalf("DistLE(%d,%d,%v) d=%v, scalar %v", i, j, eps, d, want)
					}
				}
			}
		})
	}
}

// TestKernelQueryDifferential proves the bound-query entry points are
// bit-identical to the scalar path both for query tuples drawn from the
// relation (interned IDs, shared pair cache) and for foreign tuples
// whose strings are absent from the dictionaries (query-local memo) —
// the outlier-under-repair case.
func TestKernelQueryDifferential(t *testing.T) {
	for _, norm := range []metric.Norm{metric.L2, metric.L1, metric.LInf} {
		t.Run(norm.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(norm) + 101))
			r := kernelTestRelation(rng, norm, 50)
			sch := r.Schema
			k := CompileKernel(r)
			m := sch.M()
			foreign := Tuple{
				Num(3.25), Num(-1.5), Num(7),
				Str("not-in-dictionary"), Str("golden  dragon"), Str("zzz"),
			}
			for trial := 0; trial < 400; trial++ {
				var qt Tuple
				if trial%2 == 0 {
					qt = r.Tuples[rng.Intn(r.N())]
				} else {
					qt = foreign
				}
				q := k.Bind(qt)
				bounds := map[float64]float64{}
				for _, j := range rng.Perm(r.N())[:20] {
					want := sch.Dist(qt, r.Tuples[j])
					if got := q.DistTo(j); math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("DistTo(%d) = %v, scalar %v", j, got, want)
					}
					x := AttrMask(rng.Intn(1 << m))
					wantX := sch.DistOn(qt, r.Tuples[j], x)
					if gotX := q.DistToX(j, x); math.Float64bits(gotX) != math.Float64bits(wantX) {
						t.Fatalf("DistToX(%d,%b) = %v, scalar %v", j, x, gotX, wantX)
					}
					a := rng.Intn(m)
					wantA := sch.AttrDist(a, qt[a], r.Tuples[j][a])
					if gotA := q.AttrDist(a, j); math.Float64bits(gotA) != math.Float64bits(wantA) {
						t.Fatalf("AttrDist(%d,%d) = %v, scalar %v", a, j, gotA, wantA)
					}
					for _, eps := range []float64{want, math.Nextafter(want, math.Inf(-1)), want / 2, math.Inf(1)} {
						bound, ok := bounds[eps]
						if !ok {
							bound = LEBound(sch.Norm, eps)
							bounds[eps] = bound
						}
						d, within := q.DistToLE(j, bound)
						if within != (want <= eps) {
							t.Fatalf("DistToLE(%d, eps=%v) within=%v, scalar wants %v", j, eps, within, want <= eps)
						}
						if within && math.Float64bits(d) != math.Float64bits(want) {
							t.Fatalf("DistToLE(%d, eps=%v) d=%v, scalar %v", j, eps, d, want)
						}
					}
				}
				q.Release()
			}
		})
	}
}

// TestLEBound checks the early-exit threshold invariant directly: for
// any eps, acc ≤ LEBound(norm, eps) exactly when Finish(acc) ≤ eps.
func TestLEBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, norm := range []metric.Norm{metric.L2, metric.L1, metric.LInf} {
		for trial := 0; trial < 20000; trial++ {
			eps := math.Abs(rng.NormFloat64()) * math.Pow(10, float64(rng.Intn(9)-4))
			if trial%17 == 0 {
				eps = 0
			}
			bound := LEBound(norm, eps)
			acc := math.Abs(rng.NormFloat64()) * math.Pow(10, float64(rng.Intn(9)-4))
			if trial%5 == 0 {
				// Probe right at the boundary.
				acc = bound
			} else if trial%5 == 1 {
				acc = math.Nextafter(bound, math.Inf(1))
			}
			if got, want := acc <= bound, norm.Finish(acc) <= eps; got != want {
				t.Fatalf("norm %v eps %v acc %v: acc≤bound=%v but Finish(acc)≤eps=%v (bound %v)",
					norm, eps, acc, got, want, bound)
			}
		}
		// Degenerate eps values must not loop or mis-decide.
		for _, eps := range []float64{math.Inf(1), -1, 0, math.MaxFloat64, 1e200} {
			bound := LEBound(norm, eps)
			for _, acc := range []float64{0, 1, math.MaxFloat64, math.Inf(1)} {
				if got, want := acc <= bound, norm.Finish(acc) <= eps; got != want {
					t.Fatalf("norm %v eps %v acc %v: acc≤bound=%v but Finish(acc)≤eps=%v", norm, eps, acc, got, want)
				}
			}
		}
	}
}

// countingDist wraps a metric and counts evaluations; used to prove the
// at-most-once-per-distinct-pair cache guarantee.
type countingDist struct {
	mu    sync.Mutex
	calls map[string]int
}

func (c *countingDist) dist(a, b string) float64 {
	c.mu.Lock()
	key := a + "\x00" + b
	if b < a {
		key = b + "\x00" + a
	}
	c.calls[key]++
	c.mu.Unlock()
	return metric.Levenshtein(a, b)
}

// TestKernelCacheInvariants checks the pair cache's contract: symmetry
// (Dist(i,j) == Dist(j,i) served from one entry), the zero fast path on
// identical IDs without a metric call, and at most one underlying
// metric evaluation per distinct unordered string pair even under
// concurrent queries.
func TestKernelCacheInvariants(t *testing.T) {
	cd := &countingDist{calls: make(map[string]int)}
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	sch := &Schema{Attrs: []Attribute{{Name: "t", Kind: Text, Text: cd.dist}}}
	r := NewRelation(sch)
	for i := 0; i < 200; i++ {
		r.Append(Tuple{Str(words[i%len(words)])})
	}
	k := CompileKernel(r)

	// Identical IDs: zero without consulting the metric.
	if d := k.Dist(0, len(words)); d != 0 {
		t.Fatalf("identical-ID distance = %v, want 0", d)
	}
	if len(cd.calls) != 0 {
		t.Fatalf("identical-ID fast path called the metric: %v", cd.calls)
	}

	// Symmetry from a single cache entry.
	d01, d10 := k.Dist(0, 1), k.Dist(1, 0)
	if math.Float64bits(d01) != math.Float64bits(d10) {
		t.Fatalf("asymmetric cached distance: %v vs %v", d01, d10)
	}
	if got := cd.calls["alpha\x00beta"]; got != 1 {
		t.Fatalf("alpha/beta evaluated %d times, want 1", got)
	}

	// Hammer all pairs from several goroutines; every distinct unordered
	// pair must be evaluated at most once overall (the dense cache's
	// benign same-value store race never double-counts a *different*
	// value, though a near-simultaneous first touch may recompute — so
	// allow a small bounded slack only across goroutine races).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			q := k.Bind(r.Tuples[rng.Intn(r.N())])
			defer q.Release()
			for trial := 0; trial < 2000; trial++ {
				i, j := rng.Intn(r.N()), rng.Intn(r.N())
				k.Dist(i, j)
				q.DistTo(j)
			}
		}(int64(g))
	}
	wg.Wait()
	distinct := len(words) * (len(words) - 1) / 2
	total := 0
	for pair, n := range cd.calls {
		total += n
		// A pair may be computed once per racing goroutine at worst.
		if n > 4 {
			t.Fatalf("pair %q evaluated %d times", pair, n)
		}
	}
	if len(cd.calls) > distinct {
		t.Fatalf("%d distinct pairs evaluated, want ≤ %d", len(cd.calls), distinct)
	}
	if total > 4*distinct {
		t.Fatalf("%d total metric calls for %d distinct pairs", total, distinct)
	}
}

// TestKernelQueryMemo checks the query-local memo for strings absent
// from the dictionary: one evaluation per distinct dictionary entry per
// bound query, and counters that account for every text comparison.
func TestKernelQueryMemo(t *testing.T) {
	cd := &countingDist{calls: make(map[string]int)}
	words := []string{"alpha", "beta", "gamma"}
	sch := &Schema{Attrs: []Attribute{{Name: "t", Kind: Text, Text: cd.dist}}}
	r := NewRelation(sch)
	for i := 0; i < 90; i++ {
		r.Append(Tuple{Str(words[i%len(words)])})
	}
	k := CompileKernel(r)
	q := k.Bind(Tuple{Str("foreign")})
	for j := 0; j < r.N(); j++ {
		q.DistTo(j)
	}
	if len(cd.calls) != len(words) {
		t.Fatalf("foreign query evaluated %d pairs, want %d (one per dictionary entry)", len(cd.calls), len(words))
	}
	if q.TextCacheMisses != int64(len(words)) {
		t.Fatalf("TextCacheMisses = %d, want %d", q.TextCacheMisses, len(words))
	}
	if q.TextCacheHits != int64(r.N()-len(words)) {
		t.Fatalf("TextCacheHits = %d, want %d", q.TextCacheHits, r.N()-len(words))
	}
	q.Release()

	// Rebinding the pooled query must invalidate the memo.
	q2 := k.Bind(Tuple{Str("other")})
	q2.DistTo(0)
	if got := cd.calls["alpha\x00other"]; got != 1 {
		t.Fatalf("rebound query reused a stale memo entry (calls=%v)", cd.calls)
	}
	q2.Release()
}

// TestKernelBindAllocFree checks that steady-state Bind/Release cycles
// and query evaluation do not allocate — the saver's 1 alloc/op budget
// depends on it.
func TestKernelBindAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := kernelTestRelation(rng, metric.L2, 40)
	k := CompileKernel(r)
	qt := r.Tuples[5]
	bound := LEBound(metric.L2, 2.5)
	// Warm the pool and the caches.
	q := k.Bind(qt)
	for j := 0; j < r.N(); j++ {
		q.DistTo(j)
	}
	q.Release()
	allocs := testing.AllocsPerRun(100, func() {
		q := k.Bind(qt)
		for j := 0; j < r.N(); j++ {
			q.DistToLE(j, bound)
		}
		q.Release()
	})
	// 0 in normal builds; the race detector's sync.Pool drops items, so a
	// dropped query re-materializes (struct + a few scratch slices).
	if allocs > 12 {
		t.Fatalf("bind+scan allocates %v per run, want 0 (pool broken?)", allocs)
	}
}

// TestKernelShardedCache forces the sharded-map fallback (dictionary too
// large for the dense triangle) and re-checks the differential and
// concurrency properties on that path.
func TestKernelShardedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sch := &Schema{Attrs: []Attribute{{Name: "t", Kind: Text}}}
	r := NewRelation(sch)
	n := 2600 // D(D+1)/2 > 2^21 ⇒ sharded path
	for i := 0; i < n; i++ {
		r.Append(Tuple{Str(fmt.Sprintf("s-%d-%d", i, rng.Intn(10)))})
	}
	k := CompileKernel(r)
	if k.attrs[0].dense != nil {
		t.Fatalf("expected sharded cache for %d distinct strings", len(k.attrs[0].dict))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 300; trial++ {
				i, j := rng.Intn(n), rng.Intn(n)
				want := sch.Dist(r.Tuples[i], r.Tuples[j])
				if got := k.Dist(i, j); math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("sharded Dist(%d,%d) = %v, scalar %v", i, j, got, want)
					return
				}
				// Second read must hit the cache and agree.
				if got := k.Dist(j, i); math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("sharded Dist(%d,%d) cache readback = %v, want %v", j, i, got, want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
