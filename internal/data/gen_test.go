package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGenMixtureBasics(t *testing.T) {
	ds, err := GenMixture(MixtureSpec{Name: "t", N: 300, M: 4, K: 3,
		Domain: 20, Std: 0.5, DirtyFrac: 0.08, NaturalFrac: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 300 {
		t.Fatalf("n = %d", ds.N())
	}
	if got := ds.DirtyCount(); got != 24 {
		t.Errorf("dirty count = %d, want 24", got)
	}
	if got := ds.NaturalCount(); got != 6 {
		t.Errorf("natural count = %d, want 6", got)
	}
	// Every clean label is within [0, K); naturals are -1.
	for i, l := range ds.Labels {
		if ds.Natural[i] {
			if l != -1 {
				t.Fatalf("natural tuple %d has label %d", i, l)
			}
		} else if l < 0 || l >= 3 {
			t.Fatalf("tuple %d has label %d", i, l)
		}
	}
	// Values stay in domain.
	for _, tu := range ds.Rel.Tuples {
		for _, v := range tu {
			if v.Num < 0 || v.Num > 20 {
				t.Fatalf("value %v out of domain", v.Num)
			}
		}
	}
}

func TestGenMixtureDeterministic(t *testing.T) {
	sp := MixtureSpec{Name: "t", N: 100, M: 3, K: 2, Domain: 10, Std: 0.4,
		DirtyFrac: 0.1, Seed: 7}
	a, _ := GenMixture(sp)
	b, _ := GenMixture(sp)
	for i := range a.Rel.Tuples {
		for j := range a.Rel.Tuples[i] {
			if a.Rel.Tuples[i][j].Num != b.Rel.Tuples[i][j].Num {
				t.Fatal("generator not deterministic for equal seeds")
			}
		}
	}
	c, _ := GenMixture(MixtureSpec{Name: "t", N: 100, M: 3, K: 2, Domain: 10,
		Std: 0.4, DirtyFrac: 0.1, Seed: 8})
	same := true
	for i := range a.Rel.Tuples {
		for j := range a.Rel.Tuples[i] {
			if a.Rel.Tuples[i][j].Num != c.Rel.Tuples[i][j].Num {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenMixtureDirtyShiftsAreLarge(t *testing.T) {
	ds, err := GenMixture(MixtureSpec{Name: "t", N: 500, M: 4, K: 3,
		Domain: 20, Std: 0.5, DirtyFrac: 0.1, MaxDirtyAttrs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Rel.Tuples {
		if ds.Dirty[i] == 0 {
			continue
		}
		if ds.Dirty[i].Count() > 2 {
			t.Fatalf("tuple %d corrupted on %d attributes, max 2", i, ds.Dirty[i].Count())
		}
		for a := 0; a < 4; a++ {
			diff := math.Abs(ds.Rel.Tuples[i][a].Num - ds.Clean[i][a].Num)
			if ds.Dirty[i].Has(a) {
				if diff < 1 { // shift is 25–50% of domain 20, i.e. ≥ 5, minus reflection
					t.Errorf("tuple %d attr %d dirty shift only %v", i, a, diff)
				}
			} else if diff != 0 {
				t.Errorf("tuple %d attr %d changed but not marked dirty", i, a)
			}
		}
	}
}

func TestGenMixtureInvalidSpecs(t *testing.T) {
	if _, err := GenMixture(MixtureSpec{N: 0, M: 3, K: 2}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GenMixture(MixtureSpec{N: 10, M: 0, K: 2}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := GenMixture(MixtureSpec{N: 10, M: 65, K: 2}); err == nil {
		t.Error("m=65 accepted")
	}
	if _, err := GenMixture(MixtureSpec{N: 10, M: 3, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestGenGPS(t *testing.T) {
	ds, err := GenGPS(GPSSpec{Name: "GPS", N: 900, Trajectories: 3, Step: 5,
		Domain: 1000, DirtyFrac: 0.09, NaturalFrac: 0.10, Eps: 15, Eta: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Rel.Schema.M() != 3 {
		t.Fatalf("gps schema m = %d", ds.Rel.Schema.M())
	}
	if got := ds.DirtyCount(); got != 81 {
		t.Errorf("dirty = %d, want 81", got)
	}
	if got := ds.NaturalCount(); got != 90 {
		t.Errorf("natural = %d, want 90", got)
	}
	// Dirty tuples corrupt exactly one attribute and the shift is ≫ ε.
	for i := range ds.Rel.Tuples {
		if ds.Dirty[i] == 0 {
			continue
		}
		if ds.Dirty[i].Count() != 1 {
			t.Fatalf("gps dirty tuple %d corrupts %d attrs", i, ds.Dirty[i].Count())
		}
		a := ds.Dirty[i].Attrs(3)[0]
		diff := math.Abs(ds.Rel.Tuples[i][a].Num - ds.Clean[i][a].Num)
		if diff < ds.Eps*2 {
			t.Errorf("gps dirty shift %v not ≫ ε=%v", diff, ds.Eps)
		}
	}
	// Consecutive clean points of one trajectory stay within a few steps.
	prev := -1
	for i := 0; i < ds.N(); i++ {
		if ds.Natural[i] || ds.Dirty[i] != 0 || ds.Labels[i] != 0 {
			continue
		}
		if prev >= 0 && i == prev+1 {
			d := ds.Rel.Schema.Dist(ds.Rel.Tuples[prev], ds.Rel.Tuples[i])
			if d > 20 {
				t.Fatalf("consecutive trajectory points %d,%d are %v apart", prev, i, d)
			}
		}
		prev = i
	}
	if _, err := GenGPS(GPSSpec{N: 0, Trajectories: 3}); err == nil {
		t.Error("invalid gps spec accepted")
	}
}

func TestGenRestaurant(t *testing.T) {
	ds, err := GenRestaurant(RestaurantSpec{Name: "Restaurant", N: 200,
		Entities: 174, DirtyFrac: 0.1, Eps: 4.6, Eta: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 200 {
		t.Fatalf("n = %d", ds.N())
	}
	// 26 duplicates, labels point at source entities.
	dups := 0
	for i := 174; i < 200; i++ {
		if ds.Labels[i] < 0 || ds.Labels[i] >= 174 {
			t.Fatalf("duplicate %d labels entity %d", i, ds.Labels[i])
		}
		dups++
	}
	if dups != 26 {
		t.Fatalf("dups = %d", dups)
	}
	if got := ds.DirtyCount(); got != 20 {
		t.Errorf("dirty = %d, want 20", got)
	}
	// All attributes are text.
	for _, a := range ds.Rel.Schema.Attrs {
		if a.Kind != Text {
			t.Fatalf("attribute %q is not text", a.Name)
		}
	}
	// Dirty tuples actually changed.
	for i := range ds.Rel.Tuples {
		if ds.Dirty[i] == 0 {
			continue
		}
		a := ds.Dirty[i].Attrs(5)[0]
		if ds.Rel.Tuples[i][a].Str == ds.Clean[i][a].Str {
			t.Errorf("dirty tuple %d attr %d unchanged", i, a)
		}
	}
	if _, err := GenRestaurant(RestaurantSpec{N: 5, Entities: 10}); err == nil {
		t.Error("entities > n accepted")
	}
}

func TestTable1Registry(t *testing.T) {
	for _, name := range Table1Names() {
		ds, err := Table1(name, 0.05, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Eps <= 0 || ds.Eta <= 0 {
			t.Errorf("%s: missing default (ε,η)", name)
		}
		if ds.Classes <= 0 {
			t.Errorf("%s: missing class count", name)
		}
	}
	if _, err := Table1("Nope", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Table1("Iris", 0, 1); err == nil {
		t.Error("sizeScale 0 accepted")
	}
	if _, err := Table1("Iris", 1.5, 1); err == nil {
		t.Error("sizeScale > 1 accepted")
	}
}

func TestTable1FullSizesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	want := map[string]int{"Iris": 150, "Seeds": 210, "WIFI": 2000, "Yeast": 1299, "Restaurant": 864}
	for name, n := range want {
		ds, err := Table1(name, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.N() != n {
			t.Errorf("%s: n = %d, want %d", name, ds.N(), n)
		}
	}
}

func TestDomain(t *testing.T) {
	r := NewRelation(&Schema{Attrs: []Attribute{
		{Name: "n", Kind: Numeric},
		{Name: "s", Kind: Text},
	}})
	r.Append(Tuple{Num(2), Str("b")})
	r.Append(Tuple{Num(1), Str("a")})
	r.Append(Tuple{Num(2), Str("a")})
	dom := Domain(r)
	if len(dom[0]) != 2 || dom[0][0].Num != 1 || dom[0][1].Num != 2 {
		t.Errorf("numeric domain = %v", dom[0])
	}
	if len(dom[1]) != 2 || dom[1][0].Str != "a" || dom[1][1].Str != "b" {
		t.Errorf("text domain = %v", dom[1])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRelation(&Schema{Attrs: []Attribute{
		{Name: "x", Kind: Numeric},
		{Name: "name", Kind: Text},
	}})
	r.Append(Tuple{Num(1.5), Str("hello, world")})
	r.Append(Tuple{Num(-3), Str("quo\"te")})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 2 {
		t.Fatalf("n = %d", got.N())
	}
	if got.Schema.Attrs[0].Kind != Numeric || got.Schema.Attrs[1].Kind != Text {
		t.Error("kinds not round-tripped")
	}
	if got.Tuples[0][0].Num != 1.5 || got.Tuples[0][1].Str != "hello, world" {
		t.Errorf("row 0 = %v", got.Tuples[0])
	}
	if got.Tuples[1][1].Str != "quo\"te" {
		t.Errorf("quoting broken: %q", got.Tuples[1][1].Str)
	}
}

func TestReadCSVInfersKinds(t *testing.T) {
	in := "a,b\n1,x\n2,y\n"
	r, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.Attrs[0].Kind != Numeric {
		t.Error("column a should infer numeric")
	}
	if r.Schema.Attrs[1].Kind != Text {
		t.Error("column b should infer text")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a:numeric\nnotanumber\n")); err == nil {
		t.Error("non-numeric cell in numeric column accepted")
	}
}
