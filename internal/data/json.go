package data

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/metric"
)

// jsonDataset is the serialization schema for a Dataset: everything an
// experiment needs to rerun bit-for-bit, including the injected ground
// truth, without re-running the generator.
type jsonDataset struct {
	Name    string        `json:"name"`
	Attrs   []jsonAttr    `json:"attrs"`
	Norm    uint8         `json:"norm"`
	Tuples  [][]any       `json:"tuples"`
	Labels  []int         `json:"labels"`
	Dirty   []uint64      `json:"dirty"`
	Natural []bool        `json:"natural"`
	Clean   map[int][]any `json:"clean,omitempty"`
	Eps     float64       `json:"eps"`
	Eta     int           `json:"eta"`
	Classes int           `json:"classes"`
}

type jsonAttr struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Scale float64 `json:"scale,omitempty"`
}

// WriteDatasetJSON serializes the dataset. Custom textual distance
// functions are not serialized (they are code); the reader restores the
// default Levenshtein for text attributes.
func WriteDatasetJSON(w io.Writer, ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	out := jsonDataset{
		Name:    ds.Name,
		Norm:    uint8(ds.Rel.Schema.Norm),
		Labels:  ds.Labels,
		Natural: ds.Natural,
		Eps:     ds.Eps,
		Eta:     ds.Eta,
		Classes: ds.Classes,
		Clean:   map[int][]any{},
	}
	for _, a := range ds.Rel.Schema.Attrs {
		out.Attrs = append(out.Attrs, jsonAttr{Name: a.Name, Kind: a.Kind.String(), Scale: a.Scale})
	}
	enc := func(t Tuple) []any {
		row := make([]any, len(t))
		for i, v := range t {
			if ds.Rel.Schema.Attrs[i].Kind == Text {
				row[i] = v.Str
			} else {
				row[i] = v.Num
			}
		}
		return row
	}
	for _, t := range ds.Rel.Tuples {
		out.Tuples = append(out.Tuples, enc(t))
	}
	out.Dirty = make([]uint64, len(ds.Dirty))
	for i, m := range ds.Dirty {
		out.Dirty[i] = uint64(m)
		if m != 0 {
			out.Clean[i] = enc(ds.Clean[i])
		}
	}
	e := json.NewEncoder(w)
	return e.Encode(out)
}

// ReadDatasetJSON deserializes a dataset written by WriteDatasetJSON.
func ReadDatasetJSON(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("data: decode dataset: %w", err)
	}
	schema := &Schema{Norm: normFromByte(in.Norm)}
	for _, a := range in.Attrs {
		kind := Numeric
		if a.Kind == "text" {
			kind = Text
		}
		schema.Attrs = append(schema.Attrs, Attribute{Name: a.Name, Kind: kind, Scale: a.Scale})
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	dec := func(row []any) (Tuple, error) {
		if len(row) != schema.M() {
			return nil, fmt.Errorf("data: row arity %d, want %d", len(row), schema.M())
		}
		t := make(Tuple, len(row))
		for i, cell := range row {
			if schema.Attrs[i].Kind == Text {
				s, ok := cell.(string)
				if !ok {
					return nil, fmt.Errorf("data: attribute %q expects text", schema.Attrs[i].Name)
				}
				t[i] = Str(s)
				continue
			}
			f, ok := cell.(float64)
			if !ok {
				return nil, fmt.Errorf("data: attribute %q expects a number", schema.Attrs[i].Name)
			}
			t[i] = Num(f)
		}
		return t, nil
	}
	ds := &Dataset{
		Name:    in.Name,
		Rel:     NewRelation(schema),
		Labels:  in.Labels,
		Natural: in.Natural,
		Eps:     in.Eps,
		Eta:     in.Eta,
		Classes: in.Classes,
	}
	for _, row := range in.Tuples {
		t, err := dec(row)
		if err != nil {
			return nil, err
		}
		ds.Rel.Append(t)
	}
	n := ds.Rel.N()
	ds.Dirty = make([]AttrMask, n)
	ds.Clean = make([]Tuple, n)
	if len(in.Dirty) != n || len(in.Labels) != n || len(in.Natural) != n {
		return nil, fmt.Errorf("data: dataset arrays disagree with n=%d", n)
	}
	for i, m := range in.Dirty {
		ds.Dirty[i] = AttrMask(m)
		if m != 0 {
			row, ok := in.Clean[i]
			if !ok {
				return nil, fmt.Errorf("data: dirty tuple %d lacks its clean original", i)
			}
			t, err := dec(row)
			if err != nil {
				return nil, err
			}
			ds.Clean[i] = t
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func normFromByte(b uint8) metric.Norm { return metric.Norm(b) }
