package data

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
)

// LatticeSpec parameterizes the jittered-lattice generator: Side^Dims unit
// cells, each holding PerCell tuples placed uniformly inside it. The point
// density is uniform (one stratum per cell), so with ε = 1 every interior
// tuple's expected neighbor count is the unit-ball volume times PerCell —
// a workload whose inlier/outlier geometry is known in closed form, which
// the detection benchmarks and the approximate-detection differential
// tests rely on. Noise appends isolated tuples far outside the lattice
// (pairwise spacing > 4), each a guaranteed outlier at any small ε.
type LatticeSpec struct {
	// Side is the number of cells per axis (required, ≥ 1).
	Side int
	// PerCell is the number of tuples per cell (default 1).
	PerCell int
	// Dims is the number of numeric attributes (default 3, max 8).
	Dims int
	// Noise appends this many isolated outlier tuples after the lattice.
	Noise int
	// Seed drives the jitter; equal specs generate identical rows.
	Seed int64
}

func (sp LatticeSpec) withDefaults() LatticeSpec {
	if sp.Dims <= 0 {
		sp.Dims = 3
	}
	if sp.PerCell <= 0 {
		sp.PerCell = 1
	}
	return sp
}

func (sp LatticeSpec) validate() error {
	if sp.Side < 1 {
		return fmt.Errorf("data: lattice side %d < 1", sp.Side)
	}
	if sp.Dims > 8 {
		return fmt.Errorf("data: lattice dims %d > 8", sp.Dims)
	}
	if sp.Noise < 0 {
		return fmt.Errorf("data: lattice noise %d < 0", sp.Noise)
	}
	if n := sp.N(); n > 1<<28 {
		return fmt.Errorf("data: lattice size %d exceeds 2^28 rows", n)
	}
	return nil
}

// N returns the number of rows the spec generates.
func (sp LatticeSpec) N() int {
	sp = sp.withDefaults()
	n := sp.PerCell
	for a := 0; a < sp.Dims; a++ {
		n *= sp.Side
	}
	return n + sp.Noise
}

// each streams the rows in generation order into fn, reusing one buffer —
// fn must copy the row if it retains it. This is the single source both
// GenLattice and StreamLatticeCSV draw from, so a materialized relation
// and a streamed CSV of the same spec hold identical values.
func (sp LatticeSpec) each(fn func(row []float64) error) error {
	sp = sp.withDefaults()
	if err := sp.validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	row := make([]float64, sp.Dims)
	cells := 1
	for a := 0; a < sp.Dims; a++ {
		cells *= sp.Side
	}
	for c := 0; c < cells; c++ {
		x := c
		for a := 0; a < sp.Dims; a++ {
			row[a] = float64(x % sp.Side)
			x /= sp.Side
		}
		for p := 0; p < sp.PerCell; p++ {
			for a := 0; a < sp.Dims; a++ {
				row[a] = float64(int(row[a])) + rng.Float64()
			}
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	// Noise sits on the negative diagonal at spacing 4 per step: pairwise
	// distances ≥ 4 and distance ≥ 4 from the lattice under any norm, so
	// every noise tuple is an outlier whenever ε < 4 and η ≥ 1.
	for i := 0; i < sp.Noise; i++ {
		for a := range row {
			row[a] = -4 * float64(i+1)
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// latticeSchema names the attributes a0..a{d-1}, all numeric.
func (sp LatticeSpec) schema() *Schema {
	sp = sp.withDefaults()
	names := make([]string, sp.Dims)
	for a := range names {
		names[a] = fmt.Sprintf("a%d", a)
	}
	return NewNumericSchema(names...)
}

// GenLattice materializes the jittered lattice as a relation (the
// benchmark workloads' entry point). For row counts that should not be
// resident, use StreamLatticeCSV instead.
func GenLattice(sp LatticeSpec) (*Relation, error) {
	sp = sp.withDefaults()
	if err := sp.validate(); err != nil {
		return nil, err
	}
	rel := NewRelation(sp.schema())
	rel.Tuples = make([]Tuple, 0, sp.N())
	err := sp.each(func(row []float64) error {
		t := make(Tuple, len(row))
		for a, v := range row {
			t[a] = Num(v)
		}
		rel.Append(t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// StreamLatticeCSV writes the spec's rows as typed-header CSV without ever
// materializing the relation: one reused row buffer and a buffered writer,
// so generating tens of millions of rows costs O(Dims) memory. The output
// parses back through ReadCSV into the same relation GenLattice builds.
func StreamLatticeCSV(w io.Writer, sp LatticeSpec) error {
	sp = sp.withDefaults()
	if err := sp.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	for a := 0; a < sp.Dims; a++ {
		if a > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "a%d:numeric", a); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	var num []byte
	err := sp.each(func(row []float64) error {
		for a, v := range row {
			if a > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			num = strconv.AppendFloat(num[:0], v, 'g', -1, 64)
			if _, err := bw.Write(num); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
