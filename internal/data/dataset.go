package data

import "fmt"

// Dataset bundles a relation with the ground truth the experiments need:
// class labels for clustering accuracy, the set of corrupted attributes per
// tuple for cleaning accuracy (Figures 9–10), and the pre-corruption values.
type Dataset struct {
	// Name identifies the Table 1 dataset this instance reproduces.
	Name string
	// Rel holds the (possibly dirty) tuples.
	Rel *Relation
	// Labels holds the ground-truth class per tuple; -1 marks natural
	// outliers that belong to no class.
	Labels []int
	// Dirty[i] is the mask of attributes corrupted in tuple i (0 = clean).
	Dirty []AttrMask
	// Natural[i] marks tuple i as a natural outlier (true abnormal
	// behaviour, not an error).
	Natural []bool
	// Clean[i] is the original tuple before corruption for dirty tuples,
	// nil for untouched tuples.
	Clean []Tuple
	// Eps and Eta are the paper's distance constraints for this dataset
	// where stated, otherwise tuned defaults for the synthetic instance.
	Eps float64
	Eta int
	// Classes is the number of ground-truth classes (K for K-Means).
	Classes int
}

// N returns the number of tuples.
func (d *Dataset) N() int { return d.Rel.N() }

// DirtyCount returns the number of tuples with injected errors.
func (d *Dataset) DirtyCount() int {
	c := 0
	for _, m := range d.Dirty {
		if m != 0 {
			c++
		}
	}
	return c
}

// NaturalCount returns the number of natural outliers.
func (d *Dataset) NaturalCount() int {
	c := 0
	for _, b := range d.Natural {
		if b {
			c++
		}
	}
	return c
}

// CloneRelation returns a deep copy of the dataset's relation so a cleaning
// method can modify tuples without disturbing the ground truth.
func (d *Dataset) CloneRelation() *Relation { return d.Rel.Clone() }

// Validate checks internal consistency of the parallel slices.
func (d *Dataset) Validate() error {
	n := d.Rel.N()
	if len(d.Labels) != n || len(d.Dirty) != n || len(d.Natural) != n || len(d.Clean) != n {
		return fmt.Errorf("data: dataset %q: parallel slices disagree with n=%d", d.Name, n)
	}
	for i := 0; i < n; i++ {
		if d.Dirty[i] != 0 && d.Clean[i] == nil {
			return fmt.Errorf("data: dataset %q: tuple %d dirty but has no clean original", d.Name, i)
		}
	}
	return d.Rel.Schema.Validate()
}
