package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasetJSONRoundTrip(t *testing.T) {
	ds, err := Table1("Iris", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDatasetJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatasetJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Classes != ds.Classes || back.Eps != ds.Eps || back.Eta != ds.Eta {
		t.Fatalf("shape changed: %+v", back)
	}
	for i := range ds.Rel.Tuples {
		for a := range ds.Rel.Tuples[i] {
			if ds.Rel.Tuples[i][a].Num != back.Rel.Tuples[i][a].Num {
				t.Fatalf("tuple %d attr %d changed", i, a)
			}
		}
		if ds.Labels[i] != back.Labels[i] || ds.Dirty[i] != back.Dirty[i] || ds.Natural[i] != back.Natural[i] {
			t.Fatalf("ground truth changed at %d", i)
		}
		if ds.Dirty[i] != 0 {
			for a := range ds.Clean[i] {
				if ds.Clean[i][a].Num != back.Clean[i][a].Num {
					t.Fatalf("clean original changed at %d", i)
				}
			}
		}
	}
}

func TestDatasetJSONTextRoundTrip(t *testing.T) {
	ds, err := Table1("Restaurant", 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDatasetJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatasetJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Rel.Tuples {
		for a := range ds.Rel.Tuples[i] {
			if ds.Rel.Tuples[i][a].Str != back.Rel.Tuples[i][a].Str {
				t.Fatalf("text tuple %d attr %d changed", i, a)
			}
		}
	}
	// Note: custom text distances are code, not data; the reader restores
	// the default Levenshtein.
	if back.Rel.Schema.Attrs[0].Text != nil {
		t.Error("text distance function should not survive serialization")
	}
	if back.Rel.Schema.Attrs[1].Scale != ds.Rel.Schema.Attrs[1].Scale {
		t.Error("attribute scale lost")
	}
}

func TestDatasetJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadDatasetJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadDatasetJSON(strings.NewReader(`{"attrs":[],"tuples":[]}`)); err == nil {
		t.Error("empty schema accepted")
	}
	// Dirty tuple without a clean original.
	bad := `{"name":"x","attrs":[{"name":"a","kind":"numeric"}],"tuples":[[1]],` +
		`"labels":[0],"dirty":[1],"natural":[false],"eps":1,"eta":1,"classes":1}`
	if _, err := ReadDatasetJSON(strings.NewReader(bad)); err == nil {
		t.Error("dirty-without-clean accepted")
	}
	// Type mismatch.
	bad2 := `{"name":"x","attrs":[{"name":"a","kind":"numeric"}],"tuples":[["str"]],` +
		`"labels":[0],"dirty":[0],"natural":[false],"eps":1,"eta":1,"classes":1}`
	if _, err := ReadDatasetJSON(strings.NewReader(bad2)); err == nil {
		t.Error("type mismatch accepted")
	}
}
