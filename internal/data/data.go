// Package data defines the relational model of the paper: tuples over a
// schema of numeric and textual attributes, per-attribute distances and
// their Lp aggregation (§2.1.1), attribute-subset masks for the bound
// computations of §3, and the synthetic datasets reproducing Table 1.
package data

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/metric"
)

// Kind distinguishes numeric from textual attribute values.
type Kind uint8

const (
	// Numeric attributes carry float64 values compared by (scaled)
	// absolute difference.
	Numeric Kind = iota
	// Text attributes carry string values compared by an edit-style
	// distance (Levenshtein by default, Needleman–Wunsch optionally).
	Text
)

// String names the kind.
func (k Kind) String() string {
	if k == Text {
		return "text"
	}
	return "numeric"
}

// Value is one attribute value: Num is used by Numeric attributes, Str by
// Text attributes.
type Value struct {
	Num float64
	Str string
}

// Num wraps a numeric value.
func Num(v float64) Value { return Value{Num: v} }

// Str wraps a textual value.
func Str(s string) Value { return Value{Str: s} }

// Equal reports whether two values are identical under the given kind.
func (v Value) Equal(o Value, k Kind) bool {
	if k == Text {
		return v.Str == o.Str
	}
	return v.Num == o.Num
}

// Tuple is one row: a value per schema attribute.
type Tuple []Value

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Attribute describes one column.
type Attribute struct {
	// Name is the column name.
	Name string
	// Kind selects the value representation and distance family.
	Kind Kind
	// Scale divides numeric distances (≤ 0 means 1). It keeps
	// heterogeneous columns comparable inside one aggregate, e.g. Time vs
	// Longitude in the GPS example of Figure 2.
	Scale float64
	// Text is the distance for textual values; nil means Levenshtein.
	Text metric.StringDistance
}

// Schema is an ordered attribute list plus the aggregation norm.
type Schema struct {
	// Attrs are the columns, in tuple order.
	Attrs []Attribute
	// Norm aggregates per-attribute distances; zero value is L2, the
	// paper's default.
	Norm metric.Norm
}

// NewNumericSchema builds an all-numeric schema with unit scales and the
// given column names.
func NewNumericSchema(names ...string) *Schema {
	s := &Schema{Attrs: make([]Attribute, len(names))}
	for i, n := range names {
		s.Attrs[i] = Attribute{Name: n, Kind: Numeric}
	}
	return s
}

// M returns the number of attributes (m in the paper).
func (s *Schema) M() int { return len(s.Attrs) }

// AttrDist returns Δ(x, y) on attribute a.
func (s *Schema) AttrDist(a int, x, y Value) float64 {
	at := &s.Attrs[a]
	var d float64
	if at.Kind == Text {
		if at.Text != nil {
			d = at.Text(x.Str, y.Str)
		} else {
			d = metric.Levenshtein(x.Str, y.Str)
		}
	} else {
		d = math.Abs(x.Num - y.Num)
	}
	// Scale applies to both kinds; dividing by a positive constant
	// preserves all four metric axioms. Note Proposition 7's ε+1
	// approximation factor assumes unit-scale integral distances.
	if at.Scale > 0 {
		d /= at.Scale
	}
	return d
}

// Dist returns the full-space distance Δ(t1, t2) over all attributes.
// The L2 default takes a specialized path: this is the hottest function in
// the system (every index probe and clustering step lands here).
func (s *Schema) Dist(t1, t2 Tuple) float64 {
	if s.Norm != metric.L2 {
		return s.DistOn(t1, t2, FullMask(s.M()))
	}
	acc := 0.0
	for a := range s.Attrs {
		at := &s.Attrs[a]
		var d float64
		if at.Kind == Numeric {
			d = t1[a].Num - t2[a].Num
		} else if at.Text != nil {
			d = at.Text(t1[a].Str, t2[a].Str)
		} else {
			d = metric.Levenshtein(t1[a].Str, t2[a].Str)
		}
		if at.Scale > 0 {
			d /= at.Scale
		}
		acc += d * d
	}
	return math.Sqrt(acc)
}

// DistOn returns Δ(t1[X], t2[X]) for the attribute subset X given as a
// mask. An empty mask yields 0, matching the paper's convention
// Δ(·[∅], ·[∅]) = 0.
func (s *Schema) DistOn(t1, t2 Tuple, x AttrMask) float64 {
	acc := 0.0
	for a := 0; a < s.M(); a++ {
		if !x.Has(a) {
			continue
		}
		acc = s.Norm.Accumulate(acc, s.AttrDist(a, t1[a], t2[a]))
	}
	return s.Norm.Finish(acc)
}

// Validate checks structural consistency of the schema.
func (s *Schema) Validate() error {
	if s.M() == 0 {
		return fmt.Errorf("data: schema has no attributes")
	}
	if s.M() > 64 {
		return fmt.Errorf("data: schema has %d attributes; attribute masks support at most 64", s.M())
	}
	seen := make(map[string]bool, s.M())
	for i, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("data: attribute %d has an empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("data: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// AttrMask is a bitset over attribute indexes (bit i = attribute i). It
// represents the unadjusted-attribute sets X enumerated by Algorithm 1.
// Schemas are limited to 64 attributes (Table 1's widest dataset, Spam,
// has 57).
type AttrMask uint64

// FullMask returns the mask containing attributes 0..m-1.
func FullMask(m int) AttrMask {
	if m >= 64 {
		return ^AttrMask(0)
	}
	return AttrMask(1)<<uint(m) - 1
}

// Has reports whether attribute a is in the mask.
func (x AttrMask) Has(a int) bool { return x&(1<<uint(a)) != 0 }

// With returns the mask with attribute a added.
func (x AttrMask) With(a int) AttrMask { return x | 1<<uint(a) }

// Without returns the mask with attribute a removed.
func (x AttrMask) Without(a int) AttrMask { return x &^ (1 << uint(a)) }

// Count returns |X|.
func (x AttrMask) Count() int { return bits.OnesCount64(uint64(x)) }

// Complement returns R \ X for a schema of m attributes.
func (x AttrMask) Complement(m int) AttrMask { return FullMask(m) &^ x }

// Attrs expands the mask into a sorted slice of attribute indexes.
func (x AttrMask) Attrs(m int) []int {
	out := make([]int, 0, x.Count())
	for a := 0; a < m; a++ {
		if x.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Relation is a set of tuples over a schema (r in the paper).
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// NewRelation returns an empty relation over the schema.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// N returns the number of tuples (n in the paper).
func (r *Relation) N() int { return len(r.Tuples) }

// Append adds a tuple; it panics if the arity does not match the schema,
// since that is always a programming error.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.Schema.M() {
		panic(fmt.Sprintf("data: tuple arity %d does not match schema arity %d", len(t), r.Schema.M()))
	}
	r.Tuples = append(r.Tuples, t)
}

// Clone returns a deep copy (schema shared, tuples copied).
func (r *Relation) Clone() *Relation {
	c := &Relation{Schema: r.Schema, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// Subset returns a new relation containing the tuples at the given indexes
// (tuples shared, not copied).
func (r *Relation) Subset(idx []int) *Relation {
	c := &Relation{Schema: r.Schema, Tuples: make([]Tuple, len(idx))}
	for i, j := range idx {
		c.Tuples[i] = r.Tuples[j]
	}
	return c
}

// Compose builds the tuple that keeps base[X] and takes other[R\X],
// i.e. the upper-bound adjustment t_o^u of Proposition 5.
func Compose(base, other Tuple, x AttrMask) Tuple {
	t := make(Tuple, len(base))
	for a := range base {
		if x.Has(a) {
			t[a] = base[a]
		} else {
			t[a] = other[a]
		}
	}
	return t
}

// DiffMask returns the mask of attributes on which a and b differ under the
// schema's kinds — the set of adjusted attributes of a repair.
func DiffMask(s *Schema, a, b Tuple) AttrMask {
	var m AttrMask
	for i := 0; i < s.M(); i++ {
		if !a[i].Equal(b[i], s.Attrs[i].Kind) {
			m = m.With(i)
		}
	}
	return m
}

// ValidateValues rejects relations containing NaN or infinite numeric
// values: distances over such cells are undefined, so detection and
// saving would silently misbehave. Call it on untrusted input (the CSV
// CLI does).
func ValidateValues(r *Relation) error {
	for i, t := range r.Tuples {
		for a := range t {
			if r.Schema.Attrs[a].Kind != Numeric {
				continue
			}
			v := t[a].Num
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("data: tuple %d attribute %q has non-finite value %v", i, r.Schema.Attrs[a].Name, v)
			}
		}
	}
	return nil
}
