package data

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/metric"
)

// Kernel is a distance program compiled once per Schema+Relation. It
// re-lays the row-major []Value tuples out as structure-of-arrays — flat
// raw []float64 numeric columns and dictionary-encoded text columns of
// interned int32 IDs — resolves each text attribute's metric (nil →
// Levenshtein) once, and memoizes pairwise text distances per attribute
// so an O(len²) edit distance is computed at most once per distinct
// string pair. All distance entry points replicate the scalar
// Schema.Dist / Schema.DistOn / Schema.AttrDist arithmetic operation for
// operation, so kernel results are bit-identical to the scalar path
// (see docs/PERFORMANCE.md; kernel_test.go proves it differentially).
//
// Columns track the relation under an append-only discipline: AppendRow
// absorbs a row appended to the relation into every column (and the text
// dictionaries) in place, so mutable sessions never recompile on insert.
// In-place edits of existing tuples are still invisible — updates are
// expressed as tombstone-old + append-new at the index layer (see
// neighbors.Mutable). AppendRow must be serialized against all queries
// by the caller; the serving layer holds a session-wide write lock.
//
// A Kernel is safe for concurrent use: the text caches are a lock-free
// dense atomic table (small dictionaries) or a sharded RWMutex map, and
// all per-query state lives in pooled KernelQuery scratch.
type Kernel struct {
	sch   *Schema
	rel   *Relation
	n     int
	norm  metric.Norm
	attrs []kernelAttr
	pool  sync.Pool

	// All-numeric fast path: when every attribute is numeric, rows holds
	// the same raw values as the columns but row-major (rows[j*m+a]), and
	// scales the per-attribute scales, so full-row distances run as one
	// contiguous scan with no per-attribute dispatch. The generic
	// column-major path pays a non-inlinable attrRaw call per attribute
	// per pair — measurable on numeric-only scans (BenchmarkBruteWithin).
	allNum bool
	rows   []float64
	scales []float64
}

// kernelAttr is one compiled column.
type kernelAttr struct {
	kind  Kind
	scale float64
	// Numeric: raw (unscaled) values, one per row. Values are stored raw
	// and divided by scale per evaluation, exactly like the scalar path:
	// pre-scaling would change the arithmetic ((x−y)/s ≠ x/s − y/s in
	// floating point) and break bit-identical results.
	num []float64
	// Text: interned dictionary IDs per row, the dictionary itself, a
	// reverse lookup for query binding, and the resolved metric.
	ids    []int32
	dict   []string
	lookup map[string]int32
	dist   metric.StringDistance
	// Pairwise distance cache over dictionary IDs, storing the raw
	// (unscaled) metric value. Exactly one of dense/shards is active.
	dense  []uint64 // triangular; Float64bits(d)+1, 0 = absent
	shards []cacheShard
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

const (
	// denseCacheMaxSlots bounds the dense triangular cache: D·(D+1)/2
	// slots ≤ 2²¹ (16 MiB of uint64) keeps dictionaries up to ~2047
	// distinct strings on the lock-free path.
	denseCacheMaxSlots = 1 << 21
	cacheShardCount    = 32 // power of two
)

// CompileKernel compiles the relation's schema and rows into a Kernel.
func CompileKernel(r *Relation) *Kernel {
	n := r.N()
	sch := r.Schema
	k := &Kernel{sch: sch, rel: r, n: n, norm: sch.Norm, attrs: make([]kernelAttr, sch.M())}
	for a := range sch.Attrs {
		at := &sch.Attrs[a]
		ka := &k.attrs[a]
		ka.kind = at.Kind
		ka.scale = at.Scale
		if at.Kind == Numeric {
			ka.num = make([]float64, n)
			for i, t := range r.Tuples {
				ka.num[i] = t[a].Num
			}
			continue
		}
		ka.dist = at.Text
		if ka.dist == nil {
			ka.dist = metric.Levenshtein
		}
		ka.ids = make([]int32, n)
		ka.lookup = make(map[string]int32)
		for i, t := range r.Tuples {
			s := t[a].Str
			id, ok := ka.lookup[s]
			if !ok {
				id = int32(len(ka.dict))
				ka.dict = append(ka.dict, s)
				ka.lookup[s] = id
			}
			ka.ids[i] = id
		}
		d := len(ka.dict)
		if tri := d * (d + 1) / 2; tri <= denseCacheMaxSlots {
			ka.dense = make([]uint64, tri)
		} else {
			ka.shards = make([]cacheShard, cacheShardCount)
			for s := range ka.shards {
				ka.shards[s].m = make(map[uint64]float64)
			}
		}
	}
	k.allNum = true
	for a := range k.attrs {
		if k.attrs[a].kind != Numeric {
			k.allNum = false
			break
		}
	}
	if m := len(k.attrs); k.allNum && m > 0 {
		k.rows = make([]float64, n*m)
		k.scales = make([]float64, m)
		for a := range k.attrs {
			k.scales[a] = k.attrs[a].scale
			col := k.attrs[a].num
			for j := 0; j < n; j++ {
				k.rows[j*m+a] = col[j]
			}
		}
	}
	return k
}

// AppendRow absorbs one row just appended to the relation into the
// compiled columns: numeric columns and the all-numeric row-major mirror
// grow by one value, text values are interned (new dictionary entries
// extend the pair cache — the dense triangular layout keeps existing
// slots valid, and a dictionary that outgrows the dense budget migrates
// its cached pairs to the sharded maps). The tuple must already be
// Relation.Append-ed; its arity is checked there. AppendRow is a writer:
// callers must serialize it against every concurrent query and every
// other mutation (the serving layer holds a session-wide write lock).
func (k *Kernel) AppendRow(t Tuple) {
	m := len(k.attrs)
	for a := 0; a < m; a++ {
		ka := &k.attrs[a]
		if ka.kind == Numeric {
			ka.num = append(ka.num, t[a].Num)
			continue
		}
		s := t[a].Str
		id, ok := ka.lookup[s]
		if !ok {
			id = int32(len(ka.dict))
			ka.dict = append(ka.dict, s)
			ka.lookup[s] = id
			k.growTextCache(ka)
		}
		ka.ids = append(ka.ids, id)
	}
	if k.allNum && m > 0 {
		for a := 0; a < m; a++ {
			k.rows = append(k.rows, t[a].Num)
		}
	}
	k.n++
}

// growTextCache extends ka's pair cache for a dictionary that just
// gained one entry. The dense triangular cache grows in place (existing
// slots keep their indices under the slot(hi,lo) layout); once the
// triangle exceeds the dense budget the cached pairs migrate to the
// sharded maps so the hot path never recomputes what it already paid
// for.
func (k *Kernel) growTextCache(ka *kernelAttr) {
	if ka.dense == nil {
		return // already sharded; maps grow on their own
	}
	d := len(ka.dict)
	if tri := d * (d + 1) / 2; tri <= denseCacheMaxSlots {
		ka.dense = append(ka.dense, make([]uint64, tri-len(ka.dense))...)
		return
	}
	ka.shards = make([]cacheShard, cacheShardCount)
	for s := range ka.shards {
		ka.shards[s].m = make(map[uint64]float64)
	}
	for hi := 0; hi*(hi+1)/2 < len(ka.dense); hi++ {
		for lo := 0; lo <= hi; lo++ {
			bits := ka.dense[hi*(hi+1)/2+lo]
			if bits == 0 {
				continue
			}
			key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
			sh := &ka.shards[(uint64(lo)*0x9e3779b1^uint64(hi))&(cacheShardCount-1)]
			sh.m[key] = math.Float64frombits(bits - 1)
		}
	}
	ka.dense = nil
}

// N returns the number of rows, M the number of attributes.
func (k *Kernel) N() int { return k.n }

// M returns the number of attributes.
func (k *Kernel) M() int { return len(k.attrs) }

// Schema returns the compiled schema.
func (k *Kernel) Schema() *Schema { return k.sch }

// Relation returns the relation the kernel was compiled from.
func (k *Kernel) Relation() *Relation { return k.rel }

// Norm returns the compiled aggregation norm.
func (k *Kernel) Norm() metric.Norm { return k.norm }

// LEBound is LEBound(k.Norm(), eps): the accumulator threshold for the
// early-exit entry points.
func (k *Kernel) LEBound(eps float64) float64 { return LEBound(k.norm, eps) }

// NumColumn returns the raw (unscaled) numeric column of attribute a,
// or nil for text attributes. The slice is the kernel's own storage:
// callers must not mutate it.
func (k *Kernel) NumColumn(a int) []float64 { return k.attrs[a].num }

// pairRaw returns the raw (unscaled) text distance between dictionary
// IDs a and b of attribute ka, computing and caching it on first use.
// Identical IDs short-circuit to 0 — the metric identity axiom is a
// documented precondition of metric.StringDistance. hits/misses count
// avoided vs. performed metric evaluations.
func pairRaw(ka *kernelAttr, a, b int32, hits, misses *int64) float64 {
	if a == b {
		*hits++
		return 0
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if ka.dense != nil {
		slot := &ka.dense[int(hi)*(int(hi)+1)/2+int(lo)]
		// Float64bits(d)+1 with 0 = absent: no initialization pass, and
		// concurrent writers race benignly (same deterministic value).
		if bits := atomic.LoadUint64(slot); bits != 0 {
			*hits++
			return math.Float64frombits(bits - 1)
		}
		d := ka.dist(ka.dict[lo], ka.dict[hi])
		*misses++
		atomic.StoreUint64(slot, math.Float64bits(d)+1)
		return d
	}
	key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
	sh := &ka.shards[(uint64(lo)*0x9e3779b1^uint64(hi))&(cacheShardCount-1)]
	sh.mu.RLock()
	d, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		*hits++
		return d
	}
	d = ka.dist(ka.dict[lo], ka.dict[hi])
	*misses++
	sh.mu.Lock()
	sh.m[key] = d
	sh.mu.Unlock()
	return d
}

// attrRawRows returns the raw (unscaled) per-attribute distance between
// rows i and j.
func (k *Kernel) attrRawRows(ka *kernelAttr, i, j int, hits, misses *int64) float64 {
	if ka.kind == Numeric {
		return math.Abs(ka.num[i] - ka.num[j])
	}
	return pairRaw(ka, ka.ids[i], ka.ids[j], hits, misses)
}

// AttrDist returns the scaled per-attribute distance between rows i and
// j, bit-identical to Schema.AttrDist on the same values.
func (k *Kernel) AttrDist(a, i, j int) float64 {
	var hits, misses int64
	ka := &k.attrs[a]
	d := k.attrRawRows(ka, i, j, &hits, &misses)
	if ka.scale > 0 {
		d /= ka.scale
	}
	return d
}

// rowOf returns row j of the all-numeric row-major mirror, or nil when
// the kernel has text attributes (callers fall through to the generic
// column-major path). Values and scales are identical to the columns,
// and the fast-path loops replicate the generic arithmetic operation
// for operation, so results stay bit-identical.
func (k *Kernel) rowOf(j int) []float64 {
	if k.rows == nil {
		return nil
	}
	m := len(k.attrs)
	return k.rows[j*m : j*m+m : j*m+m]
}

// rowDist is the all-numeric full-distance scan shared by Kernel.Dist
// and KernelQuery.DistTo: qn holds the query-side values (a bound
// query's nums, or another row of the mirror).
func (k *Kernel) rowDist(qn, row []float64) float64 {
	qn, sc := qn[:len(row)], k.scales[:len(row)] // bounds-check elimination
	acc := 0.0
	if k.norm == metric.L2 {
		for a, v := range row {
			d := math.Abs(qn[a] - v)
			if s := sc[a]; s > 0 {
				d /= s
			}
			acc += d * d
		}
		return math.Sqrt(acc)
	}
	for a, v := range row {
		d := math.Abs(qn[a] - v)
		if s := sc[a]; s > 0 {
			d /= s
		}
		acc = k.accumulate(acc, d)
	}
	return k.norm.Finish(acc)
}

// rowDistLE is the all-numeric early-exit scan shared by Kernel.DistLE
// and KernelQuery.DistToLE. exits counts pairs abandoned before the
// last attribute. The abort path returns the raw accumulator without
// Finish — callers never read the distance when within is false, and
// on random data most pairs abort, so a sqrt there would dominate the
// scan.
func (k *Kernel) rowDistLE(qn, row []float64, bound float64, exits *int64) (float64, bool) {
	m := len(row)
	qn, sc := qn[:m], k.scales[:m] // bounds-check elimination
	acc := 0.0
	if k.norm == metric.L2 {
		for a, v := range row {
			d := math.Abs(qn[a] - v)
			if s := sc[a]; s > 0 {
				d /= s
			}
			acc += d * d
			if acc > bound {
				if a < m-1 {
					*exits++
				}
				return acc, false
			}
		}
		return math.Sqrt(acc), true
	}
	for a, v := range row {
		d := math.Abs(qn[a] - v)
		if s := sc[a]; s > 0 {
			d /= s
		}
		acc = k.accumulate(acc, d)
		if acc > bound {
			if a < m-1 {
				*exits++
			}
			return acc, false
		}
	}
	return k.norm.Finish(acc), true
}

// Dist returns the full-space distance between rows i and j,
// bit-identical to Schema.Dist on the same tuples.
func (k *Kernel) Dist(i, j int) float64 {
	if row := k.rowOf(j); row != nil {
		return k.rowDist(k.rowOf(i), row)
	}
	var hits, misses int64
	if k.norm == metric.L2 {
		acc := 0.0
		for a := range k.attrs {
			ka := &k.attrs[a]
			d := k.attrRawRows(ka, i, j, &hits, &misses)
			if ka.scale > 0 {
				d /= ka.scale
			}
			acc += d * d
		}
		return math.Sqrt(acc)
	}
	return k.DistX(i, j, FullMask(len(k.attrs)))
}

// DistX returns the distance between rows i and j over the attribute
// subset x, bit-identical to Schema.DistOn.
func (k *Kernel) DistX(i, j int, x AttrMask) float64 {
	var hits, misses int64
	acc := 0.0
	for a := range k.attrs {
		if !x.Has(a) {
			continue
		}
		ka := &k.attrs[a]
		d := k.attrRawRows(ka, i, j, &hits, &misses)
		if ka.scale > 0 {
			d /= ka.scale
		}
		acc = k.norm.Accumulate(acc, d)
	}
	return k.norm.Finish(acc)
}

// DistLE reports whether the distance between rows i and j is ≤ eps,
// aborting the scan as soon as the partial aggregate proves it cannot
// be (see LEBound for the soundness argument). The returned distance is
// exact when within is true and meaningless otherwise.
func (k *Kernel) DistLE(i, j int, eps float64) (d float64, within bool) {
	bound := LEBound(k.norm, eps)
	if row := k.rowOf(j); row != nil {
		var exits int64
		return k.rowDistLE(k.rowOf(i), row, bound, &exits)
	}
	var hits, misses int64
	acc := 0.0
	for a := range k.attrs {
		ka := &k.attrs[a]
		d := k.attrRawRows(ka, i, j, &hits, &misses)
		if ka.scale > 0 {
			d /= ka.scale
		}
		acc = k.accumulate(acc, d)
		if acc > bound {
			return acc, false
		}
	}
	return k.norm.Finish(acc), true
}

// accumulate is Norm.Accumulate with the switch on the kernel; kept in
// sync with metric.Norm.Accumulate (the differential tests enforce it).
func (k *Kernel) accumulate(acc, d float64) float64 {
	switch k.norm {
	case metric.L1:
		return acc + d
	case metric.LInf:
		return math.Max(acc, d)
	default:
		return acc + d*d
	}
}

// LEBound returns the largest accumulator value T such that
// norm.Finish(T) ≤ eps, so the early-exit test `acc > T` is exactly
// equivalent to the scalar `Finish(acc) ≤ eps` being false. For L1/LInf,
// Finish is the identity and T = eps. For L2, T starts at eps² and is
// nudged by ULPs until sqrt(T) ≤ eps < sqrt(next(T)) — sqrt is monotone
// and correctly rounded, so the adjustment loop terminates within a few
// steps. The abort is sound because per-attribute distances are
// non-negative and every norm's Accumulate is monotone non-decreasing
// in the accumulator under IEEE round-to-nearest.
func LEBound(n metric.Norm, eps float64) float64 {
	if n != metric.L2 || math.IsInf(eps, 1) || math.IsNaN(eps) {
		return eps
	}
	if eps < 0 {
		// No non-negative accumulator passes; sqrt(acc) ≥ 0 > eps.
		return math.Inf(-1)
	}
	t := eps * eps
	for math.Sqrt(t) > eps {
		t = math.Nextafter(t, math.Inf(-1))
	}
	for {
		nt := math.Nextafter(t, math.Inf(1))
		if math.IsInf(nt, 1) || !(math.Sqrt(nt) <= eps) {
			return t
		}
		t = nt
	}
}

// KernelQuery is a query tuple bound against a kernel: query values are
// interned against the dictionaries once, and distances from the query
// to rows reuse the pair caches (known query strings) or a query-local
// memo (strings not in the relation, e.g. an outlier under repair —
// each distinct dictionary entry is evaluated at most once per bound
// query). Queries come from a pool: obtain with Kernel.Bind, release
// with Release. A KernelQuery is not safe for concurrent use; bind one
// per goroutine.
type KernelQuery struct {
	k     *Kernel
	nums  []float64 // numeric query values
	attrs []kqAttr  // text query state
	gen   uint32

	// Counters since the last Bind: text metric evaluations avoided
	// (cache or memo hit, including the identical-ID fast path),
	// performed, and pair scans aborted by the ε early exit. Harvest
	// them before Release; hot loops update them without atomics.
	TextCacheHits   int64
	TextCacheMisses int64
	EarlyExits      int64
}

type kqAttr struct {
	id      int32 // interned query ID, -1 if not in the dictionary
	str     string
	memo    []float64 // per-dict-ID raw distance for unknown query strings
	memoGen []uint32
}

func (k *Kernel) newQuery() *KernelQuery {
	q := &KernelQuery{k: k, nums: make([]float64, len(k.attrs)), attrs: make([]kqAttr, len(k.attrs))}
	for a := range k.attrs {
		if ka := &k.attrs[a]; ka.kind == Text {
			q.attrs[a].memo = make([]float64, len(ka.dict))
			q.attrs[a].memoGen = make([]uint32, len(ka.dict))
		}
	}
	return q
}

// Bind interns the tuple against the kernel's dictionaries and returns
// a pooled query. The tuple's arity must match the schema.
func (k *Kernel) Bind(t Tuple) *KernelQuery {
	if len(t) != len(k.attrs) {
		panic(fmt.Sprintf("data: query arity %d does not match kernel arity %d", len(t), len(k.attrs)))
	}
	q, _ := k.pool.Get().(*KernelQuery)
	if q == nil {
		q = k.newQuery()
	}
	q.gen++
	if q.gen == 0 { // generation wrapped: invalidate stale memo stamps
		for a := range q.attrs {
			for i := range q.attrs[a].memoGen {
				q.attrs[a].memoGen[i] = 0
			}
		}
		q.gen = 1
	}
	q.TextCacheHits, q.TextCacheMisses, q.EarlyExits = 0, 0, 0
	for a := range k.attrs {
		ka := &k.attrs[a]
		if ka.kind == Numeric {
			q.nums[a] = t[a].Num
			continue
		}
		qa := &q.attrs[a]
		// AppendRow may have grown the dictionary since this pooled
		// query was sized; the memo is indexed by dictionary ID.
		if d := len(ka.dict); len(qa.memo) < d {
			qa.memo = append(qa.memo, make([]float64, d-len(qa.memo))...)
			qa.memoGen = append(qa.memoGen, make([]uint32, d-len(qa.memoGen))...)
		}
		qa.str = t[a].Str
		if id, ok := ka.lookup[qa.str]; ok {
			qa.id = id
		} else {
			qa.id = -1
		}
	}
	return q
}

// Release returns the query to the kernel's pool.
func (q *KernelQuery) Release() { q.k.pool.Put(q) }

// attrRaw returns the raw (unscaled) distance between the query and row
// j on attribute a.
func (q *KernelQuery) attrRaw(a int, ka *kernelAttr, j int, hits, misses *int64) float64 {
	if ka.kind == Numeric {
		return math.Abs(q.nums[a] - ka.num[j])
	}
	qa := &q.attrs[a]
	jid := ka.ids[j]
	if qa.id >= 0 {
		return pairRaw(ka, qa.id, jid, hits, misses)
	}
	if qa.memoGen[jid] == q.gen {
		*hits++
		return qa.memo[jid]
	}
	d := ka.dist(qa.str, ka.dict[jid])
	*misses++
	qa.memo[jid] = d
	qa.memoGen[jid] = q.gen
	return d
}

// AttrDist returns the scaled per-attribute distance between the query
// and row j, bit-identical to Schema.AttrDist.
func (q *KernelQuery) AttrDist(a, j int) float64 {
	ka := &q.k.attrs[a]
	d := q.attrRaw(a, ka, j, &q.TextCacheHits, &q.TextCacheMisses)
	if ka.scale > 0 {
		d /= ka.scale
	}
	return d
}

// DistTo returns the full-space distance between the query and row j,
// bit-identical to Schema.Dist.
func (q *KernelQuery) DistTo(j int) float64 {
	k := q.k
	if row := k.rowOf(j); row != nil {
		return k.rowDist(q.nums, row)
	}
	if k.norm == metric.L2 {
		acc := 0.0
		for a := range k.attrs {
			ka := &k.attrs[a]
			d := q.attrRaw(a, ka, j, &q.TextCacheHits, &q.TextCacheMisses)
			if ka.scale > 0 {
				d /= ka.scale
			}
			acc += d * d
		}
		return math.Sqrt(acc)
	}
	return q.DistToX(j, FullMask(len(k.attrs)))
}

// DistToX returns the distance between the query and row j over the
// attribute subset x, bit-identical to Schema.DistOn.
func (q *KernelQuery) DistToX(j int, x AttrMask) float64 {
	k := q.k
	acc := 0.0
	for a := range k.attrs {
		if !x.Has(a) {
			continue
		}
		ka := &k.attrs[a]
		d := q.attrRaw(a, ka, j, &q.TextCacheHits, &q.TextCacheMisses)
		if ka.scale > 0 {
			d /= ka.scale
		}
		acc = k.norm.Accumulate(acc, d)
	}
	return k.norm.Finish(acc)
}

// DistToLE reports whether the distance between the query and row j is
// ≤ eps using the precomputed bound from LEBound(norm, eps) — hot scans
// compute the bound once per query rather than per pair. A pair is
// abandoned (and EarlyExits incremented) the moment the partial
// aggregate exceeds the bound: per-attribute distances are non-negative
// and Accumulate is monotone, so the remaining attributes cannot bring
// it back down, and by construction of LEBound the abort decision is
// exactly the scalar `Finish(acc) ≤ eps` test. The returned distance is
// exact when within is true and meaningless otherwise (the abort path
// skips Finish — most pairs abort, so a sqrt there would dominate).
func (q *KernelQuery) DistToLE(j int, bound float64) (d float64, within bool) {
	k := q.k
	if row := k.rowOf(j); row != nil {
		return k.rowDistLE(q.nums, row, bound, &q.EarlyExits)
	}
	if k.norm == metric.L2 {
		acc := 0.0
		for a := range k.attrs {
			ka := &k.attrs[a]
			d := q.attrRaw(a, ka, j, &q.TextCacheHits, &q.TextCacheMisses)
			if ka.scale > 0 {
				d /= ka.scale
			}
			acc += d * d
			if acc > bound {
				if a < len(k.attrs)-1 {
					q.EarlyExits++
				}
				return acc, false
			}
		}
		return math.Sqrt(acc), true
	}
	acc := 0.0
	for a := range k.attrs {
		ka := &k.attrs[a]
		d := q.attrRaw(a, ka, j, &q.TextCacheHits, &q.TextCacheMisses)
		if ka.scale > 0 {
			d /= ka.scale
		}
		acc = k.accumulate(acc, d)
		if acc > bound {
			if a < len(k.attrs)-1 {
				q.EarlyExits++
			}
			return acc, false
		}
	}
	return k.norm.Finish(acc), true
}
