package data

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// AttrSummary is the per-attribute profile of a relation.
type AttrSummary struct {
	Name     string
	Kind     Kind
	Distinct int
	// Numeric statistics (zero-valued for text attributes).
	Min, Max, Mean, StdDev float64
	// MaxLen is the longest textual value (0 for numeric attributes).
	MaxLen int
}

// Summarize profiles every attribute of the relation — the datagen/disccli
// inspection view.
func Summarize(r *Relation) []AttrSummary {
	m := r.Schema.M()
	out := make([]AttrSummary, m)
	for a := 0; a < m; a++ {
		s := AttrSummary{Name: r.Schema.Attrs[a].Name, Kind: r.Schema.Attrs[a].Kind}
		if s.Kind == Text {
			seen := map[string]bool{}
			for _, t := range r.Tuples {
				v := t[a].Str
				seen[v] = true
				if l := len([]rune(v)); l > s.MaxLen {
					s.MaxLen = l
				}
			}
			s.Distinct = len(seen)
			out[a] = s
			continue
		}
		seen := map[float64]bool{}
		s.Min, s.Max = math.Inf(1), math.Inf(-1)
		mean, m2 := 0.0, 0.0
		for i, t := range r.Tuples {
			v := t[a].Num
			seen[v] = true
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
			d := v - mean
			mean += d / float64(i+1)
			m2 += d * (v - mean)
		}
		if r.N() == 0 {
			s.Min, s.Max = 0, 0
		} else {
			s.Mean = mean
			s.StdDev = math.Sqrt(m2 / float64(r.N()))
		}
		s.Distinct = len(seen)
		out[a] = s
	}
	return out
}

// FprintSummary renders the profile as an aligned table.
func FprintSummary(w io.Writer, r *Relation) {
	sums := Summarize(r)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "attribute\tkind\tdistinct\tmin\tmax\tmean\tstddev")
	for _, s := range sums {
		if s.Kind == Text {
			fmt.Fprintf(tw, "%s\t%s\t%d\t-\t-\t-\t(maxlen %d)\n", s.Name, s.Kind, s.Distinct, s.MaxLen)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\n",
			s.Name, s.Kind, s.Distinct, s.Min, s.Max, s.Mean, s.StdDev)
	}
	tw.Flush()
}

// PairwiseDistanceQuantiles samples up to pairs tuple pairs and returns the
// requested quantiles of their distances — a quick feel for workable ε
// ranges. The qs must be in [0, 1].
func PairwiseDistanceQuantiles(r *Relation, pairs int, qs []float64, seed int64) []float64 {
	n := r.N()
	if n < 2 || pairs < 1 {
		out := make([]float64, len(qs))
		return out
	}
	rng := newLCG(seed)
	ds := make([]float64, 0, pairs)
	for k := 0; k < pairs; k++ {
		i := int(rng.next() % uint64(n))
		j := int(rng.next() % uint64(n))
		if i == j {
			continue
		}
		ds = append(ds, r.Schema.Dist(r.Tuples[i], r.Tuples[j]))
	}
	if len(ds) == 0 {
		return make([]float64, len(qs))
	}
	sort.Float64s(ds)
	out := make([]float64, len(qs))
	for k, q := range qs {
		idx := int(math.Ceil(q*float64(len(ds)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ds) {
			idx = len(ds) - 1
		}
		out[k] = ds[idx]
	}
	return out
}

// lcg is a tiny deterministic generator so summary sampling needs no
// math/rand state.
type lcg struct{ s uint64 }

func newLCG(seed int64) *lcg { return &lcg{s: uint64(seed)*6364136223846793005 + 1442695040888963407} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 17
}
