package data

import (
	"math"
	"testing"
)

func TestScaleByStdDev(t *testing.T) {
	r := NewRelation(NewNumericSchema("small", "big"))
	for i := 0; i < 10; i++ {
		r.Append(Tuple{Num(float64(i)), Num(float64(i) * 1000)})
	}
	prev, err := ScaleByStdDev(r)
	if err != nil {
		t.Fatal(err)
	}
	if prev[0] != 0 || prev[1] != 0 {
		t.Errorf("previous scales = %v", prev)
	}
	// After scaling, both attributes contribute identically to distances.
	d01 := r.Schema.AttrDist(0, r.Tuples[0][0], r.Tuples[9][0])
	d11 := r.Schema.AttrDist(1, r.Tuples[0][1], r.Tuples[9][1])
	if math.Abs(d01-d11) > 1e-9 {
		t.Errorf("scaled per-attribute distances differ: %v vs %v", d01, d11)
	}
	if err := RestoreScales(r, prev); err != nil {
		t.Fatal(err)
	}
	if r.Schema.Attrs[1].Scale != 0 {
		t.Error("restore failed")
	}
}

func TestScaleByRange(t *testing.T) {
	r := NewRelation(NewNumericSchema("x"))
	for i := 0; i <= 10; i++ {
		r.Append(Tuple{Num(float64(i))})
	}
	if _, err := ScaleByRange(r); err != nil {
		t.Fatal(err)
	}
	// Full-range distance is exactly 1.
	if got := r.Schema.Dist(r.Tuples[0], r.Tuples[10]); math.Abs(got-1) > 1e-12 {
		t.Errorf("range-scaled distance = %v, want 1", got)
	}
}

func TestScaleConstantAttribute(t *testing.T) {
	r := NewRelation(NewNumericSchema("k"))
	for i := 0; i < 5; i++ {
		r.Append(Tuple{Num(7)})
	}
	if _, err := ScaleByStdDev(r); err != nil {
		t.Fatal(err)
	}
	if r.Schema.Attrs[0].Scale != 1 {
		t.Errorf("constant attribute scale = %v, want 1", r.Schema.Attrs[0].Scale)
	}
}

func TestScaleSkipsText(t *testing.T) {
	s := &Schema{Attrs: []Attribute{
		{Name: "w", Kind: Text, Scale: 3},
		{Name: "x", Kind: Numeric},
	}}
	r := NewRelation(s)
	for i := 0; i < 5; i++ {
		r.Append(Tuple{Str("a"), Num(float64(i))})
	}
	if _, err := ScaleByStdDev(r); err != nil {
		t.Fatal(err)
	}
	if s.Attrs[0].Scale != 3 {
		t.Error("text attribute scale changed")
	}
	if s.Attrs[1].Scale <= 0 {
		t.Error("numeric attribute scale not set")
	}
}

func TestScaleErrors(t *testing.T) {
	r := NewRelation(NewNumericSchema("x"))
	if _, err := ScaleByStdDev(r); err == nil {
		t.Error("empty relation accepted")
	}
	r.Append(Tuple{Num(1)})
	if err := RestoreScales(r, []float64{1, 2}); err == nil {
		t.Error("wrong-arity restore accepted")
	}
}
