package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV encodes the relation with a typed header: each column is written
// as "name:numeric" or "name:text" so the schema round-trips.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.Schema.M())
	for i, a := range r.Schema.Attrs {
		header[i] = a.Name + ":" + a.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: write header: %w", err)
	}
	row := make([]string, r.Schema.M())
	for _, t := range r.Tuples {
		for i, v := range t {
			if r.Schema.Attrs[i].Kind == Text {
				row[i] = v.Str
			} else {
				row[i] = strconv.FormatFloat(v.Num, 'g', -1, 64)
			}
		}
		// encoding/csv writes a single empty field as a blank line, which
		// its reader then skips entirely; force quotes so the record
		// survives the round trip.
		if len(row) == 1 && row[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("data: write row: %w", err)
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return fmt.Errorf("data: write row: %w", err)
			}
			continue
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a relation written by WriteCSV. Columns without a
// ":numeric"/":text" suffix are treated as numeric when every value parses
// as a float and as text otherwise.
func ReadCSV(rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("data: csv has no header")
	}
	header := records[0]
	rows := records[1:]
	schema := &Schema{Attrs: make([]Attribute, len(header))}
	typed := make([]bool, len(header))
	for i, h := range header {
		name, kind, ok := strings.Cut(h, ":")
		if ok {
			switch kind {
			case "numeric":
				schema.Attrs[i] = Attribute{Name: name, Kind: Numeric}
				typed[i] = true
			case "text":
				schema.Attrs[i] = Attribute{Name: name, Kind: Text}
				typed[i] = true
			default:
				schema.Attrs[i] = Attribute{Name: h, Kind: Numeric}
			}
		} else {
			schema.Attrs[i] = Attribute{Name: h, Kind: Numeric}
		}
	}
	// Infer kinds for untyped columns.
	for i := range header {
		if typed[i] {
			continue
		}
		for _, row := range rows {
			if i >= len(row) {
				continue
			}
			if _, err := strconv.ParseFloat(row[i], 64); err != nil {
				schema.Attrs[i].Kind = Text
				break
			}
		}
	}
	rel := NewRelation(schema)
	for ri, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("data: row %d has %d fields, want %d", ri+1, len(row), len(header))
		}
		t := make(Tuple, len(row))
		for i, cell := range row {
			if schema.Attrs[i].Kind == Text {
				t[i] = Str(cell)
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("data: row %d column %q: %w", ri+1, schema.Attrs[i].Name, err)
			}
			t[i] = Num(v)
		}
		rel.Append(t)
	}
	return rel, nil
}
