package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/metric"
)

// MixedSpec parameterizes a heterogeneous numeric+text dataset in the
// style of a business directory: each record carries identifying text
// attributes (name/city/type, record-linkage style as in GenRestaurant)
// plus numeric measurements (rating, price, coordinates). The mix is the
// worst case for the distance layer — per-value kind branches, O(len²)
// string metrics, and repeated evaluation of identical string pairs —
// which makes it the fixture for the compiled-kernel benchmarks.
type MixedSpec struct {
	Name string
	// N tuples, Entities distinct businesses (N−Entities duplicates).
	N, Entities int
	// DirtyFrac is the fraction of tuples corrupted with typos or
	// numeric shifts.
	DirtyFrac float64
	// Eps and Eta are the recorded distance constraints.
	Eps  float64
	Eta  int
	Seed int64
}

// GenMixed builds the mixed numeric+text dataset. Chain-mates share
// name/city/type exactly and sit near each other numerically, so every
// inlier has several ε-neighbors; dirty tuples carry heavy typos in a
// text attribute or a large numeric shift.
func GenMixed(sp MixedSpec) (*Dataset, error) {
	if sp.N <= 0 || sp.Entities <= 0 || sp.Entities > sp.N {
		return nil, fmt.Errorf("data: invalid mixed spec n=%d entities=%d", sp.N, sp.Entities)
	}
	rng := rand.New(rand.NewSource(sp.Seed))

	// name and type deliberately leave Text nil to exercise the default
	// Levenshtein path; city uses Needleman–Wunsch so both resolved text
	// metrics appear in one schema. price is down-weighted by its scale
	// so natural spread stays within ε.
	schema := &Schema{Attrs: []Attribute{
		{Name: "name", Kind: Text, Scale: 1},
		{Name: "city", Kind: Text, Text: metric.NeedlemanWunsch, Scale: 1},
		{Name: "type", Kind: Text, Scale: 1},
		{Name: "rating", Kind: Numeric, Scale: 1},
		{Name: "price", Kind: Numeric, Scale: 10},
		{Name: "x", Kind: Numeric, Scale: 1},
		{Name: "y", Kind: Numeric, Scale: 1},
	}}

	type entity struct {
		name, city, typ string
		rating, price   float64
		x, y            float64
	}
	// Chains of 4–8 branches share name/city/type and cluster around the
	// chain's numeric profile, giving every inlier η-many ε-neighbors.
	entities := make([]entity, 0, sp.Entities)
	for len(entities) < sp.Entities {
		name := rstNameParts1[rng.Intn(len(rstNameParts1))] + " " + rstNameParts2[rng.Intn(len(rstNameParts2))]
		city := rstCities[rng.Intn(len(rstCities))]
		typ := rstTypes[rng.Intn(len(rstTypes))]
		baseRating := 1 + 4*rng.Float64()
		basePrice := 10 + 40*rng.Float64()
		baseX, baseY := 10*rng.Float64(), 10*rng.Float64()
		branches := 4 + rng.Intn(5)
		for b := 0; b < branches && len(entities) < sp.Entities; b++ {
			entities = append(entities, entity{
				name:   name,
				city:   city,
				typ:    typ,
				rating: clampF(baseRating+0.3*rng.NormFloat64(), 0, 5),
				price:  basePrice + 2*rng.NormFloat64(),
				x:      baseX + 0.3*rng.NormFloat64(),
				y:      baseY + 0.3*rng.NormFloat64(),
			})
		}
	}

	ds := &Dataset{
		Name:    sp.Name,
		Rel:     NewRelation(schema),
		Labels:  make([]int, sp.N),
		Dirty:   make([]AttrMask, sp.N),
		Natural: make([]bool, sp.N),
		Clean:   make([]Tuple, sp.N),
		Eps:     sp.Eps,
		Eta:     sp.Eta,
		Classes: sp.Entities,
	}

	toTuple := func(e entity) Tuple {
		return Tuple{Str(e.name), Str(e.city), Str(e.typ), Num(e.rating), Num(e.price), Num(e.x), Num(e.y)}
	}
	for i, e := range entities {
		ds.Rel.Append(toTuple(e))
		ds.Labels[i] = i
	}
	// Duplicates: re-recordings of a random entity with fresh measurement
	// noise and occasionally a light text variation.
	dups := sp.N - sp.Entities
	for d := 0; d < dups; d++ {
		src := rng.Intn(sp.Entities)
		v := entities[src]
		v.rating = clampF(v.rating+0.1*rng.NormFloat64(), 0, 5)
		v.price += rng.NormFloat64()
		v.x += 0.1 * rng.NormFloat64()
		v.y += 0.1 * rng.NormFloat64()
		if rng.Intn(4) == 0 {
			v.name = typo(rng, v.name, 1)
		}
		ds.Rel.Append(toTuple(v))
		ds.Labels[sp.Entities+d] = src
	}

	// Dirty outliers: heavy typos in name or city, or a numeric shift far
	// beyond the natural spread, enough to violate (ε, η).
	nDirty := int(math.Round(sp.DirtyFrac * float64(sp.N)))
	perm := rng.Perm(sp.N)
	done := 0
	for _, i := range perm {
		if done >= nDirty {
			break
		}
		if ds.Dirty[i] != 0 {
			continue
		}
		ds.Clean[i] = ds.Rel.Tuples[i].Clone()
		a := 0
		switch rng.Intn(4) {
		case 0: // city typo
			a = 1
		case 1: // coordinate shift
			a = 5 + rng.Intn(2)
		}
		if schema.Attrs[a].Kind == Text {
			ds.Rel.Tuples[i][a] = Str(typo(rng, ds.Rel.Tuples[i][a].Str, 6+rng.Intn(4)))
		} else {
			shift := 8 + 6*rng.Float64()
			if rng.Intn(2) == 0 {
				shift = -shift
			}
			ds.Rel.Tuples[i][a] = Num(ds.Rel.Tuples[i][a].Num + shift)
		}
		ds.Dirty[i] = AttrMask(0).With(a)
		done++
	}
	return ds, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
