package data

import (
	"fmt"
	"math"
	"math/rand"
)

// GPSSpec parameterizes the trajectory generator standing in for the
// paper's private GPS dataset (Table 1: 8125 tuples, 3 attributes
// Time/Longitude/Latitude, 3 trajectories, 837 outliers). Dirty outliers
// corrupt exactly one attribute (the t₁₃ longitude / t₂₄ timestamp errors of
// Figure 2); natural outliers are device-testing points with all three
// values off-trajectory (t₂₉/t₃₀).
type GPSSpec struct {
	Name string
	// N tuples across Trajectories walks.
	N, Trajectories int
	// Step is the mean per-reading movement in longitude/latitude units.
	Step float64
	// Domain is the coordinate range width.
	Domain float64
	// DirtyFrac / NaturalFrac are outlier fractions as in MixtureSpec.
	DirtyFrac, NaturalFrac float64
	// Eps and Eta are the recorded distance constraints.
	Eps  float64
	Eta  int
	Seed int64
}

// GenGPS builds the GPS dataset.
func GenGPS(sp GPSSpec) (*Dataset, error) {
	if sp.N <= 0 || sp.Trajectories <= 0 {
		return nil, fmt.Errorf("data: invalid gps spec n=%d trajectories=%d", sp.N, sp.Trajectories)
	}
	if sp.Step <= 0 {
		sp.Step = 3
	}
	if sp.Domain <= 0 {
		sp.Domain = 3844
	}
	rng := rand.New(rand.NewSource(sp.Seed))

	schema := &Schema{Attrs: []Attribute{
		// Time advances 1 per reading; scaling by 1/Step-ish units keeps
		// one reading of time gap comparable to one reading of movement,
		// as in the normalized distances of Example 2.
		{Name: "Time", Kind: Numeric, Scale: 1},
		{Name: "Longitude", Kind: Numeric, Scale: 1},
		{Name: "Latitude", Kind: Numeric, Scale: 1},
	}}
	ds := &Dataset{
		Name:    sp.Name,
		Rel:     NewRelation(schema),
		Labels:  make([]int, sp.N),
		Dirty:   make([]AttrMask, sp.N),
		Natural: make([]bool, sp.N),
		Clean:   make([]Tuple, sp.N),
		Eps:     sp.Eps,
		Eta:     sp.Eta,
		Classes: sp.Trajectories,
	}

	perTraj := sp.N / sp.Trajectories
	idx := 0
	for c := 0; c < sp.Trajectories; c++ {
		length := perTraj
		if c == sp.Trajectories-1 {
			length = sp.N - idx // absorb remainder
		}
		// Disjoint time ranges and separated geographic regions keep the
		// trajectories clusterable, like the three collections in Table 1.
		t0 := float64(c) * float64(perTraj) * 3
		lon := 0.2*sp.Domain + 0.6*sp.Domain*rng.Float64()
		lat := 0.2*sp.Domain + 0.6*sp.Domain*rng.Float64()
		heading := rng.Float64() * 2 * math.Pi
		for i := 0; i < length; i++ {
			heading += rng.NormFloat64() * 0.2
			lon += math.Cos(heading) * sp.Step * (0.8 + 0.4*rng.Float64())
			lat += math.Sin(heading) * sp.Step * (0.8 + 0.4*rng.Float64())
			lon = reflect(lon, 0, sp.Domain)
			lat = reflect(lat, 0, sp.Domain)
			ds.Rel.Append(Tuple{Num(t0 + float64(i)), Num(lon), Num(lat)})
			ds.Labels[idx] = c
			idx++
		}
	}

	// Natural outliers: all three attributes off any trajectory.
	nNat := int(math.Round(sp.NaturalFrac * float64(sp.N)))
	perm := rng.Perm(sp.N)
	for _, i := range perm[:minInt(nNat, sp.N)] {
		ds.Rel.Tuples[i] = Tuple{
			Num(float64(sp.N) * 3.5 * (1 + rng.Float64())), // time outside every range
			Num(rng.Float64() * 0.1 * sp.Domain),
			Num(sp.Domain - rng.Float64()*0.1*sp.Domain),
		}
		ds.Labels[i] = -1
		ds.Natural[i] = true
	}

	// Dirty outliers: exactly one attribute shifted far (≫ ε).
	nDirty := int(math.Round(sp.DirtyFrac * float64(sp.N)))
	done := 0
	for _, i := range perm {
		if done >= nDirty {
			break
		}
		if ds.Natural[i] || ds.Dirty[i] != 0 {
			continue
		}
		ds.Clean[i] = ds.Rel.Tuples[i].Clone()
		a := rng.Intn(3)
		shift := sp.Eps*8 + rng.Float64()*sp.Eps*20
		if rng.Intn(2) == 0 {
			shift = -shift
		}
		var v float64
		if a > 0 {
			v = shiftWithin(ds.Rel.Tuples[i][a].Num, shift, 0, sp.Domain)
		} else {
			// Timestamps have no fixed upper bound; only keep them ≥ 0.
			v = ds.Rel.Tuples[i][a].Num + shift
			if v < 0 {
				v = ds.Rel.Tuples[i][a].Num - shift
			}
		}
		ds.Rel.Tuples[i][a] = Num(v)
		ds.Dirty[i] = AttrMask(0).With(a)
		done++
	}
	return ds, nil
}

// reflect folds v back into [lo, hi] by mirroring at the boundaries.
func reflect(v, lo, hi float64) float64 {
	for v < lo || v > hi {
		if v < lo {
			v = 2*lo - v
		}
		if v > hi {
			v = 2*hi - v
		}
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
