package data

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV decoder never panics and that whatever it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("a:numeric,b:text\n1,x\n2,y\n")
	f.Add("a,b\nnot,numbers\n")
	f.Add("")
	f.Add("x:numeric\nNaN\n")
	f.Add("a:text\n\"quo\"\"te\"\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 4096 {
			t.Skip()
		}
		rel, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("accepted relation failed to encode: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if back.N() != rel.N() || back.Schema.M() != rel.Schema.M() {
			t.Fatalf("round-trip changed shape: %dx%d vs %dx%d",
				rel.N(), rel.Schema.M(), back.N(), back.Schema.M())
		}
	})
}
