package data

import (
	"fmt"
	"math"
	"sort"
)

// Table1Names lists the datasets of Table 1 in paper order.
func Table1Names() []string {
	return []string{"Iris", "Seeds", "WIFI", "Yeast", "Letter", "Flight", "Spam", "GPS", "Restaurant"}
}

// Table1 instantiates the synthetic stand-in for a Table 1 dataset.
// sizeScale in (0, 1] shrinks the tuple count proportionally (outlier
// fractions are preserved) so large datasets stay benchable; 1 reproduces
// the paper's full sizes (e.g. Flight: 200000 tuples). Specs follow
// Table 1's #tuple/#attribute/#class/#outlier/domain columns; ε and η use
// the paper's values where stated (Letter 3/18, Flight 10/31, GPS 15/3,
// Restaurant 4.6/3) and tuned defaults otherwise.
func Table1(name string, sizeScale float64, seed int64) (*Dataset, error) {
	if sizeScale <= 0 || sizeScale > 1 {
		return nil, fmt.Errorf("data: sizeScale %v out of (0,1]", sizeScale)
	}
	scaleN := func(n int) int {
		s := int(math.Round(float64(n) * sizeScale))
		if s < 30 {
			s = 30
		}
		return s
	}
	// ε-neighbor counts are proportional to n for the mixture datasets, so
	// the neighbor threshold η must shrink with the dataset (the paper's
	// η = 18 for Letter assumes all 20000 tuples). GPS and Restaurant
	// densities are structural (trajectory spacing, chain size) and keep
	// their η.
	scaleEta := func(eta int) int {
		s := int(math.Round(float64(eta) * sizeScale))
		// Floor of 4: below that, a handful of co-located error points can
		// satisfy each other's neighbor threshold and form fake clusters.
		if s < 4 {
			s = 4
		}
		if s > eta {
			s = eta
		}
		return s
	}
	switch name {
	case "Iris":
		return GenMixture(MixtureSpec{Name: name, N: scaleN(150), M: 4, K: 3,
			Domain: 23.25, Std: 0.2, FactorScale: 1.5, MaxDirtyAttrs: 1, DirtyFrac: 0.08, NaturalFrac: 0.02,
			Eps: 1.5, Eta: scaleEta(4), Seed: seed})
	case "Seeds":
		return GenMixture(MixtureSpec{Name: name, N: scaleN(210), M: 7, K: 4,
			Domain: 182.3, Std: 0.2, FactorScale: 1.5, DirtyFrac: 0.045, NaturalFrac: 0.012,
			Eps: 2, Eta: scaleEta(5), Seed: seed})
	case "WIFI":
		return GenMixture(MixtureSpec{Name: name, N: scaleN(2000), M: 7, K: 4,
			Domain: 42.14, Std: 0.2, FactorScale: 1.5, DirtyFrac: 0.062, NaturalFrac: 0.016,
			Eps: 2, Eta: scaleEta(10), Seed: seed})
	case "Yeast":
		return GenMixture(MixtureSpec{Name: name, N: scaleN(1299), M: 8, K: 4,
			Domain: 36.63, Std: 0.18, FactorScale: 1.5, DirtyFrac: 0.024, NaturalFrac: 0.006,
			Eps: 2, Eta: scaleEta(8), Seed: seed})
	case "Letter":
		return GenMixture(MixtureSpec{Name: name, N: scaleN(20000), M: 16, K: 26,
			Domain: 16, Std: 0.19, FactorScale: 1.5, Integer: false, DirtyFrac: 0.077, NaturalFrac: 0.019,
			Eps: 3, Eta: scaleEta(18), Seed: seed})
	case "Flight":
		return GenMixture(MixtureSpec{Name: name, N: scaleN(200000), M: 3, K: 5,
			Domain: 1272, Std: 1.5, FactorScale: 1.5, DirtyFrac: 0.08, NaturalFrac: 0.02,
			Eps: 10, Eta: scaleEta(31), Seed: seed})
	case "Spam":
		return GenMixture(MixtureSpec{Name: name, N: scaleN(4601), M: 57, K: 2,
			Domain: 32.81, Std: 0.4, FactorScale: 1.5, DirtyFrac: 0.079, NaturalFrac: 0.02,
			ActiveAttrs: 12, Eps: 5, Eta: scaleEta(10), Seed: seed})
	case "GPS":
		return GenGPS(GPSSpec{Name: name, N: scaleN(8125), Trajectories: 3,
			Step: 3, Domain: 3844, DirtyFrac: 0.09, NaturalFrac: 0.10,
			Eps: 15, Eta: 3, Seed: seed})
	case "Restaurant":
		n := scaleN(864)
		entities := n - int(math.Round(float64(n)*112.0/864.0))
		return GenRestaurant(RestaurantSpec{Name: name, N: n, Entities: entities,
			DirtyFrac: 0.10, Eps: 4.6, Eta: 3, Seed: seed})
	default:
		return nil, fmt.Errorf("data: unknown Table 1 dataset %q (known: %v)", name, Table1Names())
	}
}

// NumericTable1Names lists the Table 1 datasets with numeric schemas —
// the eight datasets of the clustering experiments (Tables 2–3).
func NumericTable1Names() []string {
	return []string{"Iris", "Seeds", "WIFI", "Yeast", "Letter", "Flight", "Spam", "GPS"}
}

// Domain returns the per-attribute value domains observed in the relation:
// for numeric attributes the sorted distinct values, for text attributes the
// sorted distinct strings (encoded as Values). It is the candidate space of
// the Exact algorithm (§2.3: "considering all the values in each
// attribute").
func Domain(r *Relation) [][]Value {
	m := r.Schema.M()
	out := make([][]Value, m)
	for a := 0; a < m; a++ {
		if r.Schema.Attrs[a].Kind == Text {
			seen := map[string]bool{}
			for _, t := range r.Tuples {
				seen[t[a].Str] = true
			}
			vals := make([]string, 0, len(seen))
			for s := range seen {
				vals = append(vals, s)
			}
			sort.Strings(vals)
			vs := make([]Value, len(vals))
			for i, s := range vals {
				vs[i] = Str(s)
			}
			out[a] = vs
			continue
		}
		seen := map[float64]bool{}
		for _, t := range r.Tuples {
			seen[t[a].Num] = true
		}
		vals := make([]float64, 0, len(seen))
		for v := range seen {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		vs := make([]Value, len(vals))
		for i, v := range vals {
			vs[i] = Num(v)
		}
		out[a] = vs
	}
	return out
}
