package data

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/metric"
)

// RestaurantSpec parameterizes the textual record-linkage dataset standing
// in for the UT Restaurant dataset (Table 1: 864 tuples, 5 attributes,
// 752 entities — i.e. 112 duplicate pairs — and 86 outliers). Records
// belong to chains (several branches share name/city/type), duplicates are
// re-recordings of one branch with small format variation, and dirty
// outliers carry heavy typos in one or two attributes (the RH10-OAG style
// errors of §1.1).
type RestaurantSpec struct {
	Name string
	// N tuples, Entities distinct restaurants (N−Entities duplicates).
	N, Entities int
	// DirtyFrac is the fraction of tuples corrupted with typos.
	DirtyFrac float64
	// Eps and Eta are the recorded distance constraints.
	Eps  float64
	Eta  int
	Seed int64
}

var (
	rstNameParts1 = []string{"golden", "silver", "blue", "royal", "little", "grand", "old", "new", "lucky", "green"}
	rstNameParts2 = []string{"dragon", "garden", "palace", "kitchen", "bistro", "grill", "corner", "house", "table", "fork"}
	rstCities     = []string{"new york", "los angeles", "chicago", "houston", "atlanta", "boston", "seattle", "denver"}
	rstTypes      = []string{"chinese", "italian", "french", "mexican", "american", "japanese", "indian", "thai"}
	rstStreets    = []string{"main", "oak", "pine", "maple", "cedar", "elm", "lake", "hill", "park", "river"}
)

// GenRestaurant builds the Restaurant dataset.
func GenRestaurant(sp RestaurantSpec) (*Dataset, error) {
	if sp.N <= 0 || sp.Entities <= 0 || sp.Entities > sp.N {
		return nil, fmt.Errorf("data: invalid restaurant spec n=%d entities=%d", sp.N, sp.Entities)
	}
	rng := rand.New(rand.NewSource(sp.Seed))

	// Scaled Needleman–Wunsch distances: address and phone vary across
	// branches of a chain, so they are down-weighted to keep chain-mates
	// within ε of each other; name/city/type dominate.
	schema := &Schema{Attrs: []Attribute{
		{Name: "name", Kind: Text, Text: metric.NeedlemanWunsch, Scale: 1},
		{Name: "addr", Kind: Text, Text: metric.NeedlemanWunsch, Scale: 4},
		{Name: "city", Kind: Text, Text: metric.NeedlemanWunsch, Scale: 1},
		{Name: "phone", Kind: Text, Text: metric.NeedlemanWunsch, Scale: 4},
		{Name: "type", Kind: Text, Text: metric.NeedlemanWunsch, Scale: 1},
	}}

	type entity struct {
		name, addr, city, phone, typ string
	}
	// Chains of 4–8 branches sharing name/city/type give every inlier
	// several ε-neighbors (η = 3 in Figure 8).
	entities := make([]entity, 0, sp.Entities)
	chain := 0
	for len(entities) < sp.Entities {
		name := rstNameParts1[rng.Intn(len(rstNameParts1))] + " " + rstNameParts2[rng.Intn(len(rstNameParts2))]
		city := rstCities[rng.Intn(len(rstCities))]
		typ := rstTypes[rng.Intn(len(rstTypes))]
		branches := 4 + rng.Intn(5)
		for b := 0; b < branches && len(entities) < sp.Entities; b++ {
			entities = append(entities, entity{
				name:  name,
				addr:  fmt.Sprintf("%d %s st", 10+rng.Intn(990), rstStreets[rng.Intn(len(rstStreets))]),
				city:  city,
				phone: fmt.Sprintf("%03d-%03d-%04d", 200+rng.Intn(700), rng.Intn(1000), rng.Intn(10000)),
				typ:   typ,
			})
		}
		chain++
	}

	ds := &Dataset{
		Name:    sp.Name,
		Rel:     NewRelation(schema),
		Labels:  make([]int, sp.N),
		Dirty:   make([]AttrMask, sp.N),
		Natural: make([]bool, sp.N),
		Clean:   make([]Tuple, sp.N),
		Eps:     sp.Eps,
		Eta:     sp.Eta,
		Classes: sp.Entities,
	}

	toTuple := func(e entity) Tuple {
		return Tuple{Str(e.name), Str(e.addr), Str(e.city), Str(e.phone), Str(e.typ)}
	}
	for i, e := range entities {
		ds.Rel.Append(toTuple(e))
		ds.Labels[i] = i
	}
	// Duplicates: re-record N−Entities randomly chosen entities with a
	// small format variation (abbreviation, spacing), still matchable at
	// n-gram similarity 0.7.
	dups := sp.N - sp.Entities
	for d := 0; d < dups; d++ {
		src := rng.Intn(sp.Entities)
		e := entities[src]
		v := e
		switch rng.Intn(3) {
		case 0:
			v.addr = strings.Replace(v.addr, " st", " street", 1)
		case 1:
			v.name = strings.Replace(v.name, " ", "  ", 1)
		default:
			v.phone = strings.Replace(v.phone, "-", "/", 1)
		}
		ds.Rel.Append(toTuple(v))
		ds.Labels[sp.Entities+d] = src
	}

	// Dirty outliers: heavy typos (confusable swaps plus random edits) in
	// one attribute, enough edits to violate the distance constraints.
	nDirty := int(math.Round(sp.DirtyFrac * float64(sp.N)))
	perm := rng.Perm(sp.N)
	done := 0
	for _, i := range perm {
		if done >= nDirty {
			break
		}
		if ds.Dirty[i] != 0 {
			continue
		}
		ds.Clean[i] = ds.Rel.Tuples[i].Clone()
		// Corrupt the name or the city — the unscaled attributes, so the
		// damage registers against ε.
		a := 0
		if rng.Intn(3) == 0 {
			a = 2
		}
		ds.Rel.Tuples[i][a] = Str(typo(rng, ds.Rel.Tuples[i][a].Str, 5+rng.Intn(4)))
		ds.Dirty[i] = AttrMask(0).With(a)
		done++
	}
	return ds, nil
}

// typo applies k random character edits: confusable substitutions when
// possible, otherwise random letter substitutions and deletions.
func typo(rng *rand.Rand, s string, k int) string {
	r := []rune(s)
	for e := 0; e < k && len(r) > 1; e++ {
		p := rng.Intn(len(r))
		switch rng.Intn(3) {
		case 0: // substitution
			r[p] = rune('a' + rng.Intn(26))
		case 1: // deletion
			r = append(r[:p], r[p+1:]...)
		default: // insertion
			r = append(r[:p], append([]rune{rune('a' + rng.Intn(26))}, r[p:]...)...)
		}
	}
	return string(r)
}
