package data

import (
	"fmt"
	"math"
)

// Normalization rescales numeric attributes so heterogeneous columns
// contribute comparably to the L2 aggregate — the preprocessing real
// deployments apply before choosing (ε, η). Both methods work by setting
// Attribute.Scale (the distance divisor) rather than rewriting values, so
// the original data is preserved and CSV round-trips stay exact.

// ScaleByStdDev sets each numeric attribute's Scale to its standard
// deviation (z-score geometry): a distance of 1 on any attribute then
// means "one standard deviation apart". Constant attributes keep scale 1.
// The schema is modified in place; the previous scales are returned so
// callers can restore them.
func ScaleByStdDev(r *Relation) ([]float64, error) {
	return setScales(r, func(vals []float64) float64 {
		n := float64(len(vals))
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= n
		s := 0.0
		for _, v := range vals {
			s += (v - mean) * (v - mean)
		}
		return math.Sqrt(s / n)
	})
}

// ScaleByRange sets each numeric attribute's Scale to its value range
// (min-max geometry): a distance of 1 means "the full observed range
// apart". Constant attributes keep scale 1. Returns the previous scales.
func ScaleByRange(r *Relation) ([]float64, error) {
	return setScales(r, func(vals []float64) float64 {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return mx - mn
	})
}

// RestoreScales puts back scales previously returned by ScaleByStdDev or
// ScaleByRange.
func RestoreScales(r *Relation, scales []float64) error {
	if len(scales) != r.Schema.M() {
		return fmt.Errorf("data: %d scales for %d attributes", len(scales), r.Schema.M())
	}
	for a := range r.Schema.Attrs {
		r.Schema.Attrs[a].Scale = scales[a]
	}
	return nil
}

func setScales(r *Relation, measure func([]float64) float64) ([]float64, error) {
	if r.N() == 0 {
		return nil, fmt.Errorf("data: cannot derive scales from an empty relation")
	}
	prev := make([]float64, r.Schema.M())
	vals := make([]float64, r.N())
	for a := range r.Schema.Attrs {
		prev[a] = r.Schema.Attrs[a].Scale
		if r.Schema.Attrs[a].Kind != Numeric {
			continue
		}
		for i, t := range r.Tuples {
			vals[i] = t[a].Num
		}
		s := measure(vals)
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			s = 1
		}
		r.Schema.Attrs[a].Scale = s
	}
	return prev, nil
}
