package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metric"
)

func twoColSchema() *Schema {
	return NewNumericSchema("x", "y")
}

func TestSchemaDistL2(t *testing.T) {
	s := twoColSchema()
	a := Tuple{Num(0), Num(0)}
	b := Tuple{Num(3), Num(4)}
	if got := s.Dist(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 distance = %v, want 5", got)
	}
}

func TestSchemaDistNorms(t *testing.T) {
	s := twoColSchema()
	a := Tuple{Num(0), Num(0)}
	b := Tuple{Num(3), Num(4)}
	s.Norm = metric.L1
	if got := s.Dist(a, b); got != 7 {
		t.Errorf("L1 distance = %v, want 7", got)
	}
	s.Norm = metric.LInf
	if got := s.Dist(a, b); got != 4 {
		t.Errorf("Linf distance = %v, want 4", got)
	}
}

func TestSchemaDistOnSubset(t *testing.T) {
	s := twoColSchema()
	a := Tuple{Num(0), Num(0)}
	b := Tuple{Num(3), Num(4)}
	if got := s.DistOn(a, b, AttrMask(0).With(0)); got != 3 {
		t.Errorf("distance on {x} = %v, want 3", got)
	}
	if got := s.DistOn(a, b, AttrMask(0).With(1)); got != 4 {
		t.Errorf("distance on {y} = %v, want 4", got)
	}
	// Empty mask yields 0 (paper convention Δ(·[∅],·[∅]) = 0).
	if got := s.DistOn(a, b, 0); got != 0 {
		t.Errorf("distance on ∅ = %v, want 0", got)
	}
}

func TestSchemaDistMonotonicity(t *testing.T) {
	// Δ(t1[X], t2[X]) ≤ Δ(t1[X∪{A}], t2[X∪{A}]) — the §2.1.1 property the
	// DISC bounds rely on.
	s := NewNumericSchema("a", "b", "c", "d")
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		t1 := make(Tuple, 4)
		t2 := make(Tuple, 4)
		for i := range t1 {
			t1[i] = Num(rng.Float64() * 10)
			t2[i] = Num(rng.Float64() * 10)
		}
		x := AttrMask(rng.Intn(16))
		a := rng.Intn(4)
		sub := s.DistOn(t1, t2, x)
		sup := s.DistOn(t1, t2, x.With(a))
		if sub > sup+1e-12 {
			t.Fatalf("monotonicity violated: d[%b]=%v > d[%b]=%v", x, sub, x.With(a), sup)
		}
	}
}

func TestTextAttrDistance(t *testing.T) {
	s := &Schema{Attrs: []Attribute{
		{Name: "zip", Kind: Text},
	}}
	a := Tuple{Str("RH10-OAG")}
	b := Tuple{Str("RH10-0AG")}
	if got := s.Dist(a, b); got != 1 {
		t.Errorf("Levenshtein default = %v, want 1", got)
	}
	s.Attrs[0].Text = metric.NeedlemanWunsch
	if got := s.Dist(a, b); got != metric.SubCloseCost {
		t.Errorf("NW confusable = %v, want %v", got, metric.SubCloseCost)
	}
	s.Attrs[0].Scale = 2
	if got := s.Dist(a, b); got != metric.SubCloseCost/2 {
		t.Errorf("scaled text distance = %v, want %v", got, metric.SubCloseCost/2)
	}
}

func TestAttrScale(t *testing.T) {
	s := &Schema{Attrs: []Attribute{{Name: "t", Kind: Numeric, Scale: 10}}}
	if got := s.Dist(Tuple{Num(0)}, Tuple{Num(5)}); got != 0.5 {
		t.Errorf("scaled distance = %v, want 0.5", got)
	}
}

func TestAttrMaskOps(t *testing.T) {
	m := AttrMask(0).With(0).With(3)
	if !m.Has(0) || !m.Has(3) || m.Has(1) {
		t.Error("Has/With broken")
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d", m.Count())
	}
	if m.Without(0).Has(0) {
		t.Error("Without broken")
	}
	if got := m.Complement(4); got != AttrMask(0).With(1).With(2) {
		t.Errorf("Complement = %b", got)
	}
	if got := m.Attrs(4); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Attrs = %v", got)
	}
	if FullMask(3) != 7 {
		t.Errorf("FullMask(3) = %b", FullMask(3))
	}
	if FullMask(64) != ^AttrMask(0) {
		t.Error("FullMask(64) should be all ones")
	}
}

func TestCompose(t *testing.T) {
	base := Tuple{Num(1), Num(2), Num(3)}
	other := Tuple{Num(10), Num(20), Num(30)}
	got := Compose(base, other, AttrMask(0).With(1))
	want := Tuple{Num(10), Num(2), Num(30)}
	for i := range want {
		if got[i].Num != want[i].Num {
			t.Fatalf("Compose = %v, want %v", got, want)
		}
	}
	// Composing must not alias the inputs.
	got[0] = Num(99)
	if other[0].Num == 99 || base[0].Num == 99 {
		t.Error("Compose aliases its inputs")
	}
}

func TestDiffMask(t *testing.T) {
	s := NewNumericSchema("a", "b", "c")
	x := Tuple{Num(1), Num(2), Num(3)}
	y := Tuple{Num(1), Num(5), Num(3)}
	if got := DiffMask(s, x, y); got != AttrMask(0).With(1) {
		t.Errorf("DiffMask = %b", got)
	}
	if got := DiffMask(s, x, x); got != 0 {
		t.Errorf("self DiffMask = %b", got)
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := NewNumericSchema("a", "b").Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	if err := (&Schema{}).Validate(); err == nil {
		t.Error("empty schema accepted")
	}
	if err := NewNumericSchema("a", "a").Validate(); err == nil {
		t.Error("duplicate names accepted")
	}
	if err := NewNumericSchema("a", "").Validate(); err == nil {
		t.Error("empty name accepted")
	}
	wide := make([]string, 65)
	for i := range wide {
		wide[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	if err := NewNumericSchema(wide...).Validate(); err == nil {
		t.Error("65-attribute schema accepted")
	}
}

func TestRelationAppendPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	r := NewRelation(twoColSchema())
	r.Append(Tuple{Num(1)})
}

func TestRelationCloneIsDeep(t *testing.T) {
	r := NewRelation(twoColSchema())
	r.Append(Tuple{Num(1), Num(2)})
	c := r.Clone()
	c.Tuples[0][0] = Num(99)
	if r.Tuples[0][0].Num != 1 {
		t.Error("Clone shares tuple storage")
	}
}

func TestRelationSubset(t *testing.T) {
	r := NewRelation(twoColSchema())
	for i := 0; i < 5; i++ {
		r.Append(Tuple{Num(float64(i)), Num(0)})
	}
	sub := r.Subset([]int{4, 0})
	if sub.N() != 2 || sub.Tuples[0][0].Num != 4 || sub.Tuples[1][0].Num != 0 {
		t.Errorf("Subset wrong: %v", sub.Tuples)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	s := NewNumericSchema("a", "b", "c")
	bound := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e6)
	}
	f := func(a1, a2, b1, b2, c1, c2 float64) bool {
		t1 := Tuple{Num(bound(a1)), Num(bound(b1)), Num(bound(c1))}
		t2 := Tuple{Num(bound(a2)), Num(bound(b2)), Num(bound(c2))}
		return math.Abs(s.Dist(t1, t2)-s.Dist(t2, t1)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleProperty(t *testing.T) {
	s := NewNumericSchema("a", "b")
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		mk := func() Tuple {
			return Tuple{Num(rng.Float64() * 10), Num(rng.Float64() * 10)}
		}
		x, y, z := mk(), mk(), mk()
		if s.Dist(x, y) > s.Dist(x, z)+s.Dist(z, y)+1e-9 {
			t.Fatalf("triangle violated for %v %v %v", x, y, z)
		}
	}
}

func TestValidateValues(t *testing.T) {
	r := NewRelation(NewNumericSchema("x"))
	r.Append(Tuple{Num(1)})
	if err := ValidateValues(r); err != nil {
		t.Errorf("finite values rejected: %v", err)
	}
	r.Append(Tuple{Num(math.NaN())})
	if err := ValidateValues(r); err == nil {
		t.Error("NaN accepted")
	}
	r.Tuples[1] = Tuple{Num(math.Inf(1))}
	if err := ValidateValues(r); err == nil {
		t.Error("Inf accepted")
	}
	// Text attributes are exempt.
	s := &Schema{Attrs: []Attribute{{Name: "w", Kind: Text}}}
	tr := NewRelation(s)
	tr.Append(Tuple{Str("ok")})
	if err := ValidateValues(tr); err != nil {
		t.Errorf("text relation rejected: %v", err)
	}
}

func TestComposeDiffMaskProperty(t *testing.T) {
	// DiffMask(base, Compose(base, other, x)) never touches X: composing
	// keeps base[X], so differences live in the complement.
	s := NewNumericSchema("a", "b", "c", "d")
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 300; trial++ {
		base := make(Tuple, 4)
		other := make(Tuple, 4)
		for i := range base {
			base[i] = Num(math.Floor(rng.Float64() * 4))
			other[i] = Num(math.Floor(rng.Float64() * 4))
		}
		x := AttrMask(rng.Intn(16))
		comp := Compose(base, other, x)
		diff := DiffMask(s, base, comp)
		if diff&x != 0 {
			t.Fatalf("compose changed unadjusted attributes: x=%b diff=%b", x, diff)
		}
		// And the composite agrees with other off X wherever they differ.
		for a := 0; a < 4; a++ {
			if !x.Has(a) && comp[a].Num != other[a].Num {
				t.Fatalf("composite attr %d = %v, want %v", a, comp[a].Num, other[a].Num)
			}
		}
	}
}

func TestAttrMaskProperties(t *testing.T) {
	f := func(raw uint16, attr uint8) bool {
		m := AttrMask(raw)
		a := int(attr % 16)
		with := m.With(a)
		without := m.Without(a)
		if !with.Has(a) || without.Has(a) {
			return false
		}
		if with.Count() < m.Count() || without.Count() > m.Count() {
			return false
		}
		// Complement partitions the attribute set.
		comp := m.Complement(16)
		return m&comp == 0 && (m|comp) == FullMask(16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
