package data

import (
	"fmt"
	"math"
	"math/rand"
)

// MixtureSpec parameterizes the Gaussian-mixture generator that stands in
// for the UCI-style numeric datasets of Table 1 (see DESIGN.md §3 for the
// substitution rationale). Classes are well-separated Gaussian blobs; dirty
// outliers corrupt 1–MaxDirtyAttrs attributes of in-cluster tuples by a
// large shift (the inch-vs-cm style error of Figure 1); natural outliers
// are displaced on every attribute (the t₁/t₂₉/t₃₀ points of §1.2).
type MixtureSpec struct {
	Name string
	// N tuples, M numeric attributes, K classes.
	N, M, K int
	// Domain is the width of each attribute's value range [0, Domain].
	Domain float64
	// Std is the per-attribute standard deviation within a class.
	Std float64
	// Sep is the minimum center separation as a multiple of Std
	// (default 8).
	Sep float64
	// DirtyFrac is the fraction of tuples corrupted with attribute errors.
	DirtyFrac float64
	// NaturalFrac is the fraction of tuples replaced by natural outliers.
	NaturalFrac float64
	// MaxDirtyAttrs bounds how many attributes one error corrupts
	// (default 2; errors "occur minimally on only a fraction of
	// attributes", §2.2).
	MaxDirtyAttrs int
	// Integer rounds values to integers (the Letter dataset's 0–15 grid).
	Integer bool
	// FactorScale controls within-class correlation: each class gets
	// min(3, m) latent factor directions of magnitude FactorScale·Std, so
	// clusters are elongated and attribute values co-vary — real
	// UCI-style structure rather than spherical blobs. 0 means 2.5; set
	// negative to disable.
	FactorScale float64
	// ActiveAttrs, when > 0 and < M, makes the data sparse in the
	// Spambase style: each class is informative on only ActiveAttrs
	// attributes; the rest sit near a common baseline with tiny noise
	// (word frequencies that are ≈ 0 for most mails). Distances then
	// concentrate on few attributes, as in the real wide datasets.
	ActiveAttrs int
	// Eps and Eta are the distance constraints to record on the dataset.
	Eps float64
	Eta int
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
}

func (sp *MixtureSpec) defaults() {
	if sp.Sep <= 0 {
		sp.Sep = 8
	}
	if sp.MaxDirtyAttrs <= 0 {
		sp.MaxDirtyAttrs = 2
	}
	if sp.Std <= 0 {
		sp.Std = 1
	}
	if sp.Domain <= 0 {
		sp.Domain = 100
	}
}

// GenMixture builds a Dataset from the spec.
func GenMixture(sp MixtureSpec) (*Dataset, error) {
	sp.defaults()
	if sp.N <= 0 || sp.M <= 0 || sp.M > 64 || sp.K <= 0 {
		return nil, fmt.Errorf("data: invalid mixture spec n=%d m=%d k=%d", sp.N, sp.M, sp.K)
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	centers := placeCenters(rng, sp.K, sp.M, sp.Domain, sp.Sep*sp.Std)

	// Per-class shape: heteroscedastic per-attribute stds and latent
	// factor directions that correlate the attributes.
	factorScale := sp.FactorScale
	if factorScale == 0 {
		factorScale = 2.5
	}
	nf := 3
	if sp.M < nf {
		nf = sp.M
	}
	if factorScale < 0 {
		nf = 0
	}
	stdMul := make([][]float64, sp.K)
	factors := make([][][]float64, sp.K)
	active := make([][]bool, sp.K)
	sparse := sp.ActiveAttrs > 0 && sp.ActiveAttrs < sp.M
	baseline := 0.05 * sp.Domain
	for c := 0; c < sp.K; c++ {
		active[c] = make([]bool, sp.M)
		if sparse {
			for _, a := range rng.Perm(sp.M)[:sp.ActiveAttrs] {
				active[c][a] = true
			}
			for a := 0; a < sp.M; a++ {
				if !active[c][a] {
					centers[c][a] = baseline
				}
			}
		} else {
			for a := range active[c] {
				active[c][a] = true
			}
		}
		stdMul[c] = make([]float64, sp.M)
		for a := 0; a < sp.M; a++ {
			if active[c][a] {
				stdMul[c][a] = 0.6 + 1.2*rng.Float64()
			} else {
				stdMul[c][a] = 0.05
			}
		}
		factors[c] = make([][]float64, nf)
		for f := 0; f < nf; f++ {
			dir := make([]float64, sp.M)
			norm := 0.0
			for a := 0; a < sp.M; a++ {
				if !active[c][a] {
					continue
				}
				dir[a] = rng.NormFloat64()
				norm += dir[a] * dir[a]
			}
			if norm == 0 {
				norm = 1
			}
			norm = math.Sqrt(norm)
			for a := 0; a < sp.M; a++ {
				dir[a] = dir[a] / norm * factorScale * sp.Std
			}
			factors[c][f] = dir
		}
	}

	names := make([]string, sp.M)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	schema := NewNumericSchema(names...)
	ds := &Dataset{
		Name:    sp.Name,
		Rel:     NewRelation(schema),
		Labels:  make([]int, sp.N),
		Dirty:   make([]AttrMask, sp.N),
		Natural: make([]bool, sp.N),
		Clean:   make([]Tuple, sp.N),
		Eps:     sp.Eps,
		Eta:     sp.Eta,
		Classes: sp.K,
	}

	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > sp.Domain {
			return sp.Domain
		}
		if sp.Integer {
			return math.Round(v)
		}
		return v
	}

	for i := 0; i < sp.N; i++ {
		c := i % sp.K // round-robin keeps class sizes balanced
		t := make(Tuple, sp.M)
		off := make([]float64, sp.M)
		for f := 0; f < nf; f++ {
			z := rng.NormFloat64()
			for a := 0; a < sp.M; a++ {
				off[a] += z * factors[c][f][a]
			}
		}
		for a := 0; a < sp.M; a++ {
			t[a] = Num(clamp(centers[c][a] + off[a] + rng.NormFloat64()*sp.Std*stdMul[c][a]))
		}
		ds.Rel.Append(t)
		ds.Labels[i] = c
	}

	injectNatural(rng, ds, sp.NaturalFrac, sp.Domain, sp.Std, centers, clamp)
	injectDirty(rng, ds, sp.DirtyFrac, sp.MaxDirtyAttrs, sp.Domain, clamp)
	return ds, nil
}

// placeCenters draws K centers in [0.15, 0.85]·Domain per axis with minimum
// pairwise separation minSep (relaxed progressively if the box is too tight,
// so generation always terminates).
func placeCenters(rng *rand.Rand, k, m int, domain, minSep float64) [][]float64 {
	centers := make([][]float64, 0, k)
	lo, hi := 0.15*domain, 0.85*domain
	sep := minSep
	attempts := 0
	for len(centers) < k {
		c := make([]float64, m)
		for a := range c {
			c[a] = lo + rng.Float64()*(hi-lo)
		}
		ok := true
		for _, o := range centers {
			if euclid(c, o) < sep {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, c)
			attempts = 0
			continue
		}
		if attempts++; attempts > 200 {
			sep *= 0.8 // relax; dense configurations (e.g. K=26) must still place
			attempts = 0
		}
	}
	return centers
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// injectDirty corrupts DirtyFrac of the non-natural tuples on 1..maxAttrs
// randomly chosen attributes with a shift of 25–50% of the domain — large
// enough to make the tuple outlying, small enough to stay in range.
func injectDirty(rng *rand.Rand, ds *Dataset, frac float64, maxAttrs int, domain float64, clamp func(float64) float64) {
	if frac <= 0 {
		return
	}
	n := ds.N()
	want := int(math.Round(frac * float64(n)))
	perm := rng.Perm(n)
	done := 0
	for _, i := range perm {
		if done >= want {
			break
		}
		if ds.Natural[i] || ds.Dirty[i] != 0 {
			continue
		}
		ds.Clean[i] = ds.Rel.Tuples[i].Clone()
		na := 1 + rng.Intn(maxAttrs)
		m := ds.Rel.Schema.M()
		if na > m {
			na = m
		}
		for _, a := range rng.Perm(m)[:na] {
			// Gross shifts (unit confusion and the like), always well
			// beyond the distance threshold so the error registers as a
			// distance-constraint violation.
			shift := (0.25 + 0.24*rng.Float64()) * domain
			if rng.Intn(2) == 0 {
				shift = -shift
			}
			v := shiftWithin(ds.Rel.Tuples[i][a].Num, shift, 0, domain)
			ds.Rel.Tuples[i][a] = Num(clamp(v))
			ds.Dirty[i] = ds.Dirty[i].With(a)
		}
		done++
	}
}

// injectNatural replaces NaturalFrac of the tuples with points displaced on
// every attribute (another wind farm / extreme weather in the paper's
// wording): uniform draws over the domain, rejection-sampled to stay well
// away from every class center, so they are outlying without being so
// extreme that a single natural point hijacks a K-Means center.
func injectNatural(rng *rand.Rand, ds *Dataset, frac float64, domain, std float64, centers [][]float64, clamp func(float64) float64) {
	if frac <= 0 {
		return
	}
	n := ds.N()
	want := int(math.Round(frac * float64(n)))
	perm := rng.Perm(n)
	m := ds.Rel.Schema.M()
	minDist := 8 * std * math.Sqrt(float64(m))
	for _, i := range perm[:min(want, n)] {
		t := make(Tuple, m)
		point := make([]float64, m)
		for tries := 0; tries < 200; tries++ {
			for a := 0; a < m; a++ {
				point[a] = rng.Float64() * domain
			}
			ok := true
			for _, c := range centers {
				if euclid(point, c) < minDist {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			if tries == 199 {
				// Crowded domain: fall back to the farthest corner mix.
				for a := 0; a < m; a++ {
					if rng.Intn(2) == 0 {
						point[a] = rng.Float64() * 0.05 * domain
					} else {
						point[a] = domain - rng.Float64()*0.05*domain
					}
				}
			}
		}
		for a := 0; a < m; a++ {
			t[a] = Num(clamp(point[a]))
		}
		ds.Rel.Tuples[i] = t
		ds.Labels[i] = -1
		ds.Natural[i] = true
		ds.Dirty[i] = 0
		ds.Clean[i] = nil
	}
}

// shiftWithin moves v by shift, flipping the direction when the preferred
// one leaves [lo, hi]. Because |shift| < (hi−lo)/2, at least one direction
// stays in range, so the displacement always keeps its full magnitude —
// reflection at the boundary could otherwise land the "error" back near the
// original value.
func shiftWithin(v, shift, lo, hi float64) float64 {
	if t := v + shift; t >= lo && t <= hi {
		return t
	}
	if t := v - shift; t >= lo && t <= hi {
		return t
	}
	// Shift larger than half the range: take the farther boundary.
	if v-lo > hi-v {
		return lo
	}
	return hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
