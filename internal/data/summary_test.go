package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarizeNumeric(t *testing.T) {
	r := NewRelation(NewNumericSchema("x"))
	for _, v := range []float64{1, 2, 3, 4, 5, 5} {
		r.Append(Tuple{Num(v)})
	}
	s := Summarize(r)[0]
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-10.0/3) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Distinct != 5 {
		t.Errorf("distinct = %d", s.Distinct)
	}
	if s.StdDev <= 0 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeText(t *testing.T) {
	sc := &Schema{Attrs: []Attribute{{Name: "w", Kind: Text}}}
	r := NewRelation(sc)
	for _, v := range []string{"a", "bb", "bb", "ccc"} {
		r.Append(Tuple{Str(v)})
	}
	s := Summarize(r)[0]
	if s.Distinct != 3 || s.MaxLen != 3 {
		t.Errorf("text summary = %+v", s)
	}
}

func TestFprintSummary(t *testing.T) {
	sc := &Schema{Attrs: []Attribute{
		{Name: "x", Kind: Numeric},
		{Name: "w", Kind: Text},
	}}
	r := NewRelation(sc)
	r.Append(Tuple{Num(1), Str("hello")})
	var buf bytes.Buffer
	FprintSummary(&buf, r)
	out := buf.String()
	for _, want := range []string{"attribute", "x", "w", "maxlen 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestPairwiseDistanceQuantiles(t *testing.T) {
	r := NewRelation(NewNumericSchema("x"))
	for i := 0; i < 100; i++ {
		r.Append(Tuple{Num(float64(i))})
	}
	qs := PairwiseDistanceQuantiles(r, 2000, []float64{0.1, 0.5, 0.9}, 1)
	if len(qs) != 3 {
		t.Fatalf("quantiles = %v", qs)
	}
	if !(qs[0] < qs[1] && qs[1] < qs[2]) {
		t.Errorf("quantiles not increasing: %v", qs)
	}
	// Median pairwise |i−j| over U(0..99) is ≈ 29.
	if qs[1] < 15 || qs[1] > 45 {
		t.Errorf("median pairwise distance %v implausible", qs[1])
	}
	// Degenerate inputs.
	empty := NewRelation(NewNumericSchema("x"))
	if got := PairwiseDistanceQuantiles(empty, 10, []float64{0.5}, 1); got[0] != 0 {
		t.Errorf("empty relation quantile = %v", got)
	}
}
