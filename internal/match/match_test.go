package match

import (
	"math"
	"testing"

	"repro/internal/data"
)

func textSchema() *data.Schema {
	return &data.Schema{Attrs: []data.Attribute{
		{Name: "name", Kind: data.Text},
		{Name: "city", Kind: data.Text},
	}}
}

func TestSimilarAllAttributesMustPass(t *testing.T) {
	s := textSchema()
	a := data.Tuple{data.Str("arnie morton's of chicago"), data.Str("los angeles")}
	b := data.Tuple{data.Str("arnie morton's of chicago"), data.Str("los angeles")}
	if !Similar(s, a, b, Config{}) {
		t.Error("identical tuples should match")
	}
	c := data.Tuple{data.Str("arnie morton's of chicago"), data.Str("new york")}
	if Similar(s, a, c, Config{}) {
		t.Error("different city should block the match")
	}
	d := data.Tuple{data.Str("arnie mortons of chicago"), data.Str("los angeles")}
	if !Similar(s, a, d, Config{}) {
		t.Error("tiny format variation should still match at 0.7")
	}
}

func TestMatchFindsDuplicatePairs(t *testing.T) {
	s := textSchema()
	rel := data.NewRelation(s)
	rel.Append(data.Tuple{data.Str("golden dragon"), data.Str("chicago")})
	rel.Append(data.Tuple{data.Str("golden dragon"), data.Str("chicago")}) // dup of 0
	rel.Append(data.Tuple{data.Str("blue bistro"), data.Str("boston")})
	pairs := Match(rel, Config{})
	if len(pairs) != 1 || pairs[0] != (Pair{I: 0, J: 1}) {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestScore(t *testing.T) {
	// Truth: {0,1} duplicates, {2,3} duplicates, 4 unique.
	labels := []int{0, 0, 1, 1, 2}
	pred := []Pair{{I: 0, J: 1}, {I: 2, J: 4}}
	p, r, f1 := Score(pred, labels)
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if math.Abs(f1-0.5) > 1e-12 {
		t.Errorf("f1 = %v", f1)
	}
	// Perfect prediction.
	_, _, pf := Score([]Pair{{I: 0, J: 1}, {I: 2, J: 3}}, labels)
	if pf != 1 {
		t.Errorf("perfect f1 = %v", pf)
	}
	// Empty prediction.
	p0, r0, f0 := Score(nil, labels)
	if p0 != 0 || r0 != 0 || f0 != 0 {
		t.Error("empty prediction should score 0")
	}
	// Negative labels never form truth pairs.
	_, rn, _ := Score(nil, []int{-1, -1})
	if rn != 0 {
		t.Error("negative labels created truth pairs")
	}
}

func TestTypoBreaksMatchingAndRepairRestoresIt(t *testing.T) {
	// The Figure 8 story: typos in one attribute break a duplicate pair;
	// repairing the value restores it.
	s := textSchema()
	rel := data.NewRelation(s)
	rel.Append(data.Tuple{data.Str("royal palace"), data.Str("seattle")})
	rel.Append(data.Tuple{data.Str("rqyxl pzlace"), data.Str("seattle")}) // heavy typos
	labels := []int{0, 0}
	_, _, before := Score(Match(rel, Config{}), labels)
	if before != 0 {
		t.Fatalf("typo pair matched anyway: %v", before)
	}
	rel.Tuples[1][0] = data.Str("royal palace")
	_, _, after := Score(Match(rel, Config{}), labels)
	if after != 1 {
		t.Fatalf("repaired pair did not match: %v", after)
	}
}

func TestNumericAttributesCompareAsStrings(t *testing.T) {
	s := data.NewNumericSchema("zip")
	a := data.Tuple{data.Num(97201)}
	b := data.Tuple{data.Num(97201)}
	if !Similar(s, a, b, Config{}) {
		t.Error("equal numerics should match")
	}
	c := data.Tuple{data.Num(10001)}
	if Similar(s, a, c, Config{}) {
		t.Error("distant numerics should not match")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := textSchema()
	a := data.Tuple{data.Str("x"), data.Str("y")}
	// Invalid config values fall back to defaults without panicking.
	if !Similar(s, a, a, Config{Threshold: -1, N: 0}) {
		t.Error("defaults broken")
	}
}
