// Package match implements the rule-based record matching of §4.1.3
// (Hernández & Stolfo's merge/purge style rule): two tuples match when the
// normalized n-gram similarity of their values exceeds a threshold on all
// attributes. The experiment of Figure 8 measures pairwise match F1
// against duplicate ground truth before and after outlier saving.
package match

import (
	"strconv"

	"repro/internal/data"
	"repro/internal/metric"
)

// Config parameterizes the matcher.
type Config struct {
	// Threshold is the per-attribute n-gram similarity bar (the paper
	// uses 0.7).
	Threshold float64
	// N is the gram size (default 2).
	N int
}

func (c *Config) defaults() {
	if c.Threshold <= 0 || c.Threshold > 1 {
		c.Threshold = 0.7
	}
	if c.N < 1 {
		c.N = 2
	}
}

// Pair is an unordered matched tuple-index pair with I < J.
type Pair struct {
	I, J int
}

// Similar reports whether two tuples match: every attribute's similarity
// exceeds the threshold. Numeric attributes compare their formatted
// values, mirroring a rule system that treats all fields as strings.
func Similar(s *data.Schema, a, b data.Tuple, cfg Config) bool {
	cfg.defaults()
	for i := 0; i < s.M(); i++ {
		va := valueString(s, a, i)
		vb := valueString(s, b, i)
		if metric.NGramSimilarity(va, vb, cfg.N) <= cfg.Threshold {
			return false
		}
	}
	return true
}

func valueString(s *data.Schema, t data.Tuple, a int) string {
	if s.Attrs[a].Kind == data.Text {
		return t[a].Str
	}
	return formatFloat(t[a].Num)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 12, 64)
}

// Match returns all matched pairs of the relation by pairwise comparison
// with a cheap length-based prefilter on the first attribute.
func Match(rel *data.Relation, cfg Config) []Pair {
	cfg.defaults()
	var out []Pair
	n := rel.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Similar(rel.Schema, rel.Tuples[i], rel.Tuples[j], cfg) {
				out = append(out, Pair{I: i, J: j})
			}
		}
	}
	return out
}

// Score computes pairwise precision/recall/F1 of predicted pairs against
// ground-truth duplicate groups given as labels (tuples sharing a label
// are duplicates; negative labels never match anything).
func Score(pred []Pair, labels []int) (precision, recall, f1 float64) {
	truth := map[Pair]bool{}
	byLabel := map[int][]int{}
	for i, l := range labels {
		if l < 0 {
			continue
		}
		byLabel[l] = append(byLabel[l], i)
	}
	for _, members := range byLabel {
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				truth[Pair{I: members[x], J: members[y]}] = true
			}
		}
	}
	tp := 0
	for _, p := range pred {
		if truth[p] {
			tp++
		}
	}
	if len(pred) > 0 {
		precision = float64(tp) / float64(len(pred))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
