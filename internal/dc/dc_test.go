package dc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestRangeConstraint(t *testing.T) {
	c := Range{Attr: 0, Lo: 2, Hi: 8}
	if c.Violates(data.Tuple{data.Num(5)}) {
		t.Error("in-range value flagged")
	}
	if !c.Violates(data.Tuple{data.Num(1)}) || !c.Violates(data.Tuple{data.Num(9)}) {
		t.Error("out-of-range value missed")
	}
	if c.Project(1) != 2 || c.Project(9) != 8 || c.Project(5) != 5 {
		t.Error("projection wrong")
	}
	if c.String() == "" {
		t.Error("empty rendering")
	}
}

func TestSlopeConstraint(t *testing.T) {
	// Longitude may change at most 2 per unit time (+0.5 slack).
	c := Slope{A: 1, B: 0, C: 2, D: 0.5}
	t1 := data.Tuple{data.Num(0), data.Num(0)}
	ok := data.Tuple{data.Num(1), data.Num(2)}
	bad := data.Tuple{data.Num(1), data.Num(10)}
	if c.ViolatesPair(t1, ok) {
		t.Error("legal movement flagged")
	}
	if !c.ViolatesPair(t1, bad) {
		t.Error("teleport missed")
	}
	if c.String() == "" {
		t.Error("empty rendering")
	}
}

func TestDiscoverRanges(t *testing.T) {
	rel := data.NewRelation(data.NewNumericSchema("x"))
	for i := 0; i < 100; i++ {
		rel.Append(data.Tuple{data.Num(float64(i % 10))})
	}
	rel.Append(data.Tuple{data.Num(1000)})
	// Weak discovery (trim 0): the constraint holds on the dirty data, so
	// the 1000 is NOT a violation — the §5 failure mode.
	weak := Discover(rel, DiscoverConfig{})
	if len(weak.Ranges) != 1 {
		t.Fatalf("ranges = %d", len(weak.Ranges))
	}
	if weak.Ranges[0].Violates(rel.Tuples[rel.N()-1]) {
		t.Error("weak constraint should tolerate the outlier it was learned on")
	}
	// Robust discovery (trimmed): the outlier violates.
	strong := Discover(rel, DiscoverConfig{TrimFrac: 0.02})
	if !strong.Ranges[0].Violates(rel.Tuples[rel.N()-1]) {
		t.Error("trimmed constraint should flag the outlier")
	}
	viol := strong.Violations(rel)
	if len(viol[rel.N()-1]) != 1 {
		t.Errorf("violations = %v", viol[rel.N()-1])
	}
	if len(viol[0]) != 0 {
		t.Error("clean tuple flagged")
	}
}

// trajectory builds a time/position walk with one teleporting error.
func trajectory(n int, seed int64) (*data.Relation, int) {
	rng := rand.New(rand.NewSource(seed))
	rel := data.NewRelation(data.NewNumericSchema("time", "pos"))
	pos := 100.0
	for i := 0; i < n; i++ {
		pos += rng.Float64()*2 - 0.5
		rel.Append(data.Tuple{data.Num(float64(i)), data.Num(pos)})
	}
	bad := n / 2
	rel.Tuples[bad][1] = data.Num(pos + 500)
	return rel, bad
}

func TestDiscoverSlopesCatchTeleport(t *testing.T) {
	rel, bad := trajectory(200, 1)
	set := Discover(rel, DiscoverConfig{TrimFrac: 0.02, Slopes: true})
	found := false
	for _, s := range set.Slopes {
		if s.A == 1 && s.B == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no pos-over-time slope discovered")
	}
	counts := set.SlopeViolations(rel)
	if counts[bad] < 2 {
		t.Errorf("teleporting tuple has %d slope violations, want ≥ 2", counts[bad])
	}
	clean := 0
	for i, c := range counts {
		if i != bad && i != bad-1 && i != bad+1 && c > 0 {
			clean++
		}
	}
	if clean > 4 {
		t.Errorf("%d clean tuples flagged by slope constraints", clean)
	}
}

func TestRepairProjectsAndInterpolates(t *testing.T) {
	rel, bad := trajectory(200, 2)
	set := Discover(rel, DiscoverConfig{TrimFrac: 0.02, Slopes: true})
	fixed := set.Repair(rel)
	// Input untouched.
	if rel.Tuples[bad][1].Num < 500 {
		t.Fatal("repair mutated its input")
	}
	// The teleport is pulled back near its neighbors.
	prev := fixed.Tuples[bad-1][1].Num
	next := fixed.Tuples[bad+1][1].Num
	got := fixed.Tuples[bad][1].Num
	lo, hi := math.Min(prev, next)-5, math.Max(prev, next)+5
	if got < lo || got > hi {
		t.Errorf("repaired pos %v outside neighbor band [%v, %v]", got, lo, hi)
	}
}

func TestDiscoverSkipsTextAndDegenerate(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{
		{Name: "w", Kind: data.Text},
		{Name: "x", Kind: data.Numeric},
	}}
	rel := data.NewRelation(s)
	for i := 0; i < 20; i++ {
		rel.Append(data.Tuple{data.Str("a"), data.Num(float64(i))})
	}
	set := Discover(rel, DiscoverConfig{Slopes: true})
	for _, r := range set.Ranges {
		if r.Attr == 0 {
			t.Error("range constraint on a text attribute")
		}
	}
	for _, sl := range set.Slopes {
		if sl.A == 0 || sl.B == 0 {
			t.Error("slope constraint on a text attribute")
		}
	}
	empty := data.NewRelation(data.NewNumericSchema("x"))
	if got := Discover(empty, DiscoverConfig{}); len(got.Ranges) != 0 {
		t.Error("constraints from an empty relation")
	}
}
