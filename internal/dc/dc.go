// Package dc implements a small denial-constraint engine: the constraint
// language, violation detection, discovery from data (in the spirit of
// FASTDC [16]), and minimal-change repair. It backs the Holistic cleaning
// competitor (§4.1.4, [17]) and is usable standalone.
//
// A denial constraint forbids a conjunction of predicates: a tuple (unary
// DC) or an ordered tuple pair (binary DC) violates the constraint when
// every predicate holds. The package supports the two families the
// paper's discussion needs: per-attribute range constraints
// ¬(t.A < lo ∨ t.A > hi) and bounded-slope pair constraints
// ¬(|t1.A − t2.A| > c·|t1.B − t2.B| + d) — the "walking speed of a
// person" constraint of §5.
package dc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
)

// Range is a unary denial constraint on one numeric attribute:
// ¬(t.A < Lo ∨ t.A > Hi).
type Range struct {
	Attr   int
	Lo, Hi float64
}

// Violates reports whether the tuple breaks the range.
func (c Range) Violates(t data.Tuple) bool {
	v := t[c.Attr].Num
	return v < c.Lo || v > c.Hi
}

// Project returns the minimal repair of a violating value: the nearest
// bound.
func (c Range) Project(v float64) float64 {
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// String renders the constraint.
func (c Range) String() string {
	return fmt.Sprintf("¬(t.a%d < %.4g ∨ t.a%d > %.4g)", c.Attr, c.Lo, c.Attr, c.Hi)
}

// Slope is a binary denial constraint between two numeric attributes:
// ¬(|t1.A − t2.A| > C·|t1.B − t2.B| + D), i.e. attribute A may change at
// most at rate C per unit of attribute B (plus slack D). With B = time and
// A = longitude this is the §5 walking-speed constraint.
type Slope struct {
	A, B int
	C, D float64
}

// ViolatesPair reports whether the ordered pair breaks the slope bound.
func (c Slope) ViolatesPair(t1, t2 data.Tuple) bool {
	da := math.Abs(t1[c.A].Num - t2[c.A].Num)
	db := math.Abs(t1[c.B].Num - t2[c.B].Num)
	return da > c.C*db+c.D
}

// String renders the constraint.
func (c Slope) String() string {
	return fmt.Sprintf("¬(|t1.a%d − t2.a%d| > %.4g·|t1.a%d − t2.a%d| + %.4g)", c.A, c.A, c.C, c.B, c.B, c.D)
}

// Set is a collection of discovered constraints.
type Set struct {
	Ranges []Range
	Slopes []Slope
}

// DiscoverConfig tunes constraint discovery.
type DiscoverConfig struct {
	// TrimFrac is the per-tail fraction ignored when fitting ranges and
	// slopes. 0 makes the constraints hold on the entire (dirty) input —
	// the weak constraints whose failure mode §5 describes; a small
	// positive value (e.g. 0.005) yields robust constraints.
	TrimFrac float64
	// SlopePairs is the number of adjacent pairs sampled per attribute
	// pair when fitting slopes (default 512); 0 < SlopePairs.
	SlopePairs int
	// Slopes enables bounded-slope discovery between consecutive tuples
	// ordered by each candidate B attribute. It suits sequence-like data
	// (GPS trajectories); off by default.
	Slopes bool
}

// Discover derives constraints from the relation. Text attributes are
// skipped (denial constraints here are numeric, as in the Holistic
// competitor).
func Discover(rel *data.Relation, cfg DiscoverConfig) Set {
	var out Set
	n := rel.N()
	if n == 0 {
		return out
	}
	m := rel.Schema.M()
	trim := cfg.TrimFrac
	if trim < 0 || trim >= 0.5 {
		trim = 0
	}
	for a := 0; a < m; a++ {
		if rel.Schema.Attrs[a].Kind != data.Numeric {
			continue
		}
		vals := make([]float64, n)
		for i, t := range rel.Tuples {
			vals[i] = t[a].Num
		}
		sort.Float64s(vals)
		lo := vals[int(math.Floor(trim*float64(n-1)))]
		hi := vals[int(math.Ceil((1-trim)*float64(n-1)))]
		out.Ranges = append(out.Ranges, Range{Attr: a, Lo: lo, Hi: hi})
	}
	if cfg.Slopes {
		out.Slopes = discoverSlopes(rel, trim)
	}
	return out
}

// discoverSlopes fits, for every ordered numeric attribute pair (A, B)
// with B strictly increasing when sorted, the smallest C such that
// |ΔA| ≤ C·|ΔB| holds for (1−2·trim) of consecutive pairs, with slack D
// from the residual spread.
func discoverSlopes(rel *data.Relation, trim float64) []Slope {
	var out []Slope
	m := rel.Schema.M()
	n := rel.N()
	if n < 8 {
		return nil
	}
	for b := 0; b < m; b++ {
		if rel.Schema.Attrs[b].Kind != data.Numeric {
			continue
		}
		// Order tuples by B.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool {
			return rel.Tuples[order[x]][b].Num < rel.Tuples[order[y]][b].Num
		})
		for a := 0; a < m; a++ {
			if a == b || rel.Schema.Attrs[a].Kind != data.Numeric {
				continue
			}
			ratios := make([]float64, 0, n-1)
			for k := 0; k+1 < n; k++ {
				i, j := order[k], order[k+1]
				db := math.Abs(rel.Tuples[i][b].Num - rel.Tuples[j][b].Num)
				da := math.Abs(rel.Tuples[i][a].Num - rel.Tuples[j][a].Num)
				if db <= 0 {
					continue // ties in B carry no rate information
				}
				ratios = append(ratios, da/db)
			}
			if len(ratios) < 8 {
				continue
			}
			sort.Float64s(ratios)
			c := ratios[int(math.Ceil((1-trim)*float64(len(ratios)-1)))]
			if math.IsInf(c, 1) || c <= 0 {
				continue
			}
			// Slack absorbs measurement noise at near-zero ΔB.
			d := 0.05 * c
			out = append(out, Slope{A: a, B: b, C: c * 1.05, D: d})
		}
	}
	return out
}

// Violations returns, for each tuple, the indexes (into Ranges) of the
// unary constraints it breaks.
func (s *Set) Violations(rel *data.Relation) [][]int {
	out := make([][]int, rel.N())
	for i, t := range rel.Tuples {
		for ci, c := range s.Ranges {
			if c.Violates(t) {
				out[i] = append(out[i], ci)
			}
		}
	}
	return out
}

// SlopeViolations returns, for each tuple, the number of consecutive-pair
// slope violations it participates in (tuples ordered by each slope's B
// attribute; a dirty value shows up in the pairs with both sequence
// neighbors).
func (s *Set) SlopeViolations(rel *data.Relation) []int {
	counts := make([]int, rel.N())
	n := rel.N()
	for _, c := range s.Slopes {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool {
			return rel.Tuples[order[x]][c.B].Num < rel.Tuples[order[y]][c.B].Num
		})
		for k := 0; k+1 < n; k++ {
			i, j := order[k], order[k+1]
			if c.ViolatesPair(rel.Tuples[i], rel.Tuples[j]) {
				counts[i]++
				counts[j]++
			}
		}
	}
	return counts
}

// Repair returns a copy of rel with minimal-change repairs: range
// violations project to the nearest bound; tuples violating a slope
// constraint against both sequence neighbors have the A value replaced by
// the neighbors' interpolation (the cell most likely wrong under the
// constraint semantics).
func (s *Set) Repair(rel *data.Relation) *data.Relation {
	out := rel.Clone()
	for _, t := range out.Tuples {
		for _, c := range s.Ranges {
			if c.Violates(t) {
				t[c.Attr] = data.Num(c.Project(t[c.Attr].Num))
			}
		}
	}
	n := out.N()
	for _, c := range s.Slopes {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool {
			return out.Tuples[order[x]][c.B].Num < out.Tuples[order[y]][c.B].Num
		})
		for k := 1; k+1 < n; k++ {
			prev, cur, next := order[k-1], order[k], order[k+1]
			if !c.ViolatesPair(out.Tuples[prev], out.Tuples[cur]) ||
				!c.ViolatesPair(out.Tuples[cur], out.Tuples[next]) {
				continue
			}
			// Violating against both neighbors while they agree with each
			// other points at cur's A value; interpolate it.
			if c.ViolatesPair(out.Tuples[prev], out.Tuples[next]) {
				continue
			}
			bp := out.Tuples[prev][c.B].Num
			bn := out.Tuples[next][c.B].Num
			ap := out.Tuples[prev][c.A].Num
			an := out.Tuples[next][c.A].Num
			va := (ap + an) / 2
			if bn != bp {
				frac := (out.Tuples[cur][c.B].Num - bp) / (bn - bp)
				va = ap + frac*(an-ap)
			}
			out.Tuples[cur][c.A] = data.Num(va)
		}
	}
	return out
}
