package explain

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

func inlierCloud(n int, seed int64) *data.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := data.NewRelation(data.NewNumericSchema("a", "b", "c"))
	for i := 0; i < n; i++ {
		r.Append(data.Tuple{
			data.Num(10 + rng.NormFloat64()),
			data.Num(20 + rng.NormFloat64()),
			data.Num(30 + rng.NormFloat64()),
		})
	}
	return r
}

func TestSSEFindsTheSeparatingAttribute(t *testing.T) {
	r := inlierCloud(300, 1)
	// Outlier deviates only on attribute 1.
	outlier := data.Tuple{data.Num(10), data.Num(80), data.Num(30)}
	mask := SSE(r, outlier, SSEConfig{})
	if !mask.Has(1) {
		t.Error("separable attribute 1 not found")
	}
	if mask.Has(0) || mask.Has(2) {
		t.Errorf("non-separable attributes flagged: %b", mask)
	}
}

func TestSSEMultiAttributeOutlier(t *testing.T) {
	r := inlierCloud(300, 2)
	outlier := data.Tuple{data.Num(-50), data.Num(90), data.Num(-40)}
	mask := SSE(r, outlier, SSEConfig{})
	if mask.Count() != 3 {
		t.Errorf("natural outlier separable on %d attributes, want 3", mask.Count())
	}
}

func TestSSEInlierHasNoExplanation(t *testing.T) {
	r := inlierCloud(300, 3)
	inlier := data.Tuple{data.Num(10.2), data.Num(19.8), data.Num(30.1)}
	if mask := SSE(r, inlier, SSEConfig{}); mask != 0 {
		t.Errorf("inlier explained by %b", mask)
	}
}

func TestSSEConstantAttribute(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("k"))
	for i := 0; i < 50; i++ {
		r.Append(data.Tuple{data.Num(5)})
	}
	if mask := SSE(r, data.Tuple{data.Num(5)}, SSEConfig{}); mask != 0 {
		t.Error("matching constant flagged")
	}
	if mask := SSE(r, data.Tuple{data.Num(6)}, SSEConfig{}); !mask.Has(0) {
		t.Error("deviating constant not flagged")
	}
}

func TestSSETextAttribute(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{{Name: "zip", Kind: data.Text}}}
	r := data.NewRelation(s)
	zips := []string{"97201", "97202", "97203", "97204", "97205"}
	for i := 0; i < 50; i++ {
		r.Append(data.Tuple{data.Str(zips[i%len(zips)])})
	}
	// A heavily garbled zip separates; a known zip does not.
	if mask := SSE(r, data.Tuple{data.Str("xx9q!")}, SSEConfig{}); !mask.Has(0) {
		t.Error("garbled text not separable")
	}
	if mask := SSE(r, data.Tuple{data.Str("97203")}, SSEConfig{}); mask != 0 {
		t.Error("known text flagged")
	}
}

func TestDBParamsClusteredDataGivesTinyEps(t *testing.T) {
	// Two far-apart clusters: the Normal model of pairwise distances is
	// mis-specified and μ−2σ collapses, so DB picks a tiny ε — the
	// Table 4 failure mode.
	rng := rand.New(rand.NewSource(4))
	r := data.NewRelation(data.NewNumericSchema("x", "y"))
	for i := 0; i < 400; i++ {
		c := float64(i%2) * 100
		r.Append(data.Tuple{data.Num(c + rng.NormFloat64()), data.Num(c + rng.NormFloat64())})
	}
	eps, eta := DBParams(r, DBParamOptions{Seed: 1})
	if eps <= 0 {
		t.Fatalf("ε = %v", eps)
	}
	// Within-cluster scale is ~1.4; DB's ε should be several times the
	// useful threshold or collapse below it — here the bimodal distances
	// (≈2 and ≈141) give μ≈70, σ≈70, so ε ≈ 0.05·μ ≈ 3.5 ≪ 100.
	if eps > 20 {
		t.Errorf("ε = %v, want the collapsed small value", eps)
	}
	if eta != 1 {
		t.Errorf("η = %d, want ⌈0.0012·400⌉ = 1", eta)
	}
}

func TestDBParamsEtaScalesWithN(t *testing.T) {
	r := inlierCloud(300, 5)
	_, eta := DBParams(r, DBParamOptions{OutlierFraction: 0.0012, Seed: 1})
	if eta != 1 {
		t.Errorf("η = %d for n=300", eta)
	}
	_, eta2 := DBParams(r, DBParamOptions{OutlierFraction: 0.1, Seed: 1})
	if eta2 != 30 {
		t.Errorf("η = %d for π=0.1, n=300, want 30", eta2)
	}
}

func TestDBParamsDegenerate(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x"))
	eps, eta := DBParams(r, DBParamOptions{})
	if eps <= 0 || eta < 1 {
		t.Errorf("degenerate params %v/%d", eps, eta)
	}
}
