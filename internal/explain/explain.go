// Package explain implements the two comparison baselines of the
// evaluation that reason about outliers without saving them: SSE, the
// subspace-separability explanation of Micenková et al. [35] (§4.3,
// Figures 9–10), which names the attributes on which an outlier separates
// from the inliers but not what the values should become; and the
// DB parameter-determination method based on the Normal distribution
// (Knorr & Ng [27, 29]) compared against the Poisson approach in Table 4.
package explain

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/data"
	"repro/internal/neighbors"
	"repro/internal/stats"
)

// SSEConfig parameterizes the separability explanation.
type SSEConfig struct {
	// Z is the robust z-score beyond which an attribute counts as
	// separable (default 3).
	Z float64
	// Neighbors is the size of the reference neighborhood (default 20).
	Neighbors int
}

// SSE returns the set of attributes on which the outlier tuple separates
// from its local inlier neighborhood: the outlier's k nearest inliers
// (full-space distance) serve as the reference population, and an
// attribute is separable when the outlier's value sits beyond Z robust
// standard deviations (median/MAD for numeric, nearest-value distance for
// text) of the neighborhood's values — the local subspace-separability
// notion of Micenková et al. It explains why the tuple is outlying but —
// unlike DISC — not how to repair it.
func SSE(r *data.Relation, outlier data.Tuple, cfg SSEConfig) data.AttrMask {
	z := cfg.Z
	if z <= 0 {
		z = 3
	}
	k := cfg.Neighbors
	if k <= 0 {
		k = 20
	}
	if k > r.N() {
		k = r.N()
	}
	if k == 0 {
		return 0
	}
	nn := neighbors.NewBrute(r).KNN(outlier, k, -1)
	var mask data.AttrMask
	for a := 0; a < r.Schema.M(); a++ {
		if r.Schema.Attrs[a].Kind == data.Numeric {
			if numericSeparable(r, nn, outlier, a, z) {
				mask = mask.With(a)
			}
			continue
		}
		if textSeparable(r, nn, outlier, a) {
			mask = mask.With(a)
		}
	}
	return mask
}

func numericSeparable(r *data.Relation, nn []neighbors.Neighbor, outlier data.Tuple, a int, z float64) bool {
	vals := make([]float64, len(nn))
	for i, nb := range nn {
		vals[i] = r.Tuples[nb.Idx][a].Num
	}
	sort.Float64s(vals)
	med := stats.Quantile(vals, 0.5)
	dev := make([]float64, len(vals))
	for i, v := range vals {
		dev[i] = math.Abs(v - med)
	}
	sort.Float64s(dev)
	scale := 1.4826 * stats.Quantile(dev, 0.5) // Normal-consistent MAD
	// Floor against zero-variance neighborhoods: 1% of the neighborhood's
	// value range, or an absolute epsilon for constants.
	floor := 0.01*(vals[len(vals)-1]-vals[0]) + 1e-9
	if scale < floor {
		scale = floor
	}
	return math.Abs(outlier[a].Num-med)/scale > z
}

func textSeparable(r *data.Relation, nn []neighbors.Neighbor, outlier data.Tuple, a int) bool {
	// Separable when the value is farther from every neighborhood value
	// than those values typically are from each other.
	minOut := math.Inf(1)
	for _, nb := range nn {
		if d := r.Schema.AttrDist(a, outlier[a], r.Tuples[nb.Idx][a]); d < minOut {
			minOut = d
		}
	}
	if minOut == 0 {
		return false
	}
	var typ []float64
	for i := 0; i < len(nn); i++ {
		minIn := math.Inf(1)
		for j := 0; j < len(nn); j++ {
			if j == i {
				continue
			}
			d := r.Schema.AttrDist(a, r.Tuples[nn[i].Idx][a], r.Tuples[nn[j].Idx][a])
			if d < minIn {
				minIn = d
			}
		}
		if !math.IsInf(minIn, 1) {
			typ = append(typ, minIn)
		}
	}
	if len(typ) == 0 {
		return true
	}
	sort.Float64s(typ)
	return minOut > stats.Quantile(typ, 0.9)+1e-9
}

// DBParamOptions tune the Normal-distribution baseline.
type DBParamOptions struct {
	// SamplePairs is the number of sampled tuple pairs for the distance
	// model (default 2000).
	SamplePairs int
	// OutlierFraction is the Knorr–Ng neighbor fraction π: η = ⌈π·n⌉
	// (default 0.0012, matching Table 4's η = 24 at n = 20000 and
	// η = 240 at n = 200000).
	OutlierFraction float64
	Seed            int64
}

// DBParams determines (ε, η) with the Normal-distribution method the paper
// compares against in Table 4: the pairwise distance distribution is
// modeled as Normal(μ, σ) with ε = μ − 2σ (clamped to a small positive
// fraction of μ when the model goes negative — which it does on clustered
// data, where distances are bimodal and emphatically not Normal), and
// η = ⌈π·n⌉ from the DB(π, δ) outlier definition. On clustered data the
// mis-specified model yields a far-too-small ε, reproducing the poor
// clustering F1 of the DB rows in Table 4.
func DBParams(r *data.Relation, opts DBParamOptions) (eps float64, eta int) {
	pairs := opts.SamplePairs
	if pairs <= 0 {
		pairs = 2000
	}
	frac := opts.OutlierFraction
	if frac <= 0 {
		frac = 0.0012
	}
	n := r.N()
	if n < 2 {
		return 1, 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var m stats.Moments
	for p := 0; p < pairs; p++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		m.Add(r.Schema.Dist(r.Tuples[i], r.Tuples[j]))
	}
	mu, sigma := m.Mean(), m.StdDev()
	eps = mu - 2*sigma
	if eps <= 0 {
		eps = 0.05 * mu
	}
	if eps <= 0 {
		eps = 1
	}
	eta = int(math.Ceil(frac * float64(n)))
	if eta < 1 {
		eta = 1
	}
	return eps, eta
}
