package obs

import "sync/atomic"

// CoordStats counts what a coordinator's scatter/gather machinery did
// across its proxied requests. Like ClientStats these sit on concurrent
// handler paths, so they are atomics rather than per-worker shards.
type CoordStats struct {
	// Scatters counts scatter/gather operations (one per proxied detect or
	// repair request); ScatterChunks counts the per-worker chunks they
	// fanned out.
	Scatters      atomic.Int64
	ScatterChunks atomic.Int64
	// Failovers counts chunks (or single-tuple calls) that a replica owner
	// answered after the preferred owner failed.
	Failovers atomic.Int64
	// ChunkFailures counts chunks lost after every owner failed — the
	// partial-result degradations visible to callers.
	ChunkFailures atomic.Int64
	// PartialResponses counts responses served with at least one lost
	// chunk or owner (HTTP 200/206-style degradation instead of an error).
	PartialResponses atomic.Int64
	// WorkerErrors counts individual worker call failures, before
	// failover.
	WorkerErrors atomic.Int64
	// PlacementsCreated counts sessions placed onto workers;
	// PlacementsDegraded counts placements created with fewer live owners
	// than the replication factor asked for.
	PlacementsCreated  atomic.Int64
	PlacementsDegraded atomic.Int64
}

// CoordSnapshot is a point-in-time copy of CoordStats for /varz.
type CoordSnapshot struct {
	Scatters           int64 `json:"scatters"`
	ScatterChunks      int64 `json:"scatter_chunks"`
	Failovers          int64 `json:"failovers"`
	ChunkFailures      int64 `json:"chunk_failures"`
	PartialResponses   int64 `json:"partial_responses"`
	WorkerErrors       int64 `json:"worker_errors"`
	PlacementsCreated  int64 `json:"placements_created"`
	PlacementsDegraded int64 `json:"placements_degraded"`
}

// Snapshot copies the counters (individually atomic, not mutually
// consistent — fine for monitoring).
func (c *CoordStats) Snapshot() CoordSnapshot {
	return CoordSnapshot{
		Scatters:           c.Scatters.Load(),
		ScatterChunks:      c.ScatterChunks.Load(),
		Failovers:          c.Failovers.Load(),
		ChunkFailures:      c.ChunkFailures.Load(),
		PartialResponses:   c.PartialResponses.Load(),
		WorkerErrors:       c.WorkerErrors.Load(),
		PlacementsCreated:  c.PlacementsCreated.Load(),
		PlacementsDegraded: c.PlacementsDegraded.Load(),
	}
}
