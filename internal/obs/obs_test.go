package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSearchStatsAdd(t *testing.T) {
	a := SearchStats{Nodes: 1, LBPrunes: 2, CandPrunes: 3, MemoHits: 4,
		UBWitnesses: 5, BestUpdates: 6, KappaMasks: 7, KappaPrefiltered: 8,
		BudgetTrips: 9, Candidates: 10, KNNQueries: 11, RangeQueries: 12,
		DistEvals: 13, GridFallbacks: 14}
	var sum SearchStats
	sum.Add(&a)
	sum.Add(&a)
	if sum.Nodes != 2 || sum.GridFallbacks != 28 || sum.DistEvals != 26 {
		t.Errorf("Add did not sum field-wise: %+v", sum)
	}
	// Every field must participate; doubling a must equal sum.
	twice := a
	twice.Add(&a)
	if twice != sum {
		t.Errorf("Add misses fields: %+v vs %+v", twice, sum)
	}
}

func TestSearchStatsString(t *testing.T) {
	s := SearchStats{Nodes: 42, MemoHits: 7}
	str := s.String()
	for _, want := range []string{"nodes=42", "memo_hits=7", "lb_prunes=0"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestSearchStatsJSONTags(t *testing.T) {
	b, err := json.Marshal(SearchStats{Nodes: 3, DistEvals: 9})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["nodes"] != 3 || m["dist_evals"] != 9 {
		t.Errorf("JSON keys wrong: %s", b)
	}
}

func TestPhaseTimingsJSONSeconds(t *testing.T) {
	pt := PhaseTimings{Save: 1500 * time.Millisecond, Total: 2 * time.Second}
	b, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["save_s"] != 1.5 || m["total_s"] != 2 {
		t.Errorf("timings not in seconds: %s", b)
	}
	if _, ok := m["validate_s"]; !ok {
		t.Errorf("zero phases must still be present: %s", b)
	}
}

func TestReporterNilSafe(t *testing.T) {
	var r *Reporter
	r.Report(Progress{Done: 1})
	r.Final(Progress{Done: 1})
	if NewReporter(nil, 0) != nil {
		t.Error("NewReporter(nil) must return a nil reporter")
	}
}

func TestReporterRateLimitAndFinal(t *testing.T) {
	var mu sync.Mutex
	var got []Progress
	r := NewReporter(func(p Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}, time.Hour) // nothing but the first report fits in the window
	for i := 1; i <= 100; i++ {
		r.Report(Progress{Done: i, Total: 101})
	}
	r.Final(Progress{Done: 101, Total: 101})
	if len(got) != 2 {
		t.Fatalf("want first + final = 2 deliveries, got %d", len(got))
	}
	if got[0].Done != 1 {
		t.Errorf("first delivery was Done=%d, want 1", got[0].Done)
	}
	if got[1].Done != 101 {
		t.Errorf("final delivery was Done=%d, want 101", got[1].Done)
	}
}

func TestReporterFillsElapsedAndETA(t *testing.T) {
	var got Progress
	r := NewReporter(func(p Progress) { got = p }, time.Hour)
	time.Sleep(2 * time.Millisecond)
	r.Report(Progress{Done: 1, Total: 4})
	if got.Elapsed <= 0 {
		t.Error("Elapsed not filled")
	}
	if got.ETA <= 0 {
		t.Error("ETA not extrapolated with Done in (0, Total)")
	}
	// ETA ≈ Elapsed × remaining/done = 3×Elapsed here.
	if got.ETA < got.Elapsed {
		t.Errorf("ETA %v < Elapsed %v with 3/4 of the work left", got.ETA, got.Elapsed)
	}
	r.Final(Progress{Done: 4, Total: 4})
	if got.ETA != 0 {
		t.Errorf("completed batch must not report an ETA, got %v", got.ETA)
	}
}

func TestCollector(t *testing.T) {
	var nilC *Collector
	nilC.Add(&SearchStats{Nodes: 1}) // must not panic
	if s, n := nilC.Snapshot(); n != 0 || s.Nodes != 0 {
		t.Error("nil collector must snapshot zero")
	}

	c := &Collector{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(&SearchStats{Nodes: 1, DistEvals: 2})
			}
		}()
	}
	wg.Wait()
	s, n := c.Snapshot()
	if n != 800 || s.Nodes != 800 || s.DistEvals != 1600 {
		t.Errorf("concurrent Add lost updates: runs=%d stats=%+v", n, s)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	l := Logger(nil)
	if l == nil {
		t.Fatal("Logger(nil) returned nil")
	}
	l.Info("must not panic", "k", "v") // and must not print
	if l.Enabled(nil, 12) {
		t.Error("nop logger must report every level disabled")
	}
}
