package obs

import (
	"strings"
	"testing"
)

func TestCountersReflectsJSONTags(t *testing.T) {
	got := CounterNames(SearchStats{})
	want := []string{"nodes", "lb_prunes", "cand_prunes", "memo_hits"}
	for i, w := range want {
		if i >= len(got) || got[i] != w {
			t.Fatalf("CounterNames(SearchStats) = %v, want prefix %v", got, want)
		}
	}
	// Pointers deref; values match the fields.
	cs := Counters(&SearchStats{Nodes: 7, DistEvals: 3})
	byName := map[string]int64{}
	for _, c := range cs {
		byName[c.Name] = c.Value
	}
	if byName["nodes"] != 7 || byName["dist_evals"] != 3 {
		t.Errorf("Counters values wrong: %v", byName)
	}
	// Non-int64 fields (the Latency histogram) are skipped.
	for _, n := range CounterNames(EndpointSnapshot{}) {
		if n == "latency_ns" {
			t.Errorf("CounterNames included the non-int64 histogram field: %v", n)
		}
	}
}

// TestPromWriterGolden pins the exposition basics: HELP/TYPE once per
// family even across interleaved label sets, escaped help, samples in
// emission order.
func TestPromWriterGolden(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("disc_requests_total", "Requests.", 3, "endpoint", "save")
	p.Counter("disc_requests_total", "Requests.", 5, "endpoint", "detect")
	p.Gauge("disc_up", `Help with \ and
newline.`, 1)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP disc_requests_total Requests.
# TYPE disc_requests_total counter
disc_requests_total{endpoint="save"} 3
disc_requests_total{endpoint="detect"} 5
# HELP disc_up Help with \\ and\nnewline.
# TYPE disc_up gauge
disc_up 1
`
	if got != want {
		t.Errorf("output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromWriterTypeConflict(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("disc_x", "h", 1)
	p.Gauge("disc_x", "h", 2)
	if err := p.Flush(); err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Errorf("redeclaring a family's type returned %v, want an error", err)
	}
}

// TestPromLabelEscapingRoundTrip writes label values containing every
// escapable character and reads them back through the validating parser.
func TestPromLabelEscapingRoundTrip(t *testing.T) {
	gnarly := "a\\b\"c\nd,e{f}"
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("disc_x_total", "h", 1, "session", gnarly, "name", `q"`)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseProm on escaped output: %v\n%s", err, sb.String())
	}
	f := fams["disc_x_total"]
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("family not parsed: %+v", fams)
	}
	if got := f.Samples[0].Labels["session"]; got != gnarly {
		t.Errorf("label round trip = %q, want %q", got, gnarly)
	}
	if got := f.Samples[0].Labels["name"]; got != `q"` {
		t.Errorf("second label = %q, want %q", got, `q"`)
	}
}

// TestPromHistogramTriples: the emitted histogram must parse and satisfy
// the cumulative _bucket/_sum/_count contract, per label set.
func TestPromHistogramTriples(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 3, 3, 100, 5000} {
		h.Observe(v)
	}
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Histogram("disc_lat_seconds", "Latency.", h.Snapshot(), 1e-9, "endpoint", "save")
	p.Histogram("disc_lat_seconds", "Latency.", h.Snapshot(), 1e-9, "endpoint", "detect")
	p.Histogram("disc_batch_size", "Sizes.", h.Snapshot(), 1)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	fams, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("histogram output failed validation: %v\n%s", err, out)
	}
	f := fams["disc_lat_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("family missing or mistyped: %+v", f)
	}
	// One +Inf bucket per label set, each equal to the count (5).
	inf := 0
	for _, s := range f.Samples {
		if s.Name == "disc_lat_seconds_bucket" && s.Labels["le"] == "+Inf" {
			inf++
			if s.Value != 5 {
				t.Errorf("+Inf bucket = %v, want 5", s.Value)
			}
		}
	}
	if inf != 2 {
		t.Errorf("got %d +Inf buckets, want 2 (one per endpoint)", inf)
	}
	if strings.Count(out, "# TYPE disc_lat_seconds histogram") != 1 {
		t.Errorf("TYPE line repeated:\n%s", out)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "disc_x 1\n",
		"bad name":           "# TYPE 9bad counter\n9bad 1\n",
		"bad label":          "# TYPE disc_x counter\ndisc_x{9l=\"v\"} 1\n",
		"unterminated label": "# TYPE disc_x counter\ndisc_x{l=\"v\n",
		"bad value":          "# TYPE disc_x counter\ndisc_x pots\n",
		"duplicate TYPE":     "# TYPE disc_x counter\n# TYPE disc_x counter\ndisc_x 1\n",
		"missing +Inf": "# TYPE disc_h histogram\n" +
			"disc_h_bucket{le=\"1\"} 1\ndisc_h_sum 1\ndisc_h_count 1\n",
		"non-cumulative buckets": "# TYPE disc_h histogram\n" +
			"disc_h_bucket{le=\"1\"} 5\ndisc_h_bucket{le=\"2\"} 3\n" +
			"disc_h_bucket{le=\"+Inf\"} 5\ndisc_h_sum 1\ndisc_h_count 5\n",
		"inf bucket != count": "# TYPE disc_h histogram\n" +
			"disc_h_bucket{le=\"+Inf\"} 4\ndisc_h_sum 1\ndisc_h_count 5\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
}

// TestClientStatsPromCoverage: every ClientSnapshot counter tag survives
// the reflection the exporters use, so a client-side /metrics emitter (or
// the docs drift check) sees all of them.
func TestClientStatsPromCoverage(t *testing.T) {
	got := CounterNames(ClientSnapshot{})
	want := []string{"requests", "retries", "breaker_trips", "breaker_open", "fallbacks"}
	if len(got) != len(want) {
		t.Fatalf("ClientSnapshot counters = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counter[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
