package obs

import "sync/atomic"

// StoreStats counts what the durable session store does: snapshot writes
// and loads, corruption rejections, and the sessions a restart brought back
// without re-running detection. Like EndpointStats these sit on concurrent
// paths (handler goroutines persist, the recovery loop loads), so they are
// atomics rather than per-worker shards.
type StoreStats struct {
	// SnapshotWrites counts snapshot files durably written (temp → fsync →
	// rename completed); SnapshotWriteErrors counts attempts that failed
	// before the rename, leaving the previous snapshot (if any) intact.
	SnapshotWrites      atomic.Int64
	SnapshotWriteErrors atomic.Int64
	// SnapshotLoads counts snapshots read and checksum-verified during
	// recovery.
	SnapshotLoads atomic.Int64
	// SnapshotCorrupt counts snapshots rejected by the checksum or version
	// gate and moved to the quarantine directory.
	SnapshotCorrupt atomic.Int64
	// RecoveredSessions counts sessions rehydrated from snapshots at
	// startup — relation parse and detection skipped, only the in-memory
	// indexes rebuilt. RebuiltSessions counts sessions whose snapshot was
	// unusable but whose source was still reachable, so they went through
	// a full build instead of being lost.
	RecoveredSessions atomic.Int64
	RebuiltSessions   atomic.Int64
	// SnapshotWriteNS distributes the wall time of durable snapshot writes
	// (successful or not), nanoseconds.
	SnapshotWriteNS Histogram
}

// StoreSnapshot is a point-in-time copy of StoreStats for /varz.
type StoreSnapshot struct {
	SnapshotWrites      int64             `json:"snapshot_writes"`
	SnapshotWriteErrors int64             `json:"snapshot_write_errors"`
	SnapshotLoads       int64             `json:"snapshot_loads"`
	SnapshotCorrupt     int64             `json:"snapshot_corrupt"`
	RecoveredSessions   int64             `json:"recovered_sessions"`
	RebuiltSessions     int64             `json:"rebuilt_sessions"`
	SnapshotWrite       HistogramSnapshot `json:"snapshot_write_ns"`
}

// Snapshot copies the counters (individually atomic, not mutually
// consistent — fine for monitoring).
func (s *StoreStats) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		SnapshotWrites:      s.SnapshotWrites.Load(),
		SnapshotWriteErrors: s.SnapshotWriteErrors.Load(),
		SnapshotLoads:       s.SnapshotLoads.Load(),
		SnapshotCorrupt:     s.SnapshotCorrupt.Load(),
		RecoveredSessions:   s.RecoveredSessions.Load(),
		RebuiltSessions:     s.RebuiltSessions.Load(),
		SnapshotWrite:       s.SnapshotWriteNS.Snapshot(),
	}
}

// ClientStats counts what the robust HTTP client's retry and circuit-breaker
// machinery did across its requests.
type ClientStats struct {
	// Requests counts logical requests (one per API call, however many
	// attempts each took).
	Requests atomic.Int64
	// Retries counts re-attempts after a retryable failure (network error,
	// 429, 5xx); Requests with zero Retries went through first try.
	Retries atomic.Int64
	// BreakerTrips counts transitions of the circuit breaker from closed
	// to open; BreakerOpen counts requests refused immediately because the
	// breaker was open.
	BreakerTrips atomic.Int64
	BreakerOpen  atomic.Int64
	// Fallbacks counts operations the caller degraded to local execution
	// after the client reported the remote unavailable.
	Fallbacks atomic.Int64
}

// ClientSnapshot is a point-in-time copy of ClientStats.
type ClientSnapshot struct {
	Requests     int64 `json:"requests"`
	Retries      int64 `json:"retries"`
	BreakerTrips int64 `json:"breaker_trips"`
	BreakerOpen  int64 `json:"breaker_open"`
	Fallbacks    int64 `json:"fallbacks"`
}

// Snapshot copies the counters.
func (c *ClientStats) Snapshot() ClientSnapshot {
	return ClientSnapshot{
		Requests:     c.Requests.Load(),
		Retries:      c.Retries.Load(),
		BreakerTrips: c.BreakerTrips.Load(),
		BreakerOpen:  c.BreakerOpen.Load(),
		Fallbacks:    c.Fallbacks.Load(),
	}
}
