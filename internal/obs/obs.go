// Package obs is the observability substrate of the DISC pipeline: search
// counters that quantify why Algorithm 1 is fast (how much of the O(2^m)
// mask lattice the Lemma 2 / Proposition 3 lower bound pruned, how often
// the memo deduplicated a mask, how hard the κ restriction cut the start
// set), phase timings for the SaveAll pipeline, a rate-bounded progress
// reporter for long batches, and nil-safe structured-logging helpers.
//
// The counters are plain int64 fields updated without synchronization: the
// hot path (one Algorithm 1 search) owns its SearchStats exclusively — one
// shard per worker arena — and shards are merged with Add only at
// aggregation points after the fan-out joins. No atomics, no allocation.
//
// See docs/OBSERVABILITY.md for the mapping from each counter to the
// paper's lemmas and for the -stats-json schema of the CLIs.
package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// SearchStats counts the work of one or more Algorithm 1 searches plus the
// neighbor-index traffic that fed them. A single save fills one instance
// (Adjustment.Stats); SaveAll merges the per-outlier instances together
// with the detection pass and the η-radius precompute into
// SaveResult.Stats.
type SearchStats struct {
	// Nodes is the number of recursion nodes expanded — the unit the
	// O(m^{κ+1}·n) analysis of §3.3 counts. A node is one unadjusted set X
	// whose candidate list was actually processed; masks that were visited
	// but pruned before their candidate scan are counted by the prune
	// counters below, not here, so disabling a prune visibly raises Nodes.
	Nodes int64 `json:"nodes"`
	// LBPrunes counts lattice visits cut by the Proposition 3 lower bound
	// (Δ(t_o, t_1) − ε with t_1 the η-th nearest candidate): the visit paid
	// one η-selection but neither the mask nor its subtree was expanded.
	LBPrunes int64 `json:"lb_prunes"`
	// CandPrunes counts lattice visits cut because fewer than η candidates
	// survived on X — no feasible adjustment can keep t_o[X] (children's
	// candidate sets only shrink), so the mask was not expanded.
	CandPrunes int64 `json:"cand_prunes"`
	// MemoHits counts masks skipped because an identical X had already
	// been processed (the visited-set deduplication).
	MemoHits int64 `json:"memo_hits"`
	// UBWitnesses counts the Proposition 5 upper-bound witnesses examined:
	// candidates t_2 with δ_η(t_2) ≤ ε − Δ(t_o[X], t_2[X]), each yielding a
	// feasible composite answer.
	UBWitnesses int64 `json:"ub_witnesses"`
	// BestUpdates counts how many witnesses actually improved the
	// best-so-far cost.
	BestUpdates int64 `json:"best_updates"`
	// KappaMasks counts the start masks |X| = m−κ the §3.3 restriction
	// enumerated (C(m, κ) minus budget cut-offs); zero for unrestricted
	// searches.
	KappaMasks int64 `json:"kappa_masks"`
	// KappaPrefiltered counts root candidates discarded by the κ best-case
	// filter before any mask was searched: even dropping their κ most
	// expensive attributes leaves them outside ε.
	KappaPrefiltered int64 `json:"kappa_prefiltered"`
	// BudgetTrips counts searches cut short by MaxNodes, Deadline or
	// context cancellation (0 or 1 per save; summed across a batch).
	BudgetTrips int64 `json:"budget_trips"`
	// Candidates is the size of the compact candidate table(s) — the
	// tuples close enough to ever matter, after the Lemma 4 truncation.
	Candidates int64 `json:"candidates"`
	// KNNQueries and RangeQueries count neighbor-index queries (k-NN, and
	// Within/CountWithin respectively); DistEvals counts the tuple-pair
	// distance evaluations the index performed to answer them, the common
	// currency that makes Brute/Grid/VPTree/KDTree comparable.
	KNNQueries   int64 `json:"knn_queries"`
	RangeQueries int64 `json:"range_queries"`
	DistEvals    int64 `json:"dist_evals"`
	// GridFallbacks counts grid queries degraded to a brute scan because
	// the requested radius spanned more cells than a scan costs.
	GridFallbacks int64 `json:"grid_fallbacks"`
	// DistEarlyExits, TextCacheHits and TextCacheMisses refine DistEvals
	// with the compiled kernel's view of how much each evaluation actually
	// cost: pairs abandoned by the ε early exit before their last
	// attribute, text metric evaluations answered from the pair cache or
	// query memo, and text metric evaluations actually computed.
	DistEarlyExits  int64 `json:"dist_early_exits"`
	TextCacheHits   int64 `json:"text_cache_hits"`
	TextCacheMisses int64 `json:"text_cache_misses"`
	// ApproxSampled and ApproxRefined split the approximate detection
	// pass's tuples: classified from the sampled estimate (or the grid cube
	// bound) alone vs sent to the exact borderline refinement.
	// ApproxSampleEvals is the slice of DistEvals spent on sampled-index
	// probes — the estimator's own cost, already included in DistEvals.
	ApproxSampled     int64 `json:"approx_sampled"`
	ApproxRefined     int64 `json:"approx_exact_refined"`
	ApproxSampleEvals int64 `json:"approx_sample_dist_evals"`
}

// Add folds o into s field by field. Shards merged this way must no longer
// be written concurrently.
func (s *SearchStats) Add(o *SearchStats) {
	s.Nodes += o.Nodes
	s.LBPrunes += o.LBPrunes
	s.CandPrunes += o.CandPrunes
	s.MemoHits += o.MemoHits
	s.UBWitnesses += o.UBWitnesses
	s.BestUpdates += o.BestUpdates
	s.KappaMasks += o.KappaMasks
	s.KappaPrefiltered += o.KappaPrefiltered
	s.BudgetTrips += o.BudgetTrips
	s.Candidates += o.Candidates
	s.KNNQueries += o.KNNQueries
	s.RangeQueries += o.RangeQueries
	s.DistEvals += o.DistEvals
	s.GridFallbacks += o.GridFallbacks
	s.DistEarlyExits += o.DistEarlyExits
	s.TextCacheHits += o.TextCacheHits
	s.TextCacheMisses += o.TextCacheMisses
	s.ApproxSampled += o.ApproxSampled
	s.ApproxRefined += o.ApproxRefined
	s.ApproxSampleEvals += o.ApproxSampleEvals
}

// String renders the counters in the order a pruning-power reading wants:
// how many nodes ran, what cut the rest.
func (s *SearchStats) String() string {
	return fmt.Sprintf(
		"nodes=%d lb_prunes=%d cand_prunes=%d memo_hits=%d ub_witnesses=%d best_updates=%d "+
			"kappa_masks=%d kappa_prefiltered=%d budget_trips=%d candidates=%d "+
			"knn_queries=%d range_queries=%d dist_evals=%d grid_fallbacks=%d "+
			"dist_early_exits=%d text_cache_hits=%d text_cache_misses=%d "+
			"approx_sampled=%d approx_exact_refined=%d approx_sample_dist_evals=%d",
		s.Nodes, s.LBPrunes, s.CandPrunes, s.MemoHits, s.UBWitnesses, s.BestUpdates,
		s.KappaMasks, s.KappaPrefiltered, s.BudgetTrips, s.Candidates,
		s.KNNQueries, s.RangeQueries, s.DistEvals, s.GridFallbacks,
		s.DistEarlyExits, s.TextCacheHits, s.TextCacheMisses,
		s.ApproxSampled, s.ApproxRefined, s.ApproxSampleEvals)
}

// PhaseTimings breaks a SaveAll run into its pipeline phases. Phases not
// run (e.g. no outliers → no save fan-out) stay zero.
type PhaseTimings struct {
	// Validate is the NaN/±Inf value scan over the input relation.
	Validate time.Duration
	// Detect covers the ε-neighbor counting pass and its index build.
	Detect time.Duration
	// DetectIndexBuild is the portion of Detect spent building the
	// detection index; zero when the caller supplied one via Options.Index,
	// making index reuse across phases visible in the timing record.
	DetectIndexBuild time.Duration
	// IndexBuild is the construction of the inlier index the saves query.
	IndexBuild time.Duration
	// EtaRadius is the δ_η precompute over the inliers (Proposition 5's
	// feasibility table).
	EtaRadius time.Duration
	// Save is the per-outlier save fan-out.
	Save time.Duration
	// Total is the whole pipeline, ≥ the sum of the phases.
	Total time.Duration
}

// MarshalJSON emits the phases as seconds (floats), the unit every table
// of the paper reports, rather than opaque nanosecond integers.
func (t PhaseTimings) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]float64{
		"validate_s":           t.Validate.Seconds(),
		"detect_s":             t.Detect.Seconds(),
		"detect_index_build_s": t.DetectIndexBuild.Seconds(),
		"index_build_s":        t.IndexBuild.Seconds(),
		"eta_radius_s":         t.EtaRadius.Seconds(),
		"save_s":               t.Save.Seconds(),
		"total_s":              t.Total.Seconds(),
	})
}
