package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// NewRequestID mints a 16-hex-char random id. The serving middleware, the
// retrying client and the CLIs all mint through this one function so an id
// greps identically across client output and server logs.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("obs: reading random request id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Span is one completed phase of a traced operation, stored as offsets from
// the trace start so a span costs 24 bytes and no wall-clock reads to
// render. The same type serves the server's request traces and the CLIs'
// local-run timelines.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// Trace is one request-scoped span collection. The handler goroutine and
// the batch worker both append (the request crosses the queue boundary), so
// appends take a mutex — traces are per-request, never contended in
// practice, and entirely off the per-node hot path.
type Trace struct {
	ID    string
	Start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace now. The spans slice is pre-sized for the request
// lifecycle (admit, queue, dispatch, save, respond, plus a snapshot or
// redetect) so a typical request allocates its span storage once.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Start: time.Now(), spans: make([]Span, 0, 8)}
}

// Span records the phase that began at start and ends now. Nil-safe, so
// untraced paths (benchmarks, direct library use) pay one nil check.
func (t *Trace) Span(name string, start time.Time) {
	if t == nil {
		return
	}
	end := time.Now()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Start), Dur: end.Sub(start)})
	t.mu.Unlock()
}

// AddSpan records a pre-measured span at an explicit offset — the CLIs use
// it to replay PhaseTimings into a trace after the fact.
func (t *Trace) AddSpan(name string, start, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: dur})
	t.mu.Unlock()
}

// Spans returns a copy sorted by start offset.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Breakdown renders the spans as one compact "name=dur" list — the form a
// slow-request log line carries.
func (t *Trace) Breakdown() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", sp.Name, sp.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// WriteTimeline renders the spans as an aligned bar chart, one line per
// span, scaled to the trace's total extent — the disccli/discbench -trace
// output.
func (t *Trace) WriteTimeline(w io.Writer) {
	spans := t.Spans()
	var total time.Duration
	for _, sp := range spans {
		if end := sp.Start + sp.Dur; end > total {
			total = end
		}
	}
	fmt.Fprintf(w, "trace %s: %d spans, total %s\n", t.ID, len(spans), total.Round(time.Microsecond))
	if total <= 0 {
		return
	}
	const width = 40
	nameW := 0
	for _, sp := range spans {
		if len(sp.Name) > nameW {
			nameW = len(sp.Name)
		}
	}
	for _, sp := range spans {
		lo := int(int64(width) * int64(sp.Start) / int64(total))
		n := int(int64(width) * int64(sp.Dur) / int64(total))
		if n < 1 {
			n = 1
		}
		if lo+n > width {
			n = width - lo
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", n)
		fmt.Fprintf(w, "  %-*s %-*s %10s +%s\n", nameW, sp.Name, width, bar,
			sp.Dur.Round(time.Microsecond), sp.Start.Round(time.Microsecond))
	}
}

// TraceRing keeps the most recent N traces for postmortems: a slow or
// failed request's spans are retrievable after the fact without logging
// every request. Fixed capacity, overwrite-oldest.
type TraceRing struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total int64
}

// NewTraceRing returns a ring holding up to n traces (n < 1 is clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*Trace, n)}
}

// Add inserts a completed trace, evicting the oldest once full. Nil-safe.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total counts every trace ever added (including those already evicted).
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained traces, oldest first.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		if t := r.buf[(r.next+i)%len(r.buf)]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// traceKey keys the trace in request contexts.
type traceKey struct{}

// ContextWithTrace installs the trace; TraceFrom retrieves it (nil when the
// request is untraced, which every recording site tolerates).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace installed by ContextWithTrace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
