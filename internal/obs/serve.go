package obs

import "sync/atomic"

// EndpointStats counts what the serving layer's admission and batching do
// to one endpoint's requests. Unlike SearchStats — whose shards are owned
// by one goroutine at a time — these counters sit on the concurrent request
// path, so they are atomics: every handler goroutine increments the same
// instance.
//
// The lifecycle of a request under admission control is
// admitted | rejected, then for admitted requests optionally coalesced
// (dispatched in a batch with others), expired (its deadline passed while
// queued, so it was answered without running), or drained (processed after
// shutdown began, as part of the graceful drain).
type EndpointStats struct {
	// Requests counts every request routed to the endpoint, before
	// admission control.
	Requests atomic.Int64
	// Admitted and Rejected split the requests that reached the admission
	// queue: Rejected counts queue-overflow (HTTP 429) and shutting-down
	// (HTTP 503) refusals.
	Admitted atomic.Int64
	Rejected atomic.Int64
	// Coalesced counts admitted requests that shared their dispatch with
	// at least one other request, so Coalesced/Admitted is the
	// micro-batching hit rate.
	Coalesced atomic.Int64
	// Expired counts admitted requests whose deadline passed while they
	// waited in the queue; they are answered with the deadline error
	// without spending any search work.
	Expired atomic.Int64
	// Drained counts admitted requests completed after shutdown began —
	// the graceful drain finishing what was already in flight.
	Drained atomic.Int64
	// Latency distributes end-to-end request wall time (nanoseconds,
	// middleware-measured: from route match to the last response byte).
	Latency Histogram
}

// EndpointSnapshot is a point-in-time copy of EndpointStats, shaped for
// JSON export (the /varz endpoint).
type EndpointSnapshot struct {
	Requests  int64             `json:"requests"`
	Admitted  int64             `json:"admitted"`
	Rejected  int64             `json:"rejected"`
	Coalesced int64             `json:"coalesced"`
	Expired   int64             `json:"expired"`
	Drained   int64             `json:"drained"`
	Latency   HistogramSnapshot `json:"latency_ns"`
}

// Snapshot copies the counters. Reads are individually atomic, not mutually
// consistent — fine for monitoring, where the counters only ever grow.
func (e *EndpointStats) Snapshot() EndpointSnapshot {
	return EndpointSnapshot{
		Requests:  e.Requests.Load(),
		Admitted:  e.Admitted.Load(),
		Rejected:  e.Rejected.Load(),
		Coalesced: e.Coalesced.Load(),
		Expired:   e.Expired.Load(),
		Drained:   e.Drained.Load(),
		Latency:   e.Latency.Snapshot(),
	}
}
