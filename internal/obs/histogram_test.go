package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in the bucket whose [lower, upper) range holds
	// it — the invariant Quantile's interpolation leans on.
	for i := 0; i < 1000; i++ {
		v := rand.Int63()
		k := histBucket(v)
		if lo, hi := histBucketLower(k), HistBucketUpper(k); v < lo || (v > hi) {
			t.Fatalf("v=%d fell in bucket %d with range [%d, %d)", v, k, lo, hi)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 101 { // negative observations subtract from the sum as-is
		t.Errorf("Sum = %d, want 101", s.Sum)
	}
	if s.Buckets[0] != 1 {
		t.Errorf("bucket 0 (v<=0) = %d, want 1", s.Buckets[0])
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Errorf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestNilHistogramIsSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.ObserveSince(time.Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram snapshot = %+v, want zero", s)
	}
}

// TestHistogramMergeProperty: merging snapshots must equal observing the
// union — count, sum, and every bucket — for random observation sets.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var a, b, both Histogram
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << uint(rng.Intn(40)))
			if rng.Intn(2) == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
			both.Observe(v)
		}
		merged := a.Snapshot()
		merged.Add(b.Snapshot())
		want := both.Snapshot()
		if merged != want {
			t.Fatalf("trial %d: merged snapshot differs from union:\n  merged %+v\n  union  %+v",
				trial, merged, want)
		}
	}
}

// TestHistogramQuantile checks the estimation error stays within the
// log-bucket resolution: the estimate for q must sit within a factor of 2
// of the true order statistic (one bucket's width).
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := s.Quantile(q)
		exact := q * 1000
		if got < exact/2 || got > exact*2 {
			t.Errorf("Quantile(%.2f) = %.1f, want within 2x of %.1f", q, got, exact)
		}
	}
	if s.Quantile(1) > float64(HistBucketUpper(histBucket(1000))) {
		t.Errorf("Quantile(1) = %.1f beyond the max bucket upper bound", s.Quantile(1))
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; under -race this doubles as the lock-freedom proof, and the
// final snapshot must account for every observation.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(42) }); allocs != 0 {
		t.Errorf("Observe allocates %.1f per op, want 0", allocs)
	}
}

func TestHistogramSnapshotJSON(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]float64
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "sum", "p50", "p95", "p99", "max"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("marshaled snapshot missing %q: %s", k, b)
		}
	}
	if doc["count"] != 100 {
		t.Errorf("count = %v, want 100", doc["count"])
	}
	if doc["p50"] > doc["p99"] || doc["p99"] > doc["max"] {
		t.Errorf("percentiles not ordered: %s", b)
	}
}

func TestServeHistsSnapshot(t *testing.T) {
	var sh ServeHists
	sh.Save.Observe(10)
	sh.QueueWait.Observe(20)
	sh.BatchSize.Observe(3)
	s := sh.Snapshot()
	if s.Save.Count != 1 || s.QueueWait.Count != 1 || s.BatchSize.Count != 1 || s.Redetect.Count != 0 {
		t.Errorf("ServeHists snapshot wrong: %+v", s)
	}
	// The bundle's json tags are the contract /varz and the docs tables
	// share; pin them.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"save_ns", "save_nodes", "queue_wait_ns", "batch_size", "redetect_touched"} {
		if !json.Valid(b) || !containsKey(b, tag) {
			t.Errorf("ServeHistsSnapshot JSON missing %q: %s", tag, b)
		}
	}
}

func containsKey(b []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
