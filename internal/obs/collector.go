package obs

import (
	"expvar"
	"sync"
)

// Collector accumulates SearchStats from many runs under a mutex. It sits
// strictly at aggregation points — an experiment harness summing the
// batches it ran, a server summing requests — never inside a search, so
// the lock is uncontended per-batch, not per-node. A nil *Collector is a
// valid no-op receiver.
type Collector struct {
	mu    sync.Mutex
	stats SearchStats
	runs  int64
}

// Add folds one run's stats into the collector.
func (c *Collector) Add(s *SearchStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats.Add(s)
	c.runs++
	c.mu.Unlock()
}

// Snapshot returns the accumulated stats and the number of runs folded in.
func (c *Collector) Snapshot() (SearchStats, int64) {
	if c == nil {
		return SearchStats{}, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, c.runs
}

// Publish registers the collector's live totals in the process-wide expvar
// registry under name, so an embedding process that serves /debug/vars
// exposes the DISC counters with every other expvar. Publishing the same
// name twice panics (expvar's contract); guard with sync.Once when in
// doubt.
func (c *Collector) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		s, runs := c.Snapshot()
		return struct {
			Runs  int64       `json:"runs"`
			Stats SearchStats `json:"stats"`
		}{runs, s}
	}))
}
