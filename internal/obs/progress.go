package obs

import (
	"sync"
	"time"
)

// Progress is one batch-progress snapshot: how far a SaveAll run has come
// and how its outcomes split so far.
type Progress struct {
	// Done and Total count outliers whose save has finished vs. all
	// outliers of the batch.
	Done, Total int
	// Saved, Natural, Exhausted and Failed split the finished saves (a
	// save can be both Saved and Exhausted: best-so-far answer kept).
	Saved, Natural, Exhausted, Failed int
	// Elapsed is the time since the reporter was created.
	Elapsed time.Duration
	// ETA linearly extrapolates the remaining time from Done/Elapsed;
	// zero until at least one item finished.
	ETA time.Duration
}

// DefaultProgressInterval spaces progress callbacks when the caller does
// not pick a rate: frequent enough for a terminal ticker, far too slow to
// ever show up next to NP-hard per-outlier searches.
const DefaultProgressInterval = 200 * time.Millisecond

// Reporter delivers Progress snapshots to a callback at a bounded rate:
// the first report, at most one per interval after that, and always the
// final one. All methods are safe for concurrent use — the callback runs
// under the reporter's mutex, so it never executes concurrently with
// itself and needs no locking of its own. A nil *Reporter is a valid no-op
// receiver, so call sites need no nil checks.
type Reporter struct {
	fn       func(Progress)
	interval time.Duration

	mu    sync.Mutex
	start time.Time
	last  time.Time
}

// NewReporter wraps fn; a nil fn yields a nil (no-op) reporter. interval
// ≤ 0 selects DefaultProgressInterval.
func NewReporter(fn func(Progress), interval time.Duration) *Reporter {
	if fn == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return &Reporter{fn: fn, interval: interval, start: time.Now()}
}

// Report offers a snapshot; it is dropped when the previous delivery was
// less than the interval ago. Elapsed and ETA are filled in.
func (r *Reporter) Report(p Progress) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if !r.last.IsZero() && now.Sub(r.last) < r.interval {
		return
	}
	r.last = now
	r.deliver(p, now)
}

// Final delivers a snapshot unconditionally — the closing report of a
// batch must not be rate-limited away.
func (r *Reporter) Final(p Progress) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	r.last = now
	r.deliver(p, now)
}

// deliver fills the derived fields and invokes the callback; the caller
// holds r.mu.
func (r *Reporter) deliver(p Progress, now time.Time) {
	p.Elapsed = now.Sub(r.start)
	if p.Done > 0 && p.Done < p.Total {
		p.ETA = time.Duration(float64(p.Elapsed) / float64(p.Done) * float64(p.Total-p.Done))
	}
	r.fn(p)
}
