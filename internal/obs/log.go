package obs

import (
	"context"
	"log/slog"
)

// nop is a handler that reports every level disabled, so a disabled logger
// costs one interface call per log site and never formats attributes.
type nop struct{}

func (nop) Enabled(context.Context, slog.Level) bool  { return false }
func (nop) Handle(context.Context, slog.Record) error { return nil }
func (n nop) WithAttrs([]slog.Attr) slog.Handler      { return n }
func (n nop) WithGroup(string) slog.Handler           { return n }

var nopLogger = slog.New(nop{})

// Logger returns l unchanged, or a disabled logger when l is nil, so
// pipeline code logs unconditionally instead of guarding every call site.
func Logger(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return nopLogger
}
