package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// This file is the dependency-free Prometheus text-exposition support
// behind GET /metrics: a writer that emits HELP/TYPE-prefixed families
// with escaped labels, a reflection helper that enumerates the int64
// counters of any json-tagged stats snapshot (so the exporter and the
// docs drift check share one tag universe), and a validating parser the
// golden-format test and the smoke test both run against real output.

// NamedCounter is one (json tag, value) pair of a stats snapshot.
type NamedCounter struct {
	Name  string
	Value int64
}

// Counters enumerates the int64 fields of a stats snapshot struct in
// declaration order, named by json tag (or lowercased field name for
// untagged structs like SearchStats... which is fully tagged; the fallback
// exists for robustness). Non-int64 and json:"-" fields are skipped.
func Counters(v any) []NamedCounter {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	rt := rv.Type()
	out := make([]NamedCounter, 0, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
			continue
		}
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if name == "-" {
			continue
		}
		if name == "" {
			name = strings.ToLower(f.Name)
		}
		out = append(out, NamedCounter{Name: name, Value: rv.Field(i).Int()})
	}
	return out
}

// CounterNames is Counters without the values — the docs drift check's view
// of a snapshot type.
func CounterNames(v any) []string {
	cs := Counters(v)
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// PromWriter emits Prometheus text exposition format (version 0.0.4). Emit
// every series of one metric name through consecutive calls — the format
// requires a family's lines to form one group, and the writer enforces the
// HELP/TYPE header exactly once per name, on the first call that uses it.
type PromWriter struct {
	w     *bufio.Writer
	seen  map[string]string // metric name -> declared type
	order []string
	err   error
}

// NewPromWriter wraps w. Call Flush when done; Err reports the first write
// error.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w), seen: map[string]string{}}
}

// Flush drains the buffer and returns the first error encountered.
func (p *PromWriter) Flush() error {
	if ferr := p.w.Flush(); p.err == nil {
		p.err = ferr
	}
	return p.err
}

// header writes the HELP/TYPE pair the first time name is seen.
func (p *PromWriter) header(name, help, typ string) {
	if prev, ok := p.seen[name]; ok {
		if prev != typ && p.err == nil {
			p.err = fmt.Errorf("obs: metric %s redeclared as %s (was %s)", name, typ, prev)
		}
		return
	}
	p.seen[name] = typ
	p.order = append(p.order, name)
	fmt.Fprintf(p.w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// escapeHelp escapes backslash and newline (the HELP value escapes).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote and newline (the label value
// escapes).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders k1,v1,k2,v2,... pairs as {k1="v1",...} ("" for none).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value ('g' keeps integers short and large
// bounds exact enough).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one cumulative counter sample. labels are k,v pairs.
func (p *PromWriter) Counter(name, help string, v float64, labels ...string) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// Histogram emits one histogram series — cumulative _bucket lines up to the
// highest occupied bucket plus +Inf, then _sum and _count. scale multiplies
// bucket bounds and the sum (1e-9 turns nanosecond observations into the
// seconds Prometheus latency conventions expect; 1 leaves counts alone).
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot, scale float64, labels ...string) {
	p.header(name, help, "histogram")
	hi := 0
	for k := range s.Buckets {
		if s.Buckets[k] != 0 {
			hi = k
		}
	}
	var cum int64
	base := labelString(labels)
	for k := 0; k <= hi; k++ {
		cum += s.Buckets[k]
		le := float64(HistBucketUpper(k)) * scale
		fmt.Fprintf(p.w, "%s_bucket%s %d\n", name,
			labelString(append(append([]string{}, labels...), "le", formatFloat(le))), cum)
	}
	fmt.Fprintf(p.w, "%s_bucket%s %d\n", name,
		labelString(append(append([]string{}, labels...), "le", "+Inf")), s.Count)
	fmt.Fprintf(p.w, "%s_sum%s %s\n", name, base, formatFloat(float64(s.Sum)*scale))
	fmt.Fprintf(p.w, "%s_count%s %d\n", name, base, s.Count)
}

// --- validating parser ---

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family: its declared type and samples
// (for histograms, the _bucket/_sum/_count series all belong to the base
// family).
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseProm parses and validates Prometheus text exposition format: every
// sample must follow a TYPE declaration of its family, names and labels
// must be well-formed, histogram families must carry cumulative
// nondecreasing _bucket series ending at a +Inf bucket that equals _count,
// with _sum present — the triple the exposition contract promises. It is
// the shared validator behind the /metrics golden test and the serve smoke
// test, strict enough that a formatting regression fails both.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // other comments are legal
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			f := fams[name]
			if f == nil {
				f = &PromFamily{Name: name}
				fams[name] = f
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.Type = fields[3]
			} else if len(fields) >= 4 {
				f.Help = fields[3]
			}
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := sample.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample.Name, suffix)
			if base != sample.Name {
				if f, ok := fams[base]; ok && f.Type == "histogram" {
					fam = base
				}
				break
			}
		}
		f, ok := fams[fam]
		if !ok || f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, sample.Name)
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogramFamily(f); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", f.Name, err)
			}
		}
	}
	return fams, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// parsePromSample parses `name{k="v",...} value`.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			key := strings.TrimSuffix(rest[:eq], ",")
			key = strings.TrimPrefix(key, ",")
			if !validLabelName(key) {
				return s, fmt.Errorf("bad label name %q in %q", key, line)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return s, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '"' {
					break
				}
				if c == '\\' {
					if rest == "" {
						return s, fmt.Errorf("dangling escape in %q", line)
					}
					e := rest[0]
					rest = rest[1:]
					switch e {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in %q", e, line)
					}
					continue
				}
				val.WriteByte(c)
			}
			if _, dup := s.Labels[key]; dup {
				return s, fmt.Errorf("duplicate label %q in %q", key, line)
			}
			s.Labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// validateHistogramFamily checks each label set's cumulative bucket
// contract: nondecreasing counts over increasing le, a +Inf bucket, and
// matching _sum/_count series.
func validateHistogramFamily(f *PromFamily) error {
	type series struct {
		les    []float64
		counts []float64
		sum    bool
		count  float64
		hasCnt bool
	}
	groups := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		g := groups[k]
		if g == nil {
			g = &series{}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch {
		case s.Name == f.Name+"_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				var err error
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					return fmt.Errorf("bad le %q", leStr)
				}
			}
			g := get(s.Labels)
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.Value)
		case s.Name == f.Name+"_sum":
			get(s.Labels).sum = true
		case s.Name == f.Name+"_count":
			g := get(s.Labels)
			g.count = s.Value
			g.hasCnt = true
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for key, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("series {%s} has no buckets", key)
		}
		if !g.sum || !g.hasCnt {
			return fmt.Errorf("series {%s} missing _sum or _count", key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("series {%s} le bounds not increasing", key)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("series {%s} bucket counts not cumulative", key)
			}
		}
		last := len(g.les) - 1
		if !math.IsInf(g.les[last], 1) {
			return fmt.Errorf("series {%s} missing +Inf bucket", key)
		}
		if g.counts[last] != g.count {
			return fmt.Errorf("series {%s} +Inf bucket %g != count %g", key, g.counts[last], g.count)
		}
	}
	return nil
}
