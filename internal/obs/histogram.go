package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the constant bucket count of every Histogram: bucket 0
// holds non-positive values, bucket k (1..63) holds values in
// [2^(k-1), 2^k). Power-of-two bounds make bucket selection one bits.Len64
// — no search, no float math — and keep every histogram the same fixed
// size, so merging is field-wise addition exactly like SearchStats.
const HistBuckets = 64

// Histogram is a constant-size, log-bucketed, lock-free histogram. Unlike
// SearchStats — whose shards are goroutine-owned — histograms sit on the
// concurrent request path (every handler and batch worker records into the
// same instance), so the buckets are atomics. Observe performs three
// atomic adds and zero allocations, cheap enough to sit next to the
// 1-alloc/op save path without moving it.
//
// The zero value is ready to use. A Histogram must not be copied after
// first use; Snapshot returns a plain value for reading and merging.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// HistBucketUpper returns the exclusive upper bound of bucket k (2^k);
// the top bucket's bound saturates at MaxInt64.
func HistBucketUpper(k int) int64 {
	if k >= 63 {
		return math.MaxInt64
	}
	return int64(1) << k
}

// histBucketLower is the inclusive lower bound of bucket k.
func histBucketLower(k int) int64 {
	if k == 0 {
		return 0
	}
	return int64(1) << (k - 1)
}

// Observe records one value. Nil-safe and allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Snapshot copies the histogram. Reads are individually atomic, not
// mutually consistent — fine for monitoring, where buckets only grow.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the value the
// exporters and quantile estimation work from.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [HistBuckets]int64
}

// Add folds o into s bucket by bucket, the same merge discipline as
// SearchStats.Add: per-session snapshots sum into global ones.
func (s *HistogramSnapshot) Add(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket where the target rank falls. The estimate is exact to
// within the bucket's width — a factor of 2 — which is what log-bucketed
// latency percentiles promise.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for k, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			lo, hi := histBucketLower(k), HistBucketUpper(k)
			frac := (rank - float64(cum)) / float64(c)
			return float64(lo) + frac*(float64(hi)-float64(lo))
		}
		cum += c
	}
	return float64(s.max())
}

// max is the upper bound of the highest occupied bucket (0 when empty).
func (s HistogramSnapshot) max() int64 {
	for k := len(s.Buckets) - 1; k >= 0; k-- {
		if s.Buckets[k] != 0 {
			return HistBucketUpper(k)
		}
	}
	return 0
}

// Mean is the exact average of the observed values (sum is tracked
// outside the buckets).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// MarshalJSON emits the summary a /varz reader wants — count, sum and the
// p50/p95/p99 estimates — rather than 64 raw buckets; the full bucket
// vector is exported through /metrics.
func (s HistogramSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"count": s.Count,
		"sum":   s.Sum,
		"p50":   s.Quantile(0.50),
		"p95":   s.Quantile(0.95),
		"p99":   s.Quantile(0.99),
		"max":   s.max(),
	})
}

// ServeHists bundles the serving layer's latency and size distributions.
// The server keeps one global instance and one per session, and the batch
// workers record into both — two Observe calls per request, far off the
// per-node hot path. Durations are nanoseconds; Nodes, BatchSize and
// Redetect are dimensionless counts.
type ServeHists struct {
	// Save distributes per-save wall time (SaveOne, end to end inside the
	// dispatch worker); SaveNodes distributes the search nodes each save
	// expanded — together they answer whether slow saves are big searches
	// or scheduling artifacts.
	Save      Histogram
	SaveNodes Histogram
	// QueueWait distributes how long admitted requests sat in the
	// admission queue before their dispatch worker picked them up.
	QueueWait Histogram
	// BatchSize distributes requests per dispatch — the micro-batching
	// coalescing actually achieved, not just its hit rate.
	BatchSize Histogram
	// Redetect distributes redetect_touched per mutation: the ε-ball
	// re-detection footprint the incremental maintenance paid.
	Redetect Histogram
}

// ServeHistsSnapshot is the JSON view of a ServeHists (the /varz shape).
type ServeHistsSnapshot struct {
	Save      HistogramSnapshot `json:"save_ns"`
	SaveNodes HistogramSnapshot `json:"save_nodes"`
	QueueWait HistogramSnapshot `json:"queue_wait_ns"`
	BatchSize HistogramSnapshot `json:"batch_size"`
	Redetect  HistogramSnapshot `json:"redetect_touched"`
}

// Snapshot copies all five histograms.
func (h *ServeHists) Snapshot() ServeHistsSnapshot {
	return ServeHistsSnapshot{
		Save:      h.Save.Snapshot(),
		SaveNodes: h.SaveNodes.Snapshot(),
		QueueWait: h.QueueWait.Snapshot(),
		BatchSize: h.BatchSize.Snapshot(),
		Redetect:  h.Redetect.Snapshot(),
	}
}
