package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("request ids %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Errorf("two minted ids collided: %q", a)
	}
	for _, c := range a {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("id %q contains non-hex %q", a, c)
		}
	}
}

func TestTraceSpansSorted(t *testing.T) {
	tr := NewTrace("t1")
	tr.AddSpan("late", 30*time.Millisecond, 5*time.Millisecond)
	tr.AddSpan("early", 1*time.Millisecond, 2*time.Millisecond)
	tr.AddSpan("mid", 10*time.Millisecond, 3*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, want := range []string{"early", "mid", "late"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %q, want %q (sorted by start)", i, spans[i].Name, want)
		}
	}
}

func TestTraceSpanMeasures(t *testing.T) {
	tr := NewTrace("t2")
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	tr.Span("work", start)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Dur < 2*time.Millisecond {
		t.Errorf("Span measured %+v, want dur >= 2ms", spans)
	}
}

func TestTraceBreakdown(t *testing.T) {
	tr := NewTrace("t3")
	tr.AddSpan("queue", 0, 2*time.Millisecond)
	tr.AddSpan("save", 2*time.Millisecond, 8*time.Millisecond)
	got := tr.Breakdown()
	if got != "queue=2ms save=8ms" {
		t.Errorf("Breakdown = %q, want %q", got, "queue=2ms save=8ms")
	}
	var empty Trace
	if s := empty.Breakdown(); s != "" {
		t.Errorf("empty Breakdown = %q, want empty", s)
	}
}

func TestTraceWriteTimeline(t *testing.T) {
	tr := NewTrace("t4")
	tr.AddSpan("a", 0, 10*time.Millisecond)
	tr.AddSpan("b", 10*time.Millisecond, 30*time.Millisecond)
	var sb strings.Builder
	tr.WriteTimeline(&sb)
	out := sb.String()
	if !strings.Contains(out, "trace t4: 2 spans, total 40ms") {
		t.Errorf("timeline header wrong:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("timeline has no bars:\n%s", out)
	}
	// b is 3x a's width; with 40 columns that is 10 vs 30 '#'.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "b ") {
			if n := strings.Count(line, "#"); n != 30 {
				t.Errorf("span b bar = %d columns, want 30:\n%s", n, out)
			}
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Span("x", time.Now())
	tr.AddSpan("y", 0, time.Millisecond)
	if s := tr.Spans(); s != nil {
		t.Errorf("nil trace Spans = %v, want nil", s)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("t5")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.AddSpan(fmt.Sprintf("g%d", g), time.Duration(i), time.Duration(1))
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Errorf("got %d spans, want 800", got)
	}
}

func TestTraceRingBounded(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(NewTrace(fmt.Sprintf("t%d", i)))
	}
	if got := r.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring retained %d traces, want 3", len(snap))
	}
	for i, want := range []string{"t2", "t3", "t4"} {
		if snap[i].ID != want {
			t.Errorf("snap[%d] = %q, want %q (oldest evicted first)", i, snap[i].ID, want)
		}
	}
	r.Add(nil) // nil-safe
	var nilRing *TraceRing
	nilRing.Add(NewTrace("x"))
	if nilRing.Total() != 0 || nilRing.Snapshot() != nil {
		t.Errorf("nil ring not inert")
	}
}

func TestTraceContext(t *testing.T) {
	tr := NewTrace("ctx")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Errorf("TraceFrom = %v, want the installed trace", got)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Errorf("TraceFrom(empty ctx) = %v, want nil", got)
	}
}
