package neighbors

import "repro/internal/data"

// CountWithinAtLeast reports whether q has at least k ε-neighbors in idx
// (excluding skip). Detection only needs the boolean — "count ≥ η" — so the
// query rides CountWithin's cap early-exit: the scan stops at the k-th hit
// instead of counting the whole ball. k ≤ 0 is vacuously true.
func CountWithinAtLeast(idx Index, q data.Tuple, eps float64, skip, k int) bool {
	if k <= 0 {
		return true
	}
	return idx.CountWithin(q, eps, skip, k) >= k
}

// CubeBound returns an upper bound on q's ε-neighbor count obtained purely
// from grid-cell populations — zero distance evaluations. Every ε-neighbor
// of q lies inside the reach cube of q's cell, so the cube's total
// population bounds the count from above (tombstoned rows stay in their
// cells until a merge, which only loosens the bound). skip ≥ 0 asserts that
// physical row skip itself lies inside the cube — callers probe q =
// rel.Tuples[skip] — and subtracts it; pass -1 otherwise.
//
// ok is false when the bound is unavailable: the index is not grid-backed
// (after unwrapping counting/context/mutable views), the radius is tooWide
// for a cube walk, or a Mutable holds delta rows outside the cells.
func CubeBound(idx Index, q data.Tuple, eps float64, skip int) (int, bool) {
	for {
		switch t := idx.(type) {
		case *counting:
			idx = t.idx
		case *ctxIndex:
			idx = t.idx
		case *mutView:
			idx = t.m
		case *Mutable:
			// Delta rows live outside the cells, so the cube population
			// would undercount them — only the all-in-cells state is sound.
			if t.grid == nil || len(t.delta) > 0 {
				return 0, false
			}
			idx = t.grid
		case *Grid:
			return t.cubeBound(q, eps, skip)
		default:
			return 0, false
		}
	}
}

// cubeBound sums the populations of the reach cube around q's cell.
func (g *Grid) cubeBound(q data.Tuple, eps float64, skip int) (int, bool) {
	reach := g.reach(eps)
	if g.tooWide(reach) {
		return 0, false
	}
	total := 0
	g.visit(q, reach, func(idx []int) bool {
		total += len(idx)
		return true
	})
	if skip >= 0 && total > 0 {
		total--
	}
	return total, true
}
