package neighbors

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/data"
)

// VPTree is a vantage-point tree: a metric-space index that only relies on
// the triangle inequality, so it serves the 16-attribute Letter data and
// the textual Restaurant data equally. Build is O(n log n) distance
// computations; range and k-NN queries prune subtrees whose distance
// interval cannot intersect the query ball.
//
// Queries run over the compiled distance kernel: the query binds once and
// every node distance is a column read plus the text-distance caches. Node
// distances are always computed in full — they feed the subtree pruning
// bounds, so the ε early exit (which only answers "within ε?") cannot be
// used here. Build-time distances go through the kernel too, which warms
// the shared per-pair text cache before the first query arrives.
type VPTree struct {
	r     *data.Relation
	kern  *data.Kernel
	nodes []vpNode
	root  int
	// dead, when non-nil, is the shared tombstone table of a Mutable
	// wrapper. A tombstoned vantage point still anchors its subtree's
	// pruning bounds — its distance is always computed — but it is never
	// reported as a result.
	dead *deadSet
	// evals, when non-nil, counts query-time distance evaluations (see
	// Counting); build-time distances are not counted.
	evals *int64
	ks    kernHooks
}

type vpNode struct {
	idx         int     // tuple index of the vantage point
	radius      float64 // median distance separating inside/outside
	inside      int     // node id of the ≤ radius subtree (-1 none)
	outside     int     // node id of the > radius subtree (-1 none)
	maxInside   float64 // max distance to vantage point within inside subtree
	minOutside  float64 // min distance to vantage point within outside subtree
	subtreeSize int
}

// NewVPTree builds the tree over r; seed drives vantage-point selection.
func NewVPTree(r *data.Relation, seed int64) *VPTree {
	return newVPTreeKernel(r, data.CompileKernel(r), seed)
}

// newVPTreeKernel builds the tree reusing an already-compiled kernel
// (the Mutable wrapper keeps one kernel — and its warmed text caches —
// alive across delta merges).
func newVPTreeKernel(r *data.Relation, kern *data.Kernel, seed int64) *VPTree {
	t := &VPTree{r: r, kern: kern, root: -1}
	if r.N() == 0 {
		return t
	}
	idx := make([]int, r.N())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.nodes = make([]vpNode, 0, r.N())
	t.root = t.build(idx, rng)
	return t
}

// Rel returns the indexed relation.
func (t *VPTree) Rel() *data.Relation { return t.r }

// Kernel implements Kerneled.
func (t *VPTree) Kernel() *data.Kernel { return t.kern }

type distItem struct {
	idx  int
	dist float64
}

func (t *VPTree) build(idx []int, rng *rand.Rand) int {
	if len(idx) == 0 {
		return -1
	}
	// Pick a vantage point at random and move it out of the working set.
	p := rng.Intn(len(idx))
	vp := idx[p]
	idx[p] = idx[len(idx)-1]
	rest := idx[:len(idx)-1]

	id := len(t.nodes)
	t.nodes = append(t.nodes, vpNode{idx: vp, inside: -1, outside: -1, subtreeSize: len(idx)})
	if len(rest) == 0 {
		return id
	}

	items := make([]distItem, len(rest))
	for i, j := range rest {
		items[i] = distItem{idx: j, dist: t.kern.Dist(vp, j)}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].dist < items[j].dist })
	mid := len(items) / 2
	radius := items[mid].dist

	insideIdx := make([]int, 0, mid+1)
	outsideIdx := make([]int, 0, len(items)-mid)
	maxIn, minOut := 0.0, math.Inf(1)
	for _, it := range items {
		if it.dist <= radius {
			insideIdx = append(insideIdx, it.idx)
			if it.dist > maxIn {
				maxIn = it.dist
			}
		} else {
			outsideIdx = append(outsideIdx, it.idx)
			if it.dist < minOut {
				minOut = it.dist
			}
		}
	}
	in := t.build(insideIdx, rng)
	out := t.build(outsideIdx, rng)
	n := &t.nodes[id]
	n.radius = radius
	n.inside = in
	n.outside = out
	n.maxInside = maxIn
	n.minOutside = minOut
	return id
}

// Within implements Index.
func (t *VPTree) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	return t.WithinAppend(nil, q, eps, skip)
}

// WithinAppend implements WithinAppender. The traversal is closure-free —
// the result buffer threads through the recursion — so a caller-reused dst
// keeps the whole query allocation-free.
func (t *VPTree) WithinAppend(dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	if t.root < 0 {
		return dst
	}
	kq := t.kern.Bind(q)
	defer t.ks.flush(kq)
	return t.rangeAppend(t.root, kq, eps, skip, dst)
}

// CountWithin implements Index.
func (t *VPTree) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	if t.root < 0 {
		return 0
	}
	kq := t.kern.Bind(q)
	defer t.ks.flush(kq)
	c, _ := t.rangeCount(t.root, kq, eps, skip, cap, 0)
	return c
}

// rangeAppend appends every tuple within eps of the bound query to dst.
func (t *VPTree) rangeAppend(id int, kq *data.KernelQuery, eps float64, skip int, dst []Neighbor) []Neighbor {
	n := &t.nodes[id]
	count(t.evals)
	d := kq.DistTo(n.idx)
	if d <= eps && n.idx != skip && !t.dead.has(n.idx) {
		dst = append(dst, Neighbor{Idx: n.idx, Dist: d})
	}
	// Triangle inequality: any point p in the inside subtree has
	// |d − Δ(vp,p)| ≤ Δ(q,p), with Δ(vp,p) ≤ maxInside; the inside subtree
	// can contain matches only if d − eps ≤ maxInside. Symmetrically for
	// the outside subtree with Δ(vp,p) ≥ minOutside.
	if n.inside >= 0 && d-eps <= n.maxInside {
		dst = t.rangeAppend(n.inside, kq, eps, skip, dst)
	}
	if n.outside >= 0 && d+eps >= n.minOutside {
		dst = t.rangeAppend(n.outside, kq, eps, skip, dst)
	}
	return dst
}

// rangeCount counts tuples within eps of the bound query, aborting once the
// running count c reaches cap (cap ≤ 0 disables the early exit); more=false
// propagates the abort up the recursion.
func (t *VPTree) rangeCount(id int, kq *data.KernelQuery, eps float64, skip, cap, c int) (int, bool) {
	n := &t.nodes[id]
	count(t.evals)
	d := kq.DistTo(n.idx)
	if d <= eps && n.idx != skip && !t.dead.has(n.idx) {
		c++
		if cap > 0 && c >= cap {
			return c, false
		}
	}
	more := true
	if n.inside >= 0 && d-eps <= n.maxInside {
		if c, more = t.rangeCount(n.inside, kq, eps, skip, cap, c); !more {
			return c, false
		}
	}
	if n.outside >= 0 && d+eps >= n.minOutside {
		if c, more = t.rangeCount(n.outside, kq, eps, skip, cap, c); !more {
			return c, false
		}
	}
	return c, true
}

// KNN implements Index.
func (t *VPTree) KNN(q data.Tuple, k, skip int) []Neighbor {
	if k <= 0 || t.root < 0 {
		return nil
	}
	kq := t.kern.Bind(q)
	defer t.ks.flush(kq)
	h := newMaxHeap(k)
	t.knnSearch(t.root, kq, skip, h)
	return h.sorted()
}

func (t *VPTree) knnSearch(id int, kq *data.KernelQuery, skip int, h *maxHeap) {
	if id < 0 {
		return
	}
	n := &t.nodes[id]
	count(t.evals)
	d := kq.DistTo(n.idx)
	if n.idx != skip && !t.dead.has(n.idx) {
		h.offer(Neighbor{Idx: n.idx, Dist: d})
	}
	bound, full := h.bound()
	if !full {
		bound = math.Inf(1)
	}
	// Descend the more promising side first so the bound tightens early.
	if d <= n.radius {
		if n.inside >= 0 && d-bound <= n.maxInside {
			t.knnSearch(n.inside, kq, skip, h)
		}
		if bound, full = h.bound(); !full {
			bound = math.Inf(1)
		}
		if n.outside >= 0 && d+bound >= n.minOutside {
			t.knnSearch(n.outside, kq, skip, h)
		}
	} else {
		if n.outside >= 0 && d+bound >= n.minOutside {
			t.knnSearch(n.outside, kq, skip, h)
		}
		if bound, full = h.bound(); !full {
			bound = math.Inf(1)
		}
		if n.inside >= 0 && d-bound <= n.maxInside {
			t.knnSearch(n.inside, kq, skip, h)
		}
	}
}
