package neighbors

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

// TestCellKeyerCollisionSafety mirrors TestGridPackedKeyCollisionSafety for
// the exported keyer: distinct in-range cells map to distinct packed keys,
// out-of-range probes are rejected before key construction, and CellKeyOf
// stays total (and collision-free) by switching those probes to the string
// fallback.
func TestCellKeyerCollisionSafety(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x", "y", "z"))
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		// Negative coordinates exercise the min-offset logic.
		r.Append(data.Tuple{
			data.Num(rng.Float64()*40 - 20),
			data.Num(rng.Float64()*40 - 20),
			data.Num(rng.Float64()*40 - 20),
		})
	}
	k, err := NewCellKeyer(r, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Packed() {
		t.Fatal("keyer over a compact range should use packed keys")
	}

	// Exhaustive bijectivity over the in-range coordinate box, through both
	// PackKey and the total KeyOfCoords form.
	seenU := make(map[uint64][3]int)
	seenK := make(map[CellKey][3]int)
	c := make([]int, 3)
	for c[0] = k.minC[0]; c[0] <= k.maxC[0]; c[0]++ {
		for c[1] = k.minC[1]; c[1] <= k.maxC[1]; c[1]++ {
			for c[2] = k.minC[2]; c[2] <= k.maxC[2]; c[2]++ {
				key, ok := k.PackKey(c)
				if !ok {
					t.Fatalf("in-range cell %v rejected", c)
				}
				if prev, dup := seenU[key]; dup {
					t.Fatalf("cells %v and %v collide on key %#x", prev, c, key)
				}
				seenU[key] = [3]int{c[0], c[1], c[2]}
				ck := k.KeyOfCoords(c)
				if prev, dup := seenK[ck]; dup {
					t.Fatalf("cells %v and %v collide on CellKey %+v", prev, c, ck)
				}
				seenK[ck] = [3]int{c[0], c[1], c[2]}
			}
		}
	}

	// Out-of-range probes: PackKey must reject them, KeyOfCoords must fall
	// back to a string key that cannot alias any packed in-range key.
	for trial := 0; trial < 200; trial++ {
		for a := range c {
			c[a] = k.minC[a] + rng.Intn(k.maxC[a]-k.minC[a]+1)
		}
		a := rng.Intn(3)
		if rng.Intn(2) == 0 {
			c[a] = k.minC[a] - 1 - rng.Intn(1<<20)
		} else {
			c[a] = k.maxC[a] + 1 + rng.Intn(1<<20)
		}
		if _, ok := k.PackKey(c); ok {
			t.Fatalf("out-of-range cell %v accepted", c)
		}
		ck := k.KeyOfCoords(c)
		if ck.packed {
			t.Fatalf("out-of-range cell %v produced a packed CellKey", c)
		}
		if prev, dup := seenK[ck]; dup {
			t.Fatalf("out-of-range cell %v aliases in-range cell %v", c, prev)
		}
	}
}

// TestCellKeyerAgreesWithGrid pins the shared-path contract the ε-halo
// partitioner relies on: CellKeyOf groups tuples into exactly the cells a
// Grid built over the same relation and cell size buckets them into.
func TestCellKeyerAgreesWithGrid(t *testing.T) {
	check := func(t *testing.T, r *data.Relation, cell float64) {
		t.Helper()
		k, err := NewCellKeyer(r, cell)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGrid(r, cell)
		if k.Packed() != g.packed {
			t.Fatalf("keyer packed=%v, grid packed=%v", k.Packed(), g.packed)
		}
		byKey := make(map[CellKey][]int)
		for i, tp := range r.Tuples {
			ck := CellKeyOf(k, tp)
			byKey[ck] = append(byKey[ck], i)
		}
		nCells := len(g.cells) + len(g.cellsStr)
		if len(byKey) != nCells {
			t.Fatalf("keyer found %d cells, grid has %d", len(byKey), nCells)
		}
		total := 0
		for ck, rows := range byKey {
			var gridRows []int
			if ck.packed {
				gridRows = g.cells[ck.u]
			} else {
				gridRows = g.cellsStr[ck.s]
			}
			if len(gridRows) != len(rows) {
				t.Fatalf("cell %+v: keyer has rows %v, grid has %v", ck, rows, gridRows)
			}
			for j := range rows {
				if rows[j] != gridRows[j] {
					t.Fatalf("cell %+v: keyer has rows %v, grid has %v", ck, rows, gridRows)
				}
			}
			total += len(rows)
		}
		if total != r.N() {
			t.Fatalf("keyer covered %d of %d rows", total, r.N())
		}
	}

	t.Run("packed", func(t *testing.T) {
		r := data.NewRelation(data.NewNumericSchema("x", "y", "z"))
		rng := rand.New(rand.NewSource(29))
		for i := 0; i < 250; i++ {
			r.Append(data.Tuple{
				data.Num(rng.Float64()*30 - 15),
				data.Num(rng.Float64()*30 - 15),
				data.Num(rng.Float64()*30 - 15),
			})
		}
		check(t, r, 1.5)
	})

	t.Run("scaled", func(t *testing.T) {
		// Attribute scales divide into the coordinate, so keyer and grid
		// must apply them identically.
		s := data.NewNumericSchema("x", "y")
		s.Attrs[0].Scale = 3
		s.Attrs[1].Scale = 0.25
		r := data.NewRelation(s)
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 200; i++ {
			r.Append(data.Tuple{
				data.Num(rng.Float64()*50 - 25),
				data.Num(rng.Float64()*4 - 2),
			})
		}
		check(t, r, 1)
	})

	t.Run("string-fallback", func(t *testing.T) {
		r := randomRelation(150, gridStackDims+1, 37)
		check(t, r, 2)
	})
}

// TestCellKeyerRejectsText pins the degradable error path NewGrid's panic
// does not offer.
func TestCellKeyerRejectsText(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "city", Kind: data.Text},
	}}
	r := data.NewRelation(s)
	if _, err := NewCellKeyer(r, 1); err == nil {
		t.Fatal("NewCellKeyer accepted a text attribute")
	}
}
