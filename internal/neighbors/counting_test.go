package neighbors

import (
	"context"
	"testing"

	"repro/internal/data"
)

// TestCountingBruteExact pins the brute index's counts, which are exactly
// predictable: every query evaluates n-1 distances (skip excluded).
func TestCountingBruteExact(t *testing.T) {
	const n = 50
	r := randomRelation(n, 3, 1)
	var c Counters
	idx := Counting(NewBrute(r), &c)

	idx.Within(r.Tuples[0], 2, 0)
	if c.RangeQueries != 1 {
		t.Errorf("RangeQueries = %d, want 1", c.RangeQueries)
	}
	if c.DistEvals != n-1 {
		t.Errorf("Within evals = %d, want %d", c.DistEvals, n-1)
	}

	c.Reset()
	idx.CountWithin(r.Tuples[1], 2, 1, 0)
	if c.RangeQueries != 1 || c.DistEvals != n-1 {
		t.Errorf("CountWithin: queries=%d evals=%d, want 1, %d", c.RangeQueries, c.DistEvals, n-1)
	}

	c.Reset()
	idx.KNN(r.Tuples[2], 5, 2)
	if c.KNNQueries != 1 {
		t.Errorf("KNNQueries = %d, want 1", c.KNNQueries)
	}
	if c.DistEvals != n-1 {
		t.Errorf("KNN evals = %d, want %d", c.DistEvals, n-1)
	}
}

// TestCountingViewsMatchBase checks every index type: the counting view
// returns exactly the base index's results, counts at least one distance
// evaluation per reported neighbor, and never exceeds the brute-force count.
func TestCountingViewsMatchBase(t *testing.T) {
	r := randomRelation(300, 3, 7)
	eps := 1.5
	bases := map[string]Index{
		"brute":  NewBrute(r),
		"grid":   NewGrid(r, eps),
		"vptree": NewVPTree(r, 1),
		"kdtree": NewKDTree(r),
	}
	for name, base := range bases {
		var c Counters
		view := Counting(base, &c)
		for q := 0; q < 20; q++ {
			want := base.Within(r.Tuples[q], eps, q)
			got := view.Within(r.Tuples[q], eps, q)
			sameNeighborSet(t, name, got, want)
		}
		if c.RangeQueries != 20 {
			t.Errorf("%s: RangeQueries = %d, want 20", name, c.RangeQueries)
		}
		if c.DistEvals <= 0 {
			t.Errorf("%s: counting view saw no distance evaluations", name)
		}
		if limit := int64(20 * (r.N() - 1)); c.DistEvals > limit {
			t.Errorf("%s: %d evals exceeds the brute bound %d", name, c.DistEvals, limit)
		}
		// The base index must have stayed uninstrumented: the same queries
		// against it move no counters.
		before := c
		for q := 0; q < 20; q++ {
			base.Within(r.Tuples[q], eps, q)
		}
		if c != before {
			t.Errorf("%s: base index shares the view's counters", name)
		}
	}
}

// TestCountingPruningIndexesBeatBrute asserts the point of the common
// currency: on clustered data the tree/grid indexes evaluate strictly fewer
// distances than brute force for small-radius queries.
func TestCountingPruningIndexesBeatBrute(t *testing.T) {
	r := randomRelation(1000, 3, 3)
	eps := 0.5
	evals := func(idx Index) int64 {
		var c Counters
		view := Counting(idx, &c)
		for q := 0; q < 50; q++ {
			view.Within(r.Tuples[q], eps, q)
		}
		return c.DistEvals
	}
	brute := evals(NewBrute(r))
	for name, idx := range map[string]Index{
		"grid":   NewGrid(r, eps),
		"kdtree": NewKDTree(r),
	} {
		if got := evals(idx); got >= brute {
			t.Errorf("%s evaluated %d distances, brute only %d — index not pruning", name, got, brute)
		}
	}
}

// TestCountingGridFallback drives a grid query with a radius spanning far
// more cells than a scan costs, which must degrade to brute and count it.
func TestCountingGridFallback(t *testing.T) {
	r := randomRelation(200, 3, 5)
	g := NewGrid(r, 0.01) // tiny cells: any realistic eps spans millions
	var c Counters
	view := Counting(g, &c)
	view.Within(r.Tuples[0], 5, 0)
	if c.GridFallbacks == 0 {
		t.Fatal("wide-radius grid query did not count a brute fallback")
	}
	if c.DistEvals != int64(r.N()-1) {
		t.Errorf("fallback evals = %d, want the full scan %d", c.DistEvals, r.N()-1)
	}
}

// TestCountingComposesWithContext checks the wrap order: cancellation must
// still short-circuit (ctx outside), while executed queries count.
func TestCountingComposesWithContext(t *testing.T) {
	r := randomRelation(100, 3, 9)
	ctx, cancel := context.WithCancel(context.Background())
	var c Counters
	view := Counting(WithContext(ctx, NewBrute(r)), &c)
	view.Within(r.Tuples[0], 2, 0)
	if c.RangeQueries != 1 || c.DistEvals == 0 {
		t.Fatalf("live query not counted: %+v", c)
	}
	before := c
	cancel()
	if got := view.Within(r.Tuples[0], 2, 0); got != nil {
		t.Error("cancelled query returned results")
	}
	if c.DistEvals != before.DistEvals {
		t.Error("cancelled query still evaluated distances")
	}
}

// TestCountingReplacesPreviousCounters re-wraps a counting view and checks
// the old counters stop moving.
func TestCountingReplacesPreviousCounters(t *testing.T) {
	r := randomRelation(50, 3, 11)
	var c1, c2 Counters
	v1 := Counting(NewBrute(r), &c1)
	v2 := Counting(v1, &c2)
	v2.Within(r.Tuples[0], 2, 0)
	if c1.RangeQueries != 0 || c1.DistEvals != 0 {
		t.Errorf("replaced counters still incremented: %+v", c1)
	}
	if c2.RangeQueries != 1 || c2.DistEvals == 0 {
		t.Errorf("new counters not incremented: %+v", c2)
	}
}

// TestCountingUnknownIndex wraps a foreign Index implementation: queries
// count, distance evaluations (invisible) stay zero.
func TestCountingUnknownIndex(t *testing.T) {
	r := randomRelation(20, 2, 13)
	var c Counters
	view := Counting(opaqueIndex{NewBrute(r)}, &c)
	view.KNN(r.Tuples[0], 3, 0)
	view.CountWithin(r.Tuples[0], 2, 0, 0)
	if c.KNNQueries != 1 || c.RangeQueries != 1 {
		t.Errorf("interface wrapper lost queries: %+v", c)
	}
	if c.DistEvals != 0 {
		t.Errorf("opaque index cannot report evals, got %d", c.DistEvals)
	}
}

// opaqueIndex hides a Brute behind a type Counting does not know.
type opaqueIndex struct{ inner *Brute }

func (o opaqueIndex) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	return o.inner.Within(q, eps, skip)
}
func (o opaqueIndex) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	return o.inner.CountWithin(q, eps, skip, cap)
}
func (o opaqueIndex) KNN(q data.Tuple, k, skip int) []Neighbor { return o.inner.KNN(q, k, skip) }
func (o opaqueIndex) Rel() *data.Relation                      { return o.inner.Rel() }
