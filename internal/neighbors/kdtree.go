package neighbors

import (
	"math"
	"sort"

	"repro/internal/data"
)

// KDTree is a balanced k-d tree over numeric attributes — the classic
// low-to-mid-dimensional index complementing the grid (fixed cell size)
// and the VP-tree (general metric). Splitting cycles through the widest-
// spread attribute at each level; leaves hold small buckets.
//
// Build reads coordinates from the compiled kernel's flat columns; leaf
// scans bind the query once and abandon a pair as soon as its partial
// aggregate exceeds the query radius (or the current k-th distance).
type KDTree struct {
	r      *data.Relation
	kern   *data.Kernel
	m      int
	scales []float64
	// cols aliases the kernel's raw numeric columns (read-only).
	cols  [][]float64
	nodes []kdNode
	// points holds tuple indexes, partitioned in place during the build
	// so every node owns a contiguous range.
	points []int
	root   int
	// dead, when non-nil, is the shared tombstone table of a Mutable
	// wrapper; tombstoned rows stay in the tree until the next merge and
	// are skipped mid-scan.
	dead *deadSet
	// evals, when non-nil, counts query-time distance evaluations (see
	// Counting).
	evals *int64
	ks    kernHooks
}

type kdNode struct {
	// attr < 0 marks a leaf holding points[lo:hi].
	attr        int
	split       float64
	left, right int
	lo, hi      int
}

const kdLeafSize = 16

// NewKDTree builds the tree; it panics on non-numeric schemas (route
// those to the VP-tree), matching the grid's contract.
func NewKDTree(r *data.Relation) *KDTree {
	for _, a := range r.Schema.Attrs {
		if a.Kind != data.Numeric {
			panic("neighbors: kd-tree requires an all-numeric schema")
		}
	}
	return newKDTreeKernel(r, data.CompileKernel(r))
}

// newKDTreeKernel builds the tree reusing an already-compiled kernel
// (the Mutable wrapper keeps one kernel alive across delta merges).
func newKDTreeKernel(r *data.Relation, kern *data.Kernel) *KDTree {
	m := r.Schema.M()
	t := &KDTree{r: r, kern: kern, m: m, scales: make([]float64, m), root: -1}
	t.cols = make([][]float64, m)
	for a := 0; a < m; a++ {
		if s := r.Schema.Attrs[a].Scale; s > 0 {
			t.scales[a] = 1 / s
		} else {
			t.scales[a] = 1
		}
		t.cols[a] = t.kern.NumColumn(a)
	}
	if r.N() == 0 {
		return t
	}
	t.points = make([]int, r.N())
	for i := range t.points {
		t.points[i] = i
	}
	t.root = t.build(0, r.N())
	return t
}

func (t *KDTree) coord(i, a int) float64 {
	return t.cols[a][i] * t.scales[a]
}

func (t *KDTree) build(lo, hi int) int {
	id := len(t.nodes)
	if hi-lo <= kdLeafSize {
		t.nodes = append(t.nodes, kdNode{attr: -1, lo: lo, hi: hi, left: -1, right: -1})
		return id
	}
	// Split on the widest-spread attribute.
	best, bestSpread := 0, -1.0
	for a := 0; a < t.m; a++ {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, i := range t.points[lo:hi] {
			v := t.coord(i, a)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if s := mx - mn; s > bestSpread {
			best, bestSpread = a, s
		}
	}
	if bestSpread == 0 {
		// All points identical on every attribute: keep as a leaf.
		t.nodes = append(t.nodes, kdNode{attr: -1, lo: lo, hi: hi, left: -1, right: -1})
		return id
	}
	seg := t.points[lo:hi]
	sort.Slice(seg, func(x, y int) bool { return t.coord(seg[x], best) < t.coord(seg[y], best) })
	mid := lo + (hi-lo)/2
	// Keep equal keys on one side so the split value truly separates.
	for mid > lo+1 && t.coord(t.points[mid], best) == t.coord(t.points[mid-1], best) {
		mid--
	}
	split := t.coord(t.points[mid], best)
	t.nodes = append(t.nodes, kdNode{attr: best})
	l := t.build(lo, mid)
	r := t.build(mid, hi)
	n := &t.nodes[id]
	n.split = split
	n.left = l
	n.right = r
	return id
}

// Rel returns the indexed relation.
func (t *KDTree) Rel() *data.Relation { return t.r }

// Kernel implements Kerneled.
func (t *KDTree) Kernel() *data.Kernel { return t.kern }

// Within implements Index.
func (t *KDTree) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	return t.WithinAppend(nil, q, eps, skip)
}

// WithinAppend implements WithinAppender; the closure-free recursion keeps
// a caller-reused dst allocation-free.
func (t *KDTree) WithinAppend(dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	if t.root < 0 {
		return dst
	}
	kq := t.kern.Bind(q)
	defer t.ks.flush(kq)
	return t.rangeAppend(t.root, kq, q, eps, t.kern.LEBound(eps), skip, dst)
}

// CountWithin implements Index.
func (t *KDTree) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	if t.root < 0 {
		return 0
	}
	kq := t.kern.Bind(q)
	defer t.ks.flush(kq)
	c, _ := t.rangeCount(t.root, kq, q, eps, t.kern.LEBound(eps), skip, cap, 0)
	return c
}

// rangeAppend appends every tuple within eps of the bound query to dst;
// leb is the precomputed accumulator bound for the ε early exit.
func (t *KDTree) rangeAppend(id int, kq *data.KernelQuery, q data.Tuple, eps, leb float64, skip int, dst []Neighbor) []Neighbor {
	n := &t.nodes[id]
	if n.attr < 0 {
		for _, i := range t.points[n.lo:n.hi] {
			if i == skip || t.dead.has(i) {
				continue
			}
			count(t.evals)
			if d, within := kq.DistToLE(i, leb); within {
				dst = append(dst, Neighbor{Idx: i, Dist: d})
			}
		}
		return dst
	}
	qa := q[n.attr].Num * t.scales[n.attr]
	// The search ball can only reach across the split plane within eps
	// (L2/L1 per-attribute distances are bounded below by the coordinate
	// gap; L∞ likewise).
	if qa-eps < n.split {
		dst = t.rangeAppend(n.left, kq, q, eps, leb, skip, dst)
	}
	if qa+eps >= n.split {
		dst = t.rangeAppend(n.right, kq, q, eps, leb, skip, dst)
	}
	return dst
}

// rangeCount counts tuples within eps of the bound query, aborting once
// the running count c reaches cap (cap ≤ 0 disables the early exit);
// more=false propagates the abort.
func (t *KDTree) rangeCount(id int, kq *data.KernelQuery, q data.Tuple, eps, leb float64, skip, cap, c int) (int, bool) {
	n := &t.nodes[id]
	if n.attr < 0 {
		for _, i := range t.points[n.lo:n.hi] {
			if i == skip || t.dead.has(i) {
				continue
			}
			count(t.evals)
			if _, within := kq.DistToLE(i, leb); within {
				c++
				if cap > 0 && c >= cap {
					return c, false
				}
			}
		}
		return c, true
	}
	qa := q[n.attr].Num * t.scales[n.attr]
	more := true
	if qa-eps < n.split {
		if c, more = t.rangeCount(n.left, kq, q, eps, leb, skip, cap, c); !more {
			return c, false
		}
	}
	if qa+eps >= n.split {
		if c, more = t.rangeCount(n.right, kq, q, eps, leb, skip, cap, c); !more {
			return c, false
		}
	}
	return c, true
}

// KNN implements Index.
func (t *KDTree) KNN(q data.Tuple, k, skip int) []Neighbor {
	if k <= 0 || t.root < 0 {
		return nil
	}
	kq := t.kern.Bind(q)
	defer t.ks.flush(kq)
	h := newMaxHeap(k)
	s := kdKNN{kq: kq, h: h, bound: math.Inf(1), leb: math.Inf(1)}
	t.knnSearch(t.root, q, skip, &s)
	return h.sorted()
}

// kdKNN carries the heap and its cached early-exit bound through the k-NN
// descent; leb is recomputed only when the k-th distance changes.
type kdKNN struct {
	kq         *data.KernelQuery
	h          *maxHeap
	bound, leb float64
}

func (t *KDTree) knnSearch(id int, q data.Tuple, skip int, s *kdKNN) {
	n := &t.nodes[id]
	if n.attr < 0 {
		for _, i := range t.points[n.lo:n.hi] {
			if i == skip || t.dead.has(i) {
				continue
			}
			count(t.evals)
			d, within := s.kq.DistToLE(i, s.leb)
			if !within {
				continue
			}
			s.h.offer(Neighbor{Idx: i, Dist: d})
			if bd, full := s.h.bound(); full && bd != s.bound {
				s.bound = bd
				s.leb = t.kern.LEBound(bd)
			}
		}
		return
	}
	qa := q[n.attr].Num * t.scales[n.attr]
	near, far := n.left, n.right
	if qa >= n.split {
		near, far = n.right, n.left
	}
	t.knnSearch(near, q, skip, s)
	bound, full := s.h.bound()
	if !full || math.Abs(qa-n.split) <= bound {
		t.knnSearch(far, q, skip, s)
	}
}
