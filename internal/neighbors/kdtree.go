package neighbors

import (
	"math"
	"sort"

	"repro/internal/data"
)

// KDTree is a balanced k-d tree over numeric attributes — the classic
// low-to-mid-dimensional index complementing the grid (fixed cell size)
// and the VP-tree (general metric). Splitting cycles through the widest-
// spread attribute at each level; leaves hold small buckets.
type KDTree struct {
	r      *data.Relation
	m      int
	scales []float64
	nodes  []kdNode
	// points holds tuple indexes, partitioned in place during the build
	// so every node owns a contiguous range.
	points []int
	root   int
	// evals, when non-nil, counts query-time distance evaluations (see
	// Counting).
	evals *int64
}

type kdNode struct {
	// attr < 0 marks a leaf holding points[lo:hi].
	attr        int
	split       float64
	left, right int
	lo, hi      int
}

const kdLeafSize = 16

// NewKDTree builds the tree; it panics on non-numeric schemas (route
// those to the VP-tree), matching the grid's contract.
func NewKDTree(r *data.Relation) *KDTree {
	for _, a := range r.Schema.Attrs {
		if a.Kind != data.Numeric {
			panic("neighbors: kd-tree requires an all-numeric schema")
		}
	}
	m := r.Schema.M()
	t := &KDTree{r: r, m: m, scales: make([]float64, m), root: -1}
	for a := 0; a < m; a++ {
		if s := r.Schema.Attrs[a].Scale; s > 0 {
			t.scales[a] = 1 / s
		} else {
			t.scales[a] = 1
		}
	}
	if r.N() == 0 {
		return t
	}
	t.points = make([]int, r.N())
	for i := range t.points {
		t.points[i] = i
	}
	t.root = t.build(0, r.N())
	return t
}

func (t *KDTree) coord(i, a int) float64 {
	return t.r.Tuples[i][a].Num * t.scales[a]
}

func (t *KDTree) build(lo, hi int) int {
	id := len(t.nodes)
	if hi-lo <= kdLeafSize {
		t.nodes = append(t.nodes, kdNode{attr: -1, lo: lo, hi: hi, left: -1, right: -1})
		return id
	}
	// Split on the widest-spread attribute.
	best, bestSpread := 0, -1.0
	for a := 0; a < t.m; a++ {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, i := range t.points[lo:hi] {
			v := t.coord(i, a)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if s := mx - mn; s > bestSpread {
			best, bestSpread = a, s
		}
	}
	if bestSpread == 0 {
		// All points identical on every attribute: keep as a leaf.
		t.nodes = append(t.nodes, kdNode{attr: -1, lo: lo, hi: hi, left: -1, right: -1})
		return id
	}
	seg := t.points[lo:hi]
	sort.Slice(seg, func(x, y int) bool { return t.coord(seg[x], best) < t.coord(seg[y], best) })
	mid := lo + (hi-lo)/2
	// Keep equal keys on one side so the split value truly separates.
	for mid > lo+1 && t.coord(t.points[mid], best) == t.coord(t.points[mid-1], best) {
		mid--
	}
	split := t.coord(t.points[mid], best)
	t.nodes = append(t.nodes, kdNode{attr: best})
	l := t.build(lo, mid)
	r := t.build(mid, hi)
	n := &t.nodes[id]
	n.split = split
	n.left = l
	n.right = r
	return id
}

// Rel returns the indexed relation.
func (t *KDTree) Rel() *data.Relation { return t.r }

// Within implements Index.
func (t *KDTree) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	var out []Neighbor
	t.rangeSearch(t.root, q, eps, skip, func(n Neighbor) bool {
		out = append(out, n)
		return true
	})
	return out
}

// CountWithin implements Index.
func (t *KDTree) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	c := 0
	t.rangeSearch(t.root, q, eps, skip, func(Neighbor) bool {
		c++
		return cap <= 0 || c < cap
	})
	return c
}

func (t *KDTree) rangeSearch(id int, q data.Tuple, eps float64, skip int, emit func(Neighbor) bool) bool {
	if id < 0 {
		return true
	}
	n := &t.nodes[id]
	if n.attr < 0 {
		for _, i := range t.points[n.lo:n.hi] {
			if i == skip {
				continue
			}
			count(t.evals)
			if d := t.r.Schema.Dist(q, t.r.Tuples[i]); d <= eps {
				if !emit(Neighbor{Idx: i, Dist: d}) {
					return false
				}
			}
		}
		return true
	}
	qa := q[n.attr].Num * t.scales[n.attr]
	// The search ball can only reach across the split plane within eps
	// (L2/L1 per-attribute distances are bounded below by the coordinate
	// gap; L∞ likewise).
	if qa-eps < n.split {
		if !t.rangeSearch(n.left, q, eps, skip, emit) {
			return false
		}
	}
	if qa+eps >= n.split {
		if !t.rangeSearch(n.right, q, eps, skip, emit) {
			return false
		}
	}
	return true
}

// KNN implements Index.
func (t *KDTree) KNN(q data.Tuple, k, skip int) []Neighbor {
	if k <= 0 || t.root < 0 {
		return nil
	}
	h := newMaxHeap(k)
	t.knnSearch(t.root, q, skip, h)
	return h.sorted()
}

func (t *KDTree) knnSearch(id int, q data.Tuple, skip int, h *maxHeap) {
	n := &t.nodes[id]
	if n.attr < 0 {
		for _, i := range t.points[n.lo:n.hi] {
			if i == skip {
				continue
			}
			count(t.evals)
			h.offer(Neighbor{Idx: i, Dist: t.r.Schema.Dist(q, t.r.Tuples[i])})
		}
		return
	}
	qa := q[n.attr].Num * t.scales[n.attr]
	near, far := n.left, n.right
	if qa >= n.split {
		near, far = n.right, n.left
	}
	t.knnSearch(near, q, skip, h)
	bound, full := h.bound()
	if !full || math.Abs(qa-n.split) <= bound {
		t.knnSearch(far, q, skip, h)
	}
}
