package neighbors

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/data"
)

// CellKeyer is the grid's cell-keying kernel factored out as a standalone
// component, so the spatial partitioner (internal/shard) and the Grid index
// bucket tuples through one shared path: the same scaled coordinate
// function, the same bijective uint64 key packing with its build-time range
// guard, and the same fixed-width string fallback for relations the packed
// layout cannot address. Anything keyed by a CellKeyer agrees cell-for-cell
// with a Grid built over the same relation and cell size — the property the
// ε-halo partition relies on.
//
// A CellKeyer is immutable after construction and safe for concurrent use.
type CellKeyer struct {
	rel  *data.Relation
	cell float64
	m    int
	// packed selects the uint64-key layout; minC/maxC/shift describe the
	// per-dimension bit fields sized to the build-time coordinate ranges.
	packed bool
	minC   []int
	maxC   []int
	shift  []uint
}

// NewCellKeyer builds a keyer over r with the given cell size (clamped to a
// small positive value, exactly like NewGrid). It returns an error on
// schemas with text attributes — cell coordinates are defined only for
// numeric values — where NewGrid would panic, so callers that accept
// arbitrary schemas (the partitioner) can degrade instead of crashing.
func NewCellKeyer(r *data.Relation, cell float64) (*CellKeyer, error) {
	for _, a := range r.Schema.Attrs {
		if a.Kind != data.Numeric {
			return nil, fmt.Errorf("neighbors: cell keying requires an all-numeric schema (attribute %q is text)", a.Name)
		}
	}
	k, _ := newCellKeyer(r, cell)
	return k, nil
}

// newCellKeyer sizes the key layout in one pass over the coordinates and
// returns that per-row coordinate buffer (row i's coordinates occupy
// coords[i*m : (i+1)*m]) so the grid's constructor can reuse it for
// insertion instead of paying a second pass. The caller must have verified
// the schema is all-numeric.
func newCellKeyer(r *data.Relation, cell float64) (*CellKeyer, []int) {
	if cell <= 0 {
		cell = 1
	}
	k := &CellKeyer{rel: r, cell: cell, m: r.Schema.M()}
	n := r.N()
	coords := make([]int, n*k.m)
	k.minC, k.maxC = make([]int, k.m), make([]int, k.m)
	for a := 0; a < k.m; a++ {
		k.minC[a], k.maxC[a] = 0, -1 // empty range until a tuple lands
	}
	for i, t := range r.Tuples {
		for a := 0; a < k.m; a++ {
			c := k.Coord(t, a)
			coords[i*k.m+a] = c
			if i == 0 || c < k.minC[a] {
				k.minC[a] = c
			}
			if i == 0 || c > k.maxC[a] {
				k.maxC[a] = c
			}
		}
	}
	k.packed = k.m <= gridStackDims
	if k.packed {
		k.shift = make([]uint, k.m)
		total := uint(0)
		for a := 0; a < k.m && k.packed; a++ {
			k.shift[a] = total
			span := uint64(0)
			if n > 0 {
				span = uint64(k.maxC[a] - k.minC[a])
			}
			total += uint(bits.Len64(span))
			if total > 64 {
				k.packed = false
			}
		}
	}
	return k, coords
}

// M returns the keyed dimensionality.
func (k *CellKeyer) M() int { return k.m }

// Cell returns the (clamped) cell size.
func (k *CellKeyer) Cell() float64 { return k.cell }

// Packed reports whether in-range cells are addressed by the bijective
// uint64 layout (false: the fixed-width string fallback keys every cell).
func (k *CellKeyer) Packed() bool { return k.packed }

// Coord returns the scaled grid coordinate of attribute a of tuple t; cells
// must bucket by the same scaled units the distance kernel uses.
func (k *CellKeyer) Coord(t data.Tuple, a int) int {
	v := t[a].Num
	if s := k.rel.Schema.Attrs[a].Scale; s > 0 {
		v /= s
	}
	return int(math.Floor(v / k.cell))
}

// Coords fills dst (grown as needed) with every coordinate of t and returns
// it.
func (k *CellKeyer) Coords(dst []int, t data.Tuple) []int {
	if cap(dst) < k.m {
		dst = make([]int, k.m)
	}
	dst = dst[:k.m]
	for a := 0; a < k.m; a++ {
		dst[a] = k.Coord(t, a)
	}
	return dst
}

// PackKey packs in-range cell coordinates into the bijective uint64 key.
// ok is false when any coordinate falls outside its build-time range (or
// the layout is not packed) — such a cell held no tuples at build time, so
// index probes skip it; this range guard is what makes the packing
// collision-free.
func (k *CellKeyer) PackKey(c []int) (key uint64, ok bool) {
	if !k.packed {
		return 0, false
	}
	for a := 0; a < k.m; a++ {
		if c[a] < k.minC[a] || c[a] > k.maxC[a] {
			return 0, false
		}
		key |= uint64(c[a]-k.minC[a]) << k.shift[a]
	}
	return key, true
}

// StringKey appends the fixed-width string encoding of the cell coordinates
// to b and returns it — the fallback keying for layouts the packed form
// cannot address. It is total: every coordinate vector has a string key.
func (k *CellKeyer) StringKey(b []byte, c []int) []byte {
	for a := 0; a < k.m; a++ {
		b = appendCoord(b, c[a])
	}
	return b
}

// Reach converts a query radius into the per-dimension cell reach of the
// cube that covers every tuple within eps of a cell's tuples: any pair of
// tuples within eps in aggregate is within eps per scaled attribute, hence
// within ceil(eps/cell)+1 cells per dimension.
func (k *CellKeyer) Reach(eps float64) int {
	return int(math.Ceil(eps/k.cell)) + 1
}

// CellKey is the comparable identity of one grid cell: the packed uint64
// when the layout addresses the cell, the fixed-width string otherwise.
// Keys from the same CellKeyer are equal exactly when the cells are equal.
type CellKey struct {
	packed bool
	u      uint64
	s      string
}

// CellKeyOf returns the cell key of tuple t under k — the exported form of
// the keying path NewGrid buckets with. It is total: tuples whose
// coordinates fall outside the packed layout's build-time ranges get the
// string-fallback key, so callers can key probe tuples that were not part
// of the build.
func CellKeyOf(k *CellKeyer, t data.Tuple) CellKey {
	var cA [gridStackDims]int
	var c []int
	if k.m <= gridStackDims {
		c = cA[:k.m]
	} else {
		c = make([]int, k.m)
	}
	for a := 0; a < k.m; a++ {
		c[a] = k.Coord(t, a)
	}
	return k.KeyOfCoords(c)
}

// KeyOfCoords is CellKeyOf for an already-computed coordinate vector.
func (k *CellKeyer) KeyOfCoords(c []int) CellKey {
	if u, ok := k.PackKey(c); ok {
		return CellKey{packed: true, u: u}
	}
	return CellKey{s: string(k.StringKey(make([]byte, 0, k.m*8), c))}
}
