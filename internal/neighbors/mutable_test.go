package neighbors

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

// mutableKinds are the four concrete kinds the differential tests sweep.
var mutableKinds = []IndexKind{KindBrute, KindGrid, KindKD, KindVP}

func randomTuple(rng *rand.Rand, m int, scale float64) data.Tuple {
	t := make(data.Tuple, m)
	for a := range t {
		t[a] = data.Num(rng.Float64() * scale)
	}
	return t
}

// liveReference builds a brute index over only the live rows of m's
// relation and returns it with the live→physical index mapping, the
// from-scratch oracle a mutated index must agree with.
func liveReference(m *Mutable) (*Brute, []int) {
	r := m.Rel()
	live := data.NewRelation(r.Schema)
	var phys []int
	for i := 0; i < r.N(); i++ {
		if !m.Alive(i) {
			continue
		}
		live.Append(r.Tuples[i])
		phys = append(phys, i)
	}
	return NewBrute(live), phys
}

func checkMutableAgainstRebuild(t *testing.T, m *Mutable, rng *rand.Rand, trials int) {
	t.Helper()
	ref, phys := liveReference(m)
	mDim := m.Rel().Schema.M()
	for trial := 0; trial < trials; trial++ {
		q := randomTuple(rng, mDim, 10)
		eps := 0.3 + rng.Float64()*2.5
		skip, refSkip := -1, -1
		if len(phys) > 0 && trial%3 == 0 {
			li := rng.Intn(len(phys))
			skip, refSkip = phys[li], li
		}

		want := ref.Within(q, eps, refSkip)
		for i := range want {
			want[i].Idx = phys[want[i].Idx]
		}
		sameNeighborSet(t, m.kind.String()+".Within", m.Within(q, eps, skip), want)

		if got := m.CountWithin(q, eps, skip, 0); got != len(want) {
			t.Fatalf("%s.CountWithin = %d, want %d", m.kind, got, len(want))
		}
		if len(want) > 1 {
			cap := 1 + rng.Intn(len(want))
			if got := m.CountWithin(q, eps, skip, cap); got != cap {
				t.Fatalf("%s.CountWithin cap=%d = %d", m.kind, cap, got)
			}
		}

		k := 1 + rng.Intn(8)
		wantK := ref.KNN(q, k, refSkip)
		for i := range wantK {
			wantK[i].Idx = phys[wantK[i].Idx]
		}
		gotK := m.KNN(q, k, skip)
		if len(gotK) != len(wantK) {
			t.Fatalf("%s.KNN len = %d, want %d", m.kind, len(gotK), len(wantK))
		}
		for i := range wantK {
			if gotK[i].Idx != wantK[i].Idx {
				t.Fatalf("%s.KNN[%d] = %v, want %v", m.kind, i, gotK[i], wantK[i])
			}
			if d := gotK[i].Dist - wantK[i].Dist; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s.KNN[%d] dist %v, want %v", m.kind, i, gotK[i].Dist, wantK[i].Dist)
			}
		}
	}
}

// TestMutableDifferential interleaves random inserts, updates (tombstone
// + re-insert) and deletes and checks every query kind against a
// from-scratch rebuild over the live rows, for all four index kinds.
func TestMutableDifferential(t *testing.T) {
	for _, kind := range mutableKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			r := randomRelation(150, 3, 7)
			m, err := NewMutable(r, 1.2, kind)
			if err != nil {
				t.Fatal(err)
			}
			if m.Kind() != kind {
				t.Fatalf("kind = %v, want %v", m.Kind(), kind)
			}
			rng := rand.New(rand.NewSource(int64(kind) + 11))
			for round := 0; round < 6; round++ {
				for op := 0; op < 25; op++ {
					switch roll := rng.Intn(10); {
					case roll < 5: // insert
						scale := 10.0
						if rng.Intn(4) == 0 {
							scale = 100 // outside the grid's packed key range
						}
						m.Insert(randomTuple(rng, 3, scale))
					case roll < 8: // delete a random physical row
						m.Delete(rng.Intn(m.Rel().N()))
					default: // update = tombstone + append
						m.Delete(rng.Intn(m.Rel().N()))
						m.Insert(randomTuple(rng, 3, 10))
					}
				}
				checkMutableAgainstRebuild(t, m, rng, 10)
			}
			if m.Live() != m.Rel().N()-m.DeadCount() {
				t.Fatalf("Live()=%d, N()=%d, Dead=%d", m.Live(), m.Rel().N(), m.DeadCount())
			}
		})
	}
}

// TestMutableForcedMerges drives the delta through many tiny merges and
// checks results stay exact; also verifies Merges() advances.
func TestMutableForcedMerges(t *testing.T) {
	for _, kind := range []IndexKind{KindKD, KindVP} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			r := randomRelation(80, 2, 3)
			m, err := NewMutable(r, 1.0, kind)
			if err != nil {
				t.Fatal(err)
			}
			m.SetMergeEvery(4)
			rng := rand.New(rand.NewSource(21))
			for i := 0; i < 30; i++ {
				m.Insert(randomTuple(rng, 2, 10))
				if i%5 == 0 {
					m.Delete(rng.Intn(m.Rel().N()))
				}
			}
			if m.Merges() == 0 {
				t.Fatal("expected at least one delta merge")
			}
			if m.Pending() >= 4 {
				t.Fatalf("pending delta %d should have merged", m.Pending())
			}
			checkMutableAgainstRebuild(t, m, rng, 15)
		})
	}
}

// TestMutableGridNativeInsert verifies in-range inserts land in the grid
// cells (no delta growth) while far-out-of-range rows fall back to the
// delta buffer.
func TestMutableGridNativeInsert(t *testing.T) {
	r := randomRelation(120, 2, 5)
	m, err := NewMutable(r, 1.0, KindGrid)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		m.Insert(randomTuple(rng, 2, 10))
	}
	if m.Pending() != 0 {
		t.Fatalf("in-range grid inserts left %d rows in delta", m.Pending())
	}
	// A coordinate far outside the packed key range must be refused by
	// the cell map and absorbed by the delta buffer instead.
	m.Insert(data.Tuple{data.Num(1e9), data.Num(1e9)})
	if m.Pending() != 1 {
		t.Fatalf("out-of-range insert: delta = %d, want 1", m.Pending())
	}
	// Once one row is in the delta, later in-range rows must also be
	// refused (contiguity rule) or the fallback scan would double count.
	m.Insert(randomTuple(rng, 2, 10))
	if m.Pending() != 2 {
		t.Fatalf("post-delta insert: delta = %d, want 2", m.Pending())
	}
	checkMutableAgainstRebuild(t, m, rng, 20)
	m.Merge()
	if m.Pending() != 0 {
		t.Fatal("merge left delta rows")
	}
	checkMutableAgainstRebuild(t, m, rng, 20)
}

// TestMutableCountingView checks that a Counting view created before
// mutations re-syncs afterwards: results stay exact and DistEvals keeps
// advancing (the serving layer's warm-save accounting depends on it).
func TestMutableCountingView(t *testing.T) {
	r := randomRelation(100, 2, 13)
	m, err := NewMutable(r, 1.0, KindVP)
	if err != nil {
		t.Fatal(err)
	}
	var c Counters
	view := Counting(m, &c)
	rng := rand.New(rand.NewSource(5))
	q := randomTuple(rng, 2, 10)
	view.Within(q, 1.5, -1)
	if c.DistEvals == 0 || c.RangeQueries != 1 {
		t.Fatalf("pre-mutation counters: %+v", c)
	}
	prev := c.DistEvals
	for i := 0; i < 40; i++ {
		m.Insert(randomTuple(rng, 2, 10))
	}
	m.Delete(0)
	ref, phys := liveReference(m)
	want := ref.Within(q, 1.5, -1)
	for i := range want {
		want[i].Idx = phys[want[i].Idx]
	}
	sameNeighborSet(t, "view.Within", view.Within(q, 1.5, -1), want)
	if c.DistEvals <= prev {
		t.Fatalf("DistEvals did not advance: %d -> %d", prev, c.DistEvals)
	}
	if KernelOf(view) != m.Kernel() {
		t.Fatal("KernelOf(view) should reach the Mutable's kernel")
	}
}

func TestParseIndexKind(t *testing.T) {
	for s, want := range map[string]IndexKind{
		"": KindAuto, "auto": KindAuto, "brute": KindBrute,
		"grid": KindGrid, "kd": KindKD, "vp": KindVP,
	} {
		got, err := ParseIndexKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseIndexKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseIndexKind("rtree"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestMutableRejectsTextSchemaForNumericIndexes(t *testing.T) {
	sch := &data.Schema{Attrs: []data.Attribute{{Name: "s", Kind: data.Text}}}
	r := data.NewRelation(sch)
	r.Append(data.Tuple{data.Str("a")})
	r.Append(data.Tuple{data.Str("b")})
	for _, kind := range []IndexKind{KindGrid, KindKD} {
		if _, err := NewMutable(r, 1, kind); err == nil {
			t.Fatalf("NewMutable(%v) on text schema should fail", kind)
		}
	}
	if _, err := NewMutable(r, 1, KindAuto); err != nil {
		t.Fatalf("auto kind on text schema: %v", err)
	}
}
