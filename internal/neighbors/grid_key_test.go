package neighbors

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

// TestGridPackedKeyCollisionSafety pins the bijectivity contract of the
// uint64 cell keys: distinct in-range cells must map to distinct keys, and
// probes for out-of-range cells must be rejected before key construction
// (a naive hash would let a far-away probe alias an occupied cell and
// return spurious neighbors). The packKey check enumerates the whole
// coordinate box; the query check compares against the brute scan for
// probes far outside, straddling, and inside the built range.
func TestGridPackedKeyCollisionSafety(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x", "y", "z"))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		// Include negative coordinates so the min-offset logic is exercised.
		r.Append(data.Tuple{
			data.Num(rng.Float64()*40 - 20),
			data.Num(rng.Float64()*40 - 20),
			data.Num(rng.Float64()*40 - 20),
		})
	}
	g := NewGrid(r, 1.5)
	if !g.packed {
		t.Fatalf("grid over a compact range should use packed keys")
	}

	// Exhaustive bijectivity over the in-range coordinate box.
	seen := make(map[uint64][3]int)
	c := make([]int, 3)
	for c[0] = g.key.minC[0]; c[0] <= g.key.maxC[0]; c[0]++ {
		for c[1] = g.key.minC[1]; c[1] <= g.key.maxC[1]; c[1]++ {
			for c[2] = g.key.minC[2]; c[2] <= g.key.maxC[2]; c[2]++ {
				key, ok := g.packKey(c)
				if !ok {
					t.Fatalf("in-range cell %v rejected", c)
				}
				if prev, dup := seen[key]; dup {
					t.Fatalf("cells %v and %v collide on key %#x", prev, c, key)
				}
				seen[key] = [3]int{c[0], c[1], c[2]}
			}
		}
	}

	// Out-of-range probes must be rejected, never aliased into the box.
	for trial := 0; trial < 200; trial++ {
		for a := range c {
			c[a] = g.key.minC[a] + rng.Intn(g.key.maxC[a]-g.key.minC[a]+1)
		}
		a := rng.Intn(3)
		if rng.Intn(2) == 0 {
			c[a] = g.key.minC[a] - 1 - rng.Intn(1<<20)
		} else {
			c[a] = g.key.maxC[a] + 1 + rng.Intn(1<<20)
		}
		if _, ok := g.packKey(c); ok {
			t.Fatalf("out-of-range cell %v accepted", c)
		}
	}

	// Differential check including probes whose cell cube lies entirely or
	// partially outside the built range.
	brute := NewBrute(r)
	for trial := 0; trial < 120; trial++ {
		var q data.Tuple
		switch trial % 3 {
		case 0: // inside the data range
			q = data.Tuple{
				data.Num(rng.Float64()*40 - 20),
				data.Num(rng.Float64()*40 - 20),
				data.Num(rng.Float64()*40 - 20),
			}
		case 1: // straddling the boundary
			q = data.Tuple{
				data.Num(20 + rng.Float64()*2 - 1),
				data.Num(-20 + rng.Float64()*2 - 1),
				data.Num(rng.Float64()*40 - 20),
			}
		default: // far outside: every probed cell is out of range
			q = data.Tuple{
				data.Num(1e6 + rng.Float64()*10),
				data.Num(-1e6 - rng.Float64()*10),
				data.Num(rng.Float64() * 1e5),
			}
		}
		eps := 0.5 + rng.Float64()*3
		want := brute.Within(q, eps, -1)
		sameNeighborSet(t, "packed grid.Within", g.Within(q, eps, -1), want)
		if got := g.CountWithin(q, eps, -1, 0); got != len(want) {
			t.Fatalf("packed grid.CountWithin = %d, want %d", got, len(want))
		}
	}
}

// TestGridStringFallback forces both fallback triggers — coordinate ranges
// too wide for 64 bits, and dimensionality above gridStackDims — and
// checks the string-keyed grid still answers exactly like the brute scan.
func TestGridStringFallback(t *testing.T) {
	t.Run("wide-span", func(t *testing.T) {
		r := data.NewRelation(data.NewNumericSchema("x", "y", "z"))
		rng := rand.New(rand.NewSource(13))
		// Spans around 2^42 cells per dimension: 3 dims cannot pack into 64
		// bits. Tuples still cluster so queries have non-trivial results.
		var centers [4][3]float64
		for i := range centers {
			for a := range centers[i] {
				centers[i][a] = (rng.Float64()*2 - 1) * 4e12
			}
		}
		for i := 0; i < 200; i++ {
			ct := centers[i%len(centers)]
			r.Append(data.Tuple{
				data.Num(ct[0] + rng.Float64()*4),
				data.Num(ct[1] + rng.Float64()*4),
				data.Num(ct[2] + rng.Float64()*4),
			})
		}
		g := NewGrid(r, 1.5)
		if g.packed {
			t.Fatalf("grid spanning ~2^42 cells per dimension should fall back to string keys")
		}
		brute := NewBrute(r)
		for trial := 0; trial < 60; trial++ {
			ct := centers[rng.Intn(len(centers))]
			q := data.Tuple{
				data.Num(ct[0] + rng.Float64()*6 - 1),
				data.Num(ct[1] + rng.Float64()*6 - 1),
				data.Num(ct[2] + rng.Float64()*6 - 1),
			}
			eps := 0.5 + rng.Float64()*3
			want := brute.Within(q, eps, -1)
			sameNeighborSet(t, "fallback grid.Within", g.Within(q, eps, -1), want)
		}
	})

	t.Run("many-dims", func(t *testing.T) {
		r := randomRelation(150, gridStackDims+1, 17)
		g := NewGrid(r, 2)
		if g.packed {
			t.Fatalf("grid with m > gridStackDims should fall back to string keys")
		}
		brute := NewBrute(r)
		rng := rand.New(rand.NewSource(19))
		for trial := 0; trial < 40; trial++ {
			q := make(data.Tuple, gridStackDims+1)
			for a := range q {
				q[a] = data.Num(rng.Float64() * 10)
			}
			eps := 1 + rng.Float64()*4
			want := brute.Within(q, eps, -1)
			sameNeighborSet(t, "many-dims grid.Within", g.Within(q, eps, -1), want)
		}
	})
}
