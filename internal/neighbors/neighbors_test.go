package neighbors

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/metric"
)

func randomRelation(n, m int, seed int64) *data.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	r := data.NewRelation(data.NewNumericSchema(names...))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		t := make(data.Tuple, m)
		for a := range t {
			t[a] = data.Num(rng.Float64() * 10)
		}
		r.Append(t)
	}
	return r
}

func sameNeighborSet(t *testing.T, name string, got, want []Neighbor) {
	t.Helper()
	gs := map[int]float64{}
	for _, n := range got {
		gs[n.Idx] = n.Dist
	}
	ws := map[int]float64{}
	for _, n := range want {
		ws[n.Idx] = n.Dist
	}
	if len(gs) != len(ws) {
		t.Fatalf("%s: got %d neighbors, want %d", name, len(gs), len(ws))
	}
	for i, d := range ws {
		gd, ok := gs[i]
		if !ok {
			t.Fatalf("%s: missing neighbor %d", name, i)
		}
		if diff := gd - d; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: neighbor %d distance %v, want %v", name, i, gd, d)
		}
	}
}

func TestIndexesAgreeWithBrute(t *testing.T) {
	r := randomRelation(400, 3, 1)
	brute := NewBrute(r)
	grid := NewGrid(r, 1.5)
	vp := NewVPTree(r, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		q := data.Tuple{
			data.Num(rng.Float64() * 10),
			data.Num(rng.Float64() * 10),
			data.Num(rng.Float64() * 10),
		}
		eps := 0.5 + rng.Float64()*3
		skip := -1
		if trial%3 == 0 {
			skip = rng.Intn(r.N())
		}
		want := brute.Within(q, eps, skip)
		sameNeighborSet(t, "grid.Within", grid.Within(q, eps, skip), want)
		sameNeighborSet(t, "vp.Within", vp.Within(q, eps, skip), want)

		if got := grid.CountWithin(q, eps, skip, 0); got != len(want) {
			t.Fatalf("grid.CountWithin = %d, want %d", got, len(want))
		}
		if got := vp.CountWithin(q, eps, skip, 0); got != len(want) {
			t.Fatalf("vp.CountWithin = %d, want %d", got, len(want))
		}

		k := 1 + rng.Intn(10)
		wantK := brute.KNN(q, k, skip)
		for name, idx := range map[string]Index{"grid": grid, "vp": vp} {
			gotK := idx.KNN(q, k, skip)
			if len(gotK) != len(wantK) {
				t.Fatalf("%s.KNN returned %d, want %d", name, len(gotK), len(wantK))
			}
			for i := range gotK {
				if diff := gotK[i].Dist - wantK[i].Dist; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s.KNN[%d] dist %v, want %v", name, i, gotK[i].Dist, wantK[i].Dist)
				}
			}
		}
	}
}

func TestCountWithinEarlyExit(t *testing.T) {
	r := randomRelation(200, 2, 5)
	for _, idx := range []Index{NewBrute(r), NewGrid(r, 2), NewVPTree(r, 1)} {
		got := idx.CountWithin(r.Tuples[0], 100, -1, 7)
		if got != 7 {
			t.Errorf("%T: early exit returned %d, want 7", idx, got)
		}
	}
}

func TestSkipExcludesSelf(t *testing.T) {
	r := randomRelation(50, 2, 7)
	for _, idx := range []Index{NewBrute(r), NewGrid(r, 1), NewVPTree(r, 1)} {
		ns := idx.Within(r.Tuples[10], 0.0, 10)
		for _, n := range ns {
			if n.Idx == 10 {
				t.Errorf("%T: skip index returned", idx)
			}
		}
		kn := idx.KNN(r.Tuples[10], 5, 10)
		for _, n := range kn {
			if n.Idx == 10 {
				t.Errorf("%T: skip index in KNN", idx)
			}
		}
	}
}

func TestKNNOrderingAndBounds(t *testing.T) {
	r := randomRelation(300, 4, 9)
	vp := NewVPTree(r, 3)
	ns := vp.KNN(r.Tuples[0], 20, 0)
	if len(ns) != 20 {
		t.Fatalf("got %d neighbors", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Dist < ns[i-1].Dist {
			t.Fatal("KNN not sorted ascending")
		}
	}
	// k larger than n returns n-1 (self skipped).
	all := vp.KNN(r.Tuples[0], 1000, 0)
	if len(all) != r.N()-1 {
		t.Fatalf("k>n returned %d, want %d", len(all), r.N()-1)
	}
	if vp.KNN(r.Tuples[0], 0, -1) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestVPTreeTextMetric(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{{Name: "w", Kind: data.Text}}}
	r := data.NewRelation(s)
	words := []string{"cat", "cart", "car", "dog", "dot", "cot", "bat", "bart"}
	for _, w := range words {
		r.Append(data.Tuple{data.Str(w)})
	}
	vp := NewVPTree(r, 1)
	brute := NewBrute(r)
	q := data.Tuple{data.Str("cat")}
	sameNeighborSet(t, "text within", vp.Within(q, 1, -1), brute.Within(q, 1, -1))
	got := vp.KNN(q, 3, -1)
	want := brute.KNN(q, 3, -1)
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("text KNN mismatch: %v vs %v", got, want)
		}
	}
}

func TestGridPanicsOnTextSchema(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("grid should panic on text schema")
		}
	}()
	s := &data.Schema{Attrs: []data.Attribute{{Name: "w", Kind: data.Text}}}
	r := data.NewRelation(s)
	NewGrid(r, 1)
}

func TestGridRespectsAttributeScale(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{{Name: "t", Kind: data.Numeric, Scale: 100}}}
	r := data.NewRelation(s)
	for i := 0; i < 10; i++ {
		r.Append(data.Tuple{data.Num(float64(i) * 100)})
	}
	g := NewGrid(r, 1)
	// Scaled distance between consecutive tuples is 1.
	ns := g.Within(r.Tuples[5], 1.0, 5)
	if len(ns) != 2 {
		t.Fatalf("scaled grid found %d neighbors, want 2", len(ns))
	}
}

func TestBuildSelectsIndex(t *testing.T) {
	small := randomRelation(10, 2, 1)
	if _, ok := Build(small, 1).(*Grid); !ok {
		t.Error("small numeric relation should still use the grid")
	}
	smallText := data.NewRelation(&data.Schema{Attrs: []data.Attribute{{Name: "w", Kind: data.Text}}})
	smallText.Append(data.Tuple{data.Str("x")})
	if _, ok := Build(smallText, 1).(*Brute); !ok {
		t.Error("small text relation should use brute force")
	}
	big := randomRelation(500, 3, 1)
	if _, ok := Build(big, 1).(*Grid); !ok {
		t.Error("numeric low-dim relation should use grid")
	}
	// The grid's reach bound holds for every supported norm, so fully
	// numeric low-dimensional relations route to it regardless of norm
	// (a silent VP-tree fallback here was a routing bug).
	for _, norm := range []metric.Norm{metric.L1, metric.LInf} {
		byNorm := randomRelation(500, 3, 1)
		byNorm.Schema.Norm = norm
		if _, ok := Build(byNorm, 1).(*Grid); !ok {
			t.Errorf("numeric low-dim relation with %v norm should use grid", norm)
		}
	}
	sixteen := randomRelation(200, 3, 1)
	sixteen.Schema = data.NewNumericSchema("a", "b", "c", "d", "e", "f", "g")
	// 7 attributes: rebuild tuples to match arity.
	r := data.NewRelation(sixteen.Schema)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		t7 := make(data.Tuple, 7)
		for a := range t7 {
			t7[a] = data.Num(rng.Float64())
		}
		r.Append(t7)
	}
	if _, ok := Build(r, 1).(*VPTree); !ok {
		t.Error("7-attribute relation should use vp-tree")
	}
	empty := data.NewRelation(data.NewNumericSchema("a"))
	if _, ok := Build(empty, 1).(*Grid); !ok {
		t.Error("empty numeric relation should build an (empty) grid")
	}
}

func TestEmptyRelationQueries(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("a"))
	for _, idx := range []Index{NewBrute(r), NewGrid(r, 1), NewVPTree(r, 1)} {
		if got := idx.Within(data.Tuple{data.Num(0)}, 5, -1); len(got) != 0 {
			t.Errorf("%T: Within on empty relation returned %v", idx, got)
		}
		if got := idx.KNN(data.Tuple{data.Num(0)}, 3, -1); len(got) != 0 {
			t.Errorf("%T: KNN on empty relation returned %v", idx, got)
		}
	}
}

func BenchmarkVPTreeWithin(b *testing.B) {
	r := randomRelation(10000, 8, 1)
	vp := NewVPTree(r, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp.Within(r.Tuples[i%r.N()], 1.5, i%r.N())
	}
}

func BenchmarkGridWithin(b *testing.B) {
	r := randomRelation(10000, 3, 1)
	g := NewGrid(r, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Within(r.Tuples[i%r.N()], 1.5, i%r.N())
	}
}

func BenchmarkBruteWithin(b *testing.B) {
	r := randomRelation(10000, 3, 1)
	br := NewBrute(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Within(r.Tuples[i%r.N()], 1.5, i%r.N())
	}
}

func BenchmarkGridCountWithin(b *testing.B) {
	r := randomRelation(10000, 3, 1)
	g := NewGrid(r, 1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountWithin(r.Tuples[i%r.N()], 1.5, i%r.N(), 0)
	}
}

func BenchmarkGridKNN(b *testing.B) {
	r := randomRelation(10000, 3, 1)
	g := NewGrid(r, 1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KNN(r.Tuples[i%r.N()], 8, i%r.N())
	}
}
