package neighbors

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/metric"
)

// TestCountWithinAtLeast pins the threshold probe to the exact count's
// answer across every index kind, including k values right at the
// boundary where the cap early-exit fires.
func TestCountWithinAtLeast(t *testing.T) {
	r := diffRelation(120, 3, metric.L2, 11, true)
	brute := NewBrute(r)
	indexes := map[string]Index{
		"brute":  brute,
		"grid":   NewGrid(r, 1.5),
		"vptree": NewVPTree(r, 3),
		"kdtree": NewKDTree(r),
	}
	eps := 6.0
	for name, idx := range indexes {
		for i, q := range r.Tuples {
			exact := brute.CountWithin(q, eps, i, 0)
			for _, k := range []int{-1, 0, 1, exact - 1, exact, exact + 1, 2*exact + 3} {
				got := CountWithinAtLeast(idx, q, eps, i, k)
				want := k <= 0 || exact >= k
				if got != want {
					t.Fatalf("%s: tuple %d: CountWithinAtLeast(k=%d) = %v, exact count %d",
						name, i, k, got, exact)
				}
			}
		}
	}
}

// TestCubeBound checks the grid cube bound is a true upper bound on the
// exact count, survives the counting/context wrappers and the mutable
// grid view, and refuses (rather than misanswers) everywhere it cannot
// promise one: non-grid indexes, pending deltas, too-wide radii.
func TestCubeBound(t *testing.T) {
	// eps ≤ cell keeps the odometer reach at 2 (5³ = 125 cells ≤ n+1), so
	// the cube bound is available; wider radii exercise the refusal below.
	r := diffRelation(150, 3, metric.L2, 13, false)
	g := NewGrid(r, 1.5)
	brute := NewBrute(r)
	eps := 1.4
	for i, q := range r.Tuples {
		ub, ok := CubeBound(g, q, eps, i)
		if !ok {
			t.Fatalf("tuple %d: grid cube bound unavailable", i)
		}
		exact := brute.CountWithin(q, eps, i, 0)
		if ub < exact {
			t.Fatalf("tuple %d: cube bound %d < exact count %d", i, ub, exact)
		}
	}

	// The bound unwraps the counting and context decorators.
	var c Counters
	wrapped := WithContext(context.Background(), Counting(g, &c))
	ubW, okW := CubeBound(wrapped, r.Tuples[0], eps, 0)
	ubG, okG := CubeBound(g, r.Tuples[0], eps, 0)
	if !okW || ubW != ubG || !okG {
		t.Fatalf("wrapped cube bound (%d, %v) differs from direct (%d, %v)", ubW, okW, ubG, okG)
	}

	// Indexes without cell structure refuse.
	if _, ok := CubeBound(brute, r.Tuples[0], eps, 0); ok {
		t.Fatal("brute index offered a cube bound")
	}
	if _, ok := CubeBound(NewVPTree(r, 3), r.Tuples[0], eps, 0); ok {
		t.Fatal("vptree offered a cube bound")
	}

	// A radius spanning more cells than a brute scan refuses.
	if _, ok := CubeBound(g, r.Tuples[0], 1e9, 0); ok {
		t.Fatal("too-wide radius still offered a cube bound")
	}
}

// TestCubeBoundMutable checks the mutable-grid path: valid with a clean
// delta, still an upper bound after deletes (tombstoned rows stay in
// their cells), and refused while inserts are pending — delta rows are
// not in any cell, so the cube population would undercount.
func TestCubeBoundMutable(t *testing.T) {
	r := diffRelation(150, 3, metric.L2, 17, false)
	m, err := NewMutable(r, 1.5, KindGrid)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.4
	q := r.Tuples[0].Clone()
	if _, ok := CubeBound(m, q, eps, 0); !ok {
		t.Fatal("mutable grid with empty delta refused a cube bound")
	}

	m.Delete(3)
	ub, ok := CubeBound(m, q, eps, 0)
	if !ok {
		t.Fatal("mutable grid refused a cube bound after a delete")
	}
	if exact := m.CountWithin(q, eps, 0, 0); ub < exact {
		t.Fatalf("cube bound %d < exact live count %d after delete", ub, exact)
	}

	// An in-range insert is absorbed into its cell (no delta), so the
	// bound stays valid and still covers the new row.
	m.Insert(q.Clone())
	if m.Pending() != 0 {
		t.Fatalf("in-range insert parked in delta (%d pending)", m.Pending())
	}
	ub, ok = CubeBound(m, q, eps, 0)
	if !ok {
		t.Fatal("mutable grid refused a cube bound after an absorbed insert")
	}
	if exact := m.CountWithin(q, eps, 0, 0); ub < exact {
		t.Fatalf("cube bound %d < exact live count %d after absorbed insert", ub, exact)
	}

	// A row outside the packed layout's build-time ranges parks in the
	// delta buffer — it is in no cell, so the bound must refuse.
	far := make(data.Tuple, r.Schema.M())
	for a := range far {
		far[a] = data.Num(1e9)
	}
	m.Insert(far)
	if m.Pending() == 0 {
		t.Skip("far insert absorbed in-place (unpacked layout); delta path not reachable here")
	}
	if _, ok := CubeBound(m, q, eps, 0); ok {
		t.Fatal("mutable grid offered a cube bound with a pending delta row")
	}
}
