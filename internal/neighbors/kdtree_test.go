package neighbors

import (
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestKDTreeAgreesWithBrute(t *testing.T) {
	r := randomRelation(500, 4, 31)
	brute := NewBrute(r)
	kd := NewKDTree(r)
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		q := make(data.Tuple, 4)
		for a := range q {
			q[a] = data.Num(rng.Float64() * 10)
		}
		eps := 0.3 + rng.Float64()*3
		skip := -1
		if trial%4 == 0 {
			skip = rng.Intn(r.N())
		}
		sameNeighborSet(t, "kd.Within", kd.Within(q, eps, skip), brute.Within(q, eps, skip))
		if got, want := kd.CountWithin(q, eps, skip, 0), brute.CountWithin(q, eps, skip, 0); got != want {
			t.Fatalf("kd.CountWithin = %d, want %d", got, want)
		}
		k := 1 + rng.Intn(12)
		gotK := kd.KNN(q, k, skip)
		wantK := brute.KNN(q, k, skip)
		if len(gotK) != len(wantK) {
			t.Fatalf("kd.KNN size %d, want %d", len(gotK), len(wantK))
		}
		for i := range gotK {
			if diff := gotK[i].Dist - wantK[i].Dist; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("kd.KNN[%d] = %v, want %v", i, gotK[i].Dist, wantK[i].Dist)
			}
		}
	}
}

func TestKDTreeRespectsScale(t *testing.T) {
	s := &data.Schema{Attrs: []data.Attribute{{Name: "t", Kind: data.Numeric, Scale: 100}}}
	r := data.NewRelation(s)
	for i := 0; i < 20; i++ {
		r.Append(data.Tuple{data.Num(float64(i) * 100)})
	}
	kd := NewKDTree(r)
	ns := kd.Within(r.Tuples[10], 1.0, 10)
	if len(ns) != 2 {
		t.Fatalf("scaled kd-tree found %d neighbors, want 2", len(ns))
	}
}

func TestKDTreeEarlyExit(t *testing.T) {
	r := randomRelation(300, 3, 33)
	kd := NewKDTree(r)
	if got := kd.CountWithin(r.Tuples[0], 100, -1, 9); got != 9 {
		t.Errorf("early exit returned %d", got)
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	// Many identical points stress the equal-key split handling.
	r := data.NewRelation(data.NewNumericSchema("x", "y"))
	for i := 0; i < 100; i++ {
		r.Append(data.Tuple{data.Num(1), data.Num(2)})
	}
	for i := 0; i < 50; i++ {
		r.Append(data.Tuple{data.Num(5), data.Num(6)})
	}
	kd := NewKDTree(r)
	if got := kd.CountWithin(data.Tuple{data.Num(1), data.Num(2)}, 0.5, -1, 0); got != 100 {
		t.Errorf("found %d duplicates, want 100", got)
	}
	nn := kd.KNN(data.Tuple{data.Num(5), data.Num(6)}, 60, -1)
	if len(nn) != 60 {
		t.Fatalf("KNN returned %d", len(nn))
	}
	if nn[49].Dist != 0 || nn[50].Dist == 0 {
		t.Error("duplicate distances wrong")
	}
}

func TestKDTreeEmptyAndTextPanic(t *testing.T) {
	empty := data.NewRelation(data.NewNumericSchema("x"))
	kd := NewKDTree(empty)
	if got := kd.Within(data.Tuple{data.Num(0)}, 1, -1); len(got) != 0 {
		t.Error("empty tree returned neighbors")
	}
	if got := kd.KNN(data.Tuple{data.Num(0)}, 3, -1); len(got) != 0 {
		t.Error("empty tree KNN returned neighbors")
	}
	defer func() {
		if recover() == nil {
			t.Error("kd-tree should panic on text schema")
		}
	}()
	s := &data.Schema{Attrs: []data.Attribute{{Name: "w", Kind: data.Text}}}
	NewKDTree(data.NewRelation(s))
}

func BenchmarkKDTreeWithin(b *testing.B) {
	r := randomRelation(10000, 3, 1)
	kd := NewKDTree(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kd.Within(r.Tuples[i%r.N()], 1.5, i%r.N())
	}
}
