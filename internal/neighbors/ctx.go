package neighbors

import (
	"context"

	"repro/internal/data"
)

// WithContext wraps idx so every query first checks ctx: once the context
// is cancelled, Within/KNN return nil and CountWithin returns 0 instead of
// scanning. A long sequence of queries — the η-radius precompute, the
// detection pass, parameter determination — therefore stops within one
// query of cancellation without threading a flag through every loop.
//
// Empty results from a cancelled wrapper are indistinguishable from
// genuinely empty neighborhoods, so callers must pair the wrapper with a
// ctx.Err() check before trusting the aggregate (the par.ForEach pools do
// this by recording skipped items with the context's error).
//
// Background contexts (ctx.Done() == nil) return idx unchanged — the
// wrapper costs nothing when there is nothing to cancel.
func WithContext(ctx context.Context, idx Index) Index {
	if ctx == nil || ctx.Done() == nil {
		return idx
	}
	if c, ok := idx.(*ctxIndex); ok {
		idx = c.idx // re-wrapping replaces the old context
	}
	return &ctxIndex{done: ctx.Done(), idx: idx}
}

type ctxIndex struct {
	done <-chan struct{}
	idx  Index
}

func (c *ctxIndex) cancelled() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Within implements Index.
func (c *ctxIndex) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	if c.cancelled() {
		return nil
	}
	return c.idx.Within(q, eps, skip)
}

// WithinAppend implements WithinAppender; a cancelled context appends
// nothing.
func (c *ctxIndex) WithinAppend(dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	if c.cancelled() {
		return dst
	}
	return withinAppend(c.idx, dst, q, eps, skip)
}

// CountWithin implements Index.
func (c *ctxIndex) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	if c.cancelled() {
		return 0
	}
	return c.idx.CountWithin(q, eps, skip, cap)
}

// KNN implements Index.
func (c *ctxIndex) KNN(q data.Tuple, k, skip int) []Neighbor {
	if c.cancelled() {
		return nil
	}
	return c.idx.KNN(q, k, skip)
}

// Rel implements Index.
func (c *ctxIndex) Rel() *data.Relation { return c.idx.Rel() }
