package neighbors

import "repro/internal/data"

// Counters tallies the work an index performs: queries by kind, the
// tuple-pair distance evaluations spent answering them (the common
// currency that makes Brute, Grid, VPTree and KDTree comparable), and grid
// queries that degraded to a brute scan. The fields are plain int64s
// incremented without synchronization — a Counters instance must be owned
// by one goroutine at a time and merged (Add) only after the owner is done.
type Counters struct {
	KNNQueries    int64
	RangeQueries  int64 // Within + CountWithin
	DistEvals     int64
	GridFallbacks int64
	// Kernel-level refinements of DistEvals (each eval is one pair
	// considered; these say how much of it was actually paid for):
	// pairs abandoned by the ε early exit before the last attribute,
	// text metric evaluations avoided by the pair cache or query memo,
	// and text metric evaluations actually computed.
	DistEarlyExits  int64
	TextCacheHits   int64
	TextCacheMisses int64
}

// Add folds o into c.
func (c *Counters) Add(o Counters) {
	c.KNNQueries += o.KNNQueries
	c.RangeQueries += o.RangeQueries
	c.DistEvals += o.DistEvals
	c.GridFallbacks += o.GridFallbacks
	c.DistEarlyExits += o.DistEarlyExits
	c.TextCacheHits += o.TextCacheHits
	c.TextCacheMisses += o.TextCacheMisses
}

// kernHooks are the per-view destinations for a query's kernel counters;
// flush harvests a bound query's tallies and releases it to the pool.
// The zero value discards the counts.
type kernHooks struct {
	earlyExits, cacheHits, cacheMisses *int64
}

func (h kernHooks) flush(q *data.KernelQuery) {
	if h.earlyExits != nil {
		*h.earlyExits += q.EarlyExits
	}
	if h.cacheHits != nil {
		*h.cacheHits += q.TextCacheHits
	}
	if h.cacheMisses != nil {
		*h.cacheMisses += q.TextCacheMisses
	}
	q.Release()
}

// hooksFor builds the kernel hook set pointing into c.
func hooksFor(c *Counters) kernHooks {
	return kernHooks{
		earlyExits:  &c.DistEarlyExits,
		cacheHits:   &c.TextCacheHits,
		cacheMisses: &c.TextCacheMisses,
	}
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }

// Counting returns an index view that adds every query against it to c.
// For the four concrete index types the view is a shallow copy sharing the
// built structure (tree nodes, grid cells, tuple storage) with hooks
// attached, so DistEvals counts the distance evaluations performed inside
// the traversal — not just the query calls. Unknown Index implementations
// are wrapped at the interface boundary and count queries only. Build-time
// distance evaluations are never counted: the view is created after the
// index is built.
//
// Like Counters itself the view is not synchronized: create one view (and
// one Counters) per goroutine against the same shared base index.
func Counting(idx Index, c *Counters) Index {
	switch t := idx.(type) {
	case *Brute, *Grid, *VPTree, *KDTree:
		return &counting{idx: instrumented(t, c), c: c}
	case *Mutable:
		// The view re-instruments its base copy whenever the Mutable's
		// generation moves, so it stays exact across mutations and merges.
		return &counting{idx: &mutView{m: t, c: c}, c: c}
	case *mutView:
		return Counting(t.m, c) // replace the previous counters
	case *ctxIndex:
		// Re-wrap inside-out so cancellation still short-circuits before
		// the query is counted as executed work.
		return &ctxIndex{done: t.done, idx: Counting(t.idx, c)}
	case *counting:
		return Counting(t.idx, c) // replace the previous counters
	default:
		return &counting{idx: idx, c: c}
	}
}

// instrumented returns a shallow copy of a concrete index with its eval
// hooks pointed into c; the copy shares the built structure (tree nodes,
// grid cells, tombstone table) with the original. Unknown types are
// returned as-is.
func instrumented(idx Index, c *Counters) Index {
	switch t := idx.(type) {
	case *Brute:
		cp := *t
		cp.evals = &c.DistEvals
		cp.ks = hooksFor(c)
		return &cp
	case *Grid:
		cp := *t
		cp.evals = &c.DistEvals
		cp.fallbacks = &c.GridFallbacks
		cp.ks = hooksFor(c)
		bcp := *t.brute
		bcp.evals = &c.DistEvals
		bcp.ks = hooksFor(c)
		cp.brute = &bcp
		return &cp
	case *VPTree:
		cp := *t
		cp.evals = &c.DistEvals
		cp.ks = hooksFor(c)
		return &cp
	case *KDTree:
		cp := *t
		cp.evals = &c.DistEvals
		cp.ks = hooksFor(c)
		return &cp
	}
	return idx
}

// counting counts queries at the interface boundary; the inner index's
// eval hooks (when attached by Counting) supply the distance counts.
type counting struct {
	idx Index
	c   *Counters
}

// Within implements Index.
func (w *counting) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	w.c.RangeQueries++
	return w.idx.Within(q, eps, skip)
}

// WithinAppend implements WithinAppender.
func (w *counting) WithinAppend(dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	w.c.RangeQueries++
	return withinAppend(w.idx, dst, q, eps, skip)
}

// CountWithin implements Index.
func (w *counting) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	w.c.RangeQueries++
	return w.idx.CountWithin(q, eps, skip, cap)
}

// KNN implements Index.
func (w *counting) KNN(q data.Tuple, k, skip int) []Neighbor {
	w.c.KNNQueries++
	return w.idx.KNN(q, k, skip)
}

// Rel implements Index.
func (w *counting) Rel() *data.Relation { return w.idx.Rel() }

// count bumps an optional eval counter; the nil check is one predictable
// branch next to a multi-attribute distance computation, so uninstrumented
// indexes pay nothing measurable.
func count(evals *int64) {
	if evals != nil {
		*evals++
	}
}
