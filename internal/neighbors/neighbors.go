// Package neighbors provides ε-neighbor and k-nearest-neighbor search over
// relations (Formula 4 of the paper): a brute-force scan that works for any
// schema, a grid index for low-dimensional numeric data (the GPS/Flight
// style datasets), and a vantage-point tree that exploits the triangle
// inequality of the distance functions (§2.1.1) for any metric schema,
// including textual edit distances.
package neighbors

import (
	"math"
	"sort"

	"repro/internal/data"
)

// Neighbor is one search result: a tuple index in the indexed relation and
// its distance to the query.
type Neighbor struct {
	Idx  int
	Dist float64
}

// Index answers ε-range and k-NN queries against a fixed relation.
// The skip argument excludes one tuple index from the results (pass -1 to
// keep all); the paper's |r_ε(t)| never counts t itself.
type Index interface {
	// Within returns all tuples with Δ(q, t) ≤ eps, in arbitrary order.
	Within(q data.Tuple, eps float64, skip int) []Neighbor
	// CountWithin counts tuples with Δ(q, t) ≤ eps, stopping early once
	// the count reaches cap (cap ≤ 0 disables the early exit).
	CountWithin(q data.Tuple, eps float64, skip, cap int) int
	// KNN returns the k nearest tuples sorted by ascending distance
	// (fewer if the relation is smaller).
	KNN(q data.Tuple, k, skip int) []Neighbor
	// Rel returns the indexed relation.
	Rel() *data.Relation
}

// WithinAppender is the optional extension of Index for allocation-
// sensitive callers: WithinAppend appends the ε-neighbors to dst (which
// may be nil or a reused buffer truncated by the caller) instead of
// allocating a fresh result slice per query. All four concrete indexes
// and the counting/context views implement it; DBSCAN's seed expansion
// depends on it for its near-zero steady-state allocation budget.
type WithinAppender interface {
	WithinAppend(dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor
}

// WithinBuf routes a range query through WithinAppend when the index
// supports it, falling back to Within plus a copy into dst otherwise.
// The result always starts at dst[:0], so callers can reuse one scratch
// buffer across queries.
func WithinBuf(idx Index, dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	return withinAppend(idx, dst[:0], q, eps, skip)
}

// withinAppend appends idx's ε-neighbors to dst, using the index's own
// WithinAppend when available (the counting/context views forward
// through here so buffers survive the wrapping).
func withinAppend(idx Index, dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	if wa, ok := idx.(WithinAppender); ok {
		return wa.WithinAppend(dst, q, eps, skip)
	}
	return append(dst, idx.Within(q, eps, skip)...)
}

// Kerneled is implemented by indexes backed by a compiled distance
// kernel (see data.Kernel). KernelOf unwraps views to reach it.
type Kerneled interface {
	Kernel() *data.Kernel
}

// KernelOf returns the compiled kernel behind idx, looking through the
// counting and context views, or nil when the index is not
// kernel-backed. Callers like the saver's bound computations use it to
// share one kernel — and its text-distance cache — with the index built
// over the same relation.
func KernelOf(idx Index) *data.Kernel {
	for {
		switch t := idx.(type) {
		case Kerneled:
			return t.Kernel()
		case *counting:
			idx = t.idx
		case *ctxIndex:
			idx = t.idx
		default:
			return nil
		}
	}
}

// Build picks an index for the relation: a grid when the schema is fully
// numeric with at most six attributes (range queries touch 3^m cells), a
// VP-tree otherwise. eps hints the grid cell size; it must be > 0 for the
// grid path. The grid serves every supported norm, not only the L2
// default: each per-attribute (scaled) distance is bounded by the L1, L2
// and L∞ aggregates alike, so the grid's cell-cube reach bound stays valid
// for any of them.
func Build(r *data.Relation, eps float64) Index {
	numeric := true
	for _, a := range r.Schema.Attrs {
		if a.Kind != data.Numeric {
			numeric = false
			break
		}
	}
	if numeric && r.Schema.M() <= 6 && eps > 0 {
		return NewGrid(r, eps)
	}
	if r.N() >= 64 {
		return NewVPTree(r, 1)
	}
	return NewBrute(r)
}

// Brute is the exhaustive-scan index; it is the correctness reference for
// the other implementations. Scans run over the compiled distance kernel:
// queries bind once, rows are read from flat columns, and range scans
// abandon a pair as soon as its partial aggregate exceeds ε.
type Brute struct {
	r    *data.Relation
	kern *data.Kernel
	// n freezes the scanned row count at build time: under the mutable-
	// session discipline the relation grows append-only, and rows past n
	// belong to the Mutable wrapper's delta buffer until a merge (the
	// grid's native inserts extend n instead, see Grid.insert).
	n int
	// dead, when non-nil, is the shared tombstone table of a Mutable
	// wrapper; tombstoned rows are skipped mid-scan so counts, ranges
	// and k-NN results never see deleted tuples.
	dead *deadSet
	// evals, when non-nil, counts distance evaluations (see Counting):
	// one per pair considered, whether or not the pair early-exited.
	evals *int64
	ks    kernHooks
}

// NewBrute indexes r, compiling a distance kernel over it.
func NewBrute(r *data.Relation) *Brute { return newBruteKernel(r, data.CompileKernel(r)) }

// newBruteKernel indexes r reusing an already-compiled kernel (the grid
// shares one kernel between its cells and its brute fallback; the
// Mutable wrapper shares one kernel across merges).
func newBruteKernel(r *data.Relation, k *data.Kernel) *Brute {
	return &Brute{r: r, kern: k, n: r.N()}
}

// Rel returns the indexed relation.
func (b *Brute) Rel() *data.Relation { return b.r }

// Kernel implements Kerneled.
func (b *Brute) Kernel() *data.Kernel { return b.kern }

// Within implements Index.
func (b *Brute) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	return b.WithinAppend(nil, q, eps, skip)
}

// WithinAppend implements WithinAppender.
func (b *Brute) WithinAppend(dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	kq := b.kern.Bind(q)
	defer b.ks.flush(kq)
	bound := b.kern.LEBound(eps)
	for i := 0; i < b.n; i++ {
		if i == skip || b.dead.has(i) {
			continue
		}
		count(b.evals)
		if d, within := kq.DistToLE(i, bound); within {
			dst = append(dst, Neighbor{Idx: i, Dist: d})
		}
	}
	return dst
}

// CountWithin implements Index.
func (b *Brute) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	kq := b.kern.Bind(q)
	defer b.ks.flush(kq)
	bound := b.kern.LEBound(eps)
	c := 0
	for i := 0; i < b.n; i++ {
		if i == skip || b.dead.has(i) {
			continue
		}
		count(b.evals)
		if _, within := kq.DistToLE(i, bound); within {
			c++
			if cap > 0 && c >= cap {
				return c
			}
		}
	}
	return c
}

// KNN implements Index. Once the heap is full, its (distance, index)
// bound doubles as an early-exit radius: a pair whose partial aggregate
// exceeds the current k-th distance cannot enter the heap, so the scan
// abandons it. The inclusive DistToLE test keeps exact ties, which the
// heap then resolves by the index tie-break.
func (b *Brute) KNN(q data.Tuple, k, skip int) []Neighbor {
	if k <= 0 {
		return nil
	}
	kq := b.kern.Bind(q)
	defer b.ks.flush(kq)
	h := newMaxHeap(k)
	bound, leb := math.Inf(1), math.Inf(1)
	for i := 0; i < b.n; i++ {
		if i == skip || b.dead.has(i) {
			continue
		}
		count(b.evals)
		d, within := kq.DistToLE(i, leb)
		if !within {
			continue
		}
		h.offer(Neighbor{Idx: i, Dist: d})
		if bd, full := h.bound(); full && bd != bound {
			bound = bd
			leb = b.kern.LEBound(bound)
		}
	}
	return h.sorted()
}

// maxHeap keeps the k smallest neighbors seen so far under the total
// (distance, index) order, with the current worst at the root.
//
// The index tie-break is a correctness contract, not cosmetics: when
// several tuples sit exactly at the k-th distance, a heap ordered by
// distance alone keeps whichever it happened to see first, so KNN results
// would depend on scan order and differ between Brute, Grid, VP-tree and
// k-d tree. Under the total order every index returns the identical
// neighbor list — the lowest-indexed tuples among the tied — which also
// makes KNN(k) a strict prefix of KNN(k') for k' > k.
type maxHeap struct {
	k  int
	ns []Neighbor
}

func newMaxHeap(k int) *maxHeap { return &maxHeap{k: k, ns: make([]Neighbor, 0, k)} }

// worse reports whether a ranks strictly after b in the (distance, index)
// total order — i.e. a is a worse neighbor than b.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Idx > b.Idx
}

// bound returns the current k-th distance, or +Inf semantics via ok=false
// when fewer than k neighbors are held. Tree descents prune with
// non-strict comparisons against the bound, so equal-distance subtrees
// are still visited and can win the index tie-break.
func (h *maxHeap) bound() (float64, bool) {
	if len(h.ns) < h.k {
		return 0, false
	}
	return h.ns[0].Dist, true
}

func (h *maxHeap) offer(n Neighbor) {
	if len(h.ns) < h.k {
		h.ns = append(h.ns, n)
		h.up(len(h.ns) - 1)
		return
	}
	if !worse(h.ns[0], n) {
		return
	}
	h.ns[0] = n
	h.down(0)
}

func (h *maxHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h.ns[i], h.ns[p]) {
			break
		}
		h.ns[p], h.ns[i] = h.ns[i], h.ns[p]
		i = p
	}
}

func (h *maxHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.ns) && worse(h.ns[l], h.ns[big]) {
			big = l
		}
		if r < len(h.ns) && worse(h.ns[r], h.ns[big]) {
			big = r
		}
		if big == i {
			return
		}
		h.ns[i], h.ns[big] = h.ns[big], h.ns[i]
		i = big
	}
}

func (h *maxHeap) sorted() []Neighbor {
	out := append([]Neighbor(nil), h.ns...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Idx < out[j].Idx
	})
	return out
}
