package neighbors

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/metric"
)

// diffRelation builds a relation for the differential suite: numeric
// attributes with mixed scales, a chosen norm, and every tuple duplicated
// so distance ties are everywhere (including at every k-NN boundary).
func diffRelation(n, m int, norm metric.Norm, seed int64, duplicate bool) *data.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	s := data.NewNumericSchema(names...)
	s.Norm = norm
	for a := range s.Attrs {
		if a%2 == 1 {
			s.Attrs[a].Scale = 10 // heterogeneous units, like Time vs Longitude
		}
	}
	r := data.NewRelation(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		t := make(data.Tuple, m)
		for a := range t {
			// Snap to a coarse lattice so exact ties also arise between
			// distinct tuples, not only between duplicates.
			t[a] = data.Num(float64(rng.Intn(12)))
			if s.Attrs[a].Scale > 0 {
				t[a] = data.Num(t[a].Num * s.Attrs[a].Scale)
			}
		}
		r.Append(t)
		if duplicate {
			r.Append(t.Clone())
		}
	}
	return r
}

// TestDifferentialIndexEquivalence pins Brute, Grid, VP-tree and k-d tree
// to identical answers for Within, CountWithin and KNN across norms,
// scaled attributes, duplicated tuples (ties at every boundary) and skip
// values. KNN answers are compared element-wise: the deterministic
// (distance, index) tie-break makes the full neighbor list, indexes
// included, part of the contract.
func TestDifferentialIndexEquivalence(t *testing.T) {
	for _, norm := range []metric.Norm{metric.L2, metric.L1, metric.LInf} {
		for _, duplicate := range []bool{false, true} {
			r := diffRelation(150, 3, norm, int64(7+int(norm)), duplicate)
			brute := NewBrute(r)
			indexes := map[string]Index{
				"grid":   NewGrid(r, 1.5),
				"vptree": NewVPTree(r, 3),
				"kdtree": NewKDTree(r),
			}
			// An L1/L∞ numeric schema must route to the grid now; keep the
			// routed index in the comparison so the Build path is what the
			// differential suite actually exercises.
			indexes["built"] = Build(r, 1.5)
			if _, ok := indexes["built"].(*Grid); !ok {
				t.Fatalf("norm %v: Build routed to %T, want *Grid", norm, indexes["built"])
			}

			rng := rand.New(rand.NewSource(int64(31 + int(norm))))
			for trial := 0; trial < 40; trial++ {
				q := make(data.Tuple, 3)
				for a := range q {
					q[a] = data.Num(rng.Float64() * 12)
					if s := r.Schema.Attrs[a].Scale; s > 0 {
						q[a] = data.Num(q[a].Num * s)
					}
				}
				if trial%4 == 0 {
					q = r.Tuples[rng.Intn(r.N())] // exact hits maximize ties
				}
				eps := 0.5 + rng.Float64()*4
				skip := -1
				if trial%3 == 0 {
					skip = rng.Intn(r.N())
				}
				k := 1 + rng.Intn(12)

				want := brute.Within(q, eps, skip)
				wantK := brute.KNN(q, k, skip)
				for name, idx := range indexes {
					sameNeighborSet(t, name+".Within", idx.Within(q, eps, skip), want)
					if got := idx.CountWithin(q, eps, skip, 0); got != len(want) {
						t.Fatalf("%s.CountWithin(norm=%v) = %d, want %d", name, norm, got, len(want))
					}
					capped := len(want) / 2
					if capped > 0 {
						if got := idx.CountWithin(q, eps, skip, capped); got != capped {
							t.Fatalf("%s.CountWithin(cap=%d) = %d", name, capped, got)
						}
					}
					gotK := idx.KNN(q, k, skip)
					if len(gotK) != len(wantK) {
						t.Fatalf("%s.KNN(norm=%v, dup=%v) returned %d, want %d", name, norm, duplicate, len(gotK), len(wantK))
					}
					for i := range gotK {
						if gotK[i] != wantK[i] {
							t.Fatalf("%s.KNN(norm=%v, dup=%v)[%d] = %+v, want %+v (tie-break must be deterministic)",
								name, norm, duplicate, i, gotK[i], wantK[i])
						}
					}
				}
			}
		}
	}
}

// TestKNNPrefixProperty checks that KNN(k) is a prefix of KNN(k') for
// k < k' on every index — the property Saver.initialBound relies on to
// resume its geometric k-NN growth without re-checking earlier positions.
func TestKNNPrefixProperty(t *testing.T) {
	r := diffRelation(120, 3, metric.L2, 11, true)
	for _, idx := range []Index{NewBrute(r), NewGrid(r, 1.5), NewVPTree(r, 5), NewKDTree(r)} {
		q := r.Tuples[17]
		prev := idx.KNN(q, 4, 17)
		for _, k := range []int{16, 64} {
			nn := idx.KNN(q, k, 17)
			if len(nn) < len(prev) {
				t.Fatalf("%T: KNN(%d) shorter than previous round", idx, k)
			}
			for i := range prev {
				if nn[i] != prev[i] {
					t.Fatalf("%T: KNN(%d)[%d] = %+v, want prefix %+v", idx, k, i, nn[i], prev[i])
				}
			}
			prev = nn
		}
	}
}

// TestGridKNNDegradesOnPathologicalDistribution forces the radius-doubling
// loop into its tooWide cutoff: a tight cluster plus one query far outside
// it used to double ~30 times toward the 1<<30 escape hatch; now the cube
// bound degrades to the brute path after a handful of rounds, and the
// answer still matches Brute exactly.
func TestGridKNNDegradesOnPathologicalDistribution(t *testing.T) {
	r := data.NewRelation(data.NewNumericSchema("x", "y"))
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		r.Append(data.Tuple{data.Num(rng.Float64()), data.Num(rng.Float64())})
	}
	g := NewGrid(r, 1e-6) // tiny cells: every widening round is useless
	brute := NewBrute(r)
	q := data.Tuple{data.Num(1e9), data.Num(-1e9)}
	got := g.KNN(q, 5, -1)
	want := brute.KNN(q, 5, -1)
	if len(got) != len(want) {
		t.Fatalf("degraded KNN returned %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degraded KNN[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestGridVisitZeroAlloc asserts the steady-state allocation contract of
// the cell walk: a counting query keeps its odometer and key buffer on the
// stack and probes the cell map with the alloc-free string(b) form, so a
// full CountWithin performs zero heap allocations per visited cell — and
// zero per query.
func TestGridVisitZeroAlloc(t *testing.T) {
	r := diffRelation(400, 3, metric.L2, 17, false)
	g := NewGrid(r, 1.5)
	q := r.Tuples[42]
	if got := testing.AllocsPerRun(200, func() {
		g.CountWithin(q, 1.5, 42, 0)
	}); got != 0 {
		t.Errorf("CountWithin allocates %.1f times per query, want 0", got)
	}
}
