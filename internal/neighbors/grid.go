package neighbors

import (
	"repro/internal/data"
)

// Grid is a uniform hash grid over numeric attributes with cell size equal
// to the query radius hint. A range query with radius ≤ cell visits the
// 3^m surrounding cells, so the grid suits m ≤ 6 (GPS and Flight have
// m = 3). Radii larger than the cell size widen the visited cube
// accordingly, so correctness never depends on the hint. The cube bound is
// valid for every supported norm: each per-attribute (scaled) distance is
// bounded by the L1/L2/L∞ aggregate, so a tuple within ε in aggregate is
// within ε on every axis.
//
// Cell keys are packed into a single uint64 when they fit: each
// dimension's coordinate, offset to its build-time minimum, occupies a
// fixed bit field sized to the build-time coordinate range. The packing
// is bijective over in-range coordinates — probes outside a dimension's
// range address cells that were empty at build time and are skipped
// before key construction, so two distinct cells can never alias one
// key (TestGridPackedKeyCollisionSafety pins this). Relations whose
// ranges do not fit in 64 bits, or with m > gridStackDims, keep the
// fixed-width string-key fallback.
type Grid struct {
	r    *data.Relation
	kern *data.Kernel
	// key owns the cell-keying layout (coordinates, packed bit fields,
	// reach); cell/m/packed are hot-path copies of its fields. The keyer is
	// also what the spatial partitioner shares (see CellKeyOf), so grid and
	// partitioner can never disagree on which cell a tuple lands in.
	key      *CellKeyer
	cell     float64
	m        int
	packed   bool
	cells    map[uint64][]int
	cellsStr map[string][]int
	// brute is the pre-built fallback for queries whose cell cube would
	// cost more than a scan; hoisted here so fallbacks allocate nothing.
	// It shares the grid's compiled kernel (and text caches).
	brute *Brute
	// dead, when non-nil, is the shared tombstone table of a Mutable
	// wrapper (also wired into brute); tombstoned rows stay in their
	// cells until the next merge and are skipped mid-scan.
	dead *deadSet
	// evals and fallbacks, when non-nil, count distance evaluations and
	// brute-scan degradations (see Counting).
	evals     *int64
	fallbacks *int64
	ks        kernHooks
}

// gridStackDims bounds the dimensionality for which a query walks the cell
// cube with stack-resident coordinate and key buffers; wider (unusual)
// grids fall back to per-query heap buffers and string keys.
const gridStackDims = 8

// NewGrid indexes the relation with the given cell size (clamped to a small
// positive value). It panics on non-numeric schemas, which would be a
// programming error — Build routes those to the VP-tree.
func NewGrid(r *data.Relation, cell float64) *Grid {
	for _, a := range r.Schema.Attrs {
		if a.Kind != data.Numeric {
			panic("neighbors: grid index requires an all-numeric schema")
		}
	}
	return newGridKernel(r, data.CompileKernel(r), cell)
}

// newGridKernel builds the grid reusing an already-compiled kernel (the
// Mutable wrapper keeps one kernel — and its text caches — alive across
// delta merges).
func newGridKernel(r *data.Relation, kern *data.Kernel, cell float64) *Grid {
	// The keyer's sizing pass doubles as the insertion pass's coordinate
	// source, so building through it costs no extra scan.
	key, coords := newCellKeyer(r, cell)
	g := &Grid{
		r: r, kern: kern, key: key,
		cell: key.cell, m: key.m, packed: key.packed,
		brute: newBruteKernel(r, kern),
	}
	n := r.N()
	if g.packed {
		g.cells = make(map[uint64][]int)
		for i := 0; i < n; i++ {
			key, _ := g.packKey(coords[i*g.m : (i+1)*g.m])
			g.cells[key] = append(g.cells[key], i)
		}
	} else {
		g.cellsStr = make(map[string][]int)
		kb := make([]byte, 0, g.m*8)
		for i := 0; i < n; i++ {
			kb = kb[:0]
			for a := 0; a < g.m; a++ {
				kb = appendCoord(kb, coords[i*g.m+a])
			}
			k := string(kb) // insertion must materialize the key string
			g.cellsStr[k] = append(g.cellsStr[k], i)
		}
	}
	return g
}

// packKey packs in-range cell coordinates into the bijective uint64 key.
// ok is false when any coordinate falls outside its build-time range —
// such a cell held no tuples at build time, so probes skip it (this
// range guard is what makes the packing collision-free).
func (g *Grid) packKey(c []int) (key uint64, ok bool) {
	return g.key.PackKey(c)
}

// insert adds physical row i — already appended to the relation and the
// kernel — directly to its cell, the grid's native absorption of
// single-tuple churn. It reports false when the row's coordinates fall
// outside the packed key's build-time ranges (such a cell cannot be
// addressed without re-laying the bit fields); the caller then parks the
// row in its delta buffer instead. On success the brute fallback's scan
// bound is extended so degraded queries cover the row too.
//
// Only rows contiguous with the fallback's scan bound are accepted: once
// any row has been refused (i > brute.n would leave a gap owned by the
// delta buffer), subsequent rows are refused as well, otherwise a
// fallback scan and the delta scan would both report the gap rows.
func (g *Grid) insert(i int) bool {
	if i != g.brute.n {
		return false
	}
	t := g.r.Tuples[i]
	if g.packed {
		var cA [gridStackDims]int
		c := cA[:g.m]
		for a := 0; a < g.m; a++ {
			c[a] = g.coord(t, a)
		}
		key, ok := g.packKey(c)
		if !ok {
			return false
		}
		g.cells[key] = append(g.cells[key], i)
	} else {
		kb := make([]byte, 0, g.m*8)
		for a := 0; a < g.m; a++ {
			kb = appendCoord(kb, g.coord(t, a))
		}
		g.cellsStr[string(kb)] = append(g.cellsStr[string(kb)], i)
	}
	g.brute.n = i + 1
	return true
}

// Rel returns the indexed relation.
func (g *Grid) Rel() *data.Relation { return g.r }

// Kernel implements Kerneled.
func (g *Grid) Kernel() *data.Kernel { return g.kern }

// coord returns the scaled grid coordinate of attribute a of tuple t; the
// grid must bucket by the same scaled units the distance uses.
func (g *Grid) coord(t data.Tuple, a int) int { return g.key.Coord(t, a) }

// appendCoord appends the fixed-width little-endian encoding of one grid
// coordinate; fixed-width string keys make cheap map keys without a 64-bit
// hash collision analysis (the fallback layout for grids the packed keys
// cannot address).
func appendCoord(b []byte, c int) []byte {
	u := uint64(int64(c))
	for s := 0; s < 64; s += 8 {
		b = append(b, byte(u>>uint(s)))
	}
	return b
}

// visit walks every cell within reach cells of q's cell in each dimension
// and calls fn with the tuple indexes stored there. fn returns false to
// stop early. The coordinate odometer and the key buffers live on the
// stack (for m ≤ gridStackDims) and are reused across cells, so the walk
// itself performs zero heap allocations: packed probes are a single
// uint64 map lookup, string-fallback probes use the alloc-free string(b)
// lookup form.
func (g *Grid) visit(q data.Tuple, reach int, fn func(idx []int) bool) {
	var baseA, offA, cellA [gridStackDims]int
	var keyA [gridStackDims * 8]byte
	var base, off, cc []int
	var kb []byte
	if g.m <= gridStackDims {
		base, off, cc, kb = baseA[:g.m], offA[:g.m], cellA[:g.m], keyA[:0]
	} else {
		base, off, cc = make([]int, g.m), make([]int, g.m), make([]int, g.m)
		kb = make([]byte, 0, g.m*8)
	}
	for a := 0; a < g.m; a++ {
		base[a] = g.coord(q, a)
		off[a] = -reach
	}
	for {
		var idx []int
		var ok bool
		if g.packed {
			for a := 0; a < g.m; a++ {
				cc[a] = base[a] + off[a]
			}
			var key uint64
			if key, ok = g.packKey(cc); ok {
				idx, ok = g.cells[key]
			}
		} else {
			b := kb[:0]
			for a := 0; a < g.m; a++ {
				b = appendCoord(b, base[a]+off[a])
			}
			idx, ok = g.cellsStr[string(b)]
		}
		if ok {
			if !fn(idx) {
				return
			}
		}
		// Odometer increment over off ∈ [-reach, reach]^m.
		a := 0
		for ; a < g.m; a++ {
			off[a]++
			if off[a] <= reach {
				break
			}
			off[a] = -reach
		}
		if a == g.m {
			return
		}
	}
}

// reach converts a query radius into the cell reach of the visited cube.
func (g *Grid) reach(eps float64) int { return g.key.Reach(eps) }

// tooWide reports whether a query radius spans so many cells that the
// odometer walk would visit more cells than a brute scan costs.
func (g *Grid) tooWide(reach int) bool {
	cells := 1.0
	for a := 0; a < g.m; a++ {
		cells *= float64(2*reach + 1)
		if cells > float64(g.r.N())+1 {
			return true
		}
	}
	return false
}

// Within implements Index.
func (g *Grid) Within(q data.Tuple, eps float64, skip int) []Neighbor {
	return g.WithinAppend(nil, q, eps, skip)
}

// WithinAppend implements WithinAppender.
func (g *Grid) WithinAppend(dst []Neighbor, q data.Tuple, eps float64, skip int) []Neighbor {
	if g.tooWide(g.reach(eps)) {
		count(g.fallbacks)
		return g.brute.WithinAppend(dst, q, eps, skip)
	}
	kq := g.kern.Bind(q)
	defer g.ks.flush(kq)
	bound := g.kern.LEBound(eps)
	g.visit(q, g.reach(eps), func(idx []int) bool {
		for _, i := range idx {
			if i == skip || g.dead.has(i) {
				continue
			}
			count(g.evals)
			if d, within := kq.DistToLE(i, bound); within {
				dst = append(dst, Neighbor{Idx: i, Dist: d})
			}
		}
		return true
	})
	return dst
}

// CountWithin implements Index.
func (g *Grid) CountWithin(q data.Tuple, eps float64, skip, cap int) int {
	if g.tooWide(g.reach(eps)) {
		count(g.fallbacks)
		return g.brute.CountWithin(q, eps, skip, cap)
	}
	kq := g.kern.Bind(q)
	defer g.ks.flush(kq)
	bound := g.kern.LEBound(eps)
	c := 0
	g.visit(q, g.reach(eps), func(idx []int) bool {
		for _, i := range idx {
			if i == skip || g.dead.has(i) {
				continue
			}
			count(g.evals)
			if _, within := kq.DistToLE(i, bound); within {
				c++
				if cap > 0 && c >= cap {
					return false
				}
			}
		}
		return true
	})
	return c
}

// KNN implements Index by expanding the search radius geometrically until k
// results fit inside it, which keeps the visited cube small for clustered
// data. The rounds are capped by the tooWide cell-count bound: once the
// cube would visit more cells than the relation has tuples — after at most
// O(log n / m) doublings even on pathological distributions — the query
// degrades to the pre-built Brute scan instead of widening further.
func (g *Grid) KNN(q data.Tuple, k, skip int) []Neighbor {
	if k <= 0 {
		return nil
	}
	n := g.r.N()
	if skip >= 0 && skip < n {
		n--
	}
	if k > n {
		k = n
	}
	if k == 0 {
		return nil
	}
	for radius := g.cell; ; radius *= 2 {
		if g.tooWide(g.reach(radius)) {
			count(g.fallbacks)
			return g.brute.KNN(q, k, skip)
		}
		found := g.Within(q, radius, skip)
		if len(found) >= k {
			// Heap-select the k nearest; the candidate set can be far
			// larger than k when the radius overshoots. Every distance
			// tie at the k-th position is inside the radius too, so the
			// deterministic (distance, index) selection sees all of them.
			h := newMaxHeap(k)
			for _, nb := range found {
				h.offer(nb)
			}
			return h.sorted()
		}
	}
}
